// Benchmarks regenerating the paper's evaluation with testing.B — one
// benchmark per table/figure, plus micro-benchmarks for the hot paths.
// cmd/xmorphbench runs the same experiments as parameter sweeps with
// printed series.
package xmorph_test

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmorph/internal/bench"
	"xmorph/internal/closest"
	"xmorph/internal/core"
	"xmorph/internal/gen/dblp"
	"xmorph/internal/gen/nasa"
	"xmorph/internal/gen/xmark"
	"xmorph/internal/kvstore"
	"xmorph/internal/shape"
	"xmorph/internal/store"
	"xmorph/internal/xmltree"
)

// prepared caches one shredded store per benchmark binary run.
type prepared struct {
	path string
	name string
}

func prepare(b *testing.B, name string, doc *xmltree.Document) prepared {
	b.Helper()
	dir := b.TempDir()
	path := filepath.Join(dir, name+".db")
	st, err := store.Open(path, store.WithKVOptions(&kvstore.Options{CachePages: 256}))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Shred(name, strings.NewReader(doc.XML(false)), nil); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	return prepared{path: path, name: name}
}

func (p prepared) open(b *testing.B) *store.Store {
	b.Helper()
	st, err := store.Open(p.path, store.WithKVOptions(&kvstore.Options{CachePages: 256}))
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// transform runs one stored transformation, discarding the output XML.
func (p prepared) transform(b *testing.B, guard string) {
	b.Helper()
	st := p.open(b)
	defer st.Close()
	res, err := core.TransformStored(guard, st, p.name, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := res.Output.WriteXML(io.Discard, false); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig10 measures the Figure 10 series: MUTATE site on XMark at
// increasing factors (render), the compile-only cost, and the
// eXist-equivalent dump baseline.
func BenchmarkFig10(b *testing.B) {
	for _, factor := range []float64{0.005, 0.01, 0.02} {
		doc := xmark.Generate(xmark.Config{Factor: factor, Seed: 42})
		p := prepare(b, fmt.Sprintf("xmark%g", factor), doc)

		b.Run(fmt.Sprintf("render/factor=%g", factor), func(b *testing.B) {
			b.ReportMetric(float64(doc.Size()), "nodes")
			for i := 0; i < b.N; i++ {
				p.transform(b, bench.Fig10Guard)
			}
		})
		b.Run(fmt.Sprintf("compile/factor=%g", factor), func(b *testing.B) {
			st := p.open(b)
			sh, err := st.Shape(p.name)
			st.Close()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Check(bench.Fig10Guard, sh, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("baseline-dump/factor=%g", factor), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := p.open(b)
				d, err := st.Doc(p.name)
				if err != nil {
					b.Fatal(err)
				}
				re, err := d.Reconstruct()
				if err != nil {
					b.Fatal(err)
				}
				if err := re.WriteXML(io.Discard, false); err != nil {
					b.Fatal(err)
				}
				st.Close()
			}
		})
	}
}

// BenchmarkFig11to13 measures the instrumented run behind Figs. 11-13:
// the same transformation with the resource monitor attached (its
// overhead is part of what the paper's vmstat methodology tolerates).
func BenchmarkFig11to13(b *testing.B) {
	cfg := bench.DefaultConfig()
	cfg.XMarkFactors = []float64{0.01}
	cfg.WorkDir = b.TempDir()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14 measures the three DBLP transformation sizes against the
// dump baseline.
func BenchmarkFig14(b *testing.B) {
	doc := dblp.Generate(dblp.Config{Publications: 2000, Seed: 42})
	p := prepare(b, "dblp", doc)
	for _, g := range bench.Fig14Guards {
		b.Run(g.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.transform(b, g.Guard)
			}
		})
	}
	b.Run("baseline-dump", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := p.open(b)
			d, err := st.Doc(p.name)
			if err != nil {
				b.Fatal(err)
			}
			re, err := d.Reconstruct()
			if err != nil {
				b.Fatal(err)
			}
			if err := re.WriteXML(io.Discard, false); err != nil {
				b.Fatal(err)
			}
			st.Close()
		}
	})
}

// BenchmarkFig15 measures target-shape sensitivity: deep vs bushy, small
// vs large targets over the three datasets; the per-op metric is output
// elements per second.
func BenchmarkFig15(b *testing.B) {
	type ds struct {
		name   string
		doc    *xmltree.Document
		shapes map[string]string
	}
	datasets := []ds{
		{"nasa", nasa.Generate(nasa.Config{Datasets: 200, Seed: 42}), map[string]string{
			"deep-small":  "CAST MORPH dataset [ title [ abstract [ para ] ] ]",
			"bushy-small": "CAST MORPH dataset [ title altname identifier ]",
			"bushy-large": "CAST MORPH dataset [ title altname identifier abstract [ para ] date [ year month day ] instrument [ name observatory ] ]",
		}},
		{"dblp", dblp.Generate(dblp.Config{Publications: 1500, Seed: 42}), map[string]string{
			"deep-small":  "CAST MORPH author [ title [ year [ pages ] ] ]",
			"bushy-small": "CAST MORPH article [ author title year ]",
			"bushy-large": "CAST MORPH dblp [ article [ author title year pages url volume journal ] inproceedings [ booktitle crossref ] ]",
		}},
		{"xmark", xmark.Generate(xmark.Config{Factor: 0.01, Seed: 42}), map[string]string{
			"deep-small":  "CAST MORPH open_auctions [ open_auction [ bidder [ date ] ] ]",
			"bushy-small": "CAST MORPH open_auction [ initial current quantity ]",
			"bushy-large": "CAST MORPH open_auction [ initial reserve current quantity type seller itemref interval [ start end ] ]",
		}},
	}
	for _, d := range datasets {
		p := prepare(b, d.name, d.doc)
		for shapeName, guard := range d.shapes {
			b.Run(d.name+"/"+shapeName, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p.transform(b, guard)
				}
			})
		}
	}
}

// BenchmarkFig16 measures each XMorph operation composed with one fixed
// MORPH: the costs should be flat because operations compile into the
// target shape and the data is rendered once.
func BenchmarkFig16(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Factor: 0.01, Seed: 42})
	p := prepare(b, "xmark16", doc)
	for _, op := range bench.Fig16Ops {
		b.Run(op.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.transform(b, op.Guard)
			}
		})
	}
}

// BenchmarkTable1 measures the path-cardinality computation behind Table I
// (and behind every information-loss check).
func BenchmarkTable1(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Factor: 0.005, Seed: 42})
	sh := shape.FromDocument(doc)
	types := sh.Types()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := types[i%len(types)]
		to := types[(i*7+3)%len(types)]
		sh.PathCard(from, to)
	}
}

// BenchmarkClosestJoin measures the Section VII sort-merge closest join on
// its own: pairing bidders with their auctions.
func BenchmarkClosestJoin(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Factor: 0.02, Seed: 42})
	auctions := doc.NodesOfType("site.open_auctions.open_auction")
	bidders := doc.NodesOfType("site.open_auctions.open_auction.bidder")
	b.ReportMetric(float64(len(auctions)), "auctions")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		closest.Join(auctions, bidders)
	}
}

// BenchmarkHotpathShred compares the batched shredder (per-type sorted
// runs flushed through PutBatch, B+tree sorted-insert fast path on)
// against the per-chunk Put ablation — the before/after pair behind the
// shred rows of BENCH_hotpath.json. Page writes are the headline metric.
func BenchmarkHotpathShred(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Factor: 0.02, Seed: 42})
	xml := doc.XML(false)
	for _, variant := range []string{"batched", "per-chunk-put"} {
		b.Run(variant, func(b *testing.B) {
			dir := b.TempDir()
			b.SetBytes(int64(len(xml)))
			var written, fastHits int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path := filepath.Join(dir, fmt.Sprintf("s%d.db", i))
				opts := &kvstore.Options{CachePages: 128}
				if variant == "per-chunk-put" {
					opts.DisableFastPath = true
					opts.BalancedSplitOnly = true
				}
				sopts := []store.Option{store.WithKVOptions(opts)}
				if variant == "per-chunk-put" {
					sopts = append(sopts, store.WithUnbatchedShred())
				}
				st, err := store.Open(path, sopts...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := st.Shred("d", strings.NewReader(xml), nil); err != nil {
					b.Fatal(err)
				}
				stats := st.Stats()
				written += stats.BlocksWritten
				fastHits += stats.FastPathHits
				st.Close()
				os.Remove(path)
			}
			b.ReportMetric(float64(written)/float64(b.N), "pages-written/op")
			b.ReportMetric(float64(fastHits)/float64(b.N), "fastpath-hits/op")
		})
	}
}

// BenchmarkHotpathCachedJoin compares the CSR grouped join cache against
// the map[*Node][]*Node layout it replaced: build the grouping once,
// then look up every parent's partners. Allocs/op is the headline — the
// CSR layout allocates a couple of slices where the map allocates one
// bucket chain plus a slice per parent.
func BenchmarkHotpathCachedJoin(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Factor: 0.02, Seed: 42})
	auctions := doc.NodesOfType("site.open_auctions.open_auction")
	bidders := doc.NodesOfType("site.open_auctions.open_auction.bidder")
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			g := closest.GroupJoin(auctions, bidders, nil)
			for _, a := range auctions {
				sink += len(g.Of(a))
			}
		}
		_ = sink
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			m := map[*xmltree.Node][]*xmltree.Node{}
			closest.JoinWith(auctions, bidders, func(p, c *xmltree.Node) { m[p] = append(m[p], c) })
			for _, a := range auctions {
				sink += len(m[a])
			}
		}
		_ = sink
	})
}

// BenchmarkHotpathPutBatch compares one sorted PutBatch against the same
// keys inserted with sequential Puts (fast path on) and with the fast
// path disabled — isolating the kvstore layer of the hot-path overhaul.
func BenchmarkHotpathPutBatch(b *testing.B) {
	const n = 20000
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%08d", i))
		vals[i] = []byte(fmt.Sprintf("val-%d", i))
	}
	run := func(b *testing.B, disableFast bool, batch bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db := kvstore.OpenMemory(&kvstore.Options{CachePages: 1 << 16, DisableFastPath: disableFast})
			if batch {
				if err := db.PutBatch(keys, vals); err != nil {
					b.Fatal(err)
				}
			} else {
				for j := range keys {
					if err := db.Put(keys[j], vals[j]); err != nil {
						b.Fatal(err)
					}
				}
			}
			db.Close()
		}
	}
	b.Run("putbatch", func(b *testing.B) { run(b, false, true) })
	b.Run("put-fastpath", func(b *testing.B) { run(b, false, false) })
	b.Run("put-slowpath", func(b *testing.B) { run(b, true, false) })
}

// BenchmarkShred measures the streaming shredder (the paper reports shred
// cost separately from transformation cost).
func BenchmarkShred(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Factor: 0.005, Seed: 42})
	xml := doc.XML(false)
	dir := b.TempDir()
	b.SetBytes(int64(len(xml)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, fmt.Sprintf("s%d.db", i))
		st, err := store.Open(path, store.WithKVOptions(nil))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Shred("d", strings.NewReader(xml), nil); err != nil {
			b.Fatal(err)
		}
		st.Close()
		os.Remove(path)
	}
}
