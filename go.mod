module xmorph

go 1.22
