// Package xmorph is a Go implementation of XMorph 2.0, the
// shape-polymorphic XML data transformation language of "Querying XML
// Data: As You Shape It" (Dyreson & Bhowmick, ICDE 2012).
//
// A query guard declares the shape a query needs; XMorph checks — from
// the adorned shapes alone, before any data moves — whether transforming
// the data into that shape can lose or manufacture information, and then
// renders the data by preserving closest relationships.
//
// The entry point is internal/core:
//
//	res, err := core.TransformString(
//	    "MORPH author [ name book [ title ] ]", xmlText)
//	fmt.Println(res.Loss)             // strongly-typed / narrowing / ...
//	fmt.Println(res.Output.XML(true)) // the reshaped document
//
// See README.md for the architecture and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package xmorph
