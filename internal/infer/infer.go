// Package infer generates a query guard from an XQuery query — the
// paper's Section X names guard inference as an open problem ("whether a
// guard can be automatically generated from a query"). The inference here
// is syntactic: the label chains the query's path expressions traverse
// become the nested MORPH pattern the query needs. The inferred guard is
// then type-checked against the data like any hand-written guard, so the
// usual information-loss feedback applies.
package infer

import (
	"fmt"
	"sort"
	"strings"

	"xmorph/internal/xq"
)

// node is one label in the inferred shape tree.
type node struct {
	label string
	kids  []*node
}

func (n *node) kid(label string) *node {
	for _, k := range n.kids {
		if k.label == label {
			return k
		}
	}
	k := &node{label: label}
	n.kids = append(n.kids, k)
	return k
}

// FromQuery infers the MORPH guard a query needs. It returns an error when
// the query traverses no paths (nothing to infer).
func FromQuery(query string) (string, error) {
	chains, err := xq.ExtractPaths(query)
	if err != nil {
		return "", err
	}
	if len(chains) == 0 {
		return "", fmt.Errorf("infer: the query traverses no label paths")
	}
	// Merge chains into a forest.
	root := &node{}
	for _, chain := range chains {
		cur := root
		for _, label := range chain {
			cur = cur.kid(label)
		}
	}
	sortKids(root)
	var b strings.Builder
	b.WriteString("MORPH")
	for _, r := range root.kids {
		b.WriteString(" ")
		writePattern(&b, r)
	}
	return b.String(), nil
}

// sortKids makes inference deterministic: children sort by label at every
// level (the query's traversal order is preserved only per chain, and
// sibling order does not matter to a guard).
func sortKids(n *node) {
	sort.Slice(n.kids, func(i, j int) bool { return n.kids[i].label < n.kids[j].label })
	for _, k := range n.kids {
		sortKids(k)
	}
}

func writePattern(b *strings.Builder, n *node) {
	b.WriteString(n.label)
	if len(n.kids) == 0 {
		return
	}
	b.WriteString(" [ ")
	for i, k := range n.kids {
		if i > 0 {
			b.WriteString(" ")
		}
		writePattern(b, k)
	}
	b.WriteString(" ]")
}
