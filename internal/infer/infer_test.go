package infer

import (
	"strings"
	"testing"

	"xmorph/internal/core"
	"xmorph/internal/xmltree"
	"xmorph/internal/xq"
)

func TestFromQueryIntroExample(t *testing.T) {
	// The paper's Section I query needs author -> book -> title (and the
	// name it returns).
	g, err := FromQuery(`for $a in doc("d.xml")/author
	  where $a/book/title = "X"
	  return <hit>{$a/name}</hit>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "MORPH author [ book [ title ] name ]"
	if g != want {
		t.Errorf("inferred %q, want %q", g, want)
	}
}

func TestFromQueryDescendantAndAttrs(t *testing.T) {
	g, err := FromQuery(`for $b in doc("d.xml")//book where $b/@year > 2000 return $b/title`)
	if err != nil {
		t.Fatal(err)
	}
	if g != "MORPH book [ @year title ]" {
		t.Errorf("inferred %q", g)
	}
}

func TestFromQueryLetAndNesting(t *testing.T) {
	g, err := FromQuery(`for $s in doc("d.xml")/site/people/person
	  let $n := $s/name
	  return <p>{$n}{$s/emailaddress}</p>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "MORPH site [ people [ person [ emailaddress name ] ] ]"
	if g != want {
		t.Errorf("inferred %q, want %q", g, want)
	}
}

func TestFromQueryNoPaths(t *testing.T) {
	if _, err := FromQuery(`1 + 2`); err == nil {
		t.Error("pure arithmetic should not infer a guard")
	}
	if _, err := FromQuery(`%%%`); err == nil {
		t.Error("bad query should error")
	}
}

func TestFromQueryQuantified(t *testing.T) {
	g, err := FromQuery(`for $b in doc("d.xml")/book
	  where some $a in $b/author satisfies contains($a, "Ann")
	  return $b/title`)
	if err != nil {
		t.Fatal(err)
	}
	if g != "MORPH book [ author title ]" {
		t.Errorf("inferred %q", g)
	}
}

// TestInferredGuardClosesTheLoop is the full workflow: infer the guard
// from the query, transform wrongly-shaped data with it, and run the
// query successfully on the result.
func TestInferredGuardClosesTheLoop(t *testing.T) {
	// Data shaped like Figure 1(b): the query's paths do not match.
	const data = `<data>
	  <publisher><name>W</name>
	    <book><title>X</title><author><name>V</name></author></book>
	    <book><title>Y</title><author><name>U</name></author></book>
	  </publisher>
	</data>`
	const query = `for $a in doc("d.xml")/author
	  where $a/book/title = "X"
	  return string($a/name)`

	g, err := FromQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.TransformString(g, data)
	if err != nil {
		t.Fatalf("inferred guard %q failed: %v", g, err)
	}
	wrapped := xmltree.MustParse("<w>" + res.Output.XML(false) + "</w>")
	e := xq.New()
	e.Bind("d.xml", wrapped)
	out, err := e.QueryXML(strings.Replace(query, `doc("d.xml")/author`, `doc("d.xml")//author`, 1))
	if err != nil {
		t.Fatal(err)
	}
	if out != "V" {
		t.Errorf("query over inferred-guard output = %q, want V", out)
	}
}

func TestFromQueryUnion(t *testing.T) {
	g, err := FromQuery(`doc("d.xml")/book/title | doc("d.xml")/book/author`)
	if err != nil {
		t.Fatal(err)
	}
	if g != "MORPH book [ author title ]" {
		t.Errorf("inferred %q", g)
	}
}

func TestFromQueryParentAxis(t *testing.T) {
	g, err := FromQuery(`for $t in doc("d.xml")/book/title return $t/../author`)
	if err != nil {
		t.Fatal(err)
	}
	if g != "MORPH book [ author title ]" {
		t.Errorf("inferred %q", g)
	}
}
