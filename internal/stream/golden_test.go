package stream

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"xmorph/internal/guard"
	"xmorph/internal/plan"
	"xmorph/internal/render"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/store"
	"xmorph/internal/xmltree"
)

var update = flag.Bool("update", false, "rewrite golden outputs from the tree renderer")

// goldenCase is one testdata file: a guard at the streamable/store-backed
// boundary, its input document, the expected plan verdict, and the exact
// output bytes (regenerated from Render with -update — the tree renderer
// is the oracle).
type goldenCase struct {
	name    string
	verdict string // "streamable" or "store-backed"
	guard   string
	input   string
	output  string
}

func parseGolden(t *testing.T, path string) *goldenCase {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gc := &goldenCase{name: strings.TrimSuffix(filepath.Base(path), ".txt")}
	sections := map[string]string{}
	var cur string
	var buf strings.Builder
	flush := func() {
		if cur != "" {
			sections[cur] = strings.TrimSuffix(buf.String(), "\n")
		}
		buf.Reset()
	}
	for _, line := range strings.SplitAfter(string(raw), "\n") {
		trimmed := strings.TrimSuffix(line, "\n")
		if strings.HasPrefix(trimmed, "-- ") && strings.HasSuffix(trimmed, " --") {
			flush()
			cur = strings.TrimSuffix(strings.TrimPrefix(trimmed, "-- "), " --")
			continue
		}
		buf.WriteString(line)
	}
	flush()
	for _, k := range []string{"verdict", "guard", "input"} {
		if sections[k] == "" {
			t.Fatalf("%s: missing section %q", path, k)
		}
	}
	gc.verdict = strings.TrimSpace(sections["verdict"])
	gc.guard = strings.TrimSpace(sections["guard"])
	gc.input = sections["input"]
	gc.output = sections["output"]
	return gc
}

func writeGolden(t *testing.T, path string, gc *goldenCase) {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "-- verdict --\n%s\n-- guard --\n%s\n-- input --\n%s\n-- output --\n%s\n",
		gc.verdict, gc.guard, gc.input, gc.output)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenCorpus runs every testdata case through the planner, the tree
// renderer, the join-backed streamer, and (when streamable) the one-pass
// executor over both the in-memory and the shredded-store source — all
// four must produce the committed bytes.
func TestGoldenCorpus(t *testing.T) {
	paths, err := filepath.Glob("testdata/*.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden cases in testdata/")
	}
	sort.Strings(paths)
	for _, path := range paths {
		gc := parseGolden(t, path)
		t.Run(gc.name, func(t *testing.T) {
			doc := xmltree.MustParse(gc.input)
			p, err := semantics.Compile(guard.MustParse(gc.guard), shape.FromDocument(doc))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			tgt := p.ComposedTarget()

			d := plan.Classify(tgt)
			gotVerdict := "store-backed"
			if d.Streamable {
				gotVerdict = "streamable"
			}
			if gotVerdict != gc.verdict {
				t.Fatalf("verdict = %s (%s), want %s", gotVerdict, d.Reason, gc.verdict)
			}

			tree, err := render.Render(doc, tgt, nil)
			if err != nil {
				t.Fatalf("render: %v", err)
			}
			want := tree.XML(false)
			if *update {
				gc.output = want
				writeGolden(t, path, gc)
			}
			if want != gc.output {
				t.Errorf("tree render differs from golden (run -update?):\ngot:  %q\nwant: %q", want, gc.output)
			}

			var sb strings.Builder
			if _, err := render.Stream(doc, tgt, &sb, nil); err != nil {
				t.Fatalf("render.Stream: %v", err)
			}
			if sb.String() != gc.output {
				t.Errorf("render.Stream differs:\ngot:  %q\nwant: %q", sb.String(), gc.output)
			}

			if !d.Streamable {
				var b strings.Builder
				if _, err := Execute(FromNodes(doc), tgt, &b, nil); !errors.Is(err, ErrNotStreamable) {
					t.Errorf("Execute on store-backed target: err = %v, want ErrNotStreamable", err)
				}
				return
			}

			// One-pass executor over the in-memory sequence source.
			var b strings.Builder
			n, err := Execute(FromNodes(doc), tgt, &b, nil)
			if err != nil {
				t.Fatalf("Execute(memory): %v", err)
			}
			if b.String() != gc.output {
				t.Errorf("Execute(memory) differs:\ngot:  %q\nwant: %q", b.String(), gc.output)
			}
			if n != tree.Size() {
				t.Errorf("Execute count = %d, tree size = %d", n, tree.Size())
			}

			// And over the shredded store, straight from kvstore scans.
			s := store.OpenMemory()
			defer s.Close()
			if _, err := s.Shred(gc.name, strings.NewReader(gc.input), nil); err != nil {
				t.Fatalf("shred: %v", err)
			}
			sd, err := s.Doc(gc.name)
			if err != nil {
				t.Fatal(err)
			}
			b.Reset()
			if _, err := Execute(FromDoc(sd), tgt, &b, nil); err != nil {
				t.Fatalf("Execute(store): %v", err)
			}
			if b.String() != gc.output {
				t.Errorf("Execute(store) differs:\ngot:  %q\nwant: %q", b.String(), gc.output)
			}
		})
	}
}
