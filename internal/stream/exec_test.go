package stream

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"xmorph/internal/guard"
	"xmorph/internal/obs"
	"xmorph/internal/plan"
	"xmorph/internal/render"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/store"
	"xmorph/internal/xmltree"
)

// compile builds the composed target of a guard against a document.
func compile(t *testing.T, guardSrc string, doc *xmltree.Document) *semantics.Target {
	t.Helper()
	p, err := semantics.Compile(guard.MustParse(guardSrc), shape.FromDocument(doc))
	if err != nil {
		t.Fatalf("compile %q: %v", guardSrc, err)
	}
	return p.ComposedTarget()
}

// TestExecuteRandomDocsMatchesRender is the byte-identity oracle over
// random documents: for every guard the planner marks streamable, the
// one-pass executor must produce exactly Render(...).XML(false).
func TestExecuteRandomDocsMatchesRender(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	labels := []string{"a", "b", "c"}
	guards := []string{
		"CAST MUTATE root",
		"CAST MORPH a [ b ]",
		"CAST MORPH root [ a c ]",
		"CAST MORPH b [ root ]",
		"CAST MORPH (RESTRICT a [ b ]) ",
		"CAST-WIDENING MORPH (NEW w) [ a [ b ] ]",
		"CAST MORPH root [ a ] | TRANSLATE a -> alpha",
	}
	streamableTrials := 0
	for trial := 0; trial < 60; trial++ {
		b := xmltree.NewBuilder().Elem("root")
		depth := 0
		for i := 0; i < 3+rng.Intn(25); i++ {
			if depth > 0 && rng.Intn(3) == 0 {
				b.End()
				depth--
				continue
			}
			b.Elem(labels[rng.Intn(3)])
			if rng.Intn(4) == 0 {
				b.Attr("k", `v"<&>`)
			}
			if rng.Intn(2) == 0 {
				b.Text("v<&>")
				b.End()
			} else {
				depth++
			}
		}
		for ; depth >= 0; depth-- {
			b.End()
		}
		doc := b.MustDocument()
		for _, g := range guards {
			p, err := semantics.Compile(guard.MustParse(g), shape.FromDocument(doc))
			if err != nil {
				continue // random doc may lack the types
			}
			tgt := p.ComposedTarget()
			if !plan.Classify(tgt).Streamable {
				continue
			}
			streamableTrials++
			tree, err := render.Render(doc, tgt, nil)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			n, err := Execute(FromNodes(doc), tgt, &sb, nil)
			if err != nil {
				t.Fatalf("trial %d guard %q: %v", trial, g, err)
			}
			if sb.String() != tree.XML(false) {
				t.Fatalf("trial %d guard %q:\nstream: %s\ntree:   %s",
					trial, g, sb.String(), tree.XML(false))
			}
			if n != tree.Size() {
				t.Fatalf("trial %d guard %q: count %d != size %d", trial, g, n, tree.Size())
			}
		}
	}
	if streamableTrials < 50 {
		t.Fatalf("only %d streamable trials: battery too weak", streamableTrials)
	}
}

// TestExecuteNotStreamable: the executor refuses store-backed targets
// with the sentinel, carrying the planner's reason.
func TestExecuteNotStreamable(t *testing.T) {
	doc := xmltree.MustParse(`<data><a><x>1</x></a><b><y>2</y></b></data>`)
	tgt := compile(t, "CAST MORPH x [ y ]", doc)
	_, err := Execute(FromNodes(doc), tgt, io.Discard, nil)
	if !errors.Is(err, ErrNotStreamable) {
		t.Fatalf("err = %v, want ErrNotStreamable", err)
	}
	if !strings.Contains(err.Error(), "cross-axis") {
		t.Errorf("reason missing from error: %v", err)
	}
}

// chokeWriter accepts limit bytes, then fails with err (or a short write
// when err is nil, which bufio reports as io.ErrShortWrite).
type chokeWriter struct {
	limit int
	n     int
	err   error
}

func (c *chokeWriter) Write(p []byte) (int, error) {
	room := c.limit - c.n
	if room >= len(p) {
		c.n += len(p)
		return len(p), nil
	}
	if room < 0 {
		room = 0
	}
	c.n += room
	return room, c.err
}

// TestExecuteWriterErrors: write failures surface — from the buffered
// flush path for small outputs, mid-stream for large ones.
func TestExecuteWriterErrors(t *testing.T) {
	boom := errors.New("sink full")

	small := xmltree.MustParse(`<root><a>1</a></root>`)
	tgt := compile(t, "CAST MUTATE root", small)
	if _, err := Execute(FromNodes(small), tgt, &chokeWriter{limit: 3, err: boom}, nil); !errors.Is(err, boom) {
		t.Errorf("flush-path error: got %v, want %v", err, boom)
	}
	if _, err := Execute(FromNodes(small), tgt, &chokeWriter{limit: 3}, nil); !errors.Is(err, io.ErrShortWrite) {
		t.Errorf("short write: got %v, want io.ErrShortWrite", err)
	}

	b := xmltree.NewBuilder().Elem("root")
	for i := 0; i < 400; i++ {
		b.Elem("a").Text("some repeated element value text").End()
	}
	b.End()
	big := b.MustDocument()
	tgt = compile(t, "CAST MUTATE root", big)
	if _, err := Execute(FromNodes(big), tgt, &chokeWriter{limit: 5000, err: boom}, nil); !errors.Is(err, boom) {
		t.Errorf("mid-stream error: got %v, want %v", err, boom)
	}
}

// TestExecuteSpanAttrs: a traced run records output and scan counts.
func TestExecuteSpanAttrs(t *testing.T) {
	doc := xmltree.MustParse(`<root><a>1</a><a>2</a></root>`)
	tgt := compile(t, "CAST MUTATE root", doc)
	tr := obs.New("exec")
	sp := tr.Root()
	var sb strings.Builder
	n, err := Execute(FromNodes(doc), tgt, &sb, sp)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if v, ok := sp.Attr("nodes-out"); !ok || v != fmt.Sprint(n) {
		t.Errorf("nodes-out = %q, want %d", v, n)
	}
	if v, ok := sp.Attr("bytes-out"); !ok || v != fmt.Sprint(sb.Len()) {
		t.Errorf("bytes-out = %q, want %d", v, sb.Len())
	}
	if v, ok := sp.Attr("scans"); !ok || v == "0" {
		t.Errorf("scans = %q", v)
	}
}

// buildFlat makes <root> with n <a id="..">text</a> children — same shape
// at any n, so targets compile identically across sizes.
func buildFlat(n int) *xmltree.Document {
	b := xmltree.NewBuilder().Elem("root")
	for i := 0; i < n; i++ {
		b.Elem("a").Attr("id", "x42").Text("value text").End()
	}
	b.End()
	return b.MustDocument()
}

// TestExecuteHotLoopAllocFree proves the emit loop allocates nothing per
// node: growing the document 10x may not add a single allocation per run
// over the in-memory source (all per-run allocations are setup: cursor
// table, tinfo map, bufio buffer).
func TestExecuteHotLoopAllocFree(t *testing.T) {
	measure := func(doc *xmltree.Document) float64 {
		tgt := compile(t, "CAST MUTATE root", doc)
		src := FromNodes(doc)
		return testing.AllocsPerRun(50, func() {
			if _, err := Execute(src, tgt, io.Discard, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(buildFlat(50))
	big := measure(buildFlat(500))
	if big > small+1 {
		t.Errorf("allocs grew with document size: %0.1f at 50 nodes, %0.1f at 500", small, big)
	}
}

// TestExecuteStoreAllocsSublinear bounds the store-backed path: the
// executor itself stays allocation-free, so what remains is the page
// decode underneath the scan cursors — well under the per-node cost of
// materializing sequences.
func TestExecuteStoreAllocsSublinear(t *testing.T) {
	measure := func(n int) float64 {
		s := store.OpenMemory()
		defer s.Close()
		var sb strings.Builder
		sb.WriteString("<root>")
		for i := 0; i < n; i++ {
			sb.WriteString("<a>value text</a>")
		}
		sb.WriteString("</root>")
		if _, err := s.Shred("d", strings.NewReader(sb.String()), nil); err != nil {
			t.Fatal(err)
		}
		doc, err := s.Doc("d")
		if err != nil {
			t.Fatal(err)
		}
		tgt := compile(t, "CAST MUTATE root", xmltree.MustParse(sb.String()))
		return testing.AllocsPerRun(20, func() {
			if _, err := Execute(FromDoc(doc), tgt, io.Discard, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := measure(50), measure(500)
	perNode := (big - small) / 450
	if perNode > 4 {
		t.Errorf("store-backed allocs/node = %0.2f (small %0.0f, big %0.0f): page decode should amortize", perNode, small, big)
	}
}

// TestExecuteManyValues exercises chunked values end to end: a value
// larger than the store chunk size must stream back byte-identical.
func TestExecuteChunkedValues(t *testing.T) {
	big := strings.Repeat("lorem ipsum <&> ", 500) // ~8 KB, chunked and escaped
	esc := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;").Replace(big)
	src := "<doc><body>" + esc + "</body></doc>"
	s := store.OpenMemory()
	defer s.Close()
	if _, err := s.Shred("d", strings.NewReader(src), nil); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	mem := xmltree.MustParse(src)
	tgt := compile(t, "CAST MUTATE doc", mem)
	tree, err := render.Render(mem, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := Execute(FromDoc(doc), tgt, &out, nil); err != nil {
		t.Fatal(err)
	}
	if out.String() != tree.XML(false) {
		t.Errorf("chunked value diverged: %d vs %d bytes", out.Len(), len(tree.XML(false)))
	}
}

// TestExecuteTimeToFirstByte sanity-checks the streaming claim the bench
// quantifies: the executor emits its first bytes before draining the
// whole input scan (here: first write lands after O(1) nodes).
func TestExecuteTimeToFirstByte(t *testing.T) {
	// Values sized so a handful of nodes fill the 4 KB output buffer:
	// the first sink write may lag by one buffer, never by the document.
	b := xmltree.NewBuilder().Elem("root")
	for i := 0; i < 2000; i++ {
		b.Elem("a").Text(strings.Repeat("v", 100)).End()
	}
	b.End()
	doc := b.MustDocument()
	tgt := compile(t, "CAST MUTATE root", doc)
	fw := &firstWriteWatcher{}
	if _, err := Execute(&watchedSource{inner: FromNodes(doc), w: fw}, tgt, fw, nil); err != nil {
		t.Fatal(err)
	}
	if fw.nodesAtFirstWrite > 200 {
		t.Errorf("first write only after %d node reads: not streaming", fw.nodesAtFirstWrite)
	}
}

type firstWriteWatcher struct {
	nodesRead         int
	nodesAtFirstWrite int
	wrote             bool
}

func (f *firstWriteWatcher) Write(p []byte) (int, error) {
	if !f.wrote {
		f.wrote = true
		f.nodesAtFirstWrite = f.nodesRead
	}
	return len(p), nil
}

type watchedSource struct {
	inner Source
	w     *firstWriteWatcher
}

func (s *watchedSource) ScanType(t string) Cursor {
	return &watchedCursor{Cursor: s.inner.ScanType(t), w: s.w}
}

type watchedCursor struct {
	Cursor
	w *firstWriteWatcher
}

func (c *watchedCursor) Next() bool {
	c.w.nodesRead++
	return c.Cursor.Next()
}
