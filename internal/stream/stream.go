// Package stream is the one-pass streaming executor for streamable
// guards (see internal/plan): it renders a composed target straight
// from Dewey-ordered node scans to a writer, holding only a bounded set
// of forward cursors — one per down- or up-axis join — plus the current
// ancestor chain of in-flight nodes. It never materializes type
// sequences, closest.Grouped join graphs, or a result tree, so peak
// memory is independent of document size and the first output byte
// leaves before the first type sequence has been fully read.
//
// The invariant that makes one pass suffice: every rendered node's
// parent instances arrive in document order with pairwise-disjoint
// subtrees (they share one type, hence one depth), so each join
// cursor's probe positions only ever move forward — down-axis partner
// runs are consumed in order, and up-axis ancestor lookups advance to
// a non-decreasing Dewey prefix. RESTRICT probes park on their witness
// so a repeated probe of the same vertex re-answers consistently
// without rereading.
//
// The byte output equals Render(...).XML(false) for every target the
// planner marks streamable; the golden corpus in testdata pins that
// oracle.
package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"xmorph/internal/obs"
	"xmorph/internal/plan"
	"xmorph/internal/semantics"
	"xmorph/internal/store"
	"xmorph/internal/xmltree"
)

// ErrNotStreamable reports an Execute call on a target the planner
// classified store-backed; callers should fall back to render.Stream.
var ErrNotStreamable = errors.New("stream: target is not streamable")

// Cursor is a forward-only scan over one type's node sequence in Dewey
// order. Dewey and Value may alias buffers reused across Next calls.
type Cursor interface {
	Next() bool
	Dewey() xmltree.Dewey
	Value() []byte
	Err() error
	Close()
}

// Source opens Dewey-ordered scans of type sequences. Scans of types
// the source does not hold must yield an empty cursor.
type Source interface {
	ScanType(t string) Cursor
}

// FromDoc adapts a shredded store document to a streaming Source: each
// scan decodes nodes straight from the kvstore iterator.
func FromDoc(d *store.Doc) Source { return docSource{d} }

type docSource struct{ d *store.Doc }

func (s docSource) ScanType(t string) Cursor { return s.d.ScanType(t) }

// NodeSource supplies materialized type sequences (render.Source's
// shape); FromNodes adapts it for tests and in-memory documents.
type NodeSource interface {
	NodesOfType(t string) []*xmltree.Node
}

// FromNodes adapts a materialized source (e.g. *xmltree.Document) to a
// streaming Source. Values are copied into a per-cursor reused buffer
// to honor the Cursor aliasing contract.
func FromNodes(doc NodeSource) Source { return nodeSource{doc} }

type nodeSource struct{ doc NodeSource }

func (s nodeSource) ScanType(t string) Cursor {
	return &nodeCursor{nodes: s.doc.NodesOfType(t), idx: -1}
}

type nodeCursor struct {
	nodes []*xmltree.Node
	idx   int
	val   []byte
}

func (c *nodeCursor) Next() bool {
	c.idx++
	if c.idx >= len(c.nodes) {
		return false
	}
	c.val = append(c.val[:0], c.nodes[c.idx].Value...)
	return true
}
func (c *nodeCursor) Dewey() xmltree.Dewey { return c.nodes[c.idx].Dewey }
func (c *nodeCursor) Value() []byte        { return c.val }
func (c *nodeCursor) Err() error           { return nil }
func (c *nodeCursor) Close()               {}

// Execute streams the composed target from src to w in one pass,
// returning the number of elements and attributes written. It fails
// with ErrNotStreamable when the planner rejects the target. When sp is
// non-nil it records nodes, bytes, and cursor count; a nil span is
// free. Write and storage errors — including the final buffered flush —
// are surfaced on the returned error.
func Execute(src Source, tgt *semantics.Target, w io.Writer, sp *obs.Span) (int, error) {
	if d := plan.Classify(tgt); !d.Streamable {
		return 0, fmt.Errorf("%w: %s", ErrNotStreamable, d.Reason)
	}
	var cw *countingWriter
	if sp != nil {
		cw = &countingWriter{w: w}
		w = cw
	}
	bw := bufio.NewWriter(w)
	e := &exec{src: src, w: bw}
	// The execution tree mirrors the target structure with one node per
	// occurrence: a TNode shared between two points of the target (label
	// resolution and CLONE reuse subtrees) joins along a different axis
	// in each, so each occurrence carries its own cursor.
	roots := make([]*xnode, len(tgt.Roots))
	for i, root := range tgt.Roots {
		roots[i] = e.prep(root, "")
	}
	defer func() {
		for _, cu := range e.cursors {
			cu.c.Close()
		}
	}()
	e.run(roots)
	err := e.err
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if err == nil {
		for _, cu := range e.cursors {
			if cerr := cu.c.Err(); cerr != nil {
				err = fmt.Errorf("stream: scan: %w", cerr)
				break
			}
		}
	}
	if sp != nil {
		sp.Set("nodes-out", int64(e.count))
		sp.Set("bytes-out", cw.n)
		sp.Set("scans", int64(len(e.cursors)))
	}
	return e.count, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// cursor wraps a Cursor with its primed/valid state.
type cursor struct {
	c     Cursor
	valid bool
}

func (cu *cursor) advance()         { cu.valid = cu.c.Next() }
func (cu *cursor) d() xmltree.Dewey { return cu.c.Dewey() }
func (cu *cursor) v() []byte        { return cu.c.Value() }

// xnode is one occurrence of a target node in the execution tree: its
// join axis, its scan cursor (nil for self-axis joins, which reuse the
// parent's current vertex), and statically derived rendering facts.
type xnode struct {
	tn      *semantics.TNode
	sourced bool
	axis    plan.Axis
	cur     *cursor
	// attrLeaf marks a childless node of an attribute type: inside an
	// open element it renders as an attribute (the type's Attr-ness is
	// static, so the whole partner run is homogeneous).
	attrLeaf bool
	// kids are the rendered children, in target order; for a wrapper the
	// anchor child is carried in first instead and excluded here.
	kids []*xnode
	// reqs are the RESTRICT requirement probes.
	reqs []*xnode
	// first is a wrapper's anchor child (nil for a static fill subtree).
	first *xnode
}

type exec struct {
	src     Source
	w       *bufio.Writer
	cursors []*cursor
	count   int
	wrote   bool // forest separator state
	err     error
}

// prep builds the execution tree: one xnode per target-node occurrence,
// opening (and priming) a cursor wherever the axis needs its own scan.
func (e *exec) prep(tn *semantics.TNode, join string) *xnode {
	if tn.Source == "" {
		x := &xnode{tn: tn}
		ftn := firstSourced(tn)
		if ftn == nil {
			return x // static fill: rendered from the TNode alone
		}
		x.first = e.prep(ftn, join)
		for _, kid := range tn.Kids {
			if kid != ftn {
				x.kids = append(x.kids, e.prep(kid, ftn.Source))
			}
		}
		return x
	}
	x := &xnode{
		tn:       tn,
		sourced:  true,
		axis:     plan.AxisOf(join, tn.Source),
		attrLeaf: len(tn.Kids) == 0 && typeIsAttr(tn.Source),
	}
	if x.axis != plan.AxisSelf {
		x.cur = e.open(tn.Source)
	}
	for _, req := range tn.Require {
		x.reqs = append(x.reqs, e.prepRequire(req, tn.Source))
	}
	for _, kid := range tn.Kids {
		x.kids = append(x.kids, e.prep(kid, tn.Source))
	}
	return x
}

func (e *exec) prepRequire(req *semantics.TNode, join string) *xnode {
	if req.Source == "" {
		return &xnode{tn: req} // vacuous probe
	}
	x := &xnode{tn: req, sourced: true, axis: plan.AxisOf(join, req.Source)}
	if x.axis != plan.AxisSelf {
		x.cur = e.open(req.Source)
	}
	for _, kid := range req.Kids {
		x.kids = append(x.kids, e.prepRequire(kid, req.Source))
	}
	return x
}

func (e *exec) open(t string) *cursor {
	cu := &cursor{c: e.src.ScanType(t)}
	cu.advance()
	e.cursors = append(e.cursors, cu)
	return cu
}

func typeIsAttr(t string) bool {
	name := t
	if i := strings.LastIndex(t, xmltree.TypeSep); i >= 0 {
		name = t[i+1:]
	}
	return strings.HasPrefix(name, "@")
}

func firstSourced(tn *semantics.TNode) *semantics.TNode {
	for _, k := range tn.Kids {
		if k.Source != "" {
			return k
		}
	}
	return nil
}

// cmpPrefix compares d's first len(p) components against p: the result
// orders d's position relative to p's subtree (-1 before, 0 inside or
// at p, +1 past). d must be at least as deep as p.
func cmpPrefix(d, p xmltree.Dewey) int {
	for i, pc := range p {
		if dc := d[i]; dc != pc {
			if dc < pc {
				return -1
			}
			return 1
		}
	}
	return 0
}

// --- write helpers (stick at the first error) ---

func (e *exec) str(s string) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.WriteString(s)
}

func (e *exec) escape(b []byte, inAttr bool) {
	if e.err != nil {
		return
	}
	start := 0
	for i := 0; i < len(b); i++ {
		var rep string
		switch b[i] {
		case '&':
			rep = "&amp;"
		case '<':
			rep = "&lt;"
		case '>':
			rep = "&gt;"
		case '"':
			if !inAttr {
				continue
			}
			rep = "&quot;"
		default:
			continue
		}
		if _, e.err = e.w.Write(b[start:i]); e.err != nil {
			return
		}
		if _, e.err = e.w.WriteString(rep); e.err != nil {
			return
		}
		start = i + 1
	}
	_, e.err = e.w.Write(b[start:])
}

// openTag closes the pending open tag with ">" exactly once; an element
// whose flag stays false self-closes.
func (e *exec) openTag(closed *bool) {
	if !*closed {
		e.str(">")
		*closed = true
	}
}

func (e *exec) sep() {
	if e.wrote {
		e.str("\n")
	}
	e.wrote = true
}

// --- emission (mirrors render.Render node for node) ---

func (e *exec) run(roots []*xnode) {
	for _, root := range roots {
		if e.err != nil {
			return
		}
		if !root.sourced {
			e.wrapperRoot(root)
			continue
		}
		for cu := root.cur; cu.valid && e.err == nil; cu.advance() {
			if !e.satisfies(root, cu.d()) {
				continue
			}
			e.sep()
			e.element(root, cu.d(), cu.v())
		}
	}
}

// element writes one element rendered from vertex (vd, vv): open tag
// with attribute kids, own text, element kids, close tag or self-close.
func (e *exec) element(x *xnode, vd xmltree.Dewey, vv []byte) {
	e.count++
	e.str("<")
	e.str(x.tn.Name)
	for _, kid := range x.kids {
		if kid.sourced && kid.attrLeaf {
			e.attrKid(kid, vd, vv)
		}
	}
	closed := false
	if len(vv) > 0 {
		e.openTag(&closed)
		e.escape(vv, false)
	}
	for _, kid := range x.kids {
		if !kid.sourced {
			e.wrapper(kid, vd, vv, &closed)
			continue
		}
		if kid.attrLeaf {
			continue
		}
		e.elemKid(kid, vd, vv, &closed)
	}
	if !closed {
		e.str("/>")
		return
	}
	e.str("</")
	e.str(x.tn.Name)
	e.str(">")
}

func (e *exec) writeAttr(name string, val []byte) {
	e.count++
	e.str(" ")
	e.str(name)
	e.str(`="`)
	e.escape(val, true)
	e.str(`"`)
}

// attrKid drains an attribute-leaf kid's partners into the open tag.
func (e *exec) attrKid(kid *xnode, vd xmltree.Dewey, vv []byte) {
	switch kid.axis {
	case plan.AxisSelf:
		if e.satisfies(kid, vd) {
			e.writeAttr(kid.tn.Name, vv)
		}
	case plan.AxisDown:
		cu := kid.cur
		for cu.valid && cmpPrefix(cu.d(), vd) < 0 {
			cu.advance()
		}
		for cu.valid && cmpPrefix(cu.d(), vd) == 0 {
			if e.satisfies(kid, cu.d()) {
				e.writeAttr(kid.tn.Name, cu.v())
			}
			cu.advance()
		}
	}
}

// elemKid emits an element-rendering sourced kid's partners.
func (e *exec) elemKid(kid *xnode, vd xmltree.Dewey, vv []byte, closed *bool) {
	switch kid.axis {
	case plan.AxisSelf:
		if e.satisfies(kid, vd) {
			e.openTag(closed)
			e.element(kid, vd, vv)
		}
	case plan.AxisUp:
		// The unique partner is the ancestor at the kid type's depth:
		// the vertex whose Dewey number prefixes vd. It always exists
		// (type paths are rooted); the cursor advances monotonically
		// because parent vertices ascend.
		cu := kid.cur
		for cu.valid && cmpPrefix(vd, cu.d()) > 0 {
			cu.advance()
		}
		if cu.valid && cmpPrefix(vd, cu.d()) == 0 && e.satisfies(kid, cu.d()) {
			e.openTag(closed)
			e.leaf(kid, cu.v())
		}
	case plan.AxisDown:
		cu := kid.cur
		for cu.valid && cmpPrefix(cu.d(), vd) < 0 {
			cu.advance()
		}
		for cu.valid && cmpPrefix(cu.d(), vd) == 0 {
			if e.satisfies(kid, cu.d()) {
				e.openTag(closed)
				e.element(kid, cu.d(), cu.v())
			}
			cu.advance()
		}
	}
}

// leaf writes a childless element (the ancestor-axis case: the planner
// guarantees up-axis kids have no children, and ancestor types are
// never attributes).
func (e *exec) leaf(x *xnode, vv []byte) {
	e.count++
	e.str("<")
	e.str(x.tn.Name)
	if len(vv) == 0 {
		e.str("/>")
		return
	}
	e.str(">")
	e.escape(vv, false)
	e.str("</")
	e.str(x.tn.Name)
	e.str(">")
}

// wrapper emits a manufactured node below an element rendered from
// (vd, vv): one wrapper instance per anchor partner, or one static fill
// subtree when it has no sourced child.
func (e *exec) wrapper(x *xnode, vd xmltree.Dewey, vv []byte, closed *bool) {
	first := x.first
	if first == nil {
		e.openTag(closed)
		e.fill(x.tn)
		return
	}
	switch first.axis {
	case plan.AxisSelf:
		if e.satisfies(first, vd) {
			e.openTag(closed)
			e.instance(x, vd, vv)
		}
	case plan.AxisDown:
		cu := first.cur
		for cu.valid && cmpPrefix(cu.d(), vd) < 0 {
			cu.advance()
		}
		for cu.valid && cmpPrefix(cu.d(), vd) == 0 {
			if e.satisfies(first, cu.d()) {
				e.openTag(closed)
				e.instance(x, cu.d(), cu.v())
			}
			cu.advance()
		}
	}
}

// wrapperRoot emits a manufactured root: the anchor scan runs over the
// whole sequence.
func (e *exec) wrapperRoot(x *xnode) {
	first := x.first
	if first == nil {
		e.sep()
		e.fill(x.tn)
		return
	}
	for cu := first.cur; cu.valid && e.err == nil; cu.advance() {
		if !e.satisfies(first, cu.d()) {
			continue
		}
		e.sep()
		e.instance(x, cu.d(), cu.v())
	}
}

// instance writes one wrapper element around anchor vertex (wd, wv),
// with sibling kids joined from the anchor.
func (e *exec) instance(x *xnode, wd xmltree.Dewey, wv []byte) {
	e.count++
	e.str("<")
	e.str(x.tn.Name)
	first := x.first
	if first.attrLeaf {
		e.writeAttr(first.tn.Name, wv)
	}
	for _, kid := range x.kids {
		if kid.sourced && kid.attrLeaf {
			e.attrKid(kid, wd, wv)
		}
	}
	closed := false
	if !first.attrLeaf {
		e.openTag(&closed)
		e.element(first, wd, wv)
	}
	for _, kid := range x.kids {
		if !kid.sourced {
			e.wrapper(kid, wd, wv, &closed)
			continue
		}
		if kid.attrLeaf {
			continue
		}
		e.elemKid(kid, wd, wv, &closed)
	}
	if !closed {
		e.str("/>")
		return
	}
	e.str("</")
	e.str(x.tn.Name)
	e.str(">")
}

// fill writes a static manufactured subtree (manufactured kids only, as
// the renderer's emitFillKids does).
func (e *exec) fill(tn *semantics.TNode) {
	e.count++
	e.str("<")
	e.str(tn.Name)
	wrote := false
	for _, kid := range tn.Kids {
		if kid.Source != "" {
			continue
		}
		if !wrote {
			e.str(">")
			wrote = true
		}
		e.fill(kid)
	}
	if !wrote {
		e.str("/>")
		return
	}
	e.str("</")
	e.str(tn.Name)
	e.str(">")
}

// satisfies checks x's RESTRICT requirements against the candidate
// vertex at vd.
func (e *exec) satisfies(x *xnode, vd xmltree.Dewey) bool {
	for _, req := range x.reqs {
		if !e.require(req, vd) {
			return false
		}
	}
	return true
}

// require probes one requirement against the candidate at vd. Probe
// positions are globally non-decreasing per requirement occurrence, and
// the cursor parks on its witness (or the ancestor), so a repeated
// probe of the same vertex re-answers without rereading.
func (e *exec) require(req *xnode, vd xmltree.Dewey) bool {
	if !req.sourced {
		return true // vacuous, as in the renderer
	}
	switch req.axis {
	case plan.AxisSelf:
		return e.requireKids(req, vd)
	case plan.AxisUp:
		cu := req.cur
		for cu.valid && cmpPrefix(vd, cu.d()) > 0 {
			cu.advance()
		}
		if !cu.valid || cmpPrefix(vd, cu.d()) != 0 {
			return false
		}
		return e.requireKids(req, cu.d())
	case plan.AxisDown:
		cu := req.cur
		for cu.valid && cmpPrefix(cu.d(), vd) < 0 {
			cu.advance()
		}
		for cu.valid && cmpPrefix(cu.d(), vd) == 0 {
			if e.requireKids(req, cu.d()) {
				return true // park on the witness
			}
			cu.advance()
		}
		return false
	}
	return false
}

func (e *exec) requireKids(req *xnode, wd xmltree.Dewey) bool {
	for _, kid := range req.kids {
		if !e.require(kid, wd) {
			return false
		}
	}
	return true
}
