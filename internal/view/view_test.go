package view

import (
	"strings"
	"testing"

	"xmorph/internal/core"
	"xmorph/internal/xmltree"
)

const src = `<data>
  <book><title>X</title><author><name>V</name></author></book>
  <book><title>Y</title><author><name>U</name></author></book>
</data>`

func mustView(t *testing.T, guard string) *View {
	t.Helper()
	v, err := Materialize(guard, xmltree.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func dw(t *testing.T, s string) xmltree.Dewey {
	t.Helper()
	d, err := xmltree.ParseDewey(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMaterializeAndOutput(t *testing.T) {
	v := mustView(t, "MORPH author [ name title ]")
	out, err := v.Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.XML(false), "<author><name>V</name><title>X</title></author>") {
		t.Errorf("initial materialization: %s", out.XML(false))
	}
	if v.Renders() != 1 {
		t.Errorf("renders = %d, want 1", v.Renders())
	}
}

func TestValueUpdatePropagatesWithoutRerender(t *testing.T) {
	v := mustView(t, "MORPH author [ name title ]")
	// 1.1.1 is the first title in the source.
	if err := v.UpdateValue(dw(t, "1.1.1"), "X-revised"); err != nil {
		t.Fatal(err)
	}
	out, err := v.Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.XML(false), "<title>X-revised</title>") {
		t.Errorf("value update lost: %s", out.XML(false))
	}
	if v.Renders() != 1 {
		t.Errorf("value update must not re-render (renders = %d)", v.Renders())
	}
	// Equivalence with a full re-transformation.
	fresh, err := core.Transform("MORPH author [ name title ]", v.Source(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.XML(false) != fresh.Output.XML(false) {
		t.Errorf("incremental output diverged:\nview:  %s\nfresh: %s",
			out.XML(false), fresh.Output.XML(false))
	}
}

func TestValueUpdateHitsAllCopies(t *testing.T) {
	// The single publisher duplicates under each book; both copies must
	// see the update.
	const dup = `<data>
	  <publisher><name>W</name>
	    <book><title>X</title></book>
	    <book><title>Y</title></book>
	  </publisher>
	</data>`
	v, err := Materialize("CAST-WIDENING MUTATE book [ publisher [ name ] ]", xmltree.MustParse(dup))
	if err != nil {
		t.Fatal(err)
	}
	// 1.1.1 is the publisher's name.
	if err := v.UpdateValue(dw(t, "1.1.1"), "W2"); err != nil {
		t.Fatal(err)
	}
	out, _ := v.Output()
	if strings.Count(out.XML(false), "<name>W2</name>") != 2 {
		t.Errorf("update must hit every copy: %s", out.XML(false))
	}
}

func TestInsertSubtreePatchesInPlace(t *testing.T) {
	v := mustView(t, "MORPH author [ name title ]")
	// Append a third book under data (dewey 1). The guard compiles to
	// the same target over the grown source, so the new author emission
	// is spliced in without a re-render.
	if err := v.InsertSubtree(dw(t, "1"), "<book><title>Z</title><author><name>T</name></author></book>"); err != nil {
		t.Fatal(err)
	}
	if v.Stale() {
		t.Error("patchable insert must not stale the view")
	}
	out, err := v.Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.XML(false), "<author><name>T</name><title>Z</title></author>") {
		t.Errorf("inserted author missing: %s", out.XML(false))
	}
	if v.Renders() != 1 || v.Patches() != 1 {
		t.Errorf("renders = %d, patches = %d, want 1 render and 1 patch", v.Renders(), v.Patches())
	}
	// The patched output is byte-identical to a fresh transformation.
	fresh, err := core.Transform("MORPH author [ name title ]", v.Source(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.XML(false) != fresh.Output.XML(false) {
		t.Errorf("patched output diverged:\nview:  %s\nfresh: %s",
			out.XML(false), fresh.Output.XML(false))
	}
}

func TestDeleteSubtreePatchesInPlace(t *testing.T) {
	v := mustView(t, "MORPH author [ name title ]")
	// Delete the second book (1.2): its author emission detaches in place.
	if err := v.DeleteSubtree(dw(t, "1.2")); err != nil {
		t.Fatal(err)
	}
	if v.Stale() {
		t.Error("patchable delete must not stale the view")
	}
	out, err := v.Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.XML(false), "U") {
		t.Errorf("deleted author survived: %s", out.XML(false))
	}
	if v.Renders() != 1 || v.Patches() != 1 {
		t.Errorf("renders = %d, patches = %d, want 1 render and 1 patch", v.Renders(), v.Patches())
	}
	fresh, err := core.Transform("MORPH author [ name title ]", v.Source(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.XML(false) != fresh.Output.XML(false) {
		t.Errorf("patched output diverged:\nview:  %s\nfresh: %s",
			out.XML(false), fresh.Output.XML(false))
	}
}

func TestUpdateErrors(t *testing.T) {
	v := mustView(t, "MORPH title")
	if err := v.UpdateValue(dw(t, "1.9.9"), "x"); err == nil {
		t.Error("bad dewey accepted")
	}
	if err := v.InsertSubtree(dw(t, "1.9"), "<x/>"); err == nil {
		t.Error("insert at bad dewey accepted")
	}
	if err := v.InsertSubtree(dw(t, "1"), "<unclosed"); err == nil {
		t.Error("bad fragment accepted")
	}
	if err := v.DeleteSubtree(dw(t, "1")); err == nil {
		t.Error("root delete accepted")
	}
}

func TestStructuralUpdateRetypechecks(t *testing.T) {
	// Deleting the only <name> makes the strict guard fail at re-render:
	// the label no longer matches any type.
	const tiny = `<data><book><author><name>V</name></author><title>X</title></book></data>`
	v, err := Materialize("MORPH author [ name ]", xmltree.MustParse(tiny))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.DeleteSubtree(dw(t, "1.1.1.1")); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Output(); err == nil {
		t.Error("re-typecheck after structural delete should fail (name type vanished)")
	}
}

func TestMaterializeRejectsLossyGuard(t *testing.T) {
	const optional = `<data><book><author/></book><book><author><name>V</name></author></book></data>`
	if _, err := Materialize("MUTATE name [ author ]", xmltree.MustParse(optional)); err == nil {
		t.Error("lossy guard must be rejected at materialization")
	}
}
