package view

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xmorph/internal/core"
	"xmorph/internal/xmltree"
)

// transformed renders guard over doc from scratch — the oracle every
// incremental patch must match byte for byte.
func transformed(t *testing.T, guard string, doc *xmltree.Document) string {
	t.Helper()
	res, err := core.Transform(guard, doc, nil)
	if err != nil {
		t.Fatalf("oracle transform: %v", err)
	}
	return res.Output.XML(false)
}

// checkPatched asserts the view absorbed the edit in place (no stale, no
// extra render) and its output equals a fresh transformation.
func checkPatched(t *testing.T, v *View, guard string, wantPatches int) {
	t.Helper()
	if v.Stale() {
		t.Fatalf("view went stale; want in-place patch")
	}
	out, err := v.Output()
	if err != nil {
		t.Fatal(err)
	}
	if v.Renders() != 1 || v.Patches() != wantPatches {
		t.Errorf("renders = %d, patches = %d, want 1 render and %d patches",
			v.Renders(), v.Patches(), wantPatches)
	}
	if got, want := out.XML(false), transformed(t, guard, v.Source()); got != want {
		t.Errorf("patched output diverged:\nview:  %s\nfresh: %s", got, want)
	}
}

// TestIncrementalInsertIntoExistingEmission: a new source vertex whose
// emission lands inside an already-rendered host is spliced at the
// correct slot and document-order position.
func TestIncrementalInsertIntoExistingEmission(t *testing.T) {
	guard := "MORPH book [ title author [ name ] ]"
	v := mustView(t, guard)
	// A second title into the first book (1.1): the emission joins the
	// existing book emission before the author slot.
	if err := v.InsertSubtree(dw(t, "1.1"), "<title>X2</title>"); err != nil {
		t.Fatal(err)
	}
	checkPatched(t, v, guard, 1)
	out, _ := v.Output()
	if !strings.Contains(out.XML(false), "<title>X</title><title>X2</title><author>") {
		t.Errorf("spliced title out of order: %s", out.XML(false))
	}
}

// TestIncrementalDeleteInnerVertex: deleting a mid-tree vertex detaches
// exactly its emissions, leaving siblings in place.
func TestIncrementalDeleteInnerVertex(t *testing.T) {
	guard := "MORPH book [ title author [ name ] ]"
	v := mustView(t, guard)
	// Grow first, so the later delete is shape-preserving.
	if err := v.InsertSubtree(dw(t, "1.1"), "<author><name>V2</name></author>"); err != nil {
		t.Fatal(err)
	}
	// Delete the first book's original author (1.1.2).
	if err := v.DeleteSubtree(dw(t, "1.1.2")); err != nil {
		t.Fatal(err)
	}
	checkPatched(t, v, guard, 2)
	out, _ := v.Output()
	if strings.Contains(out.XML(false), "<name>V</name>") || !strings.Contains(out.XML(false), "<name>V2</name>") {
		t.Errorf("wrong author emission removed: %s", out.XML(false))
	}
}

// TestIncrementalWrapperInstances: NEW manufactures a wrapper per
// instance of its first sourced child; inserts create instances in
// place and deletes retire them, anchor and all.
func TestIncrementalWrapperInstances(t *testing.T) {
	guard := "CAST-WIDENING MUTATE (NEW scribe) [ author ]"
	v := mustView(t, guard)
	if err := v.InsertSubtree(dw(t, "1.2"), "<author><name>S</name></author>"); err != nil {
		t.Fatal(err)
	}
	checkPatched(t, v, guard, 1)
	out, _ := v.Output()
	if strings.Count(out.XML(false), "<scribe>") != 3 {
		t.Errorf("want 3 scribe wrappers after insert: %s", out.XML(false))
	}
	// Deleting the second book's first author retires its wrapper.
	if err := v.DeleteSubtree(dw(t, "1.2.2")); err != nil {
		t.Fatal(err)
	}
	checkPatched(t, v, guard, 2)
	out, _ = v.Output()
	if strings.Count(out.XML(false), "<scribe>") != 2 {
		t.Errorf("want 2 scribe wrappers after delete: %s", out.XML(false))
	}
}

// TestIncrementalAttributeEmissions: attribute vertices render as
// attributes inside patched emissions exactly as in a full render.
func TestIncrementalAttributeEmissions(t *testing.T) {
	const attrSrc = `<data><book id="1"><title>X</title></book><book id="2"><title>Y</title></book></data>`
	guard := "MORPH book [ id title ]"
	v, err := Materialize(guard, xmltree.MustParse(attrSrc))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.InsertSubtree(dw(t, "1"), `<book id="3"><title>Z</title></book>`); err != nil {
		t.Fatal(err)
	}
	checkPatched(t, v, guard, 1)
	out, _ := v.Output()
	if !strings.Contains(out.XML(false), `<book id="3">`) {
		t.Errorf("attribute missing from patched emission: %s", out.XML(false))
	}
}

// TestIncrementalFallsBackWhenTargetChanges: when an edit changes what
// the guard compiles to (here a TYPE-FILL label gaining real instances),
// the view falls back to the lazy re-render path.
func TestIncrementalFallsBackWhenTargetChanges(t *testing.T) {
	guard := "TYPE-FILL CAST MORPH book [ title note ]"
	v := mustView(t, guard)
	if err := v.InsertSubtree(dw(t, "1.1"), "<note>n</note>"); err != nil {
		t.Fatal(err)
	}
	if !v.Stale() {
		t.Fatal("resolution-changing insert must stale the view")
	}
	out, err := v.Output()
	if err != nil {
		t.Fatal(err)
	}
	if v.Renders() != 2 || v.Patches() != 0 {
		t.Errorf("renders = %d, patches = %d, want fallback re-render", v.Renders(), v.Patches())
	}
	if got, want := out.XML(false), transformed(t, guard, v.Source()); got != want {
		t.Errorf("fallback output diverged:\nview:  %s\nfresh: %s", got, want)
	}
}

// TestIncrementalRandomizedDifferential drives a deterministic random
// edit script against materializations of several guards, comparing the
// view's output to a from-scratch transformation after every step —
// whichever path (patch or fallback re-render) the view chose.
func TestIncrementalRandomizedDifferential(t *testing.T) {
	guards := []string{
		"MORPH author [ name title ]",
		"MORPH book [ title author [ name ] ]",
		"CAST-WIDENING MUTATE (NEW scribe) [ author ]",
		"MORPH title",
	}
	for _, guard := range guards {
		t.Run(guard, func(t *testing.T) {
			const seedSrc = `<data>` +
				`<book><title>T1</title><note>n1</note><author><name>A1</name></author></book>` +
				`<book><title>T2</title><author><name>A2</name><name>A2b</name></author></book>` +
				`<book><title>T3</title><author><name>A3</name></author><author><name>A3b</name></author></book>` +
				`</data>`
			v, err := Materialize(guard, xmltree.MustParse(seedSrc))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			uid := 0
			fresh := func(kind string) string {
				uid++
				return fmt.Sprintf("%s%d", kind, uid)
			}
			// pick returns a random node of the given type, or nil.
			pick := func(typ string) *xmltree.Node {
				ns := v.Source().NodesOfType(typ)
				if len(ns) == 0 {
					return nil
				}
				return ns[rng.Intn(len(ns))]
			}
			for step := 0; step < 60; step++ {
				switch rng.Intn(8) {
				case 0: // new book with full structure
					err = v.InsertSubtree(dw(t, "1"), fmt.Sprintf(
						"<book><title>%s</title><author><name>%s</name></author></book>",
						fresh("T"), fresh("A")))
				case 1: // new author under a random book
					if b := pick("data.book"); b != nil {
						err = v.InsertSubtree(b.Dewey, fmt.Sprintf("<author><name>%s</name></author>", fresh("A")))
					}
				case 2: // new name under a random author
					if a := pick("data.book.author"); a != nil {
						err = v.InsertSubtree(a.Dewey, fmt.Sprintf("<name>%s</name>", fresh("A")))
					}
				case 3: // new note under a random book
					if b := pick("data.book"); b != nil {
						err = v.InsertSubtree(b.Dewey, fmt.Sprintf("<note>%s</note>", fresh("n")))
					}
				case 4: // delete a note, if any survive without it
					if n := pick("data.book.note"); n != nil && len(v.Source().NodesOfType("data.book.note")) >= 2 {
						err = v.DeleteSubtree(n.Dewey)
					}
				case 5: // delete an author only if its book keeps another
					if a := pick("data.book.author"); a != nil {
						siblings := 0
						for _, c := range a.Parent.Children {
							if c.Name == "author" {
								siblings++
							}
						}
						if siblings >= 2 {
							err = v.DeleteSubtree(a.Dewey)
						}
					}
				case 6: // delete a surplus name
					if n := pick("data.book.author.name"); n != nil && len(n.Parent.Children) >= 2 {
						err = v.DeleteSubtree(n.Dewey)
					}
				case 7: // value update on a random title
					if ti := pick("data.book.title"); ti != nil {
						err = v.UpdateValue(ti.Dewey, fresh("T"))
					}
				}
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				out, err := v.Output()
				if err != nil {
					t.Fatalf("step %d: output: %v", step, err)
				}
				if got, want := out.XML(false), transformed(t, guard, v.Source()); got != want {
					t.Fatalf("step %d: view diverged from fresh transform:\nview:  %s\nfresh: %s",
						step, got, want)
				}
			}
			if v.Patches() == 0 {
				t.Errorf("sweep never exercised the incremental path (renders = %d)", v.Renders())
			}
			t.Logf("guard %q: %d renders, %d patches", guard, v.Renders(), v.Patches())
		})
	}
}
