// Package view maintains a materialized transformation — the mitigation
// Section VIII sketches for the cost of physical transformation:
// "materializing the transformation and mapping XUpdate operations to
// updates of the transformation".
//
// A View pairs a source document with the rendered output of a guard and
// an index from each source vertex to its output copies (built from the
// renderer's provenance links). Value updates propagate in O(copies).
// Structural updates (insert/delete) are mapped to in-place patches of
// the output: the closest relation is structural and symmetric — two
// vertices are closest exactly when they share the ancestor at their
// types' common-prefix depth — so inserting or deleting a source subtree
// only creates or destroys closest pairs involving the edited vertices,
// never re-pairs surviving ones. The view exploits that locality to
// splice just the affected emissions, falling back to a full lazy
// re-render only when the edit changes what the guard compiles to (or
// the guard uses RESTRICT, whose existence probes a local patch cannot
// re-evaluate).
package view

import (
	"fmt"

	"xmorph/internal/closest"
	"xmorph/internal/core"
	"xmorph/internal/render"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

// View is a materialized guard output kept consistent with its source.
type View struct {
	guard   string
	source  *xmltree.Document
	checked *core.Checked
	// target is the composed target the current output was rendered
	// from; prov, rank and gens index into this exact tree.
	target *semantics.Target
	output *xmltree.Document
	// copies maps each source vertex to its rendered copies.
	copies map[*xmltree.Node][]*xmltree.Node
	// prov maps each output node to the target type that emitted it
	// (the renderer's annotation, maintained across patches).
	prov map[*xmltree.Node]*semantics.TNode
	// anchors maps a source vertex to the wrapper instances anchored on
	// it (a manufactured element materializes once per instance of its
	// first sourced child).
	anchors map[*xmltree.Node][]*xmltree.Node
	// rank is each target type's emission slot among its parent's
	// children (roots: the slot in the output root list). A wrapper's
	// first sourced child renders before its siblings and gets -1.
	rank map[*semantics.TNode]int
	// gens lists, per source type, the target types that materialize a
	// new emission when an instance of that type appears.
	gens map[string][]*semantics.TNode
	// incOK reports the target is patchable: no RESTRICT requirements.
	incOK bool
	stale bool
	// renders counts full (re-)renders; patches counts structural
	// updates absorbed in place. Both are exposed for tests/monitoring.
	renders int
	patches int
}

// Materialize compiles the guard against the source and renders the
// initial output.
func Materialize(guardSrc string, source *xmltree.Document) (*View, error) {
	checked, err := core.Check(guardSrc, shape.FromDocument(source), nil)
	if err != nil {
		return nil, err
	}
	v := &View{guard: guardSrc, source: source, checked: checked}
	if err := v.render(); err != nil {
		return nil, err
	}
	return v, nil
}

func (v *View) render() error {
	v.target = v.checked.Plan.ComposedTarget()
	out, prov, err := render.RenderAnnotated(v.source, v.target, nil)
	if err != nil {
		return err
	}
	v.output = out
	v.prov = prov
	v.scanTarget()
	v.reindexOutput()
	v.stale = false
	v.renders++
	return nil
}

// reindexOutput renumbers the (possibly just patched) output and
// rebuilds the copies and anchors indexes from provenance.
func (v *View) reindexOutput() {
	v.output.Reindex()
	v.copies = map[*xmltree.Node][]*xmltree.Node{}
	v.anchors = map[*xmltree.Node][]*xmltree.Node{}
	for _, n := range v.output.Nodes() {
		if n.Src != nil {
			src := n.Src.Origin()
			v.copies[src] = append(v.copies[src], n)
		}
		if tn := v.prov[n]; tn != nil && tn.Source == "" && len(n.Children) > 0 && n.Children[0].Src != nil {
			w := n.Children[0].Src.Origin()
			v.anchors[w] = append(v.anchors[w], n)
		}
	}
}

// scanTarget indexes the composed target for incremental patching:
// emission slots, the generator list per driving source type, and
// whether the target is patchable at all.
func (v *View) scanTarget() {
	v.rank = map[*semantics.TNode]int{}
	v.gens = map[string][]*semantics.TNode{}
	v.incOK = true
	for i, r := range v.target.Roots {
		v.rank[r] = i
		v.scanNode(r, true)
	}
}

// scanNode indexes tn's subtree. live reports whether the renderer
// emits instances below this point: sourced types inside a fill-only
// wrapper subtree are dropped, so they must not register as generators.
func (v *View) scanNode(tn *semantics.TNode, live bool) {
	if len(tn.Require) > 0 {
		// RESTRICT probes the existence of other emissions; a local
		// patch cannot re-evaluate which old emissions it flips.
		v.incOK = false
	}
	if tn.Source != "" {
		// A wrapper's first sourced child is emitted as part of each
		// wrapper instance; every other live sourced type generates
		// emissions of its own.
		p := tn.Parent()
		anchor := p != nil && p.Source == "" && firstSourcedOf(p) == tn
		if live && !anchor {
			v.gens[tn.Source] = append(v.gens[tn.Source], tn)
		}
		for i, k := range tn.Kids {
			v.rank[k] = i
			v.scanNode(k, live)
		}
		return
	}
	first := firstSourcedOf(tn)
	if first == nil || !live {
		// Fill wrapper (or any wrapper under one): a static subtree of
		// manufactured elements; sourced descendants never render.
		for i, k := range tn.Kids {
			v.rank[k] = i
			v.scanNode(k, false)
		}
		return
	}
	v.gens[first.Source] = append(v.gens[first.Source], tn)
	for i, k := range tn.Kids {
		if k == first {
			v.rank[k] = -1
		} else {
			v.rank[k] = i
		}
		v.scanNode(k, true)
	}
}

func firstSourcedOf(tn *semantics.TNode) *semantics.TNode {
	for _, k := range tn.Kids {
		if k.Source != "" {
			return k
		}
	}
	return nil
}

// Output returns the materialized document, re-rendering first if a
// structural update staled the view.
func (v *View) Output() (*xmltree.Document, error) {
	if v.stale {
		// Structural changes may alter the shape; recompile so the guard
		// is re-type-checked against the new shape.
		checked, err := core.Check(v.guard, shape.FromDocument(v.source), nil)
		if err != nil {
			return nil, err
		}
		v.checked = checked
		if err := v.render(); err != nil {
			return nil, err
		}
	}
	return v.output, nil
}

// Renders reports how many full renders the view has performed.
func (v *View) Renders() int { return v.renders }

// Patches reports how many structural updates were absorbed by in-place
// patches instead of re-renders.
func (v *View) Patches() int { return v.patches }

// Stale reports whether a structural update invalidated the
// materialization.
func (v *View) Stale() bool { return v.stale }

// UpdateValue changes a source vertex's text value and propagates it to
// every rendered copy without re-rendering (the XUpdate "update text"
// case). The vertex is addressed by its Dewey number in the source.
func (v *View) UpdateValue(at xmltree.Dewey, newValue string) error {
	n := v.source.NodeAt(at)
	if n == nil {
		return fmt.Errorf("view: no source vertex at %s", at)
	}
	n.Value = newValue
	if v.stale {
		return nil // the next Output re-renders anyway
	}
	for _, c := range v.copies[n] {
		c.Value = newValue
	}
	return nil
}

// InsertSubtree appends a parsed fragment below the source vertex at the
// given Dewey number. When the guard still compiles to the identical
// target over the updated source, the new emissions are spliced into the
// output in place; otherwise the view goes stale and re-renders lazily.
func (v *View) InsertSubtree(at xmltree.Dewey, fragment string) error {
	parent := v.source.NodeAt(at)
	if parent == nil {
		return fmt.Errorf("view: no source vertex at %s", at)
	}
	if parent.Attr {
		return fmt.Errorf("view: cannot insert below an attribute")
	}
	frag, err := xmltree.ParseString(fragment)
	if err != nil {
		return err
	}
	eligible := !v.stale && v.incOK
	node, err := v.source.Graft(parent, frag.Root())
	if err != nil {
		return err
	}
	if !eligible || !v.recheck() {
		v.stale = true
		return nil
	}
	if v.patchInsert(node) {
		v.patches++
	} else {
		v.stale = true
	}
	return nil
}

// DeleteSubtree removes the source vertex at the given Dewey number
// (with its subtree), detaching its emissions from the output in place
// when the guard's compilation is unaffected; otherwise the view goes
// stale.
func (v *View) DeleteSubtree(at xmltree.Dewey) error {
	n := v.source.NodeAt(at)
	if n == nil {
		return fmt.Errorf("view: no source vertex at %s", at)
	}
	if n.Parent == nil {
		return fmt.Errorf("view: cannot delete the document root")
	}
	eligible := !v.stale && v.incOK
	gone := map[*xmltree.Node]bool{}
	n.Walk(func(m *xmltree.Node) bool { gone[m] = true; return true })
	if err := v.source.Remove(n); err != nil {
		return err
	}
	if !eligible || !v.recheck() {
		v.stale = true
		return nil
	}
	v.patchDelete(gone)
	v.patches++
	return nil
}

// Source returns the (possibly updated) source document.
func (v *View) Source() *xmltree.Document { return v.source }

// recheck recompiles the guard against the mutated source's shape. The
// incremental patch is sound only when compilation still produces the
// identical composed target: label resolution, TYPE-FILL and loss
// verdicts all depend on the shape, and any difference means the
// arrangement itself must change.
func (v *View) recheck() bool {
	checked, err := core.Check(v.guard, shape.FromDocument(v.source), nil)
	if err != nil {
		return false
	}
	return sameTarget(v.target, checked.Plan.ComposedTarget())
}

// sameTarget reports whether two composed targets describe the same
// arrangement (adornments aside — cardinalities do not change what the
// renderer emits).
func sameTarget(a, b *semantics.Target) bool {
	if len(a.Roots) != len(b.Roots) {
		return false
	}
	for i := range a.Roots {
		if !sameTNode(a.Roots[i], b.Roots[i]) {
			return false
		}
	}
	return true
}

func sameTNode(a, b *semantics.TNode) bool {
	if a.Name != b.Name || a.Source != b.Source ||
		len(a.Kids) != len(b.Kids) || len(a.Require) != len(b.Require) {
		return false
	}
	for i := range a.Kids {
		if !sameTNode(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	for i := range a.Require {
		if !sameTNode(a.Require[i], b.Require[i]) {
			return false
		}
	}
	return true
}

// partnersOf returns the closest partners of type T for vertex x, in
// document order: the T-instances sharing x's ancestor at the Dewey
// depth of the two types' common label prefix (exactly the pairs the
// renderer's sort-merge closest join produces, computed locally). The
// relation is symmetric, so this also enumerates the context vertices
// whose emissions x newly joins.
func (v *View) partnersOf(x *xmltree.Node, T string) ([]*xmltree.Node, bool) {
	l := closest.TypeLCP(x.Type, T)
	if l == 0 {
		return nil, false
	}
	a := x
	for len(a.Dewey) > l {
		a = a.Parent
	}
	var out []*xmltree.Node
	a.Walk(func(n *xmltree.Node) bool {
		if n.Type == T {
			out = append(out, n)
			return false // same-type vertices never nest
		}
		return true
	})
	return out, true
}

// patchInsert splices the emissions generated by the grafted subtree s
// into the output. It reports false (leaving the view to go stale) when
// it meets a join it cannot localize.
func (v *View) patchInsert(s *xmltree.Node) bool {
	inS := map[*xmltree.Node]bool{}
	s.Walk(func(n *xmltree.Node) bool { inS[n] = true; return true })
	ok := true
	s.Walk(func(x *xmltree.Node) bool {
		for _, g := range v.gens[x.Type] {
			if !v.insertEmissions(g, x, inS) {
				ok = false
			}
		}
		return ok
	})
	if !ok {
		return false
	}
	v.reindexOutput()
	return true
}

// insertEmissions materializes generator g's new emission driven by
// source vertex x, splicing one unit into every existing host. Emissions
// whose context vertex lies inside the grafted subtree are skipped: the
// unit built for the enclosing new emission renders them itself.
func (v *View) insertEmissions(g *semantics.TNode, x *xmltree.Node, inS map[*xmltree.Node]bool) bool {
	p := g.Parent()
	if p == nil {
		unit, ok := v.buildUnit(g, x, false)
		if !ok {
			return false
		}
		idx := v.spliceIndex(v.output.Roots, g, x)
		v.output.Roots = insertAt(v.output.Roots, idx, unit)
		return true
	}
	ctxType := p.Source
	if ctxType == "" {
		f := firstSourcedOf(p)
		if f == nil {
			return true // static fill wrapper: no dynamic emissions below
		}
		ctxType = f.Source
	}
	ctxs, ok := v.partnersOf(x, ctxType)
	if !ok {
		return false
	}
	for _, ctx := range ctxs {
		if inS[ctx] {
			continue
		}
		for _, h := range v.hostsOf(p, ctx) {
			unit, ok := v.buildUnit(g, x, true)
			if !ok {
				return false
			}
			idx := v.spliceIndex(h.Children, g, x)
			h.Children = insertAt(h.Children, idx, unit)
			unit.Parent = h
		}
	}
	return true
}

// hostsOf returns the output nodes that are emissions of target type p
// driven by source vertex ctx (copies for sourced types, anchored
// instances for wrappers).
func (v *View) hostsOf(p *semantics.TNode, ctx *xmltree.Node) []*xmltree.Node {
	var hosts []*xmltree.Node
	if p.Source != "" {
		for _, c := range v.copies[ctx] {
			if v.prov[c] == p {
				hosts = append(hosts, c)
			}
		}
		return hosts
	}
	for _, c := range v.anchors[ctx] {
		if v.prov[c] == p {
			hosts = append(hosts, c)
		}
	}
	return hosts
}

// spliceIndex finds the insertion point for a new emission of g driven
// by x within an output child (or root) list: after every slot that
// renders earlier, and after same-slot emissions with earlier drivers.
func (v *View) spliceIndex(list []*xmltree.Node, g *semantics.TNode, x *xmltree.Node) int {
	gr := v.rank[g]
	idx := 0
	for _, c := range list {
		tn, known := v.prov[c]
		if !known {
			idx++ // foreign node: keep it where it is
			continue
		}
		r := v.rank[tn]
		d := v.driverOf(c)
		if r < gr || (r == gr && d != nil && d.Dewey.Compare(x.Dewey) < 0) {
			idx++
			continue
		}
		break
	}
	return idx
}

// driverOf returns the source vertex whose existence an output node's
// emission is tied to: its provenance for sourced emissions, the anchor
// (first sourced child's instance) for wrapper instances, nil for
// static fill elements.
func (v *View) driverOf(c *xmltree.Node) *xmltree.Node {
	if c.Src != nil {
		return c.Src.Origin()
	}
	if tn := v.prov[c]; tn != nil && tn.Source == "" && len(c.Children) > 0 && c.Children[0].Src != nil {
		return c.Children[0].Src.Origin()
	}
	return nil
}

// buildUnit renders one new emission of generator g driven by x as a
// detached subtree, mirroring the renderer's emit rules with the local
// partner computation. open mirrors the builder's open-element state
// (an attribute vertex renders as an attribute only inside an element).
func (v *View) buildUnit(g *semantics.TNode, x *xmltree.Node, open bool) (*xmltree.Node, bool) {
	if g.Source != "" {
		return v.buildNode(g, x, open)
	}
	return v.buildWrapper(g, firstSourcedOf(g), x)
}

// buildNode mirrors the renderer's emitNode.
func (v *View) buildNode(tn *semantics.TNode, x *xmltree.Node, open bool) (*xmltree.Node, bool) {
	if x.Attr && len(tn.Kids) == 0 && open {
		n := &xmltree.Node{Name: "@" + tn.Name, Value: x.Value, Attr: true, Src: x}
		v.prov[n] = tn
		return n, true
	}
	n := &xmltree.Node{Name: tn.Name, Value: x.Value, Src: x}
	v.prov[n] = tn
	ok := true
	for _, kid := range tn.Kids {
		if kid.Source == "" {
			insts, kok := v.buildWrapperKid(kid, x)
			ok = ok && kok
			for _, inst := range insts {
				appendKid(n, inst)
			}
			continue
		}
		ws, kok := v.partnersOf(x, kid.Source)
		ok = ok && kok
		for _, w := range ws {
			c, cok := v.buildNode(kid, w, true)
			ok = ok && cok
			appendKid(n, c)
		}
	}
	return n, ok
}

// buildWrapperKid mirrors the renderer's emitWrapper: one instance per
// closest partner of the wrapper's first sourced child, or a single
// static fill subtree when it has none.
func (v *View) buildWrapperKid(tn *semantics.TNode, ctx *xmltree.Node) ([]*xmltree.Node, bool) {
	first := firstSourcedOf(tn)
	if first == nil {
		return []*xmltree.Node{v.buildFill(tn)}, true
	}
	ws, ok := v.partnersOf(ctx, first.Source)
	var out []*xmltree.Node
	for _, w := range ws {
		inst, iok := v.buildWrapper(tn, first, w)
		ok = ok && iok
		out = append(out, inst)
	}
	return out, ok
}

// buildWrapper renders one wrapper instance anchored at w: the first
// sourced child's emission, then the remaining children joined by
// closeness to w (the renderer's emitSiblingsOf).
func (v *View) buildWrapper(tn, first *semantics.TNode, w *xmltree.Node) (*xmltree.Node, bool) {
	n := &xmltree.Node{Name: tn.Name}
	v.prov[n] = tn
	c, ok := v.buildNode(first, w, true)
	appendKid(n, c)
	for _, kid := range tn.Kids {
		if kid == first {
			continue
		}
		if kid.Source == "" {
			insts, kok := v.buildWrapperKid(kid, w)
			ok = ok && kok
			for _, inst := range insts {
				appendKid(n, inst)
			}
			continue
		}
		us, kok := v.partnersOf(w, kid.Source)
		ok = ok && kok
		for _, u := range us {
			cc, cok := v.buildNode(kid, u, true)
			ok = ok && cok
			appendKid(n, cc)
		}
	}
	return n, ok
}

// buildFill mirrors the renderer's emitFillKids: a static subtree of
// manufactured elements.
func (v *View) buildFill(tn *semantics.TNode) *xmltree.Node {
	n := &xmltree.Node{Name: tn.Name}
	v.prov[n] = tn
	for _, kid := range tn.Kids {
		if kid.Source == "" {
			appendKid(n, v.buildFill(kid))
		}
	}
	return n
}

func appendKid(p, c *xmltree.Node) {
	c.Parent = p
	p.Children = append(p.Children, c)
}

func insertAt(list []*xmltree.Node, i int, n *xmltree.Node) []*xmltree.Node {
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = n
	return list
}

// patchDelete detaches every emission whose driver vertex was deleted.
// Because closest pairs are structural, deleting a source subtree can
// only destroy emissions driven by its vertices (and whatever was
// rendered inside them) — surviving emissions never re-pair.
func (v *View) patchDelete(gone map[*xmltree.Node]bool) {
	var tops []*xmltree.Node
	for _, c := range v.output.Nodes() {
		d := v.driverOf(c)
		if d == nil || !gone[d] {
			continue
		}
		buried := false
		for a := c.Parent; a != nil; a = a.Parent {
			if ad := v.driverOf(a); ad != nil && gone[ad] {
				buried = true
				break
			}
		}
		if !buried {
			tops = append(tops, c)
		}
	}
	for _, c := range tops {
		v.detach(c)
	}
	v.reindexOutput()
}

// detach removes output node c (with its subtree) from the output tree
// and drops its provenance entries.
func (v *View) detach(c *xmltree.Node) {
	if c.Parent == nil {
		for i, r := range v.output.Roots {
			if r == c {
				v.output.Roots = append(v.output.Roots[:i:i], v.output.Roots[i+1:]...)
				break
			}
		}
	} else {
		p := c.Parent
		for i, k := range p.Children {
			if k == c {
				p.Children = append(p.Children[:i:i], p.Children[i+1:]...)
				break
			}
		}
		c.Parent = nil
	}
	c.Walk(func(n *xmltree.Node) bool {
		delete(v.prov, n)
		return true
	})
}
