// Package view maintains a materialized transformation — the mitigation
// Section VIII sketches for the cost of physical transformation:
// "materializing the transformation and mapping XUpdate operations to
// updates of the transformation".
//
// A View pairs a source document with the rendered output of a guard and
// an index from each source vertex to its output copies (built from the
// renderer's provenance links). Value updates propagate in O(copies);
// structural updates (insert/delete) mark the view stale, and the next
// access re-renders — the paper's fallback of re-running the
// transformation, automated.
package view

import (
	"fmt"

	"xmorph/internal/core"
	"xmorph/internal/render"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

// View is a materialized guard output kept consistent with its source.
type View struct {
	guard   string
	source  *xmltree.Document
	checked *core.Checked
	output  *xmltree.Document
	// copies maps each source vertex to its rendered copies.
	copies map[*xmltree.Node][]*xmltree.Node
	stale  bool
	// renders counts full (re-)renders, exposed for tests and monitoring.
	renders int
}

// Materialize compiles the guard against the source and renders the
// initial output.
func Materialize(guardSrc string, source *xmltree.Document) (*View, error) {
	checked, err := core.Check(guardSrc, shape.FromDocument(source), nil)
	if err != nil {
		return nil, err
	}
	v := &View{guard: guardSrc, source: source, checked: checked}
	if err := v.render(); err != nil {
		return nil, err
	}
	return v, nil
}

func (v *View) render() error {
	out, err := render.Render(v.source, v.checked.Plan.ComposedTarget(), nil)
	if err != nil {
		return err
	}
	v.output = out
	v.copies = make(map[*xmltree.Node][]*xmltree.Node)
	for _, n := range out.Nodes() {
		if n.Src != nil {
			src := n.Src.Origin()
			v.copies[src] = append(v.copies[src], n)
		}
	}
	v.stale = false
	v.renders++
	return nil
}

// Output returns the materialized document, re-rendering first if a
// structural update staled the view.
func (v *View) Output() (*xmltree.Document, error) {
	if v.stale {
		// Structural changes may alter the shape; recompile so the guard
		// is re-type-checked against the new shape.
		checked, err := core.Check(v.guard, shape.FromDocument(v.source), nil)
		if err != nil {
			return nil, err
		}
		v.checked = checked
		if err := v.render(); err != nil {
			return nil, err
		}
	}
	return v.output, nil
}

// Renders reports how many full renders the view has performed.
func (v *View) Renders() int { return v.renders }

// Stale reports whether a structural update invalidated the
// materialization.
func (v *View) Stale() bool { return v.stale }

// UpdateValue changes a source vertex's text value and propagates it to
// every rendered copy without re-rendering (the XUpdate "update text"
// case). The vertex is addressed by its Dewey number in the source.
func (v *View) UpdateValue(at xmltree.Dewey, newValue string) error {
	n := v.source.NodeAt(at)
	if n == nil {
		return fmt.Errorf("view: no source vertex at %s", at)
	}
	n.Value = newValue
	if v.stale {
		return nil // the next Output re-renders anyway
	}
	for _, c := range v.copies[n] {
		c.Value = newValue
	}
	return nil
}

// InsertSubtree appends a parsed fragment below the source vertex at the
// given Dewey number. Structural updates change cardinalities and closest
// relationships, so the view goes stale and re-renders lazily.
func (v *View) InsertSubtree(at xmltree.Dewey, fragment string) error {
	parent := v.source.NodeAt(at)
	if parent == nil {
		return fmt.Errorf("view: no source vertex at %s", at)
	}
	if parent.Attr {
		return fmt.Errorf("view: cannot insert below an attribute")
	}
	frag, err := xmltree.ParseString(fragment)
	if err != nil {
		return err
	}
	v.source = rebuildWith(v.source, parent, frag.Root())
	v.stale = true
	return nil
}

// DeleteSubtree removes the source vertex at the given Dewey number (with
// its subtree). The view goes stale.
func (v *View) DeleteSubtree(at xmltree.Dewey) error {
	n := v.source.NodeAt(at)
	if n == nil {
		return fmt.Errorf("view: no source vertex at %s", at)
	}
	if n.Parent == nil {
		return fmt.Errorf("view: cannot delete the document root")
	}
	v.source = rebuildWith(v.source, n, nil)
	v.stale = true
	return nil
}

// Source returns the (possibly updated) source document.
func (v *View) Source() *xmltree.Document { return v.source }

// rebuildWith re-builds the source document, either appending newChild
// under target (insert) or dropping target entirely (newChild == nil,
// delete). Rebuilding renumbers Dewey ids consistently.
func rebuildWith(doc *xmltree.Document, target, newChild *xmltree.Node) *xmltree.Document {
	b := xmltree.NewBuilder()
	var copyNode func(n *xmltree.Node)
	copyNode = func(n *xmltree.Node) {
		if newChild == nil && n == target {
			return // delete
		}
		if n.Attr {
			b.Attr(n.LocalName(), n.Value)
			return
		}
		b.Elem(n.Name)
		if n.Value != "" {
			b.Text(n.Value)
		}
		for _, c := range n.Children {
			copyNode(c)
		}
		if n == target && newChild != nil {
			copyNode(newChild)
		}
		b.End()
	}
	for _, r := range doc.Roots {
		copyNode(r)
	}
	return b.MustDocument()
}
