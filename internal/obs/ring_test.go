package obs

import (
	"fmt"
	"regexp"
	"sync"
	"testing"
	"time"
)

func finishedTrace(name, id string) *Trace {
	t := NewWithID(name, id)
	t.Finish()
	return t
}

func TestNewIDFormatAndUniqueness(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if !hex16.MatchString(id) {
			t.Fatalf("NewID() = %q, want 16 lowercase hex digits", id)
		}
		if seen[id] {
			t.Fatalf("NewID() repeated %q within 100 draws", id)
		}
		seen[id] = true
	}
}

func TestTraceID(t *testing.T) {
	if got := New("plain").ID(); got != "" {
		t.Errorf("New trace ID = %q, want empty", got)
	}
	if got := NewWithID("req", "abc123").ID(); got != "abc123" {
		t.Errorf("NewWithID ID = %q, want abc123", got)
	}
	var nilTrace *Trace
	if got := nilTrace.ID(); got != "" {
		t.Errorf("nil trace ID = %q, want empty", got)
	}
	if !nilTrace.Start().IsZero() {
		t.Error("nil trace start is nonzero")
	}
}

func TestSetLastWriteWins(t *testing.T) {
	tr := New("run")
	sp := tr.Root()
	sp.Set("pages-read", 3)
	sp.Set("pages-read", 7)
	sp.SetStr("verdict", "lossless")
	sp.SetStr("verdict", "lossy")
	sp.End()

	if v, ok := sp.Attr("pages-read"); !ok || v != "7" {
		t.Errorf("pages-read = %q (present=%v), want 7", v, ok)
	}
	if v, ok := sp.Attr("verdict"); !ok || v != "lossy" {
		t.Errorf("verdict = %q (present=%v), want lossy", v, ok)
	}
	// No duplicate keys in rendered output.
	got := tr.TextZeroDurations()
	want := "run 0s pages-read=7 verdict=lossy\n"
	if got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
}

func TestSpanAttrAccessors(t *testing.T) {
	tr := New("request")
	root := tr.Root()
	root.Set("pages-read", 1)
	c1 := root.Child("compile")
	c1.Set("cached", 1)
	c1.Set("pages-read", 4)
	c1.End()
	c2 := root.Child("render")
	c2.Set("pages-read", 10)
	c2.SetStr("mode", "stream")
	c2.End()
	tr.Finish()

	if got := root.SumAttr("pages-read"); got != 15 {
		t.Errorf("SumAttr(pages-read) = %d, want 15", got)
	}
	if got := root.SumAttr("absent"); got != 0 {
		t.Errorf("SumAttr(absent) = %d, want 0", got)
	}
	if v, ok := root.FindAttr("cached"); !ok || v != "1" {
		t.Errorf("FindAttr(cached) = %q (present=%v), want 1", v, ok)
	}
	if v, ok := root.FindAttr("mode"); !ok || v != "stream" {
		t.Errorf("FindAttr(mode) = %q (present=%v), want stream", v, ok)
	}
	if _, ok := root.FindAttr("absent"); ok {
		t.Error("FindAttr found an absent key")
	}
	if _, ok := root.Attr("mode"); ok {
		t.Error("Attr descended into children")
	}
	if got := root.Child("x").Name(); got != "x" {
		t.Errorf("Name = %q, want x", got)
	}
	var nilSpan *Span
	if nilSpan.Name() != "" || nilSpan.SumAttr("k") != 0 {
		t.Error("nil span accessors not no-ops")
	}
	if _, ok := nilSpan.FindAttr("k"); ok {
		t.Error("nil span FindAttr returned a value")
	}
}

func TestTraceRingEvictionOrder(t *testing.T) {
	r := NewTraceRing(3, 2, 0)
	for i := 0; i < 5; i++ {
		r.Add(finishedTrace("req", fmt.Sprintf("id-%d", i)))
	}
	recent, slow := r.Summaries()
	if len(slow) != 0 {
		t.Errorf("slow buffer holds %d traces with threshold disabled", len(slow))
	}
	// Newest first; the two oldest were evicted.
	wantIDs := []string{"id-4", "id-3", "id-2"}
	if len(recent) != len(wantIDs) {
		t.Fatalf("recent len = %d, want %d", len(recent), len(wantIDs))
	}
	for i, want := range wantIDs {
		if recent[i].ID != want {
			t.Errorf("recent[%d].ID = %q, want %q", i, recent[i].ID, want)
		}
	}
	if got := r.Get("id-0"); got != nil {
		t.Error("evicted trace still retrievable")
	}
	if got := r.Get("id-3"); got == nil || got.ID() != "id-3" {
		t.Errorf("Get(id-3) = %v", got)
	}
	if got := r.Get(""); got != nil {
		t.Error("Get of empty ID matched an unidentified trace")
	}
}

func TestTraceRingSlowRetention(t *testing.T) {
	r := NewTraceRing(2, 4, time.Millisecond)
	slowTrace := NewWithID("slow-req", "slow-1")
	time.Sleep(2 * time.Millisecond)
	slowTrace.Finish()
	if !r.Add(slowTrace) {
		t.Fatal("trace above threshold not classified slow")
	}
	// Fast traffic floods the recent ring but must not evict the slow trace.
	for i := 0; i < 10; i++ {
		if r.Add(finishedTrace("fast", fmt.Sprintf("fast-%d", i))) {
			t.Fatalf("fast trace %d classified slow", i)
		}
	}
	recent, slow := r.Summaries()
	if len(recent) != 2 {
		t.Errorf("recent len = %d, want 2", len(recent))
	}
	if len(slow) != 1 || slow[0].ID != "slow-1" || !slow[0].Slow {
		t.Errorf("slow summaries = %+v, want the one slow trace", slow)
	}
	if slow[0].DurMs < 1 {
		t.Errorf("slow trace DurMs = %v, want >= 1", slow[0].DurMs)
	}
	if got := r.Get("slow-1"); got == nil {
		t.Error("slow trace evicted by fast traffic")
	}
}

func TestTraceRingNilSafe(t *testing.T) {
	var r *TraceRing
	if r.Add(finishedTrace("x", "y")) {
		t.Error("nil ring classified a trace slow")
	}
	if got := r.Get("y"); got != nil {
		t.Error("nil ring returned a trace")
	}
	recent, slow := r.Summaries()
	if recent != nil || slow != nil {
		t.Error("nil ring returned summaries")
	}
	if r.Threshold() != 0 {
		t.Error("nil ring threshold nonzero")
	}
	rr := NewTraceRing(4, 4, 0)
	if rr.Add(nil) {
		t.Error("nil trace classified slow")
	}
	if recent, _ := rr.Summaries(); len(recent) != 0 {
		t.Error("nil trace retained")
	}
}

// TestTraceRingConcurrent is the -race regression for the ring's lock
// discipline: concurrent adders, readers, and getters.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(8, 4, time.Nanosecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(finishedTrace("req", fmt.Sprintf("w%d-%d", w, i)))
			}
		}(w)
	}
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Summaries()
				r.Get("w0-5")
			}
		}()
	}
	wg.Wait()
	recent, _ := r.Summaries()
	if len(recent) != 8 {
		t.Errorf("recent len = %d, want 8", len(recent))
	}
}
