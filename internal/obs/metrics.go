// Package obs is the zero-dependency observability layer of the query
// pipeline: a metrics registry (atomic counters, gauges, and fixed-bucket
// latency histograms with quantile snapshots) plus lightweight tracing
// (nested spans with durations and key/value annotations).
//
// The paper's evaluation (Sections VIII-IX) is entirely about seeing what
// a guarded transformation costs — block I/O, wait time, memory. sysmon
// reproduces the coarse vmstat view; obs adds the per-phase view: where
// time goes inside parse -> typecheck -> closest join -> render, and how
// the buffer pool behaves while it happens.
//
// Everything here is safe for concurrent use, and every trace entry point
// is nil-safe: a nil *Trace or *Span is a no-op that allocates nothing,
// so instrumentation can stay compiled into hot paths.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil Counter is
// a usable no-op.
type Counter struct {
	v int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.v, n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Gauge is an atomic float64 value that can move in both directions. A
// nil Gauge is a usable no-op.
type Gauge struct {
	bits uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits))
}

// DurationBuckets are the default histogram bounds for phase latencies,
// in seconds: 100µs up to 10s, roughly exponential. Observations above
// the last bound land in the overflow bucket.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// WaitBuckets are histogram bounds for lock waits and fsync latencies,
// in seconds: 1µs up to 1s. These sit well below DurationBuckets because
// an uncontended mutex handoff or an SSD fsync is microseconds, not
// milliseconds, and the MVCC/group-commit baseline needs that resolution.
var WaitBuckets = []float64{
	0.000001, 0.0000025, 0.000005,
	0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1,
}

// GroupSizeBuckets are histogram bounds for group-commit batch sizes —
// how many Sync callers shared one flush. Sizes are small integers, so
// the buckets are unit-ish steps: a p50 above 1 means fsyncs are being
// amortized across committers.
var GroupSizeBuckets = []float64{
	1, 2, 3, 4, 6, 8, 12, 16, 24, 32,
}

// Histogram is a fixed-bucket histogram. Bucket i counts observations v
// with v <= Bounds[i] (and > Bounds[i-1]); one extra overflow bucket
// counts everything above the last bound. Observe is lock-free.
type Histogram struct {
	bounds  []float64
	counts  []int64 // len(bounds)+1; the last is the overflow bucket
	count   int64
	sumBits uint64 // float64 bits, updated by CAS
}

// NewHistogram builds a histogram over strictly increasing bounds.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value. A nil Histogram is a usable no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.count, 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sumBits, old, nb) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram with derived
// quantiles.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1, last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// Snapshot copies the histogram state and computes p50/p95/p99.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  atomic.LoadInt64(&h.count),
		Sum:    math.Float64frombits(atomic.LoadUint64(&h.sumBits)),
	}
	for i := range h.counts {
		s.Counts[i] = atomic.LoadInt64(&h.counts[i])
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket holding the target rank; the lower edge of the first
// bucket is taken as 0 (histograms here hold nonnegative measurements).
// Ranks landing in the overflow bucket clamp to the last bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum >= rank && c > 0 {
			if i == len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - prev) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (s.Bounds[i]-lo)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Registry holds named counters, gauges, and histograms. Lookups
// get-or-create, so instrumentation sites can grab their instrument once
// at init and hold it (lock-free from then on) or look it up per use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	gaugeFuncs map[string]func() float64
}

// Default is the process-wide registry the pipeline instruments report
// into; the CLI's --metrics flag and xmorphbench's /metrics endpoint dump
// it.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		hists:      map[string]*Histogram{},
		gaugeFuncs: map[string]func() float64{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use; an existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a gauge computed at snapshot time — for mirroring
// externally-owned counters (e.g. a store's buffer-pool hit ratio)
// without polling.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Reset drops every registered instrument (test isolation).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.gaugeFuncs = map[string]func() float64{}
}

// Snapshot is a point-in-time copy of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	gaugeFuncs := make(map[string]func() float64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		gaugeFuncs[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)+len(gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, fn := range gaugeFuncs {
		s.Gauges[k] = fn()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// Text renders the snapshot as sorted "kind name value" lines; histograms
// show count, sum, and the three quantiles.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge %s %g\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "hist %s count=%d sum=%g p50=%g p95=%g p99=%g\n",
			k, h.Count, h.Sum, h.P50, h.P95, h.P99)
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
