package obs

import (
	"sync"
	"time"
)

// TraceRing retains recently finished traces for after-the-fact
// diagnosis: a bounded ring of the most recent traces plus a separate,
// equally bounded buffer for slow traces (duration at or above the
// threshold), so a burst of fast traffic can never evict the one slow
// request worth investigating. All methods are safe for concurrent use
// and nil-safe, so an unconfigured server skips retention for free.
type TraceRing struct {
	mu        sync.Mutex
	recent    []*Trace // insertion order, oldest first
	slow      []*Trace
	capacity  int
	slowCap   int
	threshold time.Duration
}

// NewTraceRing builds a ring holding up to capacity recent traces and up
// to slowCapacity slow ones. Traces with duration >= threshold count as
// slow; a non-positive threshold disables slow retention.
func NewTraceRing(capacity, slowCapacity int, threshold time.Duration) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	if slowCapacity < 1 {
		slowCapacity = 1
	}
	return &TraceRing{capacity: capacity, slowCap: slowCapacity, threshold: threshold}
}

// Threshold returns the slow-trace cutoff (0 for a nil ring).
func (r *TraceRing) Threshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.threshold
}

// Add retains a finished trace, evicting the oldest entry of a full
// buffer, and reports whether the trace was classified slow. Nil rings
// and nil traces are no-ops.
func (r *TraceRing) Add(t *Trace) (slow bool) {
	if r == nil || t == nil {
		return false
	}
	slow = r.threshold > 0 && t.Duration() >= r.threshold
	r.mu.Lock()
	r.recent = appendBounded(r.recent, t, r.capacity)
	if slow {
		r.slow = appendBounded(r.slow, t, r.slowCap)
	}
	r.mu.Unlock()
	return slow
}

// appendBounded appends t, dropping the oldest entry when over capacity.
func appendBounded(buf []*Trace, t *Trace, capacity int) []*Trace {
	buf = append(buf, t)
	if len(buf) > capacity {
		copy(buf, buf[1:])
		buf[len(buf)-1] = nil
		buf = buf[:len(buf)-1]
	}
	return buf
}

// Get returns the retained trace with the given ID (slow buffer entries
// included), or nil.
func (r *TraceRing) Get(id string) *Trace {
	if r == nil || id == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, buf := range [][]*Trace{r.slow, r.recent} {
		for _, t := range buf {
			if t.ID() == id {
				return t
			}
		}
	}
	return nil
}

// TraceSummary is one retained trace's listing entry.
type TraceSummary struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	DurMs float64   `json:"dur_ms"`
	Slow  bool      `json:"slow,omitempty"`
}

// Summaries lists the retained traces, newest first, recent and slow
// separately (a slow trace appears in both while it remains recent).
func (r *TraceRing) Summaries() (recent, slow []TraceSummary) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	rec := append([]*Trace(nil), r.recent...)
	sl := append([]*Trace(nil), r.slow...)
	r.mu.Unlock()
	return summarize(rec, r.threshold), summarize(sl, r.threshold)
}

func summarize(buf []*Trace, threshold time.Duration) []TraceSummary {
	out := make([]TraceSummary, 0, len(buf))
	for i := len(buf) - 1; i >= 0; i-- {
		t := buf[i]
		d := t.Duration()
		out = append(out, TraceSummary{
			ID:    t.ID(),
			Name:  t.Root().Name(),
			Start: t.Start(),
			DurMs: float64(d.Nanoseconds()) / 1e6,
			Slow:  threshold > 0 && d >= threshold,
		})
	}
	return out
}
