package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 2, 4}
	cases := []struct {
		name   string
		values []float64
		want   []int64 // len(bounds)+1, last is overflow
	}{
		{"empty", nil, []int64{0, 0, 0, 0}},
		{"on the boundary lands in the lower bucket", []float64{1, 2, 4}, []int64{1, 1, 1, 0}},
		{"just above a boundary lands in the next bucket", []float64{1.0001, 2.0001}, []int64{0, 1, 1, 0}},
		{"below the first bound", []float64{0, 0.5}, []int64{2, 0, 0, 0}},
		{"above the last bound overflows", []float64{4.0001, 100}, []int64{0, 0, 0, 2}},
		{"mixed", []float64{0.5, 1.5, 3, 9}, []int64{1, 1, 1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(bounds)
			for _, v := range tc.values {
				h.Observe(v)
			}
			s := h.Snapshot()
			if len(s.Counts) != len(tc.want) {
				t.Fatalf("counts len = %d, want %d", len(s.Counts), len(tc.want))
			}
			for i, w := range tc.want {
				if s.Counts[i] != w {
					t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
				}
			}
			if s.Count != int64(len(tc.values)) {
				t.Errorf("count = %d, want %d", s.Count, len(tc.values))
			}
		})
	}
}

func TestHistogramQuantiles(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		obs    []float64
		q      float64
		want   float64
		tol    float64
	}{
		{"single value p50", []float64{1, 2, 4}, []float64{1.5}, 0.50, 2, 0.5},
		{"uniform first bucket p50 interpolates", []float64{10}, []float64{1, 2, 3, 4}, 0.50, 5, 0.01},
		{"p100 of two buckets", []float64{1, 2}, []float64{0.5, 1.5}, 1.0, 2, 0.01},
		{"overflow clamps to last bound", []float64{1, 2}, []float64{50, 60, 70}, 0.99, 2, 0.01},
		{"p50 across buckets", []float64{1, 2, 4}, []float64{0.5, 0.6, 1.5, 3}, 0.50, 1, 0.01},
		{"empty histogram", []float64{1, 2}, nil, 0.95, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.bounds)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			got := h.Snapshot().Quantile(tc.q)
			if math.Abs(got-tc.want) > tc.tol {
				t.Errorf("quantile(%g) = %g, want %g +/- %g", tc.q, got, tc.want, tc.tol)
			}
		})
	}
}

func TestHistogramSnapshotSumAndPercentiles(t *testing.T) {
	h := NewHistogram(DurationBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(0.002) // all in the (0.001, 0.0025] bucket
	}
	s := h.Snapshot()
	if math.Abs(s.Sum-0.2) > 1e-9 {
		t.Errorf("sum = %g, want 0.2", s.Sum)
	}
	for _, q := range []float64{s.P50, s.P95, s.P99} {
		if q <= 0.001 || q > 0.0025 {
			t.Errorf("quantile %g outside the observed bucket (0.001, 0.0025]", q)
		}
	}
}

func TestRegistrySnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total").Add(3)
	r.Counter("queries_total").Inc()
	r.Gauge("hit_ratio").Set(0.75)
	r.GaugeFunc("pages", func() float64 { return 42 })
	r.Histogram("lat", []float64{1, 10}).Observe(0.5)

	s := r.Snapshot()
	if s.Counters["queries_total"] != 4 {
		t.Errorf("counter = %d, want 4", s.Counters["queries_total"])
	}
	if s.Gauges["hit_ratio"] != 0.75 || s.Gauges["pages"] != 42 {
		t.Errorf("gauges = %v", s.Gauges)
	}

	text := s.Text()
	for _, want := range []string{"counter queries_total 4", "gauge hit_ratio 0.75", "gauge pages 42", "hist lat count=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("text snapshot missing %q:\n%s", want, text)
		}
	}

	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["queries_total"] != 4 || back.Histograms["lat"].Count != 1 {
		t.Errorf("JSON round-trip = %+v", back)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Reset()
	if got := r.Snapshot(); len(got.Counters) != 0 {
		t.Errorf("counters after reset = %v", got.Counters)
	}
	if r.Counter("c").Value() != 0 {
		t.Error("counter survived reset")
	}
}

// TestConcurrentCountersAndSpans exercises the registry and a span tree
// from many goroutines; run under -race this is the regression test for
// the lock/atomic discipline.
func TestConcurrentCountersAndSpans(t *testing.T) {
	r := NewRegistry()
	tr := New("root")
	root := tr.Root()

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("ops").Inc()
				r.Gauge("last").Set(float64(i))
				r.Histogram("lat", DurationBuckets).Observe(0.001)
				sp := root.Child("work")
				sp.Set("iter", int64(i))
				sp.End()
			}
		}(w)
	}
	// Concurrent readers while writers run.
	for rdr := 0; rdr < 2; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = r.Snapshot()
				_ = tr.Text()
				_, _ = tr.JSON()
			}
		}()
	}
	wg.Wait()
	tr.Finish()

	if got := r.Counter("ops").Value(); got != workers*iters {
		t.Errorf("ops = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat", DurationBuckets).Snapshot().Count; got != workers*iters {
		t.Errorf("hist count = %d, want %d", got, workers*iters)
	}
}

func TestNilTraceAndSpanAreNoOps(t *testing.T) {
	var tr *Trace
	sp := tr.Root()
	if sp != nil {
		t.Fatal("nil trace produced a span")
	}
	// None of these may panic.
	sp.Set("k", 1)
	sp.SetStr("k", "v")
	sp.Child("x").End()
	sp.End()
	tr.Finish()
	if tr.Text() != "" {
		t.Error("nil trace rendered text")
	}
	if d := sp.Duration(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}

	allocs := testing.AllocsPerRun(1000, func() {
		c := sp.Child("hot")
		c.Set("n", 42)
		c.End()
	})
	if allocs != 0 {
		t.Errorf("nil span path allocates %v per op, want 0", allocs)
	}
}

func TestSpanTreeText(t *testing.T) {
	tr := New("run")
	root := tr.Root()
	c := root.Child("compile")
	c.Set("labels", 2)
	c.SetStr("verdict", "strongly-typed")
	g := c.Child("parse-guard")
	g.End()
	c.End()
	rsp := root.Child("render")
	rsp.Set("nodes-out", 7)
	rsp.End()
	tr.Finish()

	got := tr.TextZeroDurations()
	want := "run 0s\n" +
		"  compile 0s labels=2 verdict=strongly-typed\n" +
		"    parse-guard 0s\n" +
		"  render 0s nodes-out=7\n"
	if got != want {
		t.Errorf("tree text:\n%q\nwant:\n%q", got, want)
	}

	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"name": "parse-guard"`) {
		t.Errorf("JSON missing nested span:\n%s", raw)
	}
}

func BenchmarkNilSpanChild(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sp.Child("hot")
		c.Set("n", int64(i))
		c.End()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
