package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one query's span tree. The zero value is unusable; build with
// New. A nil *Trace is a no-op everywhere, which is how tracing stays
// compiled into the pipeline for free: callers thread a nil trace (or a
// nil root span) and every instrumentation site short-circuits without
// allocating.
type Trace struct {
	id   string
	root *Span
}

// New starts a trace whose root span is already running.
func New(name string) *Trace {
	return &Trace{root: &Span{name: name, start: time.Now()}}
}

// NewWithID starts a trace carrying a request-scoped identity — the
// service layer's trace ID, accepted from the client (X-Request-Id) or
// generated with NewID.
func NewWithID(name, id string) *Trace {
	t := New(name)
	t.id = id
	return t
}

// idSeq breaks ties when the random source is unavailable.
var idSeq atomic.Uint64

// NewID returns a fresh 16-hex-digit trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The random source failing is effectively impossible; fall back
		// to a time+sequence ID rather than propagating an error into
		// every request path.
		v := uint64(time.Now().UnixNano())<<16 | (idSeq.Add(1) & 0xffff)
		for i := range b {
			b[i] = byte(v >> (8 * (7 - i)))
		}
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace's identity ("" when none was assigned).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Start returns the root span's start time (zero for a nil trace).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.root.start
}

// Duration returns the root span's duration (see Span.Duration).
func (t *Trace) Duration() time.Duration { return t.Root().Duration() }

// Finish ends the root span.
func (t *Trace) Finish() {
	if t != nil {
		t.root.End()
	}
}

// Span is one timed region of the pipeline with nested children and
// key/value annotations. All methods are nil-safe and safe for
// concurrent use (the parallel renderer annotates from worker
// goroutines).
type Span struct {
	name  string
	start time.Time

	mu    sync.Mutex
	dur   time.Duration
	ended bool
	attrs []Attr
	kids  []*Span
}

// Attr is one span annotation, in insertion order.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Child starts a nested span. On a nil receiver it returns nil, so an
// untraced call chain costs one pointer comparison per site.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.kids = append(s.kids, c)
	s.mu.Unlock()
	return c
}

// End freezes the span's duration; extra Ends keep the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// Set annotates the span with an integer value (node counts, page I/O).
// Setting a key again replaces its value (last write wins), so repeated
// annotation of one site stays unambiguous in EXPLAIN output.
func (s *Span) Set(key string, v int64) { s.SetStr(key, strconv.FormatInt(v, 10)) }

// SetStr annotates the span with a string value (verdicts, modes).
// Last write wins, as with Set.
func (s *Span) SetStr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Attr returns the span's own value for key (not descending into
// children) and whether it is present.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// FindAttr returns the first value for key in a depth-first walk of the
// span tree — how the access log pulls one-off markers (a compile span's
// cached=1) out of a finished trace.
func (s *Span) FindAttr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	if v, ok := s.Attr(key); ok {
		return v, true
	}
	s.mu.Lock()
	kids := append([]*Span(nil), s.kids...)
	s.mu.Unlock()
	for _, k := range kids {
		if v, ok := k.FindAttr(key); ok {
			return v, true
		}
	}
	return "", false
}

// SumAttr totals key's integer values across the whole span tree —
// summing per-stage "pages-read" annotations into one request figure.
// Non-integer values count as zero.
func (s *Span) SumAttr(key string) int64 {
	if s == nil {
		return 0
	}
	var total int64
	if v, ok := s.Attr(key); ok {
		n, _ := strconv.ParseInt(v, 10, 64)
		total += n
	}
	s.mu.Lock()
	kids := append([]*Span(nil), s.kids...)
	s.mu.Unlock()
	for _, k := range kids {
		total += k.SumAttr(key)
	}
	return total
}

// Duration returns the span's frozen duration (elapsed time if still
// running, zero for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Text renders the span tree as an indented tree with durations:
//
//	run 1.2ms
//	  compile 310µs labels=2 verdict=strongly-typed
//	    parse-guard 12µs
//
// For stable output (golden files) use TextZeroDurations.
func (t *Trace) Text() string { return t.text(false) }

// TextZeroDurations renders the tree with every duration printed as 0s,
// leaving only the stable structure: span names and annotations.
func (t *Trace) TextZeroDurations() string { return t.text(true) }

func (t *Trace) text(zeroDur bool) string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	t.root.writeText(&b, 0, zeroDur)
	return b.String()
}

func (s *Span) writeText(w io.Writer, depth int, zeroDur bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	attrs := append([]Attr(nil), s.attrs...)
	kids := append([]*Span(nil), s.kids...)
	s.mu.Unlock()

	if zeroDur {
		dur = 0
	}
	fmt.Fprintf(w, "%s%s %s", strings.Repeat("  ", depth), s.name, dur)
	for _, a := range attrs {
		fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
	}
	io.WriteString(w, "\n")
	for _, k := range kids {
		k.writeText(w, depth+1, zeroDur)
	}
}

// spanJSON mirrors a span for serialization.
type spanJSON struct {
	Name    string     `json:"name"`
	Dur     int64      `json:"dur_ns"`
	Attrs   []Attr     `json:"attrs,omitempty"`
	Spans   []spanJSON `json:"spans,omitempty"`
	Running bool       `json:"running,omitempty"`
}

// JSON renders the span tree as indented JSON (dur_ns per span).
func (t *Trace) JSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.MarshalIndent(t.root.toJSON(), "", "  ")
}

func (s *Span) toJSON() spanJSON {
	s.mu.Lock()
	out := spanJSON{
		Name:    s.name,
		Dur:     int64(s.dur),
		Attrs:   append([]Attr(nil), s.attrs...),
		Running: !s.ended,
	}
	if !s.ended {
		out.Dur = int64(time.Since(s.start))
	}
	kids := append([]*Span(nil), s.kids...)
	s.mu.Unlock()
	for _, k := range kids {
		out.Spans = append(out.Spans, k.toJSON())
	}
	return out
}
