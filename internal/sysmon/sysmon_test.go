package sysmon

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xmorph/internal/kvstore"
)

func TestMonitorSamplesCumulativeIO(t *testing.T) {
	db, err := kvstore.Open(filepath.Join(t.TempDir(), "m.db"), &kvstore.Options{CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	m := Start(2*time.Millisecond, db.Stats)
	for i := 0; i < 5000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	samples := m.Stop()

	if len(samples) < 2 {
		t.Fatalf("samples = %d, want several", len(samples))
	}
	// Cumulative I/O must be monotone nondecreasing and end positive.
	last := int64(-1)
	for _, s := range samples {
		c := s.CumulativeBlocks()
		if c < last {
			t.Fatalf("cumulative blocks decreased: %d -> %d", last, c)
		}
		last = c
	}
	if last == 0 {
		t.Error("no block I/O recorded")
	}
	for _, s := range samples {
		if s.WaitPct < 0 || s.WaitPct > 100 {
			t.Errorf("wait%% out of range: %f", s.WaitPct)
		}
		if s.HeapSys == 0 {
			t.Error("memory not sampled")
		}
	}
}

func TestMonitorStopIsIdempotentSafe(t *testing.T) {
	db := kvstore.OpenMemory(nil)
	m := Start(time.Millisecond, db.Stats)
	time.Sleep(3 * time.Millisecond)
	samples := m.Stop()
	if len(samples) == 0 {
		t.Error("no samples on stop")
	}
}

func TestTableRendering(t *testing.T) {
	samples := []Sample{
		{Elapsed: 10 * time.Millisecond, BlocksRead: 5, BlocksWritten: 7, WaitPct: 40.5, HeapAlloc: 3 << 20},
	}
	out := Table(samples)
	if !strings.Contains(out, "blocks-in") || !strings.Contains(out, "40.5") {
		t.Errorf("table rendering wrong:\n%s", out)
	}
	if !strings.Contains(out, "3.0") {
		t.Errorf("heap MB missing:\n%s", out)
	}
}

func TestMonitorDoubleStopIsIdempotent(t *testing.T) {
	db := kvstore.OpenMemory(nil)
	m := Start(time.Millisecond, db.Stats)
	time.Sleep(3 * time.Millisecond)
	first := m.Stop()
	// A second Stop must not panic (regression: close of closed channel)
	// and must return the same timeline.
	second := m.Stop()
	if len(first) == 0 || len(second) != len(first) {
		t.Errorf("double stop: first=%d second=%d samples", len(first), len(second))
	}
}

func TestSampleCarriesHitRatio(t *testing.T) {
	db := kvstore.OpenMemory(&kvstore.Options{CachePages: 8})
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Read everything back so the pool records hits and misses.
	for i := 0; i < 2000; i++ {
		db.Get([]byte(fmt.Sprintf("k%06d", i)))
	}
	m := Start(time.Millisecond, db.Stats)
	time.Sleep(2 * time.Millisecond)
	samples := m.Stop()
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	last := samples[len(samples)-1]
	if last.HitRatio <= 0 || last.HitRatio > 1 {
		t.Errorf("hit ratio = %f, want in (0,1]", last.HitRatio)
	}
	if out := Table(samples); !strings.Contains(out, "hit%") {
		t.Errorf("table missing hit%% column:\n%s", out)
	}
}
