// Package sysmon samples resource usage while an experiment runs — the
// in-process stand-in for the paper's vmstat methodology (Section IX):
// cumulative block I/O (Fig. 11), the percentage of time spent waiting on
// I/O (Fig. 12), and memory use (Fig. 13). Block counters come from the
// kvstore pager; memory comes from runtime.MemStats.
package sysmon

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"xmorph/internal/kvstore"
)

// Sample is one point on the monitoring timeline.
type Sample struct {
	// Elapsed since monitoring started.
	Elapsed time.Duration
	// BlocksRead/BlocksWritten are cumulative page I/O counts.
	BlocksRead    int64
	BlocksWritten int64
	// WaitPct is the share (0-100) of the sampling interval spent inside
	// file reads and writes — the vmstat "wa" analogue.
	WaitPct float64
	// HeapAlloc is live heap bytes; HeapSys is heap obtained from the OS.
	HeapAlloc uint64
	HeapSys   uint64
	// HitRatio is the cumulative buffer-pool hit ratio (0-1) at sample
	// time — the link between the vmstat-style series and the obs metrics
	// layer: low hit ratios explain rising block-in counts.
	HitRatio float64
}

// CumulativeBlocks is the Fig. 11 series value: all blocks in and out.
func (s Sample) CumulativeBlocks() int64 { return s.BlocksRead + s.BlocksWritten }

// Monitor periodically samples a Stats source.
type Monitor struct {
	interval time.Duration
	stats    func() kvstore.Stats
	mu       sync.Mutex
	samples  []Sample
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	start    time.Time
	lastIO   int64
	lastTime time.Time
}

// Start begins sampling every interval. The stats function is typically
// store.Stats of the store under test.
func Start(interval time.Duration, stats func() kvstore.Stats) *Monitor {
	m := &Monitor{
		interval: interval,
		stats:    stats,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		start:    time.Now(),
		lastTime: time.Now(),
	}
	go m.loop()
	return m
}

func (m *Monitor) loop() {
	defer close(m.done)
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			m.sample()
			return
		case <-t.C:
			m.sample()
		}
	}
}

func (m *Monitor) sample() {
	st := m.stats()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	now := time.Now()

	m.mu.Lock()
	defer m.mu.Unlock()
	wall := now.Sub(m.lastTime)
	waitPct := 0.0
	if wall > 0 {
		waitPct = 100 * float64(st.IONanos-m.lastIO) / float64(wall)
		if waitPct < 0 {
			waitPct = 0
		}
		if waitPct > 100 {
			waitPct = 100
		}
	}
	m.lastIO = st.IONanos
	m.lastTime = now
	m.samples = append(m.samples, Sample{
		Elapsed:       now.Sub(m.start),
		BlocksRead:    st.BlocksRead,
		BlocksWritten: st.BlocksWritten,
		WaitPct:       waitPct,
		HeapAlloc:     ms.HeapAlloc,
		HeapSys:       ms.HeapSys,
		HitRatio:      st.HitRatio(),
	})
}

// Stop takes a final sample and returns the timeline. Calling Stop more
// than once is safe; later calls return the same timeline without
// sampling again.
func (m *Monitor) Stop() []Sample {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Sample(nil), m.samples...)
}

// Table renders samples as the harness prints them: one row per sample
// with elapsed ms, cumulative blocks, wait %, heap MB, and buffer-pool
// hit %.
func Table(samples []Sample) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %12s %12s %8s %10s %8s\n", "elapsed", "blocks-in", "blocks-out", "wait%", "heap-MB", "hit%")
	for _, s := range samples {
		fmt.Fprintf(&b, "%10s %12d %12d %8.1f %10.1f %8.1f\n",
			s.Elapsed.Round(time.Millisecond), s.BlocksRead, s.BlocksWritten,
			s.WaitPct, float64(s.HeapAlloc)/(1<<20), 100*s.HitRatio)
	}
	return b.String()
}
