// Package render implements the Render algorithm of Section VII: given a
// target shape and a source document, it builds the output forest by
// recursively descending the target and pairing closest nodes with
// sort-merge closest joins over Dewey numbers.
//
// The read cost is linear in the size of the source type sequences touched
// (each closest join is a single merge); the write cost is bounded by the
// size of the output, which may be quadratic in the source when the target
// duplicates snippets (as the paper notes).
package render

import (
	"fmt"

	"xmorph/internal/closest"
	"xmorph/internal/obs"
	"xmorph/internal/semantics"
	"xmorph/internal/xmltree"
)

// Source supplies document-ordered type sequences — the TypeToSequence
// table of Section VIII. *xmltree.Document satisfies it (in memory), as
// does *store.Doc (lazily reading sequences from the shredded store, so
// the renderer touches only the types the target mentions).
type Source interface {
	NodesOfType(t string) []*xmltree.Node
}

// Render transforms doc into the arrangement described by tgt, preserving
// closest relationships (Definition 4). Every output element and attribute
// carries Src provenance to the source vertex it was rendered from;
// manufactured (NEW / TYPE-FILL) elements have no provenance.
//
// When sp is non-nil, Render records the closest-join statistics (joins,
// candidate nodes scanned, closest pairs kept) and the output node count
// on it. The span's lifetime belongs to the caller (Render neither
// creates children nor ends it); a nil sp adds no allocations.
func Render(doc Source, tgt *semantics.Target, sp *obs.Span) (*xmltree.Document, error) {
	return render(doc, tgt, sp, nil)
}

// RenderAnnotated is Render plus a provenance map from every output node
// (wrappers and fill elements included) to the target type that emitted
// it. The view layer uses the annotation to patch a materialized output
// in place when the source changes.
func RenderAnnotated(doc Source, tgt *semantics.Target, sp *obs.Span) (*xmltree.Document, map[*xmltree.Node]*semantics.TNode, error) {
	prov := map[*xmltree.Node]*semantics.TNode{}
	out, err := render(doc, tgt, sp, prov)
	return out, prov, err
}

func render(doc Source, tgt *semantics.Target, sp *obs.Span, prov map[*xmltree.Node]*semantics.TNode) (*xmltree.Document, error) {
	var rec *closest.Recorder
	if sp != nil {
		rec = &closest.Recorder{}
	}
	r := &renderer{
		doc:   doc,
		b:     xmltree.NewBuilder(),
		joins: map[joinKey]*closest.Grouped{},
		rec:   rec,
		prov:  prov,
	}
	emitted := false
	for _, root := range tgt.Roots {
		if root.Source == "" {
			if r.emitWrapperRoot(root) {
				emitted = true
			}
			continue
		}
		for _, v := range doc.NodesOfType(root.Source) {
			if !r.satisfies(v, root.Require) {
				continue
			}
			r.emitNode(root, v)
			emitted = true
		}
	}
	if !emitted {
		// Legal: the target types may simply have no instances.
		annotateJoins(sp, rec, 0)
		return &xmltree.Document{}, nil
	}
	out, err := r.b.Document()
	if err != nil {
		return nil, fmt.Errorf("render: %w", err)
	}
	annotateJoins(sp, rec, out.Size())
	return out, nil
}

// annotateJoins writes the join statistics and output size onto sp.
func annotateJoins(sp *obs.Span, rec *closest.Recorder, nodesOut int) {
	if sp == nil {
		return
	}
	joins, candidates, pairs := rec.Snapshot()
	sp.Set("joins", joins)
	sp.Set("candidates", candidates)
	sp.Set("closest-pairs", pairs)
	sp.Set("nodes-out", int64(nodesOut))
}

type joinKey struct{ parent, child string }

type renderer struct {
	doc Source
	b   *xmltree.Builder
	// joins caches the grouped closest join for each (parent type, child
	// type) pair in closest.Grouped's CSR layout: one contiguous partner
	// slice plus offsets indexed by the parent's Ord — no per-parent map
	// entries, and a cached lookup allocates nothing.
	joins map[joinKey]*closest.Grouped
	// rec accumulates join statistics for tracing; nil when untraced.
	rec *closest.Recorder
	// prov, when non-nil, records the target type behind each emitted
	// node (RenderAnnotated).
	prov map[*xmltree.Node]*semantics.TNode
}

// mark records provenance for the node just emitted.
func (r *renderer) mark(tn *semantics.TNode) {
	if r.prov != nil {
		r.prov[r.b.Last()] = tn
	}
}

// closestOf returns the child-type nodes closest to v, from the cached
// sort-merge join of the two full type sequences.
func (r *renderer) closestOf(v *xmltree.Node, childType string) []*xmltree.Node {
	key := joinKey{v.Type, childType}
	g, ok := r.joins[key]
	if !ok {
		g = closest.GroupJoin(r.doc.NodesOfType(v.Type), r.doc.NodesOfType(childType), r.rec)
		r.joins[key] = g
	}
	return g.Of(v)
}

// satisfies checks RESTRICT requirements: v must have a closest partner
// chain for every requirement subtree.
func (r *renderer) satisfies(v *xmltree.Node, reqs []*semantics.TNode) bool {
	for _, req := range reqs {
		if req.Source == "" {
			continue
		}
		found := false
		for _, w := range r.closestOf(v, req.Source) {
			if r.satisfies(w, req.Kids) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// emitNode renders source vertex v as target type tn, then recursively
// renders tn's children from v's closest partners.
func (r *renderer) emitNode(tn *semantics.TNode, v *xmltree.Node) {
	// A leaf rendered from an attribute vertex stays an attribute when it
	// sits inside an element; everything else renders as an element.
	if v.Attr && len(tn.Kids) == 0 && r.b.Open() {
		r.b.Attr(tn.Name, v.Value)
		r.b.Last().Src = v
		r.mark(tn)
		return
	}
	r.b.Elem(tn.Name)
	r.b.Last().Src = v
	r.mark(tn)
	if v.Value != "" {
		r.b.Text(v.Value)
	}
	r.emitKids(tn, v)
	r.b.End()
}

// emitKids renders tn's children below the already-open output element,
// joining from source vertex v.
func (r *renderer) emitKids(tn *semantics.TNode, v *xmltree.Node) {
	for _, kid := range tn.Kids {
		if kid.Source == "" {
			r.emitWrapper(kid, v)
			continue
		}
		for _, w := range r.closestOf(v, kid.Source) {
			if !r.satisfies(w, kid.Require) {
				continue
			}
			r.emitNode(kid, w)
		}
	}
}

// emitWrapper renders a manufactured (NEW or TYPE-FILL) target type below
// the current output element: one wrapper per instance of its first
// sourced child, joined from parent vertex v; remaining children attach by
// closeness to that instance. A childless wrapper renders as a single
// empty element (DESIGN.md's documented choice).
func (r *renderer) emitWrapper(tn *semantics.TNode, v *xmltree.Node) {
	first := firstSourced(tn)
	if first == nil {
		r.b.Elem(tn.Name)
		r.mark(tn)
		r.emitFillKids(tn)
		r.b.End()
		return
	}
	for _, w := range r.closestOf(v, first.Source) {
		if !r.satisfies(w, first.Require) {
			continue
		}
		r.b.Elem(tn.Name)
		r.mark(tn)
		r.emitNode(first, w)
		r.emitSiblingsOf(tn, first, w)
		r.b.End()
	}
}

// emitWrapperRoot renders a manufactured target root: one wrapper per
// instance of its first sourced child, or a single empty element when it
// has none. It reports whether anything was emitted.
func (r *renderer) emitWrapperRoot(tn *semantics.TNode) bool {
	first := firstSourced(tn)
	if first == nil {
		r.b.Elem(tn.Name)
		r.mark(tn)
		r.emitFillKids(tn)
		r.b.End()
		return true
	}
	emitted := false
	for _, w := range r.doc.NodesOfType(first.Source) {
		if !r.satisfies(w, first.Require) {
			continue
		}
		r.b.Elem(tn.Name)
		r.mark(tn)
		r.emitNode(first, w)
		r.emitSiblingsOf(tn, first, w)
		r.b.End()
		emitted = true
	}
	return emitted
}

// emitSiblingsOf renders the wrapper's remaining children, joined by
// closeness to the first child's instance w.
func (r *renderer) emitSiblingsOf(wrapper, first *semantics.TNode, w *xmltree.Node) {
	for _, kid := range wrapper.Kids {
		if kid == first {
			continue
		}
		if kid.Source == "" {
			r.emitWrapper(kid, w)
			continue
		}
		for _, u := range r.closestOf(w, kid.Source) {
			if !r.satisfies(u, kid.Require) {
				continue
			}
			r.emitNode(kid, u)
		}
	}
}

// emitFillKids renders the manufactured children of a childless-sourced
// wrapper (nested NEW / TYPE-FILL types with no data below them).
func (r *renderer) emitFillKids(tn *semantics.TNode) {
	for _, kid := range tn.Kids {
		if kid.Source == "" {
			r.b.Elem(kid.Name)
			r.mark(kid)
			r.emitFillKids(kid)
			r.b.End()
		}
	}
}

func firstSourced(tn *semantics.TNode) *semantics.TNode {
	for _, k := range tn.Kids {
		if k.Source != "" {
			return k
		}
	}
	return nil
}
