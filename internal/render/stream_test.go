package render

import (
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"xmorph/internal/closest"
	"xmorph/internal/guard"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

// streamRun compiles a guard and renders it both ways, asserting byte
// equality, and returns the streamed output.
func streamRun(t *testing.T, guardSrc, xmlSrc string) string {
	t.Helper()
	doc := xmltree.MustParse(xmlSrc)
	plan, err := semantics.Compile(guard.MustParse(guardSrc), shape.FromDocument(doc))
	if err != nil {
		t.Fatalf("compile %q: %v", guardSrc, err)
	}
	tgt := plan.ComposedTarget()

	tree, err := Render(doc, tgt, nil)
	if err != nil {
		t.Fatalf("render %q: %v", guardSrc, err)
	}
	var b strings.Builder
	n, err := Stream(doc, tgt, &b, nil)
	if err != nil {
		t.Fatalf("stream %q: %v", guardSrc, err)
	}
	if b.String() != tree.XML(false) {
		t.Errorf("stream and tree render differ for %q:\nstream: %s\ntree:   %s",
			guardSrc, b.String(), tree.XML(false))
	}
	if n != tree.Size() {
		t.Errorf("stream count = %d, tree size = %d", n, tree.Size())
	}
	return b.String()
}

func TestStreamMatchesTreeRender(t *testing.T) {
	guards := []string{
		"MORPH author [ name book [ title ] ]",
		"CAST MORPH title",
		"MUTATE data",
		"CAST MUTATE book [ publisher [ name ] ]",
		"CAST-WIDENING MUTATE (NEW scribe) [ author ]",
		"CAST MUTATE author [ CLONE title ]",
		"CAST MORPH (RESTRICT author [ name ]) [ title ]",
		"CAST MORPH author [ name ] | TRANSLATE author -> writer",
		"TYPE-FILL CAST MORPH author [ isbn ]",
	}
	for _, g := range guards {
		streamRun(t, g, fig1a)
	}
}

func TestStreamAttributes(t *testing.T) {
	const src = `<site><item id="i1" featured="yes"><name>bike &amp; bell</name></item></site>`
	out := streamRun(t, "MUTATE site", src)
	if !strings.Contains(out, `id="i1"`) || !strings.Contains(out, "&amp;") {
		t.Errorf("attributes/escaping: %s", out)
	}
}

func TestStreamEmptyOutput(t *testing.T) {
	doc := xmltree.MustParse(`<data><a>1</a></data>`)
	plan, err := semantics.Compile(guard.MustParse("CAST MUTATE (DROP a)"), shape.FromDocument(doc))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if _, err := Stream(doc, plan.ComposedTarget(), &b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<data/>") {
		t.Errorf("empty-ish stream: %q", b.String())
	}
}

// TestStreamRandomDocs compares both renderers over random documents and
// a battery of small guards.
func TestStreamRandomDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		b := xmltree.NewBuilder().Elem("root")
		depth := 0
		for i := 0; i < 3+rng.Intn(25); i++ {
			if depth > 0 && rng.Intn(3) == 0 {
				b.End()
				depth--
				continue
			}
			b.Elem(labels[rng.Intn(3)])
			if rng.Intn(2) == 0 {
				b.Text("v<&>")
				b.End()
			} else {
				depth++
			}
		}
		for ; depth >= 0; depth-- {
			b.End()
		}
		doc := b.MustDocument()
		for _, g := range []string{"CAST MUTATE root", "CAST MORPH a [ b ]", "CAST MORPH root [ a c ]"} {
			plan, err := semantics.Compile(guard.MustParse(g), shape.FromDocument(doc))
			if err != nil {
				continue // random doc may lack the types
			}
			tgt := plan.ComposedTarget()
			tree, err := Render(doc, tgt, nil)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if _, err := Stream(doc, tgt, &sb, nil); err != nil {
				t.Fatal(err)
			}
			if sb.String() != tree.XML(false) {
				t.Fatalf("trial %d guard %q:\nstream: %s\ntree:   %s",
					trial, g, sb.String(), tree.XML(false))
			}
		}
	}
}

// TestStreamWrapperRoots covers manufactured roots: a NEW root wraps each
// instance of its first sourced child, attaching closest siblings.
func TestStreamWrapperRoots(t *testing.T) {
	out := streamRun(t, "CAST-WIDENING MORPH (NEW entry) [ book [ title ] author ]", fig1a)
	if strings.Count(out, "<entry>") != 2 {
		t.Errorf("one wrapper per book expected:\n%s", out)
	}
	// Each entry carries the book plus its closest author (rendered empty:
	// the bare label requests no children and authors carry no text).
	if strings.Count(out, "<author") != 2 {
		t.Errorf("closest siblings missing:\n%s", out)
	}
}

// TestStreamFillOnlyWrapper covers wrappers with no sourced children at
// all: TYPE-FILL manufactures the nested types as empty elements.
func TestStreamFillOnlyWrapper(t *testing.T) {
	out := streamRun(t, "TYPE-FILL CAST MORPH (NEW top) [ missing [ alsomissing ] ]", fig1a)
	if !strings.Contains(out, "<top><missing><alsomissing/></missing></top>") {
		t.Errorf("fill-only wrapper:\n%s", out)
	}
}

// TestStreamWrapperWithNestedWrapper: a NEW inside a NEW.
func TestStreamWrapperNested(t *testing.T) {
	out := streamRun(t, "CAST-WIDENING MORPH (NEW outer) [ book (NEW inner) [ title ] ]", fig1a)
	if strings.Count(out, "<outer>") != 2 || strings.Count(out, "<inner>") != 2 {
		t.Errorf("nested wrappers:\n%s", out)
	}
}

// TestRenderParallelMatchesSequential: the prefetching renderer must be
// byte-identical to the lazy one for every guard in the battery.
func TestRenderParallelMatchesSequential(t *testing.T) {
	guards := []string{
		"MORPH author [ name book [ title ] ]",
		"MUTATE data",
		"CAST-WIDENING MUTATE (NEW scribe) [ author ]",
		"CAST MORPH (RESTRICT author [ name ]) [ title ]",
		"CAST-WIDENING MORPH (NEW entry) [ book [ title ] author ]",
	}
	doc := xmltree.MustParse(fig1a)
	for _, g := range guards {
		plan, err := semantics.Compile(guard.MustParse(g), shape.FromDocument(doc))
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		tgt := plan.ComposedTarget()
		seq, err := Render(doc, tgt, nil)
		if err != nil {
			t.Fatal(err)
		}
		par, err := RenderParallel(doc, tgt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seq.XML(false) != par.XML(false) {
			t.Errorf("parallel differs for %q:\nseq: %s\npar: %s", g, seq.XML(false), par.XML(false))
		}
	}
}

// TestJoinEdgesCoverage: the prefetch collector must cover every join the
// lazy renderer performs (no lazy fills left).
func TestJoinEdgesCoverage(t *testing.T) {
	doc := xmltree.MustParse(fig1a)
	for _, g := range []string{
		"MORPH author [ name book [ title ] ]",
		"CAST-WIDENING MORPH (NEW entry) [ book [ title ] author ]",
		"CAST MORPH (RESTRICT author [ name ]) [ title ]",
	} {
		plan, err := semantics.Compile(guard.MustParse(g), shape.FromDocument(doc))
		if err != nil {
			t.Fatal(err)
		}
		tgt := plan.ComposedTarget()
		pre := prefetchJoins(doc, tgt, 2, nil)
		// Run lazily and compare the key sets the renderer actually used.
		lazy := &renderer{doc: doc, b: xmltree.NewBuilder(), joins: map[joinKey]*closest.Grouped{}}
		for _, root := range tgt.Roots {
			if root.Source == "" {
				lazy.emitWrapperRoot(root)
				continue
			}
			for _, v := range doc.NodesOfType(root.Source) {
				if lazy.satisfies(v, root.Require) {
					lazy.emitNode(root, v)
				}
			}
		}
		for k := range lazy.joins {
			if _, ok := pre[k]; !ok {
				t.Errorf("guard %q: prefetch missed join %v", g, k)
			}
		}
	}
}

// TestComposedEqualsPerStage: for pipelines whose later stages do not
// depend on re-derived type distances (identity MUTATE, DROP, TRANSLATE),
// the single-pass composed render must equal physically rendering stage by
// stage — the equivalence behind the Fig. 16 methodology.
func TestComposedEqualsPerStage(t *testing.T) {
	pipelines := []string{
		"CAST MORPH author [ name book [ title ] ] | TRANSLATE author -> writer",
		"CAST MORPH author [ name title ] | MUTATE author",
		"CAST MORPH book [ title author [ name ] ] | MUTATE (DROP name)",
		"CAST MORPH author [ name ] | TRANSLATE name -> alias | TRANSLATE author -> writer",
	}
	doc := xmltree.MustParse(fig1a)
	for _, g := range pipelines {
		plan, err := semantics.Compile(guard.MustParse(g), shape.FromDocument(doc))
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		composed, err := Render(doc, plan.ComposedTarget(), nil)
		if err != nil {
			t.Fatal(err)
		}
		var cur Source = doc
		var staged *xmltree.Document
		for _, sp := range plan.Stages {
			o, err := Render(cur, sp.Target, nil)
			if err != nil {
				t.Fatalf("%s per-stage: %v", g, err)
			}
			staged, cur = o, o
		}
		if composed.XML(false) != staged.XML(false) {
			t.Errorf("%s:\ncomposed:  %s\nper-stage: %s", g, composed.XML(false), staged.XML(false))
		}
	}
}

// chokeWriter accepts limit bytes and then fails: with err set it returns
// that error; with err nil it returns a short write, which bufio reports
// as io.ErrShortWrite.
type chokeWriter struct {
	limit int
	n     int
	err   error
}

func (c *chokeWriter) Write(p []byte) (int, error) {
	room := c.limit - c.n
	if room >= len(p) {
		c.n += len(p)
		return len(p), nil
	}
	if room < 0 {
		room = 0
	}
	c.n += room
	return room, c.err
}

// TestStreamSurfacesFlushErrors: with output smaller than the bufio
// buffer, the sink sees bytes only at the final flush — a failure there
// must reach the caller instead of being dropped.
func TestStreamSurfacesFlushErrors(t *testing.T) {
	doc := xmltree.MustParse(fig1a)
	plan, err := semantics.Compile(guard.MustParse("MORPH author [ name ]"), shape.FromDocument(doc))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink full")
	for _, tc := range []struct {
		name string
		w    *chokeWriter
		want error
	}{
		{"error-at-flush", &chokeWriter{limit: 3, err: boom}, boom},
		{"short-write-at-flush", &chokeWriter{limit: 3}, io.ErrShortWrite},
		{"error-at-first-byte", &chokeWriter{limit: 0, err: boom}, boom},
	} {
		_, err := Stream(doc, plan.ComposedTarget(), tc.w, nil)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestStreamSurfacesMidStreamWriteErrors: output larger than the bufio
// buffer forces writes during streaming; the first failure must stick and
// surface.
func TestStreamSurfacesMidStreamWriteErrors(t *testing.T) {
	b := xmltree.NewBuilder().Elem("root")
	for i := 0; i < 400; i++ {
		b.Elem("a").Text("some repeated element value text").End()
	}
	b.End()
	doc := b.MustDocument()
	plan, err := semantics.Compile(guard.MustParse("CAST MUTATE root"), shape.FromDocument(doc))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("pipe broke")
	_, err = Stream(doc, plan.ComposedTarget(), &chokeWriter{limit: 5000, err: boom}, nil)
	if !errors.Is(err, boom) {
		t.Errorf("mid-stream write error: got %v, want %v", err, boom)
	}
}

// TestStreamEmptyWrapperSelfCloses: a wrapper kid whose anchor has no
// instances under a given parent contributes nothing, so a parent with no
// text and no other content must self-close exactly as the tree renderer
// does (regression: the streamer used to emit <x></x> instead of <x/>).
func TestStreamEmptyWrapperSelfCloses(t *testing.T) {
	const src = `<data><g><x/><b>hit</b></g><g><x/></g></data>`
	out := streamRun(t, "CAST MORPH x [ (NEW w) [ b ] ]", src)
	if !strings.Contains(out, "<x/>") {
		t.Errorf("childless parent should self-close:\n%s", out)
	}
	if !strings.Contains(out, "<w><b>hit</b></w>") {
		t.Errorf("populated wrapper missing:\n%s", out)
	}
}

// TestStreamAttrTranslate: a renamed attribute must carry the target name,
// as Builder.Attr gives it (regression: the streamer printed the source
// name).
func TestStreamAttrTranslate(t *testing.T) {
	const src = `<site><item id="i1"/></site>`
	out := streamRun(t, "MUTATE site | TRANSLATE id -> ref", src)
	if !strings.Contains(out, `ref="i1"`) {
		t.Errorf("translated attribute name:\n%s", out)
	}
}

// TestStreamAttrOnlyWrapper: a wrapper anchored on an attribute-sourced
// leaf renders the attribute into the wrapper's own tag and self-closes
// (regression: the streamer rendered it as a child element).
func TestStreamAttrOnlyWrapper(t *testing.T) {
	const src = `<site><item id="i1"/><item id="i2"/></site>`
	out := streamRun(t, "CAST-WIDENING MORPH (NEW entry) [ id ]", src)
	if !strings.Contains(out, `<entry id="i1"/>`) || !strings.Contains(out, `<entry id="i2"/>`) {
		t.Errorf("attr-only wrapper instances:\n%s", out)
	}
}
