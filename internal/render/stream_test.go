package render

import (
	"math/rand"
	"strings"
	"testing"

	"xmorph/internal/closest"
	"xmorph/internal/guard"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

// streamRun compiles a guard and renders it both ways, asserting byte
// equality, and returns the streamed output.
func streamRun(t *testing.T, guardSrc, xmlSrc string) string {
	t.Helper()
	doc := xmltree.MustParse(xmlSrc)
	plan, err := semantics.Compile(guard.MustParse(guardSrc), shape.FromDocument(doc))
	if err != nil {
		t.Fatalf("compile %q: %v", guardSrc, err)
	}
	tgt := plan.ComposedTarget()

	tree, err := Render(doc, tgt, nil)
	if err != nil {
		t.Fatalf("render %q: %v", guardSrc, err)
	}
	var b strings.Builder
	n, err := Stream(doc, tgt, &b, nil)
	if err != nil {
		t.Fatalf("stream %q: %v", guardSrc, err)
	}
	if b.String() != tree.XML(false) {
		t.Errorf("stream and tree render differ for %q:\nstream: %s\ntree:   %s",
			guardSrc, b.String(), tree.XML(false))
	}
	if n != tree.Size() {
		t.Errorf("stream count = %d, tree size = %d", n, tree.Size())
	}
	return b.String()
}

func TestStreamMatchesTreeRender(t *testing.T) {
	guards := []string{
		"MORPH author [ name book [ title ] ]",
		"CAST MORPH title",
		"MUTATE data",
		"CAST MUTATE book [ publisher [ name ] ]",
		"CAST-WIDENING MUTATE (NEW scribe) [ author ]",
		"CAST MUTATE author [ CLONE title ]",
		"CAST MORPH (RESTRICT author [ name ]) [ title ]",
		"CAST MORPH author [ name ] | TRANSLATE author -> writer",
		"TYPE-FILL CAST MORPH author [ isbn ]",
	}
	for _, g := range guards {
		streamRun(t, g, fig1a)
	}
}

func TestStreamAttributes(t *testing.T) {
	const src = `<site><item id="i1" featured="yes"><name>bike &amp; bell</name></item></site>`
	out := streamRun(t, "MUTATE site", src)
	if !strings.Contains(out, `id="i1"`) || !strings.Contains(out, "&amp;") {
		t.Errorf("attributes/escaping: %s", out)
	}
}

func TestStreamEmptyOutput(t *testing.T) {
	doc := xmltree.MustParse(`<data><a>1</a></data>`)
	plan, err := semantics.Compile(guard.MustParse("CAST MUTATE (DROP a)"), shape.FromDocument(doc))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if _, err := Stream(doc, plan.ComposedTarget(), &b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<data/>") {
		t.Errorf("empty-ish stream: %q", b.String())
	}
}

// TestStreamRandomDocs compares both renderers over random documents and
// a battery of small guards.
func TestStreamRandomDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		b := xmltree.NewBuilder().Elem("root")
		depth := 0
		for i := 0; i < 3+rng.Intn(25); i++ {
			if depth > 0 && rng.Intn(3) == 0 {
				b.End()
				depth--
				continue
			}
			b.Elem(labels[rng.Intn(3)])
			if rng.Intn(2) == 0 {
				b.Text("v<&>")
				b.End()
			} else {
				depth++
			}
		}
		for ; depth >= 0; depth-- {
			b.End()
		}
		doc := b.MustDocument()
		for _, g := range []string{"CAST MUTATE root", "CAST MORPH a [ b ]", "CAST MORPH root [ a c ]"} {
			plan, err := semantics.Compile(guard.MustParse(g), shape.FromDocument(doc))
			if err != nil {
				continue // random doc may lack the types
			}
			tgt := plan.ComposedTarget()
			tree, err := Render(doc, tgt, nil)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if _, err := Stream(doc, tgt, &sb, nil); err != nil {
				t.Fatal(err)
			}
			if sb.String() != tree.XML(false) {
				t.Fatalf("trial %d guard %q:\nstream: %s\ntree:   %s",
					trial, g, sb.String(), tree.XML(false))
			}
		}
	}
}

// TestStreamWrapperRoots covers manufactured roots: a NEW root wraps each
// instance of its first sourced child, attaching closest siblings.
func TestStreamWrapperRoots(t *testing.T) {
	out := streamRun(t, "CAST-WIDENING MORPH (NEW entry) [ book [ title ] author ]", fig1a)
	if strings.Count(out, "<entry>") != 2 {
		t.Errorf("one wrapper per book expected:\n%s", out)
	}
	// Each entry carries the book plus its closest author (rendered empty:
	// the bare label requests no children and authors carry no text).
	if strings.Count(out, "<author") != 2 {
		t.Errorf("closest siblings missing:\n%s", out)
	}
}

// TestStreamFillOnlyWrapper covers wrappers with no sourced children at
// all: TYPE-FILL manufactures the nested types as empty elements.
func TestStreamFillOnlyWrapper(t *testing.T) {
	out := streamRun(t, "TYPE-FILL CAST MORPH (NEW top) [ missing [ alsomissing ] ]", fig1a)
	if !strings.Contains(out, "<top><missing><alsomissing/></missing></top>") {
		t.Errorf("fill-only wrapper:\n%s", out)
	}
}

// TestStreamWrapperWithNestedWrapper: a NEW inside a NEW.
func TestStreamWrapperNested(t *testing.T) {
	out := streamRun(t, "CAST-WIDENING MORPH (NEW outer) [ book (NEW inner) [ title ] ]", fig1a)
	if strings.Count(out, "<outer>") != 2 || strings.Count(out, "<inner>") != 2 {
		t.Errorf("nested wrappers:\n%s", out)
	}
}

// TestRenderParallelMatchesSequential: the prefetching renderer must be
// byte-identical to the lazy one for every guard in the battery.
func TestRenderParallelMatchesSequential(t *testing.T) {
	guards := []string{
		"MORPH author [ name book [ title ] ]",
		"MUTATE data",
		"CAST-WIDENING MUTATE (NEW scribe) [ author ]",
		"CAST MORPH (RESTRICT author [ name ]) [ title ]",
		"CAST-WIDENING MORPH (NEW entry) [ book [ title ] author ]",
	}
	doc := xmltree.MustParse(fig1a)
	for _, g := range guards {
		plan, err := semantics.Compile(guard.MustParse(g), shape.FromDocument(doc))
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		tgt := plan.ComposedTarget()
		seq, err := Render(doc, tgt, nil)
		if err != nil {
			t.Fatal(err)
		}
		par, err := RenderParallel(doc, tgt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seq.XML(false) != par.XML(false) {
			t.Errorf("parallel differs for %q:\nseq: %s\npar: %s", g, seq.XML(false), par.XML(false))
		}
	}
}

// TestJoinEdgesCoverage: the prefetch collector must cover every join the
// lazy renderer performs (no lazy fills left).
func TestJoinEdgesCoverage(t *testing.T) {
	doc := xmltree.MustParse(fig1a)
	for _, g := range []string{
		"MORPH author [ name book [ title ] ]",
		"CAST-WIDENING MORPH (NEW entry) [ book [ title ] author ]",
		"CAST MORPH (RESTRICT author [ name ]) [ title ]",
	} {
		plan, err := semantics.Compile(guard.MustParse(g), shape.FromDocument(doc))
		if err != nil {
			t.Fatal(err)
		}
		tgt := plan.ComposedTarget()
		pre := prefetchJoins(doc, tgt, 2, nil)
		// Run lazily and compare the key sets the renderer actually used.
		lazy := &renderer{doc: doc, b: xmltree.NewBuilder(), joins: map[joinKey]*closest.Grouped{}}
		for _, root := range tgt.Roots {
			if root.Source == "" {
				lazy.emitWrapperRoot(root)
				continue
			}
			for _, v := range doc.NodesOfType(root.Source) {
				if lazy.satisfies(v, root.Require) {
					lazy.emitNode(root, v)
				}
			}
		}
		for k := range lazy.joins {
			if _, ok := pre[k]; !ok {
				t.Errorf("guard %q: prefetch missed join %v", g, k)
			}
		}
	}
}

// TestComposedEqualsPerStage: for pipelines whose later stages do not
// depend on re-derived type distances (identity MUTATE, DROP, TRANSLATE),
// the single-pass composed render must equal physically rendering stage by
// stage — the equivalence behind the Fig. 16 methodology.
func TestComposedEqualsPerStage(t *testing.T) {
	pipelines := []string{
		"CAST MORPH author [ name book [ title ] ] | TRANSLATE author -> writer",
		"CAST MORPH author [ name title ] | MUTATE author",
		"CAST MORPH book [ title author [ name ] ] | MUTATE (DROP name)",
		"CAST MORPH author [ name ] | TRANSLATE name -> alias | TRANSLATE author -> writer",
	}
	doc := xmltree.MustParse(fig1a)
	for _, g := range pipelines {
		plan, err := semantics.Compile(guard.MustParse(g), shape.FromDocument(doc))
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		composed, err := Render(doc, plan.ComposedTarget(), nil)
		if err != nil {
			t.Fatal(err)
		}
		var cur Source = doc
		var staged *xmltree.Document
		for _, sp := range plan.Stages {
			o, err := Render(cur, sp.Target, nil)
			if err != nil {
				t.Fatalf("%s per-stage: %v", g, err)
			}
			staged, cur = o, o
		}
		if composed.XML(false) != staged.XML(false) {
			t.Errorf("%s:\ncomposed:  %s\nper-stage: %s", g, composed.XML(false), staged.XML(false))
		}
	}
}
