package render

import (
	"strings"
	"testing"

	"xmorph/internal/closest"
	"xmorph/internal/guard"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

const fig1a = `<data>
  <book>
    <title>X</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
  <book>
    <title>Y</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
</data>`

const fig1b = `<data>
  <publisher>
    <name>W</name>
    <book>
      <title>X</title>
      <author><name>V</name></author>
    </book>
    <book>
      <title>Y</title>
      <author><name>V</name></author>
    </book>
  </publisher>
</data>`

const fig1c = `<data>
  <author>
    <name>V</name>
    <book>
      <title>X</title>
      <publisher><name>W</name></publisher>
    </book>
    <book>
      <title>Y</title>
      <publisher><name>W</name></publisher>
    </book>
  </author>
</data>`

// run compiles and renders a guard over an XML literal.
func run(t *testing.T, guardSrc, xmlSrc string) *xmltree.Document {
	t.Helper()
	doc := xmltree.MustParse(xmlSrc)
	plan, err := semantics.Compile(guard.MustParse(guardSrc), shape.FromDocument(doc))
	if err != nil {
		t.Fatalf("compile %q: %v", guardSrc, err)
	}
	cur := doc
	for _, sp := range plan.Stages {
		out, err := Render(cur, sp.Target, nil)
		if err != nil {
			t.Fatalf("render %q: %v", guardSrc, err)
		}
		cur = out
	}
	return cur
}

// TestRenderFig2 reproduces Figure 2: the guard applied to instances (a)
// and (b) yields the same XML; instance (c) differs only in grouping.
func TestRenderFig2(t *testing.T) {
	const g = "MORPH author [ name book [ title ] ]"
	outA := run(t, g, fig1a).XML(false)
	outB := run(t, g, fig1b).XML(false)

	wantAB := `<author><name>V</name><book><title>X</title></book></author>` + "\n" +
		`<author><name>V</name><book><title>Y</title></book></author>`
	if outA != wantAB {
		t.Errorf("instance (a):\ngot  %s\nwant %s", outA, wantAB)
	}
	if outB != wantAB {
		t.Errorf("instance (b):\ngot  %s\nwant %s", outB, wantAB)
	}

	// Instance (c): one author element grouping both books (the grouping
	// is in the source data).
	outC := run(t, g, fig1c).XML(false)
	wantC := `<author><name>V</name><book><title>X</title></book><book><title>Y</title></book></author>`
	if outC != wantC {
		t.Errorf("instance (c):\ngot  %s\nwant %s", outC, wantC)
	}
}

// TestRenderFig3 reproduces Figure 3 on instance (c): both titles end up
// closest to the publisher (the widening example).
func TestRenderFig3(t *testing.T) {
	out := run(t, "MORPH author [ title name publisher [ name ] ]", fig1c)
	s := out.XML(false)
	want := `<author><title>X</title><title>Y</title><name>V</name>` +
		`<publisher><name>W</name></publisher><publisher><name>W</name></publisher></author>`
	if s != want {
		t.Errorf("fig3 render:\ngot  %s\nwant %s", s, want)
	}
}

// TestRenderFig6 reproduces Figure 6: rearranging instance (a) into the
// shape of (c).
func TestRenderFig6(t *testing.T) {
	out := run(t, "MORPH data [ author [ name book [ title publisher [ name ] ] ] ]", fig1a)
	s := out.XML(false)
	want := `<data>` +
		`<author><name>V</name><book><title>X</title><publisher><name>W</name></publisher></book></author>` +
		`<author><name>V</name><book><title>Y</title><publisher><name>W</name></publisher></book></author>` +
		`</data>`
	if s != want {
		t.Errorf("fig6 render:\ngot  %s\nwant %s", s, want)
	}
}

// TestRenderMutateIdentity: MUTATE <root> reproduces the document.
func TestRenderMutateIdentity(t *testing.T) {
	for _, src := range []string{fig1a, fig1b, fig1c} {
		in := xmltree.MustParse(src)
		out := run(t, "MUTATE data", src)
		if in.XML(false) != out.XML(false) {
			t.Errorf("identity mutate:\nin  %s\nout %s", in.XML(false), out.XML(false))
		}
	}
}

// TestRenderIdentityReversible checks the empirical counterpart of the
// static verdict: an identity transform's closest graph equals the
// source's.
func TestRenderIdentityReversible(t *testing.T) {
	in := xmltree.MustParse(fig1a)
	plan, err := semantics.Compile(guard.MustParse("MUTATE data"), shape.FromDocument(in))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render(in, plan.Final().Target, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := closest.Compare(closest.Build(in), closest.Build(out))
	if !res.Reversible() {
		t.Errorf("identity should be reversible: %+v", res)
	}
}

// TestRenderNonInclusiveDropsAuthors: the Section V-B example rendered —
// authors without names disappear.
func TestRenderNonInclusiveDropsAuthors(t *testing.T) {
	const src = `<data>
	  <book><author><title>A</title></author></book>
	  <book><author><name>V</name><title>B</title></author></book>
	</data>`
	out := run(t, "CAST MUTATE name [ author ]", src)
	authors := 0
	for _, n := range out.Nodes() {
		if n.Name == "author" {
			authors++
		}
	}
	if authors != 1 {
		t.Errorf("authors in output = %d, want 1 (nameless author dropped):\n%s", authors, out.XML(true))
	}
}

func TestRenderMutateMove(t *testing.T) {
	// Figure 1(b) -> (a)-like: publisher below book.
	out := run(t, "MUTATE book [ publisher [ name ] ]", fig1b)
	s := out.XML(false)
	// Each book must now contain a publisher with name W.
	if strings.Count(s, "<publisher><name>W</name></publisher>") != 2 {
		t.Errorf("publisher not duplicated under each book:\n%s", out.XML(true))
	}
	// data root survives with books beneath.
	if !strings.HasPrefix(s, "<data>") {
		t.Errorf("root lost: %s", s)
	}
}

func TestRenderClone(t *testing.T) {
	out := run(t, "MUTATE author [ CLONE title ]", fig1a)
	s := out.XML(false)
	// titles appear twice: originals under book, clones under author.
	if strings.Count(s, "<title>X</title>") != 2 {
		t.Errorf("clone of X missing:\n%s", out.XML(true))
	}
}

func TestRenderNewWrapsAuthors(t *testing.T) {
	out := run(t, "CAST-WIDENING MUTATE (NEW scribe) [ author ]", fig1a)
	s := out.XML(false)
	if strings.Count(s, "<scribe><author>") != 2 {
		t.Errorf("each author should be wrapped in scribe:\n%s", out.XML(true))
	}
	// Scribe nodes are manufactured: no provenance.
	for _, n := range out.Nodes() {
		if n.Name == "scribe" && n.Src != nil {
			t.Error("manufactured node has provenance")
		}
		if n.Name == "author" && n.Src == nil {
			t.Error("rendered node lacks provenance")
		}
	}
}

func TestRenderRestrictFilters(t *testing.T) {
	const src = `<data>
	  <book><author><title>A</title></author></book>
	  <book><author><name>V</name><title>B</title></author></book>
	</data>`
	// Only authors with a closest name are kept.
	out := run(t, "CAST MORPH (RESTRICT author [ name ]) [ title ]", src)
	s := out.XML(false)
	if strings.Contains(s, "A") || !strings.Contains(s, "B") {
		t.Errorf("restrict filtered wrong authors:\n%s", s)
	}
	// The requirement (name) itself is not rendered.
	if strings.Contains(s, "<name>") {
		t.Errorf("requirement leaked into output:\n%s", s)
	}
}

func TestRenderTranslate(t *testing.T) {
	out := run(t, "MORPH author [ name ] | TRANSLATE author -> writer", fig1a)
	s := out.XML(false)
	if !strings.Contains(s, "<writer>") || strings.Contains(s, "<author>") {
		t.Errorf("translate failed:\n%s", s)
	}
	// Values survive the composed stages.
	if !strings.Contains(s, "<name>V</name>") {
		t.Errorf("values lost in composition:\n%s", s)
	}
}

func TestRenderComposeDrop(t *testing.T) {
	out := run(t, "CAST MORPH author [ name ] | MUTATE (DROP name)", fig1a)
	s := out.XML(false)
	if strings.Contains(s, "name") {
		t.Errorf("dropped type still present:\n%s", s)
	}
	if strings.Count(s, "<author") != 2 {
		t.Errorf("authors lost:\n%s", s)
	}
}

func TestRenderAttributesRoundTrip(t *testing.T) {
	const src = `<site><item id="i1"><name>bicycle</name></item><item id="i2"><name>car</name></item></site>`
	out := run(t, "MUTATE site", src)
	if out.XML(false) != xmltree.MustParse(src).XML(false) {
		t.Errorf("attribute identity failed:\n%s", out.XML(false))
	}
}

func TestRenderAttributePromotedToElement(t *testing.T) {
	// An attribute type morphed to a root renders as an element.
	const src = `<site><item id="i1"/></site>`
	out := run(t, "MORPH id", src)
	if got := out.XML(false); got != "<id>i1</id>" {
		t.Errorf("attribute promotion = %s", got)
	}
}

func TestRenderEmptyResult(t *testing.T) {
	// A RESTRICT that filters everything renders an empty document.
	const src = `<data><book><author><title>A</title></author></book></data>`
	doc := xmltree.MustParse(src)
	plan, err := semantics.Compile(guard.MustParse("CAST MORPH (RESTRICT author [ name ])"), shape.FromDocument(doc))
	if err == nil {
		out, rerr := Render(doc, plan.Final().Target, nil)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if out.Size() != 0 {
			t.Errorf("expected empty output, got %s", out.XML(false))
		}
		return
	}
	// name resolves to no type at all here -> a type error is also a
	// legitimate outcome for this guard.
	if _, ok := err.(*semantics.TypeError); !ok {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRenderValuesAndProvenance(t *testing.T) {
	out := run(t, "MORPH title", fig1a)
	titles := out.NodesOfType("title")
	if len(titles) != 2 || titles[0].Value != "X" || titles[1].Value != "Y" {
		t.Fatalf("title values wrong: %+v", titles)
	}
	for _, n := range titles {
		if n.Src == nil || n.Src.Value != n.Value {
			t.Errorf("provenance missing or wrong: %+v", n.Src)
		}
	}
}

// TestRenderDuplication: transforming (a) into (b)'s shape groups books
// under the single publisher type; publisher W appears once per source
// publisher vertex.
func TestRenderPublisherGrouping(t *testing.T) {
	out := run(t, "CAST MORPH publisher [ name book [ title ] ]", fig1a)
	s := out.XML(false)
	// Two publisher vertices in (a): each gets its closest book.
	if strings.Count(s, "<publisher>") != 2 {
		t.Errorf("publisher count wrong:\n%s", s)
	}
	if !strings.Contains(s, "<book><title>X</title></book>") {
		t.Errorf("book not grouped under publisher:\n%s", s)
	}
}
