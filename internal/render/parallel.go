package render

import (
	"runtime"
	"sync"

	"xmorph/internal/closest"
	"xmorph/internal/obs"
	"xmorph/internal/semantics"
	"xmorph/internal/xmltree"
)

// RenderParallel is Render with the closest joins precomputed
// concurrently: every (parent type, child type) pair the target will join
// is known from the target shape alone, and the joins are independent, so
// a worker pool computes them before the (sequential, document-ordered)
// output pass begins. Output equals Render exactly. Span annotations
// match Render's; the recorder is shared across the prefetch workers.
func RenderParallel(doc Source, tgt *semantics.Target, sp *obs.Span) (*xmltree.Document, error) {
	var rec *closest.Recorder
	if sp != nil {
		rec = &closest.Recorder{}
	}
	r := &renderer{
		doc:   doc,
		b:     xmltree.NewBuilder(),
		joins: prefetchJoins(doc, tgt, runtime.GOMAXPROCS(0), rec),
		rec:   rec,
	}
	emitted := false
	for _, root := range tgt.Roots {
		if root.Source == "" {
			if r.emitWrapperRoot(root) {
				emitted = true
			}
			continue
		}
		for _, v := range doc.NodesOfType(root.Source) {
			if !r.satisfies(v, root.Require) {
				continue
			}
			r.emitNode(root, v)
			emitted = true
		}
	}
	if !emitted {
		annotateJoins(sp, rec, 0)
		return &xmltree.Document{}, nil
	}
	out, err := r.b.Document()
	if err != nil {
		return nil, err
	}
	annotateJoins(sp, rec, out.Size())
	return out, nil
}

// joinEdges collects every (parent source type, child source type) pair
// the renderer will join for the target, mirroring the rendering
// recursion. Missing a pair is harmless — the renderer computes it lazily
// — but the collector aims to cover them all.
func joinEdges(tgt *semantics.Target) [][2]string {
	seen := map[joinKey]bool{}
	var out [][2]string
	add := func(p, c string) {
		if p == "" || c == "" {
			return
		}
		k := joinKey{p, c}
		if !seen[k] {
			seen[k] = true
			out = append(out, [2]string{p, c})
		}
	}
	var reqs func(owner string, rs []*semantics.TNode)
	reqs = func(owner string, rs []*semantics.TNode) {
		for _, r := range rs {
			if r.Source == "" {
				continue
			}
			add(owner, r.Source)
			reqs(r.Source, r.Kids)
		}
	}
	var walk func(n *semantics.TNode, parentSrc string)
	walk = func(n *semantics.TNode, parentSrc string) {
		if n.Source == "" {
			// Wrapper: joins anchor on the first sourced child, then its
			// siblings join from that child's instances.
			first := firstSourced(n)
			if first != nil {
				add(parentSrc, first.Source)
				reqs(first.Source, first.Require)
				for _, kid := range n.Kids {
					if kid == first {
						walk(first, parentSrc)
						continue
					}
					walk(kid, first.Source)
				}
			} else {
				for _, kid := range n.Kids {
					walk(kid, parentSrc)
				}
			}
			return
		}
		add(parentSrc, n.Source)
		reqs(n.Source, n.Require)
		for _, kid := range n.Kids {
			walk(kid, n.Source)
		}
	}
	for _, root := range tgt.Roots {
		walk(root, "")
	}
	return out
}

// prefetchJoins computes the grouped closest joins for all target edges
// with a bounded worker pool. Each join lands in closest.Grouped's CSR
// layout, so the sequential output pass that follows reads contiguous
// partner groups instead of probing per-edge maps.
func prefetchJoins(doc Source, tgt *semantics.Target, workers int, rec *closest.Recorder) map[joinKey]*closest.Grouped {
	edges := joinEdges(tgt)
	if workers < 1 {
		workers = 1
	}
	results := make(map[joinKey]*closest.Grouped, len(edges))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	work := make(chan [2]string)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := range work {
				g := closest.GroupJoin(doc.NodesOfType(e[0]), doc.NodesOfType(e[1]), rec)
				mu.Lock()
				results[joinKey{e[0], e[1]}] = g
				mu.Unlock()
			}
		}()
	}
	for _, e := range edges {
		work <- e
	}
	close(work)
	wg.Wait()
	return results
}
