package render

import (
	"testing"

	"xmorph/internal/closest"
	"xmorph/internal/guard"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

// TestClosestOfCachedEdgeZeroAllocs extends PR 1's alloc guards to the
// CSR join cache: once an edge's join is cached, closestOf must be a
// pure array lookup — no per-parent map entries, no slice headers, no
// hashing. This is the bound behind the "render allocs/op reduced"
// acceptance criterion.
func TestClosestOfCachedEdgeZeroAllocs(t *testing.T) {
	doc := xmltree.MustParse(fig1a)
	r := &renderer{doc: doc, b: xmltree.NewBuilder(), joins: map[joinKey]*closest.Grouped{}}
	books := doc.NodesOfType("data.book")
	// First call builds and caches the join.
	if got := r.closestOf(books[0], "data.book.title"); len(got) != 1 {
		t.Fatalf("closest titles of first book = %d", len(got))
	}
	sink := 0
	allocs := testing.AllocsPerRun(500, func() {
		for _, b := range books {
			sink += len(r.closestOf(b, "data.book.title"))
		}
	})
	if allocs != 0 {
		t.Errorf("closestOf over a cached edge allocates %v per run, want 0", allocs)
	}
}

// BenchmarkClosestOfCached measures the cached-edge lookup the renderer
// performs once per emitted node; the hotpath suite records its
// allocs/op next to BenchmarkClosestOfMapCache's.
func BenchmarkClosestOfCached(b *testing.B) {
	doc := xmltree.MustParse(fig1a)
	r := &renderer{doc: doc, b: xmltree.NewBuilder(), joins: map[joinKey]*closest.Grouped{}}
	books := doc.NodesOfType("data.book")
	r.closestOf(books[0], "data.book.title")
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		for _, v := range books {
			sink += len(r.closestOf(v, "data.book.title"))
		}
	}
	_ = sink
}

// BenchmarkRenderCachedJoins renders a target whose joins are prefetched
// (so every closestOf hits the cache) — the cached-join render
// benchmark of BENCH_hotpath.json.
func BenchmarkRenderCachedJoins(b *testing.B) {
	doc := xmltree.MustParse(fig1a)
	plan, err := semantics.Compile(guard.MustParse("MORPH author [ name book [ title ] ]"), shape.FromDocument(doc))
	if err != nil {
		b.Fatal(err)
	}
	tgt := plan.ComposedTarget()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RenderParallel(doc, tgt, nil); err != nil {
			b.Fatal(err)
		}
	}
}
