package render

import (
	"bufio"
	"io"

	"xmorph/internal/closest"
	"xmorph/internal/obs"
	"xmorph/internal/semantics"
	"xmorph/internal/xmltree"
)

// Stream renders the transformation directly to w without materializing
// the output tree — Section VII's observation that "a transformation can
// immediately produce output, and stream the output node by node (in
// document order)". Closest joins still run over whole type sequences
// (sort-merge needs both sides), but output memory stays constant: nothing
// of the result is retained.
//
// The byte output equals Render(...).XML(false). Stream returns the number
// of elements and attributes written.
//
// When sp is non-nil it records join statistics, nodes emitted, and bytes
// written on sp. The span's lifetime belongs to the caller; a nil sp
// changes nothing.
func Stream(doc Source, tgt *semantics.Target, w io.Writer, sp *obs.Span) (int, error) {
	var (
		rec *closest.Recorder
		cw  *countingWriter
	)
	if sp != nil {
		rec = &closest.Recorder{}
		cw = &countingWriter{w: w}
		w = cw
	}
	bw := bufio.NewWriter(w)
	s := &streamer{
		renderer: renderer{doc: doc, joins: map[joinKey]*closest.Grouped{}, rec: rec},
		w:        bw,
	}
	for _, root := range tgt.Roots {
		if root.Source == "" {
			s.streamWrapperRoot(root)
			continue
		}
		for _, v := range doc.NodesOfType(root.Source) {
			if !s.satisfies(v, root.Require) {
				continue
			}
			s.sep()
			s.streamNode(root, v)
		}
	}
	if s.err != nil {
		return s.count, s.err
	}
	if err := bw.Flush(); err != nil {
		return s.count, err
	}
	if sp != nil {
		annotateJoins(sp, rec, s.count)
		sp.Set("bytes-out", cw.n)
	}
	return s.count, nil
}

// countingWriter counts bytes on their way to the sink (placed under the
// bufio layer, so it sees flushed output only).
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type streamer struct {
	renderer
	w     *bufio.Writer
	count int
	wrote bool // a root was already written (forest separator state)
	err   error
}

func (s *streamer) str(x string) {
	if s.err != nil {
		return
	}
	_, s.err = s.w.WriteString(x)
}

func (s *streamer) text(x string) {
	if s.err != nil {
		return
	}
	s.err = xmltree.EscapeText(s.w, x)
}

func (s *streamer) attrVal(x string) {
	if s.err != nil {
		return
	}
	s.err = xmltree.EscapeAttr(s.w, x)
}

// sep writes the forest separator between root trees (matching
// Document.XML(false)).
func (s *streamer) sep() {
	if s.wrote {
		s.str("\n")
	}
	s.wrote = true
}

// rendersAsAttr mirrors the tree renderer's criterion: an attribute-
// sourced leaf type inside an element stays an attribute.
func rendersAsAttr(tn *semantics.TNode, v *xmltree.Node) bool {
	return v.Attr && len(tn.Kids) == 0
}

// streamNode writes one element: open tag with attribute kids, own text,
// element kids, close tag.
func (s *streamer) streamNode(tn *semantics.TNode, v *xmltree.Node) {
	s.count++
	s.str("<")
	s.str(tn.Name)

	// Attribute kids go into the open tag, in kid order.
	type elemKid struct {
		kid      *semantics.TNode
		partners []*xmltree.Node
	}
	var elems []elemKid
	for _, kid := range tn.Kids {
		if kid.Source == "" {
			elems = append(elems, elemKid{kid: kid})
			continue
		}
		partners := s.closestOf(v, kid.Source)
		var kept []*xmltree.Node
		attrKid := false
		for _, wn := range partners {
			if !s.satisfies(wn, kid.Require) {
				continue
			}
			if rendersAsAttr(kid, wn) {
				attrKid = true
				s.count++
				s.str(" ")
				s.str(wn.LocalName())
				s.str(`="`)
				s.attrVal(wn.Value)
				s.str(`"`)
				continue
			}
			kept = append(kept, wn)
		}
		if len(kept) > 0 || !attrKid {
			elems = append(elems, elemKid{kid: kid, partners: kept})
		}
	}

	hasContent := v.Value != ""
	if !hasContent {
		for _, e := range elems {
			if e.kid.Source == "" || len(e.partners) > 0 {
				hasContent = true
				break
			}
		}
	}
	if !hasContent {
		s.str("/>")
		return
	}
	s.str(">")
	s.text(v.Value)
	for _, e := range elems {
		if e.kid.Source == "" {
			s.streamWrapper(e.kid, v)
			continue
		}
		for _, wn := range e.partners {
			s.streamNode(e.kid, wn)
		}
	}
	s.str("</")
	s.str(tn.Name)
	s.str(">")
}

// streamWrapper mirrors emitWrapper: one manufactured element per instance
// of the wrapper's first sourced child.
func (s *streamer) streamWrapper(tn *semantics.TNode, v *xmltree.Node) {
	first := firstSourced(tn)
	if first == nil {
		s.streamFill(tn)
		return
	}
	for _, wn := range s.closestOf(v, first.Source) {
		if !s.satisfies(wn, first.Require) {
			continue
		}
		s.count++
		s.str("<")
		s.str(tn.Name)
		s.str(">")
		s.streamNode(first, wn)
		s.streamSiblings(tn, first, wn)
		s.str("</")
		s.str(tn.Name)
		s.str(">")
	}
}

func (s *streamer) streamWrapperRoot(tn *semantics.TNode) {
	first := firstSourced(tn)
	if first == nil {
		s.sep()
		s.streamFill(tn)
		return
	}
	for _, wn := range s.doc.NodesOfType(first.Source) {
		if !s.satisfies(wn, first.Require) {
			continue
		}
		s.sep()
		s.count++
		s.str("<")
		s.str(tn.Name)
		s.str(">")
		s.streamNode(first, wn)
		s.streamSiblings(tn, first, wn)
		s.str("</")
		s.str(tn.Name)
		s.str(">")
	}
}

func (s *streamer) streamSiblings(wrapper, first *semantics.TNode, wn *xmltree.Node) {
	for _, kid := range wrapper.Kids {
		if kid == first {
			continue
		}
		if kid.Source == "" {
			s.streamWrapper(kid, wn)
			continue
		}
		for _, u := range s.closestOf(wn, kid.Source) {
			if !s.satisfies(u, kid.Require) {
				continue
			}
			s.streamNode(kid, u)
		}
	}
}

// streamFill writes a childless-sourced wrapper and its manufactured kids.
func (s *streamer) streamFill(tn *semantics.TNode) {
	s.count++
	var manufactured []*semantics.TNode
	for _, kid := range tn.Kids {
		if kid.Source == "" {
			manufactured = append(manufactured, kid)
		}
	}
	if len(manufactured) == 0 {
		s.str("<")
		s.str(tn.Name)
		s.str("/>")
		return
	}
	s.str("<")
	s.str(tn.Name)
	s.str(">")
	for _, kid := range manufactured {
		s.streamFill(kid)
	}
	s.str("</")
	s.str(tn.Name)
	s.str(">")
}
