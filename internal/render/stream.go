package render

import (
	"bufio"
	"io"

	"xmorph/internal/closest"
	"xmorph/internal/obs"
	"xmorph/internal/semantics"
	"xmorph/internal/xmltree"
)

// Stream renders the transformation directly to w without materializing
// the output tree — Section VII's observation that "a transformation can
// immediately produce output, and stream the output node by node (in
// document order)". Closest joins still run over whole type sequences
// (sort-merge needs both sides), but output memory stays constant: nothing
// of the result is retained. (internal/stream goes further for targets the
// planner marks streamable, dropping the joins too.)
//
// The byte output equals Render(...).XML(false). Stream returns the number
// of elements and attributes written. Write errors — including those the
// final buffered flush surfaces — are returned after the count of nodes
// written before the failure.
//
// When sp is non-nil it records join statistics, nodes emitted, and bytes
// written on sp. The span's lifetime belongs to the caller; a nil sp
// changes nothing.
func Stream(doc Source, tgt *semantics.Target, w io.Writer, sp *obs.Span) (int, error) {
	var (
		rec *closest.Recorder
		cw  *countingWriter
	)
	if sp != nil {
		rec = &closest.Recorder{}
		cw = &countingWriter{w: w}
		w = cw
	}
	bw := bufio.NewWriter(w)
	s := &streamer{
		renderer: renderer{doc: doc, joins: map[joinKey]*closest.Grouped{}, rec: rec},
		w:        bw,
	}
	for _, root := range tgt.Roots {
		if root.Source == "" {
			s.streamWrapperRoot(root)
			continue
		}
		for _, v := range doc.NodesOfType(root.Source) {
			if !s.satisfies(v, root.Require) {
				continue
			}
			s.sep()
			s.streamNode(root, v)
		}
	}
	// The final flush must run even after a write error (it is a no-op
	// then), and a flush failure must surface when the render itself
	// succeeded: the buffer tail only reaches the sink here.
	err := s.err
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if sp != nil {
		annotateJoins(sp, rec, s.count)
		sp.Set("bytes-out", cw.n)
	}
	return s.count, err
}

// countingWriter counts bytes on their way to the sink (placed under the
// bufio layer, so it sees flushed output only).
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type streamer struct {
	renderer
	w     *bufio.Writer
	count int
	wrote bool // a root was already written (forest separator state)
	err   error
}

func (s *streamer) str(x string) {
	if s.err != nil {
		return
	}
	_, s.err = s.w.WriteString(x)
}

func (s *streamer) text(x string) {
	if s.err != nil {
		return
	}
	s.err = xmltree.EscapeText(s.w, x)
}

func (s *streamer) attrVal(x string) {
	if s.err != nil {
		return
	}
	s.err = xmltree.EscapeAttr(s.w, x)
}

// sep writes the forest separator between root trees (matching
// Document.XML(false)).
func (s *streamer) sep() {
	if s.wrote {
		s.str("\n")
	}
	s.wrote = true
}

// openTag closes the pending open tag with ">" exactly once; an element
// whose flag stays false self-closes — matching the serializer, which
// self-closes exactly when an element has no text and no element children.
func (s *streamer) openTag(closed *bool) {
	if !*closed {
		s.str(">")
		*closed = true
	}
}

// rendersAsAttr mirrors the tree renderer's criterion: an attribute-
// sourced leaf type inside an element stays an attribute.
func rendersAsAttr(tn *semantics.TNode, v *xmltree.Node) bool {
	return v.Attr && len(tn.Kids) == 0
}

func (s *streamer) writeAttr(name, val string) {
	s.count++
	s.str(" ")
	s.str(name)
	s.str(`="`)
	s.attrVal(val)
	s.str(`"`)
}

// streamNode writes one element: open tag with attribute kids, own text,
// element kids, close tag — self-closing when nothing followed the tag.
func (s *streamer) streamNode(tn *semantics.TNode, v *xmltree.Node) {
	s.count++
	s.str("<")
	s.str(tn.Name)

	// Attribute kids go into the open tag, in kid order; the element
	// partners are kept for the second pass.
	type elemKid struct {
		kid      *semantics.TNode
		partners []*xmltree.Node
	}
	var elems []elemKid
	for _, kid := range tn.Kids {
		if kid.Source == "" {
			elems = append(elems, elemKid{kid: kid})
			continue
		}
		var kept []*xmltree.Node
		for _, wn := range s.closestOf(v, kid.Source) {
			if !s.satisfies(wn, kid.Require) {
				continue
			}
			if rendersAsAttr(kid, wn) {
				// The attribute carries the target name, as the tree
				// renderer's Builder.Attr does (visible under TRANSLATE).
				s.writeAttr(kid.Name, wn.Value)
				continue
			}
			kept = append(kept, wn)
		}
		if len(kept) > 0 {
			elems = append(elems, elemKid{kid: kid, partners: kept})
		}
	}

	closed := false
	if v.Value != "" {
		s.openTag(&closed)
		s.text(v.Value)
	}
	for _, e := range elems {
		if e.kid.Source == "" {
			s.streamWrapper(e.kid, v, &closed)
			continue
		}
		for _, wn := range e.partners {
			s.openTag(&closed)
			s.streamNode(e.kid, wn)
		}
	}
	if !closed {
		s.str("/>")
		return
	}
	s.str("</")
	s.str(tn.Name)
	s.str(">")
}

// streamWrapper mirrors emitWrapper: one manufactured element per instance
// of the wrapper's first sourced child. The parent's tag stays open until
// the wrapper actually emits something, so childless parents still
// self-close.
func (s *streamer) streamWrapper(tn *semantics.TNode, v *xmltree.Node, closed *bool) {
	first := firstSourced(tn)
	if first == nil {
		s.openTag(closed)
		s.streamFill(tn)
		return
	}
	for _, wn := range s.closestOf(v, first.Source) {
		if !s.satisfies(wn, first.Require) {
			continue
		}
		s.openTag(closed)
		s.streamInstance(tn, first, wn)
	}
}

func (s *streamer) streamWrapperRoot(tn *semantics.TNode) {
	first := firstSourced(tn)
	if first == nil {
		s.sep()
		s.streamFill(tn)
		return
	}
	for _, wn := range s.doc.NodesOfType(first.Source) {
		if !s.satisfies(wn, first.Require) {
			continue
		}
		s.sep()
		s.streamInstance(tn, first, wn)
	}
}

// streamInstance writes one wrapper element around anchor instance wn:
// attribute-rendering kids land in the wrapper's tag (as the Builder puts
// them), and an instance with only attributes self-closes.
func (s *streamer) streamInstance(tn, first *semantics.TNode, wn *xmltree.Node) {
	s.count++
	s.str("<")
	s.str(tn.Name)
	firstAttr := rendersAsAttr(first, wn)
	if firstAttr {
		s.writeAttr(first.Name, wn.Value)
	}
	type elemKid struct {
		kid      *semantics.TNode
		partners []*xmltree.Node
	}
	var elems []elemKid
	for _, kid := range tn.Kids {
		if kid == first {
			continue
		}
		if kid.Source == "" {
			elems = append(elems, elemKid{kid: kid})
			continue
		}
		var kept []*xmltree.Node
		for _, u := range s.closestOf(wn, kid.Source) {
			if !s.satisfies(u, kid.Require) {
				continue
			}
			if rendersAsAttr(kid, u) {
				s.writeAttr(kid.Name, u.Value)
				continue
			}
			kept = append(kept, u)
		}
		if len(kept) > 0 {
			elems = append(elems, elemKid{kid: kid, partners: kept})
		}
	}
	closed := false
	if !firstAttr {
		s.openTag(&closed)
		s.streamNode(first, wn)
	}
	for _, e := range elems {
		if e.kid.Source == "" {
			s.streamWrapper(e.kid, wn, &closed)
			continue
		}
		for _, u := range e.partners {
			s.openTag(&closed)
			s.streamNode(e.kid, u)
		}
	}
	if !closed {
		s.str("/>")
		return
	}
	s.str("</")
	s.str(tn.Name)
	s.str(">")
}

// streamFill writes a childless-sourced wrapper and its manufactured kids.
func (s *streamer) streamFill(tn *semantics.TNode) {
	s.count++
	var manufactured []*semantics.TNode
	for _, kid := range tn.Kids {
		if kid.Source == "" {
			manufactured = append(manufactured, kid)
		}
	}
	if len(manufactured) == 0 {
		s.str("<")
		s.str(tn.Name)
		s.str("/>")
		return
	}
	s.str("<")
	s.str(tn.Name)
	s.str(">")
	for _, kid := range manufactured {
		s.streamFill(kid)
	}
	s.str("</")
	s.str(tn.Name)
	s.str(">")
}
