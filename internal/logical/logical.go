// Package logical evaluates an XQuery query against a guard's output
// without rendering the whole transformation — a step toward the paper's
// architecture #3 ("logically transform the data in situ", Section VIII's
// near-term future work).
//
// The full re-engineering of a query engine is out of scope there and
// here; what this package implements is the load-bearing part: the query's
// label paths (via xq.ExtractPaths) prune the composed target shape to the
// types the query can possibly touch, only that projection is rendered,
// and the query runs over the small result. Answers equal running the
// query over the full transformation, because XQuery path semantics never
// look at elements whose labels the query does not traverse (wildcard and
// text() steps disable pruning below their chain, conservatively keeping
// whole subtrees).
package logical

import (
	"fmt"
	"strings"

	"xmorph/internal/core"
	"xmorph/internal/obs"
	"xmorph/internal/plan"
	"xmorph/internal/render"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
	"xmorph/internal/xq"
)

// Result carries the answer plus the projection statistics.
type Result struct {
	// Answer is the serialized query result.
	Answer string
	// RenderedNodes counts the nodes of the pruned rendering.
	RenderedNodes int
	// KeptTypes / TotalTypes count target types before and after pruning.
	KeptTypes  int
	TotalTypes int
	// Streamable reports the planner's verdict on the guard's full
	// (unpruned) target; PlanReason carries the blocking join when not.
	Streamable bool
	PlanReason string
}

// Evaluate type-checks the guard, prunes its target to the query's paths,
// renders the projection, and runs the query over it bound as docName.
func Evaluate(query, guardSrc, docName string, doc *xmltree.Document) (*Result, error) {
	return EvaluateSource(query, guardSrc, docName, shape.FromDocument(doc), doc, nil)
}

// EvaluateSource is Evaluate over any render source (e.g. a shredded
// store's lazy type sequences) with its adorned shape supplied separately.
// Only the type sequences the pruned projection mentions are read.
//
// Under a non-nil parent span the guard compile, the path-driven pruning
// (annotated with kept/total types), the projected render, and the query
// evaluation each get a child span.
func EvaluateSource(query, guardSrc, docName string, sh *shape.Shape, doc render.Source, parent *obs.Span) (*Result, error) {
	checked, err := core.Check(guardSrc, sh, parent)
	if err != nil {
		return nil, err
	}
	return EvaluateChecked(query, checked, docName, doc, parent)
}

// EvaluateChecked is EvaluateSource with the guard already compiled —
// the seam that lets the engine facade serve the compile phase from its
// shape-aware guard cache and still run the pruned-projection pipeline.
func EvaluateChecked(query string, checked *core.Checked, docName string, doc render.Source, parent *obs.Span) (*Result, error) {
	tgt := checked.Plan.ComposedTarget()
	total := countTypes(tgt)
	verdict := plan.Classify(tgt)

	psp := parent.Child("prune")
	chains, err := xq.ExtractPaths(query)
	if err != nil {
		psp.End()
		return nil, err
	}
	pruned := Prune(tgt, chains)
	kept := countTypes(pruned)
	psp.Set("kept-types", int64(kept))
	psp.Set("total-types", int64(total))
	psp.End()

	rsp := parent.Child("render")
	out, err := render.Render(doc, pruned, rsp)
	rsp.End()
	if err != nil {
		return nil, err
	}

	qsp := parent.Child("query")
	defer qsp.End()
	// The query addresses doc(docName); results are forests, so wrap.
	wrapped, err := xmltree.ParseString("<xmorph-result>" + out.XML(false) + "</xmorph-result>")
	if err != nil {
		// An empty projection still answers the query (over nothing).
		wrapped = &xmltree.Document{}
	}
	eng := xq.New()
	eng.Bind(docName, wrapped)
	answer, err := eng.QueryXML(rebase(query, docName))
	if err != nil {
		return nil, err
	}
	qsp.Set("answer-bytes", int64(len(answer)))
	return &Result{
		Answer:        answer,
		RenderedNodes: out.Size(),
		KeptTypes:     kept,
		TotalTypes:    total,
		Streamable:    verdict.Streamable,
		PlanReason:    verdict.Reason,
	}, nil
}

// rebase rewrites doc("name")/step to doc("name")//step so queries written
// against the guard's root types keep working under the wrapper element.
func rebase(query, docName string) string {
	needle := fmt.Sprintf(`doc("%s")/`, docName)
	if strings.Contains(query, needle) && !strings.Contains(query, needle+"/") {
		return strings.ReplaceAll(query, needle, fmt.Sprintf(`doc("%s")//`, docName))
	}
	return query
}

func countTypes(t *semantics.Target) int {
	n := 0
	t.Walk(func(*semantics.TNode) { n++ })
	return n
}

// Prune keeps only the target types the query's label chains can reach:
// a node survives when it completes a chain (the query selects it — its
// whole subtree stays, atomization reads descendants), or when some
// descendant survives (ancestors stay on the path to selected nodes).
// Because ExtractPaths does not distinguish child from descendant steps,
// every step is treated as a descendant step — strictly conservative.
// A nil/empty chain set keeps everything (nothing to prune with).
func Prune(t *semantics.Target, chains [][]string) *semantics.Target {
	if len(chains) == 0 {
		return t
	}
	out := &semantics.Target{}
	for _, r := range t.Roots {
		if kept := pruneNode(r, chains); kept != nil {
			out.Roots = append(out.Roots, kept)
		}
	}
	if len(out.Roots) == 0 {
		// The query's paths touch nothing in the target: keep the full
		// target so the query returns its honest empty answer over the
		// real shape.
		return t
	}
	return out
}

// pruneNode prunes the subtree at n under the set of active chain
// suffixes. Chains remain active at every depth (descendant semantics);
// consuming a step narrows a copy of the chain for the nodes below.
func pruneNode(n *semantics.TNode, active [][]string) *semantics.TNode {
	label := nodeLabel(n)
	var consumed [][]string
	for _, ch := range active {
		if len(ch) > 0 && stepLabel(ch[0]) == label {
			if len(ch) == 1 {
				// The query selects this node: keep its whole subtree.
				return n.Copy()
			}
			consumed = append(consumed, ch[1:])
		}
	}
	next := active
	if len(consumed) > 0 {
		// Fresh slice: appending to the caller's backing array would leak
		// suffixes across sibling subtrees.
		next = append(append([][]string(nil), active...), consumed...)
	}
	cp := n.Copy()
	cp.Kids = nil
	survived := false
	for _, k := range n.Kids {
		if kc := pruneNode(k, next); kc != nil {
			cp.Attach(kc)
			survived = true
		}
	}
	if !survived {
		return nil
	}
	return cp
}

func nodeLabel(n *semantics.TNode) string {
	return strings.ToLower(strings.TrimPrefix(n.Name, "@"))
}

func stepLabel(s string) string {
	return strings.ToLower(strings.TrimPrefix(s, "@"))
}
