package logical

import (
	"strings"
	"testing"

	"xmorph/internal/core"
	"xmorph/internal/gen/xmark"
	"xmorph/internal/xmltree"
	"xmorph/internal/xq"
)

const fig1b = `<data>
  <publisher><name>W</name>
    <book><title>X</title><author><name>V</name></author></book>
    <book><title>Y</title><author><name>U</name></author></book>
  </publisher>
</data>`

func TestEvaluateAnswersMatchFullRender(t *testing.T) {
	const guardSrc = "MORPH author [ name book [ title ] ]"
	const query = `for $a in doc("d.xml")//author where $a/book/title = "X" return string($a/name)`

	res, err := Evaluate(query, guardSrc, "d.xml", xmltree.MustParse(fig1b))
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer != "V" {
		t.Errorf("answer = %q, want V", res.Answer)
	}

	// Reference: full render, then query.
	full, err := core.TransformString(guardSrc, fig1b)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := xmltree.MustParse("<w>" + full.Output.XML(false) + "</w>")
	eng := xq.New()
	eng.Bind("d.xml", wrapped)
	want, err := eng.QueryXML(query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer != want {
		t.Errorf("logical answer %q != full-render answer %q", res.Answer, want)
	}
}

// TestEvaluatePrunesUntouchedTypes: on XMark with a MUTATE site guard (all
// ~200 types), a query touching three types must render a small fraction
// of the document.
func TestEvaluatePrunesUntouchedTypes(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Factor: 0.004, Seed: 2})
	const guardSrc = "CAST MUTATE site"
	const query = `for $p in doc("x")//person return string($p/name)`

	res, err := Evaluate(query, guardSrc, "x", doc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer == "" {
		t.Fatal("no answer")
	}
	if res.KeptTypes >= res.TotalTypes/4 {
		t.Errorf("pruning kept %d of %d types; expected a small projection", res.KeptTypes, res.TotalTypes)
	}
	if res.RenderedNodes >= doc.Size()/2 {
		t.Errorf("projection rendered %d of %d nodes; expected far fewer", res.RenderedNodes, doc.Size())
	}

	// Same answer as the full pipeline.
	full, err := core.Transform(guardSrc, doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := xq.New()
	eng.Bind("x", full.Output)
	want, err := eng.QueryXML(query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer != want {
		t.Errorf("pruned answer diverges:\npruned: %.120s\nfull:   %.120s", res.Answer, want)
	}
}

func TestEvaluateAggregates(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Factor: 0.003, Seed: 6})
	res, err := Evaluate(`count(doc("x")//open_auction/bidder)`, "CAST MUTATE site", "x", doc)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Transform("CAST MUTATE site", doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := xq.New()
	eng.Bind("x", full.Output)
	want, _ := eng.QueryXML(`count(doc("x")//open_auction/bidder)`)
	if res.Answer != want {
		t.Errorf("count over projection = %s, full = %s", res.Answer, want)
	}
}

func TestEvaluateQueryTouchingNothing(t *testing.T) {
	res, err := Evaluate(`count(doc("d")//zeppelin)`, "MORPH author [ name ]", "d", xmltree.MustParse(fig1b))
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer != "0" {
		t.Errorf("absent label count = %q, want 0", res.Answer)
	}
}

func TestEvaluateErrors(t *testing.T) {
	doc := xmltree.MustParse(fig1b)
	if _, err := Evaluate(`%%%`, "MORPH author", "d", doc); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := Evaluate(`doc("d")//a`, "MORPH [", "d", doc); err == nil {
		t.Error("bad guard accepted")
	}
	// A guard that is actually lossy on its data (optional name) must
	// still be rejected by the type check before any evaluation.
	optional := xmltree.MustParse(`<data><book><author/></book><book><author><name>V</name></author></book></data>`)
	if _, err := Evaluate(`doc("d")//name`, "MUTATE name [ author ]", "d", optional); err == nil {
		t.Error("lossy guard must still be rejected by the type check")
	}
}

func TestPruneKeepsWildcardSubtrees(t *testing.T) {
	const guardSrc = "MORPH author [ name book [ title ] ]"
	const query = `for $a in doc("d")//author return <x>{$a/*}</x>`
	res, err := Evaluate(query, guardSrc, "d", xmltree.MustParse(fig1b))
	if err != nil {
		t.Fatal(err)
	}
	// The wildcard ends the chain at author: its whole subtree must stay.
	if !strings.Contains(res.Answer, "<name>") || !strings.Contains(res.Answer, "<book>") {
		t.Errorf("wildcard pruning dropped needed children: %s", res.Answer)
	}
}
