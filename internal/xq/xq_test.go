package xq

import (
	"strings"
	"testing"

	"xmorph/internal/xmltree"
)

const library = `<lib>
  <book year="2001"><title>Alpha</title><author>Ann</author><price>30</price></book>
  <book year="1999"><title>Beta</title><author>Bob</author><price>10</price></book>
  <book year="2005"><title>Gamma</title><author>Ann</author><price>20</price></book>
</lib>`

func engine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	e.Bind("lib.xml", xmltree.MustParse(library))
	return e
}

func q(t *testing.T, query string) string {
	t.Helper()
	out, err := engine(t).QueryXML(query)
	if err != nil {
		t.Fatalf("query %q: %v", query, err)
	}
	return out
}

func TestPathExpression(t *testing.T) {
	got := q(t, `doc("lib.xml")/book/title`)
	want := "<title>Alpha</title><title>Beta</title><title>Gamma</title>"
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestDescendantAxis(t *testing.T) {
	got := q(t, `doc("lib.xml")//author`)
	if strings.Count(got, "<author>") != 3 {
		t.Errorf("descendant axis: %s", got)
	}
}

func TestAttributeStep(t *testing.T) {
	got := q(t, `doc("lib.xml")/book/@year`)
	if got != `year="2001"year="1999"year="2005"` {
		t.Errorf("attributes: %s", got)
	}
}

func TestWildcardStep(t *testing.T) {
	got := q(t, `doc("lib.xml")/book[1]/*`)
	if !strings.Contains(got, "<title>Alpha</title>") || !strings.Contains(got, "<price>30</price>") {
		t.Errorf("wildcard: %s", got)
	}
}

func TestPositionalPredicate(t *testing.T) {
	got := q(t, `doc("lib.xml")/book[2]/title`)
	if got != "<title>Beta</title>" {
		t.Errorf("positional: %s", got)
	}
}

func TestValuePredicate(t *testing.T) {
	got := q(t, `doc("lib.xml")/book[author = "Ann"]/title`)
	if got != "<title>Alpha</title><title>Gamma</title>" {
		t.Errorf("value predicate: %s", got)
	}
}

func TestNumericComparisonPredicate(t *testing.T) {
	got := q(t, `doc("lib.xml")/book[price < 25]/title`)
	if got != "<title>Beta</title><title>Gamma</title>" {
		t.Errorf("numeric predicate: %s", got)
	}
}

// TestPaperDumpQuery is the exact query shape the paper runs against eXist
// for Figure 10.
func TestPaperDumpQuery(t *testing.T) {
	got := q(t, `for $b in doc("lib.xml")/book return <data>{$b}</data>`)
	if strings.Count(got, "<data><book") != 3 {
		t.Errorf("dump query: %s", got)
	}
	if !strings.Contains(got, "<data><book year=\"2001\"><title>Alpha</title>") {
		t.Errorf("subtree not copied: %s", got)
	}
}

func TestFLWORWhereOrder(t *testing.T) {
	got := q(t, `for $b in doc("lib.xml")/book
	  where $b/price > 15
	  order by $b/title descending
	  return $b/title`)
	if got != "<title>Gamma</title><title>Alpha</title>" {
		t.Errorf("flwor: %s", got)
	}
}

func TestOrderByNumeric(t *testing.T) {
	got := q(t, `for $b in doc("lib.xml")/book order by number($b/price) return $b/price`)
	if got != "<price>10</price><price>20</price><price>30</price>" {
		t.Errorf("numeric order: %s", got)
	}
}

func TestLetClause(t *testing.T) {
	got := q(t, `let $books := doc("lib.xml")/book return count($books)`)
	if got != "3" {
		t.Errorf("let/count: %s", got)
	}
}

func TestNestedFor(t *testing.T) {
	got := q(t, `for $b in doc("lib.xml")/book, $t in $b/title return string($t)`)
	if got != "Alpha Beta Gamma" {
		t.Errorf("nested for: %s", got)
	}
}

func TestDistinctValues(t *testing.T) {
	got := q(t, `distinct-values(doc("lib.xml")//author)`)
	if got != "Ann Bob" {
		t.Errorf("distinct-values: %s", got)
	}
}

func TestConstructorWithAttributesAndText(t *testing.T) {
	got := q(t, `for $b in doc("lib.xml")/book[1] return <entry kind="book">title: {$b/title/text()}</entry>`)
	if got != `<entry kind="book">title: Alpha</entry>` {
		t.Errorf("constructor: %s", got)
	}
}

func TestNestedConstructors(t *testing.T) {
	got := q(t, `<out><n>{count(doc("lib.xml")/book)}</n></out>`)
	if got != "<out><n>3</n></out>" {
		t.Errorf("nested constructors: %s", got)
	}
}

func TestArithmeticAndFunctions(t *testing.T) {
	tests := []struct{ q, want string }{
		{`1 + 2 * 3`, "7"},
		{`(1 + 2) * 3`, "9"},
		{`10 div 4`, "2.5"},
		{`7 mod 3`, "1"},
		{`-5 + 2`, "-3"},
		{`concat("a", "b", "c")`, "abc"},
		{`not(exists(doc("lib.xml")/nothing))`, "true"},
		{`string(doc("lib.xml")/book[1]/price)`, "30"},
		{`count(doc("lib.xml")//title)`, "3"},
		{`1 = 1 and 2 = 3`, "false"},
		{`1 = 1 or 2 = 3`, "true"},
	}
	for _, tt := range tests {
		if got := q(t, tt.q); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.q, got, tt.want)
		}
	}
}

func TestCommaSequences(t *testing.T) {
	got := q(t, `1, "two", 3`)
	if got != "1 two 3" {
		t.Errorf("sequence: %s", got)
	}
	if got := q(t, `()`); got != "" {
		t.Errorf("empty sequence: %q", got)
	}
}

func TestComments(t *testing.T) {
	got := q(t, `(: pick titles :) doc("lib.xml")/book[1]/title`)
	if got != "<title>Alpha</title>" {
		t.Errorf("comments: %s", got)
	}
}

func TestErrors(t *testing.T) {
	e := engine(t)
	bad := []string{
		``,
		`for $x return 1`,
		`doc("missing.xml")/a`,
		`$undefined`,
		`unknownfn(1)`,
		`<a>{1}</b>`,
		`"unterminated`,
		`for $b in doc("lib.xml")/book`,
		`1 +`,
	}
	for _, src := range bad {
		if _, err := e.Query(src); err == nil {
			t.Errorf("query %q succeeded, want error", src)
		}
	}
}

func TestDumpMatchesSerialization(t *testing.T) {
	d := xmltree.MustParse(library)
	if Dump(d) != d.XML(false) {
		t.Error("Dump should be the document-order serialization")
	}
}

func TestWhereOnAttributes(t *testing.T) {
	got := q(t, `for $b in doc("lib.xml")/book where $b/@year >= 2001 return string($b/title)`)
	if got != "Alpha Gamma" {
		t.Errorf("attr where: %s", got)
	}
}

func TestIfThenElse(t *testing.T) {
	tests := []struct{ q, want string }{
		{`if (1 = 1) then "yes" else "no"`, "yes"},
		{`if (1 = 2) then "yes" else "no"`, "no"},
		{`for $b in doc("lib.xml")/book return if ($b/price > 15) then "pricey" else "cheap"`, "pricey cheap pricey"},
	}
	for _, tt := range tests {
		if got := q(t, tt.q); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.q, got, tt.want)
		}
	}
}

func TestQuantified(t *testing.T) {
	tests := []struct{ q, want string }{
		{`some $b in doc("lib.xml")/book satisfies $b/price > 25`, "true"},
		{`some $b in doc("lib.xml")/book satisfies $b/price > 100`, "false"},
		{`every $b in doc("lib.xml")/book satisfies $b/price > 5`, "true"},
		{`every $b in doc("lib.xml")/book satisfies $b/price > 15`, "false"},
	}
	for _, tt := range tests {
		if got := q(t, tt.q); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.q, got, tt.want)
		}
	}
}

func TestUnionOperator(t *testing.T) {
	got := q(t, `doc("lib.xml")/book[1]/title | doc("lib.xml")/book[1]/author`)
	if got != "<title>Alpha</title><author>Ann</author>" {
		t.Errorf("union: %s", got)
	}
	// Duplicates collapse.
	got = q(t, `count(doc("lib.xml")/book | doc("lib.xml")/book)`)
	if got != "3" {
		t.Errorf("union dedupe: %s", got)
	}
}

func TestParentAxis(t *testing.T) {
	got := q(t, `count(doc("lib.xml")//author/../title)`)
	if got != "3" {
		t.Errorf("parent axis: %s", got)
	}
	got = q(t, `name(doc("lib.xml")/book[1]/title/..)`)
	if got != "book" {
		t.Errorf("parent name: %s", got)
	}
}

func TestAggregates(t *testing.T) {
	tests := []struct{ q, want string }{
		{`sum(doc("lib.xml")/book/price)`, "60"},
		{`avg(doc("lib.xml")/book/price)`, "20"},
		{`min(doc("lib.xml")/book/price)`, "10"},
		{`max(doc("lib.xml")/book/price)`, "30"},
		{`floor(2.7)`, "2"},
		{`ceiling(2.2)`, "3"},
		{`round(2.5)`, "3"},
		{`abs(-4)`, "4"},
	}
	for _, tt := range tests {
		if got := q(t, tt.q); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.q, got, tt.want)
		}
	}
}

func TestStringFunctions(t *testing.T) {
	tests := []struct{ q, want string }{
		{`contains("abcdef", "cde")`, "true"},
		{`starts-with("abcdef", "abc")`, "true"},
		{`ends-with("abcdef", "def")`, "true"},
		{`string-length("hello")`, "5"},
		{`normalize-space("  a   b  ")`, "a b"},
		{`upper-case("abc")`, "ABC"},
		{`lower-case("ABC")`, "abc"},
		{`substring("hello world", 7)`, "world"},
		{`substring("hello world", 1, 5)`, "hello"},
		{`empty(())`, "true"},
		{`empty((1))`, "false"},
		{`true()`, "true"},
		{`false()`, "false"},
	}
	for _, tt := range tests {
		if got := q(t, tt.q); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.q, got, tt.want)
		}
	}
}

func TestExtendedErrors(t *testing.T) {
	e := engine(t)
	for _, src := range []string{
		`contains("a")`,
		`sum(doc("lib.xml")/book/title)`,
		`if (1=1) then 2`,
		`some $x in (1,2) satisfie 1`,
		`last()`,
	} {
		if _, err := e.Query(src); err == nil {
			t.Errorf("query %q succeeded, want error", src)
		}
	}
}

func TestQueryWithConditionalAggregation(t *testing.T) {
	got := q(t, `for $b in doc("lib.xml")/book
	  where some $a in $b/author satisfies contains($a, "Ann")
	  return string($b/title)`)
	if got != "Alpha Gamma" {
		t.Errorf("combined query: %s", got)
	}
}

func TestComparisonOperators(t *testing.T) {
	tests := []struct{ q, want string }{
		{`1 < 2`, "true"},
		{`2 <= 2`, "true"},
		{`3 > 4`, "false"},
		{`4 >= 4`, "true"},
		{`"a" != "b"`, "true"},
		{`"a" = "a"`, "true"},
		{`"2" = 2`, "true"},   // numeric comparison when both parse
		{`"x" < "y"`, "true"}, // string comparison otherwise
	}
	for _, tt := range tests {
		if got := q(t, tt.q); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.q, got, tt.want)
		}
	}
}

func TestEffectiveBooleanValues(t *testing.T) {
	tests := []struct{ q, want string }{
		{`not(())`, "true"},
		{`not(0)`, "true"},
		{`not("")`, "true"},
		{`not("x")`, "false"},
		{`not(doc("lib.xml")/book)`, "false"}, // node sequence is true
	}
	for _, tt := range tests {
		if got := q(t, tt.q); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.q, got, tt.want)
		}
	}
	// Multi-item atomic sequence has no effective boolean value.
	if _, err := engine(t).Query(`not((1, 2))`); err == nil {
		t.Error("EBV of multi-item atomics should error")
	}
}

func TestNumberCoercions(t *testing.T) {
	tests := []struct{ q, want string }{
		{`number(" 42 ")`, "42"},
		{`number(doc("lib.xml")/book[1]/price) + 1`, "31"},
		{`1 + number("2.5")`, "3.5"},
	}
	for _, tt := range tests {
		if got := q(t, tt.q); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.q, got, tt.want)
		}
	}
	if _, err := engine(t).Query(`number("abc") + 1`); err == nil {
		t.Error("non-numeric coercion should error")
	}
}

func TestSerializeMixedSequence(t *testing.T) {
	got := q(t, `doc("lib.xml")/book[1]/title, "and", 42`)
	if got != "<title>Alpha</title> and 42" {
		t.Errorf("mixed serialization: %q", got)
	}
}
