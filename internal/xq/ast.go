// Package xq is a small XQuery evaluator covering the FLWOR core the paper
// uses for its baseline measurements (Section IX runs eXist queries such as
//
//	for $b in doc("xmark.xml")/site return <data>{$b}</data>
//
// ): path expressions with child/descendant axes and predicates, for/let/
// where/order by/return, element constructors, and a small function
// library (doc, count, distinct-values, string, name, not, exists, concat,
// number). It plays the role of the native XML DBMS baseline; the paper's
// own system never needs it.
package xq

import (
	"fmt"

	"xmorph/internal/xmltree"
)

// Item is one value: *xmltree.Node, string, float64, or bool.
type Item interface{}

// Sequence is the XQuery value: an ordered sequence of items.
type Sequence []Item

// expr is an AST node.
type expr interface {
	eval(ctx *context) (Sequence, error)
}

// flworExpr is a for/let/where/order/return pipeline.
type flworExpr struct {
	clauses []clause
	where   expr
	orderBy []orderSpec
	ret     expr
}

type clause struct {
	isLet bool
	name  string
	in    expr
}

type orderSpec struct {
	key        expr
	descending bool
}

// pathExpr applies steps to a base expression.
type pathExpr struct {
	base  expr
	steps []step
}

type step struct {
	descendant bool // came after //
	attr       bool
	name       string // "*" is a wildcard
	preds      []expr
}

// varRef reads a bound variable.
type varRef struct{ name string }

// literal is a string or numeric constant.
type literal struct{ val Item }

// binaryExpr covers comparison, boolean, and arithmetic operators.
type binaryExpr struct {
	op    string
	left  expr
	right expr
}

// negExpr is unary minus.
type negExpr struct{ operand expr }

// funcCall invokes a built-in function.
type funcCall struct {
	name string
	args []expr
}

// elemConstructor builds a new element.
type elemConstructor struct {
	name    string
	attrs   []attrTemplate
	content []contentPart
}

type attrTemplate struct {
	name  string
	value string
}

// contentPart is literal text or an enclosed expression.
type contentPart struct {
	text string
	expr expr // non-nil for {expr}
}

// seqExpr is the comma operator.
type seqExpr struct{ parts []expr }

// context carries variable bindings and the document resolver.
type context struct {
	vars map[string]Sequence
	docs func(name string) (*xmltree.Document, error)
}

func (c *context) child() *context {
	vars := make(map[string]Sequence, len(c.vars)+1)
	for k, v := range c.vars {
		vars[k] = v
	}
	return &context{vars: vars, docs: c.docs}
}

// Error is an evaluation or parse error.
type Error struct {
	Pos     int
	Message string
}

func (e *Error) Error() string {
	return fmt.Sprintf("xq: %s (offset %d)", e.Message, e.Pos)
}
