package xq

import (
	"fmt"
	"strings"

	"xmorph/internal/xmltree"
)

// Engine evaluates queries against a registry of bound documents — the
// role eXist's local xmldb API plays in the paper's experiments.
type Engine struct {
	docs map[string]*xmltree.Document
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{docs: map[string]*xmltree.Document{}}
}

// Bind registers a document under the name doc() resolves.
func (e *Engine) Bind(name string, d *xmltree.Document) {
	e.docs[name] = d
}

// Query parses and evaluates a query, returning the result sequence.
func (e *Engine) Query(q string) (Sequence, error) {
	ast, err := parse(q)
	if err != nil {
		return nil, err
	}
	ctx := &context{
		vars: map[string]Sequence{},
		docs: func(name string) (*xmltree.Document, error) {
			d, ok := e.docs[name]
			if !ok {
				return nil, &Error{Message: fmt.Sprintf("doc(%q): no such document", name)}
			}
			return d, nil
		},
	}
	return ast.eval(ctx)
}

// QueryXML evaluates a query and serializes the result sequence: nodes as
// XML, atomics as text, space-separated.
func (e *Engine) QueryXML(q string) (string, error) {
	seq, err := e.Query(q)
	if err != nil {
		return "", err
	}
	return Serialize(seq), nil
}

// Serialize renders a result sequence.
func Serialize(seq Sequence) string {
	var b strings.Builder
	for i, item := range seq {
		switch x := item.(type) {
		case *xmltree.Node:
			writeNodeXML(&b, x)
		default:
			if i > 0 {
				b.WriteString(" ")
			}
			b.WriteString(stringValue(item))
		}
	}
	return b.String()
}

// Dump serializes a whole document in document order — the baseline
// operation the paper measures against eXist ("essentially that of reading
// the document from disk to a String object").
func Dump(d *xmltree.Document) string {
	return d.XML(false)
}

func writeNodeXML(b *strings.Builder, n *xmltree.Node) {
	// Serialize the subtree via a single-node document wrapper.
	if n.Attr {
		b.WriteString(n.LocalName())
		b.WriteString(`="`)
		b.WriteString(n.Value)
		b.WriteString(`"`)
		return
	}
	d := &xmltree.Document{Roots: []*xmltree.Node{n}}
	b.WriteString(d.XML(false))
}
