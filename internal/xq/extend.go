package xq

import (
	"fmt"
	"math"
	"strings"

	"xmorph/internal/xmltree"
)

// ifExpr is if (cond) then a else b.
type ifExpr struct {
	cond expr
	then expr
	els  expr
}

func (e *ifExpr) eval(ctx *context) (Sequence, error) {
	c, err := e.cond.eval(ctx)
	if err != nil {
		return nil, err
	}
	b, err := booleanValue(c)
	if err != nil {
		return nil, err
	}
	if b {
		return e.then.eval(ctx)
	}
	return e.els.eval(ctx)
}

// quantExpr is "some $v in e satisfies p" / "every $v in e satisfies p".
type quantExpr struct {
	every bool
	name  string
	in    expr
	sat   expr
}

func (e *quantExpr) eval(ctx *context) (Sequence, error) {
	seq, err := e.in.eval(ctx)
	if err != nil {
		return nil, err
	}
	for _, item := range seq {
		c := ctx.child()
		c.vars[e.name] = Sequence{item}
		c.vars["."] = Sequence{item}
		v, err := e.sat.eval(c)
		if err != nil {
			return nil, err
		}
		b, err := booleanValue(v)
		if err != nil {
			return nil, err
		}
		if e.every && !b {
			return Sequence{false}, nil
		}
		if !e.every && b {
			return Sequence{true}, nil
		}
	}
	return Sequence{e.every}, nil
}

// unionExpr is the "|" node-set union, in document order with duplicates
// removed.
type unionExpr struct {
	left  expr
	right expr
}

func (e *unionExpr) eval(ctx *context) (Sequence, error) {
	lv, err := e.left.eval(ctx)
	if err != nil {
		return nil, err
	}
	rv, err := e.right.eval(ctx)
	if err != nil {
		return nil, err
	}
	seen := map[*xmltree.Node]bool{}
	var nodes []*xmltree.Node
	for _, item := range append(append(Sequence{}, lv...), rv...) {
		n, ok := item.(*xmltree.Node)
		if !ok {
			return nil, &Error{Message: "union operands must be node sequences"}
		}
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	// Document order within one document; stable across documents.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].Dewey.Compare(nodes[j-1].Dewey) < 0; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
	out := make(Sequence, len(nodes))
	for i, n := range nodes {
		out[i] = n
	}
	return out, nil
}

// parentStep is the ".." axis applied to a sequence.
type parentStep struct{ base expr }

func (e *parentStep) eval(ctx *context) (Sequence, error) {
	v, err := e.base.eval(ctx)
	if err != nil {
		return nil, err
	}
	seen := map[*xmltree.Node]bool{}
	var out Sequence
	for _, item := range v {
		if n, ok := item.(*xmltree.Node); ok && n.Parent != nil && !seen[n.Parent] {
			seen[n.Parent] = true
			out = append(out, n.Parent)
		}
	}
	return out, nil
}

// arity for the extended functions (min required arguments).
var extendedArity = map[string]int{
	"sum": 1, "avg": 1, "min": 1, "max": 1,
	"floor": 1, "ceiling": 1, "round": 1, "abs": 1,
	"contains": 2, "starts-with": 2, "ends-with": 2,
	"string-length": 1, "normalize-space": 1,
	"upper-case": 1, "lower-case": 1, "substring": 2, "empty": 1,
	"true": 0, "false": 0, "last": 0,
}

// evalExtendedFunc handles the function library beyond the core set; it
// reports ok=false for names it does not know.
func evalExtendedFunc(name string, args []Sequence) (Sequence, bool, error) {
	want, known := extendedArity[name]
	if !known {
		return nil, false, nil
	}
	if len(args) < want {
		return nil, true, &Error{Message: fmt.Sprintf("%s() needs at least %d argument(s), got %d", name, want, len(args))}
	}
	num := func(s Sequence) (float64, error) { return numberValue(s) }
	switch name {
	case "sum":
		total := 0.0
		for _, item := range args[0] {
			f, ok := toFloat(atomize(item))
			if !ok {
				return nil, true, &Error{Message: "sum(): non-numeric item"}
			}
			total += f
		}
		return Sequence{total}, true, nil
	case "avg":
		if len(args[0]) == 0 {
			return nil, true, nil
		}
		total := 0.0
		for _, item := range args[0] {
			f, ok := toFloat(atomize(item))
			if !ok {
				return nil, true, &Error{Message: "avg(): non-numeric item"}
			}
			total += f
		}
		return Sequence{total / float64(len(args[0]))}, true, nil
	case "min", "max":
		if len(args[0]) == 0 {
			return nil, true, nil
		}
		best, ok := toFloat(atomize(args[0][0]))
		if !ok {
			return nil, true, &Error{Message: name + "(): non-numeric item"}
		}
		for _, item := range args[0][1:] {
			f, fok := toFloat(atomize(item))
			if !fok {
				return nil, true, &Error{Message: name + "(): non-numeric item"}
			}
			if (name == "min" && f < best) || (name == "max" && f > best) {
				best = f
			}
		}
		return Sequence{best}, true, nil
	case "floor", "ceiling", "round", "abs":
		f, err := num(args[0])
		if err != nil {
			return nil, true, err
		}
		switch name {
		case "floor":
			f = math.Floor(f)
		case "ceiling":
			f = math.Ceil(f)
		case "round":
			f = math.Round(f)
		case "abs":
			f = math.Abs(f)
		}
		return Sequence{f}, true, nil
	case "contains", "starts-with", "ends-with":
		a := stringValue(atomize(one(args[0])))
		b := stringValue(atomize(one(args[1])))
		var r bool
		switch name {
		case "contains":
			r = strings.Contains(a, b)
		case "starts-with":
			r = strings.HasPrefix(a, b)
		default:
			r = strings.HasSuffix(a, b)
		}
		return Sequence{r}, true, nil
	case "string-length":
		return Sequence{float64(len(stringValue(atomize(one(args[0])))))}, true, nil
	case "normalize-space":
		return Sequence{strings.Join(strings.Fields(stringValue(atomize(one(args[0])))), " ")}, true, nil
	case "upper-case":
		return Sequence{strings.ToUpper(stringValue(atomize(one(args[0]))))}, true, nil
	case "lower-case":
		return Sequence{strings.ToLower(stringValue(atomize(one(args[0]))))}, true, nil
	case "substring":
		s := stringValue(atomize(one(args[0])))
		start, err := num(args[1])
		if err != nil {
			return nil, true, err
		}
		from := int(start) - 1
		if from < 0 {
			from = 0
		}
		if from > len(s) {
			from = len(s)
		}
		if len(args) >= 3 {
			length, err := num(args[2])
			if err != nil {
				return nil, true, err
			}
			to := from + int(length)
			if to > len(s) {
				to = len(s)
			}
			if to < from {
				to = from
			}
			return Sequence{s[from:to]}, true, nil
		}
		return Sequence{s[from:]}, true, nil
	case "empty":
		return Sequence{len(args[0]) == 0}, true, nil
	case "true":
		return Sequence{true}, true, nil
	case "false":
		return Sequence{false}, true, nil
	case "last":
		return nil, true, &Error{Message: "last() is not supported; use count() over a bound sequence"}
	}
	return nil, false, nil
}
