package xq

import (
	"reflect"
	"testing"
)

func TestExtractPathsBasics(t *testing.T) {
	chains, err := ExtractPaths(`for $b in doc("d")/lib/book return $b/title`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"lib"}, {"lib", "book"}, {"lib", "book", "title"}}
	if !reflect.DeepEqual(chains, want) {
		t.Errorf("chains = %v, want %v", chains, want)
	}
}

func TestExtractPathsPredicatesAndAttrs(t *testing.T) {
	chains, err := ExtractPaths(`doc("d")/book[@year > 2000][author = "X"]/title`)
	if err != nil {
		t.Fatal(err)
	}
	has := func(want ...string) bool {
		for _, c := range chains {
			if reflect.DeepEqual(c, want) {
				return true
			}
		}
		return false
	}
	if !has("book", "@year") || !has("book", "author") || !has("book", "title") {
		t.Errorf("chains = %v", chains)
	}
}

func TestExtractPathsWildcardStopsChain(t *testing.T) {
	chains, err := ExtractPaths(`doc("d")/a/*/b`)
	if err != nil {
		t.Fatal(err)
	}
	// The wildcard ends the chain: only "a" is traversed with certainty.
	if len(chains) != 1 || chains[0][0] != "a" {
		t.Errorf("chains = %v", chains)
	}
}

func TestExtractPathsLetChains(t *testing.T) {
	chains, err := ExtractPaths(`let $x := doc("d")/a/b return $x/c`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range chains {
		if reflect.DeepEqual(c, []string{"a", "b", "c"}) {
			found = true
		}
	}
	if !found {
		t.Errorf("let chain lost: %v", chains)
	}
}

func TestExtractPathsConstructorContent(t *testing.T) {
	chains, err := ExtractPaths(`for $a in doc("d")/x return <o>{$a/y}</o>`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range chains {
		if reflect.DeepEqual(c, []string{"x", "y"}) {
			found = true
		}
	}
	if !found {
		t.Errorf("constructor chain lost: %v", chains)
	}
}

func TestExtractPathsBadQuery(t *testing.T) {
	if _, err := ExtractPaths("%%%"); err == nil {
		t.Error("bad query should fail")
	}
}

func TestErrorTypes(t *testing.T) {
	_, err := New().Query(`$nope`)
	if e, ok := err.(*Error); !ok || e.Error() == "" {
		t.Errorf("error = %T %v", err, err)
	}
}
