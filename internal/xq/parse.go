package xq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// parser is a recursive-descent parser over the raw query text. XQuery
// mixes expression syntax with XML constructor syntax, so the parser works
// directly on bytes with explicit lookahead instead of a separate token
// stream.
type parser struct {
	src string
	i   int
}

func parse(src string) (expr, error) {
	p := &parser{src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.i < len(p.src) {
		return nil, p.errorf("unexpected %q after expression", p.rest(12))
	}
	return e, nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &Error{Pos: p.i, Message: fmt.Sprintf(format, args...)}
}

func (p *parser) rest(n int) string {
	r := p.src[p.i:]
	if len(r) > n {
		r = r[:n]
	}
	return r
}

func (p *parser) skipSpace() {
	for p.i < len(p.src) {
		c := p.src[p.i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.i++
			continue
		}
		// (: comments :)
		if c == '(' && p.i+1 < len(p.src) && p.src[p.i+1] == ':' {
			end := strings.Index(p.src[p.i:], ":)")
			if end < 0 {
				p.i = len(p.src)
				return
			}
			p.i += end + 2
			continue
		}
		return
	}
}

// peekWord reports whether the next token is the given keyword.
func (p *parser) peekWord(w string) bool {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.i:], w) {
		return false
	}
	after := p.i + len(w)
	if after < len(p.src) && isNameByte(p.src[after]) {
		return false
	}
	return true
}

func (p *parser) eatWord(w string) bool {
	if p.peekWord(w) {
		p.i += len(w)
		return true
	}
	return false
}

func (p *parser) eat(s string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.i:], s) {
		p.i += len(s)
		return true
	}
	return false
}

func (p *parser) peek(s string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.src[p.i:], s)
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *parser) name() (string, error) {
	p.skipSpace()
	start := p.i
	for p.i < len(p.src) && isNameByte(p.src[p.i]) {
		p.i++
	}
	if p.i == start {
		return "", p.errorf("expected a name, got %q", p.rest(8))
	}
	return p.src[start:p.i], nil
}

// parseExpr parses the comma operator level.
func (p *parser) parseExpr() (expr, error) {
	first, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	parts := []expr{first}
	for p.eat(",") {
		e, err := p.parseSingle()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	if len(parts) == 1 {
		return first, nil
	}
	return &seqExpr{parts: parts}, nil
}

// parseSingle parses one expression (FLWOR, conditional, quantified, or
// operator expression).
func (p *parser) parseSingle() (expr, error) {
	if p.peekWord("for") || p.peekWord("let") {
		return p.parseFLWOR()
	}
	if p.peekWord("if") {
		return p.parseIf()
	}
	if p.peekWord("some") || p.peekWord("every") {
		return p.parseQuantified()
	}
	return p.parseOr()
}

// parseIf parses if (cond) then a else b.
func (p *parser) parseIf() (expr, error) {
	p.eatWord("if")
	if !p.eat("(") {
		return nil, p.errorf("expected '(' after 'if'")
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.eat(")") {
		return nil, p.errorf("expected ')' after if condition")
	}
	if !p.eatWord("then") {
		return nil, p.errorf("expected 'then'")
	}
	then, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	if !p.eatWord("else") {
		return nil, p.errorf("expected 'else'")
	}
	els, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	return &ifExpr{cond: cond, then: then, els: els}, nil
}

// parseQuantified parses some/every $v in e satisfies p.
func (p *parser) parseQuantified() (expr, error) {
	every := p.eatWord("every")
	if !every {
		p.eatWord("some")
	}
	name, in, err := p.parseBinding("in")
	if err != nil {
		return nil, err
	}
	if !p.eatWord("satisfies") {
		return nil, p.errorf("expected 'satisfies'")
	}
	sat, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	return &quantExpr{every: every, name: name, in: in, sat: sat}, nil
}

func (p *parser) parseFLWOR() (expr, error) {
	f := &flworExpr{}
	for {
		switch {
		case p.eatWord("for"):
			for {
				name, in, err := p.parseBinding("in")
				if err != nil {
					return nil, err
				}
				f.clauses = append(f.clauses, clause{name: name, in: in})
				if !p.eat(",") {
					break
				}
			}
		case p.eatWord("let"):
			for {
				name, in, err := p.parseBinding(":=")
				if err != nil {
					return nil, err
				}
				f.clauses = append(f.clauses, clause{isLet: true, name: name, in: in})
				if !p.eat(",") {
					break
				}
			}
		default:
			goto clausesDone
		}
	}
clausesDone:
	if len(f.clauses) == 0 {
		return nil, p.errorf("FLWOR without for/let")
	}
	if p.eatWord("where") {
		w, err := p.parseSingle()
		if err != nil {
			return nil, err
		}
		f.where = w
	}
	if p.eatWord("order") {
		if !p.eatWord("by") {
			return nil, p.errorf("expected 'by' after 'order'")
		}
		for {
			key, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			spec := orderSpec{key: key}
			if p.eatWord("descending") {
				spec.descending = true
			} else {
				p.eatWord("ascending")
			}
			f.orderBy = append(f.orderBy, spec)
			if !p.eat(",") {
				break
			}
		}
	}
	if !p.eatWord("return") {
		return nil, p.errorf("expected 'return', got %q", p.rest(12))
	}
	ret, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	f.ret = ret
	return f, nil
}

func (p *parser) parseBinding(sep string) (string, expr, error) {
	if !p.eat("$") {
		return "", nil, p.errorf("expected variable, got %q", p.rest(8))
	}
	name, err := p.name()
	if err != nil {
		return "", nil, err
	}
	if sep == "in" {
		if !p.eatWord("in") {
			return "", nil, p.errorf("expected 'in' after $%s", name)
		}
	} else if !p.eat(sep) {
		return "", nil, p.errorf("expected %q after $%s", sep, name)
	}
	in, err := p.parseOr()
	if err != nil {
		return "", nil, err
	}
	return name, in, nil
}

func (p *parser) parseOr() (expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatWord("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "or", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expr, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.eatWord("and") {
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: "and", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseCmp() (expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		// '<' followed by a name start is a constructor, not a comparison.
		if op == "<" && p.peekConstructor() {
			continue
		}
		if p.peek(op) {
			p.eat(op)
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &binaryExpr{op: op, left: left, right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) peekConstructor() bool {
	p.skipSpace()
	return p.i+1 < len(p.src) && p.src[p.i] == '<' &&
		(unicode.IsLetter(rune(p.src[p.i+1])) || p.src[p.i+1] == '_')
}

func (p *parser) parseAdd() (expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eat("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &binaryExpr{op: "+", left: left, right: r}
		case p.peek("-") && !p.peek("->"):
			p.eat("-")
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &binaryExpr{op: "-", left: left, right: r}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMul() (expr, error) {
	left, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eatWord("div"):
			r, err := p.parseUnion()
			if err != nil {
				return nil, err
			}
			left = &binaryExpr{op: "div", left: left, right: r}
		case p.eatWord("mod"):
			r, err := p.parseUnion()
			if err != nil {
				return nil, err
			}
			left = &binaryExpr{op: "mod", left: left, right: r}
		case p.peek("*") && !p.peekWildcardStep():
			p.eat("*")
			r, err := p.parseUnion()
			if err != nil {
				return nil, err
			}
			left = &binaryExpr{op: "*", left: left, right: r}
		default:
			return left, nil
		}
	}
}

// parseUnion parses the node-set union operator "|".
func (p *parser) parseUnion() (expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek("|") {
		p.eat("|")
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &unionExpr{left: left, right: right}
	}
	return left, nil
}

// peekWildcardStep distinguishes multiplication from the rare standalone
// "*" path step (only valid straight after / which parsePath consumes, so
// here "*" is always multiplication).
func (p *parser) peekWildcardStep() bool { return false }

func (p *parser) parseUnary() (expr, error) {
	if p.eat("-") {
		e, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return &negExpr{operand: e}, nil
	}
	return p.parsePath()
}

// parsePath parses primary ('/' step | '//' step)*.
func (p *parser) parsePath() (expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	var steps []step
	for {
		descendant := false
		switch {
		case p.peek("//"):
			p.eat("//")
			descendant = true
		case p.peek("/"):
			p.eat("/")
		default:
			if len(steps) == 0 {
				return base, nil
			}
			return &pathExpr{base: base, steps: steps}, nil
		}
		// ".." is the parent axis; it folds the accumulated steps into a
		// parentStep base.
		if !descendant && p.peek("..") {
			p.eat("..")
			if len(steps) > 0 {
				base = &pathExpr{base: base, steps: steps}
				steps = nil
			}
			base = &parentStep{base: base}
			continue
		}
		st, err := p.parseStep(descendant)
		if err != nil {
			return nil, err
		}
		steps = append(steps, st)
	}
}

func (p *parser) parseStep(descendant bool) (step, error) {
	st := step{descendant: descendant}
	p.skipSpace()
	if p.eat("@") {
		st.attr = true
	}
	if p.eat("*") {
		st.name = "*"
	} else {
		name, err := p.name()
		if err != nil {
			return st, err
		}
		if name == "text" && p.eat("()") {
			// text() step: treated as the node's own text via string();
			// model has no separate text nodes, so text() selects self.
			st.name = "text()"
			return st, nil
		}
		st.name = name
	}
	for p.peek("[") {
		p.eat("[")
		pred, err := p.parseExpr()
		if err != nil {
			return st, err
		}
		if !p.eat("]") {
			return st, p.errorf("expected ']'")
		}
		st.preds = append(st.preds, pred)
	}
	return st, nil
}

func (p *parser) parsePrimary() (expr, error) {
	p.skipSpace()
	if p.i >= len(p.src) {
		return nil, p.errorf("unexpected end of query")
	}
	c := p.src[p.i]
	switch {
	case c == '$':
		p.i++
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		return &varRef{name: name}, nil
	case c == '@':
		// A bare attribute step inside a predicate: relative to context.
		st, err := p.parseStep(false)
		if err != nil {
			return nil, err
		}
		return &pathExpr{base: &varRef{name: "."}, steps: []step{st}}, nil
	case c == '"' || c == '\'':
		return p.parseStringLiteral()
	case c >= '0' && c <= '9':
		return p.parseNumber()
	case c == '(':
		p.i++
		if p.eat(")") {
			return &seqExpr{}, nil // empty sequence ()
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.eat(")") {
			return nil, p.errorf("expected ')'")
		}
		return e, nil
	case p.peekConstructor():
		return p.parseConstructor()
	default:
		// Function call or bare path starting with a name.
		save := p.i
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		if p.peek("(") {
			p.eat("(")
			var args []expr
			if !p.peek(")") {
				for {
					a, err := p.parseSingle()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.eat(",") {
						break
					}
				}
			}
			if !p.eat(")") {
				return nil, p.errorf("expected ')' in call to %s", name)
			}
			return &funcCall{name: name, args: args}, nil
		}
		// Bare name: a child step on the context (only meaningful inside
		// predicates); treat as a path over the context variable ".".
		p.i = save
		st, err := p.parseStep(false)
		if err != nil {
			return nil, err
		}
		return &pathExpr{base: &varRef{name: "."}, steps: []step{st}}, nil
	}
}

func (p *parser) parseStringLiteral() (expr, error) {
	quote := p.src[p.i]
	p.i++
	start := p.i
	for p.i < len(p.src) && p.src[p.i] != quote {
		p.i++
	}
	if p.i >= len(p.src) {
		return nil, p.errorf("unterminated string literal")
	}
	s := p.src[start:p.i]
	p.i++
	return &literal{val: s}, nil
}

func (p *parser) parseNumber() (expr, error) {
	start := p.i
	for p.i < len(p.src) && (p.src[p.i] >= '0' && p.src[p.i] <= '9' || p.src[p.i] == '.') {
		p.i++
	}
	f, err := strconv.ParseFloat(p.src[start:p.i], 64)
	if err != nil {
		return nil, p.errorf("bad number %q", p.src[start:p.i])
	}
	return &literal{val: f}, nil
}

// parseConstructor parses <name attr="v">content</name> where content
// interleaves literal text and {expr} blocks.
func (p *parser) parseConstructor() (expr, error) {
	p.eat("<")
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	e := &elemConstructor{name: name}
	for {
		p.skipSpace()
		if p.eat("/>") {
			return e, nil
		}
		if p.eat(">") {
			break
		}
		an, err := p.name()
		if err != nil {
			return nil, err
		}
		if !p.eat("=") {
			return nil, p.errorf("expected '=' in attribute %s", an)
		}
		p.skipSpace()
		if p.i >= len(p.src) || (p.src[p.i] != '"' && p.src[p.i] != '\'') {
			return nil, p.errorf("expected quoted attribute value")
		}
		lit, err := p.parseStringLiteral()
		if err != nil {
			return nil, err
		}
		e.attrs = append(e.attrs, attrTemplate{name: an, value: lit.(*literal).val.(string)})
	}
	// Content until </name>.
	for {
		if p.i >= len(p.src) {
			return nil, p.errorf("unterminated element <%s>", name)
		}
		if strings.HasPrefix(p.src[p.i:], "</") {
			p.i += 2
			closeName, err := p.name()
			if err != nil {
				return nil, err
			}
			if closeName != name {
				return nil, p.errorf("mismatched close tag </%s> for <%s>", closeName, name)
			}
			if !p.eat(">") {
				return nil, p.errorf("expected '>' in close tag")
			}
			return e, nil
		}
		if p.src[p.i] == '{' {
			p.i++
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !p.eat("}") {
				return nil, p.errorf("expected '}'")
			}
			e.content = append(e.content, contentPart{expr: inner})
			continue
		}
		if p.peekConstructor() {
			inner, err := p.parseConstructor()
			if err != nil {
				return nil, err
			}
			e.content = append(e.content, contentPart{expr: inner})
			continue
		}
		// Literal text run.
		start := p.i
		for p.i < len(p.src) && p.src[p.i] != '{' && p.src[p.i] != '<' {
			p.i++
		}
		e.content = append(e.content, contentPart{text: p.src[start:p.i]})
	}
}
