package xq

// ExtractPaths returns the label chains a query's path expressions
// traverse, rooted at doc() calls: the raw material for guard inference
// (the paper's Section X names inferring a guard from a query as an open
// problem; internal/infer builds on this extraction).
//
// Each chain lists element labels from the document root downward;
// attribute steps keep their "@". Wildcards and text() steps end a chain.
// Variable bindings extend the chain of the expression they iterate.
func ExtractPaths(query string) ([][]string, error) {
	ast, err := parse(query)
	if err != nil {
		return nil, err
	}
	c := &pathCollector{env: map[string][]string{}}
	c.walk(ast, nil)
	return c.paths, nil
}

type pathCollector struct {
	env   map[string][]string
	paths [][]string
}

// record notes a traversed chain (deduplicated, prefix chains included so
// the tree builder sees interior labels).
func (c *pathCollector) record(chain []string) {
	if len(chain) == 0 {
		return
	}
	for _, p := range c.paths {
		if equalChain(p, chain) {
			return
		}
	}
	c.paths = append(c.paths, append([]string(nil), chain...))
}

func equalChain(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chainOf resolves the chain an expression's result nodes sit on, or nil
// when the expression is not a path (literals, arithmetic, ...). It also
// records every chain it resolves.
func (c *pathCollector) chainOf(e expr) []string {
	switch x := e.(type) {
	case *varRef:
		return c.env[x.name]
	case *funcCall:
		if x.name == "doc" {
			return []string{} // the document root: an empty, non-nil chain
		}
		for _, a := range x.args {
			c.walk(a, nil)
		}
		return nil
	case *pathExpr:
		base := c.chainOf(x.base)
		if base == nil {
			c.walk(x.base, nil)
			base = []string{}
		}
		chain := append([]string(nil), base...)
		for _, st := range x.steps {
			if st.name == "*" || st.name == "text()" {
				break
			}
			name := st.name
			if st.attr {
				name = "@" + name
			}
			chain = append(chain, name)
			c.record(chain)
			for _, pred := range st.preds {
				// Inside a predicate, "." (and bare relative steps) resolve
				// to the step's chain.
				saved, had := c.env["."]
				c.env["."] = append([]string(nil), chain...)
				c.walk(pred, chain)
				if had {
					c.env["."] = saved
				} else {
					delete(c.env, ".")
				}
			}
		}
		return chain
	case *parentStep:
		base := c.chainOf(x.base)
		if len(base) > 0 {
			return base[:len(base)-1]
		}
		return base
	case *unionExpr:
		c.chainOf(x.left)
		c.chainOf(x.right)
		return nil
	}
	c.walk(e, nil)
	return nil
}

// walk visits an expression tree; ctx is the chain "." resolves to.
func (c *pathCollector) walk(e expr, ctx []string) {
	switch x := e.(type) {
	case nil:
	case *flworExpr:
		saved := c.snapshot()
		for _, cl := range x.clauses {
			chain := c.chainOf(cl.in)
			if chain != nil {
				c.env[cl.name] = chain
				c.env["."] = chain
			} else {
				delete(c.env, cl.name)
			}
		}
		c.walk(x.where, c.env["."])
		for _, o := range x.orderBy {
			c.walk(o.key, c.env["."])
		}
		c.walk(x.ret, c.env["."])
		c.restore(saved)
	case *quantExpr:
		saved := c.snapshot()
		chain := c.chainOf(x.in)
		if chain != nil {
			c.env[x.name] = chain
			c.env["."] = chain
		}
		c.walk(x.sat, c.env["."])
		c.restore(saved)
	case *pathExpr:
		c.chainOf(x)
	case *parentStep:
		c.chainOf(x)
	case *unionExpr:
		c.chainOf(x.left)
		c.chainOf(x.right)
	case *binaryExpr:
		c.walk(x.left, ctx)
		c.walk(x.right, ctx)
	case *negExpr:
		c.walk(x.operand, ctx)
	case *ifExpr:
		c.walk(x.cond, ctx)
		c.walk(x.then, ctx)
		c.walk(x.els, ctx)
	case *seqExpr:
		for _, p := range x.parts {
			c.walk(p, ctx)
		}
	case *funcCall:
		c.chainOf(x)
	case *elemConstructor:
		for _, part := range x.content {
			if part.expr != nil {
				c.walk(part.expr, ctx)
			}
		}
	case *varRef, *literal:
		// Leaves without path structure (variable chains are consumed by
		// chainOf at their use sites).
	}
}

func (c *pathCollector) snapshot() map[string][]string {
	s := make(map[string][]string, len(c.env))
	for k, v := range c.env {
		s[k] = v
	}
	return s
}

func (c *pathCollector) restore(s map[string][]string) { c.env = s }
