package xq

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"xmorph/internal/xmltree"
)

func (e *flworExpr) eval(ctx *context) (Sequence, error) {
	type tupleOut struct {
		keys []Item
		vals Sequence
	}
	var outs []tupleOut

	var iterate func(ctx *context, i int) error
	iterate = func(ctx *context, i int) error {
		if i == len(e.clauses) {
			if e.where != nil {
				cond, err := e.where.eval(ctx)
				if err != nil {
					return err
				}
				ok, err := booleanValue(cond)
				if err != nil || !ok {
					return err
				}
			}
			var keys []Item
			for _, spec := range e.orderBy {
				kv, err := spec.key.eval(ctx)
				if err != nil {
					return err
				}
				if len(kv) == 0 {
					keys = append(keys, "")
				} else {
					keys = append(keys, atomize(kv[0]))
				}
			}
			val, err := e.ret.eval(ctx)
			if err != nil {
				return err
			}
			outs = append(outs, tupleOut{keys: keys, vals: val})
			return nil
		}
		cl := e.clauses[i]
		seq, err := cl.in.eval(ctx)
		if err != nil {
			return err
		}
		if cl.isLet {
			c := ctx.child()
			c.vars[cl.name] = seq
			return iterate(c, i+1)
		}
		for _, item := range seq {
			c := ctx.child()
			c.vars[cl.name] = Sequence{item}
			c.vars["."] = Sequence{item}
			if err := iterate(c, i+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := iterate(ctx, 0); err != nil {
		return nil, err
	}

	if len(e.orderBy) > 0 {
		sort.SliceStable(outs, func(a, b int) bool {
			for k, spec := range e.orderBy {
				c := compareItems(outs[a].keys[k], outs[b].keys[k])
				if c == 0 {
					continue
				}
				if spec.descending {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	var result Sequence
	for _, o := range outs {
		result = append(result, o.vals...)
	}
	return result, nil
}

func (e *pathExpr) eval(ctx *context) (Sequence, error) {
	cur, err := e.base.eval(ctx)
	if err != nil {
		return nil, err
	}
	for _, st := range e.steps {
		var next Sequence
		for _, item := range cur {
			n, ok := item.(*xmltree.Node)
			if !ok {
				continue
			}
			if st.name == "text()" {
				next = append(next, n.Value)
				continue
			}
			matches := func(c *xmltree.Node) bool {
				if c.Attr != st.attr {
					return false
				}
				return st.name == "*" || c.LocalName() == st.name
			}
			if st.descendant {
				n.Walk(func(c *xmltree.Node) bool {
					if c != n && matches(c) {
						next = append(next, c)
					}
					return true
				})
			} else {
				for _, c := range n.Children {
					if matches(c) {
						next = append(next, c)
					}
				}
			}
		}
		cur, err = applyPredicates(ctx, next, st.preds)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func applyPredicates(ctx *context, seq Sequence, preds []expr) (Sequence, error) {
	for _, pred := range preds {
		var kept Sequence
		for pos, item := range seq {
			c := ctx.child()
			c.vars["."] = Sequence{item}
			v, err := pred.eval(c)
			if err != nil {
				return nil, err
			}
			// Numeric predicate: positional (1-based).
			if len(v) == 1 {
				if f, ok := v[0].(float64); ok {
					if int(f) == pos+1 {
						kept = append(kept, item)
					}
					continue
				}
			}
			ok, err := booleanValue(v)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, item)
			}
		}
		seq = kept
	}
	return seq, nil
}

func (e *varRef) eval(ctx *context) (Sequence, error) {
	v, ok := ctx.vars[e.name]
	if !ok {
		return nil, &Error{Message: fmt.Sprintf("undefined variable $%s", e.name)}
	}
	return v, nil
}

func (e *literal) eval(ctx *context) (Sequence, error) {
	return Sequence{e.val}, nil
}

func (e *seqExpr) eval(ctx *context) (Sequence, error) {
	var out Sequence
	for _, p := range e.parts {
		v, err := p.eval(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

func (e *negExpr) eval(ctx *context) (Sequence, error) {
	v, err := e.operand.eval(ctx)
	if err != nil {
		return nil, err
	}
	f, err := numberValue(v)
	if err != nil {
		return nil, err
	}
	return Sequence{-f}, nil
}

func (e *binaryExpr) eval(ctx *context) (Sequence, error) {
	switch e.op {
	case "and", "or":
		lv, err := e.left.eval(ctx)
		if err != nil {
			return nil, err
		}
		lb, err := booleanValue(lv)
		if err != nil {
			return nil, err
		}
		if e.op == "and" && !lb {
			return Sequence{false}, nil
		}
		if e.op == "or" && lb {
			return Sequence{true}, nil
		}
		rv, err := e.right.eval(ctx)
		if err != nil {
			return nil, err
		}
		rb, err := booleanValue(rv)
		if err != nil {
			return nil, err
		}
		return Sequence{rb}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		lv, err := e.left.eval(ctx)
		if err != nil {
			return nil, err
		}
		rv, err := e.right.eval(ctx)
		if err != nil {
			return nil, err
		}
		// General comparison: existential over atomized items.
		for _, a := range lv {
			for _, b := range rv {
				if cmpSatisfies(e.op, compareItems(atomize(a), atomize(b))) {
					return Sequence{true}, nil
				}
			}
		}
		return Sequence{false}, nil
	case "+", "-", "*", "div", "mod":
		lv, err := e.left.eval(ctx)
		if err != nil {
			return nil, err
		}
		rv, err := e.right.eval(ctx)
		if err != nil {
			return nil, err
		}
		lf, err := numberValue(lv)
		if err != nil {
			return nil, err
		}
		rf, err := numberValue(rv)
		if err != nil {
			return nil, err
		}
		switch e.op {
		case "+":
			return Sequence{lf + rf}, nil
		case "-":
			return Sequence{lf - rf}, nil
		case "*":
			return Sequence{lf * rf}, nil
		case "div":
			return Sequence{lf / rf}, nil
		default:
			return Sequence{math.Mod(lf, rf)}, nil
		}
	}
	return nil, &Error{Message: fmt.Sprintf("unknown operator %q", e.op)}
}

func cmpSatisfies(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

func (e *funcCall) eval(ctx *context) (Sequence, error) {
	evalArgs := func() ([]Sequence, error) {
		out := make([]Sequence, len(e.args))
		for i, a := range e.args {
			v, err := a.eval(ctx)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	switch e.name {
	case "doc":
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		if len(args) != 1 {
			return nil, &Error{Message: "doc() takes one argument"}
		}
		name, _ := atomize(one(args[0])).(string)
		d, err := ctx.docs(name)
		if err != nil {
			return nil, err
		}
		var out Sequence
		for _, r := range d.Roots {
			out = append(out, r)
		}
		return out, nil
	case "count":
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		return Sequence{float64(len(args[0]))}, nil
	case "exists":
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		return Sequence{len(args[0]) > 0}, nil
	case "not":
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		b, err := booleanValue(args[0])
		if err != nil {
			return nil, err
		}
		return Sequence{!b}, nil
	case "string":
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		if len(args[0]) == 0 {
			return Sequence{""}, nil
		}
		return Sequence{stringValue(args[0][0])}, nil
	case "number":
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		f, err := numberValue(args[0])
		if err != nil {
			return nil, err
		}
		return Sequence{f}, nil
	case "name":
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		if n, ok := one(args[0]).(*xmltree.Node); ok {
			return Sequence{n.LocalName()}, nil
		}
		return Sequence{""}, nil
	case "concat":
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		for _, a := range args {
			for _, item := range a {
				b.WriteString(stringValue(item))
			}
		}
		return Sequence{b.String()}, nil
	case "distinct-values":
		args, err := evalArgs()
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var out Sequence
		for _, item := range args[0] {
			s := stringValue(item)
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
		return out, nil
	}
	args, err := evalArgs()
	if err != nil {
		return nil, err
	}
	if out, ok, err := evalExtendedFunc(e.name, args); ok {
		return out, err
	}
	return nil, &Error{Message: fmt.Sprintf("unknown function %s()", e.name)}
}

func (e *elemConstructor) eval(ctx *context) (Sequence, error) {
	b := xmltree.NewBuilder().Elem(e.name)
	for _, a := range e.attrs {
		b.Attr(a.name, a.value)
	}
	for _, part := range e.content {
		if part.expr == nil {
			if t := strings.TrimSpace(part.text); t != "" {
				b.Text(part.text)
			}
			continue
		}
		v, err := part.expr.eval(ctx)
		if err != nil {
			return nil, err
		}
		for i, item := range v {
			switch x := item.(type) {
			case *xmltree.Node:
				copyInto(b, x)
			default:
				if i > 0 {
					b.Text(" ")
				}
				b.Text(stringValue(item))
			}
		}
	}
	doc, err := b.End().Document()
	if err != nil {
		return nil, &Error{Message: err.Error()}
	}
	return Sequence{doc.Root()}, nil
}

// copyInto deep-copies a node (subtree) into the builder.
func copyInto(b *xmltree.Builder, n *xmltree.Node) {
	if n.Attr {
		b.Attr(n.LocalName(), n.Value)
		return
	}
	b.Elem(n.Name)
	if n.Value != "" {
		b.Text(n.Value)
	}
	for _, c := range n.Children {
		copyInto(b, c)
	}
	b.End()
}

// --- value coercions ---

func one(s Sequence) Item {
	if len(s) == 0 {
		return nil
	}
	return s[0]
}

// atomize turns a node into its string value.
func atomize(i Item) Item {
	if n, ok := i.(*xmltree.Node); ok {
		return n.Text()
	}
	return i
}

// compareItems compares two atomized items, numerically when both parse as
// numbers, else as strings.
func compareItems(a, b Item) int {
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	return strings.Compare(stringValue(a), stringValue(b))
}

func toFloat(i Item) (float64, bool) {
	switch x := i.(type) {
	case float64:
		return x, true
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		return f, err == nil
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func stringValue(i Item) string {
	switch x := i.(type) {
	case nil:
		return ""
	case string:
		return x
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case *xmltree.Node:
		return x.Text()
	}
	return fmt.Sprint(i)
}

// booleanValue is XQuery's effective boolean value.
func booleanValue(s Sequence) (bool, error) {
	if len(s) == 0 {
		return false, nil
	}
	if _, isNode := s[0].(*xmltree.Node); isNode {
		return true, nil
	}
	if len(s) > 1 {
		return false, &Error{Message: "effective boolean value of multi-item non-node sequence"}
	}
	switch x := s[0].(type) {
	case bool:
		return x, nil
	case float64:
		return x != 0 && !math.IsNaN(x), nil
	case string:
		return x != "", nil
	}
	return false, &Error{Message: "no effective boolean value"}
}

func numberValue(s Sequence) (float64, error) {
	if len(s) == 0 {
		return math.NaN(), nil
	}
	f, ok := toFloat(atomize(s[0]))
	if !ok {
		return 0, &Error{Message: fmt.Sprintf("cannot convert %q to a number", stringValue(s[0]))}
	}
	return f, nil
}
