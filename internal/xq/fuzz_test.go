package xq

import (
	"math/rand"
	"testing"
)

// TestQueryParserNeverPanics throws token soup at the XQuery parser.
func TestQueryParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	words := []string{
		"for", "let", "where", "return", "order", "by", "in", ":=", "$v",
		"doc(\"d\")", "/", "//", "[", "]", "(", ")", "{", "}", "<a>", "</a>",
		"\"s\"", "1", "+", "-", "*", "=", "!=", "and", "or", "if", "then",
		"else", "some", "every", "satisfies", "|", "..", "@x", "name", ",",
	}
	for i := 0; i < 5000; i++ {
		n := rng.Intn(10)
		src := ""
		for j := 0; j < n; j++ {
			src += words[rng.Intn(len(words))] + " "
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("query parser panicked on %q: %v", src, r)
				}
			}()
			_, _ = parse(src)
		}()
	}
}
