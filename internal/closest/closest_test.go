package closest

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xmorph/internal/xmltree"
)

const fig1a = `<data>
  <book>
    <title>X</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
  <book>
    <title>Y</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
</data>`

func TestTypeLCP(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"data.book.title", "data.book.publisher", 2},
		{"data.book", "data.book", 2},
		{"data.book.title", "data.other", 1},
		{"a", "b", 0},
		{"data", "data.book", 1},
	}
	for _, tt := range tests {
		if got := TypeLCP(tt.a, tt.b); got != tt.want {
			t.Errorf("TypeLCP(%s, %s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

// TestJoinPaperWalkthrough reproduces the three joins of Section VII on
// Figure 1(a) under the guard MORPH author [ name book [ title ] ].
func TestJoinPaperWalkthrough(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	authors := d.NodesOfType("data.book.author")
	names := d.NodesOfType("data.book.author.name")
	books := d.NodesOfType("data.book")
	titles := d.NodesOfType("data.book.title")

	pairsStr := func(ps []Pair) [][2]string {
		out := make([][2]string, len(ps))
		for i, p := range ps {
			out[i] = [2]string{p.V.Dewey.String(), p.W.Dewey.String()}
		}
		return out
	}

	// 1) authors CLOSE names = {(1.1.2, 1.1.2.1), (1.2.2, 1.2.2.1)}
	got := pairsStr(Join(authors, names))
	want := [][2]string{{"1.1.2", "1.1.2.1"}, {"1.2.2", "1.2.2.1"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("authors CLOSE names = %v, want %v", got, want)
	}

	// 2) authors CLOSE books = {(1.1.2, 1.1), (1.2.2, 1.2)}
	got = pairsStr(Join(authors, books))
	want = [][2]string{{"1.1.2", "1.1"}, {"1.2.2", "1.2"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("authors CLOSE books = %v, want %v", got, want)
	}

	// 3) books CLOSE titles = {(1.1, 1.1.1), (1.2, 1.2.1)}
	got = pairsStr(Join(books, titles))
	want = [][2]string{{"1.1", "1.1.1"}, {"1.2", "1.2.1"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("books CLOSE titles = %v, want %v", got, want)
	}
}

// TestJoinPublisherTitle reproduces the Section VII node-number example:
// publisher 1.1.3 is closest to title 1.1.1 but not 1.2.1.
func TestJoinPublisherTitle(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	pubs := d.NodesOfType("data.book.publisher")
	titles := d.NodesOfType("data.book.title")
	ps := Join(pubs, titles)
	if len(ps) != 2 {
		t.Fatalf("pairs = %d, want 2", len(ps))
	}
	if ps[0].V.Dewey.String() != "1.1.3" || ps[0].W.Dewey.String() != "1.1.1" {
		t.Errorf("first pair = (%s, %s)", ps[0].V.Dewey, ps[0].W.Dewey)
	}
	if ps[1].V.Dewey.String() != "1.2.3" || ps[1].W.Dewey.String() != "1.2.1" {
		t.Errorf("second pair = (%s, %s)", ps[1].V.Dewey, ps[1].W.Dewey)
	}
}

func TestJoinSameType(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	books := d.NodesOfType("data.book")
	ps := Join(books, books)
	if len(ps) != 2 {
		t.Fatalf("same-type join = %d pairs, want reflexive pairs only", len(ps))
	}
	for _, p := range ps {
		if p.V != p.W {
			t.Errorf("same-type join paired distinct nodes %s and %s", p.V.Dewey, p.W.Dewey)
		}
	}
}

func TestJoinEmpty(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	if got := Join(nil, d.NodesOfType("data.book")); got != nil {
		t.Error("join with empty left should be nil")
	}
	if got := Join(d.NodesOfType("data.book"), nil); got != nil {
		t.Error("join with empty right should be nil")
	}
}

// TestJoinPartner verifies the one-sided case: a node with no closest
// partner is simply absent from the join output.
func TestJoinMissingPartner(t *testing.T) {
	d := xmltree.MustParse(`<data>
	  <book><author/></book>
	  <book><author><name>V</name></author></book>
	</data>`)
	authors := d.NodesOfType("data.book.author")
	names := d.NodesOfType("data.book.author.name")
	ps := Join(authors, names)
	if len(ps) != 1 {
		t.Fatalf("pairs = %d, want 1", len(ps))
	}
	if ps[0].V.Dewey.String() != "1.2.1" {
		t.Errorf("paired author = %s, want 1.2.1", ps[0].V.Dewey)
	}
}

func TestJoinWithMatchesJoin(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	vs := d.NodesOfType("data.book.publisher")
	ws := d.NodesOfType("data.book.title")
	want := Join(vs, ws)
	var got []Pair
	JoinWith(vs, ws, func(v, w *xmltree.Node) { got = append(got, Pair{v, w}) })
	if !reflect.DeepEqual(got, want) {
		t.Errorf("JoinWith = %v, want %v", got, want)
	}
}

func TestIsClosest(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	pub := d.NodeAt(xmltree.Dewey{1, 1, 3})
	t1 := d.NodeAt(xmltree.Dewey{1, 1, 1})
	t2 := d.NodeAt(xmltree.Dewey{1, 2, 1})
	if !IsClosest(pub, t1) {
		t.Error("1.1.3 should be closest to 1.1.1")
	}
	if IsClosest(pub, t2) {
		t.Error("1.1.3 should not be closest to 1.2.1")
	}
	if !IsClosest(pub, pub) {
		t.Error("a node is closest to itself")
	}
}

// randomDoc builds a random document over a small label alphabet so that
// type sequences have multiple members and varied nesting.
func randomDoc(r *rand.Rand) *xmltree.Document {
	labels := []string{"a", "b", "c"}
	b := xmltree.NewBuilder().Elem("root")
	depth := 0
	open := 1
	n := 3 + r.Intn(25)
	for i := 0; i < n; i++ {
		switch {
		case depth > 0 && r.Intn(3) == 0:
			b.End()
			depth--
			open--
		default:
			b.Elem(labels[r.Intn(len(labels))])
			depth++
			open++
			if r.Intn(2) == 0 {
				b.Text("t")
				b.End()
				depth--
				open--
			}
		}
	}
	for ; depth >= 0; depth-- {
		b.End()
	}
	return b.MustDocument()
}

// TestJoinEquivalentToNaive checks the merge join against the Definition 2
// closest relation computed naively, over random documents.
func TestJoinEquivalentToNaive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomDoc(r))
	}}
	err := quick.Check(func(d *xmltree.Document) bool {
		types := d.Types()
		for _, t1 := range types {
			for _, t2 := range types {
				vs, ws := d.NodesOfType(t1), d.NodesOfType(t2)
				got := map[[2]int]bool{}
				for _, p := range Join(vs, ws) {
					got[[2]int{p.V.Ord, p.W.Ord}] = true
				}
				want := map[[2]int]bool{}
				for _, v := range vs {
					for _, w := range ws {
						if IsClosest(v, w) {
							want[[2]int{v.Ord, w.Ord}] = true
						}
					}
				}
				if !reflect.DeepEqual(got, want) {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestBuildGraphFig4a(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	g := Build(d)
	if g.NumVertices() != d.Size() {
		t.Errorf("vertices = %d, want %d", g.NumVertices(), d.Size())
	}
	pub := d.NodeAt(xmltree.Dewey{1, 1, 3})
	t1 := d.NodeAt(xmltree.Dewey{1, 1, 1})
	t2 := d.NodeAt(xmltree.Dewey{1, 2, 1})
	if !g.Closest(pub, t1) || g.Closest(pub, t2) {
		t.Error("graph edges disagree with closest relation")
	}
	if !g.Closest(pub, pub) {
		t.Error("Closest should be reflexive")
	}
}

// TestCompareIdentity: a "transformation" that re-renders the source
// unchanged (origin set on copies) is reversible.
func TestCompareIdentity(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	g := Build(d)

	// Deep-copy the document with Src provenance.
	var cp func(n *xmltree.Node, b *xmltree.Builder)
	cp = func(n *xmltree.Node, b *xmltree.Builder) {
		b.Elem(n.Name)
		b.Text(n.Value)
		for _, c := range n.Children {
			if c.Attr {
				b.Attr(c.LocalName(), c.Value)
			} else {
				cp(c, b)
			}
		}
		b.End()
	}
	b := xmltree.NewBuilder()
	cp(d.Root(), b)
	out := b.MustDocument()
	// Attach provenance pairwise (identical structure, same walk order).
	src, dst := d.Nodes(), out.Nodes()
	if len(src) != len(dst) {
		t.Fatal("copy changed size")
	}
	for i := range dst {
		dst[i].Src = src[i]
	}

	r := Compare(g, Build(out))
	if !r.Reversible() || !r.NonAdditive || !r.Inclusive {
		t.Errorf("identity compare = %+v, want reversible", r)
	}
}

// TestCompareDropped: dropping vertices is non-inclusive but non-additive.
func TestCompareDropped(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	g := Build(d)
	// Output: only the books, re-rooted.
	b := xmltree.NewBuilder().Elem("data")
	srcBooks := d.NodesOfType("data.book")
	b.Elem("book").End()
	b.Elem("book").End()
	out := b.End().MustDocument()
	books := out.NodesOfType("data.book")
	books[0].Src = srcBooks[0]
	books[1].Src = srcBooks[1]
	out.Nodes()[0].Src = d.Root()

	r := Compare(g, Build(out))
	if r.Inclusive {
		t.Error("dropping vertices should be non-inclusive")
	}
	if !r.NonAdditive {
		t.Error("dropping vertices should stay non-additive")
	}
}

// TestCompareManufactured: output containing an unrooted NEW vertex is
// additive.
func TestCompareManufactured(t *testing.T) {
	d := xmltree.MustParse(`<data><a>1</a></data>`)
	g := Build(d)
	out := xmltree.MustParse(`<data><wrapper><a>1</a></wrapper></data>`)
	out.Nodes()[0].Src = d.Nodes()[0]
	// wrapper has no Src: manufactured.
	out.Nodes()[2].Src = d.Nodes()[1]
	r := Compare(g, Build(out))
	if r.NonAdditive {
		t.Error("manufactured vertex should make the transform additive")
	}
}

func TestRecorderCountsJoins(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	authors := d.NodesOfType("data.book.author")
	names := d.NodesOfType("data.book.author.name")

	rec := &Recorder{}
	pairs := JoinRec(authors, names, rec)
	JoinWithRec(authors, names, rec, func(v, w *xmltree.Node) {})

	joins, cands, kept := rec.Snapshot()
	if joins != 2 {
		t.Errorf("joins = %d, want 2", joins)
	}
	wantCands := int64(2 * (len(authors) + len(names)))
	if cands != wantCands {
		t.Errorf("candidates = %d, want %d", cands, wantCands)
	}
	if kept != int64(2*len(pairs)) {
		t.Errorf("pairs = %d, want %d", kept, 2*len(pairs))
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var rec *Recorder
	rec.record(1, 2, 3)
	if j, c, p := rec.Snapshot(); j != 0 || c != 0 || p != 0 {
		t.Errorf("nil recorder snapshot = %d %d %d", j, c, p)
	}
}

// TestJoinWithNilRecorderZeroAllocs guards the acceptance criterion that
// instrumentation adds no allocations to the closest-join hot path when
// tracing is off.
func TestJoinWithNilRecorderZeroAllocs(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	books := d.NodesOfType("data.book")
	titles := d.NodesOfType("data.book.title")
	sink := 0
	fn := func(v, w *xmltree.Node) { sink++ }
	allocs := testing.AllocsPerRun(200, func() {
		JoinWithRec(books, titles, nil, fn)
	})
	if allocs != 0 {
		t.Errorf("JoinWithRec with nil recorder allocates %v per run, want 0", allocs)
	}
}

func BenchmarkJoinWithNilRecorder(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	d := randomDoc(r)
	var vs, ws []*xmltree.Node
	// Pick the two largest type sequences for a meaningful merge.
	for _, typ := range d.Types() {
		ns := d.NodesOfType(typ)
		if len(ns) > len(vs) {
			vs, ws = ns, vs
		} else if len(ns) > len(ws) {
			ws = ns
		}
	}
	fn := func(v, w *xmltree.Node) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JoinWithRec(vs, ws, nil, fn)
	}
}

func BenchmarkJoinWithRecorder(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	d := randomDoc(r)
	var vs, ws []*xmltree.Node
	for _, typ := range d.Types() {
		ns := d.NodesOfType(typ)
		if len(ns) > len(vs) {
			vs, ws = ns, vs
		} else if len(ns) > len(ws) {
			ws = ns
		}
	}
	fn := func(v, w *xmltree.Node) {}
	rec := &Recorder{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JoinWithRec(vs, ws, rec, fn)
	}
}
