// Package closest implements the closest relation of Definition 2, the
// closest graph of Definition 1, and the Dewey-number closest join of
// Section VII.
//
// Two vertices are closest when their tree distance equals the type
// distance of their types (the minimum distance between any two vertices of
// those types). With rooted type paths this has a purely structural
// characterization: v and w are closest if and only if their Dewey numbers
// share a prefix exactly as long as the common label prefix of their type
// paths — which is what lets the join run as a merge over two
// document-ordered node sequences.
package closest

import (
	"strings"

	"xmorph/internal/xmltree"
)

// TypeLCP returns the number of leading path components shared by the two
// rooted type paths. The least common ancestor of a closest pair sits at
// exactly this Dewey depth.
func TypeLCP(t1, t2 string) int {
	p1 := strings.Split(t1, xmltree.TypeSep)
	p2 := strings.Split(t2, xmltree.TypeSep)
	n := len(p1)
	if len(p2) < n {
		n = len(p2)
	}
	l := 0
	for l < n && p1[l] == p2[l] {
		l++
	}
	return l
}

// IsClosest reports whether v and w are closest (Definition 2): their tree
// distance equals the type distance of their types.
func IsClosest(v, w *xmltree.Node) bool {
	return v.Distance(w) == xmltree.TypeDistance(v.Type, w.Type)
}

// Pair is one closest pair produced by a join. V is from the left (parent)
// sequence and W from the right (child) sequence.
type Pair struct {
	V *xmltree.Node
	W *xmltree.Node
}

// Join performs the closest join of Section VII between two node sequences
// in document order. Every node in vs must have the same type, likewise ws
// (the sequences come from the TypeToSequence table). It returns the
// closest pairs ordered by (V, W) document order.
//
// The join predicate is structural: a pair is closest when the Dewey
// numbers share a prefix of exactly TypeLCP(typeof vs, typeof ws)
// components, so the join is a single merge over the two sorted sequences
// with a cross product inside each shared-prefix group — O(input + output).
func Join(vs, ws []*xmltree.Node) []Pair {
	if len(vs) == 0 || len(ws) == 0 {
		return nil
	}
	l := TypeLCP(vs[0].Type, ws[0].Type)
	if vs[0].Type == ws[0].Type {
		// Same type: only reflexive pairs are closest (distance 0).
		// The sequences enumerate the same nodes.
		out := make([]Pair, 0, len(vs))
		for _, v := range vs {
			out = append(out, Pair{V: v, W: v})
		}
		return out
	}
	var out []Pair
	i, j := 0, 0
	for i < len(vs) && j < len(ws) {
		ki := prefixKey(vs[i].Dewey, l)
		kj := prefixKey(ws[j].Dewey, l)
		c := ki.Compare(kj)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Collect the group of vs and ws sharing this prefix and
			// emit the cross product.
			i2 := i
			for i2 < len(vs) && prefixKey(vs[i2].Dewey, l).Equal(ki) {
				i2++
			}
			j2 := j
			for j2 < len(ws) && prefixKey(ws[j2].Dewey, l).Equal(ki) {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					out = append(out, Pair{V: vs[a], W: ws[b]})
				}
			}
			i, j = i2, j2
		}
	}
	return out
}

// JoinWith streams the closest join, invoking fn for each pair grouped by
// V in document order. It allocates no pair slice; the renderer uses it to
// pipeline joins (Section VII's streaming evaluation).
func JoinWith(vs, ws []*xmltree.Node, fn func(v, w *xmltree.Node)) {
	if len(vs) == 0 || len(ws) == 0 {
		return
	}
	if vs[0].Type == ws[0].Type {
		for _, v := range vs {
			fn(v, v)
		}
		return
	}
	l := TypeLCP(vs[0].Type, ws[0].Type)
	i, j := 0, 0
	for i < len(vs) && j < len(ws) {
		ki := prefixKey(vs[i].Dewey, l)
		kj := prefixKey(ws[j].Dewey, l)
		c := ki.Compare(kj)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			i2 := i
			for i2 < len(vs) && prefixKey(vs[i2].Dewey, l).Equal(ki) {
				i2++
			}
			j2 := j
			for j2 < len(ws) && prefixKey(ws[j2].Dewey, l).Equal(ki) {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					fn(vs[a], ws[b])
				}
			}
			i, j = i2, j2
		}
	}
}

func prefixKey(d xmltree.Dewey, l int) xmltree.Dewey {
	if l > len(d) {
		l = len(d)
	}
	return d[:l]
}
