// Package closest implements the closest relation of Definition 2, the
// closest graph of Definition 1, and the Dewey-number closest join of
// Section VII.
//
// Two vertices are closest when their tree distance equals the type
// distance of their types (the minimum distance between any two vertices of
// those types). With rooted type paths this has a purely structural
// characterization: v and w are closest if and only if their Dewey numbers
// share a prefix exactly as long as the common label prefix of their type
// paths — which is what lets the join run as a merge over two
// document-ordered node sequences.
package closest

import (
	"strings"
	"sync/atomic"

	"xmorph/internal/xmltree"
)

// Recorder accumulates closest-join statistics: joins performed,
// candidate nodes scanned on both inputs, and closest pairs kept. A nil
// Recorder is a no-op that adds no allocations on the join hot path (a
// benchmark guards this), so the recording variants stay compiled into
// the renderer. Fields are updated atomically; the parallel renderer
// shares one recorder across its join workers.
type Recorder struct {
	Joins      int64
	Candidates int64
	Pairs      int64
}

// record folds one join's inputs and output into the totals.
func (r *Recorder) record(vs, ws, pairs int) {
	if r == nil {
		return
	}
	atomic.AddInt64(&r.Joins, 1)
	atomic.AddInt64(&r.Candidates, int64(vs+ws))
	atomic.AddInt64(&r.Pairs, int64(pairs))
}

// Snapshot returns a consistent-enough copy of the totals.
func (r *Recorder) Snapshot() (joins, candidates, pairs int64) {
	if r == nil {
		return 0, 0, 0
	}
	return atomic.LoadInt64(&r.Joins), atomic.LoadInt64(&r.Candidates), atomic.LoadInt64(&r.Pairs)
}

// TypeLCP returns the number of leading path components shared by the two
// rooted type paths. The least common ancestor of a closest pair sits at
// exactly this Dewey depth. It walks both strings component-wise without
// allocating — it runs once per closest join, on the render hot path.
func TypeLCP(t1, t2 string) int {
	l := 0
	for {
		s1, r1, more1 := cutComponent(t1)
		s2, r2, more2 := cutComponent(t2)
		if s1 != s2 {
			return l
		}
		l++
		if !more1 || !more2 {
			return l
		}
		t1, t2 = r1, r2
	}
}

// cutComponent splits off the leading type-path component; more reports
// whether a separator (and hence a rest) followed it.
func cutComponent(s string) (head, rest string, more bool) {
	if i := strings.Index(s, xmltree.TypeSep); i >= 0 {
		return s[:i], s[i+len(xmltree.TypeSep):], true
	}
	return s, "", false
}

// IsClosest reports whether v and w are closest (Definition 2): their tree
// distance equals the type distance of their types.
func IsClosest(v, w *xmltree.Node) bool {
	return v.Distance(w) == xmltree.TypeDistance(v.Type, w.Type)
}

// Pair is one closest pair produced by a join. V is from the left (parent)
// sequence and W from the right (child) sequence.
type Pair struct {
	V *xmltree.Node
	W *xmltree.Node
}

// Join performs the closest join of Section VII between two node sequences
// in document order. Every node in vs must have the same type, likewise ws
// (the sequences come from the TypeToSequence table). It returns the
// closest pairs ordered by (V, W) document order.
//
// The join predicate is structural: a pair is closest when the Dewey
// numbers share a prefix of exactly TypeLCP(typeof vs, typeof ws)
// components, so the join is a single merge over the two sorted sequences
// with a cross product inside each shared-prefix group — O(input + output).
func Join(vs, ws []*xmltree.Node) []Pair { return JoinRec(vs, ws, nil) }

// JoinRec is Join with optional statistics recording; rec may be nil.
func JoinRec(vs, ws []*xmltree.Node, rec *Recorder) []Pair {
	out := join(vs, ws)
	rec.record(len(vs), len(ws), len(out))
	return out
}

func join(vs, ws []*xmltree.Node) []Pair {
	if len(vs) == 0 || len(ws) == 0 {
		return nil
	}
	l := TypeLCP(vs[0].Type, ws[0].Type)
	if vs[0].Type == ws[0].Type {
		// Same type: only reflexive pairs are closest (distance 0).
		// The sequences enumerate the same nodes.
		out := make([]Pair, 0, len(vs))
		for _, v := range vs {
			out = append(out, Pair{V: v, W: v})
		}
		return out
	}
	var out []Pair
	i, j := 0, 0
	for i < len(vs) && j < len(ws) {
		ki := prefixKey(vs[i].Dewey, l)
		kj := prefixKey(ws[j].Dewey, l)
		c := ki.Compare(kj)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Collect the group of vs and ws sharing this prefix and
			// emit the cross product.
			i2 := i
			for i2 < len(vs) && prefixKey(vs[i2].Dewey, l).Equal(ki) {
				i2++
			}
			j2 := j
			for j2 < len(ws) && prefixKey(ws[j2].Dewey, l).Equal(ki) {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					out = append(out, Pair{V: vs[a], W: ws[b]})
				}
			}
			i, j = i2, j2
		}
	}
	return out
}

// JoinWith streams the closest join, invoking fn for each pair grouped by
// V in document order. It allocates no pair slice; the renderer uses it to
// pipeline joins (Section VII's streaming evaluation).
func JoinWith(vs, ws []*xmltree.Node, fn func(v, w *xmltree.Node)) {
	joinWith(vs, ws, fn)
}

// JoinWithRec is JoinWith with optional statistics recording; rec may be
// nil, in which case this is exactly JoinWith (no extra allocations).
func JoinWithRec(vs, ws []*xmltree.Node, rec *Recorder, fn func(v, w *xmltree.Node)) {
	if rec == nil {
		joinWith(vs, ws, fn)
		return
	}
	pairs := 0
	joinWith(vs, ws, func(v, w *xmltree.Node) {
		pairs++
		fn(v, w)
	})
	rec.record(len(vs), len(ws), pairs)
}

func joinWith(vs, ws []*xmltree.Node, fn func(v, w *xmltree.Node)) {
	if len(vs) == 0 || len(ws) == 0 {
		return
	}
	if vs[0].Type == ws[0].Type {
		for _, v := range vs {
			fn(v, v)
		}
		return
	}
	l := TypeLCP(vs[0].Type, ws[0].Type)
	i, j := 0, 0
	for i < len(vs) && j < len(ws) {
		ki := prefixKey(vs[i].Dewey, l)
		kj := prefixKey(ws[j].Dewey, l)
		c := ki.Compare(kj)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			i2 := i
			for i2 < len(vs) && prefixKey(vs[i2].Dewey, l).Equal(ki) {
				i2++
			}
			j2 := j
			for j2 < len(ws) && prefixKey(ws[j2].Dewey, l).Equal(ki) {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					fn(vs[a], ws[b])
				}
			}
			i, j = i2, j2
		}
	}
}

func prefixKey(d xmltree.Dewey, l int) xmltree.Dewey {
	if l > len(d) {
		l = len(d)
	}
	return d[:l]
}
