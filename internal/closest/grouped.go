package closest

import "xmorph/internal/xmltree"

// Grouped is a closest join grouped by its left (parent) input in a
// CSR-style layout: all closest partners live in one contiguous kids
// slice, and offsets — indexed by the parent node's Ord — bounds each
// parent's group. Compared to a map[*Node][]*Node it costs two
// allocations per join instead of one map plus one slice per parent, a
// lookup is an array index instead of a hash probe, and iterating a
// parent's partners walks contiguous memory. The renderer caches one
// Grouped per (parent type, child type) edge.
//
// The layout relies on Ord increasing along a type sequence, which both
// sources guarantee: xmltree.Document numbers vertices in document
// order, and store.Doc numbers each type sequence 0..n-1 as it loads.
type Grouped struct {
	// offsets has one entry per Ord in [0, maxParentOrd+1]; the partners
	// of a parent p are kids[offsets[p.Ord]:offsets[p.Ord+1]]. Ords
	// beyond the slice have no partners.
	offsets []int32
	// kids holds every closest partner, grouped by parent, each group in
	// document order.
	kids []*xmltree.Node
}

// GroupJoin runs the closest join of vs and ws (see Join) and groups the
// pairs by parent into a CSR index. rec may be nil.
func GroupJoin(vs, ws []*xmltree.Node, rec *Recorder) *Grouped {
	g := &Grouped{}
	last := -1
	JoinWithRec(vs, ws, rec, func(p, c *xmltree.Node) {
		// Pairs arrive grouped by parent in ascending Ord; open empty
		// groups for every Ord skipped since the previous parent.
		for last < p.Ord {
			g.offsets = append(g.offsets, int32(len(g.kids)))
			last++
		}
		g.kids = append(g.kids, c)
	})
	g.offsets = append(g.offsets, int32(len(g.kids)))
	return g
}

// Of returns v's closest partners in document order. The slice aliases
// the shared kids array; callers must not modify it. Lookup is O(1) and
// allocation-free.
func (g *Grouped) Of(v *xmltree.Node) []*xmltree.Node {
	if g == nil || v.Ord < 0 || v.Ord+1 >= len(g.offsets) {
		return nil
	}
	return g.kids[g.offsets[v.Ord]:g.offsets[v.Ord+1]]
}

// Pairs returns the total number of closest pairs in the join.
func (g *Grouped) Pairs() int { return len(g.kids) }
