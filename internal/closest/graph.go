package closest

import (
	"xmorph/internal/xmltree"
)

// Graph is a materialized closest graph (Definition 1): one vertex per
// element/attribute of a document and an undirected edge for every closest
// pair. Materialization is O(n^2) in the worst case; it exists for the
// analysis API and for tests — the renderer never materializes it and
// computes closest pairs on demand with Join (Section VII).
type Graph struct {
	vertices []*xmltree.Node
	// edges holds each undirected edge once, keyed by ordered Ord pair.
	edges map[[2]int]bool
}

// Build materializes the closest graph of a document by joining every pair
// of type sequences. Reflexive pairs (a vertex is closest to itself) are
// not stored as edges.
func Build(d *xmltree.Document) *Graph {
	return BuildTypes(d, d.Types())
}

// BuildTypes materializes the closest graph restricted to the given types
// — the sub-graph a type-subset transformation (Definition 8 relative to
// the retained types) is compared against.
func BuildTypes(d *xmltree.Document, types []string) *Graph {
	g := &Graph{edges: make(map[[2]int]bool)}
	for _, t := range types {
		g.vertices = append(g.vertices, d.NodesOfType(t)...)
	}
	for i, t1 := range types {
		for _, t2 := range types[i+1:] {
			for _, p := range Join(d.NodesOfType(t1), d.NodesOfType(t2)) {
				g.addEdge(p.V, p.W)
			}
		}
	}
	return g
}

func (g *Graph) addEdge(v, w *xmltree.Node) {
	if v == w {
		return
	}
	a, b := v.Ord, w.Ord
	if a > b {
		a, b = b, a
	}
	g.edges[[2]int{a, b}] = true
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the number of undirected closest edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Closest reports whether v and w are joined by a closest edge (or are the
// same vertex).
func (g *Graph) Closest(v, w *xmltree.Node) bool {
	if v == w {
		return true
	}
	a, b := v.Ord, w.Ord
	if a > b {
		a, b = b, a
	}
	return g.edges[[2]int{a, b}]
}

// Result classifies a transformation empirically, per Section V-A: let G be
// the source closest graph and H the closest graph of the transformed
// instance, with output vertices identified with the source vertices they
// were rendered from. The transform is non-additive when H ⊆ G, inclusive
// when G ⊆ H, and reversible when both hold.
//
// The counters quantify the loss — the refinement the paper's Section X
// asks for ("the transformation manufactures 30% new information"): how
// many source vertices and closest edges were dropped, and how many
// vertices and edges the output manufactures.
type Result struct {
	NonAdditive bool
	Inclusive   bool

	// SrcVertices / SrcEdges size the source closest graph.
	SrcVertices int
	SrcEdges    int
	// LostVertices / LostEdges count source entities with no counterpart
	// in the output.
	LostVertices int
	LostEdges    int
	// CreatedVertices / CreatedEdges count output entities with no
	// counterpart in the source (manufactured elements and new closest
	// relationships).
	CreatedVertices int
	CreatedEdges    int
}

// LossPct is the share (0-100) of source information dropped: lost
// vertices and edges over source vertices and edges.
func (r Result) LossPct() float64 {
	total := r.SrcVertices + r.SrcEdges
	if total == 0 {
		return 0
	}
	return 100 * float64(r.LostVertices+r.LostEdges) / float64(total)
}

// CreatedPct is the share (0-100) of the output's information that is new
// relative to the source.
func (r Result) CreatedPct() float64 {
	total := r.SrcVertices + r.SrcEdges + r.CreatedVertices + r.CreatedEdges
	if total == 0 {
		return 0
	}
	return 100 * float64(r.CreatedVertices+r.CreatedEdges) / float64(total)
}

// Reversible reports H ⊆ G ∧ G ⊆ H.
func (r Result) Reversible() bool { return r.NonAdditive && r.Inclusive }

// Compare relates the closest graph of a source document to the closest
// graph of a transformed instance rendered from it (Definition 5 with
// vertices identified through Node.Origin). Output vertices without an
// origin — manufactured by NEW — count as additions. Duplicated renderings
// of the same source vertex collapse.
func Compare(src, out *Graph) Result {
	r := Result{NonAdditive: true, Inclusive: true}

	srcV := make(map[int]bool, len(src.vertices))
	srcNodes := make(map[*xmltree.Node]bool, len(src.vertices))
	for _, v := range src.vertices {
		srcV[v.Ord] = true
		srcNodes[v] = true
	}

	r.SrcVertices = len(src.vertices)
	r.SrcEdges = len(src.edges)

	// Project the output graph onto source vertices. A vertex whose origin
	// chain does not land on a source vertex was manufactured (NEW).
	outV := make(map[int]bool, len(out.vertices))
	manufacturedSet := map[*xmltree.Node]bool{}
	for _, v := range out.vertices {
		o := v.Origin()
		if !srcNodes[o] {
			manufacturedSet[v] = true
			continue
		}
		outV[o.Ord] = true
	}
	if len(manufacturedSet) > 0 {
		r.NonAdditive = false
		r.CreatedVertices = len(manufacturedSet)
	}

	outE := make(map[[2]int]bool, len(out.edges))
	byOrd := make(map[int]*xmltree.Node, len(out.vertices))
	for _, v := range out.vertices {
		byOrd[v.Ord] = v
	}
	for e := range out.edges {
		v, w := byOrd[e[0]].Origin(), byOrd[e[1]].Origin()
		if !srcNodes[v] || !srcNodes[w] {
			// Edge touches a manufactured vertex: an addition.
			r.NonAdditive = false
			r.CreatedEdges++
			continue
		}
		a, b := v.Ord, w.Ord
		if a == b {
			continue // duplicates of one source vertex joined to each other
		}
		if a > b {
			a, b = b, a
		}
		outE[[2]int{a, b}] = true
	}

	// H ⊆ G: projected output vertices and edges all exist in the source.
	for o := range outV {
		if !srcV[o] {
			r.NonAdditive = false
			r.CreatedVertices++
		}
	}
	for e := range outE {
		if !src.edges[e] {
			r.NonAdditive = false
			r.CreatedEdges++
		}
	}

	// G ⊆ H: every source vertex and closest edge survives.
	for o := range srcV {
		if !outV[o] {
			r.Inclusive = false
			r.LostVertices++
		}
	}
	for e := range src.edges {
		if !outE[e] {
			r.Inclusive = false
			r.LostEdges++
		}
	}
	return r
}
