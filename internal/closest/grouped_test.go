package closest

import (
	"math/rand"
	"testing"

	"xmorph/internal/xmltree"
)

// groupedEqualsMap checks Grouped against the reference grouping built
// from the pair-list join.
func groupedEqualsMap(t *testing.T, vs, ws []*xmltree.Node) {
	t.Helper()
	g := GroupJoin(vs, ws, nil)
	want := map[*xmltree.Node][]*xmltree.Node{}
	for _, p := range Join(vs, ws) {
		want[p.V] = append(want[p.V], p.W)
	}
	total := 0
	for _, v := range vs {
		got := g.Of(v)
		exp := want[v]
		if len(got) != len(exp) {
			t.Fatalf("Of(%v) = %d partners, want %d", v.Dewey, len(got), len(exp))
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("Of(%v)[%d] = %v, want %v", v.Dewey, i, got[i].Dewey, exp[i].Dewey)
			}
		}
		total += len(got)
	}
	if g.Pairs() != total {
		t.Errorf("Pairs = %d, want %d", g.Pairs(), total)
	}
}

func TestGroupJoinMatchesJoin(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	types := d.Types()
	for _, t1 := range types {
		for _, t2 := range types {
			groupedEqualsMap(t, d.NodesOfType(t1), d.NodesOfType(t2))
		}
	}
}

func TestGroupJoinRandomDocs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r)
		types := d.Types()
		for _, t1 := range types {
			for _, t2 := range types {
				groupedEqualsMap(t, d.NodesOfType(t1), d.NodesOfType(t2))
			}
		}
	}
}

func TestGroupJoinEmptyInputs(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	books := d.NodesOfType("data.book")
	if g := GroupJoin(nil, books, nil); g.Pairs() != 0 {
		t.Error("empty left input produced pairs")
	}
	g := GroupJoin(books, nil, nil)
	if g.Pairs() != 0 {
		t.Error("empty right input produced pairs")
	}
	for _, b := range books {
		if got := g.Of(b); got != nil {
			t.Errorf("Of on empty join = %v", got)
		}
	}
	var nilG *Grouped
	if nilG.Of(books[0]) != nil {
		t.Error("nil Grouped must return no partners")
	}
}

// TestGroupJoinReflexive: a same-type join groups each node with itself.
func TestGroupJoinReflexive(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	books := d.NodesOfType("data.book")
	g := GroupJoin(books, books, nil)
	for _, b := range books {
		got := g.Of(b)
		if len(got) != 1 || got[0] != b {
			t.Errorf("reflexive Of(%v) = %v", b.Dewey, got)
		}
	}
}

// TestGroupJoinRecorder: grouping must feed the recorder exactly like
// the streaming join does.
func TestGroupJoinRecorder(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	books := d.NodesOfType("data.book")
	titles := d.NodesOfType("data.book.title")
	rec := &Recorder{}
	g := GroupJoin(books, titles, rec)
	joins, candidates, pairs := rec.Snapshot()
	if joins != 1 || candidates != int64(len(books)+len(titles)) || int(pairs) != g.Pairs() {
		t.Errorf("recorder = %d joins, %d candidates, %d pairs (grouped %d)",
			joins, candidates, pairs, g.Pairs())
	}
}

// TestGroupJoinOfZeroAllocs guards the CSR design point: looking up a
// parent's partners in a built join allocates nothing.
func TestGroupJoinOfZeroAllocs(t *testing.T) {
	d := xmltree.MustParse(fig1a)
	books := d.NodesOfType("data.book")
	titles := d.NodesOfType("data.book.title")
	g := GroupJoin(books, titles, nil)
	sink := 0
	allocs := testing.AllocsPerRun(200, func() {
		for _, b := range books {
			sink += len(g.Of(b))
		}
	})
	if allocs != 0 {
		t.Errorf("Grouped.Of allocates %v per run, want 0", allocs)
	}
}
