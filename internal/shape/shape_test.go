package shape

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"xmorph/internal/xmltree"
)

const fig1a = `<data>
  <book>
    <title>X</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
  <book>
    <title>Y</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
</data>`

const fig1c = `<data>
  <author>
    <name>V</name>
    <book>
      <title>X</title>
      <publisher><name>W</name></publisher>
    </book>
    <book>
      <title>Y</title>
      <publisher><name>W</name></publisher>
    </book>
  </author>
</data>`

// fig5e is an instance-(c)-shaped document rich enough to exhibit the 1..2
// cardinalities of Figure 5: author V has two books, author U has one.
const fig5e = `<data>
  <author>
    <name>V</name>
    <book>
      <title>X</title>
      <publisher><name>W</name></publisher>
    </book>
    <book>
      <title>Y</title>
      <publisher><name>W</name></publisher>
    </book>
  </author>
  <author>
    <name>U</name>
    <book>
      <title>Z</title>
      <publisher><name>P</name></publisher>
    </book>
  </author>
</data>`

func shapeOf(t *testing.T, src string) *Shape {
	t.Helper()
	s := FromDocument(xmltree.MustParse(src))
	if err := s.Validate(); err != nil {
		t.Fatalf("extracted shape invalid: %v", err)
	}
	return s
}

// TestFromDocumentFig5a checks the adorned shape of Figure 1(a) against
// Figure 5: data has 1..2 books, each book has exactly one title, author,
// and publisher.
func TestFromDocumentFig5a(t *testing.T) {
	s := shapeOf(t, fig1a)
	wantEdges := []struct {
		p, c string
		card Card
	}{
		{"data", "data.book", Card{2, 2}},
		{"data.book", "data.book.title", Card{1, 1}},
		{"data.book", "data.book.author", Card{1, 1}},
		{"data.book", "data.book.publisher", Card{1, 1}},
		{"data.book.author", "data.book.author.name", Card{1, 1}},
		{"data.book.publisher", "data.book.publisher.name", Card{1, 1}},
	}
	for _, e := range wantEdges {
		c, ok := s.Card(e.p, e.c)
		if !ok {
			t.Errorf("missing edge %s -> %s", e.p, e.c)
			continue
		}
		if c != e.card {
			t.Errorf("card(%s -> %s) = %s, want %s", e.p, e.c, c, e.card)
		}
	}
	if got := len(s.Types()); got != 7 {
		t.Errorf("types = %d, want 7", got)
	}
	if rs := s.Roots(); len(rs) != 1 || rs[0] != "data" {
		t.Errorf("roots = %v, want [data]", rs)
	}
}

// TestFromDocumentFig5e checks the adorned shape of instance (c): each
// author has 1..2 books.
func TestFromDocumentFig5e(t *testing.T) {
	s := shapeOf(t, fig5e)
	c, ok := s.Card("data.author", "data.author.book")
	if !ok || c != (Card{1, 2}) {
		t.Errorf("card(author -> book) = %v %v, want 1..2", c, ok)
	}
	c, ok = s.Card("data.author", "data.author.name")
	if !ok || c != (Card{1, 1}) {
		t.Errorf("card(author -> name) = %v, want 1..1", c)
	}
}

// TestOptionalChildZeroMin reproduces the paper's example: if the leftmost
// author has no name, the author -> name edge becomes 0..1.
func TestOptionalChildZeroMin(t *testing.T) {
	s := shapeOf(t, `<data>
	  <book><author/></book>
	  <book><author><name>V</name></author></book>
	</data>`)
	c, ok := s.Card("data.book.author", "data.book.author.name")
	if !ok || c != (Card{0, 1}) {
		t.Errorf("card(author -> name) = %v %v, want 0..1", c, ok)
	}
}

func TestCardMulSaturates(t *testing.T) {
	big := Card{Min: CardCap, Max: CardCap}
	got := big.Mul(Card{2, 3})
	if got.Min != CardCap || got.Max != CardCap {
		t.Errorf("saturating mul = %v", got)
	}
	if (Card{3, 4}).Mul(Card{5, 6}) != (Card{15, 24}) {
		t.Error("plain mul wrong")
	}
	if got := big.String(); got != "*..*" {
		t.Errorf("saturated String = %s", got)
	}
}

// TestPathCardTable1 reproduces Table I: the path cardinality between type
// pairs of adorned shape (e) (the shape of instance (c) of Figure 1).
func TestPathCardTable1(t *testing.T) {
	s := shapeOf(t, fig5e)
	const (
		data   = "data"
		author = "data.author"
		name   = "data.author.name"
		book   = "data.author.book"
		title  = "data.author.book.title"
		pub    = "data.author.book.publisher"
		pname  = "data.author.book.publisher.name"
	)
	tests := []struct {
		from, to string
		want     Card
	}{
		// Self paths and upward paths are 1..1.
		{author, author, One},
		{title, book, One},
		{pname, data, One},
		// Downward paths multiply cardinalities.
		{data, author, Card{2, 2}},
		{author, book, Card{1, 2}},
		{author, title, Card{1, 2}},
		{author, pname, Card{1, 2}},
		{data, pname, Card{2, 4}},
		// Sibling-ish paths: up to the LCA (1..1) then down.
		{name, book, Card{1, 2}},
		{name, title, Card{1, 2}},
		{title, pname, One},
		{pname, title, One},
		{book, title, One},
		{title, name, One},
	}
	for _, tt := range tests {
		got, ok := s.PathCard(tt.from, tt.to)
		if !ok {
			t.Errorf("PathCard(%s, %s): no path", tt.from, tt.to)
			continue
		}
		if got != tt.want {
			t.Errorf("PathCard(%s, %s) = %s, want %s", tt.from, tt.to, got, tt.want)
		}
	}
}

func TestPathCardUnknownType(t *testing.T) {
	s := shapeOf(t, fig1c)
	if _, ok := s.PathCard("data", "nope"); ok {
		t.Error("PathCard with unknown type should fail")
	}
}

func TestLCA(t *testing.T) {
	s := shapeOf(t, fig1c)
	if got := s.LCA("data.author.name", "data.author.book.title"); got != "data.author" {
		t.Errorf("LCA = %s, want data.author", got)
	}
	if got := s.LCA("data", "data.author.book"); got != "data" {
		t.Errorf("LCA with ancestor = %s, want data", got)
	}
	if got := s.LCA("data.author", "data.author"); got != "data.author" {
		t.Errorf("LCA with self = %s", got)
	}
}

func TestLCADifferentTrees(t *testing.T) {
	s := New()
	s.AddType("a")
	s.AddType("b")
	if got := s.LCA("a", "b"); got != "" {
		t.Errorf("LCA across trees = %q, want empty", got)
	}
	if _, ok := s.PathCard("a", "b"); ok {
		t.Error("PathCard across trees should report no path")
	}
}

func TestAddEdgeRejectsSecondParentAndCycles(t *testing.T) {
	s := New()
	if err := s.AddEdge("a", "b", One); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge("b", "c", One); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge("x", "b", One); err == nil {
		t.Error("second parent accepted")
	}
	if err := s.AddEdge("c", "a", One); err == nil {
		t.Error("cycle accepted")
	}
	if err := s.AddEdge("a", "a", One); err == nil {
		t.Error("self edge accepted")
	}
}

func TestReparentSimpleMove(t *testing.T) {
	// Figure 1(b) -> (a): MUTATE book [ publisher [ name ] ] moves
	// publisher below book.
	s := shapeOf(t, `<data>
	  <publisher>
	    <name>W</name>
	    <book><title>X</title></book>
	  </publisher>
	</data>`)
	if err := s.Reparent("data.publisher.book", "data.publisher", One); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("after reparent: %v", err)
	}
	if p, _ := s.Parent("data.publisher"); p != "data.publisher.book" {
		t.Errorf("publisher parent = %s, want book", p)
	}
	// book was spliced out to publisher's old parent (data).
	if p, _ := s.Parent("data.publisher.book"); p != "data" {
		t.Errorf("book parent = %s, want data", p)
	}
	// name followed publisher.
	if p, _ := s.Parent("data.publisher.name"); p != "data.publisher" {
		t.Errorf("name parent = %s, want publisher", p)
	}
}

func TestReparentSwap(t *testing.T) {
	// MUTATE name [ author ]: swap author and its name child.
	s := shapeOf(t, `<data><author><name>V</name><title>X</title></author></data>`)
	if err := s.Reparent("data.author.name", "data.author", One); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("after swap: %v", err)
	}
	if p, _ := s.Parent("data.author"); p != "data.author.name" {
		t.Errorf("author parent = %s, want name", p)
	}
	if p, _ := s.Parent("data.author.name"); p != "data" {
		t.Errorf("name parent = %s, want data", p)
	}
	// Other children stay below author.
	if p, _ := s.Parent("data.author.title"); p != "data.author" {
		t.Errorf("title parent = %s, want author", p)
	}
}

func TestRemoveSubtree(t *testing.T) {
	s := shapeOf(t, fig1c)
	s.RemoveSubtree("data.author.book")
	if s.HasType("data.author.book") || s.HasType("data.author.book.title") || s.HasType("data.author.book.publisher.name") {
		t.Error("subtree types survived removal")
	}
	if !s.HasType("data.author.name") {
		t.Error("sibling type removed")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDetachMakesRoot(t *testing.T) {
	s := shapeOf(t, fig1c)
	s.Detach("data.author.book")
	roots := s.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %v, want 2 roots", roots)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := shapeOf(t, fig1c)
	c := s.Clone()
	c.RemoveSubtree("data.author.book")
	if !s.HasType("data.author.book.title") {
		t.Error("clone mutation leaked into original")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPredicted(t *testing.T) {
	src := shapeOf(t, fig5e)
	// Target: author [ name book [ title ] ] over source types.
	target := New()
	mustAdd := func(p, c string) {
		t.Helper()
		if err := target.AddEdge(p, c, One); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("data.author", "data.author.name")
	mustAdd("data.author", "data.author.book")
	mustAdd("data.author.book", "data.author.book.title")
	p, err := Predicted(src, target)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := p.Card("data.author", "data.author.book"); c != (Card{1, 2}) {
		t.Errorf("predicted card author->book = %s, want 1..2", c)
	}
	if c, _ := p.Card("data.author.book", "data.author.book.title"); c != One {
		t.Errorf("predicted card book->title = %s, want 1..1", c)
	}
}

func TestPredictedRearranged(t *testing.T) {
	src := shapeOf(t, fig5e)
	// Target puts title below publisher name's sibling: author [ title ]
	// directly — the path author ~> title in the source has card 1..2.
	target := New()
	if err := target.AddEdge("data.author", "data.author.book.title", One); err != nil {
		t.Fatal(err)
	}
	p, err := Predicted(src, target)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := p.Card("data.author", "data.author.book.title"); c != (Card{1, 2}) {
		t.Errorf("predicted card = %s, want 1..2", c)
	}
}

func TestPredictedUnknownType(t *testing.T) {
	src := shapeOf(t, fig5e)
	target := New()
	if err := target.AddEdge("data.author", "made.up", One); err != nil {
		t.Fatal(err)
	}
	if _, err := Predicted(src, target); err == nil {
		t.Error("Predicted with unknown type should fail")
	}
}

func TestShapeString(t *testing.T) {
	s := shapeOf(t, fig5e)
	out := s.String()
	if !strings.Contains(out, "data.author.book 1..2") {
		t.Errorf("String missing cardinality:\n%s", out)
	}
	if !strings.HasPrefix(out, "data\n") {
		t.Errorf("String should start at root:\n%s", out)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := shapeOf(t, fig1c)
	// Corrupt: edge with missing card.
	delete(s.card, edgeKey{"data.author", "data.author.name"})
	if err := s.Validate(); err == nil {
		t.Error("Validate missed missing cardinality")
	}
}

// randomShapeDoc builds random documents for the property checks.
func randomShapeDoc(r *rand.Rand) *xmltree.Document {
	labels := []string{"p", "q", "r", "s"}
	b := xmltree.NewBuilder().Elem("top")
	depth := 0
	for i := 0; i < 2+r.Intn(30); i++ {
		if depth > 0 && r.Intn(3) == 0 {
			b.End()
			depth--
			continue
		}
		b.Elem(labels[r.Intn(len(labels))])
		if r.Intn(2) == 0 {
			b.End()
		} else {
			depth++
		}
	}
	for ; depth >= 0; depth-- {
		b.End()
	}
	return b.MustDocument()
}

// TestPropertyExtractedShapesValid: FromDocument always yields a valid
// forest whose types equal the document's types (DESIGN.md's promised
// property).
func TestPropertyExtractedShapesValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomShapeDoc(r))
	}}
	if err := quick.Check(func(d *xmltree.Document) bool {
		s := FromDocument(d)
		if s.Validate() != nil {
			return false
		}
		return s.NumTypes() == len(d.Types())
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyPathCardLaws: pathCard(t,t) = 1..1; upward paths are 1..1;
// path cardinality composes multiplicatively down any root-to-leaf chain.
func TestPropertyPathCardLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomShapeDoc(r))
	}}
	if err := quick.Check(func(d *xmltree.Document) bool {
		s := FromDocument(d)
		for _, t1 := range s.Types() {
			if c, ok := s.PathCard(t1, t1); !ok || c != One {
				return false
			}
			// Upward to any ancestor: 1..1.
			for p, ok := s.Parent(t1); ok; p, ok = s.Parent(p) {
				if c, ok2 := s.PathCard(t1, p); !ok2 || c != One {
					return false
				}
			}
			// Downward decomposition: pathCard(root, t) equals the product
			// of edge cards along the chain.
			chainCard := One
			var chain []string
			for x := t1; ; {
				p, ok := s.Parent(x)
				if !ok {
					break
				}
				chain = append([]string{x}, chain...)
				x = p
			}
			prev := ""
			for i, x := range chain {
				if i == 0 {
					prev, _ = func() (string, bool) { return s.Parent(x) }()
				}
				ec, _ := s.Card(prev, x)
				chainCard = chainCard.Mul(ec)
				prev = x
			}
			if len(chain) > 0 {
				root := chain[0]
				rp, _ := s.Parent(root)
				if got, ok := s.PathCard(rp, t1); ok && got != chainCard {
					return false
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
