// Package shape implements adorned shapes (Definition 3 of the paper): a
// forest of data types with parent/child edges labelled by cardinality
// ranges, the path-cardinality computation (Definition 6), and predicted
// adorned shapes (Definition 7) used by the information-loss analysis.
//
// A shape is a DataGuide adorned with cardinalities: an edge t -> u with
// cardinality n..m records that every node of type t has at least n and at
// most m children of type u.
package shape

import (
	"fmt"
	"sort"
	"strings"

	"xmorph/internal/xmltree"
)

// CardCap saturates cardinality arithmetic; path cardinalities are products
// of edge cardinalities and can otherwise overflow on deep shapes.
const CardCap = 1 << 30

// Card is a cardinality range n..m.
type Card struct {
	Min int
	Max int
}

// One is the 1..1 cardinality, the multiplicative identity of Mul.
var One = Card{Min: 1, Max: 1}

// Mul composes cardinalities along a path: minima and maxima multiply,
// saturating at CardCap.
func (c Card) Mul(o Card) Card {
	return Card{Min: satMul(c.Min, o.Min), Max: satMul(c.Max, o.Max)}
}

func satMul(a, b int) int {
	if a >= CardCap || b >= CardCap {
		return CardCap
	}
	p := a * b
	if p >= CardCap {
		return CardCap
	}
	return p
}

// String renders the range in the paper's n..m notation.
func (c Card) String() string {
	min := fmt.Sprintf("%d", c.Min)
	max := fmt.Sprintf("%d", c.Max)
	if c.Min >= CardCap {
		min = "*"
	}
	if c.Max >= CardCap {
		max = "*"
	}
	return min + ".." + max
}

type edgeKey struct{ parent, child string }

// Shape is an adorned shape: a forest over type names with cardinality-
// labelled edges. The zero value is not usable; call New.
type Shape struct {
	types    map[string]bool
	parent   map[string]string // child -> parent; roots are absent
	children map[string][]string
	card     map[edgeKey]Card
}

// New returns an empty shape.
func New() *Shape {
	return &Shape{
		types:    make(map[string]bool),
		parent:   make(map[string]string),
		children: make(map[string][]string),
		card:     make(map[edgeKey]Card),
	}
}

// FromDocument extracts the adorned shape of a document: one type per
// distinct rooted type path, an edge for each parent/child type pair, and
// for each edge the min and max number of child-type children over all
// parent-type nodes.
func FromDocument(d *xmltree.Document) *Shape {
	s := New()
	if d.Root() == nil {
		return s
	}
	for _, t := range d.Types() {
		s.AddType(t)
	}
	// Count, per parent node, children of each child type. Child types are
	// kept in first-encounter document order so that identity transforms
	// render siblings in a familiar order (the model itself is unordered).
	for _, t := range d.Types() {
		parents := d.NodesOfType(t)
		var childTypes []string
		seen := map[string]bool{}
		for _, p := range parents {
			for _, c := range p.Children {
				if !seen[c.Type] {
					seen[c.Type] = true
					childTypes = append(childTypes, c.Type)
				}
			}
		}
		for _, ct := range childTypes {
			min, max := -1, 0
			for _, p := range parents {
				n := 0
				for _, c := range p.Children {
					if c.Type == ct {
						n++
					}
				}
				if min < 0 || n < min {
					min = n
				}
				if n > max {
					max = n
				}
			}
			if min < 0 {
				min = 0
			}
			s.setEdge(t, ct, Card{Min: min, Max: max})
		}
	}
	return s
}

// AddType ensures t is a type of the shape (as a root until an edge is
// added).
func (s *Shape) AddType(t string) {
	s.types[t] = true
}

// AddEdge adds (or replaces) the edge parent -> child with the given
// cardinality. Both endpoints are added as types. It returns an error if
// the edge would give child a second parent or create a cycle.
func (s *Shape) AddEdge(parent, child string, c Card) error {
	if parent == child {
		return fmt.Errorf("shape: self edge on %s", parent)
	}
	if p, ok := s.parent[child]; ok && p != parent {
		return fmt.Errorf("shape: type %s already has parent %s", child, p)
	}
	// Cycle check: parent must not be a descendant of child.
	for a := parent; a != ""; a = s.parent[a] {
		if a == child {
			return fmt.Errorf("shape: edge %s -> %s would create a cycle", parent, child)
		}
	}
	s.setEdge(parent, child, c)
	return nil
}

func (s *Shape) setEdge(parent, child string, c Card) {
	s.types[parent] = true
	s.types[child] = true
	if _, ok := s.parent[child]; !ok {
		s.parent[child] = parent
		s.children[parent] = append(s.children[parent], child)
	}
	s.card[edgeKey{parent, child}] = c
}

// RemoveSubtree deletes t and every descendant type from the shape.
func (s *Shape) RemoveSubtree(t string) {
	for _, c := range append([]string(nil), s.children[t]...) {
		s.RemoveSubtree(c)
	}
	s.Detach(t)
	delete(s.types, t)
	delete(s.children, t)
}

// Detach removes t's incoming edge, making it a root. It is a no-op for
// roots and unknown types.
func (s *Shape) Detach(t string) {
	p, ok := s.parent[t]
	if !ok {
		return
	}
	delete(s.parent, t)
	delete(s.card, edgeKey{p, t})
	kids := s.children[p]
	for i, k := range kids {
		if k == t {
			s.children[p] = append(kids[:i:i], kids[i+1:]...)
			break
		}
	}
}

// Reparent moves type u (with its subtree) below type t, implementing the
// MUTATE re-parenting rule documented in DESIGN.md: if t lies inside u's
// subtree, t is first spliced out to u's old parent so the move cannot
// create a cycle.
func (s *Shape) Reparent(t, u string, c Card) error {
	if !s.types[t] || !s.types[u] {
		return fmt.Errorf("shape: reparent with unknown type (%s -> %s)", t, u)
	}
	if t == u {
		return fmt.Errorf("shape: cannot reparent %s below itself", u)
	}
	if s.isAncestor(u, t) {
		// Splice t out to u's old parent (or make it a root).
		oldParent, hadParent := s.parent[u]
		s.Detach(t)
		if hadParent {
			s.setEdge(oldParent, t, One)
		}
	}
	s.Detach(u)
	s.setEdge(t, u, c)
	return nil
}

// isAncestor reports whether a is a proper ancestor of b.
func (s *Shape) isAncestor(a, b string) bool {
	for p, ok := s.parent[b]; ok; p, ok = s.parent[p] {
		if p == a {
			return true
		}
	}
	return false
}

// HasType reports whether t is a type of the shape.
func (s *Shape) HasType(t string) bool { return s.types[t] }

// Types returns the sorted set of types (Definition 3's types(S)).
func (s *Shape) Types() []string {
	ts := make([]string, 0, len(s.types))
	for t := range s.types {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	return ts
}

// NumTypes returns the number of types.
func (s *Shape) NumTypes() int { return len(s.types) }

// Roots returns the sorted types with no incoming edge (roots(S)).
func (s *Shape) Roots() []string {
	var rs []string
	for t := range s.types {
		if _, ok := s.parent[t]; !ok {
			rs = append(rs, t)
		}
	}
	sort.Strings(rs)
	return rs
}

// Children returns the child types of t in insertion (document) order.
func (s *Shape) Children(t string) []string { return s.children[t] }

// Parent returns t's parent type and whether it has one.
func (s *Shape) Parent(t string) (string, bool) {
	p, ok := s.parent[t]
	return p, ok
}

// Card returns the cardinality on the edge parent -> child, and whether
// that edge exists.
func (s *Shape) Card(parent, child string) (Card, bool) {
	c, ok := s.card[edgeKey{parent, child}]
	return c, ok
}

// Edge is a cardinality-labelled shape edge.
type Edge struct {
	Parent string
	Child  string
	Card   Card
}

// Edges returns all edges sorted by (parent, child).
func (s *Shape) Edges() []Edge {
	es := make([]Edge, 0, len(s.card))
	for k, c := range s.card {
		es = append(es, Edge{Parent: k.parent, Child: k.child, Card: c})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Parent != es[j].Parent {
			return es[i].Parent < es[j].Parent
		}
		return es[i].Child < es[j].Child
	})
	return es
}

// Descendants returns t and every type below it, in preorder.
func (s *Shape) Descendants(t string) []string {
	var out []string
	var walk func(string)
	walk = func(x string) {
		out = append(out, x)
		for _, c := range s.children[x] {
			walk(c)
		}
	}
	if s.types[t] {
		walk(t)
	}
	return out
}

// LCA returns the least common ancestor of t and u in the forest, or ""
// when they are in different trees. A type is its own ancestor. The walk
// is allocation-free: the information-loss analysis calls this for every
// ordered pair of types.
func (s *Shape) LCA(t, u string) string {
	dt, du := s.depth(t), s.depth(u)
	for dt > du {
		t = s.parent[t]
		dt--
	}
	for du > dt {
		u = s.parent[u]
		du--
	}
	for t != u {
		pt, okT := s.parent[t]
		pu, okU := s.parent[u]
		if !okT || !okU {
			return ""
		}
		t, u = pt, pu
	}
	return t
}

// depth counts edges from t up to its root.
func (s *Shape) depth(t string) int {
	d := 0
	for {
		p, ok := s.parent[t]
		if !ok {
			return d
		}
		t = p
		d++
	}
}

// PathCard implements Definition 6: the cardinality of the path between
// types t and s, the product of edge cardinalities on the downward path
// from their least common ancestor to s. The upward path from t
// contributes 1..1. If t and s are in different trees the second return is
// false.
func (s *Shape) PathCard(t, target string) (Card, bool) {
	if !s.types[t] || !s.types[target] {
		return Card{}, false
	}
	lca := s.LCA(t, target)
	if lca == "" {
		return Card{}, false
	}
	c := One
	for x := target; x != lca; {
		p := s.parent[x]
		c = c.Mul(s.card[edgeKey{p, x}])
		x = p
	}
	return c, true
}

// Clone returns a deep copy of the shape.
func (s *Shape) Clone() *Shape {
	c := New()
	for t := range s.types {
		c.types[t] = true
	}
	for k, v := range s.parent {
		c.parent[k] = v
	}
	for k, v := range s.children {
		c.children[k] = append([]string(nil), v...)
	}
	for k, v := range s.card {
		c.card[k] = v
	}
	return c
}

// Validate checks the forest conditions: every non-root has exactly one
// recorded parent, parent/children maps agree, and there are no cycles.
func (s *Shape) Validate() error {
	for child, p := range s.parent {
		if !s.types[child] || !s.types[p] {
			return fmt.Errorf("shape: edge %s -> %s references unknown type", p, child)
		}
		found := false
		for _, c := range s.children[p] {
			if c == child {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("shape: edge %s -> %s missing from children index", p, child)
		}
		if _, ok := s.card[edgeKey{p, child}]; !ok {
			return fmt.Errorf("shape: edge %s -> %s missing cardinality", p, child)
		}
	}
	for p, kids := range s.children {
		for _, c := range kids {
			if s.parent[c] != p {
				return fmt.Errorf("shape: children index lists %s under %s but parent is %s", c, p, s.parent[c])
			}
		}
	}
	// Cycle detection: walking up from any type must terminate.
	for t := range s.types {
		seen := map[string]bool{}
		for a := t; ; {
			if seen[a] {
				return fmt.Errorf("shape: cycle through %s", a)
			}
			seen[a] = true
			p, ok := s.parent[a]
			if !ok {
				break
			}
			a = p
		}
	}
	return nil
}

// String renders the shape as an indented forest with cardinalities, e.g.
//
//	data
//	  data.author 1..1
//	    data.author.name 1..1
func (s *Shape) String() string {
	var b strings.Builder
	var walk func(t string, depth int)
	walk = func(t string, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(t)
		if p, ok := s.parent[t]; ok {
			b.WriteString(" ")
			b.WriteString(s.card[edgeKey{p, t}].String())
		}
		b.WriteString("\n")
		for _, c := range s.children[t] {
			walk(c, depth+1)
		}
	}
	for _, r := range s.Roots() {
		walk(r, 0)
	}
	return b.String()
}
