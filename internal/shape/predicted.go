package shape

import "fmt"

// Predicted computes the predicted adorned shape of Definition 7: given the
// adorned shape S of the source data and a target arrangement R of source
// types (cardinalities in R are ignored), each target edge (t, s) is
// adorned with pathCard(S, t, s) — the cardinality the edge is predicted to
// have after a closeness-preserving transform.
//
// Every type of R must be a type of S; transformations introduce new or
// cloned types, and callers map those back to source types (or exclude
// them) before prediction.
func Predicted(src, target *Shape) (*Shape, error) {
	p := New()
	for _, t := range target.Types() {
		if !src.HasType(t) {
			return nil, fmt.Errorf("shape: predicted: type %s not in source shape", t)
		}
		p.AddType(t)
	}
	for _, e := range target.Edges() {
		c, ok := src.PathCard(e.Parent, e.Child)
		if !ok {
			return nil, fmt.Errorf("shape: predicted: no path between %s and %s in source", e.Parent, e.Child)
		}
		if err := p.AddEdge(e.Parent, e.Child, c); err != nil {
			return nil, err
		}
	}
	return p, nil
}
