// Package update implements the XMorph incremental-update language — the
// "mapping XUpdate operations to updates of the transformation" mitigation
// Section VIII sketches, with FLUX ("Functional Updates for XML") as the
// blueprint for a small, statically-analyzable update language:
//
//	insert <xml-fragment> into   <path> ;   append as last child
//	insert <xml-fragment> before <path> ;   new preceding sibling
//	insert <xml-fragment> after  <path> ;   new following sibling
//	delete <path> ;
//	replace <path> with <xml-fragment> ;
//
// A <path> is a rooted type path in the paper's default typing scheme —
// dot-separated element names from the document root, "@"-prefixed for
// attributes ("dblp.article.author") — and resolves to the node SET of
// that type, exactly as the store's Dewey-ordered type sequences do: one
// statement edits every instance of the path's type. Statements are
// separated by ";" and apply sequentially.
//
// The package only parses and prints; applying a script against shredded
// data is store.Update, and the shape-delta analysis over the result is
// Compare (delta.go).
package update

import (
	"encoding/xml"
	"fmt"
	"strings"

	"xmorph/internal/xmltree"
)

// Kind discriminates the three statement forms.
type Kind int

const (
	// Insert adds a fragment relative to every node of the path's type.
	Insert Kind = iota
	// Delete removes every node of the path's type, with its subtree.
	Delete
	// Replace substitutes the fragment for every node of the path's type.
	Replace
)

// Pos places an inserted fragment relative to the path's nodes.
type Pos int

const (
	// Into appends the fragment as the target's last child.
	Into Pos = iota
	// Before inserts the fragment as a preceding sibling of the target.
	Before
	// After inserts the fragment as a following sibling of the target.
	After
)

// String renders the position keyword as it appears in the language.
func (p Pos) String() string {
	switch p {
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return "into"
	}
}

// Op is one parsed update statement. Ops are comparable (all fields are
// scalars), so parse → print → parse round-trips are checkable with ==.
type Op struct {
	Kind Kind
	// Path is the statement's rooted type path ("dblp.article.author").
	Path string
	// Pos places the fragment for Insert ops; zero otherwise.
	Pos Pos
	// XML is the fragment source text for Insert and Replace, trimmed of
	// surrounding whitespace; empty for Delete.
	XML string
}

// String prints the statement in canonical form (no trailing ";").
func (o Op) String() string {
	switch o.Kind {
	case Insert:
		return fmt.Sprintf("insert %s %s %s", o.XML, o.Pos, o.Path)
	case Delete:
		return "delete " + o.Path
	default:
		return fmt.Sprintf("replace %s with %s", o.Path, o.XML)
	}
}

// Format prints a whole script in canonical form, one statement per line.
func Format(ops []Op) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ;\n")
}

// SyntaxError reports a malformed update script with its byte offset.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("update: syntax error at offset %d: %s", e.Offset, e.Msg)
}

// Parse parses an update script: one or more ";"-separated statements.
// Keywords are case-insensitive; fragments are single well-formed XML
// elements, delimited by XML structure (a ";" inside a fragment does not
// terminate the statement).
func Parse(src string) ([]Op, error) {
	p := &parser{src: src}
	var ops []Op
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, p.errf("empty update script")
	}
	for p.pos < len(p.src) {
		op, err := p.statement()
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
		p.skipSpace()
		if p.pos < len(p.src) {
			if p.src[p.pos] != ';' {
				return nil, p.errf("expected ';' between statements")
			}
			p.pos++
			p.skipSpace()
		}
	}
	return ops, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// word consumes the next whitespace-delimited token (";" also delimits).
func (p *parser) word() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) statement() (Op, error) {
	kwAt := p.pos
	switch kw := strings.ToLower(p.word()); kw {
	case "insert":
		frag, err := p.fragment()
		if err != nil {
			return Op{}, err
		}
		posAt := p.pos
		var pos Pos
		switch strings.ToLower(p.word()) {
		case "into":
			pos = Into
		case "before":
			pos = Before
		case "after":
			pos = After
		default:
			p.pos = posAt
			return Op{}, p.errf("expected 'into', 'before', or 'after' after the fragment")
		}
		path, err := p.path()
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: Insert, Path: path, Pos: pos, XML: frag}, nil
	case "delete":
		path, err := p.path()
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: Delete, Path: path}, nil
	case "replace":
		path, err := p.path()
		if err != nil {
			return Op{}, err
		}
		withAt := p.pos
		if strings.ToLower(p.word()) != "with" {
			p.pos = withAt
			return Op{}, p.errf("expected 'with' after the path")
		}
		frag, err := p.fragment()
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: Replace, Path: path, XML: frag}, nil
	default:
		p.pos = kwAt
		return Op{}, p.errf("expected 'insert', 'delete', or 'replace', got %q", kw)
	}
}

// path consumes and validates a rooted type path.
func (p *parser) path() (string, error) {
	at := p.pos
	w := p.word()
	if w == "" {
		return "", p.errf("expected a rooted type path")
	}
	segs := strings.Split(w, xmltree.TypeSep)
	for i, s := range segs {
		name := strings.TrimPrefix(s, "@")
		if name == "" || strings.ContainsAny(name, "@<>\"'/=&") {
			p.pos = at
			return "", p.errf("bad path segment %q in %q", s, w)
		}
		if i == 0 && strings.HasPrefix(s, "@") {
			p.pos = at
			return "", p.errf("path root %q cannot be an attribute", s)
		}
	}
	return w, nil
}

// fragment consumes one well-formed XML element, using the XML tokenizer
// to find its end (so ";" and keywords inside the fragment are inert).
func (p *parser) fragment() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return "", p.errf("expected an XML fragment")
	}
	dec := xml.NewDecoder(strings.NewReader(p.src[p.pos:]))
	depth, started := 0, false
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", p.errf("bad XML fragment: %v", err)
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
			started = true
		case xml.EndElement:
			depth--
		case xml.CharData:
			if !started && strings.TrimSpace(string(tok.(xml.CharData))) != "" {
				return "", p.errf("bad XML fragment: text before the root element")
			}
		}
		if started && depth == 0 {
			break
		}
	}
	end := p.pos + int(dec.InputOffset())
	frag := strings.TrimSpace(p.src[p.pos:end])
	// Re-validate as a document: a single root with balanced structure.
	if _, err := xmltree.ParseString(frag); err != nil {
		return "", p.errf("bad XML fragment: %v", err)
	}
	p.pos = end
	return frag, nil
}
