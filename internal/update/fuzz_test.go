package update

import "testing"

// FuzzUpdateParse asserts that any input either fails to parse or
// round-trips: Parse → Format → Parse yields the same statements, and a
// second Format is a fixpoint.
func FuzzUpdateParse(f *testing.F) {
	f.Add("delete dblp.article.author")
	f.Add("insert <note/> after a.b")
	f.Add("insert <a x=\"1\">t</a> into r ; delete r.a")
	f.Add("replace a.b with <b><c/></b>")
	f.Add("insert <c>semi; colon</c> before a.b ;")
	f.Add("DELETE a.@id")
	f.Fuzz(func(t *testing.T, src string) {
		ops, err := Parse(src)
		if err != nil {
			return
		}
		if len(ops) == 0 {
			t.Fatalf("Parse(%q) returned no ops and no error", src)
		}
		printed := Format(ops)
		ops2, err := Parse(printed)
		if err != nil {
			t.Fatalf("Parse(Format(Parse(%q))) failed: %v\nprinted: %q", src, err, printed)
		}
		if len(ops) != len(ops2) {
			t.Fatalf("round trip changed op count: %d -> %d\nsrc: %q\nprinted: %q",
				len(ops), len(ops2), src, printed)
		}
		for i := range ops {
			if ops[i] != ops2[i] {
				t.Fatalf("round trip changed op %d: %+v -> %+v\nsrc: %q", i, ops[i], ops2[i], src)
			}
		}
		if again := Format(ops2); again != printed {
			t.Fatalf("Format is not a fixpoint:\n%q\n%q", printed, again)
		}
	})
}
