package update

import (
	"fmt"
	"sort"
	"strings"

	"xmorph/internal/shape"
)

// DeltaKind classifies how an update moved a document's shape, in the
// query-compatibility sense: a narrowed shape satisfies every guard the
// old shape satisfied (types only disappeared, cardinalities only
// tightened), a widened shape may satisfy guards the old one rejected,
// and a mixed delta moves in both directions at once.
type DeltaKind int

const (
	// Unchanged: the new shape is identical, including sibling order.
	Unchanged DeltaKind = iota
	// Narrowed: types removed and/or cardinalities tightened only.
	Narrowed
	// Widened: types added and/or cardinalities loosened only.
	Widened
	// Mixed: both directions, or a sibling-order change.
	Mixed
)

// String renders the delta kind for logs and API responses.
func (k DeltaKind) String() string {
	switch k {
	case Narrowed:
		return "narrowed"
	case Widened:
		return "widened"
	case Mixed:
		return "mixed"
	default:
		return "unchanged"
	}
}

// Delta summarizes the shape difference an update produced.
type Delta struct {
	Kind DeltaKind
	// TypesAdded and TypesRemoved list rooted type paths present in only
	// one of the two shapes, sorted.
	TypesAdded   []string
	TypesRemoved []string
	// EdgesNarrowed and EdgesWidened count surviving parent→child edges
	// whose cardinality tightened (min up and/or max down) or loosened.
	EdgesNarrowed int
	EdgesWidened  int
	// Reordered reports a sibling-order change among surviving children
	// of a surviving parent — order-only changes classify as Mixed
	// because rendered output depends on shape sibling order.
	Reordered bool
}

// String renders a compact human-readable summary of the delta.
func (d Delta) String() string {
	if d.Kind == Unchanged {
		return "unchanged"
	}
	var b strings.Builder
	b.WriteString(d.Kind.String())
	if len(d.TypesAdded) > 0 {
		fmt.Fprintf(&b, " +%d types", len(d.TypesAdded))
	}
	if len(d.TypesRemoved) > 0 {
		fmt.Fprintf(&b, " -%d types", len(d.TypesRemoved))
	}
	if d.EdgesWidened > 0 {
		fmt.Fprintf(&b, " %d edges widened", d.EdgesWidened)
	}
	if d.EdgesNarrowed > 0 {
		fmt.Fprintf(&b, " %d edges narrowed", d.EdgesNarrowed)
	}
	if d.Reordered {
		b.WriteString(" (siblings reordered)")
	}
	return b.String()
}

// Compare computes the shape delta from old to new. Both shapes must be
// non-nil. Edge existence follows type existence (every inferred type
// has exactly one parent edge), so edge adds/removes are counted through
// TypesAdded/TypesRemoved rather than separately.
func Compare(old, new *shape.Shape) Delta {
	var d Delta
	for _, t := range new.Types() {
		if !old.HasType(t) {
			d.TypesAdded = append(d.TypesAdded, t)
		}
	}
	for _, t := range old.Types() {
		if !new.HasType(t) {
			d.TypesRemoved = append(d.TypesRemoved, t)
		}
	}
	sort.Strings(d.TypesAdded)
	sort.Strings(d.TypesRemoved)

	for _, p := range old.Types() {
		if !new.HasType(p) {
			continue
		}
		// Compare cardinalities of surviving edges.
		for _, c := range old.Children(p) {
			if !new.HasType(c) {
				continue
			}
			oc, ok1 := old.Card(p, c)
			nc, ok2 := new.Card(p, c)
			if !ok1 || !ok2 {
				continue
			}
			narrowed := nc.Min > oc.Min || nc.Max < oc.Max
			widened := nc.Min < oc.Min || nc.Max > oc.Max
			if narrowed {
				d.EdgesNarrowed++
			}
			if widened {
				d.EdgesWidened++
			}
		}
		// Compare the order of surviving children: project both child
		// lists onto the common set and require identical sequences.
		oldKids := surviving(old.Children(p), new)
		newKids := surviving(new.Children(p), old)
		if len(oldKids) == len(newKids) {
			for i := range oldKids {
				if oldKids[i] != newKids[i] {
					d.Reordered = true
					break
				}
			}
		} else {
			// A child present in both shapes but under different parents
			// (reparented type): treat as a reorder for safety.
			d.Reordered = true
		}
	}

	widening := len(d.TypesAdded) > 0 || d.EdgesWidened > 0
	narrowing := len(d.TypesRemoved) > 0 || d.EdgesNarrowed > 0
	switch {
	case d.Reordered, widening && narrowing:
		d.Kind = Mixed
	case widening:
		d.Kind = Widened
	case narrowing:
		d.Kind = Narrowed
	default:
		d.Kind = Unchanged
	}
	return d
}

// surviving filters kids to those that exist as types in other.
func surviving(kids []string, other *shape.Shape) []string {
	out := kids[:0:0]
	for _, k := range kids {
		if other.HasType(k) {
			out = append(out, k)
		}
	}
	return out
}
