package update

import (
	"errors"
	"strings"
	"testing"

	"xmorph/internal/shape"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		want []Op
	}{
		{
			"delete dblp.article.author",
			[]Op{{Kind: Delete, Path: "dblp.article.author"}},
		},
		{
			"insert <author><name>Kim</name></author> into dblp.article",
			[]Op{{Kind: Insert, Path: "dblp.article", Pos: Into,
				XML: "<author><name>Kim</name></author>"}},
		},
		{
			"INSERT <note/> BEFORE dblp.article.title",
			[]Op{{Kind: Insert, Path: "dblp.article.title", Pos: Before, XML: "<note/>"}},
		},
		{
			"insert <note x=\"1\"/> after dblp.article.title",
			[]Op{{Kind: Insert, Path: "dblp.article.title", Pos: After,
				XML: "<note x=\"1\"/>"}},
		},
		{
			"replace dblp.article.year with <year>2012</year>",
			[]Op{{Kind: Replace, Path: "dblp.article.year", XML: "<year>2012</year>"}},
		},
		{
			"delete a.b ;\n insert <c>x; y</c> into a ;",
			[]Op{
				{Kind: Delete, Path: "a.b"},
				{Kind: Insert, Path: "a", Pos: Into, XML: "<c>x; y</c>"},
			},
		},
		{
			"delete a.@id",
			[]Op{{Kind: Delete, Path: "a.@id"}},
		},
	}
	for _, c := range cases {
		got, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("Parse(%q) = %d ops, want %d", c.src, len(got), len(c.want))
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Parse(%q)[%d] = %+v, want %+v", c.src, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   \n",
		"drop a.b",
		"delete",
		"delete @id",                // attribute cannot be the root
		"delete a..b",               // empty segment
		"insert <a/>",               // missing position
		"insert <a/> sideways a.b",  // bad position keyword
		"insert <a></b> into a",     // malformed fragment
		"insert hello into a",       // not a fragment
		"replace a.b with",          // missing fragment
		"replace a.b <x/>",          // missing 'with'
		"delete a.b extra",          // trailing junk
		"delete a.b , delete a.c",   // wrong separator
		"insert <a/><b/> into a.b",  // two roots: second becomes junk
		"insert text <a/> into a.b", // text before the root element
	}
	for _, src := range bad {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q): expected error", src)
			continue
		}
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Errorf("Parse(%q): error %v is not a *SyntaxError", src, err)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	src := `insert <author><name>A</name></author> into dblp.article ;
delete dblp.article.@key ;
replace dblp.article.title with <title>New; Title</title>`
	ops, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Format(ops)
	ops2, err := Parse(printed)
	if err != nil {
		t.Fatalf("Parse(Format(ops)): %v\n%s", err, printed)
	}
	if len(ops) != len(ops2) {
		t.Fatalf("round trip: %d ops -> %d ops", len(ops), len(ops2))
	}
	for i := range ops {
		if ops[i] != ops2[i] {
			t.Errorf("round trip op %d: %+v != %+v", i, ops[i], ops2[i])
		}
	}
}

func mustShape(t *testing.T, build func(s *shape.Shape)) *shape.Shape {
	t.Helper()
	s := shape.New()
	build(s)
	return s
}

func TestCompare(t *testing.T) {
	base := func(s *shape.Shape) {
		s.AddType("a")
		s.AddType("a.b")
		s.AddType("a.c")
		s.AddEdge("a", "a.b", shape.Card{Min: 1, Max: 2})
		s.AddEdge("a", "a.c", shape.Card{Min: 0, Max: 1})
	}
	old := mustShape(t, base)

	if d := Compare(old, mustShape(t, base)); d.Kind != Unchanged {
		t.Errorf("identical shapes: kind = %v, want unchanged", d.Kind)
	}

	// Removing a type narrows.
	narrow := mustShape(t, func(s *shape.Shape) {
		s.AddType("a")
		s.AddType("a.b")
		s.AddEdge("a", "a.b", shape.Card{Min: 1, Max: 2})
	})
	if d := Compare(old, narrow); d.Kind != Narrowed || len(d.TypesRemoved) != 1 {
		t.Errorf("type removal: %+v, want narrowed with 1 removed", d)
	}

	// Loosening a cardinality widens.
	wide := mustShape(t, func(s *shape.Shape) {
		base(s)
	})
	wide2 := mustShape(t, func(s *shape.Shape) {
		s.AddType("a")
		s.AddType("a.b")
		s.AddType("a.c")
		s.AddEdge("a", "a.b", shape.Card{Min: 0, Max: 5})
		s.AddEdge("a", "a.c", shape.Card{Min: 0, Max: 1})
	})
	if d := Compare(wide, wide2); d.Kind != Widened || d.EdgesWidened != 1 {
		t.Errorf("card loosening: %+v, want widened with 1 edge", d)
	}

	// Tighten one edge and add a type: mixed.
	mixed := mustShape(t, func(s *shape.Shape) {
		s.AddType("a")
		s.AddType("a.b")
		s.AddType("a.c")
		s.AddType("a.d")
		s.AddEdge("a", "a.b", shape.Card{Min: 2, Max: 2})
		s.AddEdge("a", "a.c", shape.Card{Min: 0, Max: 1})
		s.AddEdge("a", "a.d", shape.Card{Min: 0, Max: 1})
	})
	if d := Compare(old, mixed); d.Kind != Mixed {
		t.Errorf("tighten+add: %+v, want mixed", d)
	}

	// Order-only change among surviving children: mixed via Reordered.
	reord := mustShape(t, func(s *shape.Shape) {
		s.AddType("a")
		s.AddType("a.b")
		s.AddType("a.c")
		s.AddEdge("a", "a.c", shape.Card{Min: 0, Max: 1})
		s.AddEdge("a", "a.b", shape.Card{Min: 1, Max: 2})
	})
	if d := Compare(old, reord); d.Kind != Mixed || !d.Reordered {
		t.Errorf("reorder: %+v, want mixed/reordered", d)
	}
	if !strings.Contains(Compare(old, reord).String(), "reordered") {
		t.Errorf("reorder delta String() should mention reordering")
	}
}
