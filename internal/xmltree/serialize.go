package xmltree

import (
	"io"
	"strings"
)

// WriteXML serializes the document as XML to w. If indent is true the
// output is pretty-printed with two-space indentation; otherwise it is
// compact. Attribute nodes become XML attributes on their parent element.
// Forests serialize as a sequence of sibling trees (an XML fragment).
func (d *Document) WriteXML(w io.Writer, indent bool) error {
	sw := &errWriter{w: w}
	for i, r := range d.Roots {
		if i > 0 {
			sw.writeString("\n")
		}
		writeNode(sw, r, 0, indent)
	}
	if indent && len(d.Roots) > 0 {
		sw.writeString("\n")
	}
	return sw.err
}

// XML returns the document serialized as a string.
func (d *Document) XML(indent bool) string {
	var b strings.Builder
	_ = d.WriteXML(&b, indent)
	return b.String()
}

func writeNode(w *errWriter, n *Node, depth int, indent bool) {
	if indent && depth > 0 {
		w.writeString("\n")
		w.writeString(strings.Repeat("  ", depth))
	}
	w.writeString("<")
	w.writeString(n.Name)
	childElems := 0
	for _, c := range n.Children {
		if c.Attr {
			w.writeString(" ")
			w.writeString(c.LocalName())
			w.writeString(`="`)
			writeEscaped(w, c.Value, true)
			w.writeString(`"`)
		} else {
			childElems++
		}
	}
	if childElems == 0 && n.Value == "" {
		w.writeString("/>")
		return
	}
	w.writeString(">")
	writeEscaped(w, n.Value, false)
	for _, c := range n.Children {
		if !c.Attr {
			writeNode(w, c, depth+1, indent)
		}
	}
	if indent && childElems > 0 {
		w.writeString("\n")
		w.writeString(strings.Repeat("  ", depth))
	}
	w.writeString("</")
	w.writeString(n.Name)
	w.writeString(">")
}

func writeEscaped(w *errWriter, s string, inAttr bool) {
	start := 0
	for i := 0; i < len(s); i++ {
		var rep string
		switch s[i] {
		case '&':
			rep = "&amp;"
		case '<':
			rep = "&lt;"
		case '>':
			rep = "&gt;"
		case '"':
			if !inAttr {
				continue
			}
			rep = "&quot;"
		default:
			continue
		}
		w.writeString(s[start:i])
		w.writeString(rep)
		start = i + 1
	}
	w.writeString(s[start:])
}

// EscapeText writes s with XML character-data escaping ("&", "<", ">").
func EscapeText(w io.Writer, s string) error {
	ew := &errWriter{w: w}
	writeEscaped(ew, s, false)
	return ew.err
}

// EscapeAttr writes s with XML attribute-value escaping (adds '"').
func EscapeAttr(w io.Writer, s string) error {
	ew := &errWriter{w: w}
	writeEscaped(ew, s, true)
	return ew.err
}

// errWriter sticks at the first write error so serialization code can stay
// un-cluttered.
type errWriter struct {
	w   io.Writer
	err error
}

func (w *errWriter) writeString(s string) {
	if w.err != nil {
		return
	}
	_, w.err = io.WriteString(w.w, s)
}
