package xmltree

import "fmt"

// Builder constructs documents programmatically in document order. It is
// used by the renderer (Section VII) to assemble output forests and by the
// dataset generators.
//
// The zero value is ready to use; Elem/Attr/Text/End mirror a SAX-style
// event stream.
type Builder struct {
	doc   *Document
	stack []*Node
	last  *Node
	err   error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{doc: &Document{}}
}

// Elem opens a new element with the given name under the current element
// and makes it current. At the top level each Elem starts a new root tree:
// builders may produce forests (rendered transformations are forests).
func (b *Builder) Elem(name string) *Builder {
	if b.err != nil {
		return b
	}
	n := &Node{Name: name}
	if len(b.stack) == 0 {
		b.doc.Roots = append(b.doc.Roots, n)
		n.Dewey = Dewey{len(b.doc.Roots)}
		n.Type = name
	} else {
		attach(b.stack[len(b.stack)-1], n)
	}
	b.last = n
	b.stack = append(b.stack, n)
	return b
}

// Last returns the node most recently created by Elem or Attr; the
// renderer uses it to attach Src provenance. It is nil before the first
// element.
func (b *Builder) Last() *Node { return b.last }

// Open reports whether an element is currently open (attributes may only
// be added inside an open element).
func (b *Builder) Open() bool { return len(b.stack) > 0 }

// Attr adds an attribute to the current element.
func (b *Builder) Attr(name, value string) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) == 0 {
		b.err = fmt.Errorf("xmltree: builder: attribute %q outside any element", name)
		return b
	}
	n := &Node{Name: "@" + name, Value: value, Attr: true}
	attach(b.stack[len(b.stack)-1], n)
	b.last = n
	return b
}

// Text appends character data to the current element's value.
func (b *Builder) Text(s string) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) == 0 {
		b.err = fmt.Errorf("xmltree: builder: text outside any element")
		return b
	}
	b.stack[len(b.stack)-1].Value += s
	return b
}

// End closes the current element.
func (b *Builder) End() *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) == 0 {
		b.err = fmt.Errorf("xmltree: builder: End without open element")
		return b
	}
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// Leaf writes Elem(name), Text(value), End() in one call.
func (b *Builder) Leaf(name, value string) *Builder {
	return b.Elem(name).Text(value).End()
}

// Document finishes the build, indexing and returning the document.
func (b *Builder) Document() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.doc.Roots) == 0 {
		return nil, fmt.Errorf("xmltree: builder: empty document")
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("xmltree: builder: %d unclosed element(s)", len(b.stack))
	}
	b.doc.index()
	return b.doc, nil
}

// MustDocument is Document that panics on error, for tests and generators.
func (b *Builder) MustDocument() *Document {
	d, err := b.Document()
	if err != nil {
		panic(err)
	}
	return d
}
