package xmltree

import (
	"math/rand"
	"strings"
	"testing"
)

func TestWalkPrune(t *testing.T) {
	d := MustParse(`<a><b><c/></b><d/></a>`)
	var visited []string
	d.Root().Walk(func(n *Node) bool {
		visited = append(visited, n.Name)
		return n.Name != "b" // prune below b
	})
	if strings.Join(visited, ",") != "a,b,d" {
		t.Errorf("pruned walk = %v", visited)
	}
}

func TestOriginChains(t *testing.T) {
	a := &Node{Name: "a"}
	b := &Node{Name: "b", Src: a}
	c := &Node{Name: "c", Src: b}
	if c.Origin() != a {
		t.Error("Origin should follow the chain to the root")
	}
	if a.Origin() != a {
		t.Error("Origin of an original is itself")
	}
}

func TestIndentedSerialization(t *testing.T) {
	d := MustParse(`<a><b>x</b><c/></a>`)
	out := d.XML(true)
	want := "<a>\n  <b>x</b>\n  <c/>\n</a>\n"
	if out != want {
		t.Errorf("indented = %q, want %q", out, want)
	}
}

func TestEscapeHelpers(t *testing.T) {
	var b strings.Builder
	if err := EscapeText(&b, `1 < 2 & "q"`); err != nil {
		t.Fatal(err)
	}
	if b.String() != `1 &lt; 2 &amp; "q"` {
		t.Errorf("EscapeText = %q", b.String())
	}
	b.Reset()
	if err := EscapeAttr(&b, `a"b<c`); err != nil {
		t.Fatal(err)
	}
	if b.String() != `a&quot;b&lt;c` {
		t.Errorf("EscapeAttr = %q", b.String())
	}
}

func TestAttrText(t *testing.T) {
	d := MustParse(`<a k="v"/>`)
	attr := d.NodesOfType("a.@k")[0]
	if attr.Text() != "v" {
		t.Errorf("attr Text = %q", attr.Text())
	}
}

// TestParseNeverPanics feeds random byte soup to the parser: errors are
// fine, panics are not.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alphabet := []byte(`<>/="ab &;!-`)
	for i := 0; i < 3000; i++ {
		n := rng.Intn(40)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", buf, r)
				}
			}()
			_, _ = ParseString(string(buf))
		}()
	}
}

func TestSerializeParseFixpoint(t *testing.T) {
	// After one round trip the serialized form is a fixpoint.
	srcs := []string{
		`<a x="1"><b>t</b><c/></a>`,
		`<r><p>one</p><p a="b">two</p></r>`,
	}
	for _, src := range srcs {
		once := MustParse(src).XML(false)
		twice := MustParse(once).XML(false)
		if once != twice {
			t.Errorf("not a fixpoint: %q -> %q", once, twice)
		}
	}
}
