package xmltree

import (
	"sort"
	"strings"
)

// TypeSep separates path components in a rooted type name
// ("dblp.article.author").
const TypeSep = "."

// Node is an element or attribute vertex in a document tree (Definition 1
// gives one closest-graph vertex per element or attribute).
type Node struct {
	// Name is the element or attribute name. Attribute nodes carry a
	// leading "@" ("@id") so that element and attribute types never
	// collide.
	Name string
	// Value is the node's own text content: for an attribute its value,
	// for an element the concatenation of its direct character data.
	Value string
	// Attr marks attribute nodes.
	Attr bool
	// Parent is nil for the root.
	Parent *Node
	// Children holds child elements and attributes in document order
	// (attributes first, as produced by the parser).
	Children []*Node
	// Dewey is the node's prefix number (root = 1).
	Dewey Dewey
	// Type is the rooted type path, the concatenation of names from the
	// root to this node ("dblp.article.author"). Section IV's default
	// typing scheme.
	Type string
	// Ord is the node's document-order index within its document.
	Ord int
	// Src records the source vertex an output node was rendered from
	// (Section V relates the closest graphs of source and transformed
	// instances through this identification). It is nil for parsed or
	// built documents and for manufactured (NEW) output nodes.
	Src *Node
}

// Origin follows the Src chain to the original vertex; for parsed nodes it
// returns the node itself. Composed transformations produce chains.
func (n *Node) Origin() *Node {
	for n.Src != nil {
		n = n.Src
	}
	return n
}

// Depth is the node's depth in edges below the root.
func (n *Node) Depth() int { return n.Dewey.Level() }

// Distance returns the number of tree edges between n and o (Definition 2's
// distance function). Both nodes must belong to the same document.
func (n *Node) Distance(o *Node) int { return n.Dewey.Distance(o.Dewey) }

// LocalName returns the last component of the node's type path, without the
// attribute marker.
func (n *Node) LocalName() string { return strings.TrimPrefix(n.Name, "@") }

// Text returns the node's text content including descendants' character
// data, in document order. For attributes it is the attribute value.
func (n *Node) Text() string {
	if n.Attr || len(n.Children) == 0 {
		return n.Value
	}
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	b.WriteString(n.Value)
	for _, c := range n.Children {
		if !c.Attr {
			c.appendText(b)
		}
	}
}

// Walk visits n and all descendants in document order. Returning false from
// fn prunes the subtree below the visited node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Document is a parsed XML document or rendered forest: one or more node
// trees plus per-type indexes. Parsed XML always has a single root;
// rendered transformations may be forests (Figure 2 of the paper shows a
// two-root result), with root i carrying Dewey number [i+1].
type Document struct {
	Roots []*Node
	// nodes lists every vertex in document order.
	nodes []*Node
	// byType maps each type path to its nodes in document order. This is
	// the in-memory analogue of the TypeToSequence table of Section VIII.
	byType map[string][]*Node
}

// Root returns the first root, or nil for an empty document. Parsed XML
// documents always have exactly one root.
func (d *Document) Root() *Node {
	if len(d.Roots) == 0 {
		return nil
	}
	return d.Roots[0]
}

// Nodes returns every vertex in document order. The returned slice is
// shared; callers must not modify it.
func (d *Document) Nodes() []*Node { return d.nodes }

// Size returns the number of vertices (elements and attributes).
func (d *Document) Size() int { return len(d.nodes) }

// Types returns the distinct type paths present in the document, sorted.
func (d *Document) Types() []string {
	ts := make([]string, 0, len(d.byType))
	for t := range d.byType {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	return ts
}

// NodesOfType returns the document-order sequence of nodes with the exact
// type path t. The returned slice is shared; callers must not modify it.
func (d *Document) NodesOfType(t string) []*Node { return d.byType[t] }

// HasType reports whether any vertex has type path t.
func (d *Document) HasType(t string) bool { return len(d.byType[t]) > 0 }

// NodeAt returns the node with the given Dewey number, or nil.
func (d *Document) NodeAt(dw Dewey) *Node {
	if len(dw) == 0 || dw[0] < 1 || dw[0] > len(d.Roots) {
		return nil
	}
	n := d.Roots[dw[0]-1]
	for _, step := range dw[1:] {
		if step < 1 || step > len(n.Children) {
			return nil
		}
		n = n.Children[step-1]
	}
	return n
}

// TypeDistance returns the minimal tree distance between vertices of the
// two rooted type paths (Section IV's typeDistance). Because every node of
// a rooted type lies on the same label path, the minimum is achieved at the
// deepest shared label prefix:
//
//	typeDistance(t1, t2) = (|t1| - lcp) + (|t2| - lcp)
//
// where lcp is the length of the longest common prefix of the two paths.
// It does not depend on the instance, only on the type paths themselves.
func TypeDistance(t1, t2 string) int {
	p1 := strings.Split(t1, TypeSep)
	p2 := strings.Split(t2, TypeSep)
	n := len(p1)
	if len(p2) < n {
		n = len(p2)
	}
	lcp := 0
	for lcp < n && p1[lcp] == p2[lcp] {
		lcp++
	}
	return (len(p1) - lcp) + (len(p2) - lcp)
}

// TypeDepth returns the number of path components in a rooted type path.
func TypeDepth(t string) int {
	if t == "" {
		return 0
	}
	return strings.Count(t, TypeSep) + 1
}

// TypeLocalName returns the last component of a rooted type path, without
// any attribute marker.
func TypeLocalName(t string) string {
	if i := strings.LastIndex(t, TypeSep); i >= 0 {
		t = t[i+1:]
	}
	return strings.TrimPrefix(t, "@")
}

// TypeParent returns the type path of t's parent type ("" for a root type).
func TypeParent(t string) string {
	if i := strings.LastIndex(t, TypeSep); i >= 0 {
		return t[:i]
	}
	return ""
}

// index rebuilds the document-order and per-type indexes from the tree.
// Parse and Build call it; it is exposed to the package only.
func (d *Document) index() {
	d.nodes = d.nodes[:0]
	d.byType = make(map[string][]*Node)
	ord := 0
	for _, r := range d.Roots {
		r.Walk(func(n *Node) bool {
			n.Ord = ord
			ord++
			d.nodes = append(d.nodes, n)
			d.byType[n.Type] = append(d.byType[n.Type], n)
			return true
		})
	}
}
