package xmltree

import "fmt"

// In-place structural mutation. Graft and Remove edit the tree while
// preserving the identity of every untouched *Node, which is what lets
// the view layer keep provenance maps (source vertex -> rendered copies)
// valid across structural updates. Both renumber and re-index the whole
// document, so a mutation costs one document walk — the price of keeping
// Dewey numbers positional (NodeAt addresses children by component).

// Graft attaches frag — a detached node tree, typically the root of a
// parsed fragment — as the last child of parent. The grafted nodes are
// retyped and renumbered for their new position; every other node keeps
// its identity. It returns frag, now in the tree.
func (d *Document) Graft(parent, frag *Node) (*Node, error) {
	if parent == nil {
		return nil, fmt.Errorf("xmltree: graft below nil parent")
	}
	if parent.Attr {
		return nil, fmt.Errorf("xmltree: cannot graft below attribute %s", parent.Name)
	}
	if frag == nil {
		return nil, fmt.Errorf("xmltree: graft of nil fragment")
	}
	if frag.Parent != nil {
		return nil, fmt.Errorf("xmltree: fragment %s is already attached", frag.Name)
	}
	frag.Parent = parent
	parent.Children = append(parent.Children, frag)
	d.Reindex()
	return frag, nil
}

// Remove detaches n, with its whole subtree, from the document. The root
// of a tree cannot be removed.
func (d *Document) Remove(n *Node) error {
	if n == nil {
		return fmt.Errorf("xmltree: remove of nil node")
	}
	if n.Parent == nil {
		return fmt.Errorf("xmltree: cannot remove a root")
	}
	p := n.Parent
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i:i], p.Children[i+1:]...)
			break
		}
	}
	n.Parent = nil
	d.Reindex()
	return nil
}

// Reindex recomputes every node's Dewey number and type path from its
// tree position — the same assignment parsing produces — and rebuilds
// the document-order and per-type indexes. Callers that splice Children
// or Roots directly must Reindex before using NodeAt, Nodes, or
// NodesOfType again.
func (d *Document) Reindex() {
	for i, r := range d.Roots {
		r.Parent = nil
		r.Dewey = Dewey{i + 1}
		r.Type = r.Name
		renumber(r)
	}
	d.index()
}

// renumber reassigns Dewey numbers and type paths below n.
func renumber(n *Node) {
	for i, c := range n.Children {
		c.Parent = n
		c.Dewey = n.Dewey.Child(i + 1)
		c.Type = n.Type + TypeSep + c.Name
		renumber(c)
	}
}
