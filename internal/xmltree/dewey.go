// Package xmltree provides the XML data model underlying XMorph: documents
// parsed into node trees where every element and attribute is a vertex with
// a Dewey (dynamic-level) number, a text value, and a rooted type path.
//
// The model follows Section IV of "Querying XML Data: As You Shape It"
// (Dyreson & Bhowmick, ICDE 2012): typeOf(v) is the concatenation of the
// element names on the path from the document root to v, distance(v, w) is
// the number of tree edges between v and w, and Dewey numbers make the
// distance computable from node identifiers alone (Section VII).
package xmltree

import (
	"strconv"
	"strings"
)

// Dewey is a prefix-based node number. The root of a document is [1]; the
// i-th child (1-based) of a node numbered d is append(d, i). Two nodes'
// tree distance is recoverable from their numbers alone, which is what
// makes the closest join of Section VII a plain merge join.
type Dewey []int

// ParseDewey parses a dotted Dewey string such as "1.1.2".
func ParseDewey(s string) (Dewey, error) {
	if s == "" {
		return nil, &DeweyError{Input: s, Reason: "empty"}
	}
	parts := strings.Split(s, ".")
	d := make(Dewey, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			return nil, &DeweyError{Input: s, Reason: "component " + p + " is not a positive integer"}
		}
		d[i] = n
	}
	return d, nil
}

// DeweyError reports a malformed Dewey string.
type DeweyError struct {
	Input  string
	Reason string
}

func (e *DeweyError) Error() string {
	return "xmltree: bad dewey number " + strconv.Quote(e.Input) + ": " + e.Reason
}

// String renders the number in dotted form ("1.1.2").
func (d Dewey) String() string {
	if len(d) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range d {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(n))
	}
	return b.String()
}

// Level is the node's depth in edges below the root: the root is level 0.
func (d Dewey) Level() int { return len(d) - 1 }

// Child returns the number of this node's i-th (1-based) child.
func (d Dewey) Child(i int) Dewey {
	c := make(Dewey, len(d)+1)
	copy(c, d)
	c[len(d)] = i
	return c
}

// Clone returns an independent copy of d.
func (d Dewey) Clone() Dewey {
	c := make(Dewey, len(d))
	copy(c, d)
	return c
}

// Compare orders numbers in document order (preorder): a prefix sorts
// before its extensions, and siblings sort by component.
func (d Dewey) Compare(o Dewey) int {
	n := len(d)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		switch {
		case d[i] < o[i]:
			return -1
		case d[i] > o[i]:
			return 1
		}
	}
	switch {
	case len(d) < len(o):
		return -1
	case len(d) > len(o):
		return 1
	}
	return 0
}

// Equal reports whether d and o are the same number.
func (d Dewey) Equal(o Dewey) bool { return d.Compare(o) == 0 }

// CommonPrefixLen returns the length of the longest shared prefix of d and
// o, i.e. the Dewey length of their least common ancestor.
func (d Dewey) CommonPrefixLen(o Dewey) int {
	n := len(d)
	if len(o) < n {
		n = len(o)
	}
	i := 0
	for i < n && d[i] == o[i] {
		i++
	}
	return i
}

// Distance returns the number of tree edges on the path between the nodes
// numbered d and o: level(d) + level(o) - 2*level(LCA).
func (d Dewey) Distance(o Dewey) int {
	lca := d.CommonPrefixLen(o)
	return (len(d) - lca) + (len(o) - lca)
}

// IsPrefixOf reports whether d is an ancestor-or-self number of o.
func (d Dewey) IsPrefixOf(o Dewey) bool {
	if len(d) > len(o) {
		return false
	}
	return d.CommonPrefixLen(o) == len(d)
}
