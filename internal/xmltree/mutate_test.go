package xmltree

import (
	"strings"
	"testing"
)

func TestGraftRenumbersAndReindexes(t *testing.T) {
	d := MustParse(`<data><book><title>X</title></book></data>`)
	frag := MustParse(`<book><title>Y</title></book>`)
	root := d.Roots[0]
	title := root.Children[0].Children[0]
	if _, err := d.Graft(root, frag.Roots[0]); err != nil {
		t.Fatal(err)
	}
	if got := d.XML(false); got != `<data><book><title>X</title></book><book><title>Y</title></book></data>` {
		t.Errorf("grafted doc: %s", got)
	}
	// The grafted subtree is renumbered and retyped for its position.
	nb, err := ParseDewey("1.2")
	if err != nil {
		t.Fatal(err)
	}
	n := d.NodeAt(nb)
	if n == nil {
		t.Fatal("no node at 1.2 after graft")
	}
	if n.Type != "data.book" || n.Children[0].Type != "data.book.title" {
		t.Errorf("grafted types = %s / %s", n.Type, n.Children[0].Type)
	}
	if len(d.NodesOfType("data.book")) != 2 || len(d.NodesOfType("data.book.title")) != 2 {
		t.Error("type index not rebuilt after graft")
	}
	// Untouched nodes keep their identity.
	if d.Roots[0] != root || root.Children[0].Children[0] != title {
		t.Error("graft must preserve node identity outside the fragment")
	}
}

func TestGraftErrors(t *testing.T) {
	d := MustParse(`<data a="1"><x/></data>`)
	frag := MustParse(`<y/>`).Roots[0]
	if _, err := d.Graft(nil, frag); err == nil {
		t.Error("graft below nil parent accepted")
	}
	var attr *Node
	for _, c := range d.Roots[0].Children {
		if c.Attr {
			attr = c
		}
	}
	if _, err := d.Graft(attr, frag); err == nil {
		t.Error("graft below attribute accepted")
	}
	if _, err := d.Graft(d.Roots[0], nil); err == nil {
		t.Error("graft of nil fragment accepted")
	}
	if _, err := d.Graft(d.Roots[0], d.Roots[0].Children[0]); err == nil {
		t.Error("graft of an attached node accepted")
	}
}

func TestRemoveClosesDeweyGaps(t *testing.T) {
	d := MustParse(`<data><a>1</a><b>2</b><c>3</c></data>`)
	b := d.Roots[0].Children[1]
	if err := d.Remove(b); err != nil {
		t.Fatal(err)
	}
	if got := d.XML(false); got != `<data><a>1</a><c>3</c></data>` {
		t.Errorf("after remove: %s", got)
	}
	// Dewey numbers stay positional: c moved from 1.3 to 1.2.
	at, _ := ParseDewey("1.2")
	n := d.NodeAt(at)
	if n == nil {
		t.Fatal("no node at 1.2 after remove")
	}
	if n.Name != "c" {
		t.Errorf("node at 1.2 after remove = %s, want c", n.Name)
	}
	if len(d.NodesOfType("data.b")) != 0 {
		t.Error("removed type still indexed")
	}
	if err := d.Remove(d.Roots[0]); err == nil {
		t.Error("root remove accepted")
	}
	if err := d.Remove(nil); err == nil {
		t.Error("nil remove accepted")
	}
}

func TestReindexAfterManualSplice(t *testing.T) {
	d := MustParse(`<data><a/><b/></data>`)
	root := d.Roots[0]
	// Swap the children by hand, then Reindex.
	root.Children[0], root.Children[1] = root.Children[1], root.Children[0]
	d.Reindex()
	if !strings.HasPrefix(d.XML(false), `<data><b/><a/>`) {
		t.Errorf("after splice: %s", d.XML(false))
	}
	at, _ := ParseDewey("1.1")
	n := d.NodeAt(at)
	if n == nil || n.Name != "b" {
		t.Errorf("node at 1.1 = %s, want b", n.Name)
	}
}
