package xmltree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestParseDewey(t *testing.T) {
	tests := []struct {
		in      string
		want    Dewey
		wantErr bool
	}{
		{"1", Dewey{1}, false},
		{"1.1.2", Dewey{1, 1, 2}, false},
		{"1.12.3", Dewey{1, 12, 3}, false},
		{"", nil, true},
		{"1..2", nil, true},
		{"1.0", nil, true},
		{"1.-2", nil, true},
		{"a.b", nil, true},
	}
	for _, tt := range tests {
		got, err := ParseDewey(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseDewey(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && !got.Equal(tt.want) {
			t.Errorf("ParseDewey(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestDeweyStringRoundTrip(t *testing.T) {
	for _, s := range []string{"1", "1.2", "1.1.2", "1.10.3.4"} {
		d, err := ParseDewey(s)
		if err != nil {
			t.Fatalf("ParseDewey(%q): %v", s, err)
		}
		if d.String() != s {
			t.Errorf("round trip %q -> %q", s, d.String())
		}
	}
}

func TestDeweyLevelAndChild(t *testing.T) {
	root := Dewey{1}
	if root.Level() != 0 {
		t.Errorf("root level = %d, want 0", root.Level())
	}
	c := root.Child(3)
	if got := c.String(); got != "1.3" {
		t.Errorf("child = %s, want 1.3", got)
	}
	if c.Level() != 1 {
		t.Errorf("child level = %d, want 1", c.Level())
	}
	// Child must not alias the parent's storage.
	c2 := root.Child(4)
	if got := c.String(); got != "1.3" {
		t.Errorf("after second Child, first = %s, want 1.3", got)
	}
	if got := c2.String(); got != "1.4" {
		t.Errorf("second child = %s, want 1.4", got)
	}
}

func TestDeweyCompareDocumentOrder(t *testing.T) {
	// Preorder: ancestors before descendants, siblings left to right.
	order := []string{"1", "1.1", "1.1.1", "1.1.2", "1.2", "1.2.1", "1.3"}
	var ds []Dewey
	for _, s := range order {
		d, _ := ParseDewey(s)
		ds = append(ds, d)
	}
	shuffled := make([]Dewey, len(ds))
	copy(shuffled, ds)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	sort.Slice(shuffled, func(i, j int) bool { return shuffled[i].Compare(shuffled[j]) < 0 })
	if !reflect.DeepEqual(shuffled, ds) {
		t.Errorf("sorted order = %v, want %v", shuffled, ds)
	}
}

// TestDeweyDistancePaperExample reproduces the Section VII walk-through:
// publisher 1.1.3 vs titles 1.1.1 and 1.2.1.
func TestDeweyDistancePaperExample(t *testing.T) {
	pub, _ := ParseDewey("1.1.3")
	t1, _ := ParseDewey("1.1.1")
	t2, _ := ParseDewey("1.2.1")
	if d := pub.Distance(t1); d != 2 {
		t.Errorf("distance(1.1.3, 1.1.1) = %d, want 2", d)
	}
	if d := pub.Distance(t2); d != 4 {
		t.Errorf("distance(1.1.3, 1.2.1) = %d, want 4", d)
	}
}

func TestDeweyPrefix(t *testing.T) {
	a, _ := ParseDewey("1.2")
	b, _ := ParseDewey("1.2.3")
	c, _ := ParseDewey("1.3")
	if !a.IsPrefixOf(b) {
		t.Error("1.2 should be a prefix of 1.2.3")
	}
	if !a.IsPrefixOf(a) {
		t.Error("a number is a prefix of itself")
	}
	if a.IsPrefixOf(c) || b.IsPrefixOf(a) {
		t.Error("bad prefix relations accepted")
	}
}

// randomDewey generates numbers with bounded depth/width for quick checks.
func randomDewey(r *rand.Rand) Dewey {
	depth := 1 + r.Intn(6)
	d := make(Dewey, depth)
	d[0] = 1
	for i := 1; i < depth; i++ {
		d[i] = 1 + r.Intn(4)
	}
	return d
}

func TestDeweyDistanceProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomDewey(r))
		vals[1] = reflect.ValueOf(randomDewey(r))
	}}
	// Symmetry, identity, and triangle inequality over a shared tree.
	if err := quick.Check(func(a, b Dewey) bool {
		if a.Distance(b) != b.Distance(a) {
			return false
		}
		if a.Distance(a) != 0 {
			return false
		}
		return a.Distance(b) >= 0
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestDeweyCompareConsistentWithDistanceZero(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomDewey(r))
		vals[1] = reflect.ValueOf(randomDewey(r))
	}}
	if err := quick.Check(func(a, b Dewey) bool {
		return (a.Compare(b) == 0) == (a.Distance(b) == 0)
	}, cfg); err != nil {
		t.Error(err)
	}
}
