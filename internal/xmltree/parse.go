package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document into the data model. Every element and
// attribute becomes a vertex; character data is accumulated into the
// enclosing element's Value. Namespace prefixes are ignored (local names
// only), matching the paper's untyped treatment of labels.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	dec.Strict = true
	var (
		doc   = &Document{}
		stack []*Node
	)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: t.Name.Local}
			if len(stack) == 0 {
				if len(doc.Roots) > 0 {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				doc.Roots = append(doc.Roots, n)
				n.Dewey = Dewey{1}
				n.Type = n.Name
			} else {
				p := stack[len(stack)-1]
				attach(p, n)
			}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				an := &Node{Name: "@" + a.Name.Local, Value: a.Value, Attr: true}
				attach(n, an)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				s := string(t)
				if strings.TrimSpace(s) != "" {
					stack[len(stack)-1].Value += s
				}
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Not part of the data model.
		}
	}
	if len(doc.Roots) == 0 {
		return nil, fmt.Errorf("xmltree: parse: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unexpected end of input inside <%s>", stack[len(stack)-1].Name)
	}
	doc.index()
	return doc, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// MustParse parses s and panics on error. It is intended for tests and
// examples with literal documents.
func MustParse(s string) *Document {
	d, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return d
}

// attach links child c under parent p, assigning the Dewey number and type
// path. It does not re-index the document.
func attach(p, c *Node) {
	c.Parent = p
	p.Children = append(p.Children, c)
	c.Dewey = p.Dewey.Child(len(p.Children))
	c.Type = p.Type + TypeSep + c.Name
}
