package xmltree

import (
	"strings"
	"testing"
)

// fig1a is data instance (a) of Figure 1 in the paper: titles group authors
// and publishers under each book.
const fig1a = `<data>
  <book>
    <title>X</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
  <book>
    <title>Y</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
</data>`

// fig1b nests books under publishers.
const fig1b = `<data>
  <publisher>
    <name>W</name>
    <book>
      <title>X</title>
      <author><name>V</name></author>
    </book>
    <book>
      <title>Y</title>
      <author><name>V</name></author>
    </book>
  </publisher>
</data>`

// fig1c is the normalized instance: books grouped under each author.
const fig1c = `<data>
  <author>
    <name>V</name>
    <book>
      <title>X</title>
      <publisher><name>W</name></publisher>
    </book>
    <book>
      <title>Y</title>
      <publisher><name>W</name></publisher>
    </book>
  </author>
</data>`

func TestParseFig1a(t *testing.T) {
	d, err := ParseString(fig1a)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root().Name != "data" {
		t.Fatalf("root = %s, want data", d.Root().Name)
	}
	books := d.NodesOfType("data.book")
	if len(books) != 2 {
		t.Fatalf("books = %d, want 2", len(books))
	}
	if got := books[0].Dewey.String(); got != "1.1" {
		t.Errorf("first book dewey = %s, want 1.1", got)
	}
	titles := d.NodesOfType("data.book.title")
	if len(titles) != 2 || titles[0].Value != "X" || titles[1].Value != "Y" {
		t.Errorf("titles wrong: %+v", titles)
	}
	// Paper Section VII: first <author> is 1.1.2, second is 1.2.2, the
	// author names are 1.1.2.1 and 1.2.2.1, the first publisher is 1.1.3.
	authors := d.NodesOfType("data.book.author")
	if len(authors) != 2 || authors[0].Dewey.String() != "1.1.2" || authors[1].Dewey.String() != "1.2.2" {
		t.Errorf("author deweys wrong: %v", authors)
	}
	names := d.NodesOfType("data.book.author.name")
	if len(names) != 2 || names[0].Dewey.String() != "1.1.2.1" || names[1].Dewey.String() != "1.2.2.1" {
		t.Errorf("author name deweys wrong: %v", names)
	}
	pubs := d.NodesOfType("data.book.publisher")
	if pubs[0].Dewey.String() != "1.1.3" {
		t.Errorf("first publisher dewey = %s, want 1.1.3", pubs[0].Dewey)
	}
}

func TestParseTypePaths(t *testing.T) {
	d := MustParse(fig1c)
	want := []string{
		"data",
		"data.author",
		"data.author.book",
		"data.author.book.publisher",
		"data.author.book.publisher.name",
		"data.author.book.title",
		"data.author.name",
	}
	got := d.Types()
	if len(got) != len(want) {
		t.Fatalf("types = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("types[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestParseAttributes(t *testing.T) {
	d := MustParse(`<site><item id="i1" featured="yes"><name>bicycle</name></item></site>`)
	ids := d.NodesOfType("site.item.@id")
	if len(ids) != 1 || ids[0].Value != "i1" || !ids[0].Attr {
		t.Fatalf("attribute node wrong: %+v", ids)
	}
	if ids[0].LocalName() != "id" {
		t.Errorf("LocalName = %s, want id", ids[0].LocalName())
	}
	// Attributes precede element children in document order.
	item := d.NodesOfType("site.item")[0]
	if item.Children[0].Name != "@id" || item.Children[2].Name != "name" {
		t.Errorf("child order wrong: %v", item.Children)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"<a>",
		"<a></b>",
		"no xml at all",
		"<a/><b/>",
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", s)
		}
	}
}

func TestParseMixedContentText(t *testing.T) {
	// The data model is unordered (Section III): an element's own character
	// data is concatenated into Value, and Text() appends descendants'
	// text after it. Interleaving of mixed content is not preserved.
	d := MustParse(`<p>hello <b>bold</b> world</p>`)
	p := d.Root()
	if got := p.Value; got != "hello  world" {
		t.Errorf("Value = %q, want %q (direct chardata only)", got, "hello  world")
	}
	if got := p.Text(); got != "hello  worldbold" {
		t.Errorf("Text = %q, want own value then descendants", got)
	}
}

func TestNodeAt(t *testing.T) {
	d := MustParse(fig1a)
	dw, _ := ParseDewey("1.1.2.1")
	n := d.NodeAt(dw)
	if n == nil || n.Name != "name" || n.Value != "V" {
		t.Fatalf("NodeAt(1.1.2.1) = %+v, want author name V", n)
	}
	if d.NodeAt(Dewey{1, 9}) != nil {
		t.Error("NodeAt out of range should be nil")
	}
	if d.NodeAt(Dewey{2}) != nil {
		t.Error("NodeAt with wrong root should be nil")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	for _, src := range []string{fig1a, fig1b, fig1c} {
		d := MustParse(src)
		out := d.XML(false)
		d2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse: %v\noutput was: %s", err, out)
		}
		if d2.Size() != d.Size() {
			t.Errorf("round trip size %d -> %d", d.Size(), d2.Size())
		}
		ts1, ts2 := d.Types(), d2.Types()
		if strings.Join(ts1, ",") != strings.Join(ts2, ",") {
			t.Errorf("round trip types %v -> %v", ts1, ts2)
		}
	}
}

func TestSerializeEscaping(t *testing.T) {
	d, err := NewBuilder().Elem("r").Attr("a", `x<&"`).Text("1 < 2 & 3 > 2").End().Document()
	if err != nil {
		t.Fatal(err)
	}
	out := d.XML(false)
	want := `<r a="x&lt;&amp;&quot;">1 &lt; 2 &amp; 3 &gt; 2</r>`
	if out != want {
		t.Errorf("escaped output = %s, want %s", out, want)
	}
	d2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse escaped: %v", err)
	}
	if got := d2.Root().Value; got != "1 < 2 & 3 > 2" {
		t.Errorf("reparsed text = %q", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().Document(); err == nil {
		t.Error("empty builder should fail")
	}
	if _, err := NewBuilder().Elem("a").Document(); err == nil {
		t.Error("unclosed element should fail")
	}
	// Builders may produce forests: a second top-level element starts a
	// second root tree with Dewey number 2.
	if d, err := NewBuilder().Elem("a").End().Elem("b").End().Document(); err != nil {
		t.Errorf("forest build failed: %v", err)
	} else if len(d.Roots) != 2 || d.Roots[1].Dewey.String() != "2" {
		t.Errorf("forest roots = %+v", d.Roots)
	}
	if _, err := NewBuilder().Attr("x", "y").Elem("a").End().Document(); err == nil {
		t.Error("attribute before root should fail")
	}
	if _, err := NewBuilder().Elem("a").End().End().Document(); err == nil {
		t.Error("extra End should fail")
	}
}

func TestBuilderDeweyAssignment(t *testing.T) {
	d := NewBuilder().
		Elem("data").
		Elem("book").Leaf("title", "X").End().
		Elem("book").Leaf("title", "Y").End().
		End().MustDocument()
	titles := d.NodesOfType("data.book.title")
	if titles[0].Dewey.String() != "1.1.1" || titles[1].Dewey.String() != "1.2.1" {
		t.Errorf("builder deweys wrong: %v %v", titles[0].Dewey, titles[1].Dewey)
	}
	if d.Size() != 5 {
		t.Errorf("size = %d, want 5", d.Size())
	}
}

func TestTypeHelpers(t *testing.T) {
	if TypeDistance("data.book.author", "data.book.title") != 2 {
		t.Error("typeDistance author/title should be 2")
	}
	if TypeDistance("data.book", "data.book") != 0 {
		t.Error("typeDistance to self should be 0")
	}
	if TypeDistance("data.book.publisher", "data.book.title") != 2 {
		t.Error("typeDistance publisher/title should be 2")
	}
	if TypeDistance("a.b.c", "a") != 2 {
		t.Error("typeDistance ancestor should be depth difference")
	}
	if TypeLocalName("site.item.@id") != "id" {
		t.Error("TypeLocalName should strip @")
	}
	if TypeParent("a.b.c") != "a.b" || TypeParent("a") != "" {
		t.Error("TypeParent wrong")
	}
	if TypeDepth("a.b.c") != 3 || TypeDepth("") != 0 {
		t.Error("TypeDepth wrong")
	}
}

func TestNodeDistanceMatchesTypeDistanceLowerBound(t *testing.T) {
	d := MustParse(fig1a)
	// For every pair of nodes, distance >= typeDistance of their types.
	nodes := d.Nodes()
	for _, v := range nodes {
		for _, w := range nodes {
			if v.Distance(w) < TypeDistance(v.Type, w.Type) {
				t.Fatalf("distance(%s,%s)=%d < typeDistance(%s,%s)=%d",
					v.Dewey, w.Dewey, v.Distance(w), v.Type, w.Type, TypeDistance(v.Type, w.Type))
			}
		}
	}
}
