package loss_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"xmorph/internal/closest"
	"xmorph/internal/guard"
	"xmorph/internal/loss"
	"xmorph/internal/render"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

// TestTheoremSoundness is the repository's deepest property test: the
// static analysis of Theorems 1 and 2 gives *sufficient* conditions, so
// whenever it certifies a guarantee, the rendered instance must bear it
// out:
//
//	static Inclusive   ==> empirical G ⊆ H (no vertex/edge of the source
//	                        closest graph is lost)
//	static NonAdditive ==> empirical H ⊆ G (no vertex/edge is created)
//
// The converse may fail (the analysis is conservative); that is not an
// error. The test sweeps random documents against a battery of guards.
func TestTheoremSoundness(t *testing.T) {
	guards := []string{
		"CAST MUTATE root",
		"CAST MORPH a [ b ]",
		"CAST MORPH b [ a ]",
		"CAST MORPH root [ a [ c ] b ]",
		"CAST MUTATE a [ b ]",
		"CAST MUTATE b [ c ]",
		"CAST MUTATE (DROP c)",
		"CAST MORPH a [ b [ c ] ]",
		"CAST MUTATE root [ c a ]",
		"CAST MORPH c [ a ] | TRANSLATE c -> k",
	}
	labels := []string{"a", "b", "c"}
	rng := rand.New(rand.NewSource(99))

	checked, violations := 0, 0
	for trial := 0; trial < 200; trial++ {
		doc := randomDoc(rng, labels)
		sh := shape.FromDocument(doc)
		g := guards[trial%len(guards)]

		prog, err := guard.Parse(g)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := semantics.Compile(prog, sh)
		if err != nil {
			continue // the random document may lack the guard's types
		}
		report := loss.Analyze(plan)
		tgt := plan.ComposedTarget()
		out, err := render.Render(doc, tgt, nil)
		if err != nil {
			t.Fatalf("trial %d guard %q: render: %v", trial, g, err)
		}
		// The comparison is relative to the retained types: a MORPH (or
		// DROP) deliberately selects a type subset, and the analysis
		// reasons about that subset (Definition 8 and the remark that
		// choosing a subset of G is trivial).
		retained := map[string]bool{}
		tgt.Walk(func(n *semantics.TNode) {
			if n.Source != "" {
				retained[n.Source] = true
			}
		})
		var types []string
		for ty := range retained {
			types = append(types, ty)
		}
		sort.Strings(types)
		emp := closest.Compare(closest.BuildTypes(doc, types), closest.Build(out))
		checked++

		// Theorem 1 certifies that no retained vertex is discarded.
		if report.Inclusive && emp.LostVertices > 0 {
			violations++
			t.Errorf("trial %d: guard %q statically inclusive but lost %d vertices\ndoc: %s\nout: %s\nreport: %s",
				trial, g, emp.LostVertices, doc.XML(false), out.XML(false), report)
		}
		// Theorem 2 certifies that no vertex or closest relationship is
		// manufactured.
		if report.NonAdditive && (emp.CreatedVertices > 0 || emp.CreatedEdges > 0) {
			violations++
			t.Errorf("trial %d: guard %q statically non-additive but created %d vertices / %d edges\ndoc: %s\nout: %s\nreport: %s",
				trial, g, emp.CreatedVertices, emp.CreatedEdges, doc.XML(false), out.XML(false), report)
		}
		if violations > 3 {
			t.Fatalf("too many soundness violations; stopping early")
		}
	}
	if checked < 50 {
		t.Fatalf("only %d trials type-checked; widen the generator", checked)
	}
	t.Logf("soundness held on %d rendered transformations", checked)
}

// randomDoc builds a random tree over the label alphabet with text values
// so that value preservation is also exercised.
func randomDoc(rng *rand.Rand, labels []string) *xmltree.Document {
	b := xmltree.NewBuilder().Elem("root")
	depth := 0
	n := 2 + rng.Intn(28)
	for i := 0; i < n; i++ {
		if depth > 0 && rng.Intn(3) == 0 {
			b.End()
			depth--
			continue
		}
		b.Elem(labels[rng.Intn(len(labels))])
		if rng.Intn(2) == 0 {
			b.Text(fmt.Sprintf("v%d", i))
			b.End()
		} else {
			depth++
		}
	}
	for ; depth >= 0; depth-- {
		b.End()
	}
	return b.MustDocument()
}
