package loss

import (
	"strings"
	"testing"

	"xmorph/internal/guard"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

const fig1a = `<data>
  <book>
    <title>X</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
  <book>
    <title>Y</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
</data>`

const fig1c = `<data>
  <author>
    <name>V</name>
    <book>
      <title>X</title>
      <publisher><name>W</name></publisher>
    </book>
    <book>
      <title>Y</title>
      <publisher><name>W</name></publisher>
    </book>
  </author>
</data>`

// optionalName: some authors have no name (author -> name is 0..1), the
// running example of Section V-B.
const optionalName = `<data>
  <book><author/></book>
  <book><author><name>V</name></author></book>
</data>`

func analyze(t *testing.T, guardSrc, xmlSrc string) *Report {
	t.Helper()
	s := shape.FromDocument(xmltree.MustParse(xmlSrc))
	p, err := semantics.Compile(guard.MustParse(guardSrc), s)
	if err != nil {
		t.Fatalf("Compile(%q): %v", guardSrc, err)
	}
	return Analyze(p)
}

// TestStronglyTypedGuard: the paper's first guard is strongly-typed on all
// three Figure 1 instances (Section I).
func TestStronglyTypedGuard(t *testing.T) {
	const g = "MORPH author [ name book [ title ] ]"
	for _, src := range []string{fig1a, fig1c} {
		r := analyze(t, g, src)
		if r.Verdict != StronglyTyped {
			t.Errorf("verdict on %q = %v, want strongly-typed:\n%s", g, r.Verdict, r)
		}
	}
}

// TestWideningGuardFig3: the second Section I guard is widening on
// instance (c): titles become closest to publishers they were not closest
// to in the source.
func TestWideningGuardFig3(t *testing.T) {
	r := analyze(t, "MORPH author [ title name publisher [ name ] ]", fig1c)
	if r.NonAdditive {
		t.Errorf("Fig 3 guard on (c) should be additive:\n%s", r)
	}
	if !r.Inclusive {
		t.Errorf("Fig 3 guard on (c) should stay inclusive:\n%s", r)
	}
	if r.Verdict != Widening {
		t.Errorf("verdict = %v, want widening", r.Verdict)
	}
	// The findings must identify the title/publisher pair.
	found := false
	for _, f := range r.Findings {
		if f.Kind == Additive &&
			(strings.Contains(f.FromType, "title") || strings.Contains(f.ToType, "title")) {
			found = true
		}
	}
	if !found {
		t.Errorf("no additive finding mentioning title:\n%s", r)
	}
}

// TestNonInclusiveMutate reproduces Section V-B: with optional names,
// MUTATE name [ author ] drops authors without a name.
func TestNonInclusiveMutate(t *testing.T) {
	r := analyze(t, "MUTATE name [ author ]", optionalName)
	if r.Inclusive {
		t.Errorf("MUTATE name [ author ] with optional name should be non-inclusive:\n%s", r)
	}
	found := false
	for _, f := range r.Findings {
		if f.Kind == NonInclusive && strings.HasSuffix(f.FromType, "author") && strings.HasSuffix(f.ToType, "name") {
			if f.SrcCard.Min != 0 || f.PredCard.Min == 0 {
				t.Errorf("finding cards wrong: %+v", f)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("missing the author~>name finding:\n%s", r)
	}
}

// TestInclusiveMutate reproduces the paper's fix: MUTATE data [ name
// author ] keeps both types at the top, losing nothing.
func TestInclusiveMutate(t *testing.T) {
	r := analyze(t, "MUTATE data [ name author ]", optionalName)
	if !r.Inclusive {
		t.Errorf("MUTATE data [ name author ] should be inclusive:\n%s", r)
	}
}

// TestNonAdditiveSwap: with name 1..1, swapping name and author does not
// change any maximum path cardinality (Section V-B).
func TestNonAdditiveSwap(t *testing.T) {
	r := analyze(t, "MUTATE name [ author ]", fig1c)
	if !r.NonAdditive {
		t.Errorf("swap with 1..1 name should be non-additive:\n%s", r)
	}
}

func TestIdentityIsStronglyTyped(t *testing.T) {
	for _, g := range []string{"MUTATE data", "MORPH data [ ** ]"} {
		r := analyze(t, g, fig1a)
		if r.Verdict != StronglyTyped {
			t.Errorf("identity %q verdict = %v:\n%s", g, r.Verdict, r)
		}
	}
}

func TestManufacturedNewIsAdditive(t *testing.T) {
	r := analyze(t, "MUTATE (NEW scribe) [ author ]", fig1a)
	if r.NonAdditive {
		t.Errorf("NEW should be additive:\n%s", r)
	}
	found := false
	for _, f := range r.Findings {
		if f.Kind == Manufactured && f.FromType == "scribe" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing manufactured finding:\n%s", r)
	}
}

func TestTypeFillIsAdditive(t *testing.T) {
	r := analyze(t, "TYPE-FILL MUTATE author [ isbn ]", fig1a)
	if r.NonAdditive {
		t.Errorf("TYPE-FILL should be additive:\n%s", r)
	}
}

func TestRestrictFlagsPotentialLoss(t *testing.T) {
	r := analyze(t, "MORPH (RESTRICT name [ author ]) [ title ]", fig1a)
	if r.Inclusive {
		t.Errorf("RESTRICT should flag potential data loss:\n%s", r)
	}
	found := false
	for _, f := range r.Findings {
		if f.Kind == RestrictFilter {
			found = true
		}
	}
	if !found {
		t.Errorf("missing restrict finding:\n%s", r)
	}
}

func TestCloneOfAlreadyClosestIsNotAdditive(t *testing.T) {
	// MUTATE author [ CLONE title ]: author and title are already closest
	// in the source, so materializing the relationship adds nothing.
	r := analyze(t, "MUTATE author [ CLONE title ]", fig1a)
	if !r.NonAdditive {
		t.Errorf("clone of closest title should be non-additive:\n%s", r)
	}
	if !r.Inclusive {
		t.Errorf("clone keeps everything:\n%s", r)
	}
}

func TestEnforce(t *testing.T) {
	strongly := &Report{Verdict: StronglyTyped, NonAdditive: true, Inclusive: true}
	narrowing := &Report{Verdict: Narrowing, NonAdditive: true}
	widening := &Report{Verdict: Widening, Inclusive: true}
	weak := &Report{Verdict: WeaklyTyped}

	cases := []struct {
		mode   guard.CastMode
		report *Report
		ok     bool
	}{
		{guard.CastNone, strongly, true},
		{guard.CastNone, narrowing, false},
		{guard.CastNone, widening, false},
		{guard.CastNone, weak, false},
		{guard.CastNarrowing, narrowing, true},
		{guard.CastNarrowing, widening, false},
		{guard.CastWidening, widening, true},
		{guard.CastWidening, narrowing, false},
		{guard.CastWeak, weak, true},
		{guard.CastWeak, strongly, true},
	}
	for _, c := range cases {
		err := Enforce(c.mode, c.report)
		if (err == nil) != c.ok {
			t.Errorf("Enforce(%v, %v) error = %v, want ok=%v", c.mode, c.report.Verdict, err, c.ok)
		}
		if err != nil {
			if _, isCast := err.(*CastError); !isCast {
				t.Errorf("error type = %T", err)
			}
		}
	}
}

func TestComposedPipelineCombinesGuarantees(t *testing.T) {
	// Stage 1 strongly typed; stage 2 manufactures -> whole pipeline
	// additive.
	r := analyze(t, "MORPH author [ name ] | MUTATE (NEW wrapper) [ author ]", fig1a)
	if r.NonAdditive {
		t.Errorf("pipeline with NEW should be additive:\n%s", r)
	}
}

func TestReportString(t *testing.T) {
	r := analyze(t, "MUTATE name [ author ]", optionalName)
	s := r.String()
	if !strings.Contains(s, "will be dropped") {
		t.Errorf("report lacks drop explanation:\n%s", s)
	}
	clean := analyze(t, "MUTATE data", fig1a)
	if !strings.Contains(clean.String(), "no potential information loss") {
		t.Errorf("clean report wrong: %s", clean)
	}
}

func TestVerdictStrings(t *testing.T) {
	if StronglyTyped.String() != "strongly-typed" || WeaklyTyped.String() != "weakly-typed" {
		t.Error("verdict strings wrong")
	}
	if Narrowing.String() != "narrowing" || Widening.String() != "widening" {
		t.Error("verdict strings wrong")
	}
}

func TestCastErrorMessage(t *testing.T) {
	r := analyze(t, "MUTATE name [ author ]", optionalName)
	err := Enforce(guard.CastNone, r)
	ce, ok := err.(*CastError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	msg := ce.Error()
	for _, want := range []string{"narrowing", "STRICT", "rejected"} {
		if !strings.Contains(msg, want) {
			t.Errorf("CastError message missing %q:\n%s", want, msg)
		}
	}
}

func TestFindingStrings(t *testing.T) {
	fs := []Finding{
		{Kind: NonInclusive, FromType: "a", ToType: "b"},
		{Kind: Additive, FromType: "a", ToType: "b"},
		{Kind: RestrictFilter, FromType: "a"},
		{Kind: Manufactured, FromType: "n"},
	}
	for _, f := range fs {
		if f.String() == "" || !strings.Contains(f.String(), "stage 1") {
			t.Errorf("finding string for %v: %q", f.Kind, f)
		}
	}
	if NonInclusive.String() != "non-inclusive" || Manufactured.String() != "manufactured" {
		t.Error("finding kind strings wrong")
	}
}
