// Package loss implements the potential-information-loss analysis of
// Section V: before any data is touched, a compiled guard is checked
// against the adorned shape of its input by comparing path cardinalities
// (Definition 6) with the predicted cardinalities of the target arrangement
// (Definition 7).
//
//   - Theorem 1 (inclusive / widening-safe): the transform loses no data if
//     no pair of types has its minimum path cardinality increase from zero
//     to non-zero in the predicted shape.
//   - Theorem 2 (non-additive / narrowing-safe): the transform creates no
//     data if no pair of types has its maximum path cardinality increase.
//
// The paper's verdict vocabulary maps onto the two checks: a guard is
// "narrowing" when it ensures data is not created (non-additive),
// "widening" when it ensures no data is lost (inclusive), strongly-typed
// when both hold, and weakly-typed when neither does.
package loss

import (
	"fmt"
	"strings"

	"xmorph/internal/guard"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
)

// Verdict is the typing verdict of a guard (Section I's terminology).
type Verdict int

const (
	// StronglyTyped guards neither create nor lose data.
	StronglyTyped Verdict = iota
	// Narrowing guards create no data but may lose some.
	Narrowing
	// Widening guards lose no data but may create some.
	Widening
	// WeaklyTyped guards may both create and lose data.
	WeaklyTyped
)

func (v Verdict) String() string {
	switch v {
	case StronglyTyped:
		return "strongly-typed"
	case Narrowing:
		return "narrowing"
	case Widening:
		return "widening"
	case WeaklyTyped:
		return "weakly-typed"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// FindingKind classifies one potential-loss finding.
type FindingKind int

const (
	// NonInclusive: a pair's minimum path cardinality rises from zero, so
	// vertices missing the now-required ancestor are dropped (Theorem 1).
	NonInclusive FindingKind = iota
	// Additive: a pair's maximum path cardinality increases, so closest
	// relationships not present in the source are manufactured (Theorem 2).
	Additive
	// RestrictFilter: a RESTRICT requirement may filter out vertices; the
	// guard is conservatively flagged as potentially losing data.
	RestrictFilter
	// Manufactured: NEW or TYPE-FILL introduces vertices that do not exist
	// in the source; the guard creates data.
	Manufactured
)

func (k FindingKind) String() string {
	switch k {
	case NonInclusive:
		return "non-inclusive"
	case Additive:
		return "additive"
	case RestrictFilter:
		return "restrict-filter"
	case Manufactured:
		return "manufactured"
	}
	return fmt.Sprintf("FindingKind(%d)", int(k))
}

// Finding pinpoints which part of the transformation potentially loses or
// creates information — the feedback an XQuery programmer uses to decide
// whether to add a CAST (Section I).
type Finding struct {
	Kind FindingKind
	// Stage indexes the pipeline stage the finding belongs to.
	Stage int
	// FromType and ToType are the source types of the offending pair (or
	// the manufactured type's name).
	FromType string
	ToType   string
	// SrcCard and PredCard are the path cardinalities in the input shape
	// and in the predicted target shape.
	SrcCard  shape.Card
	PredCard shape.Card
}

// String renders the finding for the information-loss report.
func (f Finding) String() string {
	switch f.Kind {
	case NonInclusive:
		return fmt.Sprintf("stage %d: path %s ~> %s: min cardinality rises %s -> %s; vertices of %s without a closest %s will be dropped",
			f.Stage+1, f.FromType, f.ToType, f.SrcCard, f.PredCard, f.FromType, f.ToType)
	case Additive:
		return fmt.Sprintf("stage %d: path %s ~> %s: max cardinality rises %s -> %s; closest relationships not in the source will be created",
			f.Stage+1, f.FromType, f.ToType, f.SrcCard, f.PredCard)
	case RestrictFilter:
		return fmt.Sprintf("stage %d: RESTRICT on %s may filter out vertices", f.Stage+1, f.FromType)
	case Manufactured:
		return fmt.Sprintf("stage %d: type %s is manufactured; its elements do not exist in the source", f.Stage+1, f.FromType)
	}
	return fmt.Sprintf("stage %d: %s %s ~> %s", f.Stage+1, f.Kind, f.FromType, f.ToType)
}

// Report is the information-loss report for a whole guard.
type Report struct {
	// Verdict is the combined typing verdict.
	Verdict Verdict
	// NonAdditive and Inclusive are the two component guarantees.
	NonAdditive bool
	Inclusive   bool
	Findings    []Finding
}

// String renders the report as the tool prints it.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "guard is %s", r.Verdict)
	if len(r.Findings) == 0 {
		b.WriteString(" (no potential information loss)")
		return b.String()
	}
	b.WriteString("\n")
	for _, f := range r.Findings {
		b.WriteString("  - ")
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Analyze checks every stage of a compiled plan and combines the component
// guarantees: the pipeline is inclusive (resp. non-additive) only when
// every stage is.
func Analyze(p *semantics.Plan) *Report {
	r := &Report{NonAdditive: true, Inclusive: true}
	for i, sp := range p.Stages {
		analyzeStage(r, i, sp)
	}
	switch {
	case r.NonAdditive && r.Inclusive:
		r.Verdict = StronglyTyped
	case r.NonAdditive:
		r.Verdict = Narrowing
	case r.Inclusive:
		r.Verdict = Widening
	default:
		r.Verdict = WeaklyTyped
	}
	return r
}

func analyzeStage(r *Report, idx int, sp *semantics.StagePlan) {
	var sourced []*semantics.TNode
	sp.Target.Walk(func(n *semantics.TNode) {
		if n.Source != "" {
			sourced = append(sourced, n)
		} else {
			r.NonAdditive = false
			r.Findings = append(r.Findings, Finding{
				Kind: Manufactured, Stage: idx, FromType: n.Name,
			})
		}
		if len(n.Require) > 0 {
			r.Inclusive = false
			r.Findings = append(r.Findings, Finding{
				Kind: RestrictFilter, Stage: idx, FromType: n.Source,
			})
		}
	})

	// Pairwise path-cardinality comparison (Theorems 1 and 2) over the
	// retained types. Ordered pairs: the upward direction encodes "every a
	// must sit below some b". Edge cardinalities, node depths, and source
	// ancestor chains are precomputed — this loop is quadratic in the
	// number of types and runs on every guard compile, so it must stay
	// allocation-free per pair (the paper reports ~20 ms compiles on
	// 471-type shapes).
	edgeCards := make(map[*semantics.TNode]shape.Card, len(sourced))
	depths := map[*semantics.TNode]int{}
	for _, n := range sourced {
		edgeCards[n] = n.EdgeCard(sp.Input)
		d := 0
		for p := n.Parent(); p != nil; p = p.Parent() {
			if _, ok := edgeCards[p]; !ok {
				edgeCards[p] = p.EdgeCard(sp.Input)
			}
			d++
		}
		depths[n] = d
	}
	src := newSrcIndex(sp.Input)
	for _, a := range sourced {
		for _, b := range sourced {
			if a == b {
				continue
			}
			cardS, okS := src.pathCard(a.Source, b.Source)
			if !okS {
				continue // disconnected in the input
			}
			cardR, okR := targetPathCardFast(a, b, depths, edgeCards)
			if !okR {
				continue // disconnected in the target: no requirement
			}
			if cardS.Min == 0 && cardR.Min > 0 {
				r.Inclusive = false
				r.Findings = append(r.Findings, Finding{
					Kind: NonInclusive, Stage: idx,
					FromType: a.Source, ToType: b.Source,
					SrcCard: cardS, PredCard: cardR,
				})
			}
			if cardR.Max > cardS.Max {
				r.NonAdditive = false
				r.Findings = append(r.Findings, Finding{
					Kind: Additive, Stage: idx,
					FromType: a.Source, ToType: b.Source,
					SrcCard: cardS, PredCard: cardR,
				})
			}
		}
	}
}

// targetPathCardFast computes the path cardinality between two target
// types in the target forest, using precomputed predicted edge
// cardinalities (Definition 7). The upward leg contributes 1..1 as in
// Definition 6.
func targetPathCardFast(a, b *semantics.TNode, depths map[*semantics.TNode]int, edgeCards map[*semantics.TNode]shape.Card) (shape.Card, bool) {
	da, db := nodeDepth(a, depths), nodeDepth(b, depths)
	c := shape.One
	for db > da {
		c = c.Mul(edgeCards[b])
		b = b.Parent()
		db--
	}
	for da > db {
		a = a.Parent()
		da--
	}
	for a != b {
		if a == nil || b == nil {
			return shape.Card{}, false
		}
		c = c.Mul(edgeCards[b])
		a, b = a.Parent(), b.Parent()
	}
	if a == nil {
		return shape.Card{}, false
	}
	return c, true
}

// srcIndex precomputes each input type's ancestor chain (self to root)
// and the cardinality of its incoming edge, so pathCard needs no map
// lookups per step.
type srcIndex struct {
	chain map[string][]string
	into  map[string]shape.Card
}

func newSrcIndex(in *shape.Shape) *srcIndex {
	idx := &srcIndex{chain: map[string][]string{}, into: map[string]shape.Card{}}
	for _, t := range in.Types() {
		var chain []string
		for x := t; ; {
			chain = append(chain, x)
			p, ok := in.Parent(x)
			if !ok {
				break
			}
			if c, ok := in.Card(p, x); ok {
				if _, seen := idx.into[x]; !seen {
					idx.into[x] = c
				}
			}
			x = p
		}
		idx.chain[t] = chain
	}
	return idx
}

// pathCard is Definition 6 over the precomputed chains: 1..1 up to the
// LCA, then the product of incoming-edge cardinalities down to the target.
func (idx *srcIndex) pathCard(from, to string) (shape.Card, bool) {
	ca, cb := idx.chain[from], idx.chain[to]
	if len(ca) == 0 || len(cb) == 0 {
		return shape.Card{}, false
	}
	if ca[len(ca)-1] != cb[len(cb)-1] {
		return shape.Card{}, false // different trees
	}
	i, j := len(ca)-1, len(cb)-1
	for i > 0 && j > 0 && ca[i-1] == cb[j-1] {
		i--
		j--
	}
	// cb[j] is the LCA; multiply incoming cards below it on the to-side.
	c := shape.One
	for k := 0; k < j; k++ {
		c = c.Mul(idx.into[cb[k]])
	}
	return c, true
}

func nodeDepth(n *semantics.TNode, depths map[*semantics.TNode]int) int {
	if d, ok := depths[n]; ok {
		return d
	}
	d := 0
	for p := n.Parent(); p != nil; p = p.Parent() {
		d++
	}
	return d
}

// CastError reports that a guard's verdict exceeds what its cast mode
// admits; the findings say exactly where the loss would happen.
type CastError struct {
	Mode    guard.CastMode
	Verdict Verdict
	Report  *Report
}

func (e *CastError) Error() string {
	return fmt.Sprintf("guard: %s transformation rejected (mode %s); %s",
		e.Verdict, e.Mode, e.Report)
}

// Enforce applies the type-enforcement policy of Section III: by default
// only strongly-typed guards run; CAST-NARROWING additionally admits
// narrowing guards, CAST-WIDENING widening guards, and CAST anything.
func Enforce(mode guard.CastMode, r *Report) error {
	ok := false
	switch mode {
	case guard.CastNone:
		ok = r.Verdict == StronglyTyped
	case guard.CastNarrowing:
		ok = r.Verdict == StronglyTyped || r.Verdict == Narrowing
	case guard.CastWidening:
		ok = r.Verdict == StronglyTyped || r.Verdict == Widening
	case guard.CastWeak:
		ok = true
	}
	if !ok {
		return &CastError{Mode: mode, Verdict: r.Verdict, Report: r}
	}
	return nil
}
