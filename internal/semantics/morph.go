package semantics

import (
	"fmt"

	"xmorph/internal/guard"
)

// morph evaluates ξ[MORPH pattern]: the output shape is built from scratch
// out of exactly the types the pattern mentions (Section VI).
func (ev *evaluator) morph(st *guard.Stage) (*Target, error) {
	t := &Target{}
	for _, pat := range st.Patterns {
		nodes, err := ev.expandMorph(pat)
		if err != nil {
			return nil, err
		}
		t.Roots = append(t.Roots, nodes...)
	}
	if len(t.Roots) == 0 {
		return nil, fmt.Errorf("semantics: MORPH pattern selected no types")
	}
	return t, nil
}

// expandMorph evaluates one pattern term to its target types. An ambiguous
// label yields one target type per matched input type; closeness pruning
// happens where children attach (the extend construct).
func (ev *evaluator) expandMorph(term *guard.Term) ([]*TNode, error) {
	var nodes []*TNode
	switch term.Kind {
	case guard.TermLabel:
		types, filled, err := ev.resolveLabel(term)
		if err != nil {
			return nil, err
		}
		if filled {
			nodes = []*TNode{{Name: term.Label, Fill: true}}
			break
		}
		for _, ty := range types {
			nodes = append(nodes, NewLeaf(ty))
		}
	case guard.TermNew:
		nodes = []*TNode{{Name: term.Label}}
	case guard.TermClone:
		ops, err := ev.expandMorph(term.Operand)
		if err != nil {
			return nil, err
		}
		for _, n := range ops {
			n.Walk(func(m *TNode) { m.Clone = true })
		}
		nodes = ops
	case guard.TermRestrict:
		ops, err := ev.expandMorph(term.Operand)
		if err != nil {
			return nil, err
		}
		// The operand's children become requirements: they constrain which
		// vertices render but are hidden from the output (Section VI).
		for _, n := range ops {
			n.Require = append(n.Require, n.Kids...)
			n.Kids = nil
		}
		nodes = ops
	case guard.TermChildren, guard.TermDescendants:
		return nil, fmt.Errorf("semantics: %s is only meaningful inside a pattern term's children", term.Kind)
	case guard.TermDrop:
		return nil, fmt.Errorf("semantics: DROP is only meaningful in a MUTATE shape")
	default:
		return nil, fmt.Errorf("semantics: unexpected term kind %v in MORPH", term.Kind)
	}

	return ev.attachKids(term, nodes)
}

// attachKids implements the extend construct ξ[p0 [p1 ... pn]]: each child
// pattern's types connect below the closest parent types; parents that
// lose every closest-pair comparison are pruned (the type analysis of
// Section VIII).
func (ev *evaluator) attachKids(term *guard.Term, parents []*TNode) ([]*TNode, error) {
	for _, kid := range term.Kids {
		switch kid.Kind {
		case guard.TermChildren:
			// label [*]: include the parent type's children from the
			// input shape (one level).
			for _, p := range parents {
				if p.Source == "" {
					continue
				}
				for _, ct := range ev.in.Children(p.Source) {
					if p.hasKidSource(ct) {
						continue
					}
					p.Attach(NewLeaf(ct))
				}
			}
		case guard.TermDescendants:
			// label [**]: include the parent type's entire input subtree.
			for _, p := range parents {
				if p.Source == "" {
					continue
				}
				ev.copySubtree(p, p.Source)
			}
		default:
			cs, err := ev.expandMorph(kid)
			if err != nil {
				return nil, err
			}
			parents = ev.attachClosest(kid, parents, cs)
			if len(parents) == 0 {
				return nil, fmt.Errorf("semantics: no parent type is closest to pattern %q", kid.String())
			}
		}
	}
	return parents, nil
}

// attachClosest attaches candidate child types to candidate parents,
// keeping only closest (parent, child) type pairs, and returns the
// surviving parents.
func (ev *evaluator) attachClosest(kidTerm *guard.Term, parents []*TNode, kids []*TNode) []*TNode {
	// Manufactured children (NEW / TYPE-FILL) attach to every parent; they
	// have no source type to measure distance with.
	if len(kids) > 0 && kids[0].Source == "" {
		for i, p := range parents {
			for _, c := range kids {
				if i == 0 {
					p.Attach(c)
				} else {
					p.Attach(c.Copy())
				}
			}
		}
		return parents
	}
	// Manufactured parents adopt every child candidate.
	allManufactured := true
	for _, p := range parents {
		if p.Source != "" {
			allManufactured = false
			break
		}
	}
	if allManufactured {
		for i, p := range parents {
			for _, c := range kids {
				if i == 0 {
					p.Attach(c)
				} else {
					p.Attach(c.Copy())
				}
			}
		}
		return parents
	}

	pTypes := make([]string, 0, len(parents))
	for _, p := range parents {
		if p.Source != "" {
			pTypes = append(pTypes, p.Source)
		}
	}
	cTypes := make([]string, 0, len(kids))
	for _, c := range kids {
		cTypes = append(cTypes, c.Source)
	}
	keptP, keptC, pairs := closestPairs(dedupe(pTypes), dedupe(cTypes))
	if lbl := labelOf(kidTerm); lbl != nil {
		ev.recordKept(lbl, keptC)
	}
	keptPSet := map[string]bool{}
	for _, p := range keptP {
		keptPSet[p] = true
	}
	pairSet := map[[2]string]bool{}
	for _, pr := range pairs {
		pairSet[pr] = true
	}

	var survivors []*TNode
	for _, p := range parents {
		if p.Source != "" && !keptPSet[p.Source] {
			continue // pruned parent; its earlier attachments go with it
		}
		survivors = append(survivors, p)
		first := true
		for _, c := range kids {
			if !pairSet[[2]string{p.Source, c.Source}] {
				continue
			}
			if first {
				p.Attach(c)
				first = false
			} else {
				p.Attach(c.Copy())
			}
		}
	}
	return survivors
}

// hasKidSource reports whether n already has a child with the given source
// type (deduplication between explicit kids and * expansions).
func (n *TNode) hasKidSource(src string) bool {
	for _, k := range n.Kids {
		if k.Source == src {
			return true
		}
	}
	return false
}

// copySubtree mirrors the input shape's subtree below srcType onto p,
// skipping types already present as explicit kids.
func (ev *evaluator) copySubtree(p *TNode, srcType string) {
	for _, ct := range ev.in.Children(srcType) {
		if p.hasKidSource(ct) {
			continue
		}
		c := NewLeaf(ct)
		p.Attach(c)
		ev.copySubtree(c, ct)
	}
}

// labelOf returns the label term inside a (possibly wrapped) term, or nil.
func labelOf(t *guard.Term) *guard.Term {
	for t != nil {
		switch t.Kind {
		case guard.TermLabel:
			return t
		case guard.TermClone, guard.TermRestrict, guard.TermDrop:
			t = t.Operand
		default:
			return nil
		}
	}
	return nil
}

func dedupe(ss []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// fullTarget mirrors an entire input shape as a target (the starting point
// of MUTATE and TRANSLATE): every input type becomes a sourced target type
// in its original arrangement.
func fullTarget(in interface {
	Roots() []string
	Children(string) []string
}) (*Target, map[string]*TNode) {
	t := &Target{}
	idx := map[string]*TNode{}
	var build func(ty string) *TNode
	build = func(ty string) *TNode {
		n := NewLeaf(ty)
		idx[ty] = n
		for _, c := range in.Children(ty) {
			n.Attach(build(c))
		}
		return n
	}
	for _, r := range in.Roots() {
		t.Roots = append(t.Roots, build(r))
	}
	return t, idx
}
