package semantics

import (
	"fmt"
	"strings"

	"xmorph/internal/xmltree"
)

// TypeError is the semantic type error of Section VI outcome (1): a guard
// label matches no type in the input shape (and TYPE-FILL is off).
type TypeError struct {
	Label string
	Pos   int
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("guard: type mismatch: label %q matches no type in the data (offset %d)", e.Label, e.Pos)
}

// LabelResolution is one entry of the label-to-type report (Section VIII):
// how a guard label was matched against the input types.
type LabelResolution struct {
	// Label as written in the guard.
	Label string
	// Pos is the label's byte offset in the guard source.
	Pos int
	// Types are the input types the label resolved to, sorted. More than
	// one entry means the label was ambiguous and closeness chose among
	// them (or kept several).
	Types []string
	// Candidates are all input types matching the label before closeness
	// pruning.
	Candidates []string
	// Filled reports that the label matched nothing and TYPE-FILL
	// manufactured a fresh type.
	Filled bool
}

// MatchLabel reports whether a guard label matches a rooted type path.
// Matching is case-insensitive (guards are case-insensitive); a plain
// label matches the last path component, and a dotted label matches a
// dotted suffix of the path ("book.author" distinguishes from
// "journal.author"). The attribute marker "@" is ignored unless the label
// itself carries one.
func MatchLabel(label, typePath string) bool {
	l := strings.ToLower(label)
	p := strings.ToLower(typePath)
	if !strings.Contains(l, xmltree.TypeSep) {
		last := p
		if i := strings.LastIndex(p, xmltree.TypeSep); i >= 0 {
			last = p[i+1:]
		}
		if !strings.HasPrefix(l, "@") {
			last = strings.TrimPrefix(last, "@")
		}
		return l == last
	}
	// Dotted label: suffix match on component boundary, with the final
	// component subject to the same attribute-marker handling.
	lparts := strings.Split(l, xmltree.TypeSep)
	pparts := strings.Split(p, xmltree.TypeSep)
	if len(lparts) > len(pparts) {
		return false
	}
	off := len(pparts) - len(lparts)
	for i, lp := range lparts {
		pp := pparts[off+i]
		if i == len(lparts)-1 && !strings.HasPrefix(lp, "@") {
			pp = strings.TrimPrefix(pp, "@")
		}
		if lp != pp {
			return false
		}
	}
	return true
}

// matchTypes returns the sorted input types matching a label.
func matchTypes(label string, types []string) []string {
	var out []string
	for _, t := range types {
		if MatchLabel(label, t) {
			out = append(out, t)
		}
	}
	return out
}

// closestPairs implements the closest-type-pair selection of the extend
// construct (Section VI) and the type analysis of Section VIII: among all
// (parent, child) type pairs it keeps exactly those whose type distance is
// minimal. Both the surviving parents and the surviving children are
// returned.
func closestPairs(parents, children []string) (keptParents, keptChildren []string, pairs [][2]string) {
	if len(parents) == 0 || len(children) == 0 {
		return nil, nil, nil
	}
	min := -1
	for _, p := range parents {
		for _, c := range children {
			d := xmltree.TypeDistance(p, c)
			if min < 0 || d < min {
				min = d
			}
		}
	}
	pSet := map[string]bool{}
	cSet := map[string]bool{}
	for _, p := range parents {
		for _, c := range children {
			if xmltree.TypeDistance(p, c) == min {
				pairs = append(pairs, [2]string{p, c})
				pSet[p] = true
				cSet[c] = true
			}
		}
	}
	for _, p := range parents {
		if pSet[p] {
			keptParents = append(keptParents, p)
		}
	}
	for _, c := range children {
		if cSet[c] {
			keptChildren = append(keptChildren, c)
		}
	}
	return keptParents, keptChildren, pairs
}
