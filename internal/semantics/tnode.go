// Package semantics implements the denotational semantics ξ of Section VI:
// the meaning of a guard is a function from shapes to shapes. Compiling a
// guard against the adorned shape of the source data yields a Plan whose
// stages each carry a Target — the transformed arrangement of source types
// — plus the label-to-type resolution report of Section VIII.
package semantics

import (
	"fmt"
	"sort"
	"strings"

	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

// TNode is one type in a target shape. Target types are distinct even when
// they render with the same element name (CLONE manufactures "a copy which
// is a distinct type").
type TNode struct {
	// Name is the element name the type renders as.
	Name string
	// Source is the source type path whose vertices populate this type;
	// empty for manufactured types (NEW and TYPE-FILL).
	Source string
	// Clone marks types minted by CLONE: same source data, fresh type
	// identity.
	Clone bool
	// Fill marks types manufactured by TYPE-FILL for unmatched labels.
	Fill bool
	// Kids are the child types, rendered in order.
	Kids []*TNode
	// Require holds RESTRICT patterns: a source vertex is rendered for
	// this type only if it has a closest partner chain matching every
	// requirement. Requirements are not rendered.
	Require []*TNode
	// parent links the node into its target tree (nil at roots).
	parent *TNode
}

// Target is a transformed shape: a forest of target types over the input
// shape's types.
type Target struct {
	Roots []*TNode
}

// NewLeaf returns a sourced leaf target type named after the source type.
func NewLeaf(source string) *TNode {
	return &TNode{Name: xmltree.TypeLocalName(source), Source: source}
}

// Attach appends kid below n, maintaining parent links.
func (n *TNode) Attach(kid *TNode) {
	kid.parent = n
	n.Kids = append(n.Kids, kid)
}

// Detach removes n from its parent (a no-op at roots) and returns the old
// parent.
func (n *TNode) Detach() *TNode {
	p := n.parent
	if p == nil {
		return nil
	}
	for i, k := range p.Kids {
		if k == n {
			p.Kids = append(p.Kids[:i:i], p.Kids[i+1:]...)
			break
		}
	}
	n.parent = nil
	return p
}

// Parent returns the node's parent target type, nil at roots.
func (n *TNode) Parent() *TNode { return n.parent }

// Copy deep-copies the subtree (requirements included).
func (n *TNode) Copy() *TNode {
	c := &TNode{Name: n.Name, Source: n.Source, Clone: n.Clone, Fill: n.Fill}
	for _, k := range n.Kids {
		c.Attach(k.Copy())
	}
	for _, r := range n.Require {
		rc := r.Copy()
		rc.parent = c
		c.Require = append(c.Require, rc)
	}
	return c
}

// Walk visits the subtree in preorder (requirements excluded).
func (n *TNode) Walk(fn func(*TNode)) {
	fn(n)
	for _, k := range n.Kids {
		k.Walk(fn)
	}
}

// Walk visits every target type in preorder across all roots.
func (t *Target) Walk(fn func(*TNode)) {
	for _, r := range t.Roots {
		r.Walk(fn)
	}
}

// isAncestor reports whether n is a proper ancestor of m in the target.
func (n *TNode) isAncestor(m *TNode) bool {
	for p := m.parent; p != nil; p = p.parent {
		if p == n {
			return true
		}
	}
	return false
}

// Reparent moves node u (and subtree) below node t, splicing t out to u's
// old parent first when t sits inside u's subtree (the MUTATE rule of
// DESIGN.md).
func (t *Target) Reparent(dst, u *TNode) error {
	if dst == u {
		return fmt.Errorf("semantics: cannot move %s below itself", u.Name)
	}
	if u.isAncestor(dst) {
		old := u.parent
		wasRoot := old == nil
		t.detachNode(dst)
		if wasRoot {
			t.Roots = append(t.Roots, dst)
		} else {
			old.Attach(dst)
		}
	}
	t.detachNode(u)
	dst.Attach(u)
	return nil
}

// detachNode removes n from its parent or from the root list.
func (t *Target) detachNode(n *TNode) {
	if n.parent != nil {
		n.Detach()
		return
	}
	for i, r := range t.Roots {
		if r == n {
			t.Roots = append(t.Roots[:i:i], t.Roots[i+1:]...)
			return
		}
	}
}

// Remove deletes n from the target, splicing its children up to n's parent
// (or to the root list when n is a root). RESTRICT requirements of n are
// discarded with it.
func (t *Target) Remove(n *TNode) {
	kids := append([]*TNode(nil), n.Kids...)
	if n.parent != nil {
		p := n.Detach()
		for _, k := range kids {
			k.parent = nil
			p.Attach(k)
		}
		n.Kids = nil
		return
	}
	t.detachNode(n)
	for _, k := range kids {
		k.parent = nil
		t.Roots = append(t.Roots, k)
	}
	n.Kids = nil
}

// String renders the target forest as indented "name <- source" lines.
func (t *Target) String() string {
	var b strings.Builder
	var walk func(n *TNode, depth int)
	walk = func(n *TNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Name)
		switch {
		case n.Source == "" && n.Fill:
			b.WriteString(" (filled)")
		case n.Source == "":
			b.WriteString(" (new)")
		case n.Clone:
			b.WriteString(" <= clone of ")
			b.WriteString(n.Source)
		default:
			b.WriteString(" <- ")
			b.WriteString(n.Source)
		}
		if len(n.Require) > 0 {
			b.WriteString(" requiring [")
			for i, r := range n.Require {
				if i > 0 {
					b.WriteString(" ")
				}
				b.WriteString(r.Source)
			}
			b.WriteString("]")
		}
		b.WriteString("\n")
		for _, k := range n.Kids {
			walk(k, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
	return b.String()
}

// EdgeCard predicts the cardinality of the target edge into n (Definition
// 7): how many n-instances each parent instance will have after rendering.
// Roots get 1..1. Edges into manufactured nodes and out of them follow the
// wrapper semantics documented in DESIGN.md: a NEW node materializes once
// per instance of its first sourced child (1..1 for childless wrappers).
func (n *TNode) EdgeCard(src *shape.Shape) shape.Card {
	p := n.parent
	if p == nil {
		return shape.One
	}
	pSrc := p.nearestSource()
	switch {
	case n.Source == "":
		// Manufactured node: one per instance of its first sourced child.
		f := n.firstSourcedChild()
		if f == nil || pSrc == "" {
			return shape.One
		}
		if c, ok := src.PathCard(pSrc, f.Source); ok {
			return c
		}
		return shape.One
	case p.Source == "":
		// Child of a manufactured wrapper: the wrapper's first sourced
		// child appears exactly once; siblings attach by closeness to it.
		f := p.firstSourcedChild()
		if f == n {
			return shape.One
		}
		if f != nil {
			if c, ok := src.PathCard(f.Source, n.Source); ok {
				return c
			}
		}
		return shape.One
	default:
		if c, ok := src.PathCard(p.Source, n.Source); ok {
			return c
		}
		// Disconnected in the source: nothing will join.
		return shape.Card{Min: 0, Max: 0}
	}
}

func (n *TNode) nearestSource() string {
	for m := n; m != nil; m = m.parent {
		if m.Source != "" {
			return m.Source
		}
	}
	return ""
}

func (n *TNode) firstSourcedChild() *TNode {
	for _, k := range n.Kids {
		if k.Source != "" {
			return k
		}
	}
	return nil
}

// OutputShape derives the adorned shape of the rendered output: types are
// the output name paths, cardinalities are the predicted edge cards. When
// two sibling target types render to the same path (CLONE next to its
// original) their cardinalities add. The result seeds the next stage of a
// composition.
func (t *Target) OutputShape(src *shape.Shape) *shape.Shape {
	out := shape.New()
	var walk func(n *TNode, parentPath string)
	walk = func(n *TNode, parentPath string) {
		path := n.Name
		if parentPath != "" {
			path = parentPath + xmltree.TypeSep + n.Name
		}
		out.AddType(path)
		if parentPath != "" {
			c := n.EdgeCard(src)
			if prev, ok := out.Card(parentPath, path); ok {
				c = shape.Card{Min: prev.Min + c.Min, Max: prev.Max + c.Max}
			}
			// setEdge semantics via AddEdge: replace cardinality.
			if err := out.AddEdge(parentPath, path, c); err != nil {
				// Same path under two different parents: keep the first
				// arrangement (collision between distinct compositions).
				return
			}
		}
		for _, k := range n.Kids {
			walk(k, path)
		}
	}
	// Sort roots for deterministic shapes.
	roots := append([]*TNode(nil), t.Roots...)
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].Name < roots[j].Name })
	for _, r := range roots {
		walk(r, "")
	}
	return out
}
