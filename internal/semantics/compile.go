package semantics

import (
	"fmt"
	"sort"

	"xmorph/internal/guard"
	"xmorph/internal/shape"
)

// Plan is a compiled guard: one StagePlan per pipeline stage, evaluated
// against the adorned shape of the source (never the data — Section VI:
// "a query guard is only a specification of a desired shape").
type Plan struct {
	Program *guard.Program
	// Source is the adorned shape the plan was compiled against.
	Source *shape.Shape
	// Stages are the pipeline stages in evaluation order.
	Stages []*StagePlan
	// Labels is the label-to-type report (Section VIII), in guard order.
	Labels []LabelResolution
}

// StagePlan is one evaluated stage.
type StagePlan struct {
	Stage *guard.Stage
	// Input is the stage's input shape (the source shape, or the previous
	// stage's predicted output).
	Input *shape.Shape
	// Target is the stage's transformed arrangement of Input's types.
	Target *Target
	// Output is the predicted adorned shape of the rendered stage output;
	// it seeds the next stage.
	Output *shape.Shape
}

// Compile evaluates the semantic function ξ of every stage against the
// source shape, threading each stage's predicted output shape into the
// next stage (COMPOSE pipes shapes, Section VI).
func Compile(prog *guard.Program, src *shape.Shape) (*Plan, error) {
	plan := &Plan{Program: prog, Source: src}
	in := src
	for _, st := range prog.Stages {
		ev := &evaluator{in: in, typeFill: prog.TypeFill, res: map[*guard.Term]*LabelResolution{}}
		var (
			tgt *Target
			err error
		)
		switch st.Kind {
		case guard.StageMorph:
			tgt, err = ev.morph(st)
		case guard.StageMutate:
			tgt, err = ev.mutate(st)
		case guard.StageTranslate:
			tgt, err = ev.translate(st)
		default:
			err = fmt.Errorf("semantics: unknown stage kind %v", st.Kind)
		}
		if err != nil {
			return nil, err
		}
		for _, r := range ev.res {
			plan.Labels = append(plan.Labels, *r)
		}
		out := tgt.OutputShape(in)
		plan.Stages = append(plan.Stages, &StagePlan{Stage: st, Input: in, Target: tgt, Output: out})
		in = out
	}
	sort.SliceStable(plan.Labels, func(i, j int) bool { return plan.Labels[i].Pos < plan.Labels[j].Pos })
	return plan, nil
}

// Final returns the last stage's target, the arrangement actually rendered
// last.
func (p *Plan) Final() *StagePlan { return p.Stages[len(p.Stages)-1] }

// evaluator evaluates one stage against an input shape.
type evaluator struct {
	in       *shape.Shape
	typeFill bool
	res      map[*guard.Term]*LabelResolution
}

// resolveLabel matches a label term against the input types, recording the
// resolution. With TYPE-FILL on, an unmatched label yields (nil, true, nil)
// and the caller manufactures a filled type.
func (ev *evaluator) resolveLabel(term *guard.Term) (types []string, filled bool, err error) {
	cands := matchTypes(term.Label, ev.in.Types())
	r := &LabelResolution{Label: term.Label, Pos: term.Pos, Candidates: cands, Types: cands}
	ev.res[term] = r
	if len(cands) == 0 {
		if ev.typeFill {
			r.Filled = true
			return nil, true, nil
		}
		return nil, false, &TypeError{Label: term.Label, Pos: term.Pos}
	}
	return cands, false, nil
}

// recordKept narrows a label's reported resolution to the types that
// survived closeness pruning.
func (ev *evaluator) recordKept(term *guard.Term, kept []string) {
	if r, ok := ev.res[term]; ok {
		set := map[string]bool{}
		for _, k := range kept {
			set[k] = true
		}
		var out []string
		for _, t := range r.Types {
			if set[t] {
				out = append(out, t)
			}
		}
		r.Types = out
	}
}
