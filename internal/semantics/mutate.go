package semantics

import (
	"fmt"

	"xmorph/internal/guard"
	"xmorph/internal/xmltree"
)

// mutate evaluates ξ[MUTATE pattern]: the entire input shape is the
// starting point, and the pattern re-arranges the parts it mentions,
// leaving the rest unchanged (Section III; re-parenting rule documented in
// DESIGN.md).
func (ev *evaluator) mutate(st *guard.Stage) (*Target, error) {
	t, idx := fullTarget(ev.in)
	m := &mutator{ev: ev, t: t, idx: idx}
	for _, pat := range st.Patterns {
		if _, err := m.apply(pat, nil); err != nil {
			return nil, err
		}
	}
	if len(t.Roots) == 0 {
		return nil, fmt.Errorf("semantics: MUTATE dropped every type")
	}
	return t, nil
}

// translate evaluates ξ[TRANSLATE dictionary]: an identity arrangement with
// the matching types renamed (Section VI — the translation renames every
// type sharing the matched base type, clones included).
func (ev *evaluator) translate(st *guard.Stage) (*Target, error) {
	t, _ := fullTarget(ev.in)
	for _, r := range st.Renames {
		matched := false
		t.Walk(func(n *TNode) {
			if MatchLabel(r.From, n.Source) {
				n.Name = r.To
				matched = true
			}
		})
		if !matched && !ev.typeFill {
			return nil, &TypeError{Label: r.From, Pos: st.Pos}
		}
	}
	return t, nil
}

// mutator applies MUTATE pattern terms to a full target.
type mutator struct {
	ev  *evaluator
	t   *Target
	idx map[string]*TNode // source type -> its (unique) target node
}

// apply applies one pattern term under the given context nodes (nil at the
// top of the pattern) and returns the target nodes the term resolved to.
func (m *mutator) apply(term *guard.Term, ctx []*TNode) ([]*TNode, error) {
	switch term.Kind {
	case guard.TermLabel:
		nodes, err := m.resolveNodes(term, ctx)
		if err != nil {
			return nil, err
		}
		if ctx != nil {
			if err := m.reparentClosest(nodes, ctx); err != nil {
				return nil, err
			}
		}
		return m.applyKids(term, nodes)

	case guard.TermDrop:
		nodes, err := m.resolveDropTarget(term.Operand)
		if err != nil {
			return nil, err
		}
		for _, n := range nodes {
			m.t.Remove(n)
			if n.Source != "" {
				delete(m.idx, n.Source)
			}
		}
		return nil, nil

	case guard.TermNew:
		return m.applyNew(term, ctx)

	case guard.TermClone:
		if ctx == nil {
			return nil, fmt.Errorf("semantics: CLONE needs an enclosing pattern term in MUTATE")
		}
		ops, err := m.resolveNodes(labelOrErr(term.Operand), nil)
		if err != nil {
			return nil, err
		}
		var clones []*TNode
		for _, p := range ctx {
			for _, o := range ops {
				c := o.Copy()
				c.Walk(func(x *TNode) { x.Clone = true })
				p.Attach(c)
				clones = append(clones, c)
			}
		}
		return clones, nil

	case guard.TermRestrict:
		nodes, err := m.resolveNodes(labelOrErr(term.Operand), ctx)
		if err != nil {
			return nil, err
		}
		// The operand's kids become requirements on the restricted type.
		for _, kid := range term.Operand.Kids {
			lbl := labelOf(kid)
			if lbl == nil {
				return nil, fmt.Errorf("semantics: RESTRICT requirement must be a label pattern, got %q", kid.String())
			}
			types, filled, err := m.ev.resolveLabel(lbl)
			if err != nil {
				return nil, err
			}
			if filled {
				continue
			}
			for _, n := range nodes {
				_, kept, _ := closestPairs([]string{n.Source}, types)
				for _, kt := range kept {
					req := NewLeaf(kt)
					req.Require = nil
					reqKids, err := requireSubtree(kid, kt, m.ev)
					if err != nil {
						return nil, err
					}
					req.Kids = reqKids
					n.Require = append(n.Require, req)
				}
			}
		}
		if ctx != nil {
			if err := m.reparentClosest(nodes, ctx); err != nil {
				return nil, err
			}
		}
		return m.applyKids(term, nodes)

	case guard.TermChildren, guard.TermDescendants:
		// The whole shape is already present under MUTATE.
		return nil, fmt.Errorf("semantics: %s is redundant in a MUTATE shape", term.Kind)
	}
	return nil, fmt.Errorf("semantics: unexpected term kind %v in MUTATE", term.Kind)
}

// applyKids recurses into a term's bracketed children with the resolved
// nodes as context.
func (m *mutator) applyKids(term *guard.Term, nodes []*TNode) ([]*TNode, error) {
	for _, kid := range term.Kids {
		if _, err := m.apply(kid, nodes); err != nil {
			return nil, err
		}
	}
	return nodes, nil
}

// resolveNodes resolves a label term to existing target nodes, pruning
// ambiguous candidates by closeness to the context types.
func (m *mutator) resolveNodes(term *guard.Term, ctx []*TNode) ([]*TNode, error) {
	if term == nil || term.Kind != guard.TermLabel {
		return nil, fmt.Errorf("semantics: expected a label in MUTATE pattern")
	}
	types, filled, err := m.ev.resolveLabel(term)
	if err != nil {
		return nil, err
	}
	if filled {
		// TYPE-FILL: manufacture a fresh type below the context (or as a
		// new root).
		n := &TNode{Name: term.Label, Fill: true}
		if len(ctx) > 0 {
			ctx[0].Attach(n)
		} else {
			m.t.Roots = append(m.t.Roots, n)
		}
		return []*TNode{n}, nil
	}
	if len(ctx) > 0 {
		ctxTypes := make([]string, 0, len(ctx))
		for _, c := range ctx {
			if c.Source != "" {
				ctxTypes = append(ctxTypes, c.Source)
			}
		}
		if len(ctxTypes) > 0 {
			_, kept, _ := closestPairs(dedupe(ctxTypes), types)
			m.ev.recordKept(term, kept)
			types = kept
		}
	}
	var nodes []*TNode
	for _, ty := range types {
		if n, ok := m.idx[ty]; ok {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		return nil, &TypeError{Label: term.Label, Pos: term.Pos}
	}
	return nodes, nil
}

// resolveDropTarget resolves DROP's operand. The operand's kids are
// context only: DROP title [ book ] removes the title type closest to a
// book type.
func (m *mutator) resolveDropTarget(op *guard.Term) ([]*TNode, error) {
	if op == nil || op.Kind != guard.TermLabel {
		return nil, fmt.Errorf("semantics: DROP expects a label pattern")
	}
	types, filled, err := m.ev.resolveLabel(op)
	if err != nil {
		return nil, err
	}
	if filled {
		return nil, nil // dropping a type that does not exist: no-op
	}
	for _, kid := range op.Kids {
		lbl := labelOf(kid)
		if lbl == nil {
			return nil, fmt.Errorf("semantics: DROP context must be labels, got %q", kid.String())
		}
		kts, kFilled, err := m.ev.resolveLabel(lbl)
		if err != nil {
			return nil, err
		}
		if kFilled {
			continue
		}
		kept, _, _ := closestPairs(types, kts)
		m.ev.recordKept(op, kept)
		types = kept
	}
	var nodes []*TNode
	for _, ty := range types {
		if n, ok := m.idx[ty]; ok {
			nodes = append(nodes, n)
		}
	}
	return nodes, nil
}

// applyNew wraps pattern children in a manufactured element: the NEW node
// takes the position of its first resolved child, which moves below it
// (DESIGN.md's documented choice, reproducing "wraps each author in a
// scribe").
func (m *mutator) applyNew(term *guard.Term, ctx []*TNode) ([]*TNode, error) {
	nd := &TNode{Name: term.Label}
	switch {
	case len(term.Kids) > 0:
		first, err := m.resolveNodes(labelOrErr(term.Kids[0]), ctx)
		if err != nil {
			return nil, err
		}
		anchor := first[0]
		if p := anchor.Parent(); p != nil {
			anchor.Detach()
			p.Attach(nd)
		} else {
			m.t.detachNode(anchor)
			m.t.Roots = append(m.t.Roots, nd)
		}
		nd.Attach(anchor)
		for _, extra := range first[1:] {
			if err := m.t.Reparent(nd, extra); err != nil {
				return nil, err
			}
		}
		for _, kid := range term.Kids[1:] {
			if _, err := m.apply(kid, []*TNode{nd}); err != nil {
				return nil, err
			}
		}
		// Recurse into the first kid's own children.
		if _, err := m.applyKids(term.Kids[0], first); err != nil {
			return nil, err
		}
	case len(ctx) > 0:
		ctx[0].Attach(nd)
	default:
		m.t.Roots = append(m.t.Roots, nd)
	}
	return []*TNode{nd}, nil
}

// reparentClosest moves each resolved node below its closest context node.
func (m *mutator) reparentClosest(nodes, ctx []*TNode) error {
	for _, n := range nodes {
		best := ctx[0]
		if n.Source != "" {
			bestD := -1
			for _, c := range ctx {
				if c.Source == "" {
					continue
				}
				d := xmltree.TypeDistance(c.Source, n.Source)
				if bestD < 0 || d < bestD {
					best, bestD = c, d
				}
			}
		}
		if best == n {
			continue
		}
		if err := m.t.Reparent(best, n); err != nil {
			return err
		}
	}
	return nil
}

// requireSubtree builds nested requirement nodes for a RESTRICT pattern
// kid's own children.
func requireSubtree(kid *guard.Term, parentType string, ev *evaluator) ([]*TNode, error) {
	var out []*TNode
	for _, sub := range kid.Kids {
		lbl := labelOf(sub)
		if lbl == nil {
			return nil, fmt.Errorf("semantics: RESTRICT requirement must be a label pattern, got %q", sub.String())
		}
		types, filled, err := ev.resolveLabel(lbl)
		if err != nil {
			return nil, err
		}
		if filled {
			continue
		}
		_, kept, _ := closestPairs([]string{parentType}, types)
		for _, kt := range kept {
			n := NewLeaf(kt)
			kids, err := requireSubtree(sub, kt, ev)
			if err != nil {
				return nil, err
			}
			n.Kids = kids
			out = append(out, n)
		}
	}
	return out, nil
}

// labelOrErr returns the term if it is a label (or unwraps to one), for
// constructs that require label operands.
func labelOrErr(t *guard.Term) *guard.Term {
	if l := labelOf(t); l != nil {
		return l
	}
	return t
}
