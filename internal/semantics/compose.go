package semantics

// ComposedTarget folds the pipeline's stage targets into one target over
// the original source types, implementing the paper's composition
// semantics: ξ[COMPOSE P Q](S) = ξ[Q](ξ[P](S)), with the data rendered
// once from the original closest graph (Ψ[P](G, S) = render(G, ξ[P](S))).
//
// Each later stage's target references the previous stage's *output* types
// (its predicted shape); composition substitutes those references with the
// earlier stage's source mapping, so the final target speaks entirely in
// source types.
func (p *Plan) ComposedTarget() *Target {
	cur := p.Stages[0].Target
	for _, sp := range p.Stages[1:] {
		cur = composeTargets(cur, sp.Target)
	}
	return cur
}

// composeTargets rewrites t2 (expressed over t1's output type paths) into a
// target over t1's source types. Structure comes from t2; source mapping,
// clone/fill marks, and RESTRICT requirements come from the t1 node each
// output path resolves to. An output path produced by several t1 nodes
// (e.g. a clone next to its original) expands into one composed node per
// producer.
func composeTargets(t1, t2 *Target) *Target {
	idx := map[string][]*TNode{}
	var indexWalk func(n *TNode, parentPath string)
	indexWalk = func(n *TNode, parentPath string) {
		path := n.Name
		if parentPath != "" {
			path = parentPath + "." + n.Name
		}
		idx[path] = append(idx[path], n)
		for _, k := range n.Kids {
			indexWalk(k, path)
		}
	}
	for _, r := range t1.Roots {
		indexWalk(r, "")
	}

	var conv func(n *TNode) []*TNode
	conv = func(n *TNode) []*TNode {
		producers := idx[n.Source]
		if n.Source == "" || len(producers) == 0 {
			// Manufactured in t2 (or referencing a type t1 does not
			// produce, e.g. a TYPE-FILL): stays manufactured.
			out := &TNode{Name: n.Name, Fill: n.Fill}
			for _, k := range n.Kids {
				for _, ck := range conv(k) {
					out.Attach(ck)
				}
			}
			return []*TNode{out}
		}
		var outs []*TNode
		for _, t1n := range producers {
			out := &TNode{
				Name:   n.Name,
				Source: t1n.Source,
				Clone:  t1n.Clone || n.Clone,
				Fill:   t1n.Fill || n.Fill,
			}
			// t1's requirements filter the same vertices in the composed
			// render; t2's requirements are converted recursively.
			for _, r := range t1n.Require {
				rc := r.Copy()
				rc.parent = out
				out.Require = append(out.Require, rc)
			}
			for _, r := range n.Require {
				for _, cr := range conv(r) {
					cr.parent = out
					out.Require = append(out.Require, cr)
				}
			}
			for _, k := range n.Kids {
				for _, ck := range conv(k) {
					out.Attach(ck)
				}
			}
			outs = append(outs, out)
		}
		return outs
	}

	out := &Target{}
	for _, r := range t2.Roots {
		out.Roots = append(out.Roots, conv(r)...)
	}
	return out
}
