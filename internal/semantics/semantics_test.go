package semantics

import (
	"strings"
	"testing"

	"xmorph/internal/guard"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

const fig1a = `<data>
  <book>
    <title>X</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
  <book>
    <title>Y</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
</data>`

const fig1b = `<data>
  <publisher>
    <name>W</name>
    <book>
      <title>X</title>
      <author><name>V</name></author>
    </book>
    <book>
      <title>Y</title>
      <author><name>V</name></author>
    </book>
  </publisher>
</data>`

const fig1c = `<data>
  <author>
    <name>V</name>
    <book>
      <title>X</title>
      <publisher><name>W</name></publisher>
    </book>
    <book>
      <title>Y</title>
      <publisher><name>W</name></publisher>
    </book>
  </author>
</data>`

func compile(t *testing.T, guardSrc, xmlSrc string) *Plan {
	t.Helper()
	s := shape.FromDocument(xmltree.MustParse(xmlSrc))
	p, err := Compile(guard.MustParse(guardSrc), s)
	if err != nil {
		t.Fatalf("Compile(%q): %v", guardSrc, err)
	}
	return p
}

// findKid returns the kid with the given name, or nil.
func findKid(n *TNode, name string) *TNode {
	for _, k := range n.Kids {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// TestMorphFig2 reproduces Figure 2: the guard MORPH author [ name book [
// title ] ] builds the same target arrangement for all three instances of
// Figure 1 (modulo the source types feeding each target type).
func TestMorphFig2(t *testing.T) {
	for _, src := range []string{fig1a, fig1b, fig1c} {
		p := compile(t, "MORPH author [ name book [ title ] ]", src)
		tgt := p.Final().Target
		if len(tgt.Roots) != 1 {
			t.Fatalf("roots = %d, want 1\n%s", len(tgt.Roots), tgt)
		}
		author := tgt.Roots[0]
		if author.Name != "author" || !strings.HasSuffix(author.Source, "author") {
			t.Errorf("root = %s <- %s", author.Name, author.Source)
		}
		name := findKid(author, "name")
		book := findKid(author, "book")
		if name == nil || book == nil {
			t.Fatalf("author kids missing:\n%s", tgt)
		}
		// The ambiguous label "name" must resolve to the author's name,
		// not the publisher's.
		if !strings.Contains(name.Source, "author") {
			t.Errorf("name resolved to %s, want the author name", name.Source)
		}
		if title := findKid(book, "title"); title == nil {
			t.Errorf("book has no title kid:\n%s", tgt)
		}
	}
}

// TestMorphFig3 reproduces Figure 3's guard: author [ title name publisher
// [ name ] ] — the nested name must resolve to the publisher's name.
func TestMorphFig3(t *testing.T) {
	p := compile(t, "MORPH author [ title name publisher [ name ] ]", fig1c)
	author := p.Final().Target.Roots[0]
	pub := findKid(author, "publisher")
	if pub == nil {
		t.Fatalf("no publisher kid:\n%s", p.Final().Target)
	}
	pubName := findKid(pub, "name")
	if pubName == nil || !strings.Contains(pubName.Source, "publisher") {
		t.Errorf("publisher name resolved wrong: %+v", pubName)
	}
	authorName := findKid(author, "name")
	if authorName == nil || strings.Contains(authorName.Source, "publisher") {
		t.Errorf("author name resolved wrong: %+v", authorName)
	}
}

func TestMorphStarAbbreviations(t *testing.T) {
	p := compile(t, "MORPH data [ book [ * ] ]", fig1a)
	data := p.Final().Target.Roots[0]
	book := findKid(data, "book")
	if book == nil {
		t.Fatal("no book")
	}
	// * brings in title, author, publisher (one level).
	for _, want := range []string{"title", "author", "publisher"} {
		if findKid(book, want) == nil {
			t.Errorf("missing * child %s:\n%s", want, p.Final().Target)
		}
	}
	if author := findKid(book, "author"); author != nil && findKid(author, "name") != nil {
		t.Errorf("* should be one level only:\n%s", p.Final().Target)
	}
}

func TestMorphDescendants(t *testing.T) {
	p := compile(t, "MORPH data [ book [ ** ] ]", fig1a)
	book := findKid(p.Final().Target.Roots[0], "book")
	author := findKid(book, "author")
	if author == nil || findKid(author, "name") == nil {
		t.Errorf("** should copy the whole subtree:\n%s", p.Final().Target)
	}
}

func TestMorphExplicitKidWinsOverStar(t *testing.T) {
	p := compile(t, "MORPH book [ publisher [ name ] * ]", fig1a)
	book := p.Final().Target.Roots[0]
	count := 0
	for _, k := range book.Kids {
		if k.Name == "publisher" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("publisher appears %d times, want 1 (dedupe):\n%s", count, p.Final().Target)
	}
}

func TestMorphTypeMismatch(t *testing.T) {
	s := shape.FromDocument(xmltree.MustParse(fig1a))
	_, err := Compile(guard.MustParse("MORPH author [ isbn ]"), s)
	te, ok := err.(*TypeError)
	if !ok {
		t.Fatalf("error = %v, want TypeError", err)
	}
	if te.Label != "isbn" {
		t.Errorf("label = %s", te.Label)
	}
}

func TestMorphTypeFill(t *testing.T) {
	p := compile(t, "TYPE-FILL MORPH author [ isbn ]", fig1a)
	author := p.Final().Target.Roots[0]
	isbn := findKid(author, "isbn")
	if isbn == nil || !isbn.Fill {
		t.Errorf("isbn not filled:\n%s", p.Final().Target)
	}
	var found bool
	for _, l := range p.Labels {
		if l.Label == "isbn" && l.Filled {
			found = true
		}
	}
	if !found {
		t.Errorf("label report missing fill entry: %+v", p.Labels)
	}
}

func TestMorphDottedDisambiguation(t *testing.T) {
	p := compile(t, "MORPH book [ publisher.name ]", fig1a)
	book := p.Final().Target.Roots[0]
	name := findKid(book, "name")
	if name == nil || name.Source != "data.book.publisher.name" {
		t.Errorf("dotted label resolved to %+v", name)
	}
}

func TestMutateFig1bToA(t *testing.T) {
	// MUTATE book [ publisher [ name ] ] moves publisher below book.
	p := compile(t, "MUTATE book [ publisher [ name ] ]", fig1b)
	tgt := p.Final().Target
	data := tgt.Roots[0]
	book := findKid(data, "book")
	if book == nil {
		t.Fatalf("book not spliced up to data:\n%s", tgt)
	}
	pub := findKid(book, "publisher")
	if pub == nil {
		t.Fatalf("publisher not below book:\n%s", tgt)
	}
	if findKid(pub, "name") == nil {
		t.Errorf("publisher name missing:\n%s", tgt)
	}
	// author kept its position below book.
	if findKid(book, "author") == nil {
		t.Errorf("author lost:\n%s", tgt)
	}
}

func TestMutateSwap(t *testing.T) {
	p := compile(t, "MUTATE name [ author ]", fig1c)
	tgt := p.Final().Target
	data := tgt.Roots[0]
	name := findKid(data, "name")
	if name == nil {
		t.Fatalf("name not spliced up:\n%s", tgt)
	}
	author := findKid(name, "author")
	if author == nil {
		t.Fatalf("author not below name:\n%s", tgt)
	}
	if findKid(author, "book") == nil {
		t.Errorf("author's book subtree lost:\n%s", tgt)
	}
}

func TestMutateIdentity(t *testing.T) {
	p := compile(t, "MUTATE data", fig1a)
	out := p.Final().Output
	src := p.Source
	if out.String() != src.String() {
		t.Errorf("MUTATE data should be identity:\nsrc:\n%s\nout:\n%s", src, out)
	}
}

func TestMutateDrop(t *testing.T) {
	p := compile(t, "MUTATE (DROP title)", fig1a)
	tgt := p.Final().Target
	tgt.Walk(func(n *TNode) {
		if n.Name == "title" {
			t.Errorf("title survived DROP:\n%s", tgt)
		}
	})
	// Other types survive.
	found := false
	tgt.Walk(func(n *TNode) {
		if n.Name == "publisher" {
			found = true
		}
	})
	if !found {
		t.Errorf("publisher should survive:\n%s", tgt)
	}
}

func TestMutateDropSplicesChildren(t *testing.T) {
	p := compile(t, "MUTATE (DROP author)", fig1a)
	tgt := p.Final().Target
	book := findKid(tgt.Roots[0], "book")
	if findKid(book, "name") == nil {
		t.Errorf("author's name should splice up to book:\n%s", tgt)
	}
}

func TestMutateDropWithContext(t *testing.T) {
	// Two name types; DROP name [ publisher ] must remove only the
	// publisher's name.
	p := compile(t, "MUTATE (DROP name [ publisher ])", fig1a)
	tgt := p.Final().Target
	book := findKid(tgt.Roots[0], "book")
	pub := findKid(book, "publisher")
	if pub == nil {
		t.Fatalf("publisher missing:\n%s", tgt)
	}
	if findKid(pub, "name") != nil {
		t.Errorf("publisher name survived:\n%s", tgt)
	}
	author := findKid(book, "author")
	if findKid(author, "name") == nil {
		t.Errorf("author name wrongly dropped:\n%s", tgt)
	}
}

func TestMutateClone(t *testing.T) {
	p := compile(t, "MUTATE author [ CLONE title ]", fig1a)
	tgt := p.Final().Target
	book := findKid(tgt.Roots[0], "book")
	author := findKid(book, "author")
	clone := findKid(author, "title")
	if clone == nil || !clone.Clone {
		t.Fatalf("author has no cloned title:\n%s", tgt)
	}
	// The original title must still be under book.
	orig := findKid(book, "title")
	if orig == nil || orig.Clone {
		t.Errorf("original title missing or marked clone:\n%s", tgt)
	}
}

func TestMutateNewWrapsAuthor(t *testing.T) {
	p := compile(t, "MUTATE (NEW scribe) [ author ]", fig1a)
	tgt := p.Final().Target
	book := findKid(tgt.Roots[0], "book")
	scribe := findKid(book, "scribe")
	if scribe == nil || scribe.Source != "" {
		t.Fatalf("scribe not manufactured at author's old position:\n%s", tgt)
	}
	author := findKid(scribe, "author")
	if author == nil || findKid(author, "name") == nil {
		t.Errorf("author (with subtree) not below scribe:\n%s", tgt)
	}
}

func TestMutateRestrict(t *testing.T) {
	p := compile(t, "MUTATE (RESTRICT author [ name ])", fig1a)
	tgt := p.Final().Target
	book := findKid(tgt.Roots[0], "book")
	author := findKid(book, "author")
	if author == nil || len(author.Require) != 1 {
		t.Fatalf("author requirement missing:\n%s", tgt)
	}
	if !strings.HasSuffix(author.Require[0].Source, "author.name") {
		t.Errorf("requirement = %s", author.Require[0].Source)
	}
}

func TestMorphRestrict(t *testing.T) {
	p := compile(t, "MORPH (RESTRICT name [ author ]) [ title ]", fig1a)
	tgt := p.Final().Target
	name := tgt.Roots[0]
	if name.Name != "name" || len(name.Require) != 1 {
		t.Fatalf("restricted root wrong:\n%s", tgt)
	}
	if findKid(name, "title") == nil {
		t.Errorf("outer kids not attached:\n%s", tgt)
	}
	if findKid(name, "author") != nil {
		t.Errorf("requirement leaked into output kids:\n%s", tgt)
	}
}

func TestTranslate(t *testing.T) {
	p := compile(t, "TRANSLATE author -> writer", fig1a)
	tgt := p.Final().Target
	found := false
	tgt.Walk(func(n *TNode) {
		if n.Name == "writer" {
			found = true
		}
		if n.Name == "author" {
			t.Errorf("author not renamed:\n%s", tgt)
		}
	})
	if !found {
		t.Errorf("writer missing:\n%s", tgt)
	}
}

func TestTranslateUnknownLabel(t *testing.T) {
	s := shape.FromDocument(xmltree.MustParse(fig1a))
	if _, err := Compile(guard.MustParse("TRANSLATE ghost -> spirit"), s); err == nil {
		t.Error("TRANSLATE of unknown label should fail without TYPE-FILL")
	}
	if _, err := Compile(guard.MustParse("TYPE-FILL TRANSLATE ghost -> spirit"), s); err != nil {
		t.Errorf("TYPE-FILL TRANSLATE should tolerate unknown label: %v", err)
	}
}

func TestComposeMorphThenDrop(t *testing.T) {
	p := compile(t, "MORPH author [ name ] | MUTATE (DROP name)", fig1a)
	if len(p.Stages) != 2 {
		t.Fatalf("stages = %d", len(p.Stages))
	}
	out := p.Final().Output
	types := out.Types()
	if len(types) != 1 || types[0] != "author" {
		t.Errorf("final types = %v, want [author]", types)
	}
}

func TestComposeTranslate(t *testing.T) {
	p := compile(t, "MORPH author [ name ] | TRANSLATE author -> writer", fig1a)
	out := p.Final().Output
	if !out.HasType("writer") || !out.HasType("writer.name") {
		t.Errorf("final types = %v", out.Types())
	}
}

func TestOutputShapePredictedCards(t *testing.T) {
	// MORPH author [ title ] on instance (c): each author gets its closest
	// titles; an author with two books gets two titles (predicted card is
	// the path cardinality 1..2 when authors have 1..2 books).
	src := `<data>
	  <author><name>V</name>
	    <book><title>X</title></book>
	    <book><title>Y</title></book>
	  </author>
	  <author><name>U</name>
	    <book><title>Z</title></book>
	  </author>
	</data>`
	p := compile(t, "MORPH author [ title ]", src)
	out := p.Final().Output
	c, ok := out.Card("author", "author.title")
	if !ok || c != (shape.Card{Min: 1, Max: 2}) {
		t.Errorf("predicted card = %v %v, want 1..2", c, ok)
	}
}

func TestLabelReport(t *testing.T) {
	p := compile(t, "MORPH author [ name book [ title ] ]", fig1a)
	byLabel := map[string]LabelResolution{}
	for _, l := range p.Labels {
		byLabel[l.Label] = l
	}
	name, ok := byLabel["name"]
	if !ok {
		t.Fatalf("no name entry: %+v", p.Labels)
	}
	if len(name.Candidates) != 2 {
		t.Errorf("name candidates = %v, want both name types", name.Candidates)
	}
	if len(name.Types) != 1 || !strings.Contains(name.Types[0], "author") {
		t.Errorf("name resolved = %v, want author name only", name.Types)
	}
}

func TestMorphCaseInsensitiveLabels(t *testing.T) {
	p := compile(t, "MORPH AUTHOR [ NAME ]", fig1a)
	author := p.Final().Target.Roots[0]
	if author.Source != "data.book.author" {
		t.Errorf("case-insensitive label resolution failed: %+v", author)
	}
}

func TestMatchLabel(t *testing.T) {
	tests := []struct {
		label, ty string
		want      bool
	}{
		{"author", "data.book.author", true},
		{"Author", "data.book.author", true},
		{"author", "data.book.author.name", false},
		{"book.author", "data.book.author", true},
		{"journal.author", "data.book.author", false},
		{"id", "site.item.@id", true},
		{"@id", "site.item.@id", true},
		{"@id", "site.item.id", false},
		{"data.book", "data.book", true},
		{"x.data.book", "data.book", false},
	}
	for _, tt := range tests {
		if got := MatchLabel(tt.label, tt.ty); got != tt.want {
			t.Errorf("MatchLabel(%q, %q) = %v, want %v", tt.label, tt.ty, got, tt.want)
		}
	}
}

func TestTargetReparentAndRemove(t *testing.T) {
	a := &TNode{Name: "a", Source: "a"}
	b := &TNode{Name: "b", Source: "a.b"}
	c := &TNode{Name: "c", Source: "a.b.c"}
	a.Attach(b)
	b.Attach(c)
	tgt := &Target{Roots: []*TNode{a}}

	// Swap: move a under c (c is inside a's subtree).
	if err := tgt.Reparent(c, a); err != nil {
		t.Fatal(err)
	}
	if len(tgt.Roots) != 1 || tgt.Roots[0] != c {
		t.Fatalf("roots after swap = %+v", tgt.Roots)
	}
	if a.Parent() != c || b.Parent() != a {
		t.Errorf("structure after swap wrong:\n%s", tgt)
	}

	// Remove c: a splices up to root.
	tgt.Remove(c)
	if len(tgt.Roots) != 1 || tgt.Roots[0] != a {
		t.Errorf("roots after remove = %+v", tgt.Roots)
	}
}

func TestTargetString(t *testing.T) {
	p := compile(t, "MUTATE author [ CLONE title ]", fig1a)
	s := p.Final().Target.String()
	if !strings.Contains(s, "clone of") {
		t.Errorf("target string lacks clone marker:\n%s", s)
	}
}

func TestComposedTargetFoldsPipeline(t *testing.T) {
	p := compile(t, "MORPH author [ name ] | MUTATE (DROP name)", fig1a)
	ct := p.ComposedTarget()
	if len(ct.Roots) != 1 {
		t.Fatalf("composed roots = %d\n%s", len(ct.Roots), ct)
	}
	author := ct.Roots[0]
	if author.Source != "data.book.author" || len(author.Kids) != 0 {
		t.Errorf("composed author wrong: %+v", author)
	}
}

func TestComposedTargetTranslateKeepsSources(t *testing.T) {
	p := compile(t, "MORPH author [ name ] | TRANSLATE author -> writer", fig1a)
	ct := p.ComposedTarget()
	writer := ct.Roots[0]
	if writer.Name != "writer" || writer.Source != "data.book.author" {
		t.Errorf("composed writer = %+v", writer)
	}
	if len(writer.Kids) != 1 || writer.Kids[0].Source != "data.book.author.name" {
		t.Errorf("composed kids = %+v", writer.Kids)
	}
}

func TestComposedTargetPreservesRequirements(t *testing.T) {
	p := compile(t, "CAST MORPH (RESTRICT author [ name ]) [ title ] | TRANSLATE author -> a2", fig1a)
	ct := p.ComposedTarget()
	a2 := ct.Roots[0]
	if a2.Name != "a2" || len(a2.Require) != 1 {
		t.Errorf("requirements lost in composition: %+v", a2)
	}
}

func TestComposedSingleStageIsStageTarget(t *testing.T) {
	p := compile(t, "MORPH author [ name ]", fig1a)
	if p.ComposedTarget() != p.Stages[0].Target {
		t.Error("single-stage composition should be the stage target itself")
	}
}

func TestMutateNestedRestrictRequirements(t *testing.T) {
	// RESTRICT with a nested requirement chain: authors that have a book
	// that has a title.
	p := compile(t, "MUTATE (RESTRICT author [ book [ title ] ])", fig1c)
	author := findKid(p.Final().Target.Roots[0], "author")
	if author == nil || len(author.Require) != 1 {
		t.Fatalf("requirement missing:\n%s", p.Final().Target)
	}
	req := author.Require[0]
	if !strings.HasSuffix(req.Source, "book") || len(req.Kids) != 1 || !strings.HasSuffix(req.Kids[0].Source, "title") {
		t.Errorf("nested requirement wrong: %+v", req)
	}
}

func TestMutateNewUnderContext(t *testing.T) {
	// NEW nested inside a pattern term: attaches below the context type.
	p := compile(t, "MUTATE book [ (NEW note) ]", fig1a)
	book := findKid(p.Final().Target.Roots[0], "book")
	if findKid(book, "note") == nil {
		t.Errorf("NEW under context missing:\n%s", p.Final().Target)
	}
}

func TestMutateNewAtTopLevelNoKids(t *testing.T) {
	p := compile(t, "MUTATE (NEW marker)", fig1a)
	found := false
	for _, r := range p.Final().Target.Roots {
		if r.Name == "marker" && r.Source == "" {
			found = true
		}
	}
	if !found {
		t.Errorf("top-level NEW missing:\n%s", p.Final().Target)
	}
}

func TestMorphCloneWithKids(t *testing.T) {
	p := compile(t, "MORPH author [ CLONE book [ title ] ]", fig1c)
	author := p.Final().Target.Roots[0]
	book := findKid(author, "book")
	if book == nil || !book.Clone {
		t.Fatalf("cloned book missing:\n%s", p.Final().Target)
	}
	title := findKid(book, "title")
	if title == nil || !title.Clone {
		t.Errorf("clone must mark the whole subtree:\n%s", p.Final().Target)
	}
}

func TestMorphMultiplePatterns(t *testing.T) {
	p := compile(t, "MORPH title name", fig1a)
	tgt := p.Final().Target
	names := map[string]int{}
	for _, r := range tgt.Roots {
		names[r.Name]++
	}
	if names["title"] != 1 || names["name"] != 2 {
		t.Errorf("multi-pattern roots = %v (name is ambiguous: both types become roots)", names)
	}
}

func TestTNodeCopyIndependence(t *testing.T) {
	p := compile(t, "CAST MORPH (RESTRICT author [ name ]) [ title ]", fig1a)
	orig := p.Final().Target.Roots[0]
	cp := orig.Copy()
	cp.Name = "changed"
	cp.Require[0].Source = "changed"
	if orig.Name == "changed" || orig.Require[0].Source == "changed" {
		t.Error("Copy is shallow")
	}
}

func TestEdgeCardDisconnected(t *testing.T) {
	// An edge between types from different trees predicts 0..0.
	s := shape.New()
	s.AddType("a")
	s.AddType("b")
	parent := NewLeaf("a")
	kid := NewLeaf("b")
	parent.Attach(kid)
	if c := kid.EdgeCard(s); c.Max != 0 {
		t.Errorf("disconnected edge card = %v, want 0..0", c)
	}
}

func TestTypeErrorMessage(t *testing.T) {
	e := &TypeError{Label: "ghost", Pos: 7}
	if !strings.Contains(e.Error(), "ghost") || !strings.Contains(e.Error(), "7") {
		t.Errorf("TypeError message: %s", e)
	}
}

func TestComposedTargetMultiProducerExpansion(t *testing.T) {
	// Stage 1 puts a clone of title next to the original under book; both
	// render to the same output path, so the TRANSLATE stage's single
	// "title" reference expands to both producers.
	p := compile(t, "CAST MUTATE book [ CLONE title ] | TRANSLATE title -> heading", fig1a)
	ct := p.ComposedTarget()
	var headings, clones int
	ct.Walk(func(n *TNode) {
		if n.Name == "heading" {
			headings++
			if n.Clone {
				clones++
			}
		}
	})
	if headings != 2 {
		t.Fatalf("composed headings = %d, want original + clone:\n%s", headings, ct)
	}
	if clones != 1 {
		t.Errorf("clone mark lost in composition (%d):\n%s", clones, ct)
	}
}

func TestMutateRestrictWithOuterKidsReparents(t *testing.T) {
	// RESTRICT in MUTATE with outer kids: the restricted node both gains
	// the requirement and adopts the outer pattern children.
	p := compile(t, "CAST MUTATE (RESTRICT book [ title ]) [ publisher ]", fig1a)
	tgt := p.Final().Target
	book := findKid(tgt.Roots[0], "book")
	if book == nil || len(book.Require) == 0 {
		t.Fatalf("restricted book missing requirement:\n%s", tgt)
	}
	if findKid(book, "publisher") == nil {
		t.Errorf("outer kid not reparented below restricted node:\n%s", tgt)
	}
}
