// Package nasa generates astronomy-dataset documents shaped like the NASA
// ADC XML repository the paper's Figure 15 experiment uses. Its
// distinguishing property there is element content size: abstracts and
// descriptions are long paragraphs, so per-element text is much larger
// than in DBLP or XMark ("larger text content leads to slower times").
// Deterministic in (datasets, seed).
package nasa

import (
	"fmt"
	"math/rand"
	"strings"

	"xmorph/internal/xmltree"
)

var sentences = []string{
	"The survey catalogs positions and proper motions of stars brighter than the ninth magnitude.",
	"Photometric measurements were reduced to the standard system using nightly extinction coefficients.",
	"Spectral classifications follow the revised MK system with luminosity classes where determinable.",
	"Coordinates are given for equinox and epoch J2000 on the FK5 reference frame.",
	"The observations span twelve years of plates taken with the double astrograph.",
	"Radial velocities were obtained from objective prism plates calibrated against standard stars.",
	"Parallaxes include corrections for the systematic zero point error of the photographic series.",
	"Magnitudes in the catalog are photographic and photovisual, transformed to Johnson B and V.",
}

var instruments = []string{"astrograph", "meridian circle", "Schmidt telescope", "photometer", "spectrograph"}
var observatories = []string{"Lick", "Yerkes", "Palomar", "La Silla", "Kitt Peak"}

// Config scales the generated repository.
type Config struct {
	// Datasets is the number of <dataset> entries.
	Datasets int
	// Seed makes generation reproducible.
	Seed int64
	// AbstractSentences scales per-dataset text volume; default 6.
	AbstractSentences int
}

// Generate builds the document in memory.
func Generate(cfg Config) *xmltree.Document {
	if cfg.AbstractSentences <= 0 {
		cfg.AbstractSentences = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := xmltree.NewBuilder().Elem("datasets")
	for i := 0; i < cfg.Datasets; i++ {
		dataset(b, rng, i, cfg.AbstractSentences)
	}
	return b.End().MustDocument()
}

func paragraph(rng *rand.Rand, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = sentences[rng.Intn(len(sentences))]
	}
	return strings.Join(parts, " ")
}

func dataset(b *xmltree.Builder, rng *rand.Rand, i, abstractLen int) {
	b.Elem("dataset").Attr("subject", "astronomy")
	b.Leaf("title", fmt.Sprintf("Catalog of %s observations %d", observatories[rng.Intn(len(observatories))], i))
	b.Leaf("altname", fmt.Sprintf("ADC A%04d", i))
	b.Elem("abstract")
	for p := 0; p <= rng.Intn(2); p++ {
		b.Leaf("para", paragraph(rng, abstractLen))
	}
	b.End()

	for a := 0; a <= rng.Intn(3); a++ {
		b.Elem("author")
		b.Leaf("initial", string(rune('A'+rng.Intn(26))))
		b.Leaf("lastname", observatories[rng.Intn(len(observatories))]+"son")
		b.End()
	}

	b.Elem("date")
	b.Leaf("year", fmt.Sprint(1950+rng.Intn(50)))
	b.Leaf("month", fmt.Sprint(1+rng.Intn(12)))
	b.Leaf("day", fmt.Sprint(1+rng.Intn(28)))
	b.End()

	b.Leaf("identifier", fmt.Sprintf("I_%d", 100+i))

	b.Elem("instrument")
	b.Leaf("name", instruments[rng.Intn(len(instruments))])
	b.Leaf("observatory", observatories[rng.Intn(len(observatories))])
	b.End()

	if rng.Intn(2) == 0 {
		b.Elem("reference")
		b.Elem("source")
		b.Elem("journal")
		b.Leaf("name", "Astronomical Journal")
		b.Leaf("volume", fmt.Sprint(1+rng.Intn(120)))
		b.Leaf("pages", fmt.Sprint(1+rng.Intn(900)))
		b.End()
		b.End()
		b.End()
	}

	b.Elem("history")
	b.Leaf("creator", "ADC")
	for r := 0; r <= rng.Intn(2); r++ {
		b.Elem("revision")
		b.Leaf("date", fmt.Sprintf("%d-%02d", 1990+rng.Intn(12), 1+rng.Intn(12)))
		b.Leaf("comment", paragraph(rng, 2))
		b.End()
	}
	b.End()

	b.Elem("tableHead")
	for f := 0; f <= 2+rng.Intn(4); f++ {
		b.Elem("field")
		b.Leaf("name", fmt.Sprintf("col%d", f))
		b.Leaf("units", []string{"mag", "deg", "arcsec", "km/s"}[rng.Intn(4)])
		b.End()
	}
	b.End()

	b.End()
}
