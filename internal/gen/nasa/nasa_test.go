package nasa

import "testing"

func TestDatasetStructure(t *testing.T) {
	d := Generate(Config{Datasets: 30, Seed: 2})
	ds := d.NodesOfType("datasets.dataset")
	if len(ds) != 30 {
		t.Fatalf("datasets = %d", len(ds))
	}
	// Every dataset carries the core catalog fields.
	for _, ty := range []string{
		"datasets.dataset.title",
		"datasets.dataset.abstract.para",
		"datasets.dataset.identifier",
		"datasets.dataset.tableHead.field.units",
		"datasets.dataset.history.revision.comment",
	} {
		if !d.HasType(ty) {
			t.Errorf("missing type %s", ty)
		}
	}
}

func TestAbstractSentencesKnob(t *testing.T) {
	paraBytes := func(sentences int) int {
		d := Generate(Config{Datasets: 10, Seed: 2, AbstractSentences: sentences})
		total := 0
		for _, n := range d.NodesOfType("datasets.dataset.abstract.para") {
			total += len(n.Value)
		}
		return total
	}
	if long, short := paraBytes(20), paraBytes(1); long <= short {
		t.Errorf("AbstractSentences knob ineffective: %d vs %d", short, long)
	}
}
