package xmark

import "testing"

// TestProportionsFollowXMark: entity counts scale with the benchmark
// factor according to the XMark specification's ratios.
func TestProportionsFollowXMark(t *testing.T) {
	const factor = 0.01
	d := Generate(Config{Factor: factor, Seed: 1})
	count := func(ty string) int { return len(d.NodesOfType(ty)) }
	scaled := func(atScale1 int) int {
		n := int(float64(atScale1) * factor)
		if n < 1 {
			n = 1
		}
		return n
	}

	wants := []struct {
		name string
		got  int
		want int
	}{
		{"persons", count("site.people.person"), scaled(personsAtScale1)},
		{"open", count("site.open_auctions.open_auction"), scaled(openAtScale1)},
		{"closed", count("site.closed_auctions.closed_auction"), scaled(closedAtScale1)},
		{"categories", count("site.categories.category"), scaled(catsAtScale1)},
	}
	for _, w := range wants {
		if w.got != w.want {
			t.Errorf("%s = %d, want %d", w.name, w.got, w.want)
		}
	}
	// Items are spread across the six regions.
	items := 0
	for _, r := range regions {
		items += count("site.regions." + r + ".item")
	}
	if items != scaled(itemsAtScale1) {
		t.Errorf("items = %d, want %d", items, scaled(itemsAtScale1))
	}
}

func TestMinimumScale(t *testing.T) {
	// Even a vanishing factor produces at least one of everything.
	d := Generate(Config{Factor: 0.00001, Seed: 1})
	for _, ty := range []string{"site.people.person", "site.categories.category"} {
		if len(d.NodesOfType(ty)) < 1 {
			t.Errorf("missing %s at tiny factor", ty)
		}
	}
}

func TestTextWordsKnob(t *testing.T) {
	textBytes := func(words int) int {
		d := Generate(Config{Factor: 0.005, Seed: 1, TextWords: words})
		total := 0
		for _, r := range regions {
			for _, n := range d.NodesOfType("site.regions." + r + ".item.description.parlist.listitem.text") {
				total += len(n.Value)
			}
		}
		return total
	}
	if long, short := textBytes(40), textBytes(2); long <= short {
		t.Errorf("TextWords knob ineffective: %d vs %d", short, long)
	}
}
