// Package xmark generates XMark-like auction-site documents. The real
// XMark generator (xmlgen) is replaced by a deterministic synthetic
// equivalent with the same vocabulary — site/regions/items, people,
// open and closed auctions, categories, catgraph — and XMark's entity
// proportions (factor 1.0: 25500 persons, 21750 items, 12000 open
// auctions, 9750 closed auctions, 1000 categories). Rooted-path typing
// gives the documents several hundred distinct types, matching the
// paper's note that XMark documents carry 471 types.
//
// Everything is seeded: the same (factor, seed) always produces the same
// document.
package xmark

import (
	"fmt"
	"math/rand"

	"xmorph/internal/xmltree"
)

// Proportions at factor 1.0, from the XMark benchmark specification.
const (
	personsAtScale1 = 25500
	itemsAtScale1   = 21750
	openAtScale1    = 12000
	closedAtScale1  = 9750
	catsAtScale1    = 1000
)

var regions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

var words = []string{
	"auction", "bid", "vintage", "rare", "mint", "condition", "shipping",
	"collector", "estate", "antique", "original", "limited", "edition",
	"signed", "certificate", "authentic", "restored", "working", "boxed",
	"complete", "premium", "quality", "handmade", "imported", "classic",
}

var firstNames = []string{"Ada", "Bela", "Chen", "Dmitri", "Elena", "Farid", "Grace", "Hugo", "Ines", "Jorge", "Kira", "Liam", "Mona", "Nils", "Olga", "Pavel"}
var lastNames = []string{"Anders", "Baker", "Chandra", "Dyre", "Engel", "Fischer", "Garcia", "Huang", "Ivanov", "Jensen", "Kumar", "Lopez", "Moreau", "Novak"}

// Config scales the generated document.
type Config struct {
	// Factor is the XMark benchmark factor; 0.1 matches the paper's
	// smallest experiment document (scaled to this generator's output).
	Factor float64
	// Seed makes generation reproducible.
	Seed int64
	// TextWords scales free-text length (description/mail bodies);
	// default 12.
	TextWords int
}

// Generate builds the document in memory.
func Generate(cfg Config) *xmltree.Document {
	if cfg.TextWords <= 0 {
		cfg.TextWords = 12
	}
	g := &gen{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg, b: xmltree.NewBuilder()}
	g.site()
	return g.b.MustDocument()
}

type gen struct {
	rng *rand.Rand
	cfg Config
	b   *xmltree.Builder
}

func (g *gen) scaled(atScale1 int) int {
	n := int(float64(atScale1) * g.cfg.Factor)
	if n < 1 {
		n = 1
	}
	return n
}

func (g *gen) word() string  { return words[g.rng.Intn(len(words))] }
func (g *gen) fname() string { return firstNames[g.rng.Intn(len(firstNames))] }
func (g *gen) lname() string { return lastNames[g.rng.Intn(len(lastNames))] }

func (g *gen) text(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += g.word()
	}
	return out
}

func (g *gen) date() string {
	return fmt.Sprintf("%02d/%02d/%04d", 1+g.rng.Intn(12), 1+g.rng.Intn(28), 1998+g.rng.Intn(4))
}

func (g *gen) site() {
	persons := g.scaled(personsAtScale1)
	items := g.scaled(itemsAtScale1)
	open := g.scaled(openAtScale1)
	closed := g.scaled(closedAtScale1)
	cats := g.scaled(catsAtScale1)

	g.b.Elem("site")
	g.regions(items, cats)
	g.categories(cats)
	g.catgraph(cats)
	g.people(persons, cats, open)
	g.openAuctions(open, persons, items)
	g.closedAuctions(closed, persons, items)
	g.b.End()
}

func (g *gen) regions(items, cats int) {
	g.b.Elem("regions")
	per := items / len(regions)
	extra := items % len(regions)
	id := 0
	for ri, region := range regions {
		n := per
		if ri < extra {
			n++
		}
		g.b.Elem(region)
		for i := 0; i < n; i++ {
			g.item(fmt.Sprintf("item%d", id), cats)
			id++
		}
		g.b.End()
	}
	g.b.End()
}

func (g *gen) item(id string, cats int) {
	g.b.Elem("item").Attr("id", id)
	g.b.Leaf("location", "United States")
	g.b.Leaf("quantity", fmt.Sprint(1+g.rng.Intn(5)))
	g.b.Leaf("name", g.text(2))
	g.b.Elem("payment").Text("Creditcard").End()
	g.description()
	g.b.Elem("shipping").Text("Will ship internationally").End()
	g.b.Elem("incategory").Attr("category", fmt.Sprintf("category%d", g.rng.Intn(cats))).End()
	if g.rng.Intn(3) > 0 {
		g.b.Elem("mailbox")
		for m := 0; m <= g.rng.Intn(3); m++ {
			g.b.Elem("mail")
			g.b.Leaf("from", g.fname()+" "+g.lname())
			g.b.Leaf("to", g.fname()+" "+g.lname())
			g.b.Leaf("date", g.date())
			g.b.Leaf("text", g.text(g.cfg.TextWords))
			g.b.End()
		}
		g.b.End()
	}
	g.b.End()
}

func (g *gen) description() {
	g.b.Elem("description")
	g.b.Elem("parlist")
	for i := 0; i <= g.rng.Intn(2); i++ {
		g.b.Elem("listitem")
		g.b.Elem("text")
		g.b.Text(g.text(g.cfg.TextWords))
		// XMark text carries inline markup: keyword/emph/bold subtrees.
		if g.rng.Intn(2) == 0 {
			g.b.Leaf("keyword", g.word())
		}
		if g.rng.Intn(3) == 0 {
			g.b.Elem("emph").Text(g.word()).End()
		}
		if g.rng.Intn(4) == 0 {
			g.b.Elem("bold").Leaf("keyword", g.word()).End()
		}
		g.b.End()
		g.b.End()
	}
	g.b.End()
	g.b.End()
}

func (g *gen) categories(n int) {
	g.b.Elem("categories")
	for i := 0; i < n; i++ {
		g.b.Elem("category").Attr("id", fmt.Sprintf("category%d", i))
		g.b.Leaf("name", g.text(2))
		g.description()
		g.b.End()
	}
	g.b.End()
}

func (g *gen) catgraph(cats int) {
	g.b.Elem("catgraph")
	for i := 0; i < cats; i++ {
		g.b.Elem("edge").
			Attr("from", fmt.Sprintf("category%d", g.rng.Intn(cats))).
			Attr("to", fmt.Sprintf("category%d", g.rng.Intn(cats))).
			End()
	}
	g.b.End()
}

func (g *gen) people(n, cats, open int) {
	g.b.Elem("people")
	for i := 0; i < n; i++ {
		g.b.Elem("person").Attr("id", fmt.Sprintf("person%d", i))
		name := g.fname() + " " + g.lname()
		g.b.Leaf("name", name)
		g.b.Leaf("emailaddress", fmt.Sprintf("mailto:p%d@example.net", i))
		if g.rng.Intn(2) == 0 {
			g.b.Leaf("phone", fmt.Sprintf("+1 (%d) %d", 100+g.rng.Intn(900), 1000000+g.rng.Intn(9000000)))
		}
		if g.rng.Intn(2) == 0 {
			g.b.Elem("address")
			g.b.Leaf("street", fmt.Sprintf("%d %s St", 1+g.rng.Intn(99), g.lname()))
			g.b.Leaf("city", g.lname()+"ville")
			if g.rng.Intn(3) == 0 {
				g.b.Leaf("province", g.lname()+" County")
			}
			g.b.Leaf("country", "United States")
			g.b.Leaf("zipcode", fmt.Sprint(10000+g.rng.Intn(89999)))
			g.b.End()
		}
		if g.rng.Intn(3) == 0 {
			g.b.Leaf("homepage", fmt.Sprintf("http://example.net/~p%d", i))
		}
		if g.rng.Intn(3) == 0 {
			g.b.Leaf("creditcard", fmt.Sprintf("%04d %04d %04d %04d", g.rng.Intn(10000), g.rng.Intn(10000), g.rng.Intn(10000), g.rng.Intn(10000)))
		}
		if g.rng.Intn(2) == 0 {
			g.b.Elem("profile").Attr("income", fmt.Sprintf("%d.%02d", 20000+g.rng.Intn(80000), g.rng.Intn(100)))
			for k := 0; k <= g.rng.Intn(3); k++ {
				g.b.Elem("interest").Attr("category", fmt.Sprintf("category%d", g.rng.Intn(cats))).End()
			}
			g.b.Leaf("education", "Graduate School")
			g.b.Leaf("gender", []string{"male", "female"}[g.rng.Intn(2)])
			g.b.Leaf("business", []string{"Yes", "No"}[g.rng.Intn(2)])
			g.b.Leaf("age", fmt.Sprint(18+g.rng.Intn(60)))
			g.b.End()
		}
		if g.rng.Intn(3) == 0 {
			g.b.Elem("watches")
			for k := 0; k <= g.rng.Intn(2); k++ {
				g.b.Elem("watch").Attr("open_auction", fmt.Sprintf("open_auction%d", g.rng.Intn(open))).End()
			}
			g.b.End()
		}
		g.b.End()
	}
	g.b.End()
}

func (g *gen) openAuctions(n, persons, items int) {
	g.b.Elem("open_auctions")
	for i := 0; i < n; i++ {
		g.b.Elem("open_auction").Attr("id", fmt.Sprintf("open_auction%d", i))
		initial := 1 + g.rng.Intn(200)
		g.b.Leaf("initial", fmt.Sprintf("%d.%02d", initial, g.rng.Intn(100)))
		if g.rng.Intn(2) == 0 {
			g.b.Leaf("reserve", fmt.Sprintf("%d.00", initial*2))
		}
		for bd := 0; bd <= g.rng.Intn(4); bd++ {
			g.b.Elem("bidder")
			g.b.Leaf("date", g.date())
			g.b.Leaf("time", fmt.Sprintf("%02d:%02d:%02d", g.rng.Intn(24), g.rng.Intn(60), g.rng.Intn(60)))
			g.b.Elem("personref").Attr("person", fmt.Sprintf("person%d", g.rng.Intn(persons))).End()
			g.b.Leaf("increase", fmt.Sprintf("%d.00", 1+g.rng.Intn(20)))
			g.b.End()
		}
		g.b.Leaf("current", fmt.Sprintf("%d.00", initial+g.rng.Intn(100)))
		g.b.Elem("itemref").Attr("item", fmt.Sprintf("item%d", g.rng.Intn(items))).End()
		g.b.Elem("seller").Attr("person", fmt.Sprintf("person%d", g.rng.Intn(persons))).End()
		g.annotation(persons)
		g.b.Leaf("quantity", fmt.Sprint(1+g.rng.Intn(5)))
		g.b.Leaf("type", "Regular")
		g.b.Elem("interval")
		g.b.Leaf("start", g.date())
		g.b.Leaf("end", g.date())
		g.b.End()
		g.b.End()
	}
	g.b.End()
}

func (g *gen) closedAuctions(n, persons, items int) {
	g.b.Elem("closed_auctions")
	for i := 0; i < n; i++ {
		g.b.Elem("closed_auction")
		g.b.Elem("seller").Attr("person", fmt.Sprintf("person%d", g.rng.Intn(persons))).End()
		g.b.Elem("buyer").Attr("person", fmt.Sprintf("person%d", g.rng.Intn(persons))).End()
		g.b.Elem("itemref").Attr("item", fmt.Sprintf("item%d", g.rng.Intn(items))).End()
		g.b.Leaf("price", fmt.Sprintf("%d.%02d", 1+g.rng.Intn(500), g.rng.Intn(100)))
		g.b.Leaf("date", g.date())
		g.b.Leaf("quantity", fmt.Sprint(1+g.rng.Intn(5)))
		g.b.Leaf("type", "Regular")
		g.annotation(persons)
		g.b.End()
	}
	g.b.End()
}

func (g *gen) annotation(persons int) {
	g.b.Elem("annotation")
	g.b.Elem("author").Attr("person", fmt.Sprintf("person%d", g.rng.Intn(persons))).End()
	if g.rng.Intn(2) == 0 {
		g.b.Leaf("happiness", fmt.Sprint(1+g.rng.Intn(10)))
	}
	g.description()
	g.b.End()
}
