// Package gen_test exercises the three dataset generators together:
// determinism, scaling, vocabulary, and fitness for transformation.
package gen_test

import (
	"strings"
	"testing"

	"xmorph/internal/closest"
	"xmorph/internal/core"
	"xmorph/internal/gen/dblp"
	"xmorph/internal/gen/nasa"
	"xmorph/internal/gen/xmark"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

func TestXMarkDeterministic(t *testing.T) {
	a := xmark.Generate(xmark.Config{Factor: 0.002, Seed: 1})
	b := xmark.Generate(xmark.Config{Factor: 0.002, Seed: 1})
	if a.XML(false) != b.XML(false) {
		t.Error("same (factor, seed) must generate identical documents")
	}
	c := xmark.Generate(xmark.Config{Factor: 0.002, Seed: 2})
	if a.XML(false) == c.XML(false) {
		t.Error("different seeds should differ")
	}
}

func TestXMarkScalesWithFactor(t *testing.T) {
	small := xmark.Generate(xmark.Config{Factor: 0.001, Seed: 1})
	large := xmark.Generate(xmark.Config{Factor: 0.004, Seed: 1})
	if large.Size() < 2*small.Size() {
		t.Errorf("factor x4 should grow the document: %d -> %d nodes", small.Size(), large.Size())
	}
}

func TestXMarkVocabulary(t *testing.T) {
	d := xmark.Generate(xmark.Config{Factor: 0.002, Seed: 7})
	if d.Root().Name != "site" {
		t.Fatalf("root = %s", d.Root().Name)
	}
	types := d.Types()
	// Rooted-path typing over the regions/people/auctions vocabulary
	// yields a large type count (the paper reports 471 for real XMark).
	if len(types) < 100 {
		t.Errorf("xmark types = %d, want a rich vocabulary (>= 100)", len(types))
	}
	for _, want := range []string{
		"site.regions.africa.item",
		"site.regions.asia.item.description.parlist.listitem.text",
		"site.people.person.profile.interest.@category",
		"site.open_auctions.open_auction.bidder.personref.@person",
		"site.closed_auctions.closed_auction.price",
		"site.catgraph.edge.@from",
	} {
		if !d.HasType(want) {
			t.Errorf("missing type %s", want)
		}
	}
}

// TestXMarkMutateSite is the Figure 10 workload in miniature: MUTATE site
// must reproduce the document up to sibling-type order (the shape is
// unordered, so optional children may regroup): same vertex count, and a
// reversible closest graph.
func TestXMarkMutateSite(t *testing.T) {
	d := xmark.Generate(xmark.Config{Factor: 0.001, Seed: 3})
	res, err := core.Transform("MUTATE site", d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Size() != d.Size() {
		t.Fatalf("MUTATE site node count %d, want %d", res.Output.Size(), d.Size())
	}
	cmp := closest.Compare(closest.Build(d), closest.Build(res.Output))
	if !cmp.Reversible() {
		t.Errorf("MUTATE site should be reversible: %+v", cmp)
	}
}

func TestDBLPDeterministicAndShaped(t *testing.T) {
	a := dblp.Generate(dblp.Config{Publications: 50, Seed: 1})
	b := dblp.Generate(dblp.Config{Publications: 50, Seed: 1})
	if a.XML(false) != b.XML(false) {
		t.Error("dblp generation must be deterministic")
	}
	if a.Root().Name != "dblp" {
		t.Fatalf("root = %s", a.Root().Name)
	}
	arts := len(a.NodesOfType("dblp.article"))
	inps := len(a.NodesOfType("dblp.inproceedings"))
	if arts+inps != 50 {
		t.Errorf("publications = %d, want 50", arts+inps)
	}
	for _, want := range []string{"dblp.article.author", "dblp.article.title", "dblp.article.year", "dblp.inproceedings.booktitle"} {
		if !a.HasType(want) {
			t.Errorf("missing type %s", want)
		}
	}
}

// TestDBLPMorphWorkloads runs the paper's Figure 14 guards (small, medium,
// large) over a generated slice.
func TestDBLPMorphWorkloads(t *testing.T) {
	d := dblp.Generate(dblp.Config{Publications: 120, Seed: 5})
	for _, g := range []string{
		"CAST MORPH author",
		"CAST MORPH author [title [year]]",
		"CAST MORPH dblp [author [title [year [pages] url]]]",
	} {
		res, err := core.Transform(g, d, nil)
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		if res.Output.Size() == 0 {
			t.Errorf("%s produced empty output", g)
		}
	}
}

func TestNASALongContent(t *testing.T) {
	d := nasa.Generate(nasa.Config{Datasets: 20, Seed: 1})
	if d.Root().Name != "datasets" {
		t.Fatalf("root = %s", d.Root().Name)
	}
	paras := d.NodesOfType("datasets.dataset.abstract.para")
	if len(paras) == 0 {
		t.Fatal("no abstract paragraphs")
	}
	total := 0
	for _, p := range paras {
		total += len(p.Value)
	}
	avg := total / len(paras)
	if avg < 200 {
		t.Errorf("average paragraph size = %d bytes; NASA content should be long", avg)
	}
	// Determinism.
	if d.XML(false) != nasa.Generate(nasa.Config{Datasets: 20, Seed: 1}).XML(false) {
		t.Error("nasa generation must be deterministic")
	}
}

// TestGeneratedShapesValidate: the adorned shape extraction must accept
// all three generators' output.
func TestGeneratedShapesValidate(t *testing.T) {
	docs := map[string]*xmltree.Document{
		"xmark": xmark.Generate(xmark.Config{Factor: 0.001, Seed: 1}),
		"dblp":  dblp.Generate(dblp.Config{Publications: 40, Seed: 1}),
		"nasa":  nasa.Generate(nasa.Config{Datasets: 10, Seed: 1}),
	}
	for name, d := range docs {
		sh := shape.FromDocument(d)
		if err := sh.Validate(); err != nil {
			t.Errorf("%s shape invalid: %v", name, err)
		}
		if sh.NumTypes() != len(d.Types()) {
			t.Errorf("%s shape types = %d, document types = %d", name, sh.NumTypes(), len(d.Types()))
		}
	}
}

func TestGeneratedXMLReparses(t *testing.T) {
	d := xmark.Generate(xmark.Config{Factor: 0.001, Seed: 9})
	if _, err := xmltree.ParseString(d.XML(false)); err != nil {
		t.Errorf("generated xmark does not reparse: %v", err)
	}
	n := nasa.Generate(nasa.Config{Datasets: 5, Seed: 9})
	if _, err := xmltree.ParseString(n.XML(true)); err != nil {
		t.Errorf("generated nasa does not reparse: %v", err)
	}
}

func TestDBLPFig1Scenario(t *testing.T) {
	// The paper's running example guard must work on DBLP-shaped data.
	d := dblp.Generate(dblp.Config{Publications: 30, Seed: 2})
	res, err := core.Transform("CAST MORPH author [ title ]", d, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output.XML(false)
	if !strings.Contains(out, "<author>") || !strings.Contains(out, "<title>") {
		t.Errorf("morph output missing structure: %.200s", out)
	}
}
