// Package dblp generates DBLP-like bibliography documents: the paper's
// second experiment runs over slices of DBLP.xml, whose shape roughly
// matches Figure 1 — a flat sequence of publications, each carrying
// author/title/year/pages/url children. The generator is deterministic in
// (publications, seed); slices of the paper's 134-518 MB files are
// replaced by publication-count-parameterised synthetic documents.
package dblp

import (
	"fmt"
	"math/rand"

	"xmorph/internal/xmltree"
)

var lastNames = []string{
	"Dyreson", "Bhowmick", "Codd", "Stonebraker", "Gray", "Widom",
	"Abiteboul", "Ullman", "Garcia-Molina", "DeWitt", "Bernstein",
	"Chaudhuri", "Naughton", "Suciu", "Halevy", "Florescu",
}
var firstInitials = []string{"A.", "B.", "C.", "D.", "E.", "F.", "G.", "H.", "J.", "K.", "L.", "M.", "N.", "P.", "R.", "S."}

var titleWords = []string{
	"Querying", "XML", "Data", "Shapes", "Streams", "Joins", "Indexing",
	"Optimization", "Semantics", "Transactions", "Views", "Schema",
	"Evolution", "Incremental", "Distributed", "Adaptive", "Efficient",
	"Scalable", "Temporal", "Probabilistic",
}

var journals = []string{"TODS", "VLDB J.", "SIGMOD Record", "TKDE", "Inf. Syst."}
var conferences = []string{"ICDE", "SIGMOD Conference", "VLDB", "EDBT", "CIKM"}

// Config scales the generated bibliography.
type Config struct {
	// Publications is the number of article/inproceedings entries.
	Publications int
	// Seed makes generation reproducible.
	Seed int64
}

// Generate builds the document in memory.
func Generate(cfg Config) *xmltree.Document {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := xmltree.NewBuilder().Elem("dblp")
	for i := 0; i < cfg.Publications; i++ {
		if rng.Intn(2) == 0 {
			article(b, rng, i)
		} else {
			inproceedings(b, rng, i)
		}
	}
	return b.End().MustDocument()
}

func title(rng *rand.Rand) string {
	n := 3 + rng.Intn(5)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += titleWords[rng.Intn(len(titleWords))]
	}
	return out + "."
}

func author(rng *rand.Rand) string {
	return firstInitials[rng.Intn(len(firstInitials))] + " " + lastNames[rng.Intn(len(lastNames))]
}

func pages(rng *rand.Rand) string {
	start := 1 + rng.Intn(800)
	return fmt.Sprintf("%d-%d", start, start+4+rng.Intn(20))
}

func article(b *xmltree.Builder, rng *rand.Rand, i int) {
	year := 1990 + rng.Intn(22)
	b.Elem("article").Attr("key", fmt.Sprintf("journals/x/entry%d", i))
	for a := 0; a <= rng.Intn(3); a++ {
		b.Leaf("author", author(rng))
	}
	b.Leaf("title", title(rng))
	b.Leaf("pages", pages(rng))
	b.Leaf("year", fmt.Sprint(year))
	b.Leaf("volume", fmt.Sprint(1+rng.Intn(40)))
	b.Leaf("journal", journals[rng.Intn(len(journals))])
	b.Leaf("url", fmt.Sprintf("db/journals/x/x%d.html#entry%d", year, i))
	b.End()
}

func inproceedings(b *xmltree.Builder, rng *rand.Rand, i int) {
	year := 1990 + rng.Intn(22)
	conf := conferences[rng.Intn(len(conferences))]
	b.Elem("inproceedings").Attr("key", fmt.Sprintf("conf/x/entry%d", i))
	for a := 0; a <= rng.Intn(4); a++ {
		b.Leaf("author", author(rng))
	}
	b.Leaf("title", title(rng))
	b.Leaf("pages", pages(rng))
	b.Leaf("year", fmt.Sprint(year))
	b.Leaf("booktitle", conf)
	b.Leaf("url", fmt.Sprintf("db/conf/x/x%d.html#entry%d", year, i))
	b.Leaf("crossref", fmt.Sprintf("conf/x/%d", year))
	b.End()
}
