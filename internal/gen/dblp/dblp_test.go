package dblp

import (
	"strings"
	"testing"
)

func TestEveryPublicationHasRequiredFields(t *testing.T) {
	d := Generate(Config{Publications: 200, Seed: 3})
	for _, kind := range []string{"article", "inproceedings"} {
		for _, p := range d.NodesOfType("dblp." + kind) {
			var hasAuthor, hasTitle, hasYear, hasKey bool
			for _, c := range p.Children {
				switch c.Name {
				case "author":
					hasAuthor = true
				case "title":
					hasTitle = true
				case "year":
					hasYear = true
				case "@key":
					hasKey = true
				}
			}
			if !hasAuthor || !hasTitle || !hasYear || !hasKey {
				t.Fatalf("%s at %s missing required field", kind, p.Dewey)
			}
		}
	}
}

func TestKeysAreUnique(t *testing.T) {
	d := Generate(Config{Publications: 300, Seed: 5})
	seen := map[string]bool{}
	for _, ty := range []string{"dblp.article.@key", "dblp.inproceedings.@key"} {
		for _, k := range d.NodesOfType(ty) {
			if seen[k.Value] {
				t.Fatalf("duplicate key %s", k.Value)
			}
			seen[k.Value] = true
		}
	}
	if len(seen) != 300 {
		t.Errorf("keys = %d, want 300", len(seen))
	}
}

func TestPagesFormat(t *testing.T) {
	d := Generate(Config{Publications: 50, Seed: 7})
	for _, ty := range []string{"dblp.article.pages", "dblp.inproceedings.pages"} {
		for _, p := range d.NodesOfType(ty) {
			if !strings.Contains(p.Value, "-") {
				t.Errorf("pages %q not a range", p.Value)
			}
		}
	}
}
