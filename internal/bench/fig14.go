package bench

import (
	"fmt"

	"xmorph/internal/gen/dblp"
)

// Fig14Guards are the paper's three transformation sizes over DBLP.
var Fig14Guards = []struct {
	Name  string
	Guard string
}{
	{"small", "CAST MORPH author"},
	{"medium", "CAST MORPH author [title [year]]"},
	{"large", "CAST MORPH dblp [author [title [year [pages] url]]]"},
}

// Fig14Row is one (slice size, transformation size) measurement.
type Fig14Row struct {
	Publications int
	XMLBytes     int
	Transform    string
	CompileMS    float64
	RenderMS     float64
	BaselineMS   float64
	OutputNodes  int
}

// RunFig14 measures the three DBLP transformations across slice sizes,
// against the eXist-equivalent dump baseline.
func RunFig14(cfg Config) ([]Fig14Row, error) {
	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var rows []Fig14Row
	for _, pubs := range cfg.DBLPSizes {
		doc := dblp.Generate(dblp.Config{Publications: pubs, Seed: cfg.Seed})
		name := fmt.Sprintf("dblp-%d", pubs)
		path, _, bytes, err := prepareStore(dir, name, doc, cfg.CachePages, cfg.Durability)
		if err != nil {
			return nil, err
		}
		baseline, err := runBaseline(path, name, cfg.CachePages, cfg.Durability)
		if err != nil {
			return nil, err
		}
		for _, g := range Fig14Guards {
			compile, renderT, outNodes, err := runStored(path, name, g.Guard, cfg.CachePages, cfg.Durability)
			if err != nil {
				return nil, fmt.Errorf("fig14 %s on %d pubs: %w", g.Name, pubs, err)
			}
			rows = append(rows, Fig14Row{
				Publications: pubs,
				XMLBytes:     bytes,
				Transform:    g.Name,
				CompileMS:    ms(compile),
				RenderMS:     ms(renderT),
				BaselineMS:   ms(baseline),
				OutputNodes:  outNodes,
			})
		}
	}
	return rows, nil
}

// Fig14Table renders the Figure 14 series.
func Fig14Table(rows []Fig14Row) *Table {
	t := &Table{
		Title:   "Fig 14: DBLP slices x transformation size vs eXist-equivalent dump",
		Columns: []string{"publications", "xml-MB", "transform", "compile-ms", "render-ms", "baseline-ms", "out-nodes"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Publications),
			f2(float64(r.XMLBytes) / (1 << 20)),
			r.Transform,
			f2(r.CompileMS),
			f1(r.RenderMS),
			f1(r.BaselineMS),
			fmt.Sprint(r.OutputNodes),
		})
	}
	return t
}
