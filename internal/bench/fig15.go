package bench

import (
	"fmt"

	"xmorph/internal/gen/dblp"
	"xmorph/internal/gen/nasa"
	"xmorph/internal/gen/xmark"
	"xmorph/internal/xmltree"
)

// fig15Shape is one target-shape variant: deep (a skinny chain) or bushy
// (wide sibling fan-out), small (4-6 labels) or large (10-13 labels) — the
// paper's Figure 15 grid.
type fig15Shape struct {
	Name   string
	Labels int
	Guard  string
}

// fig15Dataset couples a dataset with its four target shapes.
type fig15Dataset struct {
	Name   string
	Build  func(cfg Config) *xmltree.Document
	Shapes []fig15Shape
}

var fig15Datasets = []fig15Dataset{
	{
		Name: "nasa",
		Build: func(cfg Config) *xmltree.Document {
			return nasa.Generate(nasa.Config{Datasets: 400, Seed: cfg.Seed})
		},
		Shapes: []fig15Shape{
			{"deep-small", 4, "CAST MORPH dataset [ title [ abstract [ para ] ] ]"},
			{"bushy-small", 5, "CAST MORPH dataset [ title altname identifier ]"},
			{"deep-large", 10, "CAST MORPH datasets [ dataset [ author [ initial [ lastname [ title [ altname [ abstract [ para [ identifier ] ] ] ] ] ] ] ] ]"},
			{"bushy-large", 12, "CAST MORPH dataset [ title altname identifier abstract [ para ] date [ year month day ] instrument [ name observatory ] ]"},
		},
	},
	{
		Name: "dblp",
		Build: func(cfg Config) *xmltree.Document {
			return dblp.Generate(dblp.Config{Publications: 3000, Seed: cfg.Seed})
		},
		Shapes: []fig15Shape{
			{"deep-small", 4, "CAST MORPH author [ title [ year [ pages ] ] ]"},
			{"bushy-small", 4, "CAST MORPH article [ author title year ]"},
			{"deep-large", 10, "CAST MORPH dblp [ article [ author [ title [ year [ pages [ url [ volume [ journal ] ] ] ] ] ] ] ]"},
			{"bushy-large", 12, "CAST MORPH dblp [ article [ author title year pages url volume journal ] inproceedings [ booktitle crossref ] ]"},
		},
	},
	{
		Name: "xmark",
		Build: func(cfg Config) *xmltree.Document {
			return xmark.Generate(xmark.Config{Factor: 0.02, Seed: cfg.Seed})
		},
		Shapes: []fig15Shape{
			{"deep-small", 4, "CAST MORPH open_auctions [ open_auction [ bidder [ date ] ] ]"},
			{"bushy-small", 4, "CAST MORPH open_auction [ initial current quantity ]"},
			{"deep-large", 11, "CAST MORPH site [ open_auctions [ open_auction [ bidder [ personref [ date [ time [ increase ] ] ] ] seller itemref current ] ] ]"},
			{"bushy-large", 11, "CAST MORPH open_auction [ initial reserve current quantity type seller itemref interval [ start end ] ]"},
		},
	},
}

// Fig15Row is one (dataset, shape) throughput measurement.
type Fig15Row struct {
	Dataset     string
	Shape       string
	Labels      int
	OutputElems int
	RenderMS    float64
	// ElemsPerSec is the paper's y-axis: output elements processed per
	// second.
	ElemsPerSec float64
}

// RunFig15 measures whether the kind of target shape matters: throughput
// should stay steady across shapes within a dataset and vary between
// datasets with element content size.
func RunFig15(cfg Config) ([]Fig15Row, error) {
	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var rows []Fig15Row
	for _, ds := range fig15Datasets {
		doc := ds.Build(cfg)
		path, _, _, err := prepareStore(dir, "f15-"+ds.Name, doc, cfg.CachePages, cfg.Durability)
		if err != nil {
			return nil, err
		}
		for _, sh := range ds.Shapes {
			_, renderT, outNodes, err := runStored(path, "f15-"+ds.Name, sh.Guard, cfg.CachePages, cfg.Durability)
			if err != nil {
				return nil, fmt.Errorf("fig15 %s/%s: %w", ds.Name, sh.Name, err)
			}
			eps := 0.0
			if renderT > 0 {
				eps = float64(outNodes) / renderT.Seconds()
			}
			rows = append(rows, Fig15Row{
				Dataset:     ds.Name,
				Shape:       sh.Name,
				Labels:      sh.Labels,
				OutputElems: outNodes,
				RenderMS:    ms(renderT),
				ElemsPerSec: eps,
			})
		}
	}
	return rows, nil
}

// Fig15Table renders the Figure 15 series.
func Fig15Table(rows []Fig15Row) *Table {
	t := &Table{
		Title:   "Fig 15: effect of target shape (throughput, elements/second)",
		Columns: []string{"dataset", "shape", "labels", "out-elems", "render-ms", "elems/sec"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset,
			r.Shape,
			fmt.Sprint(r.Labels),
			fmt.Sprint(r.OutputElems),
			f1(r.RenderMS),
			f1(r.ElemsPerSec),
		})
	}
	return t
}
