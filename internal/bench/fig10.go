package bench

import (
	"fmt"
	"time"

	"xmorph/internal/gen/xmark"
	"xmorph/internal/store"
	"xmorph/internal/sysmon"
)

// Fig10Row is one XMark factor's measurements: the three plotted series
// (XMorph render, XMorph compile, eXist-equivalent dump) plus the shred
// cost the paper reports in prose.
type Fig10Row struct {
	Factor     float64
	XMLBytes   int
	Nodes      int
	Types      int
	ShredMS    float64
	CompileMS  float64
	RenderMS   float64
	BaselineMS float64
	// Samples is the sysmon timeline of the render run (Figs. 11-13).
	Samples []sysmon.Sample
}

// Fig10Guard is the transformation the paper evaluates: mutate the entire
// document (all types).
const Fig10Guard = "CAST MUTATE site"

// RunFig10 measures transformation cost versus data size on XMark
// documents, also collecting the resource timelines behind Figs. 11-13.
func RunFig10(cfg Config) ([]Fig10Row, error) {
	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var rows []Fig10Row
	for _, f := range cfg.XMarkFactors {
		doc := xmark.Generate(xmark.Config{Factor: f, Seed: cfg.Seed})
		name := fmt.Sprintf("xmark-%g", f)
		path, shred, bytes, err := prepareStore(dir, name, doc, cfg.CachePages, cfg.Durability)
		if err != nil {
			return nil, err
		}

		// Monitored run: reopen cold, attach sysmon, transform.
		st, err := coldOpen(path, cfg.CachePages, cfg.Durability)
		if err != nil {
			return nil, err
		}
		mon := sysmon.Start(cfg.MonitorInterval, st.Stats)
		compile, renderT, _, err := runStoredOn(st, name, Fig10Guard)
		samples := mon.Stop()
		st.Close()
		if err != nil {
			return nil, err
		}

		baseline, err := runBaseline(path, name, cfg.CachePages, cfg.Durability)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			Factor:     f,
			XMLBytes:   bytes,
			Nodes:      doc.Size(),
			Types:      len(doc.Types()),
			ShredMS:    ms(shred),
			CompileMS:  ms(compile),
			RenderMS:   ms(renderT),
			BaselineMS: ms(baseline),
			Samples:    samples,
		})
	}
	return rows, nil
}

// runStoredOn is runStored against an already-open store (so a monitor can
// watch its counters).
func runStoredOn(st *store.Store, name, guard string) (compile, renderT time.Duration, outNodes int, err error) {
	res, err := transformStoredDiscard(st, name, guard)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.compile, res.render, res.nodes, nil
}

// Fig10Table renders the Figure 10 series.
func Fig10Table(rows []Fig10Row) *Table {
	t := &Table{
		Title:   "Fig 10: transformation cost vs data size (XMark, MUTATE site)",
		Columns: []string{"factor", "xml-MB", "nodes", "types", "shred-ms", "compile-ms", "render-ms", "baseline-ms"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", r.Factor),
			f2(float64(r.XMLBytes) / (1 << 20)),
			fmt.Sprint(r.Nodes),
			fmt.Sprint(r.Types),
			f1(r.ShredMS),
			f2(r.CompileMS),
			f1(r.RenderMS),
			f1(r.BaselineMS),
		})
	}
	return t
}

// Fig11Table renders cumulative block I/O over each run's timeline.
func Fig11Table(rows []Fig10Row) *Table {
	t := &Table{
		Title:   "Fig 11: cumulative block I/O during the transformation",
		Columns: []string{"factor", "elapsed-ms", "blocks-in", "blocks-out", "cumulative"},
	}
	for _, r := range rows {
		for _, s := range r.Samples {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%g", r.Factor),
				fmt.Sprint(s.Elapsed.Milliseconds()),
				fmt.Sprint(s.BlocksRead),
				fmt.Sprint(s.BlocksWritten),
				fmt.Sprint(s.CumulativeBlocks()),
			})
		}
	}
	return t
}

// Fig12Table renders the I/O wait percentage timeline.
func Fig12Table(rows []Fig10Row) *Table {
	t := &Table{
		Title:   "Fig 12: CPU wait percentage (time inside block I/O)",
		Columns: []string{"factor", "elapsed-ms", "wait-pct"},
	}
	for _, r := range rows {
		for _, s := range r.Samples {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%g", r.Factor),
				fmt.Sprint(s.Elapsed.Milliseconds()),
				f1(s.WaitPct),
			})
		}
	}
	return t
}

// Fig13Table renders the memory timeline.
func Fig13Table(rows []Fig10Row) *Table {
	t := &Table{
		Title:   "Fig 13: memory during the transformation",
		Columns: []string{"factor", "elapsed-ms", "heap-alloc-MB", "heap-sys-MB"},
	}
	for _, r := range rows {
		for _, s := range r.Samples {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%g", r.Factor),
				fmt.Sprint(s.Elapsed.Milliseconds()),
				f1(float64(s.HeapAlloc) / (1 << 20)),
				f1(float64(s.HeapSys) / (1 << 20)),
			})
		}
	}
	return t
}
