package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xmorph/internal/gen/xmark"
	"xmorph/internal/kvstore"
	"xmorph/internal/obs"
	"xmorph/internal/store"
)

// ConcurrencyRow is one benchmark cell: a client count running the read
// query mix against one shared store for a fixed window. Rows come in
// "readahead" / "no-readahead" variant pairs at one client, and a
// "readahead" scaling series across client counts.
type ConcurrencyRow struct {
	Factor     float64 `json:"factor"`
	Clients    int     `json:"clients"`
	Variant    string  `json:"variant"`
	Queries    int64   `json:"queries"`
	QPS        float64 `json:"qps"`
	NsPerOp    float64 `json:"ns_per_op"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	HitRatio   float64 `json:"hit_ratio"`
	PagesRead  int64   `json:"pages_read"`
	ReadAheads int64   `json:"read_aheads"`
	// Speedup is QPS relative to the 1-client cell of the same factor and
	// variant; 1.0 for the 1-client cell itself.
	Speedup float64 `json:"speedup"`
	Note    string  `json:"note,omitempty"`
}

// ConcurrencyReport is the BENCH_concurrency.json document. CPUs and
// GOMAXPROCS record the host parallelism the speedup column is bounded
// by — on a single-core host the speedup at N clients cannot exceed ~1.
type ConcurrencyReport struct {
	Generated  string           `json:"generated"`
	GoVersion  string           `json:"go_version"`
	CPUs       int              `json:"cpus"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	WindowSec  float64          `json:"window_sec"`
	Factors    []float64        `json:"factors"`
	Clients    []int            `json:"clients"`
	Rows       []ConcurrencyRow `json:"rows"`
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *ConcurrencyReport) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// concQueries is the read-only query mix every client cycles through,
// offset by its client id so concurrent clients start on different
// queries. Each query opens a fresh Doc view, so nothing is memoized
// across queries — every query re-reads the store through the buffer
// pool, which is the contention the benchmark is about.
var concQueries = []struct {
	Name string
	Run  func(st *store.Store, name string) error
}{
	{"morph-auction", func(st *store.Store, name string) error {
		_, err := transformStoredDiscard(st, name, "CAST MORPH open_auction [ initial current quantity ]")
		return err
	}},
	{"morph-person", func(st *store.Store, name string) error {
		_, err := transformStoredDiscard(st, name, "CAST MORPH person [ name emailaddress ]")
		return err
	}},
	{"dump-bidders", func(st *store.Store, name string) error {
		doc, err := st.Doc(name)
		if err != nil {
			return err
		}
		ns := doc.NodesOfType("site.open_auctions.open_auction.bidder")
		if len(ns) == 0 {
			return fmt.Errorf("no bidder nodes in %s", name)
		}
		sink := 0
		for _, n := range ns {
			sink += len(n.Text())
		}
		_ = sink
		return nil
	}},
}

// runConcCell runs one (clients, window) cell against an open store and
// returns the filled row (Speedup left zero for the caller).
func runConcCell(st *store.Store, name string, clients int, window time.Duration, factor float64, variant string) (ConcurrencyRow, error) {
	hist := obs.NewHistogram(obs.DurationBuckets)
	var queries atomic.Int64
	var firstErr atomic.Value
	before := st.Stats()

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; time.Since(start) < window; i++ {
				q := concQueries[i%len(concQueries)]
				t0 := time.Now()
				if err := q.Run(st, name); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("%s: %w", q.Name, err))
					return
				}
				hist.Observe(time.Since(t0).Seconds())
				queries.Add(1)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return ConcurrencyRow{}, err
	}

	after := st.Stats()
	snap := hist.Snapshot()
	n := queries.Load()
	// Hit ratio over this cell's lookups only, not the store's lifetime.
	delta := kvstore.Stats{
		CacheHits:   after.CacheHits - before.CacheHits,
		CacheMisses: after.CacheMisses - before.CacheMisses,
	}
	row := ConcurrencyRow{
		Factor: factor, Clients: clients, Variant: variant,
		Queries:    n,
		QPS:        float64(n) / elapsed.Seconds(),
		P50Ms:      snap.P50 * 1e3,
		P95Ms:      snap.P95 * 1e3,
		P99Ms:      snap.P99 * 1e3,
		HitRatio:   delta.HitRatio(),
		PagesRead:  after.BlocksRead - before.BlocksRead,
		ReadAheads: after.ReadAheads - before.ReadAheads,
	}
	if n > 0 {
		row.NsPerOp = float64(elapsed.Nanoseconds()) / float64(n)
	}
	return row, nil
}

// RunConcurrency measures read-path scalability: at each factor it shreds
// one XMark document into a store file, then runs the query mix from 1,
// 2, 4, 8... concurrent clients (cfg.ConcClients) against one shared
// store for a fixed wall-clock window each, reporting throughput, tail
// latency, and buffer-pool behaviour. A DisableReadAhead ablation runs
// at one client per factor — read-ahead is a per-scan I/O policy, so one
// client isolates it from the scaling series.
//
// All clients share the store's buffer pool and the DB read lock; the
// store itself is opened once per variant and stays warm across cells,
// so cells measure steady-state contention, not cold I/O.
func RunConcurrency(cfg Config) ([]ConcurrencyRow, error) {
	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var rows []ConcurrencyRow
	for _, factor := range cfg.concFactors() {
		doc := xmark.Generate(xmark.Config{Factor: factor, Seed: cfg.Seed})
		name := fmt.Sprintf("conc-%g", factor)
		path, _, xmlBytes, err := prepareStore(dir, name, doc, cfg.concCachePages(), cfg.Durability)
		if err != nil {
			return nil, err
		}

		for _, variant := range []string{"readahead", "no-readahead"} {
			opts := &kvstore.Options{CachePages: cfg.concCachePages()}
			if variant == "no-readahead" {
				opts.DisableReadAhead = true
			}
			st, err := store.Open(path, store.WithKVOptions(opts))
			if err != nil {
				return nil, err
			}
			// Warm up: one pass of the mix, unmeasured, so every cell sees
			// the same steady-state pool.
			for _, q := range concQueries {
				if err := q.Run(st, name); err != nil {
					st.Close()
					return nil, err
				}
			}
			clients := cfg.concClients()
			if variant == "no-readahead" {
				clients = []int{1}
			}
			var base float64
			for _, nc := range clients {
				row, err := runConcCell(st, name, nc, cfg.concWindow(), factor, variant)
				if err != nil {
					st.Close()
					return nil, err
				}
				if nc == clients[0] {
					base = row.QPS
				}
				if base > 0 {
					row.Speedup = row.QPS / base
				}
				row.Note = fmt.Sprintf("%d nodes, %d bytes xml", doc.Size(), xmlBytes)
				rows = append(rows, row)
			}
			if err := st.Close(); err != nil {
				return nil, err
			}
		}
		os.Remove(path)
	}
	return rows, nil
}

func (c *Config) concFactors() []float64 {
	if len(c.ConcFactors) > 0 {
		return c.ConcFactors
	}
	return []float64{0.2, 1.0}
}

func (c *Config) concClients() []int {
	if len(c.ConcClients) > 0 {
		return c.ConcClients
	}
	return []int{1, 2, 4, 8}
}

func (c *Config) concWindow() time.Duration {
	if c.ConcWindow > 0 {
		return c.ConcWindow
	}
	return 3 * time.Second
}

func (c *Config) concCachePages() int {
	if c.ConcCachePages > 0 {
		return c.ConcCachePages
	}
	return 512
}

// ConcurrencyReportFor wraps rows into the JSON report document.
func ConcurrencyReportFor(cfg Config, rows []ConcurrencyRow) *ConcurrencyReport {
	return &ConcurrencyReport{
		Generated:  "xmorphbench -exp concurrency -json",
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		WindowSec:  cfg.concWindow().Seconds(),
		Factors:    cfg.concFactors(),
		Clients:    cfg.concClients(),
		Rows:       rows,
	}
}

// ConcurrencyTable renders the rows for stdout.
func ConcurrencyTable(rows []ConcurrencyRow) string {
	t := &Table{
		Title:   "Concurrent reads (shared store, fixed window per cell)",
		Columns: []string{"factor", "clients", "variant", "queries", "qps", "p50ms", "p95ms", "p99ms", "hit%", "pg-read", "read-ahead", "speedup"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", r.Factor), fmt.Sprintf("%d", r.Clients), r.Variant,
			fmt.Sprintf("%d", r.Queries), f2(r.QPS),
			f1(r.P50Ms), f1(r.P95Ms), f1(r.P99Ms),
			f1(r.HitRatio * 100), fmt.Sprintf("%d", r.PagesRead),
			fmt.Sprintf("%d", r.ReadAheads), f2(r.Speedup),
		})
	}
	return t.String()
}
