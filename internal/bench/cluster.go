package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xmorph/internal/cluster"
	"xmorph/internal/engine"
	"xmorph/internal/gen/xmark"
	"xmorph/internal/kvstore"
	"xmorph/internal/obs"
	"xmorph/internal/store"
)

// The cluster benchmark measures what sharding buys a *read* workload:
// aggregate buffer-pool capacity. The document set is sized to thrash a
// single shard's pool but fit comfortably in four shards' combined
// pools, so the same per-node cache budget turns cold device reads into
// hits as shards are added — the classic fleet-scaling effect, and the
// only one a single-core host can demonstrate honestly (CPU parallelism
// is off the table when GOMAXPROCS is 1).
//
// Shard leaders run on a latency-modeled in-memory filesystem: every
// page read off the "device" costs a fixed ClusterReadLatency (default
// 100µs, the seek-free SSD regime). Without the model, a tmpfs-backed
// miss costs about as much as a hit and the pool's hit ratio — the
// quantity under study — stops mattering. The model is armed only for
// the measured window; setup (shred, replica bootstrap, warm-up) runs
// at memory speed.
//
// Two variants run per shard count: "leader" (Replicas:0 — every read
// hits the leader's pooled device) and "replica" (reads served by
// memory-backed WAL-shipping followers, which have no device at all).
// The leader series is the scaling claim; the replica series shows
// read offload making device latency vanish at any shard count.

// ClusterRow is one cell: a shard count and read-routing variant driven
// by a fixed client count for a fixed window.
type ClusterRow struct {
	Shards   int     `json:"shards"`
	Replicas int     `json:"replicas"`
	Variant  string  `json:"variant"`
	Docs     int     `json:"docs"`
	Factor   float64 `json:"factor"`
	Clients  int     `json:"clients"`
	Queries  int64   `json:"queries"`
	QPS      float64 `json:"qps"`
	NsPerOp  float64 `json:"ns_per_op"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// HitRatio is the aggregate leader buffer-pool hit ratio over the
	// measured window (replica reads never touch a leader pool, so the
	// replica variant reports the residual leader traffic only).
	HitRatio  float64 `json:"hit_ratio"`
	PagesRead int64   `json:"pages_read"`
	// Fallthroughs counts reads the epoch floor bounced from a lagging
	// replica to the leader during the window.
	Fallthroughs int64 `json:"fallthroughs"`
	// Speedup is QPS relative to the 1-shard cell of the same variant.
	Speedup float64 `json:"speedup"`
	Note    string  `json:"note,omitempty"`
}

// ClusterReport is the BENCH_cluster.json document.
type ClusterReport struct {
	Generated     string       `json:"generated"`
	GoVersion     string       `json:"go_version"`
	CPUs          int          `json:"cpus"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	WindowSec     float64      `json:"window_sec"`
	Shards        []int        `json:"shards"`
	Docs          int          `json:"docs"`
	Factor        float64      `json:"factor"`
	CachePages    int          `json:"cache_pages_per_shard"`
	ReadLatencyUs float64      `json:"device_read_latency_us"`
	Rows          []ClusterRow `json:"rows"`
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *ClusterReport) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// latFS is the latency-modeled device: an in-memory filesystem whose
// page reads cost a fixed delay once armed. Writes stay free — the
// benchmark is about the read path, and pricing setup writes would only
// slow the sweep down without changing any measured number.
type latFS struct {
	inner   *kvstore.FaultFS
	readLat atomic.Int64 // nanoseconds; 0 = disarmed
}

func newLatFS() *latFS { return &latFS{inner: kvstore.NewFaultFS()} }

// arm sets the per-read device latency (0 disarms).
func (fs *latFS) arm(d time.Duration) { fs.readLat.Store(int64(d)) }

func (fs *latFS) OpenFile(name string, flag int, perm os.FileMode) (kvstore.File, error) {
	f, err := fs.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &latFile{File: f, fs: fs}, nil
}

func (fs *latFS) Remove(name string) error { return fs.inner.Remove(name) }

type latFile struct {
	kvstore.File
	fs *latFS
}

func (f *latFile) ReadAt(p []byte, off int64) (int, error) {
	if d := f.fs.readLat.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return f.File.ReadAt(p, off)
}

// clusterQueries is the read mix, the concurrency benchmark's guards
// routed through the Backend verb surface: two materialized morphs and
// one streamed rendering. Every op re-reads the store through a buffer
// pool; only the guard compilations are memoized (per-engine cache).
var clusterQueries = []struct {
	Name string
	Run  func(b engine.Backend, name string) error
}{
	{"morph-auction", func(b engine.Backend, name string) error {
		_, err := b.Run(context.Background(), name,
			"CAST MORPH open_auction [ initial current quantity ]", engine.RunOpts{})
		return err
	}},
	{"morph-person", func(b engine.Backend, name string) error {
		_, err := b.Run(context.Background(), name,
			"CAST MORPH person [ name emailaddress ]", engine.RunOpts{})
		return err
	}},
	{"stream-person", func(b engine.Backend, name string) error {
		_, err := b.Run(context.Background(), name,
			"CAST MORPH person [ name emailaddress ]", engine.RunOpts{StreamTo: io.Discard})
		return err
	}},
}

// runClusterCell builds a cluster, loads the document set, and drives
// the read mix for the window with the device latency armed.
func runClusterCell(cfg Config, shards, replicas int, docs []string) (ClusterRow, error) {
	variant := "leader"
	if replicas > 0 {
		variant = "replica"
	}
	fss := make([]*latFS, shards)
	for i := range fss {
		fss[i] = newLatFS()
	}
	c, err := cluster.New(cluster.Config{
		Shards:   shards,
		Replicas: replicas,
		VNodes:   64,
		Seed:     uint64(cfg.Seed),
		OpenLeader: func(i int) (*store.Store, error) {
			return store.Open("shard.db", store.WithKVOptions(&kvstore.Options{
				FS:         fss[i],
				CachePages: cfg.clusterCachePages(),
				Durability: cfg.Durability,
			}))
		},
	})
	if err != nil {
		return ClusterRow{}, err
	}
	defer c.Close()

	ctx := context.Background()
	names := make([]string, len(docs))
	for i, xml := range docs {
		names[i] = fmt.Sprintf("cluster-%03d", i)
		if _, err := c.Shred(ctx, names[i], strings.NewReader(xml), nil); err != nil {
			return ClusterRow{}, err
		}
	}
	// Warm up unmeasured and at memory speed: two passes of the mix so
	// every cell starts from the same steady-state pool (at one shard
	// that steady state is a thrashing pool — the point of the cell).
	for pass := 0; pass < 2; pass++ {
		for i, name := range names {
			if err := clusterQueries[i%len(clusterQueries)].Run(c, name); err != nil {
				return ClusterRow{}, err
			}
		}
	}
	// Replicas finish applying the setup's commit feed before the clock
	// starts; the measured window is then pure steady-state reads.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < shards; i++ {
		for c.ReplicaLag(i) != 0 {
			if time.Now().After(deadline) {
				return ClusterRow{}, fmt.Errorf("cluster bench: shard %d replicas still lag after setup", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	for _, fs := range fss {
		fs.arm(cfg.clusterReadLatency())
	}
	defer func() {
		for _, fs := range fss {
			fs.arm(0)
		}
	}()

	hist := obs.NewHistogram(obs.DurationBuckets)
	var queries atomic.Int64
	var firstErr atomic.Value
	before := c.Stats()
	ftBefore := obs.Default.Counter("cluster_fallthroughs_total").Value()

	clients := cfg.clusterClients()
	window := cfg.clusterWindow()
	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := cl; time.Since(start) < window; i++ {
				q := clusterQueries[i%len(clusterQueries)]
				// The 7-stride decorrelates document choice from query
				// choice so each document sees every query.
				name := names[(i*7+cl)%len(names)]
				t0 := time.Now()
				if err := q.Run(c, name); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("%s on %s: %w", q.Name, name, err))
					return
				}
				hist.Observe(time.Since(t0).Seconds())
				queries.Add(1)
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return ClusterRow{}, err
	}

	after := c.Stats()
	snap := hist.Snapshot()
	n := queries.Load()
	delta := kvstore.Stats{
		CacheHits:   after.CacheHits - before.CacheHits,
		CacheMisses: after.CacheMisses - before.CacheMisses,
	}
	row := ClusterRow{
		Shards: shards, Replicas: replicas, Variant: variant,
		Docs: len(docs), Factor: cfg.clusterFactor(), Clients: clients,
		Queries:      n,
		QPS:          float64(n) / elapsed.Seconds(),
		P50Ms:        snap.P50 * 1e3,
		P95Ms:        snap.P95 * 1e3,
		P99Ms:        snap.P99 * 1e3,
		HitRatio:     delta.HitRatio(),
		PagesRead:    after.BlocksRead - before.BlocksRead,
		Fallthroughs: obs.Default.Counter("cluster_fallthroughs_total").Value() - ftBefore,
	}
	if n > 0 {
		row.NsPerOp = float64(elapsed.Nanoseconds()) / float64(n)
	}
	return row, nil
}

// RunCluster measures read scaling across shard counts: the same
// document set, per-shard cache budget, client count, and window at
// each point of cfg.ClusterShards, in the leader-read and replica-read
// variants. Speedup is relative to each variant's first (smallest)
// shard count.
func RunCluster(cfg Config) ([]ClusterRow, error) {
	docs := make([]string, cfg.clusterDocs())
	for i := range docs {
		docs[i] = xmark.Generate(xmark.Config{
			Factor: cfg.clusterFactor(),
			Seed:   cfg.Seed + int64(i),
		}).XML(false)
	}

	var rows []ClusterRow
	for _, replicas := range []int{0, cfg.clusterReplicas()} {
		var base float64
		for _, shards := range cfg.clusterShards() {
			row, err := runClusterCell(cfg, shards, replicas, docs)
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = row.QPS
			}
			if base > 0 {
				row.Speedup = row.QPS / base
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func (c *Config) clusterShards() []int {
	if len(c.ClusterShards) > 0 {
		return c.ClusterShards
	}
	return []int{1, 2, 4}
}

func (c *Config) clusterReplicas() int {
	if c.ClusterReplicas > 0 {
		return c.ClusterReplicas
	}
	return 1
}

func (c *Config) clusterDocs() int {
	if c.ClusterDocs > 0 {
		return c.ClusterDocs
	}
	return 16
}

func (c *Config) clusterFactor() float64 {
	if c.ClusterFactor > 0 {
		return c.ClusterFactor
	}
	return 0.01
}

func (c *Config) clusterClients() int {
	if c.ClusterClients > 0 {
		return c.ClusterClients
	}
	return 4
}

func (c *Config) clusterWindow() time.Duration {
	if c.ClusterWindow > 0 {
		return c.ClusterWindow
	}
	return 2 * time.Second
}

func (c *Config) clusterCachePages() int {
	if c.ClusterCachePages > 0 {
		return c.ClusterCachePages
	}
	// The 16-document default set is ~3400 pages; 1024 pages per shard
	// thrashes at one shard (3.3x the pool) and fits the most loaded
	// shard of the 4-way split.
	return 1024
}

func (c *Config) clusterReadLatency() time.Duration {
	if c.ClusterReadLatency != 0 {
		return c.ClusterReadLatency
	}
	return 100 * time.Microsecond
}

// ClusterReportFor wraps rows into the JSON report document.
func ClusterReportFor(cfg Config, rows []ClusterRow) *ClusterReport {
	return &ClusterReport{
		Generated:     "xmorphbench -exp cluster -json",
		GoVersion:     runtime.Version(),
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		WindowSec:     cfg.clusterWindow().Seconds(),
		Shards:        cfg.clusterShards(),
		Docs:          cfg.clusterDocs(),
		Factor:        cfg.clusterFactor(),
		CachePages:    cfg.clusterCachePages(),
		ReadLatencyUs: float64(cfg.clusterReadLatency().Microseconds()),
		Rows:          rows,
	}
}

// ClusterTable renders the rows for stdout.
func ClusterTable(rows []ClusterRow) string {
	t := &Table{
		Title:   "Cluster read scaling (fixed per-shard cache, latency-modeled device)",
		Columns: []string{"shards", "replicas", "variant", "clients", "queries", "qps", "p50ms", "p95ms", "p99ms", "hit%", "pg-read", "fallthru", "speedup"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Replicas), r.Variant,
			fmt.Sprintf("%d", r.Clients), fmt.Sprintf("%d", r.Queries), f2(r.QPS),
			f1(r.P50Ms), f1(r.P95Ms), f1(r.P99Ms),
			f1(r.HitRatio * 100), fmt.Sprintf("%d", r.PagesRead),
			fmt.Sprintf("%d", r.Fallthroughs), f2(r.Speedup),
		})
	}
	return t.String()
}
