package bench

import (
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps unit-test runs fast; the real sweeps run from
// cmd/xmorphbench and the repository benchmarks.
func tinyConfig(t *testing.T) Config {
	return Config{
		WorkDir:         t.TempDir(),
		XMarkFactors:    []float64{0.002, 0.004},
		DBLPSizes:       []int{100, 200},
		Seed:            7,
		CachePages:      64,
		MonitorInterval: 5 * time.Millisecond,
	}
}

func TestRunFig10ShapesHold(t *testing.T) {
	rows, err := RunFig10(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger factor => more bytes and nodes.
	if rows[1].XMLBytes <= rows[0].XMLBytes || rows[1].Nodes <= rows[0].Nodes {
		t.Errorf("sizes not increasing: %+v", rows)
	}
	for _, r := range rows {
		if r.RenderMS <= 0 || r.CompileMS <= 0 || r.BaselineMS <= 0 || r.ShredMS <= 0 {
			t.Errorf("missing timings: %+v", r)
		}
		if len(r.Samples) == 0 {
			t.Errorf("no sysmon samples at factor %g", r.Factor)
		}
	}
	// The paper's headline: compile cost is flat in the data size (it only
	// sees the shape) while render grows. At unit-test scale render is
	// tiny, so assert flatness: doubling the data must not double compile.
	if rows[1].CompileMS > 2*rows[0].CompileMS+5 {
		t.Errorf("compile cost should be ~flat: %f -> %f ms", rows[0].CompileMS, rows[1].CompileMS)
	}
	out := Fig10Table(rows).String()
	if !strings.Contains(out, "render-ms") {
		t.Errorf("table rendering: %s", out)
	}
	for _, tbl := range []*Table{Fig11Table(rows), Fig12Table(rows), Fig13Table(rows)} {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", tbl.Title)
		}
	}
}

func TestRunFig14ShapesHold(t *testing.T) {
	rows, err := RunFig14(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(Fig14Guards) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Output grows with transformation size at a fixed slice.
	var small, large Fig14Row
	for _, r := range rows {
		if r.Publications != 200 {
			continue
		}
		switch r.Transform {
		case "small":
			small = r
		case "large":
			large = r
		}
	}
	if large.OutputNodes <= small.OutputNodes {
		t.Errorf("large transform should output more nodes: %+v vs %+v", large, small)
	}
	if !strings.Contains(Fig14Table(rows).String(), "baseline-ms") {
		t.Error("fig14 table missing baseline column")
	}
}

func TestRunFig15ShapesHold(t *testing.T) {
	cfg := tinyConfig(t)
	rows, err := RunFig15(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 3 datasets x 4 shapes", len(rows))
	}
	for _, r := range rows {
		if r.OutputElems == 0 {
			t.Errorf("%s/%s produced no output", r.Dataset, r.Shape)
		}
		if r.ElemsPerSec <= 0 {
			t.Errorf("%s/%s throughput missing", r.Dataset, r.Shape)
		}
	}
	if !strings.Contains(Fig15Table(rows).String(), "elems/sec") {
		t.Error("fig15 table missing throughput column")
	}
}

func TestRunFig16ShapesHold(t *testing.T) {
	cfg := tinyConfig(t)
	rows, err := RunFig16(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig16Ops) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OutputElems == 0 || r.RenderMS <= 0 {
			t.Errorf("op %s: %+v", r.Op, r)
		}
	}
}

func TestTable1(t *testing.T) {
	tbl := Table1()
	out := tbl.String()
	if !strings.Contains(out, "1..2") {
		t.Errorf("Table I should contain a 1..2 cardinality:\n%s", out)
	}
	if len(tbl.Rows) != 7 {
		t.Errorf("Table I rows = %d, want 7 types", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Errorf("ragged row: %v", row)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := &Table{Title: "t", Columns: []string{"a", "long-col"}, Rows: [][]string{{"xxxx", "1"}}}
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Index(lines[1], "long-col") != strings.Index(lines[2], "1") {
		t.Errorf("columns unaligned:\n%s", out)
	}
}

func TestRunAblations(t *testing.T) {
	cfg := tinyConfig(t)
	rows, err := RunAblations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byExp := map[string]int{}
	for _, r := range rows {
		byExp[r.Experiment]++
		if r.Millis < 0 {
			t.Errorf("negative timing: %+v", r)
		}
	}
	for _, exp := range []string{"closest-join", "composition", "output", "buffer-pool"} {
		if byExp[exp] < 2 {
			t.Errorf("ablation %s has %d variants, want >= 2", exp, byExp[exp])
		}
	}
	if !strings.Contains(AblationTable(rows).String(), "sort-merge") {
		t.Error("ablation table missing variants")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if len(cfg.XMarkFactors) == 0 || len(cfg.DBLPSizes) == 0 {
		t.Error("default config missing workloads")
	}
	for i := 1; i < len(cfg.XMarkFactors); i++ {
		if cfg.XMarkFactors[i] <= cfg.XMarkFactors[i-1] {
			t.Error("factors must increase")
		}
	}
	if cfg.CachePages <= 0 || cfg.MonitorInterval <= 0 {
		t.Error("default config missing knobs")
	}
	// Temp workdir is created and cleaned.
	dir, cleanup, err := cfg.workdir()
	if err != nil || dir == "" {
		t.Fatalf("workdir: %v", err)
	}
	cleanup()
}

func TestFig16TableRendering(t *testing.T) {
	rows := []Fig16Row{{Op: "morph", CompileMS: 1, RenderMS: 2, OutputElems: 3}}
	out := Fig16Table(rows).String()
	if !strings.Contains(out, "morph") || !strings.Contains(out, "out-elems") {
		t.Errorf("fig16 table: %s", out)
	}
}
