package bench

import (
	"fmt"

	"xmorph/internal/gen/xmark"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

// Fig16Ops composes each XMorph operation with one fixed MORPH (the same
// MORPH in every test so the output size stays comparable, as in the
// paper). Operations compile into the target shape, so their run-time cost
// should be flat.
var Fig16Ops = []struct {
	Name  string
	Guard string
}{
	{"morph", "CAST MORPH person [ name emailaddress ]"},
	{"mutate", "CAST MORPH person [ name emailaddress ] | MUTATE person"},
	{"translate", "CAST MORPH person [ name emailaddress ] | TRANSLATE person -> individual"},
	{"drop", "CAST MORPH person [ name emailaddress phone ] | MUTATE (DROP phone)"},
	{"new", "CAST MORPH person [ name emailaddress ] | MUTATE (NEW entry) [ name ]"},
	{"clone", "CAST MORPH person [ name emailaddress ] | MUTATE person [ CLONE emailaddress ]"},
	{"restrict", "CAST MORPH (RESTRICT person [ name ]) [ name emailaddress ]"},
}

// Fig16Row is one operation's cost.
type Fig16Row struct {
	Op          string
	CompileMS   float64
	RenderMS    float64
	OutputElems int
}

// RunFig16 measures the cost of each XMorph operation composed with a
// fixed MORPH on the XMark dataset.
func RunFig16(cfg Config) ([]Fig16Row, error) {
	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	doc := xmark.Generate(xmark.Config{Factor: 0.03, Seed: cfg.Seed})
	path, _, _, err := prepareStore(dir, "f16-xmark", doc, cfg.CachePages, cfg.Durability)
	if err != nil {
		return nil, err
	}
	var rows []Fig16Row
	for _, op := range Fig16Ops {
		compile, renderT, outNodes, err := runStored(path, "f16-xmark", op.Guard, cfg.CachePages, cfg.Durability)
		if err != nil {
			return nil, fmt.Errorf("fig16 %s: %w", op.Name, err)
		}
		rows = append(rows, Fig16Row{
			Op:          op.Name,
			CompileMS:   ms(compile),
			RenderMS:    ms(renderT),
			OutputElems: outNodes,
		})
	}
	return rows, nil
}

// Fig16Table renders the Figure 16 series.
func Fig16Table(rows []Fig16Row) *Table {
	t := &Table{
		Title:   "Fig 16: cost of each XMorph operation (composed with one MORPH, XMark)",
		Columns: []string{"operation", "compile-ms", "render-ms", "out-elems"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Op, f2(r.CompileMS), f1(r.RenderMS), fmt.Sprint(r.OutputElems)})
	}
	return t
}

// Table1 computes the paper's Table I: path cardinalities between every
// pair of types of the Figure 5(e) shape (instance (c) of Figure 1,
// enriched so authors carry 1..2 books).
func Table1() *Table {
	doc := xmltree.MustParse(`<data>
	  <author>
	    <name>V</name>
	    <book><title>X</title><publisher><name>W</name></publisher></book>
	    <book><title>Y</title><publisher><name>W</name></publisher></book>
	  </author>
	  <author>
	    <name>U</name>
	    <book><title>Z</title><publisher><name>P</name></publisher></book>
	  </author>
	</data>`)
	sh := shape.FromDocument(doc)
	types := sh.Types()
	t := &Table{Title: "Table I: path cardinality for every pair of types (shape of Fig 5(e))"}
	short := func(ty string) string {
		if ty == "data" {
			return ty
		}
		return ty[len("data."):]
	}
	t.Columns = append(t.Columns, "from\\to")
	for _, ty := range types {
		t.Columns = append(t.Columns, short(ty))
	}
	for _, from := range types {
		row := []string{short(from)}
		for _, to := range types {
			c, ok := sh.PathCard(from, to)
			if !ok {
				row = append(row, "-")
			} else {
				row = append(row, c.String())
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
