package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"xmorph/internal/closest"
	"xmorph/internal/gen/xmark"
	"xmorph/internal/kvstore"
	"xmorph/internal/store"
	"xmorph/internal/xmltree"
)

// HotpathRow is one measurement of the shred → closest-join → render
// pipeline. Rows come in before/after pairs where a design change has an
// ablation knob: shred "per-chunk-put" vs "batched", cached-join "map"
// vs "csr". The BENCH_hotpath.json trajectory accumulates these across
// PRs.
type HotpathRow struct {
	Name         string  `json:"name"`
	Variant      string  `json:"variant"`
	Factor       float64 `json:"factor"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	PagesRead    int64   `json:"pages_read,omitempty"`
	PagesWritten int64   `json:"pages_written,omitempty"`
	HitRatio     float64 `json:"hit_ratio,omitempty"`
	FastPathHits int64   `json:"fastpath_hits,omitempty"`
	WALBytes     int64   `json:"wal_bytes,omitempty"`
	Note         string  `json:"note,omitempty"`
}

// HotpathReport is the BENCH_hotpath.json document.
type HotpathReport struct {
	Generated string       `json:"generated"`
	GoVersion string       `json:"go_version"`
	Factors   []float64    `json:"factors"`
	Rows      []HotpathRow `json:"rows"`
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *HotpathReport) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// measure times reps calls of f and reports ns/op and heap allocs/op.
func measure(reps int, f func() error) (nsPerOp, allocsPerOp float64, err error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := f(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return float64(elapsed.Nanoseconds()) / float64(reps),
		float64(m1.Mallocs-m0.Mallocs) / float64(reps), nil
}

// RunHotpath measures the hot path at each cfg.HotpathFactors scale:
//
//   - shred: one streaming shred into a fresh store file, batched
//     (per-type sorted runs through PutBatch, sorted-insert fast path on)
//     vs the per-chunk Put ablation — page writes are the headline.
//   - join: the raw sort-merge closest join over the two largest XMark
//     sequences (auctions × bidders).
//   - cached-join: building the grouped join cache plus one lookup per
//     parent, CSR layout vs the map[*Node][]*Node layout it replaced —
//     allocs/op is the headline.
//   - render: the full stored transformation (compile + render +
//     serialize) against a cold store, for the end-to-end trajectory.
func RunHotpath(cfg Config) ([]HotpathRow, error) {
	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var rows []HotpathRow
	for _, factor := range cfg.hotpathFactors() {
		doc := xmark.Generate(xmark.Config{Factor: factor, Seed: cfg.Seed})
		xml := doc.XML(false)

		// --- shred: batched vs per-chunk puts vs batched+wal ------------
		// The "batched+wal" row is the durability ablation: identical
		// workload with the write-ahead log on, so the extra page writes
		// and wal_bytes quantify the WAL's write amplification.
		for _, variant := range []string{"batched", "batched+wal", "per-chunk-put"} {
			path := filepath.Join(dir, fmt.Sprintf("hot-%g-%s.db", factor, variant))
			os.Remove(path)
			os.Remove(path + ".wal")
			opts := &kvstore.Options{CachePages: cfg.CachePages}
			sopts := []store.Option{store.WithKVOptions(opts)}
			switch variant {
			case "per-chunk-put":
				// The seed shredder: one Put per chunk, full descents,
				// byte-balanced splits.
				opts.DisableFastPath = true
				opts.BalancedSplitOnly = true
				sopts = append(sopts, store.WithUnbatchedShred())
			case "batched+wal":
				opts.Durability = true
			}
			st, err := store.Open(path, sopts...)
			if err != nil {
				return nil, err
			}
			before := st.Stats()
			ns, allocs, err := measure(1, func() error {
				_, err := st.Shred("d", strings.NewReader(xml), nil)
				return err
			})
			if err != nil {
				st.Close()
				return nil, err
			}
			after := st.Stats()
			rows = append(rows, HotpathRow{
				Name: "shred", Variant: variant, Factor: factor,
				NsPerOp: ns, AllocsPerOp: allocs,
				PagesRead:    after.BlocksRead - before.BlocksRead,
				PagesWritten: after.BlocksWritten - before.BlocksWritten,
				HitRatio:     after.HitRatio(),
				FastPathHits: after.FastPathHits - before.FastPathHits,
				WALBytes:     after.WALBytes - before.WALBytes,
				Note:         fmt.Sprintf("%d nodes, %d bytes xml", doc.Size(), len(xml)),
			})
			if err := st.Close(); err != nil {
				return nil, err
			}
			if variant != "batched" {
				os.Remove(path)
				os.Remove(path + ".wal")
			}
		}

		// --- join: raw sort-merge over the largest sequences ------------
		auctions := doc.NodesOfType("site.open_auctions.open_auction")
		bidders := doc.NodesOfType("site.open_auctions.open_auction.bidder")
		reps := joinReps(len(auctions) + len(bidders))
		var pairs int
		ns, allocs, err := measure(reps, func() error {
			pairs = len(closest.Join(auctions, bidders))
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, HotpathRow{
			Name: "join", Variant: "sort-merge", Factor: factor,
			NsPerOp: ns, AllocsPerOp: allocs,
			Note: fmt.Sprintf("%d pairs from %dx%d", pairs, len(auctions), len(bidders)),
		})

		// --- cached-join: CSR vs map grouped layout ---------------------
		ns, allocs, err = measure(reps, func() error {
			g := closest.GroupJoin(auctions, bidders, nil)
			sink := 0
			for _, a := range auctions {
				sink += len(g.Of(a))
			}
			_ = sink
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, HotpathRow{
			Name: "cached-join", Variant: "csr", Factor: factor,
			NsPerOp: ns, AllocsPerOp: allocs,
			Note: "GroupJoin build + one lookup per parent",
		})
		ns, allocs, err = measure(reps, func() error {
			m := map[*xmltree.Node][]*xmltree.Node{}
			closest.JoinWith(auctions, bidders, func(p, c *xmltree.Node) { m[p] = append(m[p], c) })
			sink := 0
			for _, a := range auctions {
				sink += len(m[a])
			}
			_ = sink
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, HotpathRow{
			Name: "cached-join", Variant: "map", Factor: factor,
			NsPerOp: ns, AllocsPerOp: allocs,
			Note: "map[*Node][]*Node build + one lookup per parent (pre-CSR layout)",
		})

		// --- render: end-to-end stored transformation -------------------
		path := filepath.Join(dir, fmt.Sprintf("hot-%g-batched.db", factor))
		st, err := coldOpen(path, cfg.CachePages, cfg.Durability)
		if err != nil {
			return nil, err
		}
		before := st.Stats()
		var outNodes int
		ns, allocs, err = measure(1, func() error {
			r, err := transformStoredDiscard(st, "d", Fig10Guard)
			if err != nil {
				return err
			}
			outNodes = r.nodes
			return nil
		})
		if err != nil {
			st.Close()
			return nil, err
		}
		after := st.Stats()
		rows = append(rows, HotpathRow{
			Name: "render", Variant: "csr-cache", Factor: factor,
			NsPerOp: ns, AllocsPerOp: allocs,
			PagesRead: after.BlocksRead - before.BlocksRead,
			HitRatio:  after.HitRatio(),
			Note:      fmt.Sprintf("%d output nodes, cold store", outNodes),
		})
		if err := st.Close(); err != nil {
			return nil, err
		}
		os.Remove(path)
	}
	return rows, nil
}

// joinReps picks a repetition count that keeps per-factor join
// measurements under roughly a second.
func joinReps(inputs int) int {
	switch {
	case inputs > 200_000:
		return 3
	case inputs > 20_000:
		return 10
	default:
		return 50
	}
}

// hotpathFactors returns cfg.HotpathFactors or the default two scales.
func (c *Config) hotpathFactors() []float64 {
	if len(c.HotpathFactors) > 0 {
		return c.HotpathFactors
	}
	return []float64{0.2, 1.0}
}

// HotpathReportFor wraps rows into the JSON report document.
func HotpathReportFor(cfg Config, rows []HotpathRow) *HotpathReport {
	return &HotpathReport{
		Generated: "xmorphbench -exp hotpath -json",
		GoVersion: runtime.Version(),
		Factors:   cfg.hotpathFactors(),
		Rows:      rows,
	}
}

// HotpathTable renders the rows for stdout.
func HotpathTable(rows []HotpathRow) string {
	t := &Table{
		Title:   "Hot path (shred / closest join / render)",
		Columns: []string{"experiment", "variant", "factor", "ms/op", "allocs/op", "pg-read", "pg-write", "hit%", "fast-hits", "wal-kb", "note"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, r.Variant, fmt.Sprintf("%g", r.Factor),
			f2(r.NsPerOp / 1e6), fmt.Sprintf("%.0f", r.AllocsPerOp),
			fmt.Sprintf("%d", r.PagesRead), fmt.Sprintf("%d", r.PagesWritten),
			f1(r.HitRatio * 100), fmt.Sprintf("%d", r.FastPathHits),
			fmt.Sprintf("%d", r.WALBytes/1024), r.Note,
		})
	}
	return t.String()
}
