package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xmorph/internal/engine"
	"xmorph/internal/gen/xmark"
	"xmorph/internal/kvstore"
	"xmorph/internal/obs"
)

// ServeRow is one xmorphd load cell: N concurrent HTTP clients running a
// mixed query/shred workload against one daemon for a fixed window.
// Throttled counts deliberate 429 responses from the admission gate
// (excluded from Errors and from the latency percentiles' op count — the
// server answers them in microseconds).
//
// The primary columns measure the daemon in its shipped configuration —
// request tracing, slow-query retention, and access logging all on.
// QPSObsOff drives a second handler over the same engine with tracing
// disabled and no access log, in sub-windows interleaved with the
// primary arm's (see obsSlices); ObsOverheadPct is the throughput the
// instrumentation costs, in percent of the uninstrumented rate.
type ServeRow struct {
	Clients        int     `json:"clients"`
	Writers        int     `json:"writers"`
	Ops            int64   `json:"ops"`
	QPS            float64 `json:"qps"`
	QPSObsOff      float64 `json:"qps_obs_off"`
	ObsOverheadPct float64 `json:"obs_overhead_pct"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`
	// QueryP99DuringShredMs is the p99 of query ops that started while at
	// least one dedicated writer's shred was in flight (0 when Writers is
	// 0 or no query overlapped a shred) — the queries-never-wait-behind-
	// a-shred column. Compare against the Writers=0 row's P99Ms.
	QueryP99DuringShredMs float64 `json:"query_p99_during_shred_ms"`
	// QueriesDuringShred counts the ops behind that percentile.
	QueriesDuringShred int64 `json:"queries_during_shred"`
	// WALFsyncsPerSync is the cell's WAL commit-record fsyncs per Sync
	// call (store deltas); below 1 means group commit amortized fsyncs
	// across concurrent committers. 0 without durability.
	WALFsyncsPerSync   float64 `json:"wal_fsyncs_per_sync"`
	Throttled          int64   `json:"throttled_429"`
	ThrottledRate      float64 `json:"throttled_rate"`
	Errors             int64   `json:"errors"`
	ShredOps           int64   `json:"shred_ops"`
	GuardCacheHitRatio float64 `json:"guard_cache_hit_ratio"`
	StoreHitRatio      float64 `json:"store_hit_ratio"`
	Note               string  `json:"note,omitempty"`
}

// ServeReport is the BENCH_serve.json document.
type ServeReport struct {
	Generated   string  `json:"generated"`
	GoVersion   string  `json:"go_version"`
	CPUs        int     `json:"cpus"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	WindowSec   float64 `json:"window_sec"`
	Factor      float64 `json:"factor"`
	MaxInFlight int     `json:"max_inflight"`
	TraceSample int     `json:"trace_sample"`
	SlowQueryMs float64 `json:"slow_query_ms"`
	Durability  bool    `json:"durability"`
	Writers     int     `json:"writers"`
	Clients     []int   `json:"clients"`
	// GroupCommitSizeP50 is the run's median group-commit batch size
	// (Sync callers per flush, from kvstore_group_commit_size); above 1
	// means concurrent committers actually shared fsyncs.
	GroupCommitSizeP50 float64 `json:"group_commit_size_p50"`
	// ObsOverheadPct aggregates the per-row on/off comparison across
	// all cells (total throughput, so each cell's noise partially
	// cancels); single durable cells are fsync-variance-dominated.
	ObsOverheadPct float64    `json:"obs_overhead_pct"`
	Rows           []ServeRow `json:"rows"`
	// Store holds the kvstore contention and fsync histograms as left in
	// the default registry by the run: lock-wait histograms count only
	// contended acquisitions, so their Count doubles as a
	// contention-event counter.
	Store map[string]HistSummary `json:"store_histograms"`
}

// HistSummary condenses one obs histogram for the report.
type HistSummary struct {
	Count int64   `json:"count"`
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
}

// storeHistograms summarizes every kvstore_* histogram in the default
// registry (lock-wait and fsync timings observed during the run).
func storeHistograms() map[string]HistSummary {
	snap := obs.Default.Snapshot()
	out := make(map[string]HistSummary)
	for name, h := range snap.Histograms {
		if !strings.HasPrefix(name, "kvstore_") {
			continue
		}
		out[name] = HistSummary{Count: h.Count, P50Us: h.P50 * 1e6, P99Us: h.P99 * 1e6}
	}
	return out
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *ServeReport) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// serveOp is one client request against the daemon; the bool reports
// whether the server throttled it (429).
type serveOp func(c *http.Client, base string, client, seq int) (throttled bool, err error)

// postQuery runs POST /v1/query and drains the response.
func postQuery(c *http.Client, base string, body map[string]any) (bool, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return false, err
	}
	resp, err := c.Post(base+"/v1/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode == http.StatusTooManyRequests {
		return true, nil
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("query: status %d", resp.StatusCode)
	}
	return false, nil
}

// serveQueryMix is the steady-state read mix (same guards as the
// concurrency benchmark, plus a streamed rendering): every op compiles
// against the shared document, so the guard cache should absorb all but
// the first compilations.
var serveQueryMix = []serveOp{
	func(c *http.Client, base string, _, _ int) (bool, error) {
		return postQuery(c, base, map[string]any{
			"doc": "serve", "guard": "CAST MORPH open_auction [ initial current quantity ]",
		})
	},
	func(c *http.Client, base string, _, _ int) (bool, error) {
		return postQuery(c, base, map[string]any{
			"doc": "serve", "guard": "CAST MORPH person [ name emailaddress ]",
		})
	},
	func(c *http.Client, base string, _, _ int) (bool, error) {
		return postQuery(c, base, map[string]any{
			"doc": "serve", "guard": "CAST MORPH person [ name emailaddress ]",
			"format": "xml", "stream": true,
		})
	},
}

// shredCycle shreds a fresh document under a unique name and drops it
// again — the write side of the mix. Both requests ride one op slot.
// The slice tag keeps names unique across sub-windows: a throttled
// drop leaves its document behind, and without the tag the next
// sub-window's identical (client, seq) shred would 409 on it.
func shredCycle(c *http.Client, base string, xml []byte, slice int64, client, seq int) (bool, error) {
	name := fmt.Sprintf("tmp-%d-%d-%d", slice, client, seq)
	resp, err := c.Post(base+"/v1/docs/"+name, "application/xml", bytes.NewReader(xml))
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return true, nil
	}
	if resp.StatusCode != http.StatusCreated {
		return false, fmt.Errorf("shred %s: status %d", name, resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/docs/"+name, nil)
	if err != nil {
		return false, err
	}
	resp, err = c.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// A throttled drop leaves the temp document behind; harmless for the
	// measurement, and the next cycle uses a fresh name.
	if resp.StatusCode == http.StatusTooManyRequests {
		return true, nil
	}
	if resp.StatusCode != http.StatusNoContent {
		return false, fmt.Errorf("drop %s: status %d", name, resp.StatusCode)
	}
	return false, nil
}

// shredEvery is the write fraction of the mix: one op in this many is a
// shred+drop cycle.
const shredEvery = 10

// obsSlices is how many (obs-on, obs-off) sub-window pairs each cell
// interleaves: a transient stall (an fsync burst, page-cache
// writeback) then lands on both arms instead of deciding the
// comparison. Pairs alternate which arm goes first, cancelling any
// systematic first-runner advantage (warm page cache, freshly
// truncated WAL).
const obsSlices = 4

// cellAccum collects one arm's measurements across a cell's
// sub-windows. shredHist double-counts the query ops that started while
// a dedicated writer's shred was in flight, so their latency tail is
// reported on its own.
type cellAccum struct {
	hist        *obs.Histogram
	shredHist   *obs.Histogram
	ops         int64
	duringShred int64
	throttle    int64
	errs        int64
	shreds      int64
	elapsed     time.Duration
	firstErr    error
}

func newCellAccum() *cellAccum {
	return &cellAccum{
		hist:      obs.NewHistogram(obs.DurationBuckets),
		shredHist: obs.NewHistogram(obs.DurationBuckets),
	}
}

func (a *cellAccum) qps() float64 {
	if a.elapsed <= 0 {
		return 0
	}
	return float64(a.ops) / a.elapsed.Seconds()
}

// sliceSeq tags every measurement sub-window so shred names never
// collide across slices or cells.
var sliceSeq atomic.Int64

// runServeSlice drives the workload against one daemon for one
// sub-window, accumulating into acc.
//
// With writers == 0 every client runs the classic mix (1 shred op in
// shredEvery). With writers > 0 the clients run a pure query mix while
// the dedicated writers shred and drop continuously; a query that starts
// while any shred cycle is in flight is additionally observed into
// acc.shredHist — the during-shred latency column.
func runServeSlice(base string, shredXML []byte, clients, writers int, window time.Duration, acc *cellAccum) {
	slice := sliceSeq.Add(1)
	var (
		ops, duringShred, throttled, errCount, shreds atomic.Int64
		shredBusy                                     atomic.Int64
		firstErr                                      atomic.Value
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; time.Since(start) < window; i++ {
				shredBusy.Add(1)
				was, err := shredCycle(client, base, shredXML, slice, 1_000_000+w, i)
				shredBusy.Add(-1)
				shreds.Add(1)
				if err != nil {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, err)
				} else if was {
					throttled.Add(1)
				}
			}
		}(w)
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for i := c; time.Since(start) < window; i++ {
				busy := shredBusy.Load() > 0 // overlap check: sampled at both ends
				t0 := time.Now()
				var (
					was bool
					err error
				)
				query := true
				if writers == 0 && i%shredEvery == shredEvery-1 {
					query = false
					shreds.Add(1)
					was, err = shredCycle(client, base, shredXML, slice, c, i)
				} else {
					was, err = serveQueryMix[i%len(serveQueryMix)](client, base, c, i)
				}
				busy = busy || shredBusy.Load() > 0
				if err != nil {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				if was {
					throttled.Add(1)
					continue
				}
				d := time.Since(t0).Seconds()
				acc.hist.Observe(d)
				ops.Add(1)
				if query && busy {
					acc.shredHist.Observe(d)
					duringShred.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	acc.elapsed += time.Since(start)
	acc.ops += ops.Load()
	acc.duringShred += duringShred.Load()
	acc.throttle += throttled.Load()
	acc.errs += errCount.Load()
	acc.shreds += shreds.Load()
	if err, ok := firstErr.Load().(error); ok && err != nil && acc.firstErr == nil {
		acc.firstErr = err
	}
}

// runServeCell drives one client count against both handlers,
// alternating obsSlices (on, off) sub-windows. The primary columns
// come from the obs-on arm; QPSObsOff and the overhead come from the
// off arm's accumulated throughput.
func runServeCell(eng *engine.Engine, onBase, offBase string, shredXML []byte, clients, writers int, window time.Duration) (ServeRow, error) {
	hitsBefore, missesBefore := eng.CacheStats()
	statsBefore := eng.Stats()

	on, off := newCellAccum(), newCellAccum()
	slice := window / obsSlices
	if slice <= 0 {
		slice = window
	}
	for k := 0; k < obsSlices; k++ {
		if k%2 == 0 {
			runServeSlice(onBase, shredXML, clients, writers, slice, on)
			runServeSlice(offBase, shredXML, clients, writers, slice, off)
		} else {
			runServeSlice(offBase, shredXML, clients, writers, slice, off)
			runServeSlice(onBase, shredXML, clients, writers, slice, on)
		}
	}

	hitsAfter, missesAfter := eng.CacheStats()
	statsAfter := eng.Stats()
	snap := on.hist.Snapshot()
	row := ServeRow{
		Clients:   clients,
		Writers:   writers,
		Ops:       on.ops,
		QPS:       on.qps(),
		QPSObsOff: off.qps(),
		P50Ms:     snap.P50 * 1e3,
		P95Ms:     snap.P95 * 1e3,
		P99Ms:     snap.P99 * 1e3,
		Throttled: on.throttle,
		Errors:    on.errs + off.errs,
		ShredOps:  on.shreds,
	}
	if on.duringShred > 0 {
		ssnap := on.shredHist.Snapshot()
		row.QueryP99DuringShredMs = ssnap.P99 * 1e3
		row.QueriesDuringShred = on.duringShred
	}
	if dSync := statsAfter.SyncCalls - statsBefore.SyncCalls; dSync > 0 {
		row.WALFsyncsPerSync = float64(statsAfter.WALFsyncs-statsBefore.WALFsyncs) / float64(dSync)
	}
	if offQPS := off.qps(); offQPS > 0 {
		row.ObsOverheadPct = (offQPS - row.QPS) / offQPS * 100
	}
	if total := row.Ops + row.Throttled; total > 0 {
		row.ThrottledRate = float64(row.Throttled) / float64(total)
	}
	if dh, dm := hitsAfter-hitsBefore, missesAfter-missesBefore; dh+dm > 0 {
		row.GuardCacheHitRatio = float64(dh) / float64(dh+dm)
	}
	delta := kvstore.Stats{
		CacheHits:   statsAfter.CacheHits - statsBefore.CacheHits,
		CacheMisses: statsAfter.CacheMisses - statsBefore.CacheMisses,
	}
	row.StoreHitRatio = delta.HitRatio()
	if on.firstErr != nil {
		row.Note = on.firstErr.Error()
	} else if off.firstErr != nil {
		row.Note = off.firstErr.Error()
	}
	return row, nil
}

// RunServe measures the xmorphd service end to end: it shreds one XMark
// document into a store, starts the daemon's handler on a loopback
// listener, and runs the mixed query/shred workload from each client
// count for a fixed window. Deliberate 429s from the admission gate are
// reported separately from errors; the guard-cache and buffer-pool hit
// ratios show where repeated queries stop paying.
func RunServe(cfg Config) ([]ServeRow, error) {
	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	doc := xmark.Generate(xmark.Config{Factor: cfg.serveFactor(), Seed: cfg.Seed})
	path, _, _, err := prepareStore(dir, "serve", doc, cfg.servePoolPages(), cfg.Durability)
	if err != nil {
		return nil, err
	}
	defer os.Remove(path)

	// The shred side of the mix uses a small fixed document so write cost
	// does not swamp the query mix.
	shredXML := []byte(xmark.Generate(xmark.Config{Factor: 0.01, Seed: cfg.Seed + 1}).XML(false))

	engOpts := []engine.Option{
		engine.WithCachePages(cfg.servePoolPages()),
		engine.WithDurability(cfg.Durability),
	}
	if cfg.ServeWriters > 0 && cfg.Durability {
		// Dedicated writers sync sparsely (once per shred, once per drop);
		// the follower window is what lets their commits share WAL fsyncs.
		engOpts = append([]engine.Option{engine.WithKVOptions(&kvstore.Options{
			GroupCommitWait: 500 * time.Millisecond,
		})}, engOpts...)
	}
	eng, err := engine.Open(path, engOpts...)
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	// Two handlers over the same engine: the shipped configuration
	// (tracing, slow-query retention, access logging — the log sinks to
	// io.Discard so the measurement prices formatting, not the terminal)
	// and a stripped one with tracing off and no access log. Cells run
	// against each in turn; the gap is the observability overhead.
	srvOn := httptest.NewServer(engine.NewServer(eng, engine.ServerConfig{
		MaxInFlight:        cfg.serveMaxInflight(),
		TraceSample:        cfg.serveSample(),
		SlowQueryThreshold: cfg.serveSlowThreshold(),
		AccessLog:          slog.New(slog.NewJSONHandler(io.Discard, nil)),
	}).Handler())
	defer srvOn.Close()
	srvOff := httptest.NewServer(engine.NewServer(eng, engine.ServerConfig{
		MaxInFlight: cfg.serveMaxInflight(),
		TraceSample: -1,
	}).Handler())
	defer srvOff.Close()

	// Warm up unmeasured: every guard compiles once, the pool pages in.
	warm := &http.Client{}
	for _, op := range serveQueryMix {
		if _, err := op(warm, srvOn.URL, 0, 0); err != nil {
			return nil, err
		}
	}

	var rows []ServeRow
	for _, nc := range cfg.serveClients() {
		row, err := runServeCell(eng, srvOn.URL, srvOff.URL, shredXML, nc, cfg.ServeWriters, cfg.serveWindow())
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (c *Config) serveClients() []int {
	if len(c.ServeClients) > 0 {
		return c.ServeClients
	}
	return []int{1, 2, 4, 8}
}

func (c *Config) serveWindow() time.Duration {
	if c.ServeWindow > 0 {
		return c.ServeWindow
	}
	return 3 * time.Second
}

func (c *Config) serveFactor() float64 {
	if c.ServeFactor > 0 {
		return c.ServeFactor
	}
	return 0.2
}

func (c *Config) servePoolPages() int {
	if c.ConcCachePages > 0 {
		return c.ConcCachePages
	}
	return 512
}

func (c *Config) serveMaxInflight() int {
	if c.ServeMaxInflight > 0 {
		return c.ServeMaxInflight
	}
	return runtime.GOMAXPROCS(0)
}

func (c *Config) serveSample() int {
	if c.ServeSample != 0 {
		return c.ServeSample
	}
	return 1
}

func (c *Config) serveSlowThreshold() time.Duration {
	if c.ServeSlowMS != 0 {
		return time.Duration(c.ServeSlowMS) * time.Millisecond
	}
	return 250 * time.Millisecond
}

// ServeReportFor wraps rows into the JSON report document, folding in
// the kvstore histograms the run populated in the default registry.
func ServeReportFor(cfg Config, rows []ServeRow) *ServeReport {
	var on, off float64
	for _, r := range rows {
		on += r.QPS
		off += r.QPSObsOff
	}
	var overhead float64
	if off > 0 {
		overhead = (off - on) / off * 100
	}
	return &ServeReport{
		Generated:      "xmorphbench -exp serve -json",
		GoVersion:      runtime.Version(),
		CPUs:           runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		WindowSec:      cfg.serveWindow().Seconds(),
		Factor:         cfg.serveFactor(),
		MaxInFlight:    cfg.serveMaxInflight(),
		TraceSample:    cfg.serveSample(),
		SlowQueryMs:    cfg.serveSlowThreshold().Seconds() * 1e3,
		Durability:     cfg.Durability,
		Writers:        cfg.ServeWriters,
		Clients:        cfg.serveClients(),
		ObsOverheadPct: overhead,
		Rows:           rows,
		Store:          storeHistograms(),
		GroupCommitSizeP50: obs.Default.Snapshot().
			Histograms["kvstore_group_commit_size"].P50,
	}
}

// ServeTable renders the rows for stdout.
func ServeTable(rows []ServeRow) string {
	t := &Table{
		Title:   "xmorphd service (mixed query/shred over HTTP, fixed window per cell)",
		Columns: []string{"clients", "writers", "ops", "qps", "qps-off", "obs%", "p50ms", "p95ms", "p99ms", "p99-shred", "fsync/sync", "429s", "429%", "errors", "shreds", "guard-hit%", "pool-hit%"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Clients), fmt.Sprintf("%d", r.Writers),
			fmt.Sprintf("%d", r.Ops), f2(r.QPS),
			f2(r.QPSObsOff), f1(r.ObsOverheadPct),
			f1(r.P50Ms), f1(r.P95Ms), f1(r.P99Ms),
			f1(r.QueryP99DuringShredMs), f2(r.WALFsyncsPerSync),
			fmt.Sprintf("%d", r.Throttled), f1(r.ThrottledRate * 100),
			fmt.Sprintf("%d", r.Errors), fmt.Sprintf("%d", r.ShredOps),
			f1(r.GuardCacheHitRatio * 100), f1(r.StoreHitRatio * 100),
		})
	}
	return t.String()
}
