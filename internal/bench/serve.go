package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xmorph/internal/engine"
	"xmorph/internal/gen/xmark"
	"xmorph/internal/kvstore"
	"xmorph/internal/obs"
)

// ServeRow is one xmorphd load cell: N concurrent HTTP clients running a
// mixed query/shred workload against one daemon for a fixed window.
// Throttled counts deliberate 429 responses from the admission gate
// (excluded from Errors and from the latency percentiles' op count — the
// server answers them in microseconds).
type ServeRow struct {
	Clients            int     `json:"clients"`
	Ops                int64   `json:"ops"`
	QPS                float64 `json:"qps"`
	P50Ms              float64 `json:"p50_ms"`
	P95Ms              float64 `json:"p95_ms"`
	P99Ms              float64 `json:"p99_ms"`
	Throttled          int64   `json:"throttled_429"`
	ThrottledRate      float64 `json:"throttled_rate"`
	Errors             int64   `json:"errors"`
	ShredOps           int64   `json:"shred_ops"`
	GuardCacheHitRatio float64 `json:"guard_cache_hit_ratio"`
	StoreHitRatio      float64 `json:"store_hit_ratio"`
	Note               string  `json:"note,omitempty"`
}

// ServeReport is the BENCH_serve.json document.
type ServeReport struct {
	Generated   string     `json:"generated"`
	GoVersion   string     `json:"go_version"`
	CPUs        int        `json:"cpus"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	WindowSec   float64    `json:"window_sec"`
	Factor      float64    `json:"factor"`
	MaxInFlight int        `json:"max_inflight"`
	Clients     []int      `json:"clients"`
	Rows        []ServeRow `json:"rows"`
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *ServeReport) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// serveOp is one client request against the daemon; the bool reports
// whether the server throttled it (429).
type serveOp func(c *http.Client, base string, client, seq int) (throttled bool, err error)

// postQuery runs POST /v1/query and drains the response.
func postQuery(c *http.Client, base string, body map[string]any) (bool, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return false, err
	}
	resp, err := c.Post(base+"/v1/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode == http.StatusTooManyRequests {
		return true, nil
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("query: status %d", resp.StatusCode)
	}
	return false, nil
}

// serveQueryMix is the steady-state read mix (same guards as the
// concurrency benchmark, plus a streamed rendering): every op compiles
// against the shared document, so the guard cache should absorb all but
// the first compilations.
var serveQueryMix = []serveOp{
	func(c *http.Client, base string, _, _ int) (bool, error) {
		return postQuery(c, base, map[string]any{
			"doc": "serve", "guard": "CAST MORPH open_auction [ initial current quantity ]",
		})
	},
	func(c *http.Client, base string, _, _ int) (bool, error) {
		return postQuery(c, base, map[string]any{
			"doc": "serve", "guard": "CAST MORPH person [ name emailaddress ]",
		})
	},
	func(c *http.Client, base string, _, _ int) (bool, error) {
		return postQuery(c, base, map[string]any{
			"doc": "serve", "guard": "CAST MORPH person [ name emailaddress ]",
			"format": "xml", "stream": true,
		})
	},
}

// shredCycle shreds a fresh document under a unique name and drops it
// again — the write side of the mix. Both requests ride one op slot.
func shredCycle(c *http.Client, base string, xml []byte, client, seq int) (bool, error) {
	name := fmt.Sprintf("tmp-%d-%d", client, seq)
	resp, err := c.Post(base+"/v1/docs/"+name, "application/xml", bytes.NewReader(xml))
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return true, nil
	}
	if resp.StatusCode != http.StatusCreated {
		return false, fmt.Errorf("shred %s: status %d", name, resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/docs/"+name, nil)
	if err != nil {
		return false, err
	}
	resp, err = c.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// A throttled drop leaves the temp document behind; harmless for the
	// measurement, and the next cycle uses a fresh name.
	if resp.StatusCode == http.StatusTooManyRequests {
		return true, nil
	}
	if resp.StatusCode != http.StatusNoContent {
		return false, fmt.Errorf("drop %s: status %d", name, resp.StatusCode)
	}
	return false, nil
}

// shredEvery is the write fraction of the mix: one op in this many is a
// shred+drop cycle.
const shredEvery = 10

// runServeCell drives one (clients, window) cell against a running
// daemon.
func runServeCell(eng *engine.Engine, base string, shredXML []byte, clients int, window time.Duration) (ServeRow, error) {
	hist := obs.NewHistogram(obs.DurationBuckets)
	var (
		ops, throttled, errCount, shreds atomic.Int64
		firstErr                         atomic.Value
	)
	hitsBefore, missesBefore := eng.CacheStats()
	statsBefore := eng.Stats()

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for i := c; time.Since(start) < window; i++ {
				t0 := time.Now()
				var (
					was bool
					err error
				)
				if i%shredEvery == shredEvery-1 {
					shreds.Add(1)
					was, err = shredCycle(client, base, shredXML, c, i)
				} else {
					was, err = serveQueryMix[i%len(serveQueryMix)](client, base, c, i)
				}
				if err != nil {
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				if was {
					throttled.Add(1)
					continue
				}
				hist.Observe(time.Since(t0).Seconds())
				ops.Add(1)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	hitsAfter, missesAfter := eng.CacheStats()
	statsAfter := eng.Stats()
	snap := hist.Snapshot()
	n := ops.Load()
	row := ServeRow{
		Clients:   clients,
		Ops:       n,
		QPS:       float64(n) / elapsed.Seconds(),
		P50Ms:     snap.P50 * 1e3,
		P95Ms:     snap.P95 * 1e3,
		P99Ms:     snap.P99 * 1e3,
		Throttled: throttled.Load(),
		Errors:    errCount.Load(),
		ShredOps:  shreds.Load(),
	}
	if total := row.Ops + row.Throttled; total > 0 {
		row.ThrottledRate = float64(row.Throttled) / float64(total)
	}
	if dh, dm := hitsAfter-hitsBefore, missesAfter-missesBefore; dh+dm > 0 {
		row.GuardCacheHitRatio = float64(dh) / float64(dh+dm)
	}
	delta := kvstore.Stats{
		CacheHits:   statsAfter.CacheHits - statsBefore.CacheHits,
		CacheMisses: statsAfter.CacheMisses - statsBefore.CacheMisses,
	}
	row.StoreHitRatio = delta.HitRatio()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		row.Note = err.Error()
	}
	return row, nil
}

// RunServe measures the xmorphd service end to end: it shreds one XMark
// document into a store, starts the daemon's handler on a loopback
// listener, and runs the mixed query/shred workload from each client
// count for a fixed window. Deliberate 429s from the admission gate are
// reported separately from errors; the guard-cache and buffer-pool hit
// ratios show where repeated queries stop paying.
func RunServe(cfg Config) ([]ServeRow, error) {
	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	doc := xmark.Generate(xmark.Config{Factor: cfg.serveFactor(), Seed: cfg.Seed})
	path, _, _, err := prepareStore(dir, "serve", doc, cfg.servePoolPages(), cfg.Durability)
	if err != nil {
		return nil, err
	}
	defer os.Remove(path)

	// The shred side of the mix uses a small fixed document so write cost
	// does not swamp the query mix.
	shredXML := []byte(xmark.Generate(xmark.Config{Factor: 0.01, Seed: cfg.Seed + 1}).XML(false))

	eng, err := engine.Open(path,
		engine.WithCachePages(cfg.servePoolPages()),
		engine.WithDurability(cfg.Durability))
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	srv := httptest.NewServer(engine.NewServer(eng, engine.ServerConfig{
		MaxInFlight: cfg.serveMaxInflight(),
	}).Handler())
	defer srv.Close()

	// Warm up unmeasured: every guard compiles once, the pool pages in.
	warm := &http.Client{}
	for _, op := range serveQueryMix {
		if _, err := op(warm, srv.URL, 0, 0); err != nil {
			return nil, err
		}
	}

	var rows []ServeRow
	for _, nc := range cfg.serveClients() {
		row, err := runServeCell(eng, srv.URL, shredXML, nc, cfg.serveWindow())
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (c *Config) serveClients() []int {
	if len(c.ServeClients) > 0 {
		return c.ServeClients
	}
	return []int{1, 2, 4, 8}
}

func (c *Config) serveWindow() time.Duration {
	if c.ServeWindow > 0 {
		return c.ServeWindow
	}
	return 3 * time.Second
}

func (c *Config) serveFactor() float64 {
	if c.ServeFactor > 0 {
		return c.ServeFactor
	}
	return 0.2
}

func (c *Config) servePoolPages() int {
	if c.ConcCachePages > 0 {
		return c.ConcCachePages
	}
	return 512
}

func (c *Config) serveMaxInflight() int {
	if c.ServeMaxInflight > 0 {
		return c.ServeMaxInflight
	}
	return runtime.GOMAXPROCS(0)
}

// ServeReportFor wraps rows into the JSON report document.
func ServeReportFor(cfg Config, rows []ServeRow) *ServeReport {
	return &ServeReport{
		Generated:   "xmorphbench -exp serve -json",
		GoVersion:   runtime.Version(),
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		WindowSec:   cfg.serveWindow().Seconds(),
		Factor:      cfg.serveFactor(),
		MaxInFlight: cfg.serveMaxInflight(),
		Clients:     cfg.serveClients(),
		Rows:        rows,
	}
}

// ServeTable renders the rows for stdout.
func ServeTable(rows []ServeRow) string {
	t := &Table{
		Title:   "xmorphd service (mixed query/shred over HTTP, fixed window per cell)",
		Columns: []string{"clients", "ops", "qps", "p50ms", "p95ms", "p99ms", "429s", "429%", "errors", "shreds", "guard-hit%", "pool-hit%"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Clients), fmt.Sprintf("%d", r.Ops), f2(r.QPS),
			f1(r.P50Ms), f1(r.P95Ms), f1(r.P99Ms),
			fmt.Sprintf("%d", r.Throttled), f1(r.ThrottledRate * 100),
			fmt.Sprintf("%d", r.Errors), fmt.Sprintf("%d", r.ShredOps),
			f1(r.GuardCacheHitRatio * 100), f1(r.StoreHitRatio * 100),
		})
	}
	return t.String()
}
