package bench

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"xmorph/internal/engine"
	"xmorph/internal/gen/xmark"
)

// streamGuards are the -exp stream workload: XMark transformations the
// planner marks streamable, so both executors can run them and the
// comparison isolates the execution strategy. Each runs twice per scale:
// exec "stream" (the one-pass executor: scan cursors straight off the
// kvstore iterator, no join graphs, no result tree) and exec "store" (the
// join-backed path forced via ExecStore: materialized type sequences,
// CSR closest-join caches, output streamed).
var streamGuards = []struct{ name, src string }{
	{"identity", "CAST MUTATE site"},
	{"bidders", "CAST MORPH open_auction [ bidder [ increase ] ]"},
	{"people", "CAST MORPH person [ name emailaddress ] | TRANSLATE person -> individual"},
}

// StreamRow is one (guard, factor, exec) cell of the streaming-executor
// comparison. PeakHeapBytes is the headline: sampled live heap above the
// post-GC baseline while the run was in flight — the one-pass executor's
// must stay scale-independent, the store-backed path's grows with the
// document.
type StreamRow struct {
	Guard           string  `json:"guard"`
	Factor          float64 `json:"factor"`
	Exec            string  `json:"exec"`
	MsPerOp         float64 `json:"ms_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op"`
	PeakHeapBytes   uint64  `json:"peak_heap_bytes"`
	TTFBMicros      float64 `json:"ttfb_us"`
	BytesOut        int64   `json:"bytes_out"`
	Nodes           int     `json:"nodes"`
	SHA256          string  `json:"sha256"`
	Scans           int     `json:"scans,omitempty"`
}

// StreamSummary aggregates the acceptance headlines across all cells.
type StreamSummary struct {
	// AllocReduction is the worst-case (minimum) store/stream allocs-per-op
	// ratio over the guards at the largest measured factor — the
	// scale-representative cell; at tiny factors both paths are
	// setup-dominated and the ratio says nothing about scaling.
	AllocReduction float64 `json:"alloc_reduction"`
	// PeakHeapReduction is the worst-case store/stream peak-heap ratio at
	// the largest factor (cells too small to register peak are skipped).
	PeakHeapReduction float64 `json:"peak_heap_reduction"`
	// StreamPeakHeapGrowth is the one-pass executor's peak heap at the
	// largest factor divided by its peak at the smallest — near 1 means
	// constant memory, scale-independent.
	StreamPeakHeapGrowth float64 `json:"stream_peak_heap_growth"`
}

// StreamReport is the BENCH_stream.json document.
type StreamReport struct {
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	Factors   []float64     `json:"factors"`
	Rows      []StreamRow   `json:"rows"`
	Summary   StreamSummary `json:"summary"`
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *StreamReport) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// streamFactors returns cfg.StreamFactors or the default two scales.
func (c *Config) streamFactors() []float64 {
	if len(c.StreamFactors) > 0 {
		return c.StreamFactors
	}
	return []float64{0.2, 1.0}
}

// ttfbWriter discards output while hashing it, counting bytes, and
// recording the latency of the first byte out of the executor.
type ttfbWriter struct {
	h     hash.Hash
	n     int64
	start time.Time
	ttfb  time.Duration
}

func (t *ttfbWriter) Write(p []byte) (int, error) {
	if t.ttfb == 0 && len(p) > 0 {
		t.ttfb = time.Since(t.start)
	}
	t.n += int64(len(p))
	t.h.Write(p)
	return len(p), nil
}

// heapSampler polls the live heap while a measurement runs, keeping the
// maximum it observed. Sampling at 500µs bounds how much of a short run
// can hide between samples.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var m runtime.MemStats
		tick := time.NewTicker(500 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > s.peak {
					s.peak = m.HeapAlloc
				}
			}
		}
	}()
	return s
}

func (s *heapSampler) Stop() uint64 {
	close(s.stop)
	<-s.done
	return s.peak
}

// RunStream measures the one-pass streaming executor against the
// join-backed store path on the same streamable guards, at each
// cfg.StreamFactors XMark scale. Both modes stream their output (no
// result tree either way), so the deltas isolate what the planner buys:
// no materialized type sequences and no closest-join graphs. Output
// hashes must agree between modes — a mismatch is an error, not a row.
func RunStream(cfg Config) ([]StreamRow, error) {
	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	ctx := context.Background()

	var rows []StreamRow
	for _, factor := range cfg.streamFactors() {
		doc := xmark.Generate(xmark.Config{Factor: factor, Seed: cfg.Seed})
		xml := doc.XML(false)
		path := filepath.Join(dir, fmt.Sprintf("stream-%g.db", factor))
		os.Remove(path)
		// The pool is sized to hold the whole document: both paths run
		// warm, so the measured allocations are the execution layer's own
		// (sequences, join graphs, output), not page decode. The cold-I/O
		// trajectory is the hotpath experiment's story.
		cachePages := 2*len(xml)/4096 + 256
		if cachePages < cfg.CachePages {
			cachePages = cfg.CachePages
		}
		eng, err := engine.Open(path, engine.WithCachePages(cachePages))
		if err != nil {
			return nil, err
		}
		if _, err := eng.Shred(ctx, "d", strings.NewReader(xml), nil); err != nil {
			eng.Close()
			return nil, err
		}
		reps := 3
		if doc.Size() > 200_000 {
			reps = 1
		}
		for _, g := range streamGuards {
			var shas [2]string
			for i, mode := range []engine.ExecMode{engine.ExecStream, engine.ExecStore} {
				row, err := measureStream(ctx, eng, g.name, g.src, factor, mode, reps)
				if err != nil {
					eng.Close()
					return nil, fmt.Errorf("%s at sf %g: %w", g.name, factor, err)
				}
				shas[i] = row.SHA256
				rows = append(rows, *row)
			}
			if shas[0] != shas[1] {
				eng.Close()
				return nil, fmt.Errorf("%s at sf %g: stream output %s != store output %s",
					g.name, factor, shas[0], shas[1])
			}
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
		os.Remove(path)
		os.Remove(path + ".wal")
	}
	return rows, nil
}

// measureStream runs one (guard, exec) cell: a warmup rep (compile cache,
// buffer pool), then reps measured runs with the heap sampler active.
func measureStream(ctx context.Context, eng *engine.Engine, name, src string, factor float64, mode engine.ExecMode, reps int) (*StreamRow, error) {
	run := func() (*ttfbWriter, *engine.RunResult, error) {
		tw := &ttfbWriter{h: sha256.New(), start: time.Now()}
		res, err := eng.Run(ctx, "d", src, engine.RunOpts{StreamTo: tw, Exec: mode})
		return tw, res, err
	}
	if _, _, err := run(); err != nil {
		return nil, err
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	sampler := startHeapSampler()
	start := time.Now()
	var (
		tw  *ttfbWriter
		res *engine.RunResult
		err error
	)
	var ttfb time.Duration
	for i := 0; i < reps; i++ {
		if tw, res, err = run(); err != nil {
			sampler.Stop()
			return nil, err
		}
		ttfb += tw.ttfb
	}
	elapsed := time.Since(start)
	peak := sampler.Stop()
	runtime.ReadMemStats(&m1)

	execName := "store"
	if res.StreamExec {
		execName = "stream"
	}
	if mode == engine.ExecStream && !res.StreamExec {
		return nil, fmt.Errorf("guard %q did not take the one-pass path (plan: %s)", name, res.Plan)
	}
	over := uint64(0)
	if peak > m0.HeapAlloc {
		over = peak - m0.HeapAlloc
	}
	return &StreamRow{
		Guard:           name,
		Factor:          factor,
		Exec:            execName,
		MsPerOp:         ms(elapsed) / float64(reps),
		AllocsPerOp:     float64(m1.Mallocs-m0.Mallocs) / float64(reps),
		AllocBytesPerOp: float64(m1.TotalAlloc-m0.TotalAlloc) / float64(reps),
		PeakHeapBytes:   over,
		TTFBMicros:      float64(ttfb.Microseconds()) / float64(reps),
		BytesOut:        tw.n,
		Nodes:           res.Streamed,
		SHA256:          hex.EncodeToString(tw.h.Sum(nil)),
		Scans:           res.Plan.Scans,
	}, nil
}

// StreamSummaryFor computes the acceptance ratios from the measured rows.
func StreamSummaryFor(rows []StreamRow) StreamSummary {
	type cell struct{ stream, store *StreamRow }
	cells := map[string]*cell{}
	var minF, maxF float64
	var streamMinPeak, streamMaxPeak uint64
	for i := range rows {
		r := &rows[i]
		key := fmt.Sprintf("%s@%g", r.Guard, r.Factor)
		c := cells[key]
		if c == nil {
			c = &cell{}
			cells[key] = c
		}
		if r.Exec == "stream" {
			c.stream = r
			if minF == 0 || r.Factor < minF {
				minF = r.Factor
			}
			if r.Factor > maxF {
				maxF = r.Factor
			}
		} else {
			c.store = r
		}
	}
	s := StreamSummary{}
	for _, r := range rows {
		if r.Exec != "stream" {
			continue
		}
		if r.Factor == minF && r.PeakHeapBytes > streamMinPeak {
			streamMinPeak = r.PeakHeapBytes
		}
		if r.Factor == maxF && r.PeakHeapBytes > streamMaxPeak {
			streamMaxPeak = r.PeakHeapBytes
		}
	}
	for _, c := range cells {
		if c.stream == nil || c.store == nil || c.stream.Factor != maxF || c.stream.AllocsPerOp == 0 {
			continue
		}
		ar := c.store.AllocsPerOp / c.stream.AllocsPerOp
		if s.AllocReduction == 0 || ar < s.AllocReduction {
			s.AllocReduction = ar
		}
		if c.stream.PeakHeapBytes == 0 {
			continue
		}
		hr := float64(c.store.PeakHeapBytes) / float64(c.stream.PeakHeapBytes)
		if s.PeakHeapReduction == 0 || hr < s.PeakHeapReduction {
			s.PeakHeapReduction = hr
		}
	}
	if streamMinPeak > 0 && minF != maxF {
		s.StreamPeakHeapGrowth = float64(streamMaxPeak) / float64(streamMinPeak)
	}
	return s
}

// StreamReportFor wraps rows into the JSON report document.
func StreamReportFor(cfg Config, rows []StreamRow) *StreamReport {
	return &StreamReport{
		Generated: "xmorphbench -exp stream -json",
		GoVersion: runtime.Version(),
		Factors:   cfg.streamFactors(),
		Rows:      rows,
		Summary:   StreamSummaryFor(rows),
	}
}

// StreamTable renders the rows for stdout.
func StreamTable(rows []StreamRow) string {
	t := &Table{
		Title:   "Streaming executor vs store-backed path (streamable guards)",
		Columns: []string{"guard", "factor", "exec", "ms/op", "allocs/op", "alloc-mb/op", "peak-heap-mb", "ttfb-us", "bytes-out", "nodes"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Guard, fmt.Sprintf("%g", r.Factor), r.Exec,
			f2(r.MsPerOp), fmt.Sprintf("%.0f", r.AllocsPerOp),
			f2(r.AllocBytesPerOp / (1 << 20)), f2(float64(r.PeakHeapBytes) / (1 << 20)),
			fmt.Sprintf("%.0f", r.TTFBMicros), fmt.Sprintf("%d", r.BytesOut), fmt.Sprintf("%d", r.Nodes),
		})
	}
	s := t.String()
	sum := StreamSummaryFor(rows)
	return s + fmt.Sprintf("\nalloc reduction (worst cell): %.1fx   peak-heap reduction (worst cell): %.1fx   stream peak-heap growth across scales: %.2fx\n",
		sum.AllocReduction, sum.PeakHeapReduction, sum.StreamPeakHeapGrowth)
}
