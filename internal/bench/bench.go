// Package bench regenerates the paper's evaluation (Section IX): one
// function per table/figure, each returning printable rows with the same
// series the paper plots. cmd/xmorphbench and the repository's testing.B
// benchmarks both drive these functions.
//
// Sizes are scaled down from the paper's testbed (hundreds of MB on 2007
// hardware) so a full sweep finishes in minutes; every Config field can be
// raised to the paper's original scale. What is expected to reproduce is
// the *shape* of each result — linear render cost, negligible compile
// cost, steady I/O, flat per-operation cost — not absolute milliseconds.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"xmorph/internal/core"
	"xmorph/internal/store"
	"xmorph/internal/xmltree"
)

// Config scales the whole suite.
type Config struct {
	// WorkDir holds the store files; empty means a temp dir.
	WorkDir string
	// XMarkFactors are the Figure 10 benchmark factors. The paper uses
	// 0.1-0.5; the default is one tenth of that.
	XMarkFactors []float64
	// HotpathFactors are the RunHotpath scales; empty means {0.2, 1.0}
	// (the committed BENCH_hotpath.json numbers — CI smoke overrides with
	// smaller factors).
	HotpathFactors []float64
	// DBLPSizes are Figure 14 publication counts per slice.
	DBLPSizes []int
	// ConcFactors are the RunConcurrency scales; empty means {0.2, 1.0}
	// (the committed BENCH_concurrency.json numbers).
	ConcFactors []float64
	// StreamFactors are the RunStream scales; empty means {0.2, 1.0}
	// (the committed BENCH_stream.json numbers — CI smoke overrides with
	// smaller factors).
	StreamFactors []float64
	// UpdateFactors are the RunUpdate scales; empty means {0.2, 1.0}
	// (the committed BENCH_update.json numbers — CI smoke overrides with
	// smaller factors).
	UpdateFactors []float64
	// ConcClients are the RunConcurrency client counts; empty means
	// {1, 2, 4, 8}.
	ConcClients []int
	// ConcWindow is the fixed wall-clock measurement window per
	// concurrency cell; zero means 3s.
	ConcWindow time.Duration
	// ConcCachePages sizes the shared buffer pool for RunConcurrency;
	// zero means 512 (2 MiB) — sized so the default small factor runs
	// fully cached (pure lock scaling) while the large factor keeps the
	// pool under pressure (read-ahead and eviction active).
	ConcCachePages int
	// ServeClients are the RunServe client counts; empty means
	// {1, 2, 4, 8}.
	ServeClients []int
	// ServeWindow is the fixed wall-clock window per RunServe cell; zero
	// means 3s.
	ServeWindow time.Duration
	// ServeFactor is the XMark scale of RunServe's shared document; zero
	// means 0.2.
	ServeFactor float64
	// ServeMaxInflight caps the daemon's admitted concurrent requests in
	// RunServe; zero means GOMAXPROCS. Client counts above the cap
	// exercise the 429 path.
	ServeMaxInflight int
	// ServeSample is the trace-sampling rate of RunServe's
	// observability-on daemon: trace 1 in N requests. Zero means 1
	// (every request, the xmorphd default); negative disables tracing,
	// collapsing the on/off comparison.
	ServeSample int
	// ServeSlowMS is the observability-on daemon's slow-query retention
	// threshold in milliseconds; zero means 250 (the xmorphd default),
	// negative disables slow retention.
	ServeSlowMS int
	// ServeWriters adds N dedicated shred-writer goroutines to every
	// RunServe cell, continuously shredding and dropping documents while
	// the clients run a pure query mix. Query latencies sampled while at
	// least one shred is in flight are reported separately
	// (query_p99_during_shred_ms) — the MVCC claim under test is that
	// they stay close to the no-writer baseline. Zero keeps the classic
	// mixed workload (1 shred op in 10, no separate column).
	ServeWriters int
	// ClusterShards are the RunCluster shard counts; empty means
	// {1, 2, 4} (the committed BENCH_cluster.json series).
	ClusterShards []int
	// ClusterReplicas is the read-replica count per shard for
	// RunCluster's replica-read variant; zero means 1.
	ClusterReplicas int
	// ClusterDocs is the RunCluster document count; zero means 16 —
	// sized with ClusterFactor and ClusterCachePages so the set thrashes
	// one shard's pool but fits the 4-shard aggregate.
	ClusterDocs int
	// ClusterFactor is the XMark scale of each RunCluster document; zero
	// means 0.01 (~213 store pages per document).
	ClusterFactor float64
	// ClusterClients is the concurrent reader count per RunCluster cell;
	// zero means 4.
	ClusterClients int
	// ClusterWindow is the measured wall-clock window per RunCluster
	// cell; zero means 2s.
	ClusterWindow time.Duration
	// ClusterCachePages is each shard leader's buffer pool budget; zero
	// means 1024 (4 MiB per shard).
	ClusterCachePages int
	// ClusterReadLatency is the modeled device cost of one page read off
	// a shard leader's store during the measured window; zero means
	// 100µs. Negative disables the model (tmpfs-speed reads, which
	// collapse the hit/miss distinction the benchmark is about).
	ClusterReadLatency time.Duration
	// Seed feeds the generators.
	Seed int64
	// Durability opens every store file with the write-ahead log enabled,
	// measuring the crash-safe configuration instead of the default.
	// RunHotpath additionally runs its own WAL ablation regardless of
	// this setting.
	Durability bool
	// CachePages bounds the store's buffer pool, keeping runs I/O-bound
	// like the paper's cold-cache setup.
	CachePages int
	// MonitorInterval is the sysmon sampling period for Figs. 11-13.
	MonitorInterval time.Duration
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		XMarkFactors:    []float64{0.01, 0.02, 0.03, 0.04, 0.05},
		DBLPSizes:       []int{2000, 4000, 6000, 8000},
		Seed:            42,
		CachePages:      128,
		MonitorInterval: 20 * time.Millisecond,
	}
}

func (c *Config) workdir() (string, func(), error) {
	if c.WorkDir != "" {
		return c.WorkDir, func() {}, os.MkdirAll(c.WorkDir, 0o755)
	}
	dir, err := os.MkdirTemp("", "xmorphbench")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// prepareStore generates a document, shreds it into a fresh store file,
// and returns the store path plus shred time and raw XML size.
func prepareStore(dir, name string, doc *xmltree.Document, cachePages int, durable bool) (path string, shred time.Duration, bytes int, err error) {
	xml := doc.XML(false)
	path = filepath.Join(dir, name+".db")
	os.Remove(path)
	os.Remove(path + ".wal")
	st, err := store.Open(path, store.WithCachePages(cachePages), store.WithDurability(durable))
	if err != nil {
		return "", 0, 0, err
	}
	start := time.Now()
	if _, err := st.Shred(name, strings.NewReader(xml), nil); err != nil {
		st.Close()
		return "", 0, 0, err
	}
	shred = time.Since(start)
	if err := st.Close(); err != nil {
		return "", 0, 0, err
	}
	return path, shred, len(xml), nil
}

// coldOpen reopens a store with an empty buffer pool — the paper clears
// the cache before every run.
func coldOpen(path string, cachePages int, durable bool) (*store.Store, error) {
	return store.Open(path, store.WithCachePages(cachePages), store.WithDurability(durable))
}

// storedRun is one measured transformation.
type storedRun struct {
	compile time.Duration
	render  time.Duration
	nodes   int
}

// transformStoredDiscard compiles and renders a guard against an open
// store, serializing the output to io.Discard (producing output XML is
// part of the measured render cost, as in the paper).
func transformStoredDiscard(st *store.Store, name, guard string) (*storedRun, error) {
	res, err := core.TransformStored(guard, st, name, nil)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := res.Output.WriteXML(io.Discard, false); err != nil {
		return nil, err
	}
	serialize := time.Since(start)
	return &storedRun{
		compile: res.CompileTime,
		render:  res.RenderTime + serialize,
		nodes:   res.Output.Size(),
	}, nil
}

// runStored is transformStoredDiscard against a cold-opened store.
func runStored(path, name, guard string, cachePages int, durable bool) (compile, renderT time.Duration, outNodes int, err error) {
	st, err := coldOpen(path, cachePages, durable)
	if err != nil {
		return 0, 0, 0, err
	}
	defer st.Close()
	r, err := transformStoredDiscard(st, name, guard)
	if err != nil {
		return 0, 0, 0, err
	}
	return r.compile, r.render, r.nodes, nil
}

// runBaseline measures the eXist-equivalent operation: read the stored
// document in document order and serialize it (the paper notes eXist's
// timing "is essentially that of reading the document from disk to a
// String object").
func runBaseline(path, name string, cachePages int, durable bool) (time.Duration, error) {
	st, err := coldOpen(path, cachePages, durable)
	if err != nil {
		return 0, err
	}
	defer st.Close()
	start := time.Now()
	doc, err := st.Doc(name)
	if err != nil {
		return 0, err
	}
	re, err := doc.Reconstruct()
	if err != nil {
		return 0, err
	}
	if err := re.WriteXML(io.Discard, false); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString("## ")
	b.WriteString(t.Title)
	b.WriteString("\n")
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
