package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"xmorph/internal/gen/xmark"
	"xmorph/internal/store"
	"xmorph/internal/update"
)

// updateScript is RunUpdate's small edit: two subtree inserts plus one
// subtree replace, each touching an O(1) region of the document. The
// alternative a system without dirty-subtree shredding has is a full
// drop + re-shred, whose write volume scales with the document.
const updateScript = `insert <category id="benchcat"><name>patched</name></category> into site.categories ;
insert <person id="benchperson"><name>Bench Person</name><emailaddress>bench@example.com</emailaddress></person> into site.people ;
replace site.catgraph with <catgraph><edge from="category0" to="category0"/></catgraph>`

// UpdateRow is one measurement of applying updateScript to a shredded
// XMark document, either by subtree patching (store.Update) or by the
// drop + full re-shred baseline.
type UpdateRow struct {
	Factor        float64 `json:"factor"`
	Variant       string  `json:"variant"`
	NsPerOp       float64 `json:"ns_per_op"`
	PagesWritten  int64   `json:"pages_written"`
	NodesInserted int     `json:"nodes_inserted,omitempty"`
	NodesDeleted  int     `json:"nodes_deleted,omitempty"`
	ShapeDelta    string  `json:"shape_delta,omitempty"`
	// PagesRatio on a "patch" row is reshred pages / patch pages — the
	// headline write saving of dirty-subtree shredding.
	PagesRatio float64 `json:"pages_ratio,omitempty"`
	Note       string  `json:"note,omitempty"`
}

// UpdateReport is the BENCH_update.json document.
type UpdateReport struct {
	Generated string      `json:"generated"`
	GoVersion string      `json:"go_version"`
	Factors   []float64   `json:"factors"`
	Script    string      `json:"script"`
	Rows      []UpdateRow `json:"rows"`
}

// WriteJSON writes the report to path (pretty-printed, trailing newline).
func (r *UpdateReport) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// RunUpdate measures the same small update script both ways at each
// cfg.UpdateFactors scale:
//
//   - patch: store.Update applies the script by re-shredding only the
//     dirty subtrees — pages written is the headline.
//   - drop+reshred: the baseline without an update path — drop the
//     document and shred the edited XML from scratch.
//
// Both stores start from an identical shred of the same document, and
// the baseline shreds exactly the document the patch produced (the two
// end states are byte-identical; the differential tests prove that, this
// experiment prices it).
func RunUpdate(cfg Config) ([]UpdateRow, error) {
	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	ops, err := update.Parse(updateScript)
	if err != nil {
		return nil, err
	}

	var rows []UpdateRow
	for _, factor := range cfg.updateFactors() {
		doc := xmark.Generate(xmark.Config{Factor: factor, Seed: cfg.Seed})
		xml := doc.XML(false)

		// --- patch: dirty-subtree shredding --------------------------------
		pathA := filepath.Join(dir, fmt.Sprintf("upd-%g-patch.db", factor))
		os.Remove(pathA)
		os.Remove(pathA + ".wal")
		stA, err := store.Open(pathA, store.WithCachePages(cfg.CachePages), store.WithDurability(cfg.Durability))
		if err != nil {
			return nil, err
		}
		if _, err := stA.Shred("d", strings.NewReader(xml), nil); err != nil {
			stA.Close()
			return nil, err
		}
		before := stA.Stats()
		var info *store.UpdateInfo
		ns, _, err := measure(1, func() error {
			info, err = stA.Update("d", ops, nil)
			return err
		})
		if err != nil {
			stA.Close()
			return nil, err
		}
		patchPages := stA.Stats().BlocksWritten - before.BlocksWritten
		// The baseline must shred exactly the patched end state.
		sdoc, err := stA.Doc("d")
		if err != nil {
			stA.Close()
			return nil, err
		}
		edited, err := sdoc.Reconstruct()
		if err != nil {
			stA.Close()
			return nil, err
		}
		editedXML := edited.XML(false)
		if err := stA.Close(); err != nil {
			return nil, err
		}
		os.Remove(pathA)
		os.Remove(pathA + ".wal")
		patchRow := UpdateRow{
			Factor: factor, Variant: "patch",
			NsPerOp: ns, PagesWritten: patchPages,
			NodesInserted: info.NodesInserted, NodesDeleted: info.NodesDeleted,
			ShapeDelta: info.Delta.Kind.String(),
			Note:       fmt.Sprintf("%d statements, %d-node document", len(ops), doc.Size()),
		}

		// --- drop + full re-shred baseline ---------------------------------
		pathB := filepath.Join(dir, fmt.Sprintf("upd-%g-reshred.db", factor))
		os.Remove(pathB)
		os.Remove(pathB + ".wal")
		stB, err := store.Open(pathB, store.WithCachePages(cfg.CachePages), store.WithDurability(cfg.Durability))
		if err != nil {
			return nil, err
		}
		if _, err := stB.Shred("d", strings.NewReader(xml), nil); err != nil {
			stB.Close()
			return nil, err
		}
		before = stB.Stats()
		ns, _, err = measure(1, func() error {
			if err := stB.Drop("d"); err != nil {
				return err
			}
			_, err := stB.Shred("d", strings.NewReader(editedXML), nil)
			return err
		})
		if err != nil {
			stB.Close()
			return nil, err
		}
		reshredPages := stB.Stats().BlocksWritten - before.BlocksWritten
		if err := stB.Close(); err != nil {
			return nil, err
		}
		os.Remove(pathB)
		os.Remove(pathB + ".wal")

		if patchPages > 0 {
			patchRow.PagesRatio = float64(reshredPages) / float64(patchPages)
		}
		rows = append(rows, patchRow, UpdateRow{
			Factor: factor, Variant: "drop+reshred",
			NsPerOp: ns, PagesWritten: reshredPages,
			Note: fmt.Sprintf("%d bytes edited xml", len(editedXML)),
		})
	}
	return rows, nil
}

// updateFactors returns cfg.UpdateFactors or the default two scales.
func (c *Config) updateFactors() []float64 {
	if len(c.UpdateFactors) > 0 {
		return c.UpdateFactors
	}
	return []float64{0.2, 1.0}
}

// UpdateReportFor wraps rows into the JSON report document.
func UpdateReportFor(cfg Config, rows []UpdateRow) *UpdateReport {
	return &UpdateReport{
		Generated: "xmorphbench -exp update -json",
		GoVersion: runtime.Version(),
		Factors:   cfg.updateFactors(),
		Script:    updateScript,
		Rows:      rows,
	}
}

// UpdateTable renders the rows for stdout.
func UpdateTable(rows []UpdateRow) string {
	t := &Table{
		Title:   "Incremental update (dirty-subtree patch vs drop + re-shred)",
		Columns: []string{"factor", "variant", "ms/op", "pg-write", "ins", "del", "delta", "pg-ratio", "note"},
	}
	for _, r := range rows {
		ratio := ""
		if r.PagesRatio > 0 {
			ratio = f1(r.PagesRatio) + "x"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", r.Factor), r.Variant, f2(r.NsPerOp / 1e6),
			fmt.Sprintf("%d", r.PagesWritten),
			fmt.Sprintf("%d", r.NodesInserted), fmt.Sprintf("%d", r.NodesDeleted),
			r.ShapeDelta, ratio, r.Note,
		})
	}
	return t.String()
}
