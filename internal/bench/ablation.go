package bench

import (
	"fmt"
	"io"
	"time"

	"xmorph/internal/closest"
	"xmorph/internal/core"
	"xmorph/internal/gen/xmark"
	"xmorph/internal/guard"
	"xmorph/internal/render"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/store"
	"xmorph/internal/xmltree"
)

// AblationRow is one design-choice measurement.
type AblationRow struct {
	Experiment string
	Variant    string
	Millis     float64
	Note       string
}

// RunAblations measures the design choices DESIGN.md calls out:
//
//  1. the Dewey sort-merge closest join vs the naive O(n^2) definition;
//  2. single-pass composed rendering vs physically rendering each
//     composition stage (the architecture the paper rejects);
//  3. streaming output vs materializing the result tree;
//  4. buffer-pool size vs transformation time (cold cache).
func RunAblations(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow

	doc := xmark.Generate(xmark.Config{Factor: 0.02, Seed: cfg.Seed})
	sh := shape.FromDocument(doc)

	// 1. Closest join strategy.
	auctions := doc.NodesOfType("site.open_auctions.open_auction")
	bidders := doc.NodesOfType("site.open_auctions.open_auction.bidder")
	start := time.Now()
	merge := closest.Join(auctions, bidders)
	rows = append(rows, AblationRow{
		Experiment: "closest-join", Variant: "sort-merge",
		Millis: ms(time.Since(start)),
		Note:   fmt.Sprintf("%d pairs from %dx%d", len(merge), len(auctions), len(bidders)),
	})
	start = time.Now()
	naive := 0
	for _, a := range auctions {
		for _, b := range bidders {
			if closest.IsClosest(a, b) {
				naive++
			}
		}
	}
	rows = append(rows, AblationRow{
		Experiment: "closest-join", Variant: "naive-quadratic",
		Millis: ms(time.Since(start)),
		Note:   fmt.Sprintf("%d pairs (must equal sort-merge)", naive),
	})
	if naive != len(merge) {
		return nil, fmt.Errorf("ablation: join strategies disagree: %d vs %d", naive, len(merge))
	}

	// 2. Composition strategy on a three-stage pipeline.
	const pipeline = "CAST MORPH person [ name emailaddress phone ] | MUTATE (DROP phone) | TRANSLATE person -> individual"
	prog := guard.MustParse(pipeline)
	plan, err := semantics.Compile(prog, sh)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	onePass, err := render.Render(doc, plan.ComposedTarget(), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Experiment: "composition", Variant: "single-pass (shape-composed)",
		Millis: ms(time.Since(start)),
		Note:   fmt.Sprintf("%d output nodes", onePass.Size()),
	})
	start = time.Now()
	perStage, err := renderPerStage(doc, plan)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Experiment: "composition", Variant: "per-stage (physical pipeline)",
		Millis: ms(time.Since(start)),
		Note:   fmt.Sprintf("%d output nodes", perStage.Size()),
	})

	// 3. Output strategy.
	mutTgt, err := semantics.Compile(guard.MustParse("CAST MUTATE site"), sh)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	tree, err := render.Render(doc, mutTgt.ComposedTarget(), nil)
	if err != nil {
		return nil, err
	}
	if err := tree.WriteXML(io.Discard, false); err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Experiment: "output", Variant: "materialize-then-serialize",
		Millis: ms(time.Since(start)),
		Note:   fmt.Sprintf("%d nodes", tree.Size()),
	})
	start = time.Now()
	n, err := render.Stream(doc, mutTgt.ComposedTarget(), io.Discard, nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Experiment: "output", Variant: "stream",
		Millis: ms(time.Since(start)),
		Note:   fmt.Sprintf("%d nodes", n),
	})

	// Join scheduling: lazy (on first use) vs concurrent prefetch.
	start = time.Now()
	lazyOut, err := render.Render(doc, mutTgt.ComposedTarget(), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Experiment: "join-schedule", Variant: "lazy",
		Millis: ms(time.Since(start)),
		Note:   fmt.Sprintf("%d nodes", lazyOut.Size()),
	})
	start = time.Now()
	parOut, err := render.RenderParallel(doc, mutTgt.ComposedTarget(), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Experiment: "join-schedule", Variant: "parallel-prefetch",
		Millis: ms(time.Since(start)),
		Note:   fmt.Sprintf("%d nodes", parOut.Size()),
	})

	// 4. Buffer-pool size (cold-cache stored transformation).
	dir, cleanup, err := cfg.workdir()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	path, _, _, err := prepareStore(dir, "abl-xmark", doc, 256, cfg.Durability)
	if err != nil {
		return nil, err
	}
	for _, pages := range []int{16, 64, 256, 1024} {
		st, err := store.Open(path, store.WithCachePages(pages))
		if err != nil {
			return nil, err
		}
		start = time.Now()
		res, err := core.TransformStored("CAST MUTATE site", st, "abl-xmark", nil)
		if err != nil {
			st.Close()
			return nil, err
		}
		if err := res.Output.WriteXML(io.Discard, false); err != nil {
			st.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		stats := st.Stats()
		st.Close()
		rows = append(rows, AblationRow{
			Experiment: "buffer-pool", Variant: fmt.Sprintf("%d pages", pages),
			Millis: ms(elapsed),
			Note:   fmt.Sprintf("%d blocks read", stats.BlocksRead),
		})
	}
	return rows, nil
}

// renderPerStage physically renders each composition stage, re-deriving
// the intermediate document — the strategy the paper's semantics avoids
// (Ψ renders once); kept here as the ablation baseline.
func renderPerStage(doc *xmltree.Document, plan *semantics.Plan) (*xmltree.Document, error) {
	var cur render.Source = doc
	var out *xmltree.Document
	for _, sp := range plan.Stages {
		o, err := render.Render(cur, sp.Target, nil)
		if err != nil {
			return nil, err
		}
		out = o
		cur = o
	}
	return out, nil
}

// AblationTable renders the ablation results.
func AblationTable(rows []AblationRow) *Table {
	t := &Table{
		Title:   "Ablations: design choices (DESIGN.md)",
		Columns: []string{"experiment", "variant", "ms", "note"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Experiment, r.Variant, f2(r.Millis), r.Note})
	}
	return t
}
