package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestDurableCommitProtocol checks the happy path: a durable Sync leaves
// an empty log behind, counts a commit, and the data survives reopen.
func TestDurableCommitProtocol(t *testing.T) {
	fs := NewFaultFS()
	opts := &Options{FS: fs, Durability: true}
	db, err := Open("t.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.WALCommits != 1 {
		t.Errorf("WALCommits = %d, want 1", st.WALCommits)
	}
	if st.WALBytes == 0 {
		t.Error("WALBytes = 0, want > 0")
	}
	if wal := fs.FileBytes("t.db.wal"); len(wal) != 0 {
		t.Errorf("wal not truncated after commit: %d bytes", len(wal))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open("t.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, ok, err := db2.Get([]byte("alpha"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("reopen Get = %q %v %v", v, ok, err)
	}
	if r := db2.Stats().Recoveries; r != 0 {
		t.Errorf("clean reopen counted %d recoveries", r)
	}
}

// TestDurableNoInPlaceWritesBetweenSyncs checks the pinning invariant the
// commit protocol relies on: with durability on, nothing touches the
// files between Syncs, even when mutations overflow the buffer pool.
func TestDurableNoInPlaceWritesBetweenSyncs(t *testing.T) {
	fs := NewFaultFS()
	db, err := Open("t.db", &Options{FS: fs, Durability: true, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("v"), 1000)
	for i := 0; i < 400; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if n := fs.Writes(); n != 0 {
		t.Fatalf("%d file mutations before first Sync, want 0 (dirty pages must stay pinned)", n)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if n := fs.Writes(); n == 0 {
		t.Fatal("Sync performed no file mutations")
	}
	// Everything clean now: another Sync with no mutations must not
	// commit again.
	before := db.Stats().WALCommits
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if after := db.Stats().WALCommits; after != before {
		t.Errorf("empty Sync committed: %d -> %d", before, after)
	}
}

// durableCommitScenario drives a two-commit workload and crashes at the
// first in-place store write of the second commit — the moment the log
// is complete but the store file untouched. It returns the store image
// at the first commit and the complete log bytes.
func durableCommitScenario(t testing.TB) (base, wal []byte) {
	t.Helper()
	run := func(crashAt int64) (*FaultFS, []byte) {
		fs := NewFaultFS()
		if crashAt >= 0 {
			fs.CrashAfter(crashAt, 0, false)
		}
		db, err := Open("t.db", &Options{FS: fs, Durability: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Put([]byte("alpha"), []byte("1")); err != nil {
			t.Fatal(err)
		}
		if err := db.Sync(); err != nil {
			t.Fatal(err)
		}
		img := fs.FileBytes("t.db")
		if err := db.Put([]byte("beta"), []byte("2")); err != nil {
			t.Fatal(err)
		}
		err = db.Sync() // crashes here in the fault run
		if crashAt >= 0 && !errors.Is(err, ErrCrashed) {
			t.Fatalf("Sync under crash = %v, want ErrCrashed", err)
		}
		if crashAt < 0 {
			if err != nil {
				t.Fatal(err)
			}
			db.Close()
		}
		return fs, img
	}

	// Rehearsal: count the mutations before the second Sync and the
	// pages it writes; the log phase of that Sync is pages+2 records
	// (header + one per page + commit), so the first in-place write is
	// mutation w0+pages+2. The workload is deterministic, so the fault
	// run hits the same indices.
	fs, img := run(-1)
	_ = fs
	rehearsal := NewFaultFS()
	db, err := Open("t.db", &Options{FS: rehearsal, Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	w0 := rehearsal.Writes()
	before := db.Stats().BlocksWritten
	if err := db.Put([]byte("beta"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	pages := db.Stats().BlocksWritten - before
	db.Close()

	crashed, img2 := run(w0 + pages + 2)
	if !bytes.Equal(img, img2) {
		t.Fatal("rehearsal and fault run diverged before the crash point")
	}
	wal = crashed.FileBytes("t.db.wal")
	if got := crashed.FileBytes("t.db"); !bytes.Equal(got, img) {
		t.Fatal("store file modified before the commit record was durable")
	}
	if batches := parseWAL(wal, int64(len(img))/PageSize); len(batches) != 1 {
		t.Fatalf("captured log parses to %d batches, want 1", len(batches))
	}
	return img, wal
}

// TestWALTruncationSweep replays every prefix of a complete log: only
// the full log may recover (report a commit); every shorter prefix must
// be discarded, leaving the pre-commit state — a commit that wasn't
// fully written is never reported.
func TestWALTruncationSweep(t *testing.T) {
	base, wal := durableCommitScenario(t)
	for l := 0; l <= len(wal); l++ {
		fs := NewFaultFS()
		fs.WriteFile("t.db", base)
		fs.WriteFile("t.db.wal", wal[:l])
		db, err := Open("t.db", &Options{FS: fs})
		if err != nil {
			t.Fatalf("prefix %d/%d: Open: %v", l, len(wal), err)
		}
		wantRecovered := l == len(wal)
		if got := db.Stats().Recoveries == 1; got != wantRecovered {
			t.Fatalf("prefix %d/%d: recovered=%v, want %v", l, len(wal), got, wantRecovered)
		}
		_, okBeta, err := db.Get([]byte("beta"))
		if err != nil {
			t.Fatalf("prefix %d: Get beta: %v", l, err)
		}
		if okBeta != wantRecovered {
			t.Fatalf("prefix %d: beta present=%v, want %v", l, okBeta, wantRecovered)
		}
		v, ok, err := db.Get([]byte("alpha"))
		if err != nil || !ok || string(v) != "1" {
			t.Fatalf("prefix %d: committed key lost: %q %v %v", l, v, ok, err)
		}
		if leftover := fs.FileBytes("t.db.wal"); len(leftover) != 0 {
			t.Fatalf("prefix %d: wal not emptied after open (%d bytes)", l, len(leftover))
		}
		db.Close()
	}
}

// TestWALCorruptionDiscarded flips one byte at a time through the log
// body: a checksum failure anywhere must prevent the (now untrustworthy)
// commit from replaying, and Open must still succeed on the pre-commit
// state. Flips confined to the already-applied commit's page data are
// caught by the page CRC; flips in the commit record by its own CRC.
func TestWALCorruptionDiscarded(t *testing.T) {
	base, wal := durableCommitScenario(t)
	// Sample positions across the log (every 97th byte keeps the sweep
	// fast while hitting header, page records, and the commit record).
	for pos := 0; pos < len(wal); pos += 97 {
		mut := append([]byte(nil), wal...)
		mut[pos] ^= 0xff
		fs := NewFaultFS()
		fs.WriteFile("t.db", base)
		fs.WriteFile("t.db.wal", mut)
		db, err := Open("t.db", &Options{FS: fs})
		if err != nil {
			t.Fatalf("flip @%d: Open: %v", pos, err)
		}
		if db.Stats().Recoveries != 0 {
			t.Fatalf("flip @%d: corrupt log replayed", pos)
		}
		v, ok, err := db.Get([]byte("alpha"))
		if err != nil || !ok || string(v) != "1" {
			t.Fatalf("flip @%d: committed key lost: %q %v %v", pos, v, ok, err)
		}
		db.Close()
	}
}

// TestStaleWALRecoveredOnNonDurableOpen: recovery is unconditional — a
// store crashed under -durability reopens consistent even when the next
// open does not pass the flag.
func TestStaleWALRecoveredOnNonDurableOpen(t *testing.T) {
	base, wal := durableCommitScenario(t)
	fs := NewFaultFS()
	fs.WriteFile("t.db", base)
	fs.WriteFile("t.db.wal", wal)
	db, err := Open("t.db", &Options{FS: fs, Durability: false})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Stats().Recoveries != 1 {
		t.Fatal("non-durable open did not replay the complete log")
	}
	v, ok, err := db.Get([]byte("beta"))
	if err != nil || !ok || string(v) != "2" {
		t.Fatalf("recovered key: %q %v %v", v, ok, err)
	}
}

// TestEvictionWriteErrorSurfacesOnSync is the regression test for the
// deferred-eviction-error path: a transient write failure while evicting
// a dirty page must not be absorbed — the next Sync re-flushes the page
// and still reports the failure; the Sync after that is clean, and no
// data is lost.
func TestEvictionWriteErrorSurfacesOnSync(t *testing.T) {
	workload := func(fs *FaultFS) (*DB, error) {
		db, err := Open("t.db", &Options{FS: fs, CachePages: 16})
		if err != nil {
			t.Fatal(err)
		}
		val := bytes.Repeat([]byte("v"), 1000)
		for i := 0; i < 400; i++ {
			if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), val); err != nil {
				return db, err
			}
		}
		return db, nil
	}

	// Rehearsal: without durability every pre-Sync mutation is an
	// eviction flush; there must be some, or the scenario is vacuous.
	fs := NewFaultFS()
	db, err := workload(fs)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Writes() == 0 {
		t.Fatal("workload evicted nothing; grow it")
	}
	db.Close()

	fs = NewFaultFS()
	fs.FailWrite(0, nil) // first eviction flush fails, transiently
	db, err = workload(fs)
	if err != nil {
		t.Fatalf("Put surfaced the eviction error eagerly: %v", err)
	}
	err = db.Sync()
	if err == nil {
		t.Fatal("Sync swallowed the eviction write error")
	}
	if !errors.Is(err, ErrInjected) || !strings.Contains(err.Error(), "eviction") {
		t.Fatalf("Sync error = %v, want wrapped deferred eviction error", err)
	}
	if err := db.Sync(); err != nil {
		t.Fatalf("second Sync after transient failure: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open("t.db", &Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 400; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if _, ok, err := db2.Get(k); err != nil || !ok {
			t.Fatalf("key %s lost after deferred eviction error: ok=%v err=%v", k, ok, err)
		}
	}
}
