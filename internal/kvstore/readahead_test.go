package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// leftmostLeaf descends the first-child spine to the first leaf.
func leftmostLeaf(t *testing.T, db *DB) *node {
	t.Helper()
	id := db.root
	for {
		n, err := db.readNode(id)
		if err != nil {
			t.Fatalf("read node %d: %v", id, err)
		}
		if n.typ == pageLeaf {
			return n
		}
		id = n.children[0]
	}
}

// chainKeys walks the leaf sibling chain from the leftmost leaf and
// returns every key in chain order.
func chainKeys(t *testing.T, db *DB) [][]byte {
	t.Helper()
	var keys [][]byte
	n := leftmostLeaf(t, db)
	for {
		keys = append(keys, n.keys...)
		if n.next == 0 {
			return keys
		}
		next, err := db.readNode(n.next)
		if err != nil {
			t.Fatalf("read sibling %d: %v", n.next, err)
		}
		if next.typ != pageLeaf {
			t.Fatalf("sibling chain reached non-leaf page %d", n.next)
		}
		n = next
	}
}

// TestLeafSiblingChainAcrossSplits: after heavy splitting under sorted,
// reverse, and random insertion orders, walking the sibling chain must
// visit exactly the keys the iterator visits, in the same order — the
// chain read-ahead follows is the tree's leaf level, no page missed, no
// page doubled, across every split pattern.
func TestLeafSiblingChainAcrossSplits(t *testing.T) {
	const n = 4000
	keys, vals := orderedKeys(n)
	for name, order := range insertionOrders(n) {
		db := OpenMemory(&Options{CachePages: 16})
		for _, i := range order {
			if err := db.Put(keys[i], vals[i]); err != nil {
				t.Fatal(err)
			}
		}
		var want [][]byte
		for it := db.First(); it.Valid(); it.Next() {
			want = append(want, append([]byte(nil), it.Key()...))
		}
		got := chainKeys(t, db)
		if len(got) != len(want) {
			t.Fatalf("%s: chain has %d keys, iterator %d", name, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("%s: chain key %d = %q, iterator %q", name, i, got[i], want[i])
			}
		}
	}
}

// TestLeafSiblingChainPersists: the chain survives close/reopen (the
// pointers are part of the page format, not in-memory state).
func TestLeafSiblingChainPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := orderedKeys(2000)
	perm := rand.New(rand.NewSource(7)).Perm(len(keys))
	for _, i := range perm {
		if err := db.Put(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	got := chainKeys(t, db)
	if len(got) != len(keys) {
		t.Fatalf("reopened chain has %d keys, want %d", len(got), len(keys))
	}
	for i := range got {
		if !bytes.Equal(got[i], keys[i]) {
			t.Fatalf("reopened chain key %d = %q, want %q", i, got[i], keys[i])
		}
	}
}

// readAheadFixture builds a store file with three key prefixes so a
// prefix scan covers a strict middle slice of the tree, then closes it.
func readAheadFixture(t *testing.T, perPrefix int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ra.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ks, vs [][]byte
	for _, p := range []string{"a/", "b/", "c/"} {
		for i := 0; i < perPrefix; i++ {
			ks = append(ks, []byte(fmt.Sprintf("%s%05d", p, i)))
			vs = append(vs, bytes.Repeat([]byte{'v'}, 60))
		}
	}
	if err := db.PutBatch(ks, vs); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// scanPrefix cold-opens the fixture with the given options, runs one
// AscendPrefix collecting the full key/value byte stream (stopping after
// limit entries when limit > 0), and returns the stream plus the I/O
// stats of just that scan.
func scanPrefix(t *testing.T, path string, opts *Options, prefix string, limit int) ([]byte, Stats) {
	t.Helper()
	db, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	before := db.Stats()
	var stream []byte
	seen := 0
	err = db.AscendPrefix([]byte(prefix), func(k, v []byte) bool {
		stream = append(stream, k...)
		stream = append(stream, '=')
		stream = append(stream, v...)
		stream = append(stream, '\n')
		seen++
		return limit <= 0 || seen < limit
	})
	if err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	return stream, Stats{
		BlocksRead: after.BlocksRead - before.BlocksRead,
		ReadAheads: after.ReadAheads - before.ReadAheads,
	}
}

// TestReadAheadScanIdentical: a prefix scan with read-ahead enabled must
// produce the byte-identical key/value sequence as with it disabled —
// read-ahead only warms the pool, it never changes what a scan sees.
func TestReadAheadScanIdentical(t *testing.T) {
	path := readAheadFixture(t, 1500)
	on, onStats := scanPrefix(t, path, &Options{CachePages: 16}, "b/", 0)
	off, offStats := scanPrefix(t, path, &Options{CachePages: 16, DisableReadAhead: true}, "b/", 0)
	if !bytes.Equal(on, off) {
		t.Fatalf("scan differs with read-ahead: %d vs %d bytes", len(on), len(off))
	}
	if onStats.ReadAheads == 0 {
		t.Error("long scan with read-ahead enabled prefetched nothing")
	}
	if offStats.ReadAheads != 0 {
		t.Errorf("DisableReadAhead still prefetched %d pages", offStats.ReadAheads)
	}
}

// TestReadAheadBlocksReadBounds: read-ahead may overshoot the end of a
// prefix range by at most the read-ahead depth — it must not drag in
// arbitrary pages past the range. The disabled run is the oracle for how
// many pages the range itself occupies.
func TestReadAheadBlocksReadBounds(t *testing.T) {
	path := readAheadFixture(t, 1500)
	// The pool is large enough that nothing is evicted mid-scan: every
	// page is read at most once, so the block counts compare exactly.
	_, off := scanPrefix(t, path, &Options{CachePages: 512, DisableReadAhead: true}, "b/", 0)
	_, on := scanPrefix(t, path, &Options{CachePages: 512}, "b/", 0)
	if on.BlocksRead > off.BlocksRead+defaultReadAhead {
		t.Errorf("read-ahead scan read %d blocks, plain scan %d: overshoot > %d",
			on.BlocksRead, off.BlocksRead, defaultReadAhead)
	}
	// A deeper knob prefetches more but stays bounded by its own depth.
	_, deep := scanPrefix(t, path, &Options{CachePages: 512, ReadAheadPages: 32}, "b/", 0)
	if deep.BlocksRead > off.BlocksRead+32 {
		t.Errorf("depth-32 scan read %d blocks, plain scan %d: overshoot > 32",
			deep.BlocksRead, off.BlocksRead)
	}
}

// TestReadAheadEarlyStop: a scan whose callback stops inside the first
// leaf never crosses a leaf boundary, so it must not prefetch at all —
// point-ish lookups pay zero read-ahead cost.
func TestReadAheadEarlyStop(t *testing.T) {
	path := readAheadFixture(t, 1500)
	on, onStats := scanPrefix(t, path, &Options{CachePages: 16}, "b/", 1)
	off, offStats := scanPrefix(t, path, &Options{CachePages: 16, DisableReadAhead: true}, "b/", 1)
	if !bytes.Equal(on, off) {
		t.Fatal("early-stopped scan differs with read-ahead")
	}
	if onStats.ReadAheads != 0 {
		t.Errorf("early stop inside first leaf prefetched %d pages", onStats.ReadAheads)
	}
	if onStats.BlocksRead != offStats.BlocksRead {
		t.Errorf("early stop read %d blocks with read-ahead, %d without",
			onStats.BlocksRead, offStats.BlocksRead)
	}
}

// TestReadAheadStatsSubset: prefetched pages are counted inside the
// regular miss/block accounting (ReadAheads ⊆ CacheMisses = BlocksRead),
// so the vmstat-style figures stay consistent with read-ahead on.
func TestReadAheadStatsSubset(t *testing.T) {
	path := readAheadFixture(t, 1500)
	db, err := Open(path, &Options{CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.AscendPrefix([]byte("b/"), func(k, v []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.ReadAheads == 0 {
		t.Fatal("no read-aheads recorded")
	}
	if st.ReadAheads > st.CacheMisses {
		t.Errorf("ReadAheads %d > CacheMisses %d", st.ReadAheads, st.CacheMisses)
	}
	if st.CacheMisses != st.BlocksRead {
		t.Errorf("CacheMisses %d != BlocksRead %d with read-ahead active", st.CacheMisses, st.BlocksRead)
	}
}
