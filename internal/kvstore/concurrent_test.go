package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// stressDB builds a file-backed store with eight disjoint reader
// prefixes r0/..r7/ plus one shared prefix sh/ that every reader scans,
// sized so scans cross many leaves and the small pool keeps evicting.
func stressDB(t *testing.T) (*DB, int) {
	t.Helper()
	const perPrefix = 800
	db, err := Open(t.TempDir()+"/stress.db", &Options{CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	var ks, vs [][]byte
	pad := bytes.Repeat([]byte{'.'}, 120)
	for p := 0; p < 8; p++ {
		for i := 0; i < perPrefix; i++ {
			ks = append(ks, []byte(fmt.Sprintf("r%d/%05d", p, i)))
			vs = append(vs, append([]byte(fmt.Sprintf("val-%d-%d", p, i)), pad...))
		}
	}
	for i := 0; i < perPrefix; i++ {
		ks = append(ks, []byte(fmt.Sprintf("sh/%05d", i)))
		vs = append(vs, append([]byte(fmt.Sprintf("shared-%d", i)), pad...))
	}
	if err := db.PutBatch(ks, vs); err != nil {
		t.Fatal(err)
	}
	return db, perPrefix
}

// scanOracle runs one sequential AscendPrefix and returns the
// concatenated key=value stream — the byte-exact answer every
// concurrent scan of that prefix must reproduce.
func scanOracle(t *testing.T, db *DB, prefix string) []byte {
	t.Helper()
	var out []byte
	err := db.AscendPrefix([]byte(prefix), func(k, v []byte) bool {
		out = append(out, k...)
		out = append(out, '=')
		out = append(out, v...)
		out = append(out, '\n')
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReaderScalabilityStress: eight goroutines hammer one shared DB
// with Gets and AscendPrefix scans — each over its own prefix, its
// neighbor's prefix (so shard and page ownership overlaps), and the
// shared prefix — while the pool keeps evicting. Run under -race this
// guards the sharded pool's locking; every result must be byte-identical
// to the sequential oracle captured up front.
func TestReaderScalabilityStress(t *testing.T) {
	db, perPrefix := stressDB(t)

	oracles := make(map[string][]byte)
	for p := 0; p < 8; p++ {
		prefix := fmt.Sprintf("r%d/", p)
		oracles[prefix] = scanOracle(t, db, prefix)
	}
	oracles["sh/"] = scanOracle(t, db, "sh/")

	const readers, rounds = 8, 3
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := fmt.Sprintf("r%d/", g)
			neighbor := fmt.Sprintf("r%d/", (g+1)%readers)
			for round := 0; round < rounds; round++ {
				for _, prefix := range []string{own, neighbor, "sh/"} {
					var got []byte
					err := db.AscendPrefix([]byte(prefix), func(k, v []byte) bool {
						got = append(got, k...)
						got = append(got, '=')
						got = append(got, v...)
						got = append(got, '\n')
						return true
					})
					if err != nil {
						t.Errorf("reader %d: scan %s: %v", g, prefix, err)
						return
					}
					if !bytes.Equal(got, oracles[prefix]) {
						t.Errorf("reader %d: concurrent scan of %s differs from sequential oracle (%d vs %d bytes)",
							g, prefix, len(got), len(oracles[prefix]))
						return
					}
				}
				for i := 0; i < 64; i++ {
					idx := (g*131 + round*17 + i*29) % perPrefix
					key := fmt.Sprintf("r%d/%05d", (g+i)%readers, idx)
					want := append([]byte(fmt.Sprintf("val-%d-%d", (g+i)%readers, idx)), bytes.Repeat([]byte{'.'}, 120)...)
					v, ok, err := db.Get([]byte(key))
					if err != nil || !ok || !bytes.Equal(v, want) {
						t.Errorf("reader %d: Get(%s) = %q %v %v, want %q", g, key, v, ok, err, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The pool must have been under real pressure and real sharing for
	// the run to mean anything.
	st := db.Stats()
	if st.Evictions == 0 {
		t.Error("stress run never evicted — pool too large to exercise shard LRU")
	}
	if st.CacheHits == 0 {
		t.Error("stress run never hit the pool")
	}
}
