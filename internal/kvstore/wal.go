package kvstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Write-ahead log: the commit protocol that makes Sync atomic.
//
// A durable store keeps a sidecar log at <path>.wal. Sync first appends
// every dirty page image to the log, each protected by a CRC, followed
// by a commit record naming the batch size and the committed file length
// — and fsyncs the log. Only then are the pages written in place in the
// store file and fsynced, after which the log is truncated. Open replays
// the log before reading anything: a log whose commit record (and every
// page record it covers) checks out is re-applied to the store file — the
// in-place phase may have been interrupted anywhere, including mid-page —
// while a log that ends early or fails a checksum is discarded, because
// the store file is untouched until the commit record is durable. Either
// way the store reopens to exactly the last committed state.
//
// Layout (integers big-endian, CRC-32C):
//
//	header: "XMWAL1\x00\x00"
//	'P' pageID:u32 crc:u32 data:[PageSize]   crc over pageID+data
//	'C' count:u32 npages:u32 crc:u32         crc over count+npages
//
// The log normally holds one batch (it is truncated after every
// successful Sync), but replay accepts any number of complete batches in
// order — a truncate that failed mid-crash leaves the previous batch in
// front of the next.

const walMagic = "XMWAL1\x00\x00"

const (
	walPageRec   = 'P'
	walCommitRec = 'C'

	walPageRecSize   = 9 + PageSize
	walCommitRecSize = 13
)

var walTable = crc32.MakeTable(crc32.Castagnoli)

// walSuffix turns a store path into its log path.
func walSuffix(path string) string { return path + ".wal" }

// walEncodePage builds one page record for page id holding data
// (PageSize bytes).
func walEncodePage(id uint32, data []byte) []byte {
	rec := make([]byte, walPageRecSize)
	rec[0] = walPageRec
	binary.BigEndian.PutUint32(rec[1:], id)
	copy(rec[9:], data)
	crc := crc32.Update(0, walTable, rec[1:5])
	crc = crc32.Update(crc, walTable, rec[9:])
	binary.BigEndian.PutUint32(rec[5:], crc)
	return rec
}

// walEncodeCommit builds the commit record for a batch of count pages
// committing a store file of npages pages.
func walEncodeCommit(count, npages uint32) []byte {
	rec := make([]byte, walCommitRecSize)
	rec[0] = walCommitRec
	binary.BigEndian.PutUint32(rec[1:], count)
	binary.BigEndian.PutUint32(rec[5:], npages)
	binary.BigEndian.PutUint32(rec[9:], crc32.Checksum(rec[1:9], walTable))
	return rec
}

// walPage is one replayable page image (data aliases the parsed buffer).
type walPage struct {
	id   uint32
	data []byte
}

// walBatch is one complete, checksum-valid commit.
type walBatch struct {
	npages uint32
	pages  []walPage
}

// parseWAL decodes the complete batches at the front of data, stopping
// at the first malformed, checksum-failing, or incomplete record — the
// crash tail. basePages is the store file's current page count; it
// bounds each batch's committed length (a commit can grow the file by at
// most its own batch, since every appended page is dirty at commit), so
// a corrupt length cannot balloon replay. Everything after the last
// complete batch is discarded by the caller.
func parseWAL(data []byte, basePages int64) []walBatch {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return nil
	}
	off := len(walMagic)
	maxPages := basePages
	var batches []walBatch
	var pending []walPage
	for off < len(data) {
		switch data[off] {
		case walPageRec:
			if off+walPageRecSize > len(data) {
				return batches
			}
			rec := data[off : off+walPageRecSize]
			id := binary.BigEndian.Uint32(rec[1:])
			crc := crc32.Update(0, walTable, rec[1:5])
			crc = crc32.Update(crc, walTable, rec[9:])
			if crc != binary.BigEndian.Uint32(rec[5:]) {
				return batches
			}
			pending = append(pending, walPage{id: id, data: rec[9:]})
			off += walPageRecSize
		case walCommitRec:
			if off+walCommitRecSize > len(data) {
				return batches
			}
			rec := data[off : off+walCommitRecSize]
			if crc32.Checksum(rec[1:9], walTable) != binary.BigEndian.Uint32(rec[9:]) {
				return batches
			}
			count := binary.BigEndian.Uint32(rec[1:])
			npages := binary.BigEndian.Uint32(rec[5:])
			if int(count) != len(pending) || int64(npages) > maxPages+int64(count) {
				return batches
			}
			for _, pg := range pending {
				if pg.id >= npages {
					return batches
				}
			}
			batches = append(batches, walBatch{npages: npages, pages: pending})
			pending = nil
			maxPages = int64(npages)
			off += walCommitRecSize
		default:
			return batches
		}
	}
	return batches
}

// recoverWAL replays the store's log into the open store file, if one is
// present: complete batches are re-applied (idempotently — the in-place
// phase writes the same bytes) and the file is truncated to each batch's
// committed length; an incomplete tail is discarded. The log is emptied
// afterwards in both cases. It returns whether any batch was replayed.
// Recovery runs on every Open, durable or not, so a store crashed under
// -durability reopens consistent even without the flag.
func recoverWAL(fs VFS, path string, db File) (bool, error) {
	w, err := fs.OpenFile(walSuffix(path), os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("kvstore: open wal: %w", err)
	}
	defer w.Close()
	sz, err := w.Size()
	if err != nil {
		return false, fmt.Errorf("kvstore: wal size: %w", err)
	}
	if sz == 0 {
		return false, nil
	}
	data := make([]byte, sz)
	if _, err := w.ReadAt(data, 0); err != nil {
		return false, fmt.Errorf("kvstore: read wal: %w", err)
	}
	dbSize, err := db.Size()
	if err != nil {
		return false, err
	}
	batches := parseWAL(data, dbSize/PageSize)
	for _, b := range batches {
		for _, pg := range b.pages {
			if _, err := db.WriteAt(pg.data, int64(pg.id)*PageSize); err != nil {
				return false, fmt.Errorf("kvstore: replay page %d: %w", pg.id, err)
			}
		}
		if err := db.Truncate(int64(b.npages) * PageSize); err != nil {
			return false, fmt.Errorf("kvstore: replay truncate: %w", err)
		}
	}
	if len(batches) > 0 {
		if err := db.Sync(); err != nil {
			return false, fmt.Errorf("kvstore: replay sync: %w", err)
		}
	}
	if err := w.Truncate(0); err != nil {
		return false, fmt.Errorf("kvstore: reset wal: %w", err)
	}
	if err := w.Sync(); err != nil {
		return false, fmt.Errorf("kvstore: reset wal: %w", err)
	}
	return len(batches) > 0, nil
}

// walCommit makes a flush batch durable in the log: header, one page
// record each, commit record, fsync. Called by the group-commit leader
// before any in-place write; the log was left empty by the previous
// commit (or recovery), so the batch starts at offset 0. The page images
// and the committed page count were captured together under the DB's
// publishMu, so the batch is a consistent cut: a transaction's pages are
// either all in the batch or all left for the next one, and npages never
// exceeds what replay's growth bound allows. The single fsync here is
// the durability point the whole group of committers shares (WALFsyncs
// counts exactly these).
func (p *pager) walCommit(batch []flushPage, npages uint32) error {
	if p.wal == nil {
		w, err := p.fs.OpenFile(p.walPath, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return fmt.Errorf("kvstore: open wal: %w", err)
		}
		p.wal = w
	}
	off := int64(0)
	put := func(rec []byte) error {
		if _, err := p.wal.WriteAt(rec, off); err != nil {
			return fmt.Errorf("kvstore: wal write: %w", err)
		}
		off += int64(len(rec))
		p.walBytes.Add(int64(len(rec)))
		return nil
	}
	if err := put([]byte(walMagic)); err != nil {
		return err
	}
	for _, fp := range batch {
		if err := put(walEncodePage(fp.id, fp.buf)); err != nil {
			return err
		}
	}
	if err := put(walEncodeCommit(uint32(len(batch)), npages)); err != nil {
		return err
	}
	if err := fsyncTimed(p.wal, walFsyncTime); err != nil {
		return fmt.Errorf("kvstore: wal sync: %w", err)
	}
	p.walFsyncs.Add(1)
	return nil
}

// walReset empties the log after a successful in-place phase, completing
// the commit.
func (p *pager) walReset() error {
	if err := p.wal.Truncate(0); err != nil {
		return fmt.Errorf("kvstore: truncate wal: %w", err)
	}
	if err := fsyncTimed(p.wal, walFsyncTime); err != nil {
		return fmt.Errorf("kvstore: truncate wal: %w", err)
	}
	p.walCommits.Add(1)
	return nil
}
