package kvstore

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Group commit: concurrent Sync callers share one flush.
//
// Sync no longer owns the tree lock (there is none to own) — it joins
// the pending commit ticket. The first joiner to find no flush in
// progress becomes the leader: it detaches the ticket, collects the
// dirty set, and runs the full commit protocol (WAL append + one fsync,
// in-place writes, data-file fsync, WAL reset) once for every member.
// Callers that arrive while a flush is running accumulate on the next
// ticket and park; when the running flush finishes it wakes everyone —
// members of the finished ticket return its result, and one member of
// the next ticket finds the leader seat empty and takes it. A solo Sync
// degenerates to exactly the pre-group-commit write sequence, which is
// what keeps the PR-4 crash-point sweeps byte-identical.
//
// Durability contract per member: a member's own commits were published
// (publishMu) before its Sync call joined the ticket, and the leader
// detaches the ticket before collecting the dirty set under that same
// publishMu — so the batch always covers every member's pages.

// commitTicket is one pending flush group. joined is closed when a
// second member joins, releasing a leader waiting out the group-commit
// window early.
type commitTicket struct {
	members int
	joined  chan struct{}
	done    bool
	err     error
}

// groupCommit is the DB's commit-ticket state, guarded by mu. wake is
// closed (and replaced) each time a flush completes — a broadcast that
// lets parked members re-check their ticket.
type groupCommit struct {
	mu       sync.Mutex
	wake     chan struct{}
	flushing bool
	cur      *commitTicket
}

// flushPage is one dirty page captured for a flush batch: the id, the
// buffer as of the collect (immutable), and the cache entry so the
// leader can clear the dirty flag afterwards — but only when the buffer
// is still the one it wrote (a commit that lands mid-flush leaves its
// page dirty for the next batch).
type flushPage struct {
	id  uint32
	buf []byte
	c   *cached
}

// Sync makes every committed page durable. Concurrent callers batch into
// one group commit: a single WAL fsync covers all of them. The error of
// the shared flush is delivered to every member.
func (db *DB) Sync() error {
	if db.closed.Load() {
		return ErrClosed
	}
	return db.sync()
}

// sync is Sync without the closed check — Close uses it for the final
// flush after new Syncs are already being refused.
func (db *DB) sync() error {
	p := db.pager
	p.syncCalls.Add(1)
	g := &db.gc
	g.mu.Lock()
	if g.cur == nil {
		g.cur = &commitTicket{joined: make(chan struct{})}
	}
	t := g.cur
	if t.members++; t.members == 2 {
		close(t.joined)
	}
	for g.flushing {
		wake := g.wake
		g.mu.Unlock()
		<-wake
		g.mu.Lock()
		if t.done {
			err := t.err
			g.mu.Unlock()
			return err
		}
	}
	// Leader: take the flush slot. With a group-commit window configured
	// (Options.GroupCommitWait) and no follower yet, hold the ticket open
	// until one joins or the window closes — on fast devices the flush
	// itself is too quick for concurrent committers to pile up on their
	// own, so the window is what lets sparse Syncs share an fsync. The
	// wait ends the moment a follower arrives, so it prices at most one
	// window per flush and nothing when committers are already queued.
	g.flushing = true
	if db.gcWait > 0 && t.members == 1 {
		g.mu.Unlock()
		select {
		case <-t.joined:
		case <-time.After(db.gcWait):
		}
		g.mu.Lock()
	}
	// Detach the ticket so later arrivals start the next group.
	g.cur = nil
	g.mu.Unlock()

	err := db.flushBatch()
	p.groupCommits.Add(1)
	groupCommitSize.Observe(float64(t.members))

	g.mu.Lock()
	t.done, t.err = true, err
	g.flushing = false
	close(g.wake)
	g.wake = make(chan struct{})
	g.mu.Unlock()
	return err
}

// flushBatch runs one commit protocol over the current dirty set. The
// collect runs under publishMu, so the batch is a consistent cut of
// committed transactions — each one entirely in or entirely out — and
// the page count it records matches. A crash anywhere inside replays to
// exactly this cut or the previous one, never half of it.
func (db *DB) flushBatch() error {
	p := db.pager
	lockTimed(&db.publishMu, publishLockWait)
	var batch []flushPage
	for i := range p.shards {
		s := &p.shards[i]
		lockTimed(&s.mu, shardLockWait)
		for _, c := range s.cache {
			if c.dirty {
				batch = append(batch, flushPage{id: c.id, buf: c.buf, c: c})
			}
		}
		s.mu.Unlock()
	}
	npages := p.npages.Load()
	// Replication cut: the same publishMu section that fixes the flush
	// batch fixes the replicated batch, so both describe one committed
	// instant. Delivery happens after the lock drops — flushes are
	// serialized, so subscriber queues still see ascending LSNs.
	rb, subs, repErr := db.collectReplication()
	db.publishMu.Unlock()
	if repErr != nil {
		return repErr
	}
	if rb != nil {
		for _, sub := range subs {
			sub.push(*rb)
		}
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].id < batch[j].id })

	if p.file == nil {
		for _, fp := range batch {
			s := p.shardOf(fp.id)
			lockTimed(&s.mu, shardLockWait)
			if c, ok := s.cache[fp.id]; ok && c.dirty {
				_ = p.flushLocked(c) // memory backend cannot fail
			}
			s.mu.Unlock()
		}
		return nil
	}

	if p.durable {
		if len(batch) > 0 {
			if err := p.walCommit(batch, npages); err != nil {
				return err
			}
		}
		for _, fp := range batch {
			start := time.Now()
			_, err := p.file.WriteAt(fp.buf, int64(fp.id)*PageSize)
			p.ioNanos.Add(int64(time.Since(start)))
			if err != nil {
				return fmt.Errorf("kvstore: sync page %d: %w", fp.id, err)
			}
			p.writes.Add(1)
			// Clear dirty only while the entry still holds the buffer we
			// just wrote; a commit that superseded it mid-flush must stay
			// dirty for the next batch (its image is in neither the WAL nor
			// the file yet).
			s := p.shardOf(fp.id)
			lockTimed(&s.mu, shardLockWait)
			if &fp.c.buf[0] == &fp.buf[0] {
				fp.c.dirty = false
			}
			s.mu.Unlock()
		}
	} else {
		// Without the WAL there is no atomicity contract: flush whatever
		// each page's current committed buffer is (evictions may already
		// have written — or even dropped — some of them).
		for _, fp := range batch {
			s := p.shardOf(fp.id)
			lockTimed(&s.mu, shardLockWait)
			if c, ok := s.cache[fp.id]; ok && c.dirty {
				if err := p.flushLocked(c); err != nil {
					s.mu.Unlock()
					return fmt.Errorf("kvstore: sync page %d: %w", fp.id, err)
				}
			}
			s.mu.Unlock()
		}
	}
	if err := fsyncTimed(p.file, fileFsyncTime); err != nil {
		return err
	}
	if p.durable && len(batch) > 0 {
		if err := p.walReset(); err != nil {
			return err
		}
	}
	return p.takeEvictErr()
}
