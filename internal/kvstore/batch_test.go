package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// orderedKeys returns n distinct keys whose lexicographic order matches
// their index order, plus matching values.
func orderedKeys(n int) (keys, vals [][]byte) {
	for i := 0; i < n; i++ {
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, uint64(i))
		keys = append(keys, k)
		vals = append(vals, []byte(fmt.Sprintf("value-%d", i)))
	}
	return keys, vals
}

// pageImage dumps every page of the store as one byte slice, reading
// through the buffer pool so dirty pages are included.
func pageImage(t *testing.T, db *DB) []byte {
	t.Helper()
	var out []byte
	for id := uint32(0); id < db.pager.npages.Load(); id++ {
		buf, err := db.pager.read(id)
		if err != nil {
			t.Fatalf("read page %d: %v", id, err)
		}
		out = append(out, buf...)
	}
	return out
}

// insertionOrders yields the three orders the fast path must handle:
// already sorted (every insert hits the cached right edge), reverse
// sorted (every insert misses), and shuffled.
func insertionOrders(n int) map[string][]int {
	sorted := make([]int, n)
	reverse := make([]int, n)
	for i := 0; i < n; i++ {
		sorted[i] = i
		reverse[i] = n - 1 - i
	}
	shuffled := append([]int(nil), sorted...)
	rand.New(rand.NewSource(99)).Shuffle(n, func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	return map[string][]int{"sorted": sorted, "reverse": reverse, "random": shuffled}
}

// TestFastPathTreeIdentical: for sorted, reverse-sorted, and random
// insert orders, the sorted-insert fast path must produce a tree
// byte-identical to the plain root-to-leaf descent — the cache is a pure
// shortcut, never a different insertion.
func TestFastPathTreeIdentical(t *testing.T) {
	const n = 3000
	keys, vals := orderedKeys(n)
	for name, order := range insertionOrders(n) {
		fast := OpenMemory(nil)
		slow := OpenMemory(&Options{DisableFastPath: true})
		for _, i := range order {
			if err := fast.Put(keys[i], vals[i]); err != nil {
				t.Fatal(err)
			}
			if err := slow.Put(keys[i], vals[i]); err != nil {
				t.Fatal(err)
			}
		}
		if fast.pager.npages.Load() != slow.pager.npages.Load() {
			t.Fatalf("%s: fast path grew %d pages, slow %d", name, fast.pager.npages.Load(), slow.pager.npages.Load())
		}
		if !bytes.Equal(pageImage(t, fast), pageImage(t, slow)) {
			t.Errorf("%s: fast-path tree differs from plain descent", name)
		}
		if name == "sorted" && fast.Stats().FastPathHits == 0 {
			t.Error("sorted inserts never hit the fast path")
		}
		if slow.Stats().FastPathHits != 0 {
			t.Errorf("%s: DisableFastPath still recorded %d hits", name, slow.Stats().FastPathHits)
		}
	}
}

// TestPutBatchMatchesSortedPuts: a shuffled PutBatch must build the same
// physical tree as sequential Puts in key order (PutBatch sorts), and
// the same logical content as sequential Puts in the original order.
func TestPutBatchMatchesSortedPuts(t *testing.T) {
	const n = 2500
	keys, vals := orderedKeys(n)
	for name, order := range insertionOrders(n) {
		var bk, bv [][]byte
		for _, i := range order {
			bk = append(bk, keys[i])
			bv = append(bv, vals[i])
		}
		batched := OpenMemory(nil)
		if err := batched.PutBatch(bk, bv); err != nil {
			t.Fatal(err)
		}
		sequential := OpenMemory(nil)
		for i := 0; i < n; i++ {
			if err := sequential.Put(keys[i], vals[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(pageImage(t, batched), pageImage(t, sequential)) {
			t.Errorf("%s: PutBatch tree differs from sorted sequential Puts", name)
		}
		// The iterator must see every pair in order regardless of how the
		// batch arrived.
		i := 0
		err := batched.Ascend(nil, nil, func(k, v []byte) bool {
			if !bytes.Equal(k, keys[i]) || !bytes.Equal(v, vals[i]) {
				t.Fatalf("%s: entry %d = %q/%q", name, i, k, v)
			}
			i++
			return true
		})
		if err != nil || i != n {
			t.Fatalf("%s: scan saw %d of %d entries (err %v)", name, i, n, err)
		}
		if got := batched.Stats().BatchedPuts; got != int64(n) {
			t.Errorf("%s: BatchedPuts = %d, want %d", name, got, n)
		}
	}
}

// TestPutBatchDuplicatesLastWins: duplicate keys inside one batch apply
// in input order, matching what sequential Puts would leave behind.
func TestPutBatchDuplicatesLastWins(t *testing.T) {
	db := OpenMemory(nil)
	keys := [][]byte{[]byte("b"), []byte("a"), []byte("b"), []byte("a")}
	vals := [][]byte{[]byte("b1"), []byte("a1"), []byte("b2"), []byte("a2")}
	if err := db.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"a": "a2", "b": "b2"} {
		v, ok, err := db.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Errorf("Get(%s) = %q %v %v, want %q", k, v, ok, err, want)
		}
	}
}

// TestPutBatchOverwrites: a batch replaces values already in the tree.
func TestPutBatchOverwrites(t *testing.T) {
	db := OpenMemory(nil)
	if err := db.Put([]byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := db.PutBatch([][]byte{[]byte("k")}, [][]byte{[]byte("new")}); err != nil {
		t.Fatal(err)
	}
	v, _, _ := db.Get([]byte("k"))
	if string(v) != "new" {
		t.Errorf("Get after batch overwrite = %q", v)
	}
}

// TestPutBatchValidation: mismatched slices and oversized entries are
// rejected before anything is written.
func TestPutBatchValidation(t *testing.T) {
	db := OpenMemory(nil)
	if err := db.PutBatch([][]byte{[]byte("k")}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
	big := make([]byte, MaxKeySize+1)
	if err := db.PutBatch([][]byte{[]byte("ok"), big}, [][]byte{[]byte("v"), []byte("v")}); err == nil {
		t.Error("oversized key accepted")
	}
	if _, ok, _ := db.Get([]byte("ok")); ok {
		t.Error("failed batch left a partial write")
	}
}

// TestDeleteKeepsFastPathCorrect: interleaving deletes with fast-path
// inserts must not corrupt the tree (deletes never move separators, so
// the cached leaf range stays valid).
func TestDeleteKeepsFastPathCorrect(t *testing.T) {
	db := OpenMemory(nil)
	keys, vals := orderedKeys(2000)
	for i := range keys {
		if err := db.Put(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := db.Delete(keys[i/2]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Every key must be findable or verifiably deleted, in order.
	var prev []byte
	err := db.Ascend(nil, nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("keys out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPutBatchAscendPrefix: writers batching into disjoint key
// prefixes race readers scanning them; run with -race this guards the
// DB-level locking. Each scan must see a consistent prefix: a sorted
// sequence of fully-formed entries.
func TestConcurrentPutBatchAscendPrefix(t *testing.T) {
	db := OpenMemory(nil)
	const writers, batches, perBatch = 4, 8, 64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				var keys, vals [][]byte
				for i := 0; i < perBatch; i++ {
					keys = append(keys, []byte(fmt.Sprintf("w%d/%05d", w, b*perBatch+i)))
					vals = append(vals, []byte(fmt.Sprintf("v%d", i)))
				}
				if err := db.PutBatch(keys, vals); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < writers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			prefix := []byte(fmt.Sprintf("w%d/", r))
			for i := 0; i < 20; i++ {
				var prev []byte
				err := db.AscendPrefix(prefix, func(k, v []byte) bool {
					if prev != nil && bytes.Compare(prev, k) >= 0 {
						t.Errorf("scan out of order under prefix %s", prefix)
						return false
					}
					prev = append(prev[:0], k...)
					return true
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	total := 0
	_ = db.AscendPrefix([]byte("w"), func(k, v []byte) bool { total++; return true })
	if want := writers * batches * perBatch; total != want {
		t.Errorf("after concurrent batches: %d entries, want %d", total, want)
	}
}

// TestPutBatchPersists: batched inserts survive close/reopen like
// individual Puts do.
func TestPutBatchPersists(t *testing.T) {
	path := t.TempDir() + "/batch.db"
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := orderedKeys(1200)
	if err := db.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	i := 0
	err = db.Ascend(nil, nil, func(k, v []byte) bool {
		if !bytes.Equal(k, keys[i]) || !bytes.Equal(v, vals[i]) {
			t.Fatalf("entry %d = %q/%q after reopen", i, k, v)
		}
		i++
		return true
	})
	if err != nil || i != len(keys) {
		t.Fatalf("reopen scan saw %d entries (err %v)", i, err)
	}
}
