package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// repDumpAll collects every key/value pair of a DB in order.
func repDumpAll(t *testing.T, db *DB) map[string]string {
	t.Helper()
	out := map[string]string{}
	if err := db.Ascend(nil, nil, func(k, v []byte) bool {
		out[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatalf("ascend: %v", err)
	}
	return out
}

// applyAvailable drains every queued batch into the follower.
func applyAvailable(t *testing.T, sub *CommitSub, follower *DB) {
	t.Helper()
	for sub.Pending() > 0 {
		b, ok := sub.Next()
		if !ok {
			t.Fatalf("subscription closed mid-drain")
		}
		if err := follower.ApplyCommitBatch(b); err != nil {
			t.Fatalf("apply LSN %d: %v", b.LSN, err)
		}
	}
}

func assertSameState(t *testing.T, leader, follower *DB) {
	t.Helper()
	lDump, fDump := repDumpAll(t, leader), repDumpAll(t, follower)
	if len(lDump) != len(fDump) {
		t.Fatalf("follower has %d keys, leader %d", len(fDump), len(lDump))
	}
	for k, v := range lDump {
		if fv, ok := fDump[k]; !ok || fv != v {
			t.Fatalf("key %q: follower %q (present=%v), leader %q", k, fDump[k], ok, v)
		}
	}
	// Follower epochs are leader epochs plus a fixed rebase offset, so
	// they track the leader's progression without ever being behind it.
	if le, fe := leader.Stats().Epoch, follower.Stats().Epoch; fe < le {
		t.Fatalf("follower epoch %d behind leader %d", fe, le)
	}
}

func TestReplicationBootstrapAndIncremental(t *testing.T) {
	leader := OpenMemory(nil)
	defer leader.Close()
	for i := 0; i < 200; i++ {
		if err := leader.Put([]byte(fmt.Sprintf("pre-%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}

	sub, err := leader.SubscribeCommits()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	follower := OpenMemory(nil)
	defer follower.Close()

	// Bootstrap carries the pre-subscription state.
	boot, ok := sub.Next()
	if !ok {
		t.Fatal("no bootstrap batch")
	}
	if boot.LSN != 0 {
		t.Fatalf("bootstrap LSN = %d, want 0", boot.LSN)
	}
	if err := follower.ApplyCommitBatch(boot); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, leader, follower)

	// Incremental rounds: mutate, sync, apply, compare.
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			key := []byte(fmt.Sprintf("r%d-%04d", round, i))
			if err := leader.Put(key, bytes.Repeat([]byte{byte('a' + round)}, 20+i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := leader.Delete([]byte(fmt.Sprintf("pre-%04d", round))); err != nil {
			t.Fatal(err)
		}
		if err := leader.Sync(); err != nil {
			t.Fatal(err)
		}
		applyAvailable(t, sub, follower)
		assertSameState(t, leader, follower)
		if got := follower.AppliedLSN(); got != uint64(round+1) {
			t.Fatalf("round %d: applied LSN = %d, want %d", round, got, round+1)
		}
	}
	if lsn := leader.CommitLSN(); lsn != 5 {
		t.Fatalf("leader commit LSN = %d, want 5", lsn)
	}
}

// TestReplicationSurvivesEviction pins the repDirty-vs-dirty-flag
// distinction: under the non-durable protocol a tiny pool evicts (and
// flushes) dirty pages between commits, clearing their flush flags — the
// replication cut must still carry them.
func TestReplicationSurvivesEviction(t *testing.T) {
	leader := OpenMemory(&Options{CachePages: 16})
	defer leader.Close()
	sub, err := leader.SubscribeCommits()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	follower := OpenMemory(nil)
	defer follower.Close()

	// Far more pages than the pool holds, in one commit interval.
	val := bytes.Repeat([]byte("x"), 900)
	for i := 0; i < 500; i++ {
		if err := leader.Put([]byte(fmt.Sprintf("big-%05d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if ev := leader.Stats().Evictions; ev == 0 {
		t.Fatalf("workload did not evict (evictions=0); enlarge it")
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	boot, _ := sub.Next()
	if err := follower.ApplyCommitBatch(boot); err != nil {
		t.Fatal(err)
	}
	applyAvailable(t, sub, follower)
	assertSameState(t, leader, follower)
}

// TestReplicationFollowerSnapshotIsolation checks a follower keeps full
// MVCC semantics: a snapshot opened before a batch applies keeps reading
// the pre-batch epoch.
func TestReplicationFollowerSnapshotIsolation(t *testing.T) {
	leader := OpenMemory(nil)
	defer leader.Close()
	if err := leader.Put([]byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	sub, err := leader.SubscribeCommits()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	follower := OpenMemory(nil)
	defer follower.Close()
	boot, _ := sub.Next()
	if err := follower.ApplyCommitBatch(boot); err != nil {
		t.Fatal(err)
	}

	snap := follower.OpenSnapshot()
	defer snap.Close()

	if err := leader.Put([]byte("k"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	applyAvailable(t, sub, follower)

	if v, ok, err := snap.Get([]byte("k")); err != nil || !ok || string(v) != "old" {
		t.Fatalf("pinned snapshot read %q/%v/%v, want old", v, ok, err)
	}
	if v, ok, err := follower.Get([]byte("k")); err != nil || !ok || string(v) != "new" {
		t.Fatalf("live follower read %q/%v/%v, want new", v, ok, err)
	}
}

// TestReplicationRandomizedModel drives a leader with random mutations
// and syncs, mirrors every batch into a follower, and checks both
// against an in-memory model after each applied cut.
func TestReplicationRandomizedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	leader := OpenMemory(&Options{CachePages: 32})
	defer leader.Close()
	sub, err := leader.SubscribeCommits()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	follower := OpenMemory(nil)
	defer follower.Close()
	boot, _ := sub.Next()
	if err := follower.ApplyCommitBatch(boot); err != nil {
		t.Fatal(err)
	}

	model := map[string]string{}
	for round := 0; round < 30; round++ {
		for op := 0; op < 40; op++ {
			key := fmt.Sprintf("k%03d", rng.Intn(300))
			if rng.Intn(4) == 0 {
				if err := leader.Delete([]byte(key)); err != nil {
					t.Fatal(err)
				}
				delete(model, key)
			} else {
				val := fmt.Sprintf("r%d-%d", round, rng.Intn(1000))
				if err := leader.Put([]byte(key), []byte(val)); err != nil {
					t.Fatal(err)
				}
				model[key] = val
			}
		}
		if err := leader.Sync(); err != nil {
			t.Fatal(err)
		}
		applyAvailable(t, sub, follower)
		got := repDumpAll(t, follower)
		if len(got) != len(model) {
			t.Fatalf("round %d: follower %d keys, model %d", round, len(got), len(model))
		}
		for k, v := range model {
			if got[k] != v {
				t.Fatalf("round %d key %q: follower %q, model %q", round, k, got[k], v)
			}
		}
	}
}

// TestReplicationLateSubscriber bootstraps after history already
// happened and checks only the current state ships, then increments.
func TestReplicationLateSubscriber(t *testing.T) {
	leader := OpenMemory(nil)
	defer leader.Close()
	for i := 0; i < 100; i++ {
		if err := leader.Put([]byte(fmt.Sprintf("h%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if err := leader.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}

	sub, err := leader.SubscribeCommits()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	follower := OpenMemory(nil)
	defer follower.Close()
	boot, _ := sub.Next()
	if err := follower.ApplyCommitBatch(boot); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, leader, follower)

	if err := leader.Put([]byte("late"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	applyAvailable(t, sub, follower)
	assertSameState(t, leader, follower)
}

// TestReplicationStaleBatchRejected guards the ordering contract.
func TestReplicationStaleBatchRejected(t *testing.T) {
	leader := OpenMemory(nil)
	defer leader.Close()
	sub, err := leader.SubscribeCommits()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	follower := OpenMemory(nil)
	defer follower.Close()
	boot, _ := sub.Next()
	if err := follower.ApplyCommitBatch(boot); err != nil {
		t.Fatal(err)
	}
	if err := leader.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	b, _ := sub.Next()
	if err := follower.ApplyCommitBatch(b); err != nil {
		t.Fatal(err)
	}
	// Re-applying the old bootstrap must be refused: its epoch is behind.
	if err := follower.ApplyCommitBatch(boot); err == nil {
		t.Fatal("stale bootstrap applied without error")
	}
}

// TestReplicationFileBackedLeader ships batches from a durable
// file-backed leader (the cluster's production shape).
func TestReplicationFileBackedLeader(t *testing.T) {
	path := t.TempDir() + "/leader.db"
	leader, err := Open(path, &Options{Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	sub, err := leader.SubscribeCommits()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	follower := OpenMemory(nil)
	defer follower.Close()
	boot, _ := sub.Next()
	if err := follower.ApplyCommitBatch(boot); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := leader.Put([]byte(fmt.Sprintf("d%04d", i)), bytes.Repeat([]byte("y"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Sync(); err != nil {
		t.Fatal(err)
	}
	applyAvailable(t, sub, follower)
	assertSameState(t, leader, follower)
}
