package kvstore

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestCloseDuringGroupCommit is the regression test for closing a DB
// while group-commit tickets are in flight: every concurrent Sync must
// return (the shared flush result or ErrClosed, never a hang), a
// follower parked on the commit ticket must be woken, blocked
// replication subscribers must observe the shutdown, and no goroutine
// may leak.
func TestCloseDuringGroupCommit(t *testing.T) {
	baseline := runtime.NumGoroutine()

	for iter := 0; iter < 20; iter++ {
		path := fmt.Sprintf("%s/c%d.db", t.TempDir(), iter)
		// A generous follower window maximizes the chance Close lands
		// while a leader is parked waiting for followers.
		db, err := Open(path, &Options{Durability: true, GroupCommitWait: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}

		sub, err := db.SubscribeCommits()
		if err != nil {
			t.Fatal(err)
		}
		// Drain the bootstrap, then block in Next until Close wakes us.
		if _, ok := sub.Next(); !ok {
			t.Fatal("bootstrap missing")
		}
		subDone := make(chan bool, 1)
		go func() {
			for {
				if _, ok := sub.Next(); !ok {
					subDone <- true
					return
				}
			}
		}()

		const writers = 8
		var wg sync.WaitGroup
		errs := make([]error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				key := []byte(fmt.Sprintf("w%d-%d", iter, w))
				if err := db.Put(key, []byte("v")); err != nil {
					errs[w] = err
					return
				}
				errs[w] = db.Sync()
			}(w)
		}
		// Let some writers reach the ticket before Close races in.
		if iter%2 == 0 {
			time.Sleep(time.Millisecond)
		}
		closeErr := db.Close()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("iter %d: Sync callers hung after Close", iter)
		}
		if closeErr != nil {
			t.Fatalf("iter %d: close: %v", iter, closeErr)
		}
		for w, err := range errs {
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Fatalf("iter %d writer %d: %v", iter, w, err)
			}
		}
		// Post-close contract.
		if err := db.Sync(); !errors.Is(err, ErrClosed) {
			t.Fatalf("iter %d: Sync after Close = %v, want ErrClosed", iter, err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("iter %d: second Close = %v, want nil", iter, err)
		}
		if _, err := db.SubscribeCommits(); !errors.Is(err, ErrClosed) {
			t.Fatalf("iter %d: Subscribe after Close = %v, want ErrClosed", iter, err)
		}
		select {
		case <-subDone:
		case <-time.After(10 * time.Second):
			t.Fatalf("iter %d: subscriber still blocked in Next after Close", iter)
		}
	}

	// Give runtime-managed goroutines a moment to unwind, then check for
	// leaks from the commit path (parked followers, subscriber pumps).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestCloseFlushesPendingCommits checks Close's final flush makes
// committed-but-unsynced data durable.
func TestCloseFlushesPendingCommits(t *testing.T) {
	path := t.TempDir() + "/flush.db"
	db, err := Open(path, &Options{Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("pending"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	// No explicit Sync: Close must flush.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, &Options{Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, ok, err := db2.Get([]byte("pending"))
	if err != nil || !ok || string(v) != "value" {
		t.Fatalf("reopened read %q/%v/%v, want value", v, ok, err)
	}
}
