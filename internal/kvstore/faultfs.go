package kvstore

import (
	"errors"
	"io"
	"os"
	"sync"
)

// ErrCrashed is returned by every FaultFS operation after a simulated
// crash fired, until ClearFaults "reboots" the filesystem.
var ErrCrashed = errors.New("kvstore: simulated crash")

// ErrInjected is the default error returned by a write that FailWrite
// targeted.
var ErrInjected = errors.New("kvstore: injected write error")

// FaultFS is an in-memory VFS with deterministic fault injection, built
// for the crash-point sweep harness and the recovery tests. Files live
// entirely in memory with two images each: the current contents (what
// the OS page cache would hold) and the last-synced contents (what
// stable storage holds). Mutating operations — WriteAt and Truncate —
// are numbered globally in call order, so a test can:
//
//   - FailWrite(n): return an I/O error from mutation #n (nothing
//     applied), after which the filesystem keeps working — a transient
//     device error.
//   - CrashAfter(n, tear, dropUnsynced): "crash" at mutation #n. The
//     first tear bytes of that write reach the file (a torn page write);
//     with dropUnsynced, every file additionally reverts to its
//     last-synced image (write-back cache lost). Every later operation
//     returns ErrCrashed until ClearFaults simulates the reboot.
//
// Because mutation numbering depends only on the workload, replaying the
// same workload with a different crash index sweeps every intermediate
// on-disk state a real crash could expose (modulo write reordering
// between syncs, which dropUnsynced bounds from the other extreme).
type FaultFS struct {
	mu     sync.Mutex
	files  map[string]*faultFile
	writes int64

	failAt  int64
	failErr error

	crashAt      int64
	tear         int
	dropUnsynced bool
	crashed      bool
}

// NewFaultFS returns an empty in-memory filesystem with no faults armed.
func NewFaultFS() *FaultFS {
	return &FaultFS{files: map[string]*faultFile{}, failAt: -1, crashAt: -1}
}

// FailWrite arms a transient error on mutation #n (0-based, counting
// every WriteAt and Truncate across all files). The targeted mutation
// applies nothing and returns err (ErrInjected when nil); later
// mutations proceed normally.
func (fs *FaultFS) FailWrite(n int64, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	fs.failAt, fs.failErr = n, err
}

// CrashAfter arms a crash at mutation #n: the first tear bytes of that
// write are applied (torn write; tear is clamped to the write size and
// ignored for Truncate), then the filesystem enters the crashed state.
// With dropUnsynced, all contents written since each file's last Sync
// are lost at the crash. ClearFaults simulates the post-crash reboot.
func (fs *FaultFS) CrashAfter(n int64, tear int, dropUnsynced bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashAt, fs.tear, fs.dropUnsynced = n, tear, dropUnsynced
}

// ClearFaults disarms all faults and leaves the crashed state, keeping
// the post-crash file images — the disk as a rebooted process sees it.
func (fs *FaultFS) ClearFaults() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.failAt, fs.crashAt, fs.crashed = -1, -1, false
}

// Writes returns the number of mutations attempted so far (the sweep
// range for CrashAfter).
func (fs *FaultFS) Writes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes
}

// Crashed reports whether an armed crash has fired.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// FileBytes returns a copy of a file's current contents (nil if the file
// does not exist). It works in the crashed state — it is how the harness
// inspects the post-crash disk.
func (fs *FaultFS) FileBytes(name string) []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil
	}
	return append([]byte(nil), f.buf...)
}

// WriteFile creates (or replaces) a file with contents that count as
// already synced, without consuming a mutation number — for seeding a
// pre-existing on-disk state.
func (fs *FaultFS) WriteFile(name string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = &faultFile{
		fs:     fs,
		buf:    append([]byte(nil), data...),
		synced: append([]byte(nil), data...),
	}
}

// OpenFile implements VFS. Supported flags: os.O_CREATE, os.O_TRUNC
// (others are ignored; all files are read-write).
func (fs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f, ok := fs.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		f = &faultFile{fs: fs}
		fs.files[name] = f
	} else if flag&os.O_TRUNC != 0 {
		f.buf = nil
	}
	return f, nil
}

// Remove implements VFS.
func (fs *FaultFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	return nil
}

// crashLocked enters the crashed state, dropping unsynced data if armed
// so. Callers hold fs.mu.
func (fs *FaultFS) crashLocked() {
	fs.crashed = true
	if fs.dropUnsynced {
		for _, f := range fs.files {
			f.buf = append(f.buf[:0:0], f.synced...)
		}
	}
}

// faultFile is one in-memory file; all state is guarded by fs.mu.
type faultFile struct {
	fs     *FaultFS
	buf    []byte // current contents
	synced []byte // contents at the last Sync
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	if off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	idx := f.fs.writes
	f.fs.writes++
	if idx == f.fs.failAt {
		return 0, f.fs.failErr
	}
	if idx == f.fs.crashAt {
		tear := f.fs.tear
		if tear > len(p) {
			tear = len(p)
		}
		f.applyLocked(p[:tear], off)
		f.fs.crashLocked()
		return tear, ErrCrashed
	}
	f.applyLocked(p, off)
	return len(p), nil
}

// applyLocked copies p into the file at off, zero-extending as needed.
func (f *faultFile) applyLocked(p []byte, off int64) {
	if need := off + int64(len(p)); need > int64(len(f.buf)) {
		grown := make([]byte, need)
		copy(grown, f.buf)
		f.buf = grown
	}
	copy(f.buf[off:], p)
}

func (f *faultFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return ErrCrashed
	}
	idx := f.fs.writes
	f.fs.writes++
	if idx == f.fs.failAt {
		return f.fs.failErr
	}
	if idx == f.fs.crashAt {
		// The truncate itself is lost in the crash.
		f.fs.crashLocked()
		return ErrCrashed
	}
	if size <= int64(len(f.buf)) {
		f.buf = f.buf[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, f.buf)
		f.buf = grown
	}
	return nil
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return ErrCrashed
	}
	f.synced = append(f.synced[:0:0], f.buf...)
	return nil
}

func (f *faultFile) Close() error { return nil }

func (f *faultFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	return int64(len(f.buf)), nil
}
