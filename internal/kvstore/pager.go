// Package kvstore is a single-file, page-oriented B+tree key-value store —
// the storage substrate standing in for BerkeleyDB Java Edition in the
// paper's architecture (Section VIII). It provides ordered iteration
// (needed for the TypeToSequence scans of the renderer), a sharded buffer
// pool with per-shard LRU eviction, scan read-ahead over leaf sibling
// pointers, MVCC snapshot reads over copy-on-write page versions (see
// mvcc.go), a group-committing write-ahead log that makes Sync a
// crash-atomic commit shared between concurrent callers (see wal.go and
// groupcommit.go), and block read/write counters that the benchmark
// harness samples to regenerate the paper's vmstat figures (Figs. 11-12).
package kvstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// PageSize is the fixed on-disk page size.
const PageSize = 4096

const magic = "XMKV2\x00\x00\x00"

// numShards is the buffer-pool shard count (a power of two). Pages hash
// to shards by id, so sequentially allocated sibling leaves — what a
// range scan walks — land on different shards and concurrent readers of
// different pages never serialize on one mutex. 16 shards keep per-shard
// LRU lists long enough to approximate a global LRU at the default pool
// sizes while covering any realistic reader parallelism.
const numShards = 16

// evictScan bounds how far past a dirty LRU tail a durable-mode eviction
// looks for a clean victim before giving up and letting the shard run
// over capacity (dirty pages are pinned between commits; see
// insertLocked).
const evictScan = 8

// Stats holds cumulative I/O counters. Reads and writes are whole pages
// ("blocks" in the vmstat sense). IONanos accumulates wall time spent
// inside file reads and writes; the benchmark harness derives the paper's
// wait-percentage figure (Fig. 12) from it. The buffer-pool counters
// (CacheHits/CacheMisses/Evictions) and the operation counters
// (Gets/Puts/Deletes/Seeks) feed the observability layer's per-span
// page-I/O accounting. Every counter is maintained with atomics, so a
// snapshot never takes a pool or tree lock.
type Stats struct {
	BlocksRead    int64
	BlocksWritten int64
	IONanos       int64
	// CacheHits/CacheMisses count page lookups served from / missing the
	// buffer pool; Evictions counts pages pushed out by LRU pressure. A
	// read-ahead probe that fetches a page counts as a miss (and a block
	// read), and the scan's subsequent touch of that page as a hit; a
	// probe that finds the page already resident counts nothing.
	CacheHits   int64
	CacheMisses int64
	Evictions   int64
	// ReadAheads counts leaf pages fetched into the pool by scan
	// read-ahead (a subset of CacheMisses/BlocksRead).
	ReadAheads int64
	// WALBytes counts bytes appended to the write-ahead log (durable
	// stores only); WALCommits counts flush batches that completed the
	// full log-then-in-place commit protocol. Recoveries is 1 when Open
	// found a complete log from an interrupted commit and replayed it,
	// else 0.
	WALBytes   int64
	WALCommits int64
	Recoveries int64
	// Gets/Puts/Deletes/Seeks count B+tree operations (a Seek starts one
	// ordered scan; each scan re-reads pages through the pool).
	Gets    int64
	Puts    int64
	Deletes int64
	Seeks   int64
	// FastPathHits counts Puts served by the sorted-insert leaf cache
	// (no root-to-leaf descent); BatchedPuts counts Puts that arrived
	// through PutBatch. Both are subsets of Puts.
	FastPathHits int64
	BatchedPuts  int64
	// MVCC counters: SnapshotsOpen is the number of snapshots currently
	// pinning an epoch; Epoch is the last committed epoch; PagesRetained
	// is the number of superseded page images currently held for open
	// snapshots; PagesRetired counts superseded images released after
	// their last pinning snapshot closed.
	SnapshotsOpen int64
	Epoch         int64
	PagesRetained int64
	PagesRetired  int64
	// Group-commit counters: SyncCalls counts Sync invocations,
	// GroupCommits counts leader-run flush batches (SyncCalls divided by
	// GroupCommits is the mean group size), and WALFsyncs counts
	// commit-record fsyncs — the durability-critical device round-trip.
	// Under concurrent committers WALFsyncs stays below SyncCalls: one
	// leader fsync covers the whole group.
	SyncCalls    int64
	GroupCommits int64
	WALFsyncs    int64
	// Replication counters: CommitLSN is the last replicated flush cut
	// this store emitted as a leader; AppliedLSN is the last batch it
	// applied as a follower. Both stay 0 without replication.
	CommitLSN  int64
	AppliedLSN int64
}

// HitRatio is the buffer-pool hit ratio over page lookups, in [0, 1];
// zero when no lookups happened yet.
func (s Stats) HitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// shard is one slice of the buffer pool: its own page map, LRU list, and
// capacity, guarded by its own mutex. The pad keeps hot shard headers on
// separate cache lines.
type shard struct {
	mu         sync.Mutex
	cache      map[uint32]*cached
	head, tail *cached // LRU list, most recent at head
	capacity   int
	_          [24]byte
}

// pager manages the page file and the sharded buffer pool.
//
// Locking: each page id maps to exactly one shard and every access to a
// page's cache entry happens under that shard's mutex; at most one shard
// mutex is ever held at a time by readers (read-ahead walks the leaf
// chain one page — one shard lock — at a time), so shard locks cannot
// deadlock. npages and all counters are atomics.
//
// Page buffers are immutable: install replaces a cache entry's buf
// pointer with a freshly serialized image and never copies into a live
// buffer, so a snapshot reader that obtained the old slice keeps a
// consistent pre-commit image without holding any lock. Each entry is
// stamped with the epoch of the commit that installed it (disk fetches
// stamp the current committed epoch, a conservative upper bound); the
// snapshot read path compares that stamp against its own epoch to decide
// whether to consult the retained-version table (mvcc.go).
//
// The mem slice of the memory backend is guarded by memMu (it is
// appended to at commit publish and indexed by concurrent lock-free
// readers). File growth is logical only — npages is stored at commit
// publish under the DB's publishMu, so a write-ahead-log commit record
// always names a page count consistent with the batch it covers.
type pager struct {
	file   File // nil for the memory backend
	memMu  sync.Mutex
	mem    [][]byte // memory backend pages, guarded by memMu
	npages atomic.Uint32
	epoch  atomic.Uint64 // last committed epoch (mirror of DB.epoch)
	shards [numShards]shard

	// Durability state: fs opens the write-ahead log lazily at walPath
	// (the full <path>.wal name); durable gates the commit protocol and
	// the dirty-page pinning in insertLocked.
	fs      VFS
	walPath string
	wal     File
	durable bool

	// evictErr records the first write error hit while evicting a dirty
	// page (the page stays cached and dirty); the next sync surfaces it
	// after re-flushing, so a torn eviction is never silently absorbed.
	evictMu  sync.Mutex
	evictErr error

	reads        atomic.Int64
	writes       atomic.Int64
	ioNanos      atomic.Int64
	hits         atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	readAheads   atomic.Int64
	walBytes     atomic.Int64
	walCommits   atomic.Int64
	recoveries   atomic.Int64
	syncCalls    atomic.Int64
	groupCommits atomic.Int64
	walFsyncs    atomic.Int64
}

// cached is one buffer-pool entry. buf is immutable once installed —
// commits swap the pointer, never the bytes — and epoch records which
// commit installed it (or the committed epoch at fetch time, an upper
// bound, for pages loaded from the backing store).
type cached struct {
	id         uint32
	buf        []byte
	epoch      uint64
	dirty      bool
	prev, next *cached
}

func newPager(f File, capacity int) (*pager, error) {
	if capacity < 8 {
		capacity = 8
	}
	p := &pager{file: f}
	perShard := (capacity + numShards - 1) / numShards
	if perShard < 1 {
		perShard = 1
	}
	for i := range p.shards {
		p.shards[i].cache = map[uint32]*cached{}
		p.shards[i].capacity = perShard
	}
	if f != nil {
		size, err := f.Size()
		if err != nil {
			return nil, err
		}
		if size%PageSize != 0 {
			return nil, fmt.Errorf("kvstore: file size %d is not page aligned (truncated or corrupt)", size)
		}
		p.npages.Store(uint32(size / PageSize))
	}
	return p, nil
}

func (p *pager) shardOf(id uint32) *shard { return &p.shards[id&(numShards-1)] }

// alloc appends a fresh zeroed page and returns its id. It is only used
// while initializing an empty store (before any concurrency exists);
// writer transactions allocate privately and publish their page count at
// commit (DB.walloc / commitWrite).
func (p *pager) alloc() uint32 {
	id := p.npages.Add(1) - 1
	c := &cached{id: id, buf: make([]byte, PageSize), dirty: true}
	if p.file == nil {
		p.memMu.Lock()
		p.mem = append(p.mem, nil)
		p.memMu.Unlock()
	}
	s := p.shardOf(id)
	lockTimed(&s.mu, shardLockWait)
	p.insertLocked(s, c)
	s.mu.Unlock()
	return id
}

// setNpages publishes a committed page count, growing the memory
// backend's slice to cover it. Called under the DB's publishMu.
func (p *pager) setNpages(n uint32) {
	if p.file == nil {
		p.memMu.Lock()
		for uint32(len(p.mem)) < n {
			p.mem = append(p.mem, nil)
		}
		p.memMu.Unlock()
	}
	p.npages.Store(n)
}

// read returns the current committed page buffer. The buffer is
// immutable — callers may retain and decode it without any lock.
func (p *pager) read(id uint32) ([]byte, error) {
	buf, _, err := p.readStamped(id)
	return buf, err
}

// readStamped returns the current page buffer plus the epoch stamp of
// the commit that installed it. Pages fetched from the backing store are
// stamped with the committed epoch at fetch time — an upper bound on the
// image's true epoch, which at worst sends a snapshot reader on a
// harmless retained-version lookup that finds nothing.
func (p *pager) readStamped(id uint32) ([]byte, uint64, error) {
	s := p.shardOf(id)
	lockTimed(&s.mu, shardLockWait)
	defer s.mu.Unlock()
	if c, ok := s.cache[id]; ok {
		p.hits.Add(1)
		p.touchLocked(s, c)
		return c.buf, c.epoch, nil
	}
	p.misses.Add(1)
	c, err := p.fetchLocked(s, id)
	if err != nil {
		return nil, 0, err
	}
	return c.buf, c.epoch, nil
}

// fetchLocked loads a page absent from the pool from the backing store
// and inserts it. Callers hold s.mu and have counted the miss.
func (p *pager) fetchLocked(s *shard, id uint32) (*cached, error) {
	if id >= p.npages.Load() {
		return nil, fmt.Errorf("kvstore: page %d out of range (%d pages)", id, p.npages.Load())
	}
	buf := make([]byte, PageSize)
	if p.file != nil {
		start := time.Now()
		_, err := p.file.ReadAt(buf, int64(id)*PageSize)
		p.ioNanos.Add(int64(time.Since(start)))
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("kvstore: read page %d: %w", id, err)
		}
	} else {
		p.memMu.Lock()
		if p.mem[id] != nil {
			copy(buf, p.mem[id])
		}
		p.memMu.Unlock()
	}
	p.reads.Add(1)
	// Stamp after the backing read: the image on stable storage can be no
	// newer than the committed epoch observed afterwards.
	c := &cached{id: id, buf: buf, epoch: p.epoch.Load()}
	p.insertLocked(s, c)
	return c, nil
}

// readAhead walks the leaf sibling chain starting at page id, pulling up
// to k leaves into the pool ahead of a scan cursor. Pages already
// resident cost one map lookup; absent pages are fetched and counted as
// ReadAheads (plus the usual miss/block-read). The walk stops at the end
// of the chain, at a non-leaf page (possible only on corruption), or on
// any I/O error — read-ahead is advisory, so errors are left for the
// scan itself to rediscover and report. It locks one shard at a time.
// The chain it follows is the *current* committed one; a snapshot scan
// over an older epoch still benefits for every leaf the two epochs
// share, and a stray prefetch only warms the pool.
func (p *pager) readAhead(id uint32, k int, leafType byte) {
	for i := 0; i < k && id != 0; i++ {
		if id >= p.npages.Load() {
			return
		}
		s := p.shardOf(id)
		lockTimed(&s.mu, shardLockWait)
		c, ok := s.cache[id]
		if !ok {
			var err error
			p.misses.Add(1)
			c, err = p.fetchLocked(s, id)
			if err != nil {
				s.mu.Unlock()
				return
			}
			p.readAheads.Add(1)
		}
		if c.buf[0] != leafType {
			s.mu.Unlock()
			return
		}
		id = binary.BigEndian.Uint32(c.buf[3:7])
		s.mu.Unlock()
	}
}

// install publishes a committed page image into the pool, marking it
// dirty for the next flush. The entry's buffer pointer is replaced —
// never written through — so readers holding the previous buffer keep a
// consistent image; epoch stamps which commit produced it. Callers hold
// the DB's publishMu (commits and initialization), which also keeps the
// flush collector from observing half a transaction.
func (p *pager) install(id uint32, buf []byte, epoch uint64) {
	s := p.shardOf(id)
	lockTimed(&s.mu, shardLockWait)
	if c, ok := s.cache[id]; ok {
		c.buf = buf
		c.epoch = epoch
		c.dirty = true
		p.touchLocked(s, c)
		s.mu.Unlock()
		return
	}
	c := &cached{id: id, buf: buf, epoch: epoch, dirty: true}
	p.insertLocked(s, c)
	s.mu.Unlock()
}

// insertLocked adds a page at the shard's LRU head, evicting if over
// capacity. Callers hold s.mu.
//
// Eviction policy: a clean victim is simply dropped. A dirty victim is
// flushed in place first — except under the durability protocol, where
// in-place writes are only legal inside a commit, so dirty pages are
// pinned: the scan skips up to evictScan dirty tail entries looking for
// a clean victim and otherwise lets the shard exceed capacity until the
// next Sync unpins everything (memory is bounded by the volume of
// mutations between commits). A dirty flush that fails keeps the page
// cached and dirty, records the error for the next sync to surface, and
// stops evicting — retrying the same doomed write once per insert is
// wasted I/O.
func (p *pager) insertLocked(s *shard, c *cached) {
	s.cache[c.id] = c
	c.next = s.head
	if s.head != nil {
		s.head.prev = c
	}
	s.head = c
	if s.tail == nil {
		s.tail = c
	}
	for len(s.cache) > s.capacity {
		victim := s.tail
		if p.durable {
			for scanned := 0; victim != nil && victim.dirty && scanned < evictScan; scanned++ {
				victim = victim.prev
			}
			if victim == nil || victim.dirty {
				return
			}
		}
		if victim == nil {
			break
		}
		if victim.dirty {
			if err := p.flushLocked(victim); err != nil {
				p.noteEvictErr(victim.id, err)
				return
			}
		}
		s.unlink(victim)
		delete(s.cache, victim.id)
		p.evictions.Add(1)
	}
}

// noteEvictErr records the first eviction write failure for the next
// sync to surface.
func (p *pager) noteEvictErr(id uint32, err error) {
	p.evictMu.Lock()
	if p.evictErr == nil {
		p.evictErr = fmt.Errorf("evict page %d: %w", id, err)
	}
	p.evictMu.Unlock()
}

// takeEvictErr returns and clears the recorded eviction failure, wrapped
// for the Sync caller. The failed page has just been re-flushed and
// fsynced by the caller, so the data is safe — but the caller still
// learns the device misbehaved and can decide whether to trust it.
func (p *pager) takeEvictErr() error {
	p.evictMu.Lock()
	err := p.evictErr
	p.evictErr = nil
	p.evictMu.Unlock()
	if err != nil {
		return fmt.Errorf("kvstore: deferred eviction write error (page since rewritten and synced): %w", err)
	}
	return nil
}

func (p *pager) touchLocked(s *shard, c *cached) {
	if s.head == c {
		return
	}
	s.unlink(c)
	c.next = s.head
	c.prev = nil
	if s.head != nil {
		s.head.prev = c
	}
	s.head = c
	if s.tail == nil {
		s.tail = c
	}
}

func (s *shard) unlink(c *cached) {
	if c.prev != nil {
		c.prev.next = c.next
	} else if s.head == c {
		s.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	} else if s.tail == c {
		s.tail = c.prev
	}
	c.prev, c.next = nil, nil
}

// flushLocked writes one page's current buffer back to the backing store
// (page stays cached; the caller decides whether to evict). Callers hold
// the page's shard mutex, which pins the buffer pointer for the duration
// of the write; the buffer itself is immutable.
func (p *pager) flushLocked(c *cached) error {
	if p.file != nil {
		start := time.Now()
		_, err := p.file.WriteAt(c.buf, int64(c.id)*PageSize)
		p.ioNanos.Add(int64(time.Since(start)))
		if err != nil {
			return err
		}
	} else {
		p.memMu.Lock()
		p.mem[c.id] = append(make([]byte, 0, PageSize), c.buf...)
		p.memMu.Unlock()
	}
	p.writes.Add(1)
	c.dirty = false
	return nil
}

// close releases the file handles (the DB syncs first).
func (p *pager) close() error {
	var first error
	if p.wal != nil {
		first = p.wal.Close()
		p.wal = nil
	}
	if p.file != nil {
		if err := p.file.Close(); first == nil {
			first = err
		}
	}
	return first
}

func (p *pager) stats() Stats {
	return Stats{
		BlocksRead:    p.reads.Load(),
		BlocksWritten: p.writes.Load(),
		IONanos:       p.ioNanos.Load(),
		CacheHits:     p.hits.Load(),
		CacheMisses:   p.misses.Load(),
		Evictions:     p.evictions.Load(),
		ReadAheads:    p.readAheads.Load(),
		WALBytes:      p.walBytes.Load(),
		WALCommits:    p.walCommits.Load(),
		Recoveries:    p.recoveries.Load(),
		Epoch:         int64(p.epoch.Load()),
		SyncCalls:     p.syncCalls.Load(),
		GroupCommits:  p.groupCommits.Load(),
		WALFsyncs:     p.walFsyncs.Load(),
	}
}
