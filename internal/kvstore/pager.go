// Package kvstore is a single-file, page-oriented B+tree key-value store —
// the storage substrate standing in for BerkeleyDB Java Edition in the
// paper's architecture (Section VIII). It provides ordered iteration
// (needed for the TypeToSequence scans of the renderer), a buffer pool
// with LRU eviction, and block read/write counters that the benchmark
// harness samples to regenerate the paper's vmstat figures (Figs. 11-12).
package kvstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// PageSize is the fixed on-disk page size.
const PageSize = 4096

const magic = "XMKV1\x00\x00\x00"

// Stats holds cumulative I/O counters. Reads and writes are whole pages
// ("blocks" in the vmstat sense). IONanos accumulates wall time spent
// inside file reads and writes; the benchmark harness derives the paper's
// wait-percentage figure (Fig. 12) from it. The buffer-pool counters
// (CacheHits/CacheMisses/Evictions) and the operation counters
// (Gets/Puts/Deletes/Seeks) feed the observability layer's per-span
// page-I/O accounting.
type Stats struct {
	BlocksRead    int64
	BlocksWritten int64
	IONanos       int64
	// CacheHits/CacheMisses count page lookups served from / missing the
	// buffer pool; Evictions counts pages pushed out by LRU pressure.
	CacheHits   int64
	CacheMisses int64
	Evictions   int64
	// Gets/Puts/Deletes/Seeks count B+tree operations (a Seek starts one
	// ordered scan; each scan re-reads pages through the pool).
	Gets    int64
	Puts    int64
	Deletes int64
	Seeks   int64
	// FastPathHits counts Puts served by the sorted-insert leaf cache
	// (no root-to-leaf descent); BatchedPuts counts Puts that arrived
	// through PutBatch. Both are subsets of Puts.
	FastPathHits int64
	BatchedPuts  int64
}

// HitRatio is the buffer-pool hit ratio over page lookups, in [0, 1];
// zero when no lookups happened yet.
func (s Stats) HitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// pager manages the page file and the buffer pool.
type pager struct {
	mu    sync.Mutex
	file  *os.File // nil for the memory backend
	mem   [][]byte // memory backend pages
	cache map[uint32]*cached
	// lru is a doubly linked list of cached pages, most recent at head.
	head, tail *cached
	capacity   int
	npages     uint32
	reads      int64
	writes     int64
	ioNanos    int64
	hits       int64
	misses     int64
	evictions  int64
}

type cached struct {
	id         uint32
	buf        []byte
	dirty      bool
	prev, next *cached
}

func newPager(f *os.File, capacity int) (*pager, error) {
	if capacity < 8 {
		capacity = 8
	}
	p := &pager{file: f, cache: map[uint32]*cached{}, capacity: capacity}
	if f != nil {
		fi, err := f.Stat()
		if err != nil {
			return nil, err
		}
		if fi.Size()%PageSize != 0 {
			return nil, fmt.Errorf("kvstore: file size %d is not page aligned (truncated or corrupt)", fi.Size())
		}
		p.npages = uint32(fi.Size() / PageSize)
	}
	return p, nil
}

// alloc appends a fresh zeroed page and returns its id.
func (p *pager) alloc() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.npages
	p.npages++
	c := &cached{id: id, buf: make([]byte, PageSize), dirty: true}
	p.insert(c)
	if p.file == nil {
		p.mem = append(p.mem, nil)
	}
	return id
}

// read returns the page buffer; the caller must not retain it across other
// pager calls unless it pins the cache by holding no more than capacity
// pages (the B+tree copies what it needs).
func (p *pager) read(id uint32) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.cache[id]; ok {
		atomic.AddInt64(&p.hits, 1)
		p.touch(c)
		return c.buf, nil
	}
	if id >= p.npages {
		return nil, fmt.Errorf("kvstore: page %d out of range (%d pages)", id, p.npages)
	}
	atomic.AddInt64(&p.misses, 1)
	buf := make([]byte, PageSize)
	if p.file != nil {
		start := time.Now()
		_, err := p.file.ReadAt(buf, int64(id)*PageSize)
		atomic.AddInt64(&p.ioNanos, int64(time.Since(start)))
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("kvstore: read page %d: %w", id, err)
		}
	} else if p.mem[id] != nil {
		copy(buf, p.mem[id])
	}
	atomic.AddInt64(&p.reads, 1)
	c := &cached{id: id, buf: buf}
	p.insert(c)
	return c.buf, nil
}

// write replaces a page's contents and marks it dirty.
func (p *pager) write(id uint32, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.cache[id]; ok {
		copy(c.buf, buf)
		c.dirty = true
		p.touch(c)
		return nil
	}
	if id >= p.npages {
		return fmt.Errorf("kvstore: write page %d out of range", id)
	}
	c := &cached{id: id, buf: append(make([]byte, 0, PageSize), buf...), dirty: true}
	p.insert(c)
	return nil
}

// insert adds a page at the LRU head, evicting if over capacity. Callers
// hold p.mu.
func (p *pager) insert(c *cached) {
	p.cache[c.id] = c
	c.next = p.head
	if p.head != nil {
		p.head.prev = c
	}
	p.head = c
	if p.tail == nil {
		p.tail = c
	}
	for len(p.cache) > p.capacity {
		victim := p.tail
		if victim == nil {
			break
		}
		p.unlink(victim)
		delete(p.cache, victim.id)
		atomic.AddInt64(&p.evictions, 1)
		if victim.dirty {
			p.flushLocked(victim)
		}
	}
}

func (p *pager) touch(c *cached) {
	if p.head == c {
		return
	}
	p.unlink(c)
	c.next = p.head
	c.prev = nil
	if p.head != nil {
		p.head.prev = c
	}
	p.head = c
	if p.tail == nil {
		p.tail = c
	}
}

func (p *pager) unlink(c *cached) {
	if c.prev != nil {
		c.prev.next = c.next
	} else if p.head == c {
		p.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	} else if p.tail == c {
		p.tail = c.prev
	}
	c.prev, c.next = nil, nil
}

// flushLocked writes one page back. Callers hold p.mu.
func (p *pager) flushLocked(c *cached) {
	if p.file != nil {
		// Errors here surface on Sync/Close via a re-write; eviction keeps
		// the page dirty in memory on failure.
		start := time.Now()
		_, err := p.file.WriteAt(c.buf, int64(c.id)*PageSize)
		atomic.AddInt64(&p.ioNanos, int64(time.Since(start)))
		if err != nil {
			p.cache[c.id] = c // keep it so Sync can retry
			return
		}
	} else {
		p.mem[c.id] = append(make([]byte, 0, PageSize), c.buf...)
	}
	atomic.AddInt64(&p.writes, 1)
	c.dirty = false
}

// sync flushes every dirty page.
func (p *pager) sync() error {
	p.mu.Lock()
	for _, c := range p.cache {
		if c.dirty {
			if p.file != nil {
				start := time.Now()
				_, err := p.file.WriteAt(c.buf, int64(c.id)*PageSize)
				atomic.AddInt64(&p.ioNanos, int64(time.Since(start)))
				if err != nil {
					p.mu.Unlock()
					return fmt.Errorf("kvstore: sync page %d: %w", c.id, err)
				}
			} else {
				p.mem[c.id] = append(make([]byte, 0, PageSize), c.buf...)
			}
			atomic.AddInt64(&p.writes, 1)
			c.dirty = false
		}
	}
	p.mu.Unlock()
	if p.file != nil {
		return p.file.Sync()
	}
	return nil
}

func (p *pager) stats() Stats {
	return Stats{
		BlocksRead:    atomic.LoadInt64(&p.reads),
		BlocksWritten: atomic.LoadInt64(&p.writes),
		IONanos:       atomic.LoadInt64(&p.ioNanos),
		CacheHits:     atomic.LoadInt64(&p.hits),
		CacheMisses:   atomic.LoadInt64(&p.misses),
		Evictions:     atomic.LoadInt64(&p.evictions),
	}
}

var _ = binary.BigEndian // used by btree.go page codecs
