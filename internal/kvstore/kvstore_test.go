package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

func TestPutGet(t *testing.T) {
	db := OpenMemory(nil)
	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := db.Get([]byte("missing")); ok {
		t.Error("missing key found")
	}
	// Overwrite.
	if err := db.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = db.Get([]byte("k1"))
	if string(v) != "v2" {
		t.Errorf("overwrite: got %q", v)
	}
}

func TestPutValidation(t *testing.T) {
	db := OpenMemory(nil)
	if err := db.Put(nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
	if err := db.Put(bytes.Repeat([]byte("k"), MaxKeySize+1), []byte("v")); err == nil {
		t.Error("oversized key accepted")
	}
	if err := db.Put([]byte("k"), bytes.Repeat([]byte("v"), MaxValueSize+1)); err == nil {
		t.Error("oversized value accepted")
	}
	if err := db.Put([]byte("k"), bytes.Repeat([]byte("v"), MaxValueSize)); err != nil {
		t.Errorf("max-size value rejected: %v", err)
	}
}

func TestSplitsManyKeys(t *testing.T) {
	db := OpenMemory(&Options{CachePages: 16})
	const n = 5000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := []byte(fmt.Sprintf("value-%d", i*i))
		if err := db.Put(k, v); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, ok, err := db.Get(k)
		if err != nil || !ok {
			t.Fatalf("get %d: %v %v", i, ok, err)
		}
		if want := fmt.Sprintf("value-%d", i*i); string(v) != want {
			t.Fatalf("get %d = %q, want %q", i, v, want)
		}
	}
}

func TestIteratorOrder(t *testing.T) {
	db := OpenMemory(nil)
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for _, k := range keys {
		if err := db.Put([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for it := db.First(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("iterator order = %v, want %v", got, want)
	}
}

func TestSeekAndRange(t *testing.T) {
	db := OpenMemory(nil)
	for i := 0; i < 100; i += 2 {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	it := db.Seek([]byte("k051"))
	if !it.Valid() || string(it.Key()) != "k052" {
		t.Errorf("Seek(k051) = %q", it.Key())
	}
	var count int
	err := db.Ascend([]byte("k010"), []byte("k020"), func(k, v []byte) bool {
		count++
		return true
	})
	if err != nil || count != 5 {
		t.Errorf("Ascend count = %d (err %v), want 5", count, err)
	}
}

func TestAscendPrefix(t *testing.T) {
	db := OpenMemory(nil)
	for _, k := range []string{"a/1", "a/2", "b/1", "a/3", "c"} {
		db.Put([]byte(k), []byte("v"))
	}
	var got []string
	db.AscendPrefix([]byte("a/"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if fmt.Sprint(got) != "[a/1 a/2 a/3]" {
		t.Errorf("prefix scan = %v", got)
	}
}

func TestDelete(t *testing.T) {
	db := OpenMemory(nil)
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	for i := 0; i < 500; i += 2 {
		if err := db.Delete([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete([]byte("absent")); err != nil {
		t.Errorf("delete absent: %v", err)
	}
	for i := 0; i < 500; i++ {
		_, ok, _ := db.Get([]byte(fmt.Sprintf("k%04d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("after delete, Get(%d) ok=%v want %v", i, ok, want)
		}
	}
}

// TestModelEquivalence drives the store with random operations and checks
// every observable against a map model.
func TestModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := OpenMemory(&Options{CachePages: 8}) // tiny cache: force eviction
	model := map[string]string{}
	key := func() []byte { return []byte(fmt.Sprintf("key-%03d", rng.Intn(300))) }
	for op := 0; op < 20000; op++ {
		switch rng.Intn(4) {
		case 0, 1: // put
			k := key()
			v := []byte(fmt.Sprintf("val-%d", rng.Intn(1000000)))
			if err := db.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[string(k)] = string(v)
		case 2: // get
			k := key()
			v, ok, err := db.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			mv, mok := model[string(k)]
			if ok != mok || (ok && string(v) != mv) {
				t.Fatalf("op %d: Get(%s) = %q,%v; model %q,%v", op, k, v, ok, mv, mok)
			}
		case 3: // delete
			k := key()
			if err := db.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, string(k))
		}
	}
	// Full scan must equal the sorted model.
	var modelKeys []string
	for k := range model {
		modelKeys = append(modelKeys, k)
	}
	sort.Strings(modelKeys)
	var gotKeys []string
	for it := db.First(); it.Valid(); it.Next() {
		gotKeys = append(gotKeys, string(it.Key()))
		if model[string(it.Key())] != string(it.Value()) {
			t.Fatalf("scan value mismatch at %s", it.Key())
		}
	}
	if fmt.Sprint(gotKeys) != fmt.Sprint(modelKeys) {
		t.Fatalf("scan keys = %d entries, model %d", len(gotKeys), len(modelKeys))
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 2000; i += 97 {
		v, ok, err := db2.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("reopen Get(%d) = %q %v %v", i, v, ok, err)
		}
	}
	count := 0
	for it := db2.First(); it.Valid(); it.Next() {
		count++
	}
	if count != 2000 {
		t.Errorf("reopened scan = %d keys, want 2000", count)
	}
}

func TestCorruptFileRejected(t *testing.T) {
	dir := t.TempDir()

	// Truncated (unaligned) file.
	bad1 := filepath.Join(dir, "trunc.db")
	if err := os.WriteFile(bad1, make([]byte, PageSize+100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad1, nil); err == nil {
		t.Error("unaligned file accepted")
	}

	// Bad magic.
	bad2 := filepath.Join(dir, "magic.db")
	buf := make([]byte, 2*PageSize)
	copy(buf, "NOTASTORE")
	if err := os.WriteFile(bad2, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad2, nil); err == nil {
		t.Error("bad magic accepted")
	}

	// Corrupt root pointer.
	bad3 := filepath.Join(dir, "root.db")
	buf3 := make([]byte, 2*PageSize)
	copy(buf3, magic)
	buf3[8], buf3[9], buf3[10], buf3[11] = 0xFF, 0xFF, 0xFF, 0xFF
	if err := os.WriteFile(bad3, buf3, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad3, nil); err == nil {
		t.Error("corrupt root accepted")
	}
}

func TestStatsCount(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(filepath.Join(dir, "s.db"), &Options{CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("k%06d", i)), bytes.Repeat([]byte("x"), 100))
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.BlocksWritten == 0 {
		t.Error("no blocks written after sync")
	}
	// Scan with a tiny cache: must read pages back in.
	for it := db.First(); it.Valid(); it.Next() {
	}
	st2 := db.Stats()
	if st2.BlocksRead == 0 {
		t.Error("no blocks read during cold-ish scan")
	}
}

func TestLargeValuesAcrossSplits(t *testing.T) {
	db := OpenMemory(&Options{CachePages: 8})
	val := bytes.Repeat([]byte("z"), MaxValueSize)
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("big-%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		v, ok, err := db.Get([]byte(fmt.Sprintf("big-%04d", i)))
		if err != nil || !ok || len(v) != MaxValueSize {
			t.Fatalf("big value %d: ok=%v err=%v len=%d", i, ok, err, len(v))
		}
	}
}

func TestRandomInsertionOrders(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := OpenMemory(&Options{CachePages: 8})
		perm := rng.Perm(1500)
		for _, i := range perm {
			if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		prev := ""
		count := 0
		for it := db.First(); it.Valid(); it.Next() {
			if string(it.Key()) <= prev {
				t.Fatalf("seed %d: keys out of order: %q after %q", seed, it.Key(), prev)
			}
			prev = string(it.Key())
			count++
		}
		if count != 1500 {
			t.Fatalf("seed %d: scan count = %d", seed, count)
		}
	}
}

func TestSeekBeyondLast(t *testing.T) {
	db := OpenMemory(nil)
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	it := db.Seek([]byte("zzz"))
	if it.Valid() {
		t.Errorf("Seek past end should be invalid, at %q", it.Key())
	}
	it.Next() // must not panic
	if it.Err() != nil {
		t.Errorf("err after exhausted iterator: %v", it.Err())
	}
}

func TestIteratorAfterDeletes(t *testing.T) {
	db := OpenMemory(&Options{CachePages: 8})
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	for i := 0; i < 1000; i += 3 {
		db.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	count := 0
	prev := ""
	for it := db.First(); it.Valid(); it.Next() {
		if string(it.Key()) <= prev {
			t.Fatalf("order violated after deletes")
		}
		prev = string(it.Key())
		count++
	}
	if count != 1000-334 {
		t.Errorf("count after deletes = %d, want %d", count, 1000-334)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	db := OpenMemory(nil)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	count := 0
	db.Ascend(nil, nil, func(k, v []byte) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop at %d, want 10", count)
	}
}

func TestSplitPointHandlesSkewedEntries(t *testing.T) {
	// Many tiny entries plus several near-max entries that sort adjacent:
	// the byte-balanced split must keep both halves under a page.
	db := OpenMemory(&Options{CachePages: 8})
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("a%03d", i)), []byte("t")); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte("B"), MaxValueSize)
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte(fmt.Sprintf("a%03dz", i*10)), big); err != nil {
			t.Fatalf("skewed insert %d: %v", i, err)
		}
	}
	count := 0
	for it := db.First(); it.Valid(); it.Next() {
		count++
	}
	if count != 220 {
		t.Errorf("count = %d, want 220", count)
	}
}

func TestIterateEmptyStore(t *testing.T) {
	db := OpenMemory(nil)
	if it := db.First(); it.Valid() {
		t.Error("empty store iterator should be invalid")
	}
	count := 0
	db.Ascend(nil, nil, func(k, v []byte) bool { count++; return true })
	if count != 0 {
		t.Errorf("empty ascend visited %d", count)
	}
}

func TestGetOnEmptyStore(t *testing.T) {
	db := OpenMemory(nil)
	if _, ok, err := db.Get([]byte("x")); ok || err != nil {
		t.Errorf("empty get = %v %v", ok, err)
	}
}

func TestBufferPoolAndOpCounters(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "bp.db"), &Options{CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), bytes.Repeat([]byte("x"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := db.Get([]byte(fmt.Sprintf("k%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	db.Delete([]byte("k000000"))
	for it := db.First(); it.Valid(); it.Next() {
	}

	st := db.Stats()
	if st.Puts != 3000 {
		t.Errorf("Puts = %d, want 3000", st.Puts)
	}
	if st.Gets != 100 {
		t.Errorf("Gets = %d, want 100", st.Gets)
	}
	if st.Deletes != 1 {
		t.Errorf("Deletes = %d, want 1", st.Deletes)
	}
	if st.Seeks != 1 {
		t.Errorf("Seeks = %d, want 1", st.Seeks)
	}
	// 3000 entries across an 8-page pool must both hit and miss, and the
	// pool must have evicted; misses equal pages read from the backing
	// store.
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Errorf("hits=%d misses=%d, want both positive", st.CacheHits, st.CacheMisses)
	}
	if st.Evictions == 0 {
		t.Error("no evictions on an overflowing pool")
	}
	if st.CacheMisses != st.BlocksRead {
		t.Errorf("misses=%d != blocks read=%d", st.CacheMisses, st.BlocksRead)
	}
	if r := st.HitRatio(); r <= 0 || r >= 1 {
		t.Errorf("hit ratio = %f, want in (0,1)", r)
	}
}

func TestHitRatioEmptyStats(t *testing.T) {
	if r := (Stats{}).HitRatio(); r != 0 {
		t.Errorf("zero stats hit ratio = %f, want 0", r)
	}
}
