package kvstore

import (
	"errors"
	"fmt"
	"sync"
)

// Replication: committed flush batches as a subscription feed.
//
// The group-commit flush already captures a consistent cut of the
// committed state under publishMu (see groupcommit.go). Replication
// rides that cut: while any subscriber is registered, every commit
// records the page ids it rewrote in a replication dirty set, and each
// flush packages the current committed images of those pages — plus the
// (root, epoch, page count) triple of the cut — into a CommitBatch
// numbered by a monotone LSN. Subscribers receive batches strictly in
// LSN order through an unbounded per-subscriber queue, so a slow
// follower never stalls the leader's commit path.
//
// A new subscription starts with a bootstrap batch: the full page image
// of the store at the subscription instant, captured under the same
// publishMu that orders it against in-flight flush cuts. Applying the
// bootstrap and then every subsequent batch in order reproduces the
// leader's committed state at each cut — page images are whole-page and
// idempotent, so a batch that overlaps the bootstrap (pages dirtied
// before the subscription but flushed after) rewrites identical or
// newer bytes, never older ones.
//
// The replication dirty set is tracked independently of the pager's
// flush dirty flags on purpose: under the non-durable protocol an
// evicted dirty page is flushed (and its flag cleared) outside any
// commit, which would silently drop it from a dirty-flag-derived batch.
// The replication set is only cleared when a batch carrying those pages
// has been handed to every subscriber.

// CommitPage is one replicated page image. Data aliases the leader's
// immutable pool buffer — receivers must copy before mutating (DB.
// ApplyCommitBatch does).
type CommitPage struct {
	ID   uint32
	Data []byte
}

// CommitBatch is one committed consistent cut of a store: the pages that
// changed since the previous batch (or, for a bootstrap, every page),
// plus the committed root, epoch, and page count of the cut. LSN numbers
// batches per leader store, starting at 0 for the bootstrap state.
type CommitBatch struct {
	// LSN is the batch's commit sequence number: 1 + the number of
	// replicated flush cuts before it. A subscription's bootstrap batch
	// carries the LSN of the last cut it already covers.
	LSN uint64
	// Epoch, Root, and Npages are the committed MVCC state of the cut;
	// the follower publishes them after adding its rebase offset (see
	// ApplyCommitBatch), preserving the leader's commit order.
	Epoch  uint64
	Root   uint32
	Npages uint32
	Pages  []CommitPage
}

// CommitSub is one subscriber's ordered feed of commit batches. Next
// blocks until a batch is available (or the subscription is closed);
// batches arrive in strictly ascending LSN order, bootstrap first.
type CommitSub struct {
	db     *DB
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []CommitBatch
	closed bool
}

func newCommitSub(db *DB) *CommitSub {
	s := &CommitSub{db: db}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push enqueues a batch. Emission call sites hold the leader's publishMu
// (subscription bootstrap, flush collect), which is what serializes the
// LSN order across the fleet of subscribers.
func (s *CommitSub) push(b CommitBatch) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, b)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// Next returns the next batch in LSN order, blocking until one arrives.
// The second result is false once the subscription is closed and the
// queue is drained — followers should exit their apply loop then.
func (s *CommitSub) Next() (CommitBatch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return CommitBatch{}, false
	}
	b := s.queue[0]
	s.queue = s.queue[1:]
	return b, true
}

// Pending reports the batches queued but not yet taken by Next — the
// subscriber's apply backlog.
func (s *CommitSub) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Close detaches the subscription from the leader (no further batches
// accumulate on its behalf) and wakes a blocked Next. Idempotent.
func (s *CommitSub) Close() {
	db := s.db
	if db != nil {
		lockTimed(&db.publishMu, publishLockWait)
		for i, sub := range db.repSubs {
			if sub == s {
				db.repSubs = append(db.repSubs[:i], db.repSubs[i+1:]...)
				break
			}
		}
		if len(db.repSubs) == 0 {
			clear(db.repDirty)
		}
		db.publishMu.Unlock()
	}
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SubscribeCommits registers a replication subscriber and returns its
// feed. The first batch is a bootstrap: the complete committed page
// image at the subscription instant. Every later flush of the store
// delivers one incremental batch. The subscription must be Closed when
// the follower detaches; DB.Close closes every remaining subscription.
func (db *DB) SubscribeCommits() (*CommitSub, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	sub := newCommitSub(db)
	lockTimed(&db.publishMu, publishLockWait)
	npages := db.pager.npages.Load()
	boot := CommitBatch{
		LSN:    db.commitLSN.Load(),
		Epoch:  db.epoch,
		Root:   db.root,
		Npages: npages,
		Pages:  make([]CommitPage, 0, npages),
	}
	for id := uint32(0); id < npages; id++ {
		buf, err := db.pager.read(id)
		if err != nil {
			db.publishMu.Unlock()
			return nil, fmt.Errorf("kvstore: bootstrap page %d: %w", id, err)
		}
		boot.Pages = append(boot.Pages, CommitPage{ID: id, Data: buf})
	}
	db.repSubs = append(db.repSubs, sub)
	// Push under publishMu: a concurrent flush cut orders strictly after
	// the bootstrap in every subscriber queue.
	sub.push(boot)
	db.publishMu.Unlock()
	return sub, nil
}

// CommitLSN returns the sequence number of the last replicated flush
// cut. A reader that wants read-your-writes against a follower compares
// this — captured after its writes synced — with the follower's last
// applied LSN.
func (db *DB) CommitLSN() uint64 { return db.commitLSN.Load() }

// collectReplication packages the replication dirty set into a batch for
// the registered subscribers and resets the set. Called by flushBatch
// under publishMu — the same lock that publishes commits — so the batch
// is exactly the flush's consistent cut. Returns the subscribers to
// deliver to (captured now: a subscriber registered after this cut
// bootstraps from a state that already covers it) or nil when there is
// nothing to replicate.
func (db *DB) collectReplication() (*CommitBatch, []*CommitSub, error) {
	if len(db.repSubs) == 0 || len(db.repDirty) == 0 {
		return nil, nil, nil
	}
	b := &CommitBatch{
		LSN:    db.commitLSN.Add(1),
		Epoch:  db.epoch,
		Root:   db.root,
		Npages: db.pager.npages.Load(),
		Pages:  make([]CommitPage, 0, len(db.repDirty)),
	}
	for id := range db.repDirty {
		buf, err := db.pager.read(id)
		if err != nil {
			return nil, nil, fmt.Errorf("kvstore: replicate page %d: %w", id, err)
		}
		b.Pages = append(b.Pages, CommitPage{ID: id, Data: buf})
	}
	clear(db.repDirty)
	subs := append([]*CommitSub(nil), db.repSubs...)
	return b, subs, nil
}

// ErrClosed reports an operation against a DB after Close.
var ErrClosed = errors.New("kvstore: database is closed")

// ErrBatchOrder reports a replicated batch applied out of order (the
// follower's committed epoch is already at or past the batch's).
var ErrBatchOrder = errors.New("kvstore: commit batch out of order")

// ApplyCommitBatch installs a replicated batch as this store's next
// committed state: page images install copy-on-write into the pool,
// superseded images are retained for open snapshots, and the batch's
// (root, epoch, page count) publish atomically — full MVCC snapshot
// semantics for follower reads. Batches must apply in the order
// received; a batch whose epoch falls behind the follower's committed
// state fails ErrBatchOrder (equality is allowed — an overlap batch
// rewrites identical bytes).
//
// Follower epochs are the leader's plus a fixed rebase offset, pinned
// at the first applied batch: a follower may already have local commits
// (its own initialization), and a reopened file-backed leader restarts
// its epoch counter, so raw leader epochs can sit at or below the
// follower's. The offset lifts the feed strictly past the follower's
// own history while preserving the leader's ordering.
func (db *DB) ApplyCommitBatch(b CommitBatch) error {
	if db.closed.Load() {
		return ErrClosed
	}
	db.writerMu.Lock()
	defer db.writerMu.Unlock()
	lockTimed(&db.publishMu, publishLockWait)
	if !db.repShifted {
		if b.Epoch <= db.epoch {
			db.epochShift = db.epoch + 1 - b.Epoch
		}
		db.repShifted = true
	}
	epoch := b.Epoch + db.epochShift
	if epoch < db.epoch {
		db.publishMu.Unlock()
		return fmt.Errorf("%w: batch epoch %d behind committed %d", ErrBatchOrder, epoch, db.epoch)
	}
	oldNpages := db.pager.npages.Load()
	if len(db.pins) > 0 {
		for _, pg := range b.Pages {
			if pg.ID >= oldNpages {
				continue // fresh page: no prior image to retain
			}
			img, err := db.pager.read(pg.ID)
			if err != nil {
				db.publishMu.Unlock()
				return err
			}
			db.retain(pg.ID, img, epoch)
		}
	}
	if b.Npages > oldNpages {
		db.pager.setNpages(b.Npages)
	}
	for _, pg := range b.Pages {
		buf := make([]byte, PageSize)
		copy(buf, pg.Data)
		db.pager.install(pg.ID, buf, epoch)
	}
	db.root = b.Root
	db.epoch = epoch
	db.pager.epoch.Store(epoch)
	db.publishMu.Unlock()
	// The header/fast-path caches may describe the pre-apply tree.
	db.hdrValid = false
	db.fastValid = false
	db.appliedLSN.Store(b.LSN)
	return nil
}

// AppliedLSN returns the LSN of the last batch this store applied as a
// replication follower (zero for a store that never applied one).
func (db *DB) AppliedLSN() uint64 { return db.appliedLSN.Load() }

// closeSubs closes every remaining subscription so follower apply loops
// observe the shutdown. Called by DB.Close.
func (db *DB) closeSubs() {
	lockTimed(&db.publishMu, publishLockWait)
	subs := append([]*CommitSub(nil), db.repSubs...)
	db.repSubs = nil
	clear(db.repDirty)
	db.publishMu.Unlock()
	for _, s := range subs {
		s.mu.Lock()
		s.closed = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}
