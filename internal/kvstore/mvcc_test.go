package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotStableAcrossCommits: a snapshot keeps answering from its
// epoch no matter how many commits land after it opened.
func TestSnapshotStableAcrossCommits(t *testing.T) {
	db := OpenMemory(nil)
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v0")); err != nil {
		t.Fatal(err)
	}
	s := db.OpenSnapshot()
	defer s.Close()
	e := s.Epoch()
	for i := 1; i <= 100; i++ {
		if err := db.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok, err := s.Get([]byte("k")); err != nil || !ok || string(v) != "v0" {
		t.Fatalf("snapshot Get = %q, %v, %v; want frozen v0", v, ok, err)
	}
	if s.Epoch() != e {
		t.Fatalf("snapshot epoch moved: %d -> %d", e, s.Epoch())
	}
	if v, _, _ := db.Get([]byte("k")); string(v) != "v100" {
		t.Fatalf("committed Get = %q, want v100", v)
	}
}

// TestSnapshotEpochIsolation runs 8 snapshot readers against a
// committing writer under -race. The writer commits rounds where every
// key of the round carries the same round number (one PutBatch = one
// epoch); a reader that opens a snapshot must see a single uniform
// round across all keys — a mixed view would mean it straddled a
// commit — and re-reads through the same snapshot must stay identical.
func TestSnapshotEpochIsolation(t *testing.T) {
	db := OpenMemory(&Options{CachePages: 32}) // small pool: force version retention + disk-less eviction
	defer db.Close()
	const (
		keys    = 16
		rounds  = 200
		readers = 8
	)
	key := func(i int) []byte { return []byte(fmt.Sprintf("key%02d", i)) }
	commit := func(round int) error {
		ks := make([][]byte, keys)
		vs := make([][]byte, keys)
		for i := range ks {
			ks[i] = key(i)
			vs[i] = []byte(fmt.Sprintf("round%06d", round))
		}
		return db.PutBatch(ks, vs)
	}
	if err := commit(0); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s := db.OpenSnapshot()
				var first []byte
				for i := 0; i < keys; i++ {
					v, ok, err := s.Get(key(i))
					if err != nil || !ok {
						errs <- fmt.Errorf("snapshot Get(%s) = %v, %v", key(i), ok, err)
						s.Close()
						return
					}
					if first == nil {
						first = append([]byte(nil), v...)
					} else if !bytes.Equal(first, v) {
						errs <- fmt.Errorf("epoch %d: torn view: key00=%s but %s=%s", s.Epoch(), first, key(i), v)
						s.Close()
						return
					}
				}
				// Re-read through the same snapshot: must be unchanged even
				// though the writer kept committing meanwhile.
				if v, _, _ := s.Get(key(0)); !bytes.Equal(v, first) {
					errs <- fmt.Errorf("epoch %d: re-read moved: %s -> %s", s.Epoch(), first, v)
					s.Close()
					return
				}
				s.Close()
			}
		}()
	}
	for round := 1; round <= rounds; round++ {
		if err := commit(round); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// With every snapshot closed, retained versions must drain to zero on
	// the next close cycle (the last Close prunes to the committed epoch).
	s := db.OpenSnapshot()
	s.Close()
	st := db.Stats()
	if st.SnapshotsOpen != 0 {
		t.Errorf("SnapshotsOpen = %d after all closes", st.SnapshotsOpen)
	}
	if st.PagesRetained != 0 {
		t.Errorf("PagesRetained = %d after all snapshots closed, want 0", st.PagesRetained)
	}
	if st.Epoch < int64(rounds) {
		t.Errorf("Epoch = %d, want >= %d", st.Epoch, rounds)
	}
}

// TestSnapshotSeesRetainedIterator: an iterator opened before a burst of
// commits scans the old tree even after its pages were superseded and
// the tree regrew elsewhere.
func TestSnapshotIteratorFrozen(t *testing.T) {
	db := OpenMemory(&Options{CachePages: 16})
	defer db.Close()
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("a%03d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	s := db.OpenSnapshot()
	defer s.Close()
	// Supersede everything: overwrite all values and add new keys.
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("a%03d", i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
		if err := db.Put([]byte(fmt.Sprintf("z%03d", i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := s.Ascend(nil, nil, func(k, v []byte) bool {
		if string(v) != "old" {
			t.Errorf("snapshot scan saw %s=%s", k, v)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Errorf("snapshot scan saw %d keys, want 50", count)
	}
	// The committed view sees all 100.
	count = 0
	if err := db.Ascend(nil, nil, func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Errorf("committed scan saw %d keys, want 100", count)
	}
}

// TestSnapshotCloseIdempotent: double-Close must not unbalance the pin
// registry.
func TestSnapshotCloseIdempotent(t *testing.T) {
	db := OpenMemory(nil)
	defer db.Close()
	s1 := db.OpenSnapshot()
	s2 := db.OpenSnapshot()
	s1.Close()
	s1.Close()
	if got := db.Stats().SnapshotsOpen; got != 1 {
		t.Fatalf("SnapshotsOpen = %d after double close, want 1", got)
	}
	s2.Close()
	if got := db.Stats().SnapshotsOpen; got != 0 {
		t.Fatalf("SnapshotsOpen = %d, want 0", got)
	}
}

// TestIteratorCloseEarly: abandoning an owned iterator mid-scan via
// Close releases its snapshot pin.
func TestIteratorCloseEarly(t *testing.T) {
	db := OpenMemory(nil)
	defer db.Close()
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	it := db.First()
	if !it.Valid() {
		t.Fatal("iterator empty")
	}
	if got := db.Stats().SnapshotsOpen; got != 1 {
		t.Fatalf("SnapshotsOpen = %d mid-scan, want 1", got)
	}
	it.Close()
	it.Close()
	if got := db.Stats().SnapshotsOpen; got != 0 {
		t.Fatalf("SnapshotsOpen = %d after Close, want 0", got)
	}
	// Iterating to exhaustion auto-closes.
	for it2 := db.First(); it2.Valid(); it2.Next() {
	}
	if got := db.Stats().SnapshotsOpen; got != 0 {
		t.Fatalf("SnapshotsOpen = %d after exhausted scan, want 0", got)
	}
}

// TestAbortedTxnInvisible: a failed mutation publishes nothing — the
// committed state and epoch are untouched.
func TestAbortedTxnInvisible(t *testing.T) {
	db := OpenMemory(nil)
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	before := db.Stats().Epoch
	big := make([]byte, MaxValueSize+1)
	if err := db.Put([]byte("k2"), big); err == nil {
		t.Fatal("oversized put succeeded")
	}
	if err := db.PutBatch([][]byte{[]byte("x")}, [][]byte{[]byte("y"), []byte("z")}); err == nil {
		t.Fatal("mismatched batch succeeded")
	}
	if got := db.Stats().Epoch; got != before {
		t.Fatalf("failed mutations moved the epoch: %d -> %d", before, got)
	}
	if _, ok, _ := db.Get([]byte("k2")); ok {
		t.Fatal("aborted key visible")
	}
	// Deleting an absent key is a committed no-op: same epoch.
	if err := db.Delete([]byte("absent")); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Epoch; got != before {
		t.Fatalf("no-op delete moved the epoch: %d -> %d", before, got)
	}
}
