package kvstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// crashOp is one step of the randomized durability workload.
type crashOp struct {
	kind byte // 'p'ut, 'd'elete, 's'ync
	key  string
	val  string
}

// genCrashOps draws a random Put/Delete/Sync sequence over a small key
// space (collisions exercise overwrites and real deletions).
func genCrashOps(rng *rand.Rand, n int) []crashOp {
	ops := make([]crashOp, 0, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%02d", rng.Intn(24))
		switch r := rng.Intn(10); {
		case r < 6:
			ops = append(ops, crashOp{kind: 'p', key: key, val: fmt.Sprintf("val-%d-%d", i, rng.Intn(1e6))})
		case r < 8:
			ops = append(ops, crashOp{kind: 'd', key: key})
		default:
			ops = append(ops, crashOp{kind: 's'})
		}
	}
	ops = append(ops, crashOp{kind: 's'}) // always end on a commit
	return ops
}

// crashRunResult captures what a (possibly crashed) run of the workload
// promised: the model at the last Sync that returned success, and the
// model the in-flight Sync was committing when the crash fired (equal to
// committed when the crash hit elsewhere).
type crashRunResult struct {
	committed map[string]string
	inFlight  map[string]string
}

func cloneModel(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// runCrashWorkload applies ops to a durable store on fs, stopping at the
// first error (the injected crash). Only Sync/Close touch the files in
// durable mode, so the crash always fires inside a commit.
func runCrashWorkload(t *testing.T, fs *FaultFS, ops []crashOp) crashRunResult {
	t.Helper()
	db, err := Open("p.db", &Options{FS: fs, Durability: true, CachePages: 16})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	model := map[string]string{}
	res := crashRunResult{committed: map[string]string{}, inFlight: map[string]string{}}
	for _, op := range ops {
		var err error
		switch op.kind {
		case 'p':
			err = db.Put([]byte(op.key), []byte(op.val))
			if err == nil {
				model[op.key] = op.val
			}
		case 'd':
			err = db.Delete([]byte(op.key))
			if err == nil {
				delete(model, op.key)
			}
		case 's':
			res.inFlight = cloneModel(model)
			err = db.Sync()
			if err == nil {
				res.committed = cloneModel(model)
			}
		}
		if err != nil {
			return res
		}
	}
	res.inFlight = cloneModel(model)
	if err := db.Close(); err == nil {
		res.committed = cloneModel(model)
	}
	return res
}

func dumpAll(t *testing.T, db *DB) map[string]string {
	t.Helper()
	got := map[string]string{}
	err := db.Ascend(nil, nil, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatalf("scan after recovery: %v", err)
	}
	return got
}

// TestCrashRecoveryProperty: for any random Put/Delete/Sync sequence
// with a crash injected at any write index — torn or not, with or
// without losing unsynced data — reopening yields exactly the state of
// the last successful Sync, or of the Sync that was in flight when the
// crash hit (that commit's success was never reported, so either
// outcome is correct; nothing in between, nothing mixed).
func TestCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ops := genCrashOps(rng, 120)

			// Fault-free rehearsal: total mutation count and final state.
			rehearsal := NewFaultFS()
			want := runCrashWorkload(t, rehearsal, ops)
			if !reflect.DeepEqual(want.committed, want.inFlight) {
				t.Fatal("fault-free run left uncommitted state")
			}
			total := rehearsal.Writes()
			if total == 0 {
				t.Fatal("workload wrote nothing")
			}

			// Sweep crash indices (all when small, sampled when large),
			// alternating torn-write sizes and unsynced-data loss.
			indices := make([]int64, 0, 64)
			if total <= 64 {
				for i := int64(0); i < total; i++ {
					indices = append(indices, i)
				}
			} else {
				indices = append(indices, 0, total-1)
				for len(indices) < 64 {
					indices = append(indices, rng.Int63n(total))
				}
			}
			for _, idx := range indices {
				tear := int(idx) % PageSize
				drop := idx%2 == 0
				fs := NewFaultFS()
				fs.CrashAfter(idx, tear, drop)
				res := runCrashWorkload(t, fs, ops)
				if !fs.Crashed() {
					t.Fatalf("idx %d: crash never fired", idx)
				}
				fs.ClearFaults()
				db, err := Open("p.db", &Options{FS: fs, Durability: true, CachePages: 16})
				if err != nil {
					t.Fatalf("idx %d (tear %d, drop %v): reopen: %v", idx, tear, drop, err)
				}
				got := dumpAll(t, db)
				if !reflect.DeepEqual(got, res.committed) && !reflect.DeepEqual(got, res.inFlight) {
					t.Fatalf("idx %d (tear %d, drop %v): recovered state matches neither side of the crash\n got: %v\npre: %v\npost: %v",
						idx, tear, drop, got, res.committed, res.inFlight)
				}
				db.Close()
			}
		})
	}
}
