package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitBatchesConcurrentSyncs is the deterministic grouping
// proof: while a flush is (apparently) in progress, concurrent Sync
// callers accumulate on one ticket; when the flush slot frees, exactly
// one of them leads a single commit covering all of them. White-box — it
// drives the ticket state directly so the grouping does not depend on
// scheduler timing.
func TestGroupCommitBatchesConcurrentSyncs(t *testing.T) {
	fs := NewFaultFS()
	db, err := Open("t.db", &Options{FS: fs, Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const members = 4
	for i := 0; i < members; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	before := db.Stats()

	// Occupy the flush slot so every Sync below parks on the same ticket.
	db.gc.mu.Lock()
	db.gc.flushing = true
	db.gc.mu.Unlock()

	var wg sync.WaitGroup
	errs := make(chan error, members)
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- db.Sync()
		}()
	}
	// Wait until all members joined the pending ticket.
	deadline := time.Now().Add(5 * time.Second)
	for {
		db.gc.mu.Lock()
		n := 0
		if db.gc.cur != nil {
			n = db.gc.cur.members
		}
		db.gc.mu.Unlock()
		if n == members {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d members joined the ticket", n, members)
		}
		time.Sleep(time.Millisecond)
	}
	// Free the slot, as a finishing flush would: one parked member takes
	// the leader seat and commits for everyone.
	db.gc.mu.Lock()
	db.gc.flushing = false
	close(db.gc.wake)
	db.gc.wake = make(chan struct{})
	db.gc.mu.Unlock()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	after := db.Stats()
	if got := after.SyncCalls - before.SyncCalls; got != members {
		t.Errorf("SyncCalls delta = %d, want %d", got, members)
	}
	if got := after.GroupCommits - before.GroupCommits; got != 1 {
		t.Errorf("GroupCommits delta = %d, want 1 (one leader for the whole group)", got)
	}
	if got := after.WALFsyncs - before.WALFsyncs; got != 1 {
		t.Errorf("WALFsyncs delta = %d, want 1 (one commit-record fsync shared by %d Syncs)", got, members)
	}
	// And the shared flush really covered every member's pages.
	db2, err := Open("t.db", &Options{FS: fs, Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < members; i++ {
		if _, ok, err := db2.Get([]byte(fmt.Sprintf("k%d", i))); err != nil || !ok {
			t.Errorf("k%d missing after group commit (ok=%v err=%v)", i, ok, err)
		}
	}
}

// TestGroupedTxnsAtomicCrashSweep crashes at every write index inside a
// Sync whose batch covers two committed transactions, and checks the
// recovered store holds both keys or neither — a grouped flush replays
// all-or-none, never a prefix of its member transactions.
func TestGroupedTxnsAtomicCrashSweep(t *testing.T) {
	// Baseline run: count the writes the grouped Sync performs.
	ops := func(db *DB) error {
		if err := db.Put([]byte("alpha"), []byte("1")); err != nil {
			return err
		}
		return db.Put([]byte("beta"), []byte("2"))
	}
	fs := NewFaultFS()
	db, err := Open("t.db", &Options{FS: fs, Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ops(db); err != nil {
		t.Fatal(err)
	}
	w0 := fs.Writes()
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	w1 := fs.Writes()
	if w1 <= w0 {
		t.Fatalf("grouped Sync performed no writes (%d..%d)", w0, w1)
	}

	for crash := w0; crash < w1; crash++ {
		for _, tear := range []int{0, PageSize / 2} {
			name := fmt.Sprintf("crash@%d/tear=%d", crash, tear)
			fs := NewFaultFS()
			fs.CrashAfter(crash, tear, false)
			db, err := Open("t.db", &Options{FS: fs, Durability: true})
			if err != nil {
				t.Fatalf("%s: open: %v", name, err)
			}
			if err := ops(db); err != nil {
				t.Fatalf("%s: ops: %v", name, err)
			}
			if err := db.Sync(); !errors.Is(err, ErrCrashed) {
				t.Fatalf("%s: Sync = %v, want ErrCrashed", name, err)
			}
			fs.ClearFaults()
			db2, err := Open("t.db", &Options{FS: fs, Durability: true})
			if err != nil {
				t.Fatalf("%s: reopen: %v", name, err)
			}
			_, okA, errA := db2.Get([]byte("alpha"))
			_, okB, errB := db2.Get([]byte("beta"))
			if errA != nil || errB != nil {
				t.Fatalf("%s: recovered gets: %v / %v", name, errA, errB)
			}
			if okA != okB {
				t.Fatalf("%s: partial batch recovered: alpha=%v beta=%v (grouped txns must be all-or-none)", name, okA, okB)
			}
			db2.Close()
		}
	}
}

// TestConcurrentDurableSyncs: N writers each Put+Sync in a loop; every
// acked Sync must be durable, and the whole run must not need one WAL
// commit fsync per Sync call (the amortization the group exists for is
// only asserted loosely here — the scheduler decides the actual
// grouping; the deterministic bound lives in
// TestGroupCommitBatchesConcurrentSyncs).
func TestConcurrentDurableSyncs(t *testing.T) {
	fs := NewFaultFS()
	db, err := Open("t.db", &Options{FS: fs, Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		rounds  = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := []byte(fmt.Sprintf("w%02d-r%03d", w, r))
				if err := db.Put(k, []byte("v")); err != nil {
					errs <- err
					return
				}
				if err := db.Sync(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.SyncCalls != writers*rounds {
		t.Errorf("SyncCalls = %d, want %d", st.SyncCalls, writers*rounds)
	}
	if st.GroupCommits > st.SyncCalls {
		t.Errorf("GroupCommits %d > SyncCalls %d", st.GroupCommits, st.SyncCalls)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open("t.db", &Options{FS: fs, Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for w := 0; w < writers; w++ {
		for r := 0; r < rounds; r++ {
			k := []byte(fmt.Sprintf("w%02d-r%03d", w, r))
			if _, ok, err := db2.Get(k); err != nil || !ok {
				t.Fatalf("acked key %s missing after reopen (ok=%v err=%v)", k, ok, err)
			}
		}
	}
}
