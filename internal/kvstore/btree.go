package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Maximum sizes; a leaf must fit at least two entries per page.
const (
	MaxKeySize   = 512
	MaxValueSize = 1536
)

const (
	pageLeaf     = 1
	pageInternal = 2
)

// DB is a B+tree keyed by []byte in lexicographic order. Mutations
// (Put, PutBatch, Delete) are serialized against each other; reads
// (Get, Seek, First, Ascend, AscendPrefix, or an explicit OpenSnapshot)
// run on MVCC snapshots of the last committed epoch and never wait for —
// or block — a writer. Everything is safe for concurrent use.
type DB struct {
	// writerMu serializes writer transactions: exactly one mutation
	// builds shadow pages at a time. Readers never touch it.
	writerMu sync.Mutex
	// publishMu guards the committed (root, epoch, npages) triple, the
	// snapshot pin registry, and the flush collector's cut. Held briefly:
	// opening/closing a snapshot, publishing a commit, collecting a flush
	// batch. See mvcc.go for the full lock order.
	publishMu sync.Mutex
	// versionMu guards the retained-version table.
	versionMu sync.Mutex

	pager *pager
	path  string

	// Committed state (published under publishMu; the single writer may
	// read it without, since only commitWrite ever changes it).
	root  uint32
	epoch uint64

	// Snapshot pins: open-snapshot count per epoch, plus the cached
	// minimum (valid while len(pins) > 0). Guarded by publishMu.
	pins   map[uint64]int
	minPin uint64

	// Retained superseded page images, keyed by page id, each holding
	// versions in ascending supersededAt order. Guarded by versionMu;
	// retainedCount mirrors the total for a lock-free emptiness check on
	// the read path.
	retained      map[uint32][]pageVersion
	retainedCount atomic.Int64
	retiredPages  atomic.Int64
	snapshotsOpen atomic.Int64

	// w is the in-flight writer transaction (guarded by writerMu).
	w writeTxn

	// gc is the group-commit ticket state shared by Sync callers; gcWait
	// is the leader's follower window (Options.GroupCommitWait).
	gc     groupCommit
	gcWait time.Duration

	// Replication state (guarded by publishMu): registered commit
	// subscribers, the page ids committed since the last replicated cut,
	// and the cut sequence number. appliedLSN is set when this store is
	// itself a follower applying batches. closed rejects operations after
	// Close so a racing Sync cannot flush against released descriptors.
	repSubs  []*CommitSub
	repDirty map[uint32]struct{}
	// epochShift rebases applied batch epochs past this store's own
	// history; pinned at the first ApplyCommitBatch (repShifted).
	epochShift uint64
	repShifted bool
	// commitLSN and appliedLSN are written under publishMu / writerMu but
	// read lock-free (Stats, read-your-writes floors).
	commitLSN  atomic.Uint64
	appliedLSN atomic.Uint64
	closed     atomic.Bool

	// Last header image written (or loaded): writeHeaderW skips the page
	// write when root and page count are unchanged, so a transaction that
	// grows nothing re-dirties nothing. Guarded by writerMu.
	hdrValid  bool
	hdrRoot   uint32
	hdrNpages uint32

	// Sorted-insert fast path: the leaf that served the last Put plus the
	// separator bounds [fastLow, fastHigh) routing to it. When the next
	// key still falls in that range and the insert cannot split, the
	// root-to-leaf descent is skipped entirely. Guarded by writerMu.
	fastValid     bool
	fastLeaf      uint32
	fastLow       []byte // nil = unbounded below
	fastHigh      []byte // nil = unbounded above
	noFastPath    bool   // Options.DisableFastPath (ablation benchmarks, tests)
	balancedSplit bool   // Options.BalancedSplitOnly (ablation benchmarks)
	readAhead     int    // leaf pages a scan prefetches; 0 disables
	fastHits      int64
	batchedPuts   int64

	// Operation counters, surfaced through Stats for the observability
	// layer (updated atomically; the CLI may snapshot concurrently).
	gets    int64
	puts    int64
	deletes int64
	seeks   int64
}

// Options configure Open.
type Options struct {
	// CachePages is the buffer-pool capacity in pages (default 256).
	CachePages int
	// DisableFastPath turns off the sorted-insert leaf cache, forcing
	// every Put through the full root-to-leaf descent. The physical tree
	// is identical either way (a test guards this); the knob exists for
	// ablation benchmarks.
	DisableFastPath bool
	// BalancedSplitOnly reverts leaf splits to pure byte-balanced halves,
	// disabling the append-aware split that packs leaves full under
	// sorted insertion. Sequentially loaded trees occupy ~40% more pages
	// with this set; the knob exists so ablation benchmarks can measure
	// the pre-overhaul write amplification.
	BalancedSplitOnly bool
	// ReadAheadPages is how many leaf pages an ordered scan prefetches
	// into the buffer pool ahead of its cursor, following leaf sibling
	// pointers (default 8). Read-ahead triggers when a scan crosses from
	// one leaf into the next, so point lookups and scans that end inside
	// their first leaf never prefetch.
	ReadAheadPages int
	// DisableReadAhead turns scan read-ahead off entirely; the physical
	// scan result is identical either way (a test guards this). The knob
	// exists for ablation benchmarks, mirroring BalancedSplitOnly.
	DisableReadAhead bool
	// GroupCommitWait is how long a group-commit leader with no follower
	// holds its ticket open before flushing, giving concurrent committers
	// a window to share the WAL fsync; the wait ends early the moment one
	// joins. Zero (the default) flushes immediately — right for
	// single-writer workloads and for the crash-sweep tests, whose write
	// sequences it leaves untouched either way (the window delays the
	// flush, it never changes what is written). Only meaningful with
	// Durability-style explicit Syncs under multiple writers.
	GroupCommitWait time.Duration
	// Durability enables the write-ahead-log commit protocol: Sync
	// records every dirty page image plus a commit marker in <path>.wal
	// (fsynced) before any in-place page write, and empties the log once
	// the in-place writes are on stable storage, so a crash or torn
	// write at any point leaves the store recoverable to its last
	// committed state. Concurrent Syncs share one commit — see
	// groupcommit.go. Between Syncs dirty pages are pinned in memory
	// instead of being flushed on eviction. Ignored by OpenMemory.
	// Independent of this flag, Open always replays (or discards) a
	// leftover <path>.wal — see wal.go for the protocol.
	Durability bool
	// FS overrides the filesystem the store and its log live on
	// (default: the real OS filesystem). The fault-injection tests pass
	// a FaultFS to fail or tear specific writes and simulate crashes.
	FS VFS
}

// defaultReadAhead is the scan read-ahead depth when Options leave it
// unset.
const defaultReadAhead = 8

// resolveOptions applies opts to the DB's tuning fields.
func (db *DB) resolveOptions(opts *Options) {
	db.readAhead = defaultReadAhead
	db.pins = make(map[uint64]int)
	db.retained = make(map[uint32][]pageVersion)
	db.repDirty = make(map[uint32]struct{})
	db.gc.wake = make(chan struct{})
	if opts == nil {
		return
	}
	db.noFastPath = opts.DisableFastPath
	db.balancedSplit = opts.BalancedSplitOnly
	db.gcWait = opts.GroupCommitWait
	if opts.ReadAheadPages > 0 {
		db.readAhead = opts.ReadAheadPages
	}
	if opts.DisableReadAhead {
		db.readAhead = 0
	}
}

// Open opens (or creates) a store file. Before anything is read, a
// leftover write-ahead log from an interrupted durable commit is
// replayed (complete) or discarded (incomplete), so the store always
// reopens to its last committed state.
func Open(path string, opts *Options) (*DB, error) {
	capacity := 256
	if opts != nil && opts.CachePages > 0 {
		capacity = opts.CachePages
	}
	fs := VFS(osFS{})
	if opts != nil && opts.FS != nil {
		fs = opts.FS
	}
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: %w", path, err)
	}
	replayed, err := recoverWAL(fs, path, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	p, err := newPager(f, capacity)
	if err != nil {
		f.Close()
		return nil, err
	}
	p.fs = fs
	p.walPath = walSuffix(path)
	p.durable = opts != nil && opts.Durability
	if replayed {
		p.recoveries.Store(1)
	}
	db := &DB{pager: p, path: path}
	db.resolveOptions(opts)
	if p.npages.Load() == 0 {
		if err := db.initialize(); err != nil {
			f.Close()
			return nil, err
		}
	} else if err := db.loadHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return db, nil
}

// OpenMemory returns a purely in-memory store with the same behaviour
// (including the buffer pool and block counters).
func OpenMemory(opts *Options) *DB {
	capacity := 256
	if opts != nil && opts.CachePages > 0 {
		capacity = opts.CachePages
	}
	p, _ := newPager(nil, capacity)
	db := &DB{pager: p}
	db.resolveOptions(opts)
	if err := db.initialize(); err != nil {
		panic(err) // cannot fail in memory
	}
	return db
}

// initialize builds the empty tree as the first committed transaction:
// page 0 = header, page 1 = empty root leaf.
func (db *DB) initialize() error {
	db.beginWrite()
	hdr := db.walloc() // page 0: header
	if hdr != 0 {
		return fmt.Errorf("kvstore: header must be page 0, got %d", hdr)
	}
	root := db.walloc()
	db.w.root = root
	if err := db.writeNodeW(root, &node{typ: pageLeaf}); err != nil {
		return err
	}
	if err := db.writeHeaderW(); err != nil {
		return err
	}
	return db.commitWrite()
}

// writeHeaderW writes the header page into the transaction's shadow set
// when the root or page count changed since the last header image.
func (db *DB) writeHeaderW() error {
	if db.hdrValid && db.hdrRoot == db.w.root && db.hdrNpages == db.w.npages {
		return nil
	}
	buf := make([]byte, PageSize)
	copy(buf, magic)
	binary.BigEndian.PutUint32(buf[8:], db.w.root)
	binary.BigEndian.PutUint32(buf[12:], db.w.npages)
	db.w.set[0] = buf
	db.hdrValid, db.hdrRoot, db.hdrNpages = true, db.w.root, db.w.npages
	return nil
}

func (db *DB) loadHeader() error {
	buf, err := db.pager.read(0)
	if err != nil {
		return err
	}
	if string(buf[:8]) != magic {
		return fmt.Errorf("kvstore: bad magic (corrupt or not a store file)")
	}
	db.root = binary.BigEndian.Uint32(buf[8:])
	if db.root == 0 || db.root >= db.pager.npages.Load() {
		return fmt.Errorf("kvstore: corrupt header: root page %d of %d", db.root, db.pager.npages.Load())
	}
	// Record the header as stored (not as derived from the file size), so
	// the skip in writeHeaderW never leaves a stale image on disk.
	db.hdrValid, db.hdrRoot, db.hdrNpages = true, db.root, binary.BigEndian.Uint32(buf[12:])
	return nil
}

// node is the in-memory form of a tree page.
type node struct {
	typ      byte
	next     uint32 // leaves only: right sibling page id, 0 = none
	keys     [][]byte
	vals     [][]byte // leaves only
	children []uint32 // internal only, len(keys)+1
}

// size returns the serialized byte size.
func (n *node) size() int {
	sz := 3 // type + nkeys
	if n.typ == pageLeaf {
		sz += 4 // sibling pointer
	}
	for i, k := range n.keys {
		sz += 2 + len(k)
		if n.typ == pageLeaf {
			sz += 2 + len(n.vals[i])
		}
	}
	if n.typ == pageInternal {
		sz += 4 * len(n.children)
	}
	return sz
}

func (n *node) serialize() ([]byte, error) {
	if n.size() > PageSize {
		return nil, fmt.Errorf("kvstore: node overflows page (%d bytes)", n.size())
	}
	buf := make([]byte, PageSize)
	buf[0] = n.typ
	binary.BigEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	off := 3
	if n.typ == pageLeaf {
		// The sibling pointer lives at a fixed offset so the read-ahead
		// chain walk can follow it without decoding entries.
		binary.BigEndian.PutUint32(buf[off:], n.next)
		off += 4
	} else {
		for _, c := range n.children {
			binary.BigEndian.PutUint32(buf[off:], c)
			off += 4
		}
	}
	for i, k := range n.keys {
		binary.BigEndian.PutUint16(buf[off:], uint16(len(k)))
		off += 2
		copy(buf[off:], k)
		off += len(k)
		if n.typ == pageLeaf {
			v := n.vals[i]
			binary.BigEndian.PutUint16(buf[off:], uint16(len(v)))
			off += 2
			copy(buf[off:], v)
			off += len(v)
		}
	}
	return buf, nil
}

func deserialize(buf []byte) (*node, error) {
	n := &node{typ: buf[0]}
	if n.typ != pageLeaf && n.typ != pageInternal {
		return nil, fmt.Errorf("kvstore: corrupt page: type %d", n.typ)
	}
	nkeys := int(binary.BigEndian.Uint16(buf[1:]))
	off := 3
	if n.typ == pageLeaf {
		n.next = binary.BigEndian.Uint32(buf[off:])
		off += 4
	}
	if n.typ == pageInternal {
		n.children = make([]uint32, nkeys+1)
		for i := range n.children {
			if off+4 > len(buf) {
				return nil, fmt.Errorf("kvstore: corrupt internal page")
			}
			n.children[i] = binary.BigEndian.Uint32(buf[off:])
			off += 4
		}
	}
	for i := 0; i < nkeys; i++ {
		if off+2 > len(buf) {
			return nil, fmt.Errorf("kvstore: corrupt page: key %d", i)
		}
		kl := int(binary.BigEndian.Uint16(buf[off:]))
		off += 2
		if off+kl > len(buf) {
			return nil, fmt.Errorf("kvstore: corrupt page: key %d length", i)
		}
		n.keys = append(n.keys, append([]byte(nil), buf[off:off+kl]...))
		off += kl
		if n.typ == pageLeaf {
			if off+2 > len(buf) {
				return nil, fmt.Errorf("kvstore: corrupt page: value %d", i)
			}
			vl := int(binary.BigEndian.Uint16(buf[off:]))
			off += 2
			if off+vl > len(buf) {
				return nil, fmt.Errorf("kvstore: corrupt page: value %d length", i)
			}
			n.vals = append(n.vals, append([]byte(nil), buf[off:off+vl]...))
			off += vl
		}
	}
	return n, nil
}

// readNode decodes a page of the last committed state.
func (db *DB) readNode(id uint32) (*node, error) {
	buf, err := db.pager.read(id)
	if err != nil {
		return nil, err
	}
	return deserialize(buf)
}

// Get returns the value for key, or (nil, false, nil) when absent. It
// runs on a snapshot of the last committed epoch, so it never waits for
// an in-flight mutation.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	snap := db.OpenSnapshot()
	defer snap.Close()
	return snap.Get(key)
}

// Get returns the value for key as of the snapshot's epoch.
func (s *Snapshot) Get(key []byte) ([]byte, bool, error) {
	atomic.AddInt64(&s.db.gets, 1)
	id := s.root
	for {
		n, err := s.readNode(id)
		if err != nil {
			return nil, false, err
		}
		if n.typ == pageLeaf {
			i, found := search(n.keys, key)
			if !found {
				return nil, false, nil
			}
			return n.vals[i], true, nil
		}
		id = n.children[childIndex(n.keys, key)]
	}
}

// Put inserts or replaces a key. The mutation is one transaction:
// readers observe either none or all of it.
func (db *DB) Put(key, value []byte) error {
	if err := validatePut(key, value); err != nil {
		return err
	}
	atomic.AddInt64(&db.puts, 1)
	lockTimed(&db.writerMu, writerLockWait)
	defer db.writerMu.Unlock()
	db.beginWrite()
	if err := db.putTxn(key, value); err != nil {
		db.abortWrite()
		return err
	}
	if err := db.commitWrite(); err != nil {
		db.abortWrite()
		return err
	}
	return nil
}

// PutBatch inserts (or replaces) many keys in one pass: the batch is
// sorted first (stably, so a later duplicate wins, matching sequential
// Puts) and applied in key order, which drives almost every insert
// through the cached-leaf fast path — leaves are walked once instead of
// descending from the root per key. keys and vals must be parallel.
// The whole batch commits as one transaction (one epoch): a concurrent
// snapshot sees all of it or none of it.
func (db *DB) PutBatch(keys, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kvstore: PutBatch: %d keys but %d values", len(keys), len(vals))
	}
	for i, k := range keys {
		if err := validatePut(k, vals[i]); err != nil {
			return err
		}
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	if !sort.SliceIsSorted(order, func(a, b int) bool {
		return bytes.Compare(keys[order[a]], keys[order[b]]) < 0
	}) {
		sort.SliceStable(order, func(a, b int) bool {
			return bytes.Compare(keys[order[a]], keys[order[b]]) < 0
		})
	}
	atomic.AddInt64(&db.puts, int64(len(keys)))
	atomic.AddInt64(&db.batchedPuts, int64(len(keys)))
	lockTimed(&db.writerMu, writerLockWait)
	defer db.writerMu.Unlock()
	db.beginWrite()
	for _, i := range order {
		if err := db.putTxn(keys[i], vals[i]); err != nil {
			db.abortWrite()
			return err
		}
	}
	if err := db.commitWrite(); err != nil {
		db.abortWrite()
		return err
	}
	return nil
}

func validatePut(key, value []byte) error {
	if len(key) == 0 || len(key) > MaxKeySize {
		return fmt.Errorf("kvstore: key size %d out of range [1,%d]", len(key), MaxKeySize)
	}
	if len(value) > MaxValueSize {
		return fmt.Errorf("kvstore: value size %d exceeds %d", len(value), MaxValueSize)
	}
	return nil
}

// pathEntry is one internal node on the root-to-leaf descent, kept so a
// leaf split can propagate upward without re-descending.
type pathEntry struct {
	id uint32
	n  *node
	ci int
}

// putTxn inserts one key into the transaction's shadow tree (writerMu
// held, beginWrite done).
//
// Fast path: when the previous Put cached a leaf whose separator range
// still covers key and the insert cannot overflow the page, the new
// entry goes straight into that leaf — no descent, no parent updates.
// Otherwise the slow path descends from the root recording the path, so
// splits propagate iteratively; it re-caches the target leaf for the
// next call. Both paths produce byte-identical trees to the pre-cache
// recursive insert (guarded by TestFastPathTreeIdentical).
func (db *DB) putTxn(key, value []byte) error {
	if db.fastValid && !db.noFastPath && db.fastCovers(key) {
		n, err := db.readNodeW(db.fastLeaf)
		if err != nil {
			return err
		}
		if n.typ == pageLeaf {
			leafInsert(n, key, value)
			if n.size() <= PageSize {
				atomic.AddInt64(&db.fastHits, 1)
				return db.writeNodeW(db.fastLeaf, n)
			}
		}
		// The leaf would split (or the cache is stale): fall back to the
		// full descent, which needs the parent path.
		db.fastValid = false
	}

	var (
		path      []pathEntry
		low, high []byte
	)
	id := db.w.root
	var n *node
	for {
		var err error
		n, err = db.readNodeW(id)
		if err != nil {
			return err
		}
		if n.typ == pageLeaf {
			break
		}
		ci := childIndex(n.keys, key)
		if ci > 0 {
			low = n.keys[ci-1]
		}
		if ci < len(n.keys) {
			high = n.keys[ci]
		}
		path = append(path, pathEntry{id: id, n: n, ci: ci})
		id = n.children[ci]
	}
	at := leafInsert(n, key, value)
	if n.size() <= PageSize {
		db.fastValid, db.fastLeaf, db.fastLow, db.fastHigh = true, id, low, high
		return db.writeNodeW(id, n)
	}
	// Split: the cached leaf's range is about to change.
	db.fastValid = false
	promoted, right, err := db.finishInsert(id, n, at)
	if err != nil {
		return err
	}
	for i := len(path) - 1; i >= 0 && promoted != nil; i-- {
		p := path[i]
		p.n.keys = append(p.n.keys, nil)
		copy(p.n.keys[p.ci+1:], p.n.keys[p.ci:])
		p.n.keys[p.ci] = promoted
		p.n.children = append(p.n.children, 0)
		copy(p.n.children[p.ci+2:], p.n.children[p.ci+1:])
		p.n.children[p.ci+1] = right
		promoted, right, err = db.finishInsert(p.id, p.n, -1)
		if err != nil {
			return err
		}
	}
	if promoted != nil {
		// Root split: grow the tree.
		newRoot := db.walloc()
		nr := &node{typ: pageInternal, keys: [][]byte{promoted}, children: []uint32{db.w.root, right}}
		if err := db.writeNodeW(newRoot, nr); err != nil {
			return err
		}
		db.w.root = newRoot
		return db.writeHeaderW()
	}
	return nil
}

// fastCovers reports whether key falls in the cached leaf's separator
// range [fastLow, fastHigh); nil bounds are unbounded.
func (db *DB) fastCovers(key []byte) bool {
	if db.fastLow != nil && bytes.Compare(key, db.fastLow) < 0 {
		return false
	}
	if db.fastHigh != nil && bytes.Compare(key, db.fastHigh) >= 0 {
		return false
	}
	return true
}

// leafInsert puts key into the decoded leaf, replacing an existing entry,
// and returns the index the key landed at (the split decision uses it).
func leafInsert(n *node, key, value []byte) int {
	i, found := search(n.keys, key)
	if found {
		n.vals[i] = append([]byte(nil), value...)
		return i
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = append([]byte(nil), key...)
	n.vals = append(n.vals, nil)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = append([]byte(nil), value...)
	return i
}

// finishInsert writes the node back into the transaction, splitting it
// first if it overflows. The split point balances *bytes*, not entry
// counts: with variable-length entries a count split can leave one half
// still overflowing.
//
// insertAt is the index of the entry whose insertion caused the overflow
// (-1 when unknown, e.g. internal cascades). When it lies at or past the
// byte midpoint of a leaf, the split happens at the insertion point
// instead: the prefix keys[0:insertAt] — exactly the entries that fit the
// page before this insert — stay behind as a packed left leaf, and the
// new key starts the right leaf. Under sorted insertion (the shredder's
// per-type runs, or any PutBatch) every overflow is rightmost, so leaves
// fill to ~100% instead of the ~55% that byte-balanced halves converge
// to, cutting the file's page count — and with it shred page writes —
// by about a third. Random workloads are unaffected: a mid-leaf insert
// below the midpoint still splits balanced, and the insertion-point rule
// never yields a left half under half a page. Options.BalancedSplitOnly
// restores the old policy for ablation runs.
func (db *DB) finishInsert(id uint32, n *node, insertAt int) ([]byte, uint32, error) {
	if n.size() <= PageSize {
		return nil, 0, db.writeNodeW(id, n)
	}
	mid := n.splitPoint()
	if !db.balancedSplit && n.typ == pageLeaf &&
		insertAt >= mid && insertAt > 0 && insertAt < len(n.keys) {
		r := &node{typ: pageLeaf, keys: n.keys[insertAt:], vals: n.vals[insertAt:]}
		if r.size() <= PageSize {
			mid = insertAt
		}
	}
	var promoted []byte
	var left, rightN *node
	if n.typ == pageLeaf {
		// Right half starts at mid; its first key is promoted (copied).
		// The new right leaf inherits the sibling pointer and the left
		// leaf links to it (below, once its page id exists), keeping the
		// scan read-ahead chain intact across splits.
		left = &node{typ: pageLeaf, keys: n.keys[:mid], vals: n.vals[:mid]}
		rightN = &node{typ: pageLeaf, next: n.next, keys: n.keys[mid:], vals: n.vals[mid:]}
		promoted = append([]byte(nil), n.keys[mid]...)
	} else {
		// The middle key moves up.
		promoted = n.keys[mid]
		left = &node{typ: pageInternal, keys: n.keys[:mid], children: n.children[:mid+1]}
		rightN = &node{typ: pageInternal, keys: n.keys[mid+1:], children: n.children[mid+1:]}
	}
	rightID := db.walloc()
	if n.typ == pageLeaf {
		left.next = rightID
	}
	if err := db.writeNodeW(id, left); err != nil {
		return nil, 0, err
	}
	if err := db.writeNodeW(rightID, rightN); err != nil {
		return nil, 0, err
	}
	if err := db.writeHeaderW(); err != nil { // page count changed
		return nil, 0, err
	}
	return promoted, rightID, nil
}

// splitPoint returns the index at which the serialized left half first
// reaches half the node's bytes, clamped so both halves are non-empty. A
// node only ever exceeds PageSize by one entry, so byte-balanced halves
// always fit.
func (n *node) splitPoint() int {
	total := n.size()
	acc := 3
	if n.typ == pageLeaf {
		acc = 7 // header + sibling pointer
	}
	for i, k := range n.keys {
		entry := 2 + len(k)
		if n.typ == pageLeaf {
			entry += 2 + len(n.vals[i])
		} else {
			entry += 4
		}
		acc += entry
		if acc >= total/2 {
			if i+1 >= len(n.keys) {
				return len(n.keys) - 1
			}
			return i + 1
		}
	}
	return len(n.keys) / 2
}

// Delete removes a key; deleting an absent key is a no-op (and publishes
// no epoch). Leaves are not rebalanced (space is reclaimed on
// compaction, which this store does not implement — deletions in the
// XMorph workload are whole-store drops).
func (db *DB) Delete(key []byte) error {
	atomic.AddInt64(&db.deletes, 1)
	lockTimed(&db.writerMu, writerLockWait)
	defer db.writerMu.Unlock()
	db.beginWrite()
	// The cached fast-path leaf stays valid: deletion never merges pages,
	// so separator ranges are unchanged.
	id := db.w.root
	for {
		n, err := db.readNodeW(id)
		if err != nil {
			db.abortWrite()
			return err
		}
		if n.typ == pageLeaf {
			i, found := search(n.keys, key)
			if !found {
				return db.commitWrite() // empty set: no-op
			}
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.vals = append(n.vals[:i], n.vals[i+1:]...)
			if err := db.writeNodeW(id, n); err != nil {
				db.abortWrite()
				return err
			}
			if err := db.commitWrite(); err != nil {
				db.abortWrite()
				return err
			}
			return nil
		}
		id = n.children[childIndex(n.keys, key)]
	}
}

// Close syncs and releases the file handles (store and log). The pager
// is closed even when the final sync fails — a failed flush must not
// leak the descriptors — and both errors are reported.
//
// Close is safe against in-flight group commits: it first marks the DB
// closed so new Sync calls fail fast with ErrClosed, then runs one final
// sync that joins (or leads) whatever commit ticket is pending — every
// parked committer is flushed and woken before the descriptors go away —
// and finally closes the replication subscriptions so follower apply
// loops exit instead of blocking forever on Next. A second Close is a
// no-op returning nil.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	syncErr := db.sync()
	db.closeSubs()
	closeErr := db.pager.close()
	return errors.Join(syncErr, closeErr)
}

// Stats returns cumulative block I/O, buffer-pool, MVCC, group-commit,
// and operation counters.
func (db *DB) Stats() Stats {
	s := db.pager.stats()
	s.Gets = atomic.LoadInt64(&db.gets)
	s.Puts = atomic.LoadInt64(&db.puts)
	s.Deletes = atomic.LoadInt64(&db.deletes)
	s.Seeks = atomic.LoadInt64(&db.seeks)
	s.FastPathHits = atomic.LoadInt64(&db.fastHits)
	s.BatchedPuts = atomic.LoadInt64(&db.batchedPuts)
	s.SnapshotsOpen = db.snapshotsOpen.Load()
	s.PagesRetained = db.retainedCount.Load()
	s.PagesRetired = db.retiredPages.Load()
	s.CommitLSN = int64(db.commitLSN.Load())
	s.AppliedLSN = int64(db.appliedLSN.Load())
	return s
}

// search finds the smallest index with keys[i] >= key, and whether it is an
// exact match.
func search(keys [][]byte, key []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && bytes.Equal(keys[lo], key)
}

// childIndex picks the child subtree for key in an internal node: child i
// holds keys < keys[i]; an exact separator match descends right.
func childIndex(keys [][]byte, key []byte) int {
	i, found := search(keys, key)
	if found {
		return i + 1
	}
	return i
}
