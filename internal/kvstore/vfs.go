package kvstore

import (
	"io"
	"os"
)

// File is the filesystem surface the pager and write-ahead log need from
// an open file. *os.File satisfies it via the osFile wrapper; FaultFS
// provides an in-memory implementation with deterministic fault
// injection. Positional reads and writes only — the store never relies
// on a file offset.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Size() (int64, error)
}

// VFS opens and removes files. It is the seam between the store and the
// operating system: production code uses the passthrough OS
// implementation, tests inject FaultFS to fail or tear specific writes
// and to simulate crashes that drop unsynced data.
type VFS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Remove(name string) error
}

// osFS is the production VFS: a thin passthrough to the os package.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Remove(name string) error { return os.Remove(name) }

// osFile adapts *os.File to File (Size via Stat).
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
