package kvstore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xmorph/internal/obs"
)

func TestLockTimedHelpers(t *testing.T) {
	t.Run("uncontended observes nothing", func(t *testing.T) {
		h := obs.NewHistogram(obs.WaitBuckets)
		var rw sync.RWMutex
		wlockTimed(&rw, h)
		rw.Unlock()
		rlockTimed(&rw, h)
		rw.RUnlock()
		var mu sync.Mutex
		lockTimed(&mu, h)
		mu.Unlock()
		if got := h.Snapshot().Count; got != 0 {
			t.Errorf("uncontended acquisitions observed %d waits", got)
		}
	})

	t.Run("contended wait is observed", func(t *testing.T) {
		cases := []struct {
			name string
			hold func(mu *sync.RWMutex) // taken by the holder
			rel  func(mu *sync.RWMutex) // released by the holder
			acq  func(mu *sync.RWMutex, h *obs.Histogram)
		}{
			{"write blocked by reader",
				(*sync.RWMutex).RLock, (*sync.RWMutex).RUnlock,
				func(mu *sync.RWMutex, h *obs.Histogram) { wlockTimed(mu, h); mu.Unlock() }},
			{"read blocked by writer",
				(*sync.RWMutex).Lock, (*sync.RWMutex).Unlock,
				func(mu *sync.RWMutex, h *obs.Histogram) { rlockTimed(mu, h); mu.RUnlock() }},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				h := obs.NewHistogram(obs.WaitBuckets)
				var mu sync.RWMutex
				tc.hold(&mu)
				done := make(chan struct{})
				go func() {
					tc.acq(&mu, h)
					close(done)
				}()
				// Give the acquirer time to fail TryLock and block.
				time.Sleep(5 * time.Millisecond)
				tc.rel(&mu)
				<-done
				if got := h.Snapshot().Count; got != 1 {
					t.Errorf("contended acquisition observed %d waits, want 1", got)
				}
			})
		}
	})
}

// TestWriterNotBlockedByScan is the MVCC inversion of the old
// reader/writer contention test: a Put issued while a scan is mid-flight
// must complete *during* the scan (the pre-MVCC read lock would hold it
// until the scan finished — this test would deadlock), and the scan,
// frozen at its snapshot's epoch, must not see the concurrently
// committed key.
func TestWriterNotBlockedByScan(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "contention.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		if err := db.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	putDone := make(chan error, 1)
	var once sync.Once
	sawContender := false
	err = db.Ascend(nil, nil, func(k, v []byte) bool {
		once.Do(func() {
			go func() { putDone <- db.Put([]byte("contender"), []byte("v")) }()
			// The scan does not advance until the concurrent Put has
			// committed; under a tree-wide read lock this would deadlock.
			if err := <-putDone; err != nil {
				t.Error(err)
			}
		})
		if string(k) == "contender" {
			sawContender = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawContender {
		t.Error("snapshot scan observed a key committed after it opened")
	}
	if v, ok, err := db.Get([]byte("contender")); err != nil || !ok || string(v) != "v" {
		t.Errorf("post-scan Get(contender) = %q, %v, %v; want committed value", v, ok, err)
	}
}

// TestDBContentionObserved pins the new histograms to the locks they
// watch: a writer queued behind writerMu and a snapshot open queued
// behind publishMu must each land one observation.
func TestDBContentionObserved(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "contention2.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	t.Run("writer lock", func(t *testing.T) {
		before := writerLockWait.Snapshot().Count
		db.writerMu.Lock()
		done := make(chan error, 1)
		go func() { done <- db.Put([]byte("w"), []byte("v")) }()
		time.Sleep(5 * time.Millisecond) // let the Put fail TryLock and block
		db.writerMu.Unlock()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		if got := writerLockWait.Snapshot().Count; got <= before {
			t.Error("writer queued behind writerMu was not observed in kvstore_writer_lock_wait_seconds")
		}
	})

	t.Run("publish lock", func(t *testing.T) {
		before := publishLockWait.Snapshot().Count
		db.publishMu.Lock()
		done := make(chan struct{})
		go func() { db.OpenSnapshot().Close(); close(done) }()
		time.Sleep(5 * time.Millisecond)
		db.publishMu.Unlock()
		<-done
		if got := publishLockWait.Snapshot().Count; got <= before {
			t.Error("snapshot open queued behind publishMu was not observed in kvstore_publish_lock_wait_seconds")
		}
	})
}

func TestFsyncHistogramsObserved(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "fsync.db"), &Options{Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	walBefore := walFsyncTime.Snapshot().Count
	fileBefore := fileFsyncTime.Snapshot().Count
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// One commit = WAL append fsync + page-file fsync + WAL reset fsync.
	if got := walFsyncTime.Snapshot().Count - walBefore; got < 2 {
		t.Errorf("wal fsyncs observed = %d, want >= 2", got)
	}
	if got := fileFsyncTime.Snapshot().Count - fileBefore; got < 1 {
		t.Errorf("file fsyncs observed = %d, want >= 1", got)
	}
}
