package kvstore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xmorph/internal/obs"
)

func TestLockTimedHelpers(t *testing.T) {
	t.Run("uncontended observes nothing", func(t *testing.T) {
		h := obs.NewHistogram(obs.WaitBuckets)
		var rw sync.RWMutex
		wlockTimed(&rw, h)
		rw.Unlock()
		rlockTimed(&rw, h)
		rw.RUnlock()
		var mu sync.Mutex
		lockTimed(&mu, h)
		mu.Unlock()
		if got := h.Snapshot().Count; got != 0 {
			t.Errorf("uncontended acquisitions observed %d waits", got)
		}
	})

	t.Run("contended wait is observed", func(t *testing.T) {
		cases := []struct {
			name string
			hold func(mu *sync.RWMutex) // taken by the holder
			rel  func(mu *sync.RWMutex) // released by the holder
			acq  func(mu *sync.RWMutex, h *obs.Histogram)
		}{
			{"write blocked by reader",
				(*sync.RWMutex).RLock, (*sync.RWMutex).RUnlock,
				func(mu *sync.RWMutex, h *obs.Histogram) { wlockTimed(mu, h); mu.Unlock() }},
			{"read blocked by writer",
				(*sync.RWMutex).Lock, (*sync.RWMutex).Unlock,
				func(mu *sync.RWMutex, h *obs.Histogram) { rlockTimed(mu, h); mu.RUnlock() }},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				h := obs.NewHistogram(obs.WaitBuckets)
				var mu sync.RWMutex
				tc.hold(&mu)
				done := make(chan struct{})
				go func() {
					tc.acq(&mu, h)
					close(done)
				}()
				// Give the acquirer time to fail TryLock and block.
				time.Sleep(5 * time.Millisecond)
				tc.rel(&mu)
				<-done
				if got := h.Snapshot().Count; got != 1 {
					t.Errorf("contended acquisition observed %d waits, want 1", got)
				}
			})
		}
	})
}

func TestDBContentionObserved(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "contention.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		if err := db.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	before := dbLockWait.Snapshot().Count
	started := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-started
		// Blocks behind the scan's read lock: TryLock fails, the wait
		// is observed into kvstore_db_lock_wait_seconds.
		if err := db.Put([]byte("contender"), []byte("v")); err != nil {
			t.Error(err)
		}
	}()
	err = db.Ascend(nil, nil, func(k, v []byte) bool {
		once.Do(func() { close(started) })
		time.Sleep(100 * time.Microsecond)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := dbLockWait.Snapshot().Count; got <= before {
		t.Error("writer blocked by a scan was not observed in the lock-wait histogram")
	}
}

func TestFsyncHistogramsObserved(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "fsync.db"), &Options{Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	walBefore := walFsyncTime.Snapshot().Count
	fileBefore := fileFsyncTime.Snapshot().Count
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// One commit = WAL append fsync + page-file fsync + WAL reset fsync.
	if got := walFsyncTime.Snapshot().Count - walBefore; got < 2 {
		t.Errorf("wal fsyncs observed = %d, want >= 2", got)
	}
	if got := fileFsyncTime.Snapshot().Count - fileBefore; got < 1 {
		t.Errorf("file fsyncs observed = %d, want >= 1", got)
	}
}
