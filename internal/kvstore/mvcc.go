package kvstore

import (
	"sync/atomic"
)

// MVCC snapshot reads over copy-on-write pages.
//
// Every committed state of the tree is numbered by an epoch. A writer
// transaction (one Put, PutBatch, or Delete) mutates shadow copies of
// the pages it touches in a private write set; commit publishes them all
// at once — new root, new page count, epoch+1 — under the DB's
// publishMu. Readers never take the tree-wide lock the pre-MVCC design
// used: a Snapshot is just the committed (root, epoch) pair plus a pin
// registered in DB.pins, and every page it reads resolves against that
// epoch.
//
// Resolution uses two facts. First, pool buffers are immutable and
// epoch-stamped (pager.install replaces pointers, never bytes), so a
// page whose stamp is <= the snapshot's epoch is exactly the image the
// snapshot must see. Second, whenever a commit supersedes a page while
// any snapshot is open, it first copies the committed image into the
// retained-version table keyed by the epoch that superseded it — so a
// page whose pool stamp is newer than the snapshot finds its older image
// by looking up the smallest supersededAt greater than its epoch.
// Because commits are serialized and always retain before installing,
// a snapshot read that observes a newer stamp is guaranteed to find its
// version retained (a conservatively newer stamp from a disk fetch just
// misses the lookup and correctly falls back to the fetched image).
//
// Retired pages: closing the last snapshot pinning an epoch raises the
// pruning threshold (the smallest pinned epoch, or the committed epoch
// when no pins remain) and drops every retained version superseded at or
// before it — those images can never be needed again, since any future
// snapshot opens at a later epoch.
//
// Lock order (supersedes the PR-3 two-level order): writerMu -> publishMu
// -> { shard mutex | versionMu | memMu | evictMu }; the four innermost
// are never nested within each other. Snapshot reads take a shard mutex
// and, after releasing it, possibly versionMu — never publishMu.

// pageVersion is one superseded committed page image. supersededAt is
// the first epoch at which the image stopped being current: a snapshot
// at epoch e needs the version with the smallest supersededAt > e.
type pageVersion struct {
	supersededAt uint64
	buf          []byte
}

// Snapshot is an immutable view of the store at one committed epoch.
// Opening one is cheap — copying the committed root and epoch and
// bumping a pin count — and reads through it never block writers, nor
// are blocked by them. A Snapshot must be Closed (idempotently) so the
// page images it pins can be retired; it is safe for concurrent use by
// multiple goroutines, except for Close racing reads.
type Snapshot struct {
	db     *DB
	root   uint32
	epoch  uint64
	closed atomic.Bool
}

// OpenSnapshot pins the current committed state and returns a read-only
// view of it. Concurrent commits proceed normally; the snapshot keeps
// observing exactly the epoch it opened at.
func (db *DB) OpenSnapshot() *Snapshot {
	lockTimed(&db.publishMu, publishLockWait)
	s := &Snapshot{db: db, root: db.root, epoch: db.epoch}
	if len(db.pins) == 0 || s.epoch < db.minPin {
		db.minPin = s.epoch
	}
	db.pins[s.epoch]++
	db.publishMu.Unlock()
	db.snapshotsOpen.Add(1)
	return s
}

// Epoch returns the committed epoch this snapshot observes.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Close releases the snapshot's pin and retires any page versions no
// open snapshot can need anymore. Safe to call more than once.
func (s *Snapshot) Close() {
	if s.closed.Swap(true) {
		return
	}
	db := s.db
	db.snapshotsOpen.Add(-1)
	lockTimed(&db.publishMu, publishLockWait)
	if db.pins[s.epoch]--; db.pins[s.epoch] == 0 {
		delete(db.pins, s.epoch)
		if s.epoch == db.minPin && len(db.pins) > 0 {
			min := ^uint64(0)
			for e := range db.pins {
				if e < min {
					min = e
				}
			}
			db.minPin = min
		}
	}
	// Pruning threshold: with pins left, the smallest pinned epoch; with
	// none, the committed epoch. Either way, versions superseded at or
	// before it are unreachable — any later-opened snapshot pins an epoch
	// >= the threshold, and the versions it could need are superseded
	// strictly after it.
	threshold := db.epoch
	if len(db.pins) > 0 {
		threshold = db.minPin
	}
	db.publishMu.Unlock()
	db.pruneVersions(threshold)
}

// snapRead resolves page id as of epoch: the committed pool buffer when
// its stamp is old enough, the retained version otherwise. The returned
// buffer is immutable.
func (db *DB) snapRead(id uint32, epoch uint64) ([]byte, error) {
	buf, stamp, err := db.pager.readStamped(id)
	if err != nil {
		return nil, err
	}
	if stamp > epoch && db.retainedCount.Load() > 0 {
		if old := db.lookupVersion(id, epoch); old != nil {
			return old, nil
		}
	}
	return buf, nil
}

// readNode decodes a page through the snapshot's epoch.
func (s *Snapshot) readNode(id uint32) (*node, error) {
	buf, err := s.db.snapRead(id, s.epoch)
	if err != nil {
		return nil, err
	}
	return deserialize(buf)
}

// readPage returns the raw immutable page image as of the snapshot's
// epoch (zero-copy read paths decode it in place).
func (s *Snapshot) readPage(id uint32) ([]byte, error) {
	return s.db.snapRead(id, s.epoch)
}

// retain parks a superseded committed image for the snapshots that still
// need it. Called by commitWrite (under publishMu) before the new image
// is installed; commits are serialized, so versions of one page arrive
// in ascending supersededAt order.
func (db *DB) retain(id uint32, buf []byte, supersededAt uint64) {
	lockTimed(&db.versionMu, versionLockWait)
	db.retained[id] = append(db.retained[id], pageVersion{supersededAt: supersededAt, buf: buf})
	db.versionMu.Unlock()
	db.retainedCount.Add(1)
}

// lookupVersion finds the image of page id that was current at epoch:
// the retained version with the smallest supersededAt > epoch, or nil
// when the committed pool image is still the right one.
func (db *DB) lookupVersion(id uint32, epoch uint64) []byte {
	lockTimed(&db.versionMu, versionLockWait)
	defer db.versionMu.Unlock()
	for _, v := range db.retained[id] { // ascending supersededAt
		if v.supersededAt > epoch {
			return v.buf
		}
	}
	return nil
}

// pruneVersions retires every retained version with supersededAt <=
// threshold. The threshold was computed under publishMu; racing commits
// only add versions above it and racing closes only raise it, so a
// stale threshold is merely conservative.
func (db *DB) pruneVersions(threshold uint64) {
	if db.retainedCount.Load() == 0 {
		return
	}
	lockTimed(&db.versionMu, versionLockWait)
	var dropped int64
	for id, vs := range db.retained {
		i := 0
		for i < len(vs) && vs[i].supersededAt <= threshold {
			i++
		}
		if i == 0 {
			continue
		}
		dropped += int64(i)
		if i == len(vs) {
			delete(db.retained, id)
		} else {
			db.retained[id] = append([]pageVersion(nil), vs[i:]...)
		}
	}
	db.versionMu.Unlock()
	if dropped > 0 {
		db.retainedCount.Add(-dropped)
		db.retiredPages.Add(dropped)
	}
}

// writeTxn is the shadow state of the in-flight writer transaction
// (guarded by writerMu): the pages it has rewritten, its private page
// count, and its root. Nothing in it is visible to readers until
// commitWrite publishes the whole set.
type writeTxn struct {
	set    map[uint32][]byte
	npages uint32
	root   uint32
}

// beginWrite opens a transaction over the committed state. Caller holds
// writerMu.
func (db *DB) beginWrite() {
	if db.w.set == nil {
		db.w.set = make(map[uint32][]byte, 8)
	} else {
		clear(db.w.set)
	}
	db.w.npages = db.pager.npages.Load()
	db.w.root = db.root
}

// abortWrite discards the transaction's shadow pages, leaving the
// committed state untouched (a failed mutation is now atomic, where the
// pre-MVCC tree could be left half-written). The header and fast-path
// caches may describe discarded work, so they reset.
func (db *DB) abortWrite() {
	clear(db.w.set)
	db.fastValid = false
	db.hdrValid = false
}

// commitWrite atomically publishes the transaction: retained images
// first (so a concurrent snapshot that observes a new stamp always finds
// its version), then the shadow pages, the page count, and finally the
// new root and epoch. An empty write set (e.g. deleting an absent key)
// publishes nothing and keeps the epoch.
func (db *DB) commitWrite() error {
	if len(db.w.set) == 0 {
		return nil
	}
	newEpoch := db.epoch + 1
	oldNpages := db.pager.npages.Load()
	lockTimed(&db.publishMu, publishLockWait)
	if len(db.pins) > 0 {
		for id := range db.w.set {
			if id >= oldNpages {
				continue // freshly allocated: no prior image to retain
			}
			img, err := db.pager.read(id)
			if err != nil {
				db.publishMu.Unlock()
				return err
			}
			db.retain(id, img, newEpoch)
		}
	}
	// Replication: while subscribers are attached, remember which pages
	// this commit rewrote so the next flush cut can ship their images.
	if len(db.repSubs) > 0 {
		for id := range db.w.set {
			db.repDirty[id] = struct{}{}
		}
	}
	// Grow the page count before installing: installing a fresh page can
	// evict another fresh page of this same commit, and the memory
	// backend's eviction flush needs the backing slice grown already.
	db.pager.setNpages(db.w.npages)
	for id, buf := range db.w.set {
		db.pager.install(id, buf, newEpoch)
	}
	db.root = db.w.root
	db.epoch = newEpoch
	db.pager.epoch.Store(newEpoch)
	db.publishMu.Unlock()
	clear(db.w.set) // buffers now belong to the pool
	return nil
}

// readNodeW reads a page through the transaction: shadow copy first,
// committed image otherwise. Caller holds writerMu.
func (db *DB) readNodeW(id uint32) (*node, error) {
	if buf, ok := db.w.set[id]; ok {
		return deserialize(buf)
	}
	return db.readNode(id)
}

// writeNodeW serializes a node into the transaction's shadow set.
func (db *DB) writeNodeW(id uint32, n *node) error {
	buf, err := n.serialize()
	if err != nil {
		return err
	}
	db.w.set[id] = buf
	return nil
}

// walloc allocates a page id private to the transaction; the pool learns
// about it when commitWrite publishes the new page count.
func (db *DB) walloc() uint32 {
	id := db.w.npages
	db.w.npages++
	return id
}
