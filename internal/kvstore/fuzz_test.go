package kvstore

import (
	"bytes"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the recovery path as a log
// file: Open must never panic, and — the protocol's core promise — must
// never report a commit that was not fully written. The seeds include a
// real complete log, so the fuzzer's mutations explore truncations and
// corruptions of genuine batches, where the interesting prefix oracle
// applies: any strict prefix of a valid log must be discarded.
func FuzzWALReplay(f *testing.F) {
	base, validWAL := durableCommitScenario(f)

	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add([]byte("XMWAL1\x00\x00P garbage that is far too short"))
	f.Add(validWAL)
	f.Add(validWAL[:len(validWAL)/2])
	f.Add(append(append([]byte{}, validWAL...), validWAL...)) // two batches
	flipped := append([]byte{}, validWAL...)
	flipped[len(flipped)-3] ^= 0xff // corrupt the commit CRC
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, wal []byte) {
		fs := NewFaultFS()
		fs.WriteFile("f.db", base)
		fs.WriteFile("f.db.wal", wal)
		db, err := Open("f.db", &Options{FS: fs})
		if err != nil {
			t.Fatalf("Open failed on arbitrary wal: %v", err)
		}
		defer db.Close()
		recovered := db.Stats().Recoveries > 0

		// A strict prefix of the valid log is an interrupted commit: it
		// must never replay.
		if len(wal) < len(validWAL) && bytes.HasPrefix(validWAL, wal) && recovered {
			t.Fatalf("replayed an incomplete commit (prefix %d/%d bytes)", len(wal), len(validWAL))
		}
		// The untouched valid log must replay.
		if bytes.Equal(wal, validWAL) && !recovered {
			t.Fatal("complete valid log was discarded")
		}
		if !recovered {
			// Nothing replayed, so the store must be the pristine base:
			// the committed key is intact and readable.
			if v, ok, err := db.Get([]byte("alpha")); err != nil || !ok || string(v) != "1" {
				t.Fatalf("discarded log corrupted committed state: %q %v %v", v, ok, err)
			}
			if got := fs.FileBytes("f.db"); !bytes.Equal(got, base) {
				t.Fatalf("discarded log modified the store file (%d bytes, want %d)", len(got), len(base))
			}
		}
		// Replay (when it happens) only applies checksum-valid batches;
		// the log must be emptied either way.
		if leftover := fs.FileBytes("f.db.wal"); len(leftover) != 0 {
			t.Fatalf("wal not emptied after open: %d bytes", len(leftover))
		}
	})
}
