package kvstore

import (
	"sync"
	"time"

	"xmorph/internal/obs"
)

// Contention and durability instruments. These are the before-baseline
// for the planned MVCC-reads/group-commit work: how long writers block
// readers on the DB RWMutex, how hot the buffer-pool shard mutexes run,
// and what each commit's fsyncs cost.
//
// Lock waits are TryLock-gated: an uncontended acquisition takes the
// fast path (one extra CAS over a bare Lock) and never reads the clock;
// only acquisitions that actually block are timed and observed. The
// histograms therefore count *contended* acquisitions — their count is
// a contention-event counter and their quantiles are wait times.
var (
	dbLockWait    = obs.Default.Histogram("kvstore_db_lock_wait_seconds", obs.WaitBuckets)
	dbRLockWait   = obs.Default.Histogram("kvstore_db_rlock_wait_seconds", obs.WaitBuckets)
	shardLockWait = obs.Default.Histogram("kvstore_shard_lock_wait_seconds", obs.WaitBuckets)
	walFsyncTime  = obs.Default.Histogram("kvstore_wal_fsync_seconds", obs.WaitBuckets)
	fileFsyncTime = obs.Default.Histogram("kvstore_fsync_seconds", obs.WaitBuckets)
)

// lockTimed acquires mu, observing the wait only when contended.
func lockTimed(mu *sync.Mutex, h *obs.Histogram) {
	if mu.TryLock() {
		return
	}
	start := time.Now()
	mu.Lock()
	h.Observe(time.Since(start).Seconds())
}

// wlockTimed write-locks mu, observing the wait only when contended.
func wlockTimed(mu *sync.RWMutex, h *obs.Histogram) {
	if mu.TryLock() {
		return
	}
	start := time.Now()
	mu.Lock()
	h.Observe(time.Since(start).Seconds())
}

// rlockTimed read-locks mu, observing the wait only when contended —
// i.e. when a writer holds or is waiting for the lock.
func rlockTimed(mu *sync.RWMutex, h *obs.Histogram) {
	if mu.TryRLock() {
		return
	}
	start := time.Now()
	mu.RLock()
	h.Observe(time.Since(start).Seconds())
}

// fsyncTimed syncs f and always observes the latency: every fsync costs
// a device round-trip, so there is no uncontended fast path to skip.
func fsyncTimed(f File, h *obs.Histogram) error {
	start := time.Now()
	err := f.Sync()
	h.Observe(time.Since(start).Seconds())
	return err
}
