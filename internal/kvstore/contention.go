package kvstore

import (
	"sync"
	"time"

	"xmorph/internal/obs"
)

// Contention and durability instruments for the MVCC/group-commit
// design: how long writers queue behind each other (writerMu), how hot
// the commit-publish lock and the version-table lock run, how hot the
// buffer-pool shard mutexes are, what each commit's fsyncs cost, and
// how many Sync callers each group commit absorbs.
//
// Lock waits are TryLock-gated: an uncontended acquisition takes the
// fast path (one extra CAS over a bare Lock) and never reads the clock;
// only acquisitions that actually block are timed and observed. The
// histograms therefore count *contended* acquisitions — their count is
// a contention-event counter and their quantiles are wait times. Note
// what is *absent* relative to the pre-MVCC design: there is no
// tree-wide reader/writer lock anymore, so there is no histogram for
// readers blocking behind a writer — snapshot reads take only a shard
// mutex and (rarely) versionMu, both of which bound waits at
// microseconds.
var (
	writerLockWait  = obs.Default.Histogram("kvstore_writer_lock_wait_seconds", obs.WaitBuckets)
	publishLockWait = obs.Default.Histogram("kvstore_publish_lock_wait_seconds", obs.WaitBuckets)
	versionLockWait = obs.Default.Histogram("kvstore_version_lock_wait_seconds", obs.WaitBuckets)
	shardLockWait   = obs.Default.Histogram("kvstore_shard_lock_wait_seconds", obs.WaitBuckets)
	walFsyncTime    = obs.Default.Histogram("kvstore_wal_fsync_seconds", obs.WaitBuckets)
	fileFsyncTime   = obs.Default.Histogram("kvstore_fsync_seconds", obs.WaitBuckets)
	// groupCommitSize records, per group commit, how many Sync callers
	// shared the flush. A p50 above 1 under concurrent committers is the
	// direct evidence that WAL fsyncs are being amortized.
	groupCommitSize = obs.Default.Histogram("kvstore_group_commit_size", obs.GroupSizeBuckets)
)

// lockTimed acquires mu, observing the wait only when contended.
func lockTimed(mu *sync.Mutex, h *obs.Histogram) {
	if mu.TryLock() {
		return
	}
	start := time.Now()
	mu.Lock()
	h.Observe(time.Since(start).Seconds())
}

// wlockTimed write-locks mu, observing the wait only when contended.
func wlockTimed(mu *sync.RWMutex, h *obs.Histogram) {
	if mu.TryLock() {
		return
	}
	start := time.Now()
	mu.Lock()
	h.Observe(time.Since(start).Seconds())
}

// rlockTimed read-locks mu, observing the wait only when contended —
// i.e. when a writer holds or is waiting for the lock.
func rlockTimed(mu *sync.RWMutex, h *obs.Histogram) {
	if mu.TryRLock() {
		return
	}
	start := time.Now()
	mu.RLock()
	h.Observe(time.Since(start).Seconds())
}

// fsyncTimed syncs f and always observes the latency: every fsync costs
// a device round-trip, so there is no uncontended fast path to skip.
func fsyncTimed(f File, h *obs.Histogram) error {
	start := time.Now()
	err := f.Sync()
	h.Observe(time.Since(start).Seconds())
	return err
}
