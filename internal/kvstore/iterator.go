package kvstore

import (
	"bytes"
	"sync/atomic"
)

// Iterator walks keys in ascending order over one MVCC snapshot. It
// materializes its position as a stack of (page, index) frames; pages
// are re-read through the snapshot (buffer pool or retained versions),
// so iteration plays well with eviction and never observes a concurrent
// commit — the view is frozen at the snapshot's epoch for the whole
// scan.
//
// Iterators obtained from DB.Seek / DB.First own a private snapshot,
// released automatically when the scan is exhausted or errors; call
// Close to release it early (stopping mid-scan). Iterators from
// Snapshot.Seek / Snapshot.First borrow the caller's snapshot and never
// close it.
type Iterator struct {
	snap  *Snapshot
	owned bool // close snap when the scan ends
	stack []frame
	err   error
	key   []byte
	val   []byte
	valid bool
}

type frame struct {
	id  uint32
	n   *node
	idx int
}

// Seek positions a new iterator at the smallest key >= target, on a
// snapshot of the current committed state. The iterator's view is fixed
// at that instant: concurrent writers proceed without blocking it and
// without becoming visible to it.
func (db *DB) Seek(target []byte) *Iterator {
	it := db.OpenSnapshot().Seek(target)
	it.owned = true
	it.maybeAutoClose()
	return it
}

// First positions a new iterator at the smallest key (see Seek).
func (db *DB) First() *Iterator { return db.Seek(nil) }

// Seek positions an iterator at the smallest key >= target as of the
// snapshot's epoch. The iterator borrows the snapshot: closing is the
// caller's business, and multiple iterators may share one snapshot.
func (s *Snapshot) Seek(target []byte) *Iterator {
	atomic.AddInt64(&s.db.seeks, 1)
	it := &Iterator{snap: s}
	id := s.root
	for {
		n, err := s.readNode(id)
		if err != nil {
			it.err = err
			return it
		}
		if n.typ == pageLeaf {
			i, _ := search(n.keys, target)
			it.stack = append(it.stack, frame{id: id, n: n, idx: i})
			it.settle()
			return it
		}
		ci := childIndex(n.keys, target)
		it.stack = append(it.stack, frame{id: id, n: n, idx: ci})
		id = n.children[ci]
	}
}

// First positions an iterator at the snapshot's smallest key.
func (s *Snapshot) First() *Iterator { return s.Seek(nil) }

// settle loads the current entry, popping exhausted frames and descending
// into following subtrees until it finds a leaf entry or the end.
func (it *Iterator) settle() {
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		if top.n.typ == pageLeaf {
			if top.idx < len(top.n.keys) {
				it.key = top.n.keys[top.idx]
				it.val = top.n.vals[top.idx]
				it.valid = true
				return
			}
			it.stack = it.stack[:len(it.stack)-1]
			if len(it.stack) > 0 {
				it.stack[len(it.stack)-1].idx++
			}
			continue
		}
		if top.idx >= len(top.n.children) {
			it.stack = it.stack[:len(it.stack)-1]
			if len(it.stack) > 0 {
				it.stack[len(it.stack)-1].idx++
			}
			continue
		}
		child, err := it.snap.readNode(top.n.children[top.idx])
		if err != nil {
			it.err = err
			it.valid = false
			return
		}
		it.stack = append(it.stack, frame{id: top.n.children[top.idx], n: child, idx: 0})
		if child.typ == pageLeaf {
			// The scan just crossed into a new leaf, so it is provably
			// sequential: prefetch the next leaves along the sibling
			// chain into the buffer pool ahead of the cursor. Seek's
			// initial leaf never prefetches — a scan that ends inside
			// its first leaf (point-ish lookups, early callback stops)
			// reads nothing beyond its own root-to-leaf path. The chain
			// walked is the *current* committed one — read-ahead is
			// purely advisory (it only warms the pool), so a sibling
			// pointer that moved since the snapshot's epoch costs at
			// worst a useless prefetch, never a wrong result.
			it.snap.db.maybeReadAhead(child)
		}
	}
	it.valid = false
}

// maybeReadAhead prefetches up to db.readAhead leaf pages following n's
// sibling chain into the buffer pool.
func (db *DB) maybeReadAhead(n *node) {
	if db.readAhead <= 0 || n.next == 0 {
		return
	}
	db.pager.readAhead(n.next, db.readAhead, pageLeaf)
}

// maybeAutoClose releases an owned snapshot once the scan can make no
// further progress (exhausted or failed), so the common
// iterate-to-the-end pattern needs no explicit Close.
func (it *Iterator) maybeAutoClose() {
	if it.owned && (!it.valid || it.err != nil) {
		it.snap.Close() // idempotent
	}
}

// Close releases the iterator's snapshot if it owns one (iterators from
// DB.Seek / DB.First). Harmless to call more than once, or on an
// iterator that borrows a caller-managed snapshot.
func (it *Iterator) Close() {
	if it.owned {
		it.snap.Close()
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.valid && it.err == nil }

// Err returns the first error the iterator hit.
func (it *Iterator) Err() error { return it.err }

// Key returns the current key; valid until the next call to Next.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value; valid until the next call to Next.
func (it *Iterator) Value() []byte { return it.val }

// Next advances to the following key.
func (it *Iterator) Next() {
	if !it.Valid() {
		return
	}
	it.stack[len(it.stack)-1].idx++
	it.valid = false
	it.settle()
	it.maybeAutoClose()
}

// Ascend calls fn for every key in [start, end) in order; a nil end means
// "to the last key". fn returning false stops the scan. The whole scan
// runs on one snapshot, so it sees a consistent tree even with
// concurrent writers — without blocking them; fn must not mutate the
// store (a mutation would simply not be seen, but the restriction keeps
// the contract obvious).
func (db *DB) Ascend(start, end []byte, fn func(k, v []byte) bool) error {
	s := db.OpenSnapshot()
	defer s.Close()
	return s.Ascend(start, end, fn)
}

// Ascend calls fn for every key in [start, end) as of the snapshot's
// epoch (see DB.Ascend).
func (s *Snapshot) Ascend(start, end []byte, fn func(k, v []byte) bool) error {
	it := s.Seek(start)
	for it.Valid() {
		if end != nil && bytes.Compare(it.Key(), end) >= 0 {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return it.Err()
}

// AscendPrefix calls fn for every key with the given prefix, in order,
// on one snapshot (see Ascend).
func (db *DB) AscendPrefix(prefix []byte, fn func(k, v []byte) bool) error {
	s := db.OpenSnapshot()
	defer s.Close()
	return s.AscendPrefix(prefix, fn)
}

// AscendPrefix calls fn for every key with the given prefix as of the
// snapshot's epoch.
func (s *Snapshot) AscendPrefix(prefix []byte, fn func(k, v []byte) bool) error {
	it := s.Seek(prefix)
	for it.Valid() {
		if !bytes.HasPrefix(it.Key(), prefix) {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return it.Err()
}
