package kvstore

import (
	"bytes"
	"sync/atomic"
)

// Iterator walks keys in ascending order. It materializes its position as
// a stack of (page, index) frames; pages are re-read through the buffer
// pool, so iteration plays well with eviction. The frames hold decoded
// snapshots: mutating the tree (Put/Delete) while iterating leaves the
// iterator on a stale view — finish the scan first, as the store's
// callers do.
type Iterator struct {
	db    *DB
	stack []frame
	err   error
	key   []byte
	val   []byte
	valid bool
}

type frame struct {
	id  uint32
	n   *node
	idx int
}

// Seek positions the iterator at the smallest key >= target. The
// iterator is not synchronized against writers; use Ascend/AscendPrefix
// (which hold the store's read lock for the whole scan) when Puts may
// run concurrently.
func (db *DB) Seek(target []byte) *Iterator {
	atomic.AddInt64(&db.seeks, 1)
	it := &Iterator{db: db}
	id := db.root
	for {
		n, err := db.readNode(id)
		if err != nil {
			it.err = err
			return it
		}
		if n.typ == pageLeaf {
			i, _ := search(n.keys, target)
			it.stack = append(it.stack, frame{id: id, n: n, idx: i})
			it.settle()
			return it
		}
		ci := childIndex(n.keys, target)
		it.stack = append(it.stack, frame{id: id, n: n, idx: ci})
		id = n.children[ci]
	}
}

// First positions the iterator at the smallest key.
func (db *DB) First() *Iterator { return db.Seek(nil) }

// settle loads the current entry, popping exhausted frames and descending
// into following subtrees until it finds a leaf entry or the end.
func (it *Iterator) settle() {
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		if top.n.typ == pageLeaf {
			if top.idx < len(top.n.keys) {
				it.key = top.n.keys[top.idx]
				it.val = top.n.vals[top.idx]
				it.valid = true
				return
			}
			it.stack = it.stack[:len(it.stack)-1]
			if len(it.stack) > 0 {
				it.stack[len(it.stack)-1].idx++
			}
			continue
		}
		if top.idx >= len(top.n.children) {
			it.stack = it.stack[:len(it.stack)-1]
			if len(it.stack) > 0 {
				it.stack[len(it.stack)-1].idx++
			}
			continue
		}
		child, err := it.db.readNode(top.n.children[top.idx])
		if err != nil {
			it.err = err
			it.valid = false
			return
		}
		it.stack = append(it.stack, frame{id: top.n.children[top.idx], n: child, idx: 0})
		if child.typ == pageLeaf {
			// The scan just crossed into a new leaf, so it is provably
			// sequential: prefetch the next leaves along the sibling
			// chain into the buffer pool ahead of the cursor. Seek's
			// initial leaf never prefetches — a scan that ends inside
			// its first leaf (point-ish lookups, early callback stops)
			// reads nothing beyond its own root-to-leaf path.
			it.db.maybeReadAhead(child)
		}
	}
	it.valid = false
}

// maybeReadAhead prefetches up to db.readAhead leaf pages following n's
// sibling chain. It runs under whatever lock the scan holds (Ascend and
// AscendPrefix hold the store's read lock), so the chain is stable.
func (db *DB) maybeReadAhead(n *node) {
	if db.readAhead <= 0 || n.next == 0 {
		return
	}
	db.pager.readAhead(n.next, db.readAhead, pageLeaf)
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.valid && it.err == nil }

// Err returns the first error the iterator hit.
func (it *Iterator) Err() error { return it.err }

// Key returns the current key; valid until the next call to Next.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value; valid until the next call to Next.
func (it *Iterator) Value() []byte { return it.val }

// Next advances to the following key.
func (it *Iterator) Next() {
	if !it.Valid() {
		return
	}
	it.stack[len(it.stack)-1].idx++
	it.valid = false
	it.settle()
}

// Ascend calls fn for every key in [start, end) in order; a nil end means
// "to the last key". fn returning false stops the scan. The scan holds
// the store's read lock, so it sees a consistent tree even with
// concurrent writers; fn must not mutate the store.
func (db *DB) Ascend(start, end []byte, fn func(k, v []byte) bool) error {
	rlockTimed(&db.mu, dbRLockWait)
	defer db.mu.RUnlock()
	it := db.Seek(start)
	for it.Valid() {
		if end != nil && bytes.Compare(it.Key(), end) >= 0 {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return it.Err()
}

// AscendPrefix calls fn for every key with the given prefix, in order,
// under the store's read lock (see Ascend).
func (db *DB) AscendPrefix(prefix []byte, fn func(k, v []byte) bool) error {
	rlockTimed(&db.mu, dbRLockWait)
	defer db.mu.RUnlock()
	it := db.Seek(prefix)
	for it.Valid() {
		if !bytes.HasPrefix(it.Key(), prefix) {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return it.Err()
}
