package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Iterator walks keys in ascending order over one MVCC snapshot. Internal
// pages are materialized as a stack of (page, index) frames; the leaf the
// cursor is in is decoded *in place* — entries are parsed straight out of
// the immutable page image, so a sequential scan allocates one small
// offset index per leaf instead of two copies per entry. Pages are
// re-read through the snapshot (buffer pool or retained versions), so
// iteration plays well with eviction and never observes a concurrent
// commit — the view is frozen at the snapshot's epoch for the whole scan.
//
// Iterators obtained from DB.Seek / DB.First own a private snapshot,
// released automatically when the scan is exhausted or errors; call
// Close to release it early (stopping mid-scan). Iterators from
// Snapshot.Seek / Snapshot.First borrow the caller's snapshot and never
// close it.
type Iterator struct {
	snap    *Snapshot
	owned   bool // close snap when the scan ends
	stack   []frame
	leaf    leafView
	leafIdx int
	inLeaf  bool
	err     error
	key     []byte
	val     []byte
	valid   bool
}

type frame struct {
	id  uint32
	n   *node
	idx int
}

// leafView is a zero-copy decoding of one leaf page: offs indexes the
// entries inside the immutable page buffer, and key/val return subslices
// of it. Because committed page images are never mutated in place (the
// pool swaps pointers), the subslices stay valid as long as the caller
// holds them — retaining one merely pins the page image for the GC.
type leafView struct {
	buf  []byte
	next uint32
	offs []int32 // offset of entry i's key-length field
}

// parse indexes buf's entries, reusing the offs backing array across
// leaves — after the first few leaves a sequential scan stops allocating.
func (v *leafView) parse(buf []byte) error {
	if len(buf) < 7 || buf[0] != pageLeaf {
		return fmt.Errorf("kvstore: corrupt leaf page")
	}
	v.buf = buf
	nkeys := int(binary.BigEndian.Uint16(buf[1:]))
	v.next = binary.BigEndian.Uint32(buf[3:])
	v.offs = v.offs[:0]
	off := 7
	for i := 0; i < nkeys; i++ {
		if off+2 > len(buf) {
			return fmt.Errorf("kvstore: corrupt leaf page: key %d", i)
		}
		kl := int(binary.BigEndian.Uint16(buf[off:]))
		if off+2+kl+2 > len(buf) {
			return fmt.Errorf("kvstore: corrupt leaf page: key %d length", i)
		}
		vl := int(binary.BigEndian.Uint16(buf[off+2+kl:]))
		if off+2+kl+2+vl > len(buf) {
			return fmt.Errorf("kvstore: corrupt leaf page: value %d length", i)
		}
		v.offs = append(v.offs, int32(off))
		off += 2 + kl + 2 + vl
	}
	return nil
}

func (v *leafView) count() int { return len(v.offs) }

func (v *leafView) key(i int) []byte {
	off := int(v.offs[i])
	kl := int(binary.BigEndian.Uint16(v.buf[off:]))
	return v.buf[off+2 : off+2+kl]
}

func (v *leafView) val(i int) []byte {
	off := int(v.offs[i])
	kl := int(binary.BigEndian.Uint16(v.buf[off:]))
	vo := off + 2 + kl
	vl := int(binary.BigEndian.Uint16(v.buf[vo:]))
	return v.buf[vo+2 : vo+2+vl]
}

// search returns the index of the first key >= target.
func (v *leafView) search(target []byte) int {
	lo, hi := 0, v.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(v.key(mid), target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Seek positions a new iterator at the smallest key >= target, on a
// snapshot of the current committed state. The iterator's view is fixed
// at that instant: concurrent writers proceed without blocking it and
// without becoming visible to it.
func (db *DB) Seek(target []byte) *Iterator {
	it := db.OpenSnapshot().Seek(target)
	it.owned = true
	it.maybeAutoClose()
	return it
}

// First positions a new iterator at the smallest key (see Seek).
func (db *DB) First() *Iterator { return db.Seek(nil) }

// Seek positions an iterator at the smallest key >= target as of the
// snapshot's epoch. The iterator borrows the snapshot: closing is the
// caller's business, and multiple iterators may share one snapshot.
func (s *Snapshot) Seek(target []byte) *Iterator {
	atomic.AddInt64(&s.db.seeks, 1)
	it := &Iterator{snap: s}
	id := s.root
	for {
		buf, err := s.readPage(id)
		if err != nil {
			it.err = err
			return it
		}
		if len(buf) > 0 && buf[0] == pageLeaf {
			if err := it.leaf.parse(buf); err != nil {
				it.err = err
				return it
			}
			it.inLeaf = true
			it.leafIdx = it.leaf.search(target)
			it.settle()
			return it
		}
		n, err := deserialize(buf)
		if err != nil {
			it.err = err
			return it
		}
		ci := childIndex(n.keys, target)
		it.stack = append(it.stack, frame{id: id, n: n, idx: ci})
		id = n.children[ci]
	}
}

// First positions an iterator at the snapshot's smallest key.
func (s *Snapshot) First() *Iterator { return s.Seek(nil) }

// settle loads the current entry, popping exhausted frames and descending
// into following subtrees until it finds a leaf entry or the end.
func (it *Iterator) settle() {
	for {
		if it.inLeaf {
			if it.leafIdx < it.leaf.count() {
				it.key = it.leaf.key(it.leafIdx)
				it.val = it.leaf.val(it.leafIdx)
				it.valid = true
				return
			}
			it.inLeaf = false
			if len(it.stack) > 0 {
				it.stack[len(it.stack)-1].idx++
			}
			continue
		}
		if len(it.stack) == 0 {
			it.valid = false
			return
		}
		top := &it.stack[len(it.stack)-1]
		if top.idx >= len(top.n.children) {
			it.stack = it.stack[:len(it.stack)-1]
			if len(it.stack) > 0 {
				it.stack[len(it.stack)-1].idx++
			}
			continue
		}
		id := top.n.children[top.idx]
		buf, err := it.snap.readPage(id)
		if err != nil {
			it.err = err
			it.valid = false
			return
		}
		if len(buf) > 0 && buf[0] == pageLeaf {
			if err := it.leaf.parse(buf); err != nil {
				it.err = err
				it.valid = false
				return
			}
			it.inLeaf = true
			it.leafIdx = 0
			// The scan just crossed into a new leaf, so it is provably
			// sequential: prefetch the next leaves along the sibling
			// chain into the buffer pool ahead of the cursor. Seek's
			// initial leaf never prefetches — a scan that ends inside
			// its first leaf (point-ish lookups, early callback stops)
			// reads nothing beyond its own root-to-leaf path. The chain
			// walked is the *current* committed one — read-ahead is
			// purely advisory (it only warms the pool), so a sibling
			// pointer that moved since the snapshot's epoch costs at
			// worst a useless prefetch, never a wrong result.
			it.snap.db.maybeReadAhead(it.leaf.next)
			continue
		}
		child, err := deserialize(buf)
		if err != nil {
			it.err = err
			it.valid = false
			return
		}
		it.stack = append(it.stack, frame{id: id, n: child, idx: 0})
	}
}

// maybeReadAhead prefetches up to db.readAhead leaf pages following the
// sibling chain starting at next into the buffer pool.
func (db *DB) maybeReadAhead(next uint32) {
	if db.readAhead <= 0 || next == 0 {
		return
	}
	db.pager.readAhead(next, db.readAhead, pageLeaf)
}

// maybeAutoClose releases an owned snapshot once the scan can make no
// further progress (exhausted or failed), so the common
// iterate-to-the-end pattern needs no explicit Close.
func (it *Iterator) maybeAutoClose() {
	if it.owned && (!it.valid || it.err != nil) {
		it.snap.Close() // idempotent
	}
}

// Close releases the iterator's snapshot if it owns one (iterators from
// DB.Seek / DB.First). Harmless to call more than once, or on an
// iterator that borrows a caller-managed snapshot.
func (it *Iterator) Close() {
	if it.owned {
		it.snap.Close()
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.valid && it.err == nil }

// Err returns the first error the iterator hit.
func (it *Iterator) Err() error { return it.err }

// Key returns the current key. The slice aliases the immutable page
// image: it stays valid after Next, but retaining it pins the page.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value (aliasing rules as for Key).
func (it *Iterator) Value() []byte { return it.val }

// Next advances to the following key.
func (it *Iterator) Next() {
	if !it.Valid() {
		return
	}
	it.leafIdx++ // a valid position is always inside a leaf
	it.valid = false
	it.settle()
	it.maybeAutoClose()
}

// Ascend calls fn for every key in [start, end) in order; a nil end means
// "to the last key". fn returning false stops the scan. The whole scan
// runs on one snapshot, so it sees a consistent tree even with
// concurrent writers — without blocking them; fn must not mutate the
// store (a mutation would simply not be seen, but the restriction keeps
// the contract obvious). The k/v slices alias immutable page images:
// copy before retaining to avoid pinning pages.
func (db *DB) Ascend(start, end []byte, fn func(k, v []byte) bool) error {
	s := db.OpenSnapshot()
	defer s.Close()
	return s.Ascend(start, end, fn)
}

// Ascend calls fn for every key in [start, end) as of the snapshot's
// epoch (see DB.Ascend).
func (s *Snapshot) Ascend(start, end []byte, fn func(k, v []byte) bool) error {
	it := s.Seek(start)
	for it.Valid() {
		if end != nil && bytes.Compare(it.Key(), end) >= 0 {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return it.Err()
}

// AscendPrefix calls fn for every key with the given prefix, in order,
// on one snapshot (see Ascend).
func (db *DB) AscendPrefix(prefix []byte, fn func(k, v []byte) bool) error {
	s := db.OpenSnapshot()
	defer s.Close()
	return s.AscendPrefix(prefix, fn)
}

// AscendPrefix calls fn for every key with the given prefix as of the
// snapshot's epoch.
func (s *Snapshot) AscendPrefix(prefix []byte, fn func(k, v []byte) bool) error {
	it := s.Seek(prefix)
	for it.Valid() {
		if !bytes.HasPrefix(it.Key(), prefix) {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return it.Err()
}
