// Package core is the XMorph 2.0 interpreter — the paper's primary
// contribution assembled into one pipeline (Figure 8):
//
//	parse guard -> compile against the adorned shape (type analysis,
//	label-to-type report) -> potential-information-loss check (CAST
//	enforcement) -> shape generation -> render to XML.
//
// The compile phase never touches the data, only the adorned shape; the
// render phase streams over the touched type sequences (Section VII). The
// two phases are timed separately because Figure 10 plots them separately.
package core

import (
	"fmt"
	"io"
	"time"

	"xmorph/internal/closest"
	"xmorph/internal/guard"
	"xmorph/internal/loss"
	"xmorph/internal/render"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/store"
	"xmorph/internal/xmltree"
)

// Checked is a compiled and loss-checked guard, ready to render.
type Checked struct {
	Program *guard.Program
	Plan    *semantics.Plan
	Loss    *loss.Report
	// CompileTime covers parsing, shape compilation, and the loss check.
	CompileTime time.Duration
}

// Analyze compiles guardSrc against an input shape and runs the
// information-loss analysis WITHOUT enforcing the guard's CAST mode — for
// inspecting why a guard would be rejected. No data is read.
func Analyze(guardSrc string, sh *shape.Shape) (*Checked, error) {
	start := time.Now()
	prog, err := guard.Parse(guardSrc)
	if err != nil {
		return nil, err
	}
	plan, err := semantics.Compile(prog, sh)
	if err != nil {
		return nil, err
	}
	return &Checked{
		Program:     prog,
		Plan:        plan,
		Loss:        loss.Analyze(plan),
		CompileTime: time.Since(start),
	}, nil
}

// Check is Analyze plus type enforcement: by default only strongly-typed
// guards pass; CAST modifiers widen what is admitted (Section III). This
// is the whole "compile" cost of Figure 10.
func Check(guardSrc string, sh *shape.Shape) (*Checked, error) {
	checked, err := Analyze(guardSrc, sh)
	if err != nil {
		return nil, err
	}
	if err := loss.Enforce(checked.Program.Cast, checked.Loss); err != nil {
		return nil, err
	}
	return checked, nil
}

// Result is a completed transformation.
type Result struct {
	*Checked
	Output *xmltree.Document
	// RenderTime covers the single-pass render of the composed target.
	RenderTime time.Duration
}

// LabelReport renders the label-to-type report (Section VIII).
func (c *Checked) LabelReport() string {
	if len(c.Plan.Labels) == 0 {
		return "no labels resolved\n"
	}
	out := ""
	for _, l := range c.Plan.Labels {
		switch {
		case l.Filled:
			out += fmt.Sprintf("label %q: no matching type; TYPE-FILL manufactured <%s>\n", l.Label, l.Label)
		case len(l.Candidates) > 1:
			out += fmt.Sprintf("label %q: ambiguous over %v; resolved to %v\n", l.Label, l.Candidates, l.Types)
		default:
			out += fmt.Sprintf("label %q: %v\n", l.Label, l.Types)
		}
	}
	return out
}

// Render runs the checked guard over a source in a single pass: composed
// stages were already folded into one target shape at compile time
// (Section VI's Ψ[P](G, S) = render(G, ξ[P](S))), so the data is read
// once regardless of how many operations the guard composes — the property
// Figure 16 measures.
func (c *Checked) Render(src render.Source) (*Result, error) {
	start := time.Now()
	out, err := render.Render(src, c.Plan.ComposedTarget())
	if err != nil {
		return nil, err
	}
	return &Result{
		Checked:    c,
		Output:     out,
		RenderTime: time.Since(start),
	}, nil
}

// Transform compiles and runs a guard over an in-memory document.
func Transform(guardSrc string, doc *xmltree.Document) (*Result, error) {
	checked, err := Check(guardSrc, shape.FromDocument(doc))
	if err != nil {
		return nil, err
	}
	return checked.Render(doc)
}

// TransformString parses an XML string and transforms it; convenience for
// examples and tests.
func TransformString(guardSrc, xmlSrc string) (*Result, error) {
	doc, err := xmltree.ParseString(xmlSrc)
	if err != nil {
		return nil, err
	}
	return Transform(guardSrc, doc)
}

// TransformStored compiles a guard against the stored adorned shape of a
// shredded document (the shape record is tiny relative to the data) and
// renders from the store's lazy type sequences.
func TransformStored(guardSrc string, st *store.Store, docName string) (*Result, error) {
	sh, err := st.Shape(docName)
	if err != nil {
		return nil, err
	}
	checked, err := Check(guardSrc, sh)
	if err != nil {
		return nil, err
	}
	doc, err := st.Doc(docName)
	if err != nil {
		return nil, err
	}
	return checked.Render(doc)
}

// Verify empirically compares the closest graphs of a source document and
// a rendered output (Definition 5, run literally over the instances) and
// quantifies the loss — the "30% new information" refinement the paper's
// Section X asks for. It materializes both closest graphs, so use it on
// documents, not whole corpora; the static Loss report is the scalable
// check.
func Verify(src, out *xmltree.Document) closest.Result {
	return closest.Compare(closest.Build(src), closest.Build(out))
}

// Stream renders the checked guard directly to w without materializing
// the output tree (Section VII's streaming evaluation); it returns the
// number of elements and attributes written.
func (c *Checked) Stream(src render.Source, w io.Writer) (int, error) {
	return render.Stream(src, c.Plan.ComposedTarget(), w)
}
