// Package core is the XMorph 2.0 interpreter — the paper's primary
// contribution assembled into one pipeline (Figure 8):
//
//	parse guard -> compile against the adorned shape (type analysis,
//	label-to-type report) -> potential-information-loss check (CAST
//	enforcement) -> shape generation -> render to XML.
//
// The compile phase never touches the data, only the adorned shape; the
// render phase streams over the touched type sequences (Section VII). The
// two phases are timed separately because Figure 10 plots them separately.
package core

import (
	"fmt"
	"io"
	"time"

	"xmorph/internal/closest"
	"xmorph/internal/guard"
	"xmorph/internal/kvstore"
	"xmorph/internal/loss"
	"xmorph/internal/obs"
	"xmorph/internal/render"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/store"
	"xmorph/internal/xmltree"
)

// Pipeline metrics, reported into the default registry on every compile
// and render (a handful of atomic adds per query; always on). The CLI's
// --metrics flag and xmorphbench's /metrics endpoint expose them.
var (
	metricTransforms     = obs.Default.Counter("xmorph_transforms_total")
	metricCompileErrors  = obs.Default.Counter("xmorph_compile_errors_total")
	metricCompileSeconds = obs.Default.Histogram("xmorph_compile_seconds", obs.DurationBuckets)
	metricRenderSeconds  = obs.Default.Histogram("xmorph_render_seconds", obs.DurationBuckets)
)

// Checked is a compiled and loss-checked guard, ready to render.
type Checked struct {
	Program *guard.Program
	Plan    *semantics.Plan
	Loss    *loss.Report
	// CompileTime covers parsing, shape compilation, and the loss check.
	CompileTime time.Duration
}

// Analyze compiles guardSrc against an input shape and runs the
// information-loss analysis WITHOUT enforcing the guard's CAST mode — for
// inspecting why a guard would be rejected. No data is read.
//
// Under a non-nil parent span it opens a "compile" child covering the
// whole compile phase with "parse-guard", "typecheck" (annotated with the
// resolved label count), and "loss-check" (annotated with the typing
// verdict) below it. A nil parent is free.
func Analyze(guardSrc string, sh *shape.Shape, parent *obs.Span) (*Checked, error) {
	start := time.Now()
	csp := parent.Child("compile")
	defer csp.End()

	psp := csp.Child("parse-guard")
	prog, err := guard.Parse(guardSrc)
	psp.End()
	if err != nil {
		metricCompileErrors.Inc()
		return nil, err
	}

	tsp := csp.Child("typecheck")
	plan, err := semantics.Compile(prog, sh)
	tsp.End()
	if err != nil {
		metricCompileErrors.Inc()
		return nil, err
	}
	tsp.Set("labels", int64(len(plan.Labels)))

	lsp := csp.Child("loss-check")
	rep := loss.Analyze(plan)
	lsp.SetStr("verdict", rep.Verdict.String())
	lsp.End()

	compileTime := time.Since(start)
	metricCompileSeconds.Observe(compileTime.Seconds())
	return &Checked{
		Program:     prog,
		Plan:        plan,
		Loss:        rep,
		CompileTime: compileTime,
	}, nil
}

// Check is Analyze plus type enforcement: by default only strongly-typed
// guards pass; CAST modifiers widen what is admitted (Section III). This
// is the whole "compile" cost of Figure 10. Span behaviour matches
// Analyze; a nil parent is free.
func Check(guardSrc string, sh *shape.Shape, parent *obs.Span) (*Checked, error) {
	checked, err := Analyze(guardSrc, sh, parent)
	if err != nil {
		return nil, err
	}
	if err := loss.Enforce(checked.Program.Cast, checked.Loss); err != nil {
		metricCompileErrors.Inc()
		return nil, err
	}
	return checked, nil
}

// Result is a completed transformation.
type Result struct {
	*Checked
	Output *xmltree.Document
	// RenderTime covers the single-pass render of the composed target.
	RenderTime time.Duration
}

// LabelReport renders the label-to-type report (Section VIII).
func (c *Checked) LabelReport() string {
	if len(c.Plan.Labels) == 0 {
		return "no labels resolved\n"
	}
	out := ""
	for _, l := range c.Plan.Labels {
		switch {
		case l.Filled:
			out += fmt.Sprintf("label %q: no matching type; TYPE-FILL manufactured <%s>\n", l.Label, l.Label)
		case len(l.Candidates) > 1:
			out += fmt.Sprintf("label %q: ambiguous over %v; resolved to %v\n", l.Label, l.Candidates, l.Types)
		default:
			out += fmt.Sprintf("label %q: %v\n", l.Label, l.Types)
		}
	}
	return out
}

// Render runs the checked guard over a source in a single pass: composed
// stages were already folded into one target shape at compile time
// (Section VI's Ψ[P](G, S) = render(G, ξ[P](S))), so the data is read
// once regardless of how many operations the guard composes — the property
// Figure 16 measures.
// Under a non-nil parent span it opens a "render" child annotated with
// the closest-join statistics and output node count.
func (c *Checked) Render(src render.Source, parent *obs.Span) (*Result, error) {
	rsp := parent.Child("render")
	res, err := c.RenderOn(src, rsp)
	rsp.End()
	return res, err
}

// RenderOn runs the render phase annotating rsp directly — for callers
// (like the store-aware transform and the engine facade) that own the
// render span and fold extra measurements (page I/O deltas) into it.
func (c *Checked) RenderOn(src render.Source, rsp *obs.Span) (*Result, error) {
	start := time.Now()
	out, err := render.Render(src, c.Plan.ComposedTarget(), rsp)
	if err != nil {
		return nil, err
	}
	renderTime := time.Since(start)
	metricTransforms.Inc()
	metricRenderSeconds.Observe(renderTime.Seconds())
	return &Result{
		Checked:    c,
		Output:     out,
		RenderTime: renderTime,
	}, nil
}

// Transform compiles and runs a guard over an in-memory document. Under
// a non-nil parent span it covers shape extraction, compile, and render.
func Transform(guardSrc string, doc *xmltree.Document, parent *obs.Span) (*Result, error) {
	ssp := parent.Child("shape")
	sh := shape.FromDocument(doc)
	ssp.End()
	checked, err := Check(guardSrc, sh, parent)
	if err != nil {
		return nil, err
	}
	return checked.Render(doc, parent)
}

// TransformString parses an XML string and transforms it; convenience for
// examples and tests.
func TransformString(guardSrc, xmlSrc string) (*Result, error) {
	doc, err := xmltree.ParseString(xmlSrc)
	if err != nil {
		return nil, err
	}
	return Transform(guardSrc, doc, nil)
}

// TransformStored compiles a guard against the stored adorned shape of a
// shredded document (the shape record is tiny relative to the data) and
// renders from the store's lazy type sequences.
//
// Under a non-nil parent span each phase span additionally carries the
// pages it read from the store, so a trace shows where the block I/O of
// Figs. 11-12 actually happens: load-shape touches the tiny AdornedShapes
// record, render drags in the type sequences.
func TransformStored(guardSrc string, st *store.Store, docName string, parent *obs.Span) (*Result, error) {
	pagesRead := func(before kvstore.Stats) int64 { return st.Stats().BlocksRead - before.BlocksRead }

	ssp := parent.Child("load-shape")
	before := st.Stats()
	sh, err := st.Shape(docName)
	ssp.Set("pages-read", pagesRead(before))
	ssp.End()
	if err != nil {
		return nil, err
	}

	checked, err := Check(guardSrc, sh, parent)
	if err != nil {
		return nil, err
	}

	dsp := parent.Child("load-doc")
	before = st.Stats()
	doc, err := st.Doc(docName)
	dsp.Set("pages-read", pagesRead(before))
	dsp.End()
	if err != nil {
		return nil, err
	}

	rsp := parent.Child("render")
	before = st.Stats()
	res, rerr := checked.RenderOn(doc, rsp)
	rsp.Set("pages-read", pagesRead(before))
	rsp.End()
	return res, rerr
}

// Verify empirically compares the closest graphs of a source document and
// a rendered output (Definition 5, run literally over the instances) and
// quantifies the loss — the "30% new information" refinement the paper's
// Section X asks for. It materializes both closest graphs, so use it on
// documents, not whole corpora; the static Loss report is the scalable
// check.
func Verify(src, out *xmltree.Document) closest.Result {
	return closest.Compare(closest.Build(src), closest.Build(out))
}

// Stream renders the checked guard directly to w without materializing
// the output tree (Section VII's streaming evaluation); it returns the
// number of elements and attributes written.
// Under a non-nil parent span it opens a "stream" child annotated with
// join statistics, nodes emitted, and bytes written.
func (c *Checked) Stream(src render.Source, w io.Writer, parent *obs.Span) (int, error) {
	ssp := parent.Child("stream")
	start := time.Now()
	n, err := render.Stream(src, c.Plan.ComposedTarget(), w, ssp)
	ssp.End()
	if err == nil {
		metricTransforms.Inc()
		metricRenderSeconds.Observe(time.Since(start).Seconds())
	}
	return n, err
}
