package core

import (
	"strings"
	"testing"

	"xmorph/internal/closest"
	"xmorph/internal/gen/dblp"
	"xmorph/internal/gen/nasa"
	"xmorph/internal/gen/xmark"
	"xmorph/internal/store"
	"xmorph/internal/xmltree"
)

// TestIntegrationBattery runs a battery of guards over all three generated
// corpora, through both the in-memory and the stored pipeline, and checks
// the cross-cutting invariants: both pipelines agree, values are
// preserved, and every rendered parent/child pair is closest in the
// source.
func TestIntegrationBattery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration battery is slow")
	}
	corpora := []struct {
		name   string
		doc    *xmltree.Document
		guards []string
	}{
		{
			name: "dblp",
			doc:  dblp.Generate(dblp.Config{Publications: 300, Seed: 11}),
			guards: []string{
				"CAST MORPH author [ title [ year ] ]",
				"CAST MORPH dblp [ article [ author title ] ]",
				"CAST MUTATE article [ year [ title ] ]",
				"CAST MORPH author | TRANSLATE author -> writer",
			},
		},
		{
			name: "nasa",
			doc:  nasa.Generate(nasa.Config{Datasets: 60, Seed: 11}),
			guards: []string{
				"CAST MORPH dataset [ title author [ lastname ] ]",
				"CAST MUTATE (DROP tableHead)",
				"CAST MORPH (RESTRICT dataset [ reference ]) [ title ]",
			},
		},
		{
			name: "xmark",
			doc:  xmark.Generate(xmark.Config{Factor: 0.004, Seed: 11}),
			guards: []string{
				"CAST MORPH person [ name emailaddress ]",
				"CAST MORPH open_auction [ initial current itemref [ @item ] ]",
				"CAST-WIDENING MUTATE (NEW listing) [ open_auction ]",
			},
		},
	}

	for _, c := range corpora {
		st := store.OpenMemory()
		if _, err := st.Shred(c.name, strings.NewReader(c.doc.XML(false)), nil); err != nil {
			t.Fatalf("%s: shred: %v", c.name, err)
		}
		for _, g := range c.guards {
			mem, err := Transform(g, c.doc, nil)
			if err != nil {
				t.Errorf("%s %q in-memory: %v", c.name, g, err)
				continue
			}
			stored, err := TransformStored(g, st, c.name, nil)
			if err != nil {
				t.Errorf("%s %q stored: %v", c.name, g, err)
				continue
			}
			if mem.Output.XML(false) != stored.Output.XML(false) {
				t.Errorf("%s %q: in-memory and stored outputs differ (%d vs %d nodes)",
					c.name, g, mem.Output.Size(), stored.Output.Size())
			}
			// Closeness preservation on every rendered edge.
			for _, n := range mem.Output.Nodes() {
				if n.Parent == nil || n.Src == nil || n.Parent.Src == nil {
					continue
				}
				if !closest.IsClosest(n.Src.Origin(), n.Parent.Src.Origin()) {
					t.Errorf("%s %q: output edge %s/%s not closest in source",
						c.name, g, n.Parent.Name, n.Name)
					break
				}
			}
			// Value preservation: every output value equals its origin's.
			for _, n := range mem.Output.Nodes() {
				if n.Src != nil && n.Value != n.Src.Origin().Value {
					t.Errorf("%s %q: value corrupted at %s", c.name, g, n.Name)
					break
				}
			}
		}
		st.Close()
	}
}

// TestIntegrationStoredStreaming: the streaming path over the store agrees
// with the materialized output for a larger corpus.
func TestIntegrationStoredStreaming(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Factor: 0.003, Seed: 4})
	st := store.OpenMemory()
	defer st.Close()
	if _, err := st.Shred("x", strings.NewReader(doc.XML(false)), nil); err != nil {
		t.Fatal(err)
	}
	sh, err := st.Shape("x")
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Check("CAST MORPH person [ name emailaddress address [ city country ] ]", sh, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := st.Doc("x")
	if err != nil {
		t.Fatal(err)
	}
	res, err := checked.Render(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if _, err := checked.Stream(d, &b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != res.Output.XML(false) {
		t.Error("stored streaming diverged from materialized output")
	}
}
