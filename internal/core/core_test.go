package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"xmorph/internal/closest"
	"xmorph/internal/loss"
	"xmorph/internal/obs"
	"xmorph/internal/shape"
	"xmorph/internal/store"
	"xmorph/internal/xmltree"
)

const fig1a = `<data>
  <book>
    <title>X</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
  <book>
    <title>Y</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
</data>`

const fig1b = `<data>
  <publisher>
    <name>W</name>
    <book>
      <title>X</title>
      <author><name>V</name></author>
    </book>
    <book>
      <title>Y</title>
      <author><name>V</name></author>
    </book>
  </publisher>
</data>`

const fig1c = `<data>
  <author>
    <name>V</name>
    <book>
      <title>X</title>
      <publisher><name>W</name></publisher>
    </book>
    <book>
      <title>Y</title>
      <publisher><name>W</name></publisher>
    </book>
  </author>
</data>`

// TestIntroScenario is the paper's Section I story end to end: one guard,
// three shapes, same data out.
func TestIntroScenario(t *testing.T) {
	const g = "MORPH author [ name book [ title ] ]"
	a, err := TransformString(g, fig1a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TransformString(g, fig1b)
	if err != nil {
		t.Fatal(err)
	}
	if a.Output.XML(false) != b.Output.XML(false) {
		t.Errorf("instances (a) and (b) should transform identically:\n%s\n%s",
			a.Output.XML(false), b.Output.XML(false))
	}
	if a.Loss.Verdict != loss.StronglyTyped {
		t.Errorf("intro guard verdict = %v, want strongly-typed", a.Loss.Verdict)
	}
}

// TestDefaultModeRejectsWideningGuard: Figure 3's guard must be rejected
// without a cast and accepted with CAST-WIDENING.
func TestDefaultModeRejectsWideningGuard(t *testing.T) {
	const g = "MORPH author [ title name publisher [ name ] ]"
	_, err := TransformString(g, fig1c)
	if err == nil {
		t.Fatal("widening guard accepted in strict mode")
	}
	if _, ok := err.(*loss.CastError); !ok {
		t.Fatalf("error = %T %v, want CastError", err, err)
	}
	if _, err := TransformString("CAST-WIDENING "+g, fig1c); err != nil {
		t.Errorf("CAST-WIDENING rejected: %v", err)
	}
	if _, err := TransformString("CAST "+g, fig1c); err != nil {
		t.Errorf("CAST rejected: %v", err)
	}
	if _, err := TransformString("CAST-NARROWING "+g, fig1c); err == nil {
		t.Error("CAST-NARROWING should not admit a widening guard")
	}
}

func TestLabelReportText(t *testing.T) {
	res, err := TransformString("MORPH author [ name ]", fig1a)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.LabelReport()
	if !strings.Contains(rep, `label "name": ambiguous`) {
		t.Errorf("label report missing ambiguity note:\n%s", rep)
	}
}

func TestTransformStoredMatchesInMemory(t *testing.T) {
	st := store.OpenMemory()
	defer st.Close()
	if _, err := st.Shred("d", strings.NewReader(fig1b), nil); err != nil {
		t.Fatal(err)
	}
	// Moving publisher below book duplicates the shared publisher under
	// each book, so the static check demands a widening cast.
	const g = "CAST-WIDENING MUTATE book [ publisher [ name ] ]"
	fromStore, err := TransformStored(g, st, "d", nil)
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := TransformString(g, fig1b)
	if err != nil {
		t.Fatal(err)
	}
	if fromStore.Output.XML(false) != inMem.Output.XML(false) {
		t.Errorf("stored and in-memory transforms differ:\n%s\n%s",
			fromStore.Output.XML(false), inMem.Output.XML(false))
	}
}

func TestTransformStoredMissingDoc(t *testing.T) {
	st := store.OpenMemory()
	defer st.Close()
	if _, err := TransformStored("MUTATE a", st, "nope", nil); err == nil {
		t.Error("missing document accepted")
	}
}

func TestBadGuardSurfacesSyntaxError(t *testing.T) {
	_, err := TransformString("MORPH [", fig1a)
	if err == nil || !strings.Contains(err.Error(), "syntax error") {
		t.Errorf("error = %v", err)
	}
}

func TestCompileAndRenderTimed(t *testing.T) {
	res, err := TransformString("MUTATE data", fig1a)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompileTime <= 0 || res.RenderTime <= 0 {
		t.Errorf("times not recorded: compile=%v render=%v", res.CompileTime, res.RenderTime)
	}
}

// randomDoc builds small random documents over a fixed label alphabet.
func randomDoc(r *rand.Rand) *xmltree.Document {
	labels := []string{"a", "b", "c", "d"}
	b := xmltree.NewBuilder().Elem("root")
	depth := 0
	n := 2 + r.Intn(30)
	for i := 0; i < n; i++ {
		if depth > 0 && r.Intn(3) == 0 {
			b.End()
			depth--
			continue
		}
		b.Elem(labels[r.Intn(len(labels))])
		if r.Intn(2) == 0 {
			b.Text("v")
			b.End()
		} else {
			depth++
		}
	}
	for ; depth >= 0; depth-- {
		b.End()
	}
	return b.MustDocument()
}

// TestPropertyIdentityMutateReversible: for random documents, MUTATE root
// is statically strongly-typed and empirically reversible.
func TestPropertyIdentityMutateReversible(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomDoc(r))
	}}
	err := quick.Check(func(d *xmltree.Document) bool {
		checked, err := Check("MUTATE root", shapeOf(d), nil)
		if err != nil {
			return false
		}
		if checked.Loss.Verdict != loss.StronglyTyped {
			return false
		}
		res, err := checked.Render(d, nil)
		if err != nil {
			return false
		}
		cmp := closest.Compare(closest.Build(d), closest.Build(res.Output))
		return cmp.Reversible()
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyRenderIsClosenessPreserving: every parent/child edge in any
// MORPH output joins two vertices that are closest in the source
// (Definition 4's defining property).
func TestPropertyRenderIsClosenessPreserving(t *testing.T) {
	guards := []string{
		"CAST MORPH a [ b ]",
		"CAST MORPH b [ c [ d ] ]",
		"CAST MORPH root [ a [ b ] c ]",
		"CAST MUTATE a [ b ]",
	}
	cfg := &quick.Config{MaxCount: 40, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(randomDoc(r))
	}}
	for _, g := range guards {
		g := g
		err := quick.Check(func(d *xmltree.Document) bool {
			checked, err := Check(g, shapeOf(d), nil)
			if err != nil {
				// The random doc may lack the guard's types entirely:
				// a type mismatch is a legitimate outcome, not a failure.
				return isTypeError(err)
			}
			res, err := checked.Render(d, nil)
			if err != nil {
				return false
			}
			ok := true
			for _, n := range res.Output.Nodes() {
				if n.Parent == nil || n.Src == nil || n.Parent.Src == nil {
					continue
				}
				if !closest.IsClosest(n.Src.Origin(), n.Parent.Src.Origin()) {
					ok = false
				}
			}
			return ok
		}, cfg)
		if err != nil {
			t.Errorf("guard %q: %v", g, err)
		}
	}
}

func isTypeError(err error) bool {
	return strings.Contains(err.Error(), "type mismatch") ||
		strings.Contains(err.Error(), "no parent type is closest")
}

func shapeOf(d *xmltree.Document) *shape.Shape { return shape.FromDocument(d) }

// TestVerifyQuantifiesLoss exercises the Section X refinement: the
// empirical comparison counts exactly what was dropped or manufactured.
func TestVerifyQuantifiesLoss(t *testing.T) {
	const src = `<data>
	  <book><author><title>A</title></author></book>
	  <book><author><name>V</name><title>B</title></author></book>
	</data>`
	doc := xmltree.MustParse(src)

	// Identity: nothing lost, nothing created.
	id, err := Transform("MUTATE data", doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := Verify(doc, id.Output)
	if !r.Reversible() || r.LossPct() != 0 || r.CreatedPct() != 0 {
		t.Errorf("identity verify = %+v", r)
	}
	if r.SrcVertices != doc.Size() {
		t.Errorf("SrcVertices = %d, want %d", r.SrcVertices, doc.Size())
	}

	// Lossy: the nameless author's subtree vanishes.
	lossy, err := Transform("CAST MUTATE name [ author ]", doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	r = Verify(doc, lossy.Output)
	if r.Inclusive {
		t.Errorf("lossy transform verified as inclusive: %+v", r)
	}
	if r.LostVertices == 0 || r.LossPct() <= 0 {
		t.Errorf("lost vertices not counted: %+v", r)
	}

	// Manufacturing: NEW wrappers count as created vertices.
	made, err := Transform("CAST-WIDENING MUTATE (NEW scribe) [ author ]", doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	r = Verify(doc, made.Output)
	if r.CreatedVertices != 2 {
		t.Errorf("created vertices = %d, want one scribe per author", r.CreatedVertices)
	}
	if r.CreatedPct() <= 0 {
		t.Errorf("created pct = %f", r.CreatedPct())
	}
}

func TestCheckedStreamMatchesOutput(t *testing.T) {
	doc := xmltree.MustParse(fig1a)
	checked, err := Check("MORPH author [ name book [ title ] ]", shapeOf(doc), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := checked.Render(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	n, err := checked.Stream(doc, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != res.Output.XML(false) {
		t.Errorf("stream differs from render:\n%s\n%s", b.String(), res.Output.XML(false))
	}
	if n != res.Output.Size() {
		t.Errorf("stream count %d, output size %d", n, res.Output.Size())
	}
}

func TestTransformStoredSpans(t *testing.T) {
	st := store.OpenMemory()
	_, err := st.Shred("b", strings.NewReader(
		`<data><book><title>X</title><author><name>V</name></author></book></data>`), nil)

	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New("run")
	res, err := TransformStored("MORPH author [ name title ]", st, "b", tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Size() == 0 {
		t.Fatal("empty output")
	}
	tr.Finish()
	text := tr.Text()
	for _, span := range []string{"load-shape", "compile", "parse-guard", "typecheck", "loss-check", "load-doc", "render"} {
		if !strings.Contains(text, span) {
			t.Errorf("trace missing span %q:\n%s", span, text)
		}
	}
	for _, attr := range []string{"pages-read=", "labels=", "verdict=strongly-typed", "joins=", "closest-pairs=", "nodes-out="} {
		if !strings.Contains(text, attr) {
			t.Errorf("trace missing annotation %q:\n%s", attr, text)
		}
	}
}

func TestUntracedPathUnchanged(t *testing.T) {
	// A nil parent span must not panic anywhere in the traced pipeline.
	st := store.OpenMemory()
	if _, err := st.Shred("b", strings.NewReader(`<data><t>x</t></data>`), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := TransformStored("CAST MUTATE data", st, "b", nil); err != nil {
		t.Fatal(err)
	}
}
