package plan

import (
	"strings"
	"testing"

	"xmorph/internal/guard"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

func TestAxisOf(t *testing.T) {
	cases := []struct {
		join, src string
		want      Axis
	}{
		{"a.b", "a.b", AxisSelf},
		{"", "a", AxisDown},
		{"", "a.b.c", AxisDown},
		{"a", "a.b", AxisDown},
		{"a.b", "a.b.c.d", AxisDown},
		{"a.b.c", "a.b", AxisUp},
		{"a.b.c.d", "a", AxisUp},
		{"a.b", "a.c", AxisCross},
		{"a.b.c", "a.b.d", AxisCross},
		// Component boundaries, not string prefixes.
		{"a.bb", "a.b", AxisCross},
		{"a.b", "a.bb", AxisCross},
	}
	for _, tc := range cases {
		if got := AxisOf(tc.join, tc.src); got != tc.want {
			t.Errorf("AxisOf(%q, %q) = %s, want %s", tc.join, tc.src, got, tc.want)
		}
	}
}

const libDoc = `<lib>
  <book>
    <title>T1</title>
    <author><name>A1</name><award>W1</award></author>
  </book>
  <book>
    <title>T2</title>
    <author><name>A2</name></author>
  </book>
</lib>`

// classify compiles a guard against libDoc and classifies its composed
// target.
func classify(t *testing.T, guardSrc string) Decision {
	t.Helper()
	doc := xmltree.MustParse(libDoc)
	plan, err := semantics.Compile(guard.MustParse(guardSrc), shape.FromDocument(doc))
	if err != nil {
		t.Fatalf("compile %q: %v", guardSrc, err)
	}
	return Classify(plan.ComposedTarget())
}

func TestClassifyStreamable(t *testing.T) {
	cases := []struct {
		guard string
		scans int
	}{
		// Pure descendant projection: one scan per sourced node.
		{"CAST MORPH book [ title author [ name ] ]", 4},
		// Identity preserves the whole down-axis chain.
		{"MUTATE lib", 6},
		// Renaming changes nothing about the joins.
		{"CAST MORPH book [ title ] | TRANSLATE book -> volume", 2},
		// Self-axis RESTRICT recursion plus down-axis probe.
		{"CAST MORPH (RESTRICT book [ award ]) [ title ]", 3},
		// Up-axis leaf kid: an ancestor-stack lookup, no join.
		{"CAST MORPH name [ book ]", 2},
		// Up-axis RESTRICT: existence probe against the ancestor.
		{"CAST MORPH (RESTRICT name [ lib ]) ", 2},
		// Wrapper anchored on a down-axis child.
		{"CAST-WIDENING MORPH (NEW entry) [ book [ title ] ]", 2},
	}
	for _, tc := range cases {
		d := classify(t, tc.guard)
		if !d.Streamable {
			t.Errorf("%q: store-backed (%s), want streamable", tc.guard, d.Reason)
			continue
		}
		if d.Scans != tc.scans {
			t.Errorf("%q: scans = %d, want %d", tc.guard, d.Scans, tc.scans)
		}
	}
}

func TestClassifyStoreBacked(t *testing.T) {
	cases := []struct {
		guard  string
		reason string
	}{
		// Sibling branches: title and name share no prefix relation.
		{"CAST MORPH title [ name ]", "cross-axis closest join"},
		// Rendering an ancestor's children would re-emit its subtree.
		{"CAST MORPH name [ author [ award ] ]", "ancestor-axis"},
		// Cross-axis RESTRICT probe.
		{"CAST MORPH (RESTRICT title [ name ]) ", "cross-axis RESTRICT"},
	}
	for _, tc := range cases {
		d := classify(t, tc.guard)
		if d.Streamable {
			t.Errorf("%q: streamable, want store-backed", tc.guard)
			continue
		}
		if !strings.Contains(d.Reason, tc.reason) {
			t.Errorf("%q: reason %q, want containing %q", tc.guard, d.Reason, tc.reason)
		}
		if !strings.Contains(d.String(), "store-backed") {
			t.Errorf("%q: String() = %q", tc.guard, d.String())
		}
	}
}

// TestClassifyFillOnlyWrapper: a manufactured subtree with no sourced
// child anywhere is a static fill — trivially streamable, zero scans.
func TestClassifyFillOnlyWrapper(t *testing.T) {
	tgt := &semantics.Target{Roots: []*semantics.TNode{{
		Name: "top",
		Kids: []*semantics.TNode{{Name: "inner"}},
	}}}
	d := Classify(tgt)
	if !d.Streamable || d.Scans != 0 {
		t.Errorf("fill-only wrapper: %+v", d)
	}
}

// TestClassifyWrapperUpAnchor: a wrapper anchored on an ancestor-axis
// child cannot stream (each parent would re-wrap the same ancestor).
func TestClassifyWrapperUpAnchor(t *testing.T) {
	d := classify(t, "CAST-WIDENING MORPH name [ (NEW w) [ author ] ]")
	if d.Streamable {
		t.Error("up-anchored wrapper should be store-backed")
	}
	if !strings.Contains(d.Reason, "anchors on") {
		t.Errorf("reason: %q", d.Reason)
	}
}

// TestClassifyFirstFailureWins: the reported reason is the first blocking
// join in target order.
func TestClassifyFirstFailureWins(t *testing.T) {
	d := classify(t, "CAST MORPH title [ name award ]")
	if d.Streamable {
		t.Fatal("want store-backed")
	}
	if !strings.Contains(d.Reason, "name") {
		t.Errorf("first failure should mention name: %q", d.Reason)
	}
}
