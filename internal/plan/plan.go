// Package plan classifies compiled guards for execution strategy: a
// target shape is either streamable — renderable in one Dewey-ordered
// pass over the source type sequences with constant memory — or
// store-backed, needing the materialized sort-merge closest joins of
// internal/render.
//
// The classification rests on the axis of every closest join the target
// asks for. For a join from parent source type J to node source type S
// (both rooted type paths), TypeLCP(J, S) makes the closest partners of
// a J-vertex v one of four shapes:
//
//   - self (J == S): the single partner is v itself.
//   - down (J a proper path prefix of S): partners are exactly the
//     S-vertices inside v's subtree — a contiguous run of the S
//     sequence, consumable by a forward cursor because consecutive
//     parents of one type have disjoint, document-ordered subtrees.
//   - up (S a proper path prefix of J): the single partner is v's
//     ancestor at depth |S|, i.e. the S-vertex whose Dewey number is
//     v's prefix — an ancestor-stack lookup, no join at all. Rooted
//     type paths guarantee it exists.
//   - cross (neither prefixes the other): partners share a Dewey prefix
//     shorter than both types' depths; enumerating them needs the
//     sort-merge over both whole sequences, and a group of a parents ×
//     t partners re-reads the same partners per parent — not possible
//     in one pass with constant memory.
//
// A target streams iff every rendered join is self/down (or up into a
// leaf), and every RESTRICT requirement chain avoids cross joins.
// Requirement probes are existence checks, so up-axis requirements may
// recurse: their cursors park on the found witness and re-answer
// consistently for repeated probes of the same ancestor.
package plan

import (
	"fmt"
	"strings"

	"xmorph/internal/semantics"
	"xmorph/internal/xmltree"
)

// Axis is the shape of one closest join, derived from the two rooted
// type paths.
type Axis uint8

const (
	// AxisSelf joins a type to itself: the partner is the vertex itself.
	AxisSelf Axis = iota
	// AxisDown joins to a descendant type: partners are the contiguous
	// subtree run of the child sequence.
	AxisDown
	// AxisUp joins to an ancestor type: the partner is the unique
	// ancestor whose Dewey number prefixes the vertex's.
	AxisUp
	// AxisCross joins sibling branches: needs the sort-merge join.
	AxisCross
)

func (a Axis) String() string {
	switch a {
	case AxisSelf:
		return "self"
	case AxisDown:
		return "down"
	case AxisUp:
		return "up"
	default:
		return "cross"
	}
}

// AxisOf classifies the closest join from parent source type join to
// node source type src. An empty join is the root scan: every vertex of
// src is a partner, which behaves like a down-axis run over the whole
// sequence.
func AxisOf(join, src string) Axis {
	if join == src {
		return AxisSelf
	}
	if isPathPrefix(join, src) {
		return AxisDown
	}
	if isPathPrefix(src, join) {
		return AxisUp
	}
	return AxisCross
}

// isPathPrefix reports whether p is a proper component-wise prefix of c.
// The empty path prefixes everything (the root scan).
func isPathPrefix(p, c string) bool {
	if p == "" {
		return c != ""
	}
	return len(c) > len(p) && strings.HasPrefix(c, p) && c[len(p)] == xmltree.TypeSep[0]
}

// Decision is the streamability verdict for one compiled target.
type Decision struct {
	// Streamable reports the target renders in one Dewey-ordered pass.
	Streamable bool
	// Reason names the first blocking join when not streamable.
	Reason string
	// Scans counts the forward cursors a streaming run opens (one per
	// down- or up-axis join, including requirement probes).
	Scans int
}

// String renders the verdict for explain output.
func (d Decision) String() string {
	if d.Streamable {
		return fmt.Sprintf("streamable (%d scans)", d.Scans)
	}
	return "store-backed: " + d.Reason
}

// Classify derives the streamability verdict of a composed target. The
// rules mirror the renderer exactly:
//
//   - A sourced rendered node must join self or down from its parent's
//     source, or up as a childless leaf (rendering an ancestor's
//     children would re-emit one subtree under many parents).
//   - A manufactured wrapper with no sourced child renders a static
//     fill subtree (always streamable); otherwise its first sourced
//     child must join self or down, and siblings join from that child.
//   - RESTRICT requirements recurse over self/down/up joins (existence
//     probes only); sourceless requirements are vacuous, as in the
//     renderer.
//   - Any cross-axis join anywhere makes the target store-backed.
func Classify(tgt *semantics.Target) Decision {
	c := &classifier{}
	for _, root := range tgt.Roots {
		if root.Source == "" {
			c.wrapper(root, "")
		} else {
			c.sourced(root, "")
		}
	}
	return Decision{Streamable: c.reason == "", Reason: c.reason, Scans: c.scans}
}

type classifier struct {
	scans  int
	reason string
}

func (c *classifier) fail(format string, args ...any) {
	if c.reason == "" {
		c.reason = fmt.Sprintf(format, args...)
	}
}

// sourced classifies a rendered node populated from tn.Source, joined
// from the parent source type join.
func (c *classifier) sourced(tn *semantics.TNode, join string) {
	switch AxisOf(join, tn.Source) {
	case AxisSelf:
	case AxisDown:
		c.scans++
	case AxisUp:
		c.scans++
		if len(tn.Kids) > 0 {
			c.fail("ancestor-axis type %q <- %s cannot stream children: the ancestor's subtree spans many %s parents", tn.Name, tn.Source, join)
			return
		}
		c.requires(tn)
		return
	case AxisCross:
		c.fail("cross-axis closest join %s -> %s needs a sort-merge over both sequences", join, tn.Source)
		return
	}
	c.requires(tn)
	for _, kid := range tn.Kids {
		if kid.Source == "" {
			c.wrapper(kid, tn.Source)
		} else {
			c.sourced(kid, tn.Source)
		}
	}
}

// wrapper classifies a manufactured (NEW / TYPE-FILL) node. The
// renderer emits one wrapper per instance of its first sourced child;
// with none, a single static fill subtree. Requirements on manufactured
// nodes are never checked by the renderer, so they do not constrain
// streamability either.
func (c *classifier) wrapper(tn *semantics.TNode, join string) {
	first := firstSourced(tn)
	if first == nil {
		return // static fill subtree: manufactured kids only
	}
	switch AxisOf(join, first.Source) {
	case AxisSelf:
	case AxisDown:
		c.scans++
	default:
		c.fail("wrapper %q anchors on %s joined %s-axis from %s; streaming needs a self or descendant anchor", tn.Name, first.Source, AxisOf(join, first.Source), join)
		return
	}
	c.requires(first)
	for _, kid := range first.Kids {
		if kid.Source == "" {
			c.wrapper(kid, first.Source)
		} else {
			c.sourced(kid, first.Source)
		}
	}
	for _, kid := range tn.Kids {
		if kid == first {
			continue
		}
		if kid.Source == "" {
			c.wrapper(kid, first.Source)
		} else {
			c.sourced(kid, first.Source)
		}
	}
}

// requires classifies tn's RESTRICT requirement chains, which join from
// tn.Source.
func (c *classifier) requires(tn *semantics.TNode) {
	for _, req := range tn.Require {
		c.require(req, tn.Source)
	}
}

func (c *classifier) require(req *semantics.TNode, join string) {
	if req.Source == "" {
		return // vacuous, mirroring the renderer's satisfies
	}
	switch AxisOf(join, req.Source) {
	case AxisSelf:
	case AxisDown, AxisUp:
		c.scans++
	case AxisCross:
		c.fail("cross-axis RESTRICT probe %s -> %s needs a sort-merge over both sequences", join, req.Source)
		return
	}
	for _, kid := range req.Kids {
		c.require(kid, req.Source)
	}
}

func firstSourced(tn *semantics.TNode) *semantics.TNode {
	for _, k := range tn.Kids {
		if k.Source != "" {
			return k
		}
	}
	return nil
}
