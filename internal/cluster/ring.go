package cluster

import (
	"fmt"
	"sort"
)

// Consistent-hash ring: document names map to shards through virtual
// nodes, so adding a shard moves only ~1/N of the name space and every
// process that builds a ring with the same (shards, vnodes, seed)
// agrees on the placement — the routing is a pure function of the
// configuration, never of arrival order.

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters; the ring folds
// its seed into the offset so differently-seeded rings place names
// independently.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hash64(seed uint64, s string) uint64 {
	h := uint64(fnvOffset) ^ (seed * fnvPrime)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	// Raw FNV-1a leaves similar short strings clustered in the high bits
	// (the trailing bytes barely diffuse upward), which would collapse the
	// ring's placement. A 64-bit avalanche finalizer spreads every input
	// bit across the word.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringPoint is one virtual node: a position on the 64-bit circle owned
// by a shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is an immutable consistent-hash ring over a fixed shard count.
type Ring struct {
	seed   uint64
	points []ringPoint
}

// NewRing places vnodes virtual nodes per shard on the circle. The
// layout is deterministic in (shards, vnodes, seed).
func NewRing(shards, vnodes int, seed uint64) *Ring {
	if shards < 1 {
		shards = 1
	}
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{seed: seed, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := hash64(seed, fmt.Sprintf("shard-%d-vnode-%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare) break on shard id so the sort — and
		// therefore the routing — stays deterministic.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Lookup returns the shard owning name: the first virtual node at or
// clockwise of the name's hash, wrapping at the top of the circle.
func (r *Ring) Lookup(name string) int {
	h := hash64(r.seed, name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Shards returns the number of distinct shards on the ring.
func (r *Ring) Shards() int {
	max := 0
	for _, p := range r.points {
		if p.shard > max {
			max = p.shard
		}
	}
	return max + 1
}
