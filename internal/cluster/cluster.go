// Package cluster shards the XMorph pipeline across N engines behind
// the same verb surface a single engine exposes (engine.Backend), so
// xmorphd serves a sharded deployment from unchanged handler code.
//
// Placement: a consistent-hash ring (virtual nodes, deterministic seed)
// maps each document name to one shard; every verb on a name routes to
// that shard, and Docs scatter/gathers across all of them. Each shard
// is one leader engine — the only writer — plus M read replicas: memory
// stores fed by the leader's committed WAL batches (kvstore replication
// feed), each with an applier goroutine draining the subscription.
//
// Reads prefer replicas round-robin, under a read-your-writes epoch
// floor: the cluster records the leader's commit LSN after each write
// it routed, and a replica serves a read only once its applied LSN has
// reached that floor — otherwise the read falls through to the leader
// (counted in cluster_fallthroughs_total). Replication is asynchronous,
// so the floor is what keeps the cluster's own write-then-read
// sequences coherent without waiting for replicas on the write path.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"xmorph/internal/engine"
	"xmorph/internal/kvstore"
	"xmorph/internal/obs"
	"xmorph/internal/store"
)

// Config sizes a cluster. The zero value is a single shard with no
// replicas — functionally a plain engine behind the routing layer.
type Config struct {
	// Shards is the number of shard leaders (default 1).
	Shards int
	// Replicas is the number of read replicas per shard (default 0).
	Replicas int
	// Dir, when set, makes shard leaders file-backed at
	// Dir/shard-<i>.db; empty keeps them in memory (tests).
	Dir string
	// Durability enables the WAL commit protocol on file-backed leaders.
	Durability bool
	// VNodes is the virtual-node count per shard on the ring (default 64).
	VNodes int
	// Seed fixes the ring's hash placement (default 0: a fixed layout).
	Seed uint64
	// CachePages sizes each shard leader's buffer pool (0: kvstore
	// default). Replicas are memory-backed and unaffected.
	CachePages int
	// EngineOpts apply to every engine the cluster builds (leaders and
	// replicas); store-level options inside them are ignored for
	// replicas, which are always memory stores.
	EngineOpts []engine.Option
	// OpenLeader overrides shard-leader store construction — the chaos
	// harness injects fault filesystems here. Called at New and again by
	// RestartShard; when nil the cluster opens Dir-based (or memory)
	// stores itself.
	OpenLeader func(shard int) (*store.Store, error)
}

// Cluster is a sharded Backend. It is safe for concurrent use; shard
// restart (chaos recovery) excludes in-flight verbs on that shard only.
type Cluster struct {
	cfg    Config
	ring   *Ring
	shards []*shardState

	fallthroughs *obs.Counter
}

var _ engine.Backend = (*Cluster)(nil)

// shardState is one shard: the leader engine (sole writer), its read
// replicas, and the read-your-writes floor. mu excludes restart from
// in-flight verbs: verbs hold it shared for their whole call, restart
// exclusively.
type shardState struct {
	idx      int
	mu       sync.RWMutex
	leader   *engine.Engine
	replicas []*replica
	// floor is the leader commit LSN after the last write the cluster
	// routed here; a replica below it cannot serve reads.
	floor atomic.Uint64
	// rr round-robins replica picks.
	rr atomic.Uint64
	// recovered accumulates WAL recoveries across leader restarts (the
	// per-store counter resets when the store reopens).
	recovered atomic.Int64

	requests *obs.Counter
	lagGauge *obs.Gauge
}

// replica is one read follower: a memory store fed by the leader's
// commit feed, wrapped in its own engine (own guard cache), with an
// applier goroutine draining the subscription.
type replica struct {
	eng  *engine.Engine
	sub  *kvstore.CommitSub
	done chan struct{}
	// applyErr records a failed batch apply; the replica stops applying
	// and stops serving (its applied LSN freezes below future floors).
	applyErr atomic.Value
}

// newReplica subscribes to leader's commit feed, applies the bootstrap
// synchronously (the replica is query-consistent from birth), and
// starts the applier.
func newReplica(leader *store.Store, engOpts []engine.Option) (*replica, error) {
	sub, err := leader.SubscribeCommits()
	if err != nil {
		return nil, err
	}
	st := store.OpenMemory()
	boot, ok := sub.Next()
	if !ok {
		sub.Close()
		return nil, errors.New("cluster: replication feed closed before bootstrap")
	}
	if err := st.ApplyCommitBatch(boot); err != nil {
		sub.Close()
		return nil, fmt.Errorf("cluster: replica bootstrap: %w", err)
	}
	r := &replica{eng: engine.New(st, engOpts...), sub: sub, done: make(chan struct{})}
	go func() {
		defer close(r.done)
		for {
			b, ok := sub.Next()
			if !ok {
				return
			}
			if err := st.ApplyCommitBatch(b); err != nil {
				r.applyErr.Store(err)
				return
			}
		}
	}()
	return r, nil
}

// close detaches the replica: the subscription closes, the applier
// drains out, and the engine (with its store) shuts down.
func (r *replica) close() error {
	r.sub.Close()
	<-r.done
	return r.eng.Close()
}

// New builds a cluster per cfg: the ring, the shard leaders, and each
// leader's replicas (bootstrapped synchronously).
func New(cfg Config) (*Cluster, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Replicas < 0 {
		cfg.Replicas = 0
	}
	if cfg.VNodes < 1 {
		cfg.VNodes = 64
	}
	c := &Cluster{
		cfg:          cfg,
		ring:         NewRing(cfg.Shards, cfg.VNodes, cfg.Seed),
		fallthroughs: obs.Default.Counter("cluster_fallthroughs_total"),
	}
	obs.Default.Gauge("cluster_shards").Set(float64(cfg.Shards))
	obs.Default.Gauge("cluster_replicas_per_shard").Set(float64(cfg.Replicas))
	for i := 0; i < cfg.Shards; i++ {
		st, err := c.openLeader(i)
		if err != nil {
			c.Close()
			return nil, err
		}
		s := &shardState{
			idx:      i,
			leader:   engine.New(st, cfg.EngineOpts...),
			requests: obs.Default.Counter(fmt.Sprintf("cluster_shard_%d_requests_total", i)),
			lagGauge: obs.Default.Gauge(fmt.Sprintf("cluster_shard_%d_replica_lag", i)),
		}
		s.floor.Store(st.CommitLSN())
		for j := 0; j < cfg.Replicas; j++ {
			r, err := newReplica(st, cfg.EngineOpts)
			if err != nil {
				s.leader.Close()
				c.Close()
				return nil, err
			}
			s.replicas = append(s.replicas, r)
		}
		c.shards = append(c.shards, s)
	}
	return c, nil
}

// openLeader builds shard i's leader store: the OpenLeader hook, a
// Dir-based file store, or a memory store, in that order of preference.
func (c *Cluster) openLeader(i int) (*store.Store, error) {
	if c.cfg.OpenLeader != nil {
		return c.cfg.OpenLeader(i)
	}
	var opts []store.Option
	if c.cfg.CachePages > 0 {
		opts = append(opts, store.WithCachePages(c.cfg.CachePages))
	}
	if c.cfg.Dir == "" {
		return store.OpenMemory(opts...), nil
	}
	opts = append(opts, store.WithDurability(c.cfg.Durability))
	return store.Open(filepath.Join(c.cfg.Dir, fmt.Sprintf("shard-%d.db", i)), opts...)
}

// shardFor routes a document name through the ring.
func (c *Cluster) shardFor(name string) *shardState {
	return c.shards[c.ring.Lookup(name)]
}

// Shards reports the shard count (the bench harness scales over it).
func (c *Cluster) Shards() int { return len(c.shards) }

// reader picks the engine a read on this shard runs against: a replica
// whose applied LSN has reached the read-your-writes floor (round-robin
// across eligible ones), else the leader. Callers hold s.mu shared.
func (s *shardState) reader(c *Cluster) *engine.Engine {
	if len(s.replicas) == 0 {
		return s.leader
	}
	floor := s.floor.Load()
	n := len(s.replicas)
	start := int(s.rr.Add(1)) % n
	for i := 0; i < n; i++ {
		r := s.replicas[(start+i)%n]
		if r.applyErr.Load() == nil && r.eng.Store().AppliedLSN() >= floor {
			return r.eng
		}
	}
	c.fallthroughs.Inc()
	return s.leader
}

// advanceFloor records the leader's commit LSN after a routed write:
// the shard's new read-your-writes floor.
func (s *shardState) advanceFloor() {
	lsn := s.leader.Store().CommitLSN()
	for {
		cur := s.floor.Load()
		if lsn <= cur || s.floor.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// Shred routes the document to its shard's leader and advances the
// read-your-writes floor past the shred's commit.
func (c *Cluster) Shred(ctx context.Context, name string, r io.Reader, sp *obs.Span) (*engine.ShredInfo, error) {
	s := c.shardFor(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.requests.Inc()
	info, err := s.leader.Shred(ctx, name, r, sp)
	if err != nil {
		return nil, err
	}
	s.advanceFloor()
	return info, nil
}

// Drop routes to the owning shard's leader and advances the floor.
func (c *Cluster) Drop(ctx context.Context, name string, sp *obs.Span) error {
	s := c.shardFor(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.requests.Inc()
	if err := s.leader.Drop(ctx, name, sp); err != nil {
		return err
	}
	s.advanceFloor()
	return nil
}

// Update routes the edit script to the owning shard's leader — the only
// writer — and advances the read-your-writes floor past the update's
// commit, so a follow-up read through a replica waits for the patched
// subtrees to replicate.
func (c *Cluster) Update(ctx context.Context, name, script string, sp *obs.Span) (*engine.UpdateInfo, error) {
	s := c.shardFor(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.requests.Inc()
	info, err := s.leader.Update(ctx, name, script, sp)
	if err != nil {
		return nil, err
	}
	s.advanceFloor()
	return info, nil
}

// Docs scatter/gathers the listing across every shard (each through its
// reader pick) and merges: names are disjoint across shards, so the
// merge is a sorted union.
func (c *Cluster) Docs(ctx context.Context, sp *obs.Span) ([]string, error) {
	var all []string
	for _, s := range c.shards {
		s.mu.RLock()
		s.requests.Inc()
		names, err := s.reader(c).Docs(ctx, sp)
		s.mu.RUnlock()
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", s.idx, err)
		}
		all = append(all, names...)
	}
	sort.Strings(all)
	return all, nil
}

// Shape routes the read to the owning shard's reader pick.
func (c *Cluster) Shape(ctx context.Context, name string, sp *obs.Span) (*engine.Shape, error) {
	s := c.shardFor(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.requests.Inc()
	return s.reader(c).Shape(ctx, name, sp)
}

// Check routes the compile to the owning shard's reader pick (each
// engine keeps its own compiled-guard cache).
func (c *Cluster) Check(ctx context.Context, name, guardSrc string, sp *obs.Span) (*engine.Checked, error) {
	s := c.shardFor(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.requests.Inc()
	return s.reader(c).Check(ctx, name, guardSrc, sp)
}

// Run routes the transformation to the owning shard's reader pick.
func (c *Cluster) Run(ctx context.Context, name, guardSrc string, opts engine.RunOpts) (*engine.RunResult, error) {
	s := c.shardFor(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.requests.Inc()
	return s.reader(c).Run(ctx, name, guardSrc, opts)
}

// Query routes the guarded query to the owning shard's reader pick.
func (c *Cluster) Query(ctx context.Context, name, guardSrc, query string, opts engine.QueryOpts) (*engine.QueryResult, error) {
	s := c.shardFor(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.requests.Inc()
	return s.reader(c).Query(ctx, name, guardSrc, query, opts)
}

// Sync flushes every shard leader.
func (c *Cluster) Sync() error {
	var errs []error
	for _, s := range c.shards {
		s.mu.RLock()
		errs = append(errs, s.leader.Sync())
		s.mu.RUnlock()
	}
	return errors.Join(errs...)
}

// Stats aggregates storage counters across shard leaders (sums;
// epoch/LSN fields take the max) and refreshes the cluster gauges —
// replica lag per shard and overall — as a side effect, so a /metrics
// scrape sees current values.
func (c *Cluster) Stats() kvstore.Stats {
	var agg kvstore.Stats
	maxLag := int64(0)
	for _, s := range c.shards {
		s.mu.RLock()
		st := s.leader.Stats()
		lsn := s.leader.Store().CommitLSN()
		lag := int64(0)
		for _, r := range s.replicas {
			if l := int64(lsn) - int64(r.eng.Store().AppliedLSN()); l > lag {
				lag = l
			}
		}
		recovered := s.recovered.Load()
		s.mu.RUnlock()
		s.lagGauge.Set(float64(lag))
		if lag > maxLag {
			maxLag = lag
		}
		agg.BlocksRead += st.BlocksRead
		agg.BlocksWritten += st.BlocksWritten
		agg.IONanos += st.IONanos
		agg.CacheHits += st.CacheHits
		agg.CacheMisses += st.CacheMisses
		agg.Evictions += st.Evictions
		agg.ReadAheads += st.ReadAheads
		agg.WALBytes += st.WALBytes
		agg.WALCommits += st.WALCommits
		agg.Recoveries += st.Recoveries + recovered
		agg.Gets += st.Gets
		agg.Puts += st.Puts
		agg.Deletes += st.Deletes
		agg.Seeks += st.Seeks
		agg.FastPathHits += st.FastPathHits
		agg.BatchedPuts += st.BatchedPuts
		agg.SnapshotsOpen += st.SnapshotsOpen
		agg.PagesRetained += st.PagesRetained
		agg.PagesRetired += st.PagesRetired
		agg.SyncCalls += st.SyncCalls
		agg.GroupCommits += st.GroupCommits
		agg.WALFsyncs += st.WALFsyncs
		if st.Epoch > agg.Epoch {
			agg.Epoch = st.Epoch
		}
		if st.CommitLSN > agg.CommitLSN {
			agg.CommitLSN = st.CommitLSN
		}
		if st.AppliedLSN > agg.AppliedLSN {
			agg.AppliedLSN = st.AppliedLSN
		}
	}
	obs.Default.Gauge("cluster_replica_lag").Set(float64(maxLag))
	return agg
}

// ReplicaLag returns shard i's worst replica lag in commits (0 when
// every replica is caught up or the shard has none).
func (c *Cluster) ReplicaLag(i int) uint64 {
	s := c.shards[i]
	s.mu.RLock()
	defer s.mu.RUnlock()
	lsn := s.leader.Store().CommitLSN()
	var lag uint64
	for _, r := range s.replicas {
		applied := r.eng.Store().AppliedLSN()
		if applied < lsn && lsn-applied > lag {
			lag = lsn - applied
		}
	}
	return lag
}

// RestartShard recovers shard i after a leader crash: the old leader
// and its replicas are torn down, the leader store reopens (replaying
// its WAL — a durable leader loses nothing that committed), and fresh
// replicas bootstrap from the recovered state. In-flight verbs on the
// shard finish first; verbs arriving during the restart wait for it.
func (c *Cluster) RestartShard(i int) error {
	if i < 0 || i >= len(c.shards) {
		return fmt.Errorf("cluster: no shard %d", i)
	}
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for _, r := range s.replicas {
		errs = append(errs, r.close())
	}
	s.replicas = nil
	// The crashed leader's close may surface the injected fault; the
	// reopen below is what decides recovery.
	_ = s.leader.Close()
	st, err := c.openLeader(i)
	if err != nil {
		return errors.Join(append(errs, err)...)
	}
	s.recovered.Add(st.Stats().Recoveries)
	s.leader = engine.New(st, c.cfg.EngineOpts...)
	s.floor.Store(st.CommitLSN())
	for j := 0; j < c.cfg.Replicas; j++ {
		r, err := newReplica(st, c.cfg.EngineOpts)
		if err != nil {
			return errors.Join(append(errs, err)...)
		}
		s.replicas = append(s.replicas, r)
	}
	return errors.Join(errs...)
}

// Recovered reports WAL recoveries accumulated across shard restarts.
func (c *Cluster) Recovered() int64 {
	var n int64
	for _, s := range c.shards {
		n += s.recovered.Load()
	}
	return n
}

// Close shuts the whole cluster down: replicas first (their appliers
// drain out), then the shard leaders.
func (c *Cluster) Close() error {
	var errs []error
	for _, s := range c.shards {
		s.mu.Lock()
		for _, r := range s.replicas {
			errs = append(errs, r.close())
		}
		s.replicas = nil
		if s.leader != nil {
			errs = append(errs, s.leader.Close())
		}
		s.mu.Unlock()
	}
	return errors.Join(errs...)
}
