package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"xmorph/internal/engine"
	"xmorph/internal/obs"
)

// Replica-lag test: a writer hammers one shard while readers run
// against its replicas. Replication is asynchronous, so replicas lag —
// the read-your-writes epoch floor must route every post-write read to
// a state that includes the write (replica caught up, or leader
// fallthrough), and the lag must converge to zero once writes stop.

func TestClusterReplicaLagAndEpochFloor(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(t, 1, 2) // one shard: every write lands on it
	fallthroughs := obs.Default.Counter("cluster_fallthroughs_total").Value()

	const writes = 120
	var mu sync.Mutex
	written := map[string]string{} // name -> expected Run output

	var readerWG sync.WaitGroup
	readerErr := make(chan error, 8)
	stop := make(chan struct{})
	// Background readers rotate across the replicas (round-robin pick)
	// while the writer runs: anything they can see listed must serve.
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				var name string
				for n := range written {
					name = n
					break
				}
				mu.Unlock()
				if name == "" {
					continue
				}
				if _, err := c.Run(ctx, name, diffGuard, engine.RunOpts{}); err != nil {
					readerErr <- fmt.Errorf("background read %s: %w", name, err)
					return
				}
			}
		}()
	}

	// The writer: shred, then immediately read back. The shred committed
	// on the leader before Shred returned, so the floor guarantees the
	// read observes it — a lagging replica must be skipped, never serve
	// a pre-commit state ("document not found" or stale bytes).
	for i := 0; i < writes; i++ {
		name := docName(i)
		if _, err := c.Shred(ctx, name, strings.NewReader(docXML(i)), nil); err != nil {
			t.Fatalf("shred %s: %v", name, err)
		}
		res, err := c.Run(ctx, name, diffGuard, engine.RunOpts{})
		if err != nil {
			t.Fatalf("read-after-write %s: %v", name, err)
		}
		mu.Lock()
		written[name] = res.Output.XML(false)
		mu.Unlock()
	}
	// Replace one document: a stale replica still holds the old bytes,
	// so serving it post-floor would be visible as stale content.
	if err := c.Drop(ctx, docName(0), nil); err != nil {
		t.Fatal(err)
	}
	v2 := `<data><book><title>V2</title><author><name>Fresh</name></author></book></data>`
	if _, err := c.Shred(ctx, docName(0), strings.NewReader(v2), nil); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(ctx, docName(0), diffGuard, engine.RunOpts{})
	if err != nil {
		t.Fatalf("read-after-replace: %v", err)
	}
	if !strings.Contains(res.Output.XML(false), "V2") {
		t.Fatalf("read after replace served stale bytes: %s", res.Output.XML(false))
	}
	mu.Lock()
	written[docName(0)] = res.Output.XML(false)
	mu.Unlock()

	close(stop)
	readerWG.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}

	// Writes stopped: the appliers drain and the lag converges to zero.
	deadline := time.Now().Add(10 * time.Second)
	for c.ReplicaLag(0) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica lag stuck at %d commits after writes stopped", c.ReplicaLag(0))
		}
		time.Sleep(time.Millisecond)
	}
	// Stats refreshes the gauge the /metrics scrape reads.
	c.Stats()
	if lag := obs.Default.Gauge("cluster_replica_lag").Value(); lag != 0 {
		t.Fatalf("cluster_replica_lag gauge = %v after convergence", lag)
	}

	// Caught-up replicas serve every document byte-identically. Repeated
	// reads rotate round-robin across both replicas, so each name's
	// bytes are checked on each replica.
	for name, want := range written {
		for pass := 0; pass < 2; pass++ {
			res, err := c.Run(ctx, name, diffGuard, engine.RunOpts{})
			if err != nil {
				t.Fatalf("converged read %s: %v", name, err)
			}
			if got := res.Output.XML(false); got != want {
				t.Fatalf("converged read %s diverges:\n%s\nwant\n%s", name, got, want)
			}
		}
	}

	// The floor did its job silently or via fallthroughs; either way the
	// counter only moves for floor misses, never for errors. Log it for
	// the curious (the assertion above is the contract).
	t.Logf("fallthroughs during hammer: %d", obs.Default.Counter("cluster_fallthroughs_total").Value()-fallthroughs)
}
