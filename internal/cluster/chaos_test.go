package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"xmorph/internal/engine"
	"xmorph/internal/kvstore"
	"xmorph/internal/store"
)

// Chaos sweep: one shard's leader is crashed (FaultFS, torn write +
// write-back cache loss) at every k-th mutation of a fixed workload,
// then restarted. After WAL replay and an idempotent retry of the
// failed operations the cluster must serve exactly the control's
// document set, byte-identically — at every crash index.

// chaosOp is one step of the scripted workload.
type chaosOp struct {
	kind string // "shred" or "drop"
	doc  int
	ver  int // content version for shreds
}

func chaosXML(doc, ver int) string {
	var b strings.Builder
	b.WriteString("<data>")
	for j := 0; j < 2+doc%3; j++ {
		fmt.Fprintf(&b, "<book><title>C%d.%d-%d</title><author><name>N%d</name></author></book>", doc, ver, j, j)
	}
	b.WriteString("</data>")
	return b.String()
}

// chaosWorkload: shred ten documents, drop two, re-shred one with new
// content — exercising create, delete, and replace on every shard.
func chaosWorkload() []chaosOp {
	var ops []chaosOp
	for i := 0; i < 10; i++ {
		ops = append(ops, chaosOp{kind: "shred", doc: i, ver: 1})
	}
	ops = append(ops,
		chaosOp{kind: "drop", doc: 3},
		chaosOp{kind: "drop", doc: 6},
		chaosOp{kind: "shred", doc: 3, ver: 2},
	)
	return ops
}

// applyOp runs one op against a Backend. Retried ops tolerate the
// already-applied sentinels: a shred that committed before the crash
// answers ErrExists on retry, a drop ErrNotFound — both mean the
// op's effect is durable.
func applyOp(b engine.Backend, op chaosOp, retry bool) error {
	ctx := context.Background()
	var err error
	switch op.kind {
	case "shred":
		_, err = b.Shred(ctx, docName(op.doc), strings.NewReader(chaosXML(op.doc, op.ver)), nil)
		if retry && errors.Is(err, engine.ErrExists) {
			return nil
		}
	case "drop":
		err = b.Drop(ctx, docName(op.doc), nil)
		if retry && errors.Is(err, engine.ErrNotFound) {
			return nil
		}
	}
	return err
}

// chaosCluster builds a 3-shard cluster whose leaders live on the given
// per-shard FaultFS instances (durable, tiny cache to force real I/O).
func chaosCluster(t *testing.T, fss []*kvstore.FaultFS, replicas int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Shards:   len(fss),
		Replicas: replicas,
		VNodes:   32,
		OpenLeader: func(i int) (*store.Store, error) {
			// The reboot happens here, between the crashed leader's
			// teardown and its reopen: RestartShard closes the old leader
			// while the filesystem is still crashed (its final flush fails,
			// like a dead process's page cache), then this hook clears the
			// fault — the disk as the rebooted process sees it — and the
			// reopen replays whatever WAL survived.
			fss[i].ClearFaults()
			return store.Open("shard.db", store.WithKVOptions(&kvstore.Options{
				FS: fss[i], Durability: true, CachePages: 16,
			}))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterChaosSweep(t *testing.T) {
	ops := chaosWorkload()

	// Control: the workload on a single engine, no faults.
	ctl := engine.OpenMemory()
	defer ctl.Close()
	for _, op := range ops {
		if err := applyOp(ctl, op, false); err != nil {
			t.Fatalf("control %v: %v", op, err)
		}
	}
	wantDocs, err := ctl.Docs(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantXML := map[string]string{}
	for _, name := range wantDocs {
		res, err := ctl.Run(context.Background(), name, diffGuard, engine.RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		wantXML[name] = res.Output.XML(false)
	}

	// Rehearsal: the same workload on a fault-free cluster fixes the
	// mutation count of the target shard (FaultFS numbering depends only
	// on the workload, so the sweep range is exact).
	const shards = 3
	rehearsalFS := make([]*kvstore.FaultFS, shards)
	for i := range rehearsalFS {
		rehearsalFS[i] = kvstore.NewFaultFS()
	}
	rc := chaosCluster(t, rehearsalFS, 0)
	target := rc.ring.Lookup(docName(3)) // owns a drop + re-shred, the richest history
	for _, op := range ops {
		if err := applyOp(rc, op, false); err != nil {
			t.Fatalf("rehearsal %v: %v", op, err)
		}
	}
	writes := rehearsalFS[target].Writes()
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if writes < 10 {
		t.Fatalf("target shard %d saw only %d mutations; workload too small for a sweep", target, writes)
	}

	// Sweep: crash the target shard's leader at every k-th mutation.
	k := writes / 12
	if k < 1 {
		k = 1
	}
	var recoveries int64
	for n := int64(0); n < writes; n += k {
		n := n
		t.Run(fmt.Sprintf("crash-at-%d", n), func(t *testing.T) {
			fss := make([]*kvstore.FaultFS, shards)
			for i := range fss {
				fss[i] = kvstore.NewFaultFS()
			}
			c := chaosCluster(t, fss, 1)
			defer c.Close()
			// Torn write + write-back loss: the most adversarial crash the
			// WAL protocol claims to survive. The tear length varies with
			// the index to sweep partial-page states too.
			fss[target].CrashAfter(n, int(n%kvstore.PageSize), true)

			var failed []chaosOp
			for _, op := range ops {
				if err := applyOp(c, op, false); err != nil {
					failed = append(failed, op)
				}
			}
			if !fss[target].Crashed() {
				t.Fatalf("crash at %d never fired (workload shrank?)", n)
			}
			// Restart the shard (the OpenLeader hook reboots the
			// filesystem and WAL replay runs inside the reopen), then
			// retry what failed.
			if err := c.RestartShard(target); err != nil {
				t.Fatalf("restart: %v", err)
			}
			for _, op := range failed {
				if err := applyOp(c, op, true); err != nil {
					t.Fatalf("retry %v after restart: %v", op, err)
				}
			}

			gotDocs, err := c.Docs(context.Background(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Join(gotDocs, ",") != strings.Join(wantDocs, ",") {
				t.Fatalf("doc set after recovery:\n%v\nwant\n%v", gotDocs, wantDocs)
			}
			for _, name := range wantDocs {
				res, err := c.Run(context.Background(), name, diffGuard, engine.RunOpts{})
				if err != nil {
					t.Fatalf("run %s after recovery: %v", name, err)
				}
				if res.Output.XML(false) != wantXML[name] {
					t.Fatalf("output of %s after recovery diverges:\n%s\nwant\n%s",
						name, res.Output.XML(false), wantXML[name])
				}
			}
			recoveries += c.Recovered()
		})
	}
	// Not every crash index leaves a complete WAL (a crash before the
	// commit record simply loses nothing), but across the sweep at least
	// one index must land mid-protocol and exercise replay.
	if recoveries == 0 {
		t.Fatal("no crash index triggered a WAL replay — the sweep never hit the commit protocol")
	}
}
