package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"xmorph/internal/engine"
)

// The differential oracle: every cluster verb is checked against a
// single-engine control running the identical workload. The cluster is
// pure routing — sharding and replication must never change a byte of
// any answer.

const diffGuard = "MORPH author [ name title ]"

// docXML generates deterministic per-document content with some
// structural variety (book count and author reuse vary by index).
func docXML(i int) string {
	var b strings.Builder
	b.WriteString("<data>")
	for j := 0; j < 3+i%4; j++ {
		fmt.Fprintf(&b, "<book><title>T%d-%d</title><author><name>A%d</name></author></book>", i, j, j%3)
	}
	b.WriteString("</data>")
	return b.String()
}

func docName(i int) string { return fmt.Sprintf("doc-%02d", i) }

func newTestCluster(t *testing.T, shards, replicas int) *Cluster {
	t.Helper()
	c, err := New(Config{Shards: shards, Replicas: replicas, VNodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func shredBoth(t *testing.T, c *Cluster, ctl *engine.Engine, i int) {
	t.Helper()
	ctx := context.Background()
	xml := docXML(i)
	ci, err := c.Shred(ctx, docName(i), strings.NewReader(xml), nil)
	if err != nil {
		t.Fatalf("cluster shred %s: %v", docName(i), err)
	}
	ei, err := ctl.Shred(ctx, docName(i), strings.NewReader(xml), nil)
	if err != nil {
		t.Fatalf("control shred %s: %v", docName(i), err)
	}
	if ci.Nodes != ei.Nodes || ci.Types != ei.Types {
		t.Fatalf("shred info diverges for %s: cluster %d/%d control %d/%d",
			docName(i), ci.Nodes, ci.Types, ei.Nodes, ei.Types)
	}
}

// assertVerbsMatch runs every read verb on both sides for one document
// and requires byte-identical answers.
func assertVerbsMatch(t *testing.T, c *Cluster, ctl *engine.Engine, name string) {
	t.Helper()
	ctx := context.Background()

	// Shape.
	cs, err := c.Shape(ctx, name, nil)
	if err != nil {
		t.Fatalf("cluster shape %s: %v", name, err)
	}
	es, err := ctl.Shape(ctx, name, nil)
	if err != nil {
		t.Fatalf("control shape %s: %v", name, err)
	}
	if cs.String() != es.String() {
		t.Fatalf("shape diverges for %s:\n%s\nvs\n%s", name, cs, es)
	}

	// Check: loss report and verdict.
	cc, err := c.Check(ctx, name, diffGuard, nil)
	if err != nil {
		t.Fatalf("cluster check %s: %v", name, err)
	}
	ec, err := ctl.Check(ctx, name, diffGuard, nil)
	if err != nil {
		t.Fatalf("control check %s: %v", name, err)
	}
	if cc.Loss.String() != ec.Loss.String() || cc.Loss.Verdict != ec.Loss.Verdict {
		t.Fatalf("loss diverges for %s: %q/%v vs %q/%v",
			name, cc.Loss, cc.Loss.Verdict, ec.Loss, ec.Loss.Verdict)
	}

	// Run, materialized and streamed.
	cr, err := c.Run(ctx, name, diffGuard, engine.RunOpts{})
	if err != nil {
		t.Fatalf("cluster run %s: %v", name, err)
	}
	er, err := ctl.Run(ctx, name, diffGuard, engine.RunOpts{})
	if err != nil {
		t.Fatalf("control run %s: %v", name, err)
	}
	if cr.Output.XML(false) != er.Output.XML(false) {
		t.Fatalf("run output diverges for %s:\n%s\nvs\n%s",
			name, cr.Output.XML(false), er.Output.XML(false))
	}
	var cst, est strings.Builder
	if _, err := c.Run(ctx, name, diffGuard, engine.RunOpts{StreamTo: &cst}); err != nil {
		t.Fatalf("cluster stream %s: %v", name, err)
	}
	if _, err := ctl.Run(ctx, name, diffGuard, engine.RunOpts{StreamTo: &est}); err != nil {
		t.Fatalf("control stream %s: %v", name, err)
	}
	if cst.String() != est.String() {
		t.Fatalf("streamed output diverges for %s:\n%q\nvs\n%q", name, cst.String(), est.String())
	}

	// Query.
	q := fmt.Sprintf(`for $a in doc(%q)//author return string($a/name)`, name)
	cq, err := c.Query(ctx, name, diffGuard, q, engine.QueryOpts{})
	if err != nil {
		t.Fatalf("cluster query %s: %v", name, err)
	}
	eq, err := ctl.Query(ctx, name, diffGuard, q, engine.QueryOpts{})
	if err != nil {
		t.Fatalf("control query %s: %v", name, err)
	}
	if cq.Answer != eq.Answer {
		t.Fatalf("query answer diverges for %s: %q vs %q", name, cq.Answer, eq.Answer)
	}
	if cq.KeptTypes != eq.KeptTypes || cq.TotalTypes != eq.TotalTypes {
		t.Fatalf("projection stats diverge for %s: %d/%d vs %d/%d",
			name, cq.KeptTypes, cq.TotalTypes, eq.KeptTypes, eq.TotalTypes)
	}
}

func assertDocsMatch(t *testing.T, c *Cluster, ctl *engine.Engine) {
	t.Helper()
	ctx := context.Background()
	cd, err := c.Docs(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := ctl.Docs(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(cd, ",") != strings.Join(ed, ",") {
		t.Fatalf("doc listings diverge:\n%v\nvs\n%v", cd, ed)
	}
}

func TestClusterDifferentialOracle(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(t, 3, 2)
	ctl := engine.OpenMemory()
	defer ctl.Close()

	const docs = 16
	for i := 0; i < docs; i++ {
		shredBoth(t, c, ctl, i)
	}
	assertDocsMatch(t, c, ctl)
	for i := 0; i < docs; i++ {
		assertVerbsMatch(t, c, ctl, docName(i))
	}

	// Drops mirror too, and the dropped names 404 identically.
	for _, i := range []int{2, 7, 11} {
		if err := c.Drop(ctx, docName(i), nil); err != nil {
			t.Fatalf("cluster drop: %v", err)
		}
		if err := ctl.Drop(ctx, docName(i), nil); err != nil {
			t.Fatalf("control drop: %v", err)
		}
	}
	assertDocsMatch(t, c, ctl)
	if _, err := c.Run(ctx, docName(7), diffGuard, engine.RunOpts{}); err == nil {
		t.Fatal("cluster served a dropped document")
	}

	// Re-shred one dropped name with different content: the fresh shred
	// version must serve the new bytes on both sides.
	v2 := `<data><book><title>V2</title><author><name>New</name></author></book></data>`
	if _, err := c.Shred(ctx, docName(7), strings.NewReader(v2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Shred(ctx, docName(7), strings.NewReader(v2), nil); err != nil {
		t.Fatal(err)
	}
	assertVerbsMatch(t, c, ctl, docName(7))

	// Error surface parity: duplicate shred and unknown-name verbs map to
	// the same sentinel errors the HTTP layer switches on.
	if _, err := c.Shred(ctx, docName(0), strings.NewReader(docXML(0)), nil); err == nil {
		t.Fatal("duplicate shred succeeded on cluster")
	}
	if _, err := c.Shape(ctx, "nope", nil); err == nil {
		t.Fatal("shape of unknown doc succeeded on cluster")
	}
}

// TestClusterUpdateDifferential: in-place updates routed through a
// 2-shard cluster (with replicas, so the read-your-writes floor is live)
// must leave every verb byte-identical to a single-engine control
// running the same edit scripts — and to a drop + re-shred of the edited
// document, via the control engine's own differential guarantee.
func TestClusterUpdateDifferential(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(t, 2, 1)
	ctl := engine.OpenMemory()
	defer ctl.Close()

	const docs = 6
	for i := 0; i < docs; i++ {
		shredBoth(t, c, ctl, i)
	}
	scripts := []string{
		`insert <author><name>Z</name></author> into data.book`,
		`replace data.book.title with <title>patched</title>`,
		`insert <note>n</note> before data.book.author ; delete data.book.note`,
	}
	for i := 0; i < docs; i++ {
		for _, script := range scripts {
			ci, err := c.Update(ctx, docName(i), script, nil)
			if err != nil {
				t.Fatalf("cluster update %s %q: %v", docName(i), script, err)
			}
			ei, err := ctl.Update(ctx, docName(i), script, nil)
			if err != nil {
				t.Fatalf("control update %s %q: %v", docName(i), script, err)
			}
			if ci.NodesInserted != ei.NodesInserted || ci.NodesDeleted != ei.NodesDeleted ||
				ci.Delta.Kind != ei.Delta.Kind {
				t.Fatalf("update info diverges for %s: %+v vs %+v", docName(i), ci, ei)
			}
			// Immediately after the write: the floor must route replica
			// reads correctly (stale replicas fall through to the leader).
			assertVerbsMatch(t, c, ctl, docName(i))
		}
	}

	// Update on a missing document errors on both sides.
	if _, err := c.Update(ctx, "nope", `delete a.b`, nil); err == nil {
		t.Fatal("cluster update of unknown doc succeeded")
	}
}

// TestClusterConcurrentDifferential mixes concurrent readers and
// writers over the cluster (the -race payoff), then re-checks the
// differential once quiescent.
func TestClusterConcurrentDifferential(t *testing.T) {
	ctx := context.Background()
	c := newTestCluster(t, 4, 1)
	ctl := engine.OpenMemory()
	defer ctl.Close()

	const base = 8
	for i := 0; i < base; i++ {
		shredBoth(t, c, ctl, i)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	// Readers hammer the shredded prefix while writers extend the set.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for k := 0; k < 30; k++ {
				name := docName((r + k) % base)
				if _, err := c.Run(ctx, name, diffGuard, engine.RunOpts{}); err != nil {
					errCh <- fmt.Errorf("read %s: %w", name, err)
					return
				}
				if _, err := c.Docs(ctx, nil); err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				i := base + w*4 + k
				if _, err := c.Shred(ctx, docName(i), strings.NewReader(docXML(i)), nil); err != nil {
					errCh <- fmt.Errorf("shred %s: %w", docName(i), err)
					return
				}
				// Read-your-writes: the shred must be immediately visible.
				if _, err := c.Run(ctx, docName(i), diffGuard, engine.RunOpts{}); err != nil {
					errCh <- fmt.Errorf("read-after-write %s: %w", docName(i), err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Catch the control up and re-run the full differential.
	for i := base; i < base+8; i++ {
		xml := docXML(i)
		if _, err := ctl.Shred(ctx, docName(i), strings.NewReader(xml), nil); err != nil {
			t.Fatal(err)
		}
	}
	assertDocsMatch(t, c, ctl)
	for i := 0; i < base+8; i++ {
		assertVerbsMatch(t, c, ctl, docName(i))
	}
}

func TestRingDeterministicAndCovering(t *testing.T) {
	a := NewRing(4, 64, 42)
	b := NewRing(4, 64, 42)
	owned := map[int]int{}
	for i := 0; i < 200; i++ {
		name := docName(i)
		sa, sb := a.Lookup(name), b.Lookup(name)
		if sa != sb {
			t.Fatalf("rings with identical config disagree on %s: %d vs %d", name, sa, sb)
		}
		if sa < 0 || sa >= 4 {
			t.Fatalf("lookup out of range: %d", sa)
		}
		owned[sa]++
	}
	for s := 0; s < 4; s++ {
		if owned[s] == 0 {
			t.Fatalf("shard %d owns no names out of 200 (distribution %v)", s, owned)
		}
	}
	if NewRing(4, 64, 43).Lookup("doc-00") == a.Lookup("doc-00") &&
		NewRing(4, 64, 43).Lookup("doc-01") == a.Lookup("doc-01") &&
		NewRing(4, 64, 43).Lookup("doc-02") == a.Lookup("doc-02") &&
		NewRing(4, 64, 43).Lookup("doc-03") == a.Lookup("doc-03") {
		t.Fatal("different seeds produced identical placement for four names")
	}
	if a.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", a.Shards())
	}
}
