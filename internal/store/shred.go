package store

import (
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"xmorph/internal/obs"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

// ShredInfo summarizes a shredded document.
type ShredInfo struct {
	Name  string
	Types int
	Nodes int
}

// Shred streams an XML document into the store: one pass assigns Dewey
// numbers, writes every node's value into its type sequence, and
// aggregates the adorned shape's cardinalities (Section VIII's data
// shredder). Memory use is bounded by document depth, not size.
//
// Under a non-nil parent span it opens a "shred" child annotated with the
// nodes and text characters shredded, the types discovered, and the pages
// written to the store. A nil parent is free.
func (s *Store) Shred(name string, r io.Reader, parent *obs.Span) (*ShredInfo, error) {
	sp := parent.Child("shred")
	defer sp.End()
	before := s.Stats()

	if _, exists, err := s.docID(name); err != nil {
		return nil, err
	} else if exists {
		return nil, fmt.Errorf("store: document %q already shredded", name)
	}
	id, err := s.nextDocID()
	if err != nil {
		return nil, err
	}

	sh := &shredder{store: s, docID: id, typeID: map[string]uint32{}, agg: map[edge]*cardAgg{}, parentCount: map[string]int{}}
	if err := sh.run(r); err != nil {
		return nil, err
	}

	// Type registry in typeID order.
	if err := s.putBlob(blobKey('T', id), []byte(strings.Join(sh.typeOrder, "\n"))); err != nil {
		return nil, err
	}
	// Adorned shape, plus its hash for shape-aware guard caches.
	enc := encodeShape(sh.shape())
	if err := s.putBlob(blobKey('S', id), []byte(enc)); err != nil {
		return nil, err
	}
	hashBuf := make([]byte, 8)
	binary.BigEndian.PutUint64(hashBuf, hashShapeEnc(enc))
	if err := s.db.Put(blobKey('H', id), hashBuf); err != nil {
		return nil, err
	}
	// Registry entry last: a crash mid-shred leaves no visible document.
	idBuf := make([]byte, 4)
	binary.BigEndian.PutUint32(idBuf, id)
	if err := s.db.Put(docKey(name), idBuf); err != nil {
		return nil, err
	}
	if err := s.db.Sync(); err != nil {
		return nil, err
	}
	if sp != nil {
		after := s.Stats()
		sp.Set("nodes", int64(sh.nodes))
		sp.Set("chars", int64(sh.chars))
		sp.Set("types", int64(len(sh.typeOrder)))
		sp.Set("pages-written", after.BlocksWritten-before.BlocksWritten)
		sp.Set("batched-puts", after.BatchedPuts-before.BatchedPuts)
		sp.Set("fastpath-hits", after.FastPathHits-before.FastPathHits)
	}
	return &ShredInfo{Name: name, Types: len(sh.typeOrder), Nodes: sh.nodes}, nil
}

// ShredDocument shreds an already-parsed document (used by generators that
// build documents in memory).
func (s *Store) ShredDocument(name string, d *xmltree.Document) (*ShredInfo, error) {
	return s.Shred(name, strings.NewReader(d.XML(false)), nil)
}

func (s *Store) nextDocID() (uint32, error) {
	v, ok, err := s.db.Get([]byte{'C'})
	if err != nil {
		return 0, err
	}
	var next uint32
	if ok {
		next = binary.BigEndian.Uint32(v)
	}
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf, next+1)
	if err := s.db.Put([]byte{'C'}, buf); err != nil {
		return 0, err
	}
	return next, nil
}

type edge struct{ parent, child string }

// cardAgg aggregates one shape edge's cardinality across parent instances.
type cardAgg struct {
	min, max   int
	haveParent int // parents that had at least one such child
	first      bool
}

// shredFlushBytes bounds the memory the shredder buffers before pushing
// its per-type runs through PutBatch.
const shredFlushBytes = 1 << 20

// typeRun is one type's buffered node records. Per-type keys are
// generated in document order — two nodes of one rooted type are never
// ancestor and descendant, so element close order equals document order
// — which means every run is already sorted when it reaches PutBatch.
type typeRun struct {
	keys, vals [][]byte
}

type shredder struct {
	store       *Store
	docID       uint32
	typeID      map[string]uint32
	typeOrder   []string
	agg         map[edge]*cardAgg
	edgeOrder   []edge
	parentCount map[string]int
	nodes       int
	chars       int
	// runs buffers node records per type (index = typeID); buffered
	// tracks their total bytes for the flush threshold.
	runs     []typeRun
	buffered int
}

// frame is one open element during the streaming parse.
type frame struct {
	dewey      xmltree.Dewey
	typ        string
	value      strings.Builder
	childN     int
	childTypes map[string]int
	childOrder []string // first-encounter order, preserved in the shape
}

func (sh *shredder) run(r io.Reader) error {
	dec := xml.NewDecoder(r)
	var stack []*frame
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("store: shred: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var f *frame
			if len(stack) == 0 {
				if sh.nodes > 0 {
					return fmt.Errorf("store: shred: multiple root elements")
				}
				f = &frame{dewey: xmltree.Dewey{1}, typ: t.Name.Local}
			} else {
				p := stack[len(stack)-1]
				p.childN++
				f = &frame{
					dewey: p.dewey.Child(p.childN),
					typ:   p.typ + xmltree.TypeSep + t.Name.Local,
				}
				p.noteChild(f.typ)
			}
			f.childTypes = map[string]int{}
			stack = append(stack, f)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				f.childN++
				at := f.typ + xmltree.TypeSep + "@" + a.Name.Local
				f.noteChild(at)
				if err := sh.emit(at, f.dewey.Child(f.childN), a.Value); err != nil {
					return err
				}
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return fmt.Errorf("store: shred: unbalanced end element %s", t.Name.Local)
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if err := sh.emit(f.typ, f.dewey, f.value.String()); err != nil {
				return err
			}
			sh.foldFrame(f)
		case xml.CharData:
			if len(stack) > 0 {
				s := string(t)
				if strings.TrimSpace(s) != "" {
					stack[len(stack)-1].value.WriteString(s)
				}
			}
		}
	}
	if sh.nodes == 0 {
		return fmt.Errorf("store: shred: no root element")
	}
	if len(stack) != 0 {
		return fmt.Errorf("store: shred: unexpected end of input inside <%s>", stack[len(stack)-1].typ)
	}
	return sh.flush()
}

// flush pushes every buffered type run through PutBatch, in typeID
// order. Node keys are prefixed by typeID, so consecutive runs extend
// one globally ascending key sequence — nearly every insert lands on the
// B+tree's cached leaf.
func (sh *shredder) flush() error {
	for tid := range sh.runs {
		r := &sh.runs[tid]
		if len(r.keys) == 0 {
			continue
		}
		if err := sh.store.db.PutBatch(r.keys, r.vals); err != nil {
			return err
		}
		r.keys, r.vals = r.keys[:0], r.vals[:0]
	}
	sh.buffered = 0
	return nil
}

func (f *frame) noteChild(childType string) {
	if _, seen := f.childTypes[childType]; !seen {
		f.childOrder = append(f.childOrder, childType)
	}
	f.childTypes[childType]++
}

// emit writes one node record and registers its type.
func (sh *shredder) emit(typ string, dw xmltree.Dewey, value string) error {
	tid, ok := sh.typeID[typ]
	if !ok {
		tid = uint32(len(sh.typeOrder))
		sh.typeID[typ] = tid
		sh.typeOrder = append(sh.typeOrder, typ)
	}
	sh.nodes++
	sh.chars += len(value)
	key := nodePrefix(sh.docID, tid)
	full := make([]byte, len(key)+4*len(dw))
	copy(full, key)
	for i, c := range dw {
		binary.BigEndian.PutUint32(full[len(key)+4*i:], uint32(c))
	}
	if sh.store.unbatchedShred {
		return sh.store.putBlob(full, []byte(value))
	}
	for int(tid) >= len(sh.runs) {
		sh.runs = append(sh.runs, typeRun{})
	}
	r := &sh.runs[tid]
	var err error
	r.keys, r.vals, err = appendBlobChunks(r.keys, r.vals, full, []byte(value))
	if err != nil {
		return err
	}
	sh.buffered += len(full) + len(value)
	if sh.buffered >= shredFlushBytes {
		return sh.flush()
	}
	return nil
}

// foldFrame folds one closed parent's child counts into the shape
// aggregation.
func (sh *shredder) foldFrame(f *frame) {
	sh.parentCount[f.typ]++
	for _, ct := range f.childOrder {
		n := f.childTypes[ct]
		e := edge{f.typ, ct}
		a, ok := sh.agg[e]
		if !ok {
			a = &cardAgg{first: true}
			sh.agg[e] = a
			sh.edgeOrder = append(sh.edgeOrder, e)
		}
		if a.first || n < a.min {
			a.min = n
		}
		if n > a.max {
			a.max = n
		}
		a.first = false
		a.haveParent++
	}
}

// shape assembles the adorned shape from the aggregation: an edge whose
// child type was absent under some parent instances has minimum 0.
func (sh *shredder) shape() *shape.Shape {
	out := shape.New()
	for _, t := range sh.typeOrder {
		out.AddType(t)
	}
	for _, e := range sh.edgeOrder {
		a := sh.agg[e]
		min := a.min
		if a.haveParent < sh.parentCount[e.parent] {
			min = 0
		}
		// Ignore impossible edge errors: shredding produces a tree.
		_ = out.AddEdge(e.parent, e.child, shape.Card{Min: min, Max: a.max})
	}
	return out
}
