package store

import (
	"bytes"
	"encoding/binary"
	"strings"

	"xmorph/internal/kvstore"
	"xmorph/internal/xmltree"
)

// TypeScan is a forward-only pull cursor over one type's node sequence,
// decoding nodes straight from the kvstore iterator in Dewey (document)
// order. Unlike NodesOfType it materializes nothing: the cursor holds
// only the current node, reusing one Dewey buffer and one value buffer
// across the whole scan — the streaming executor's storage primitive.
//
// The Dewey and Value of the current position alias those buffers and
// are valid only until the next call to Next.
type TypeScan struct {
	it     *kvstore.Iterator
	prefix []byte
	depth  int
	dewey  xmltree.Dewey
	val    []byte
	attr   bool
	name   string
	done   bool
}

// ScanType opens a Dewey-ordered scan of a type's node sequence. An
// unknown type yields an empty scan. The scan reads through the Doc's
// reader: a View-bound Doc scans the view's pinned epoch, a live-store
// Doc scans a private snapshot taken now.
func (d *Doc) ScanType(t string) *TypeScan {
	tid, ok := d.typeID[t]
	if !ok {
		return &TypeScan{done: true}
	}
	prefix := nodePrefix(d.id, tid)
	depth := xmltree.TypeDepth(t)
	name := t
	if i := strings.LastIndex(t, xmltree.TypeSep); i >= 0 {
		name = t[i+1:]
	}
	return &TypeScan{
		it:     d.r.Seek(prefix),
		prefix: prefix,
		depth:  depth,
		dewey:  make(xmltree.Dewey, depth),
		val:    make([]byte, 0, 64),
		attr:   name[0] == '@',
		name:   name,
	}
}

// Next advances to the next node of the type; it returns false at the
// end of the sequence or on a storage error (see Err).
func (s *TypeScan) Next() bool {
	if s.done {
		return false
	}
	for s.it.Valid() {
		k := s.it.Key()
		if !bytes.HasPrefix(k, s.prefix) {
			s.close()
			return false
		}
		if len(k) != len(s.prefix)+4*s.depth+2 ||
			binary.BigEndian.Uint16(k[len(k)-2:]) != 0 {
			// Malformed key or a stray continuation chunk: skip, like
			// NodesOfType.
			s.it.Next()
			continue
		}
		v := s.it.Value()
		if len(v) < 2 {
			s.it.Next()
			continue
		}
		dw := k[len(s.prefix) : len(k)-2]
		for i := 0; i < s.depth; i++ {
			s.dewey[i] = int(binary.BigEndian.Uint32(dw[i*4:]))
		}
		// The iterator's Value is only valid until Next, and multi-chunk
		// values span records, so the value always lands in the reused
		// buffer.
		chunks := int(binary.BigEndian.Uint16(v))
		s.val = append(s.val[:0], v[2:]...)
		for c := 1; c < chunks; c++ {
			s.it.Next()
			if !s.it.Valid() {
				break // truncated record; keep what was read
			}
			ck := s.it.Key()
			if len(ck) != len(k) || !bytes.Equal(ck[:len(k)-2], k[:len(k)-2]) ||
				int(binary.BigEndian.Uint16(ck[len(ck)-2:])) != c {
				break // chunk chain interrupted
			}
			s.val = append(s.val, s.it.Value()...)
		}
		s.it.Next()
		return true
	}
	s.close()
	return false
}

// Dewey returns the current node's Dewey number; the slice aliases the
// scan's reused buffer and is valid only until Next.
func (s *TypeScan) Dewey() xmltree.Dewey { return s.dewey }

// Value returns the current node's text value; the slice aliases the
// scan's reused buffer and is valid only until Next.
func (s *TypeScan) Value() []byte { return s.val }

// Attr reports whether the scanned type is an attribute type.
func (s *TypeScan) Attr() bool { return s.attr }

// Err returns the first storage error the scan hit, if any.
func (s *TypeScan) Err() error {
	if s.it == nil {
		return nil
	}
	return s.it.Err()
}

// Close releases the underlying iterator; it is safe to call more than
// once, and after Close the scan is exhausted.
func (s *TypeScan) Close() {
	s.close()
}

func (s *TypeScan) close() {
	s.done = true
	if s.it != nil {
		s.it.Close()
	}
}
