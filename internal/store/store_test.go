package store

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"xmorph/internal/closest"
	"xmorph/internal/guard"
	"xmorph/internal/render"
	"xmorph/internal/semantics"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

const fig1a = `<data>
  <book>
    <title>X</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
  <book>
    <title>Y</title>
    <author><name>V</name></author>
    <publisher><name>W</name></publisher>
  </book>
</data>`

func TestShredAndLoadSequences(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	info, err := s.Shred("fig1a", strings.NewReader(fig1a), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Types != 7 {
		t.Errorf("types = %d, want 7", info.Types)
	}
	if info.Nodes != 13 {
		t.Errorf("nodes = %d, want 13", info.Nodes)
	}

	doc, err := s.Doc("fig1a")
	if err != nil {
		t.Fatal(err)
	}
	titles := doc.NodesOfType("data.book.title")
	if len(titles) != 2 || titles[0].Value != "X" || titles[1].Value != "Y" {
		t.Fatalf("titles = %+v", titles)
	}
	if titles[0].Dewey.String() != "1.1.1" || titles[1].Dewey.String() != "1.2.1" {
		t.Errorf("title deweys = %s, %s", titles[0].Dewey, titles[1].Dewey)
	}
	authors := doc.NodesOfType("data.book.author")
	if len(authors) != 2 || authors[0].Dewey.String() != "1.1.2" {
		t.Errorf("authors = %+v", authors)
	}
	if doc.NodesOfType("no.such.type") != nil {
		t.Error("unknown type should be nil")
	}
	if doc.Size() != 13 {
		t.Errorf("Size = %d, want 13", doc.Size())
	}
}

func TestShredShapeMatchesInMemoryExtraction(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("fig1a", strings.NewReader(fig1a), nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Shape("fig1a")
	if err != nil {
		t.Fatal(err)
	}
	want := shape.FromDocument(xmltree.MustParse(fig1a))
	if got.String() != want.String() {
		t.Errorf("shredded shape differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestShredOptionalChildCardinality(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	src := `<data><book><author/></book><book><author><name>V</name></author></book></data>`
	if _, err := s.Shred("d", strings.NewReader(src), nil); err != nil {
		t.Fatal(err)
	}
	sh, err := s.Shape("d")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := sh.Card("data.book.author", "data.book.author.name")
	if !ok || c != (shape.Card{Min: 0, Max: 1}) {
		t.Errorf("card = %v %v, want 0..1", c, ok)
	}
}

func TestShredAttributes(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("d", strings.NewReader(`<site><item id="i1"/><item id="i2"/></site>`), nil); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	ids := doc.NodesOfType("site.item.@id")
	if len(ids) != 2 || !ids[0].Attr || ids[0].Value != "i1" {
		t.Fatalf("attr nodes = %+v", ids)
	}
	if ids[0].Name != "@id" {
		t.Errorf("attr name = %q", ids[0].Name)
	}
}

func TestShredRejectsDuplicatesAndBadXML(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("d", strings.NewReader("<a/>"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Shred("d", strings.NewReader("<a/>"), nil); err == nil {
		t.Error("duplicate shred accepted")
	}
	for _, bad := range []string{"", "<a>", "<a></b>", "<a/><b/>"} {
		if _, err := s.Shred("bad"+bad, strings.NewReader(bad), nil); err == nil {
			t.Errorf("bad xml %q accepted", bad)
		}
	}
}

func TestDocuments(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	s.Shred("zeta", strings.NewReader("<a/>"), nil)
	s.Shred("alpha", strings.NewReader("<b/>"), nil)
	names, err := s.Documents()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("documents = %v", names)
	}
}

func TestLargeValuesChunked(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	big := strings.Repeat("lorem ipsum ", 1000) // ~12 KB text
	src := "<doc><body>" + big + "</body></doc>"
	if _, err := s.Shred("d", strings.NewReader(src), nil); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	bodies := doc.NodesOfType("doc.body")
	if len(bodies) != 1 || bodies[0].Value != big {
		t.Fatalf("chunked value corrupted: len=%d want %d", len(bodies[0].Value), len(big))
	}
}

func TestPersistentStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Shred("fig1a", strings.NewReader(fig1a), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	doc, err := s2.Doc("fig1a")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.NodesOfType("data.book")) != 2 {
		t.Error("reopened store lost nodes")
	}
	sh, err := s2.Shape("fig1a")
	if err != nil || !sh.HasType("data.book.title") {
		t.Errorf("reopened shape wrong: %v", err)
	}
}

// TestRenderFromStore runs the full stored pipeline: shred -> compile
// against the stored shape -> render from lazy type sequences — and checks
// the result matches rendering from the parsed document.
func TestRenderFromStore(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("fig1a", strings.NewReader(fig1a), nil); err != nil {
		t.Fatal(err)
	}
	sh, err := s.Shape("fig1a")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := semantics.Compile(guard.MustParse("MORPH author [ name book [ title ] ]"), sh)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := s.Doc("fig1a")
	if err != nil {
		t.Fatal(err)
	}
	out, err := render.Render(doc, plan.Final().Target, nil)
	if err != nil {
		t.Fatal(err)
	}

	mem := xmltree.MustParse(fig1a)
	memPlan, err := semantics.Compile(guard.MustParse("MORPH author [ name book [ title ] ]"), shape.FromDocument(mem))
	if err != nil {
		t.Fatal(err)
	}
	memOut, err := render.Render(mem, memPlan.Final().Target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.XML(false) != memOut.XML(false) {
		t.Errorf("store render differs:\nstore: %s\nmem:   %s", out.XML(false), memOut.XML(false))
	}
}

// TestStoreIdentityMutate: a full MUTATE from the store reproduces the
// document (closest graphs match).
func TestStoreIdentityMutate(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("fig1a", strings.NewReader(fig1a), nil); err != nil {
		t.Fatal(err)
	}
	sh, _ := s.Shape("fig1a")
	plan, err := semantics.Compile(guard.MustParse("MUTATE data"), sh)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := s.Doc("fig1a")
	out, err := render.Render(doc, plan.Final().Target, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := xmltree.MustParse(fig1a)
	if out.XML(false) != in.XML(false) {
		t.Errorf("identity from store:\nout %s\nin  %s", out.XML(false), in.XML(false))
	}
	// Structural sanity via closest graphs on the serialized result.
	rg := closest.Build(xmltree.MustParse(out.XML(false)))
	ig := closest.Build(in)
	if rg.NumEdges() != ig.NumEdges() || rg.NumVertices() != ig.NumVertices() {
		t.Errorf("closest graphs differ: %d/%d vs %d/%d edges/vertices",
			rg.NumEdges(), rg.NumVertices(), ig.NumEdges(), ig.NumVertices())
	}
}

func TestNodeKeyLayout(t *testing.T) {
	k0 := nodeKey(1, 2, xmltree.Dewey{1, 3}, 0)
	k1 := nodeKey(1, 2, xmltree.Dewey{1, 3}, 1)
	k2 := nodeKey(1, 2, xmltree.Dewey{1, 4}, 0)
	if !(string(k0) < string(k1) && string(k1) < string(k2)) {
		t.Error("node keys out of order: chunks must sort within a dewey, deweys in document order")
	}
	if len(k0) != 9+8+2 {
		t.Errorf("key length = %d", len(k0))
	}
}

func TestReconstruct(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	src := `<site><item id="i1"><name>bike</name><price>5</price></item><item id="i2"><name>car</name></item></site>`
	if _, err := s.Shred("d", strings.NewReader(src), nil); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	re, err := doc.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if re.XML(false) != xmltree.MustParse(src).XML(false) {
		t.Errorf("reconstruct mismatch:\n%s\n%s", re.XML(false), xmltree.MustParse(src).XML(false))
	}
}

func TestReconstructLargerDocument(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("fig", strings.NewReader(fig1a), nil); err != nil {
		t.Fatal(err)
	}
	doc, _ := s.Doc("fig")
	re, err := doc.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if re.XML(false) != xmltree.MustParse(fig1a).XML(false) {
		t.Errorf("reconstruct fig1a mismatch")
	}
}

func TestDropDocument(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("a", strings.NewReader(fig1a), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Shred("b", strings.NewReader("<x><y>1</y></x>"), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("a"); err != nil {
		t.Fatal(err)
	}
	names, _ := s.Documents()
	if len(names) != 1 || names[0] != "b" {
		t.Errorf("documents after drop = %v", names)
	}
	if _, err := s.Doc("a"); err == nil {
		t.Error("dropped document still loadable")
	}
	// The other document is untouched.
	d, err := s.Doc("b")
	if err != nil || len(d.NodesOfType("x.y")) != 1 {
		t.Errorf("sibling document damaged: %v", err)
	}
	// Re-shredding under the same name works.
	if _, err := s.Shred("a", strings.NewReader("<z/>"), nil); err != nil {
		t.Errorf("re-shred after drop: %v", err)
	}
	if err := s.Drop("never"); err == nil {
		t.Error("dropping a missing document should fail")
	}
}

func TestBlobChunkBoundaries(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	// Values at exactly the chunk size and one over: both must survive.
	for i, size := range []int{1399, 1400, 1401, 2800, 2801} {
		val := strings.Repeat("x", size)
		src := "<d><v>" + val + "</v></d>"
		name := fmt.Sprintf("doc%d", i)
		if _, err := s.Shred(name, strings.NewReader(src), nil); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		doc, err := s.Doc(name)
		if err != nil {
			t.Fatal(err)
		}
		vs := doc.NodesOfType("d.v")
		if len(vs) != 1 || len(vs[0].Value) != size {
			t.Errorf("size %d: got %d bytes back", size, len(vs[0].Value))
		}
	}
}

func TestEmptyElementValues(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("d", strings.NewReader("<a><b/><b>x</b><b/></a>"), nil); err != nil {
		t.Fatal(err)
	}
	doc, _ := s.Doc("d")
	bs := doc.NodesOfType("a.b")
	if len(bs) != 3 || bs[0].Value != "" || bs[1].Value != "x" || bs[2].Value != "" {
		t.Errorf("empty values mishandled: %+v", bs)
	}
}
