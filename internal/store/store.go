// Package store implements the shredded XML store of Section VIII (Figure
// 8): documents are shredded into a B+tree holding, per document, an
// adorned-shape record, a type registry, and one document-ordered node
// sequence per type (the paper's AdornedShapes, Nodes, TypeToSequence, and
// GroupedSequence tables collapse into key ranges of a single ordered
// store).
//
// Key layout (all integers big-endian, so lexicographic key order is
// document order within a type):
//
//	'D' name                     -> docID (u32)
//	'S' docID chunk              -> adorned shape blob
//	'T' docID chunk              -> type registry blob ("\n"-joined paths)
//	'H' docID                    -> shape hash (u64, FNV-1a of the 'S' blob)
//	'N' docID typeID dewey chunk -> node text value
//
// A node's key embeds its Dewey number as a sequence of u32 components;
// all nodes of one type share a depth, so the per-type range scans in
// document order with no comparator tricks.
package store

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"xmorph/internal/kvstore"
	"xmorph/internal/shape"
	"xmorph/internal/xmltree"
)

// chunkSize keeps records under the kvstore value limit.
const chunkSize = 1400

// Store is a shredded-document store. A Store's configuration is fixed at
// Open time (functional options); there are no mutable knobs after
// construction, so one Store is safe to share across goroutines without
// configuration races.
type Store struct {
	db *kvstore.DB
	// unbatchedShred forces Shred to issue one Put per chunk instead of
	// accumulating per-type sorted runs for PutBatch — the pre-batching
	// behaviour, kept for ablation benchmarks (WithUnbatchedShred).
	unbatchedShred bool
}

// Option configures a Store at Open time.
type Option func(*config)

type config struct {
	kv             kvstore.Options
	unbatchedShred bool
}

// WithCachePages sizes the underlying buffer pool in pages.
func WithCachePages(n int) Option {
	return func(c *config) { c.kv.CachePages = n }
}

// WithDurability enables the write-ahead-log commit protocol (crash-safe
// Syncs; see DESIGN.md Durability).
func WithDurability(on bool) Option {
	return func(c *config) { c.kv.Durability = on }
}

// WithUnbatchedShred reverts Shred to the per-chunk Put path (one Put per
// chunk, no per-type sorted runs) — the pre-batching behaviour, kept for
// ablation benchmarks.
func WithUnbatchedShred() Option {
	return func(c *config) { c.unbatchedShred = true }
}

// WithKVOptions replaces the whole underlying kvstore configuration — the
// escape hatch for ablation knobs (DisableFastPath, BalancedSplitOnly,
// DisableReadAhead, FS fault injection) the named options don't cover.
// Named options applied after it still take effect.
func WithKVOptions(o *kvstore.Options) Option {
	return func(c *config) {
		if o != nil {
			c.kv = *o
		}
	}
}

// Open opens (or creates) a store file.
func Open(path string, opts ...Option) (*Store, error) {
	var c config
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	db, err := kvstore.Open(path, &c.kv)
	if err != nil {
		return nil, err
	}
	return &Store{db: db, unbatchedShred: c.unbatchedShred}, nil
}

// OpenMemory returns an in-memory store (same code path, no file).
func OpenMemory(opts ...Option) *Store {
	var c config
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return &Store{db: kvstore.OpenMemory(&c.kv), unbatchedShred: c.unbatchedShred}
}

// Close flushes and closes the underlying store.
func (s *Store) Close() error { return s.db.Close() }

// Sync flushes dirty pages. Concurrent Syncs share one group commit.
func (s *Store) Sync() error { return s.db.Sync() }

// Stats returns the underlying block I/O counters.
func (s *Store) Stats() kvstore.Stats { return s.db.Stats() }

// reader is the read surface the store's lookups run on: either the live
// DB (each Get/scan runs on its own implicit snapshot) or one pinned
// kvstore.Snapshot (a View's frozen epoch).
type reader interface {
	Get(key []byte) ([]byte, bool, error)
	AscendPrefix(prefix []byte, fn func(k, v []byte) bool) error
	Seek(target []byte) *kvstore.Iterator
}

// View is a consistent read-only view of the whole store at one committed
// epoch: every lookup and scan through it — documents, shapes, node
// sequences — answers from the same instant, no matter how many shreds or
// drops commit meanwhile, and none of them wait for writers. Views are
// cheap (an epoch pin, no copying) but must be Closed so superseded pages
// can retire; Close is idempotent. A View is safe for concurrent use.
type View struct {
	s    *Store
	snap *kvstore.Snapshot
}

// View pins the current committed state.
func (s *Store) View() *View { return &View{s: s, snap: s.db.OpenSnapshot()} }

// Close releases the view's snapshot pin.
func (v *View) Close() { v.snap.Close() }

// Epoch identifies the committed state the view observes.
func (v *View) Epoch() uint64 { return v.snap.Epoch() }

// DocVersion returns a document's shred version as of the view.
func (v *View) DocVersion(name string) (uint32, bool, error) { return docIDIn(v.snap, name) }

// Documents lists the view's document names, sorted.
func (v *View) Documents() ([]string, error) { return documentsIn(v.snap) }

// Shape loads a document's adorned shape as of the view.
func (v *View) Shape(name string) (*shape.Shape, error) { return shapeIn(v.snap, name) }

// Doc opens a lazy document view frozen at the view's epoch; its node
// sequences stay loadable (and consistent) for as long as the View is
// open.
func (v *View) Doc(name string) (*Doc, error) { return docIn(v.snap, name) }

func docKey(name string) []byte { return append([]byte{'D'}, name...) }

func blobKey(prefix byte, docID uint32) []byte {
	k := make([]byte, 5)
	k[0] = prefix
	binary.BigEndian.PutUint32(k[1:], docID)
	return k
}

func nodePrefix(docID uint32, typeID uint32) []byte {
	k := make([]byte, 9)
	k[0] = 'N'
	binary.BigEndian.PutUint32(k[1:], docID)
	binary.BigEndian.PutUint32(k[5:], typeID)
	return k
}

func nodeKey(docID, typeID uint32, dewey xmltree.Dewey, chunk uint16) []byte {
	k := make([]byte, 9+4*len(dewey)+2)
	copy(k, nodePrefix(docID, typeID))
	off := 9
	for _, c := range dewey {
		binary.BigEndian.PutUint32(k[off:], uint32(c))
		off += 4
	}
	binary.BigEndian.PutUint16(k[off:], chunk)
	return k
}

// appendBlobChunks appends the chunked records of one blob to the
// parallel key/value slices: chunk i of a value lives under key+i, and
// chunk 0 carries a 2-byte chunk-count header. putBlob writes the same
// records individually; the shredder accumulates them into per-type
// sorted runs for PutBatch.
func appendBlobChunks(keys, vals [][]byte, key, val []byte) ([][]byte, [][]byte, error) {
	n := (len(val) + chunkSize - 1) / chunkSize
	if n == 0 {
		n = 1
	}
	if n > 1<<16-1 {
		return keys, vals, fmt.Errorf("store: blob too large (%d bytes)", len(val))
	}
	for i := 0; i < n; i++ {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(val) {
			hi = len(val)
		}
		ck := make([]byte, len(key)+2)
		copy(ck, key)
		binary.BigEndian.PutUint16(ck[len(key):], uint16(i))
		chunk := val[lo:hi]
		if i == 0 {
			hdr := make([]byte, 2+len(chunk))
			binary.BigEndian.PutUint16(hdr, uint16(n))
			copy(hdr[2:], chunk)
			chunk = hdr
		}
		keys = append(keys, ck)
		vals = append(vals, chunk)
	}
	return keys, vals, nil
}

// putBlob stores an arbitrarily large value across chunked keys.
func (s *Store) putBlob(key []byte, val []byte) error {
	keys, vals, err := appendBlobChunks(nil, nil, key, val)
	if err != nil {
		return err
	}
	for i := range keys {
		if err := s.db.Put(keys[i], vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// getBlob reassembles a chunked value through r.
func getBlob(r reader, key []byte) ([]byte, bool, error) {
	ck := make([]byte, len(key)+2)
	copy(ck, key)
	first, ok, err := r.Get(ck)
	if err != nil || !ok {
		return nil, ok, err
	}
	if len(first) < 2 {
		return nil, false, fmt.Errorf("store: corrupt blob header")
	}
	n := int(binary.BigEndian.Uint16(first))
	out := append([]byte(nil), first[2:]...)
	for i := 1; i < n; i++ {
		binary.BigEndian.PutUint16(ck[len(key):], uint16(i))
		chunk, ok, err := r.Get(ck)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, fmt.Errorf("store: blob missing chunk %d of %d", i, n)
		}
		out = append(out, chunk...)
	}
	return out, true, nil
}

// docIDIn resolves a stored document's id through r.
func docIDIn(r reader, name string) (uint32, bool, error) {
	v, ok, err := r.Get(docKey(name))
	if err != nil || !ok {
		return 0, ok, err
	}
	if len(v) != 4 {
		return 0, false, fmt.Errorf("store: corrupt doc record for %q", name)
	}
	return binary.BigEndian.Uint32(v), true, nil
}

// docID resolves a stored document's id against the committed state.
func (s *Store) docID(name string) (uint32, bool, error) { return docIDIn(s.db, name) }

// DocVersion returns a document's shred version: its internal docID,
// which the store never reuses (drop + re-shred assigns a fresh id from a
// monotonic counter). Compiled-guard caches key on it so a re-shredded
// document invalidates every cached compilation against its old shape.
func (s *Store) DocVersion(name string) (uint32, bool, error) { return s.docID(name) }

// documentsIn lists the document names visible through r, sorted.
func documentsIn(r reader) ([]string, error) {
	var names []string
	err := r.AscendPrefix([]byte{'D'}, func(k, v []byte) bool {
		names = append(names, string(k[1:]))
		return true
	})
	sort.Strings(names)
	return names, err
}

// Documents lists the stored document names, sorted.
func (s *Store) Documents() ([]string, error) { return documentsIn(s.db) }

// shapeIn loads a document's adorned shape through r.
func shapeIn(r reader, name string) (*shape.Shape, error) {
	id, ok, err := docIDIn(r, name)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("store: document %q not found", name)
	}
	blob, ok, err := getBlob(r, blobKey('S', id))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("store: document %q has no shape record", name)
	}
	return decodeShape(string(blob))
}

// Shape loads a document's adorned shape from the AdornedShapes record.
// The chunked record is read through one view, so a concurrent drop +
// re-shred cannot tear it.
func (s *Store) Shape(name string) (*shape.Shape, error) {
	v := s.View()
	defer v.Close()
	return v.Shape(name)
}

// typesIn loads the type registry (typeID = index) through r.
func typesIn(r reader, id uint32) ([]string, error) {
	blob, ok, err := getBlob(r, blobKey('T', id))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("store: missing type registry for doc %d", id)
	}
	if len(blob) == 0 {
		return nil, nil
	}
	return strings.Split(string(blob), "\n"), nil
}

// encodeShape serializes a shape as "edge parent child min max" and
// "type t" lines.
func encodeShape(sh *shape.Shape) string {
	var b strings.Builder
	for _, t := range sh.Types() {
		b.WriteString("type ")
		b.WriteString(t)
		b.WriteString("\n")
	}
	for _, r := range sh.Roots() {
		var walk func(t string)
		walk = func(t string) {
			for _, c := range sh.Children(t) {
				card, _ := sh.Card(t, c)
				fmt.Fprintf(&b, "edge %s %s %d %d\n", t, c, card.Min, card.Max)
				walk(c)
			}
		}
		walk(r)
	}
	return b.String()
}

func decodeShape(enc string) (*shape.Shape, error) {
	sh := shape.New()
	for _, line := range strings.Split(enc, "\n") {
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "type":
			if len(fields) != 2 {
				return nil, fmt.Errorf("store: corrupt shape line %q", line)
			}
			sh.AddType(fields[1])
		case "edge":
			if len(fields) != 5 {
				return nil, fmt.Errorf("store: corrupt shape line %q", line)
			}
			min, err1 := strconv.Atoi(fields[3])
			max, err2 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("store: corrupt shape cardinality %q", line)
			}
			if err := sh.AddEdge(fields[1], fields[2], shape.Card{Min: min, Max: max}); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("store: corrupt shape line %q", line)
		}
	}
	return sh, nil
}

// Doc is a lazy view over a stored document: type sequences load from the
// store on first use, so a transformation touches only the key ranges of
// the types its target mentions. It implements render.Source.
//
// A Doc reads through the reader it was opened on: Store.Doc binds to the
// live store (every lazy load scans a fresh snapshot of the committed
// state), View.Doc binds to the view's pinned snapshot (every lazy load
// answers from the view's epoch, for as long as the View stays open).
type Doc struct {
	r      reader
	id     uint32
	name   string
	typeID map[string]uint32
	types  []string
	mu     sync.Mutex
	cache  map[string][]*xmltree.Node
}

// docIn opens a lazy document view reading through r.
func docIn(r reader, name string) (*Doc, error) {
	id, ok, err := docIDIn(r, name)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("store: document %q not found", name)
	}
	types, err := typesIn(r, id)
	if err != nil {
		return nil, err
	}
	d := &Doc{r: r, id: id, name: name, types: types,
		typeID: make(map[string]uint32, len(types)),
		cache:  map[string][]*xmltree.Node{}}
	for i, t := range types {
		d.typeID[t] = uint32(i)
	}
	return d, nil
}

// Doc opens a lazy view of a stored document over the live store.
func (s *Store) Doc(name string) (*Doc, error) { return docIn(s.db, name) }

// Types returns the document's type paths (typeID order).
func (d *Doc) Types() []string { return d.types }

// NodesOfType loads (and caches) the document-ordered node sequence of a
// type. The nodes carry Dewey, Type, Name, Value, and Attr — everything
// the closest join and renderer need; tree links are not reconstructed.
// It is safe for concurrent use (the parallel renderer prefetches joins
// from several goroutines).
func (d *Doc) NodesOfType(t string) []*xmltree.Node {
	d.mu.Lock()
	if ns, ok := d.cache[t]; ok {
		d.mu.Unlock()
		return ns
	}
	d.mu.Unlock()
	tid, ok := d.typeID[t]
	if !ok {
		d.mu.Lock()
		d.cache[t] = nil
		d.mu.Unlock()
		return nil
	}
	depth := xmltree.TypeDepth(t)
	name := t[strings.LastIndex(t, xmltree.TypeSep)+1:]
	attr := strings.HasPrefix(name, "@")
	prefix := nodePrefix(d.id, tid)
	var (
		nodes []*xmltree.Node
		cur   *xmltree.Node
		curDw string
		// Chunked values accumulate in one sized builder per node instead
		// of repeated string concatenation (which is O(chunks²)).
		vb      strings.Builder
		pending bool
	)
	finish := func() {
		if pending {
			cur.Value = vb.String()
			pending = false
		}
	}
	_ = d.r.AscendPrefix(prefix, func(k, v []byte) bool {
		if len(k) != len(prefix)+4*depth+2 {
			return true // malformed; skip defensively
		}
		dwBytes := k[len(prefix) : len(prefix)+4*depth]
		chunk := binary.BigEndian.Uint16(k[len(k)-2:])
		if chunk == 0 {
			finish()
			if len(v) < 2 {
				return true
			}
			dw := make(xmltree.Dewey, depth)
			for i := 0; i < depth; i++ {
				dw[i] = int(binary.BigEndian.Uint32(dwBytes[i*4:]))
			}
			cur = &xmltree.Node{Name: name, Type: t, Dewey: dw, Attr: attr, Ord: len(nodes)}
			curDw = string(dwBytes)
			nodes = append(nodes, cur)
			if n := int(binary.BigEndian.Uint16(v)); n > 1 {
				// Multi-chunk value: reserve for every full chunk plus the
				// (possibly short) last one, then stream chunks in.
				pending = true
				vb.Reset()
				vb.Grow((n-1)*chunkSize + len(v) - 2)
				vb.Write(v[2:])
			} else {
				cur.Value = string(v[2:])
			}
		} else if pending && string(dwBytes) == curDw {
			vb.Write(v)
		}
		return true
	})
	finish()
	d.mu.Lock()
	d.cache[t] = nodes
	d.mu.Unlock()
	return nodes
}

// Size returns the total number of stored vertices across all types. It
// counts header chunks in one key scan over the document's node range —
// no values are decoded and nothing is materialized or cached.
func (d *Doc) Size() int {
	prefix := make([]byte, 5)
	prefix[0] = 'N'
	binary.BigEndian.PutUint32(prefix[1:], d.id)
	n := 0
	_ = d.r.AscendPrefix(prefix, func(k, v []byte) bool {
		if len(k) >= 2 && binary.BigEndian.Uint16(k[len(k)-2:]) == 0 {
			n++
		}
		return true
	})
	return n
}

// Reconstruct rebuilds the full document tree from the store in document
// order — the work the eXist baseline performs when it dumps a stored
// document (Section IX's comparison query). It merges every type sequence
// by Dewey number and reattaches parentage.
func (d *Doc) Reconstruct() (*xmltree.Document, error) {
	var all []*xmltree.Node
	for _, t := range d.types {
		all = append(all, d.NodesOfType(t)...)
	}
	if len(all) == 0 {
		return &xmltree.Document{}, nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Dewey.Compare(all[j].Dewey) < 0 })
	b := xmltree.NewBuilder()
	depth := 0
	for _, n := range all {
		for depth >= len(n.Dewey) {
			b.End()
			depth--
		}
		if len(n.Dewey) != depth+1 {
			return nil, fmt.Errorf("store: reconstruct: node %s at depth %d under depth %d", n.Dewey, len(n.Dewey)-1, depth)
		}
		if n.Attr {
			b.Attr(n.LocalName(), n.Value)
			continue
		}
		b.Elem(n.Name)
		if n.Value != "" {
			b.Text(n.Value)
		}
		depth++
	}
	for depth > 0 {
		b.End()
		depth--
	}
	return b.Document()
}

// Drop removes a shredded document: its registry entry, shape, type
// registry, and every node record. Space inside the store file is
// reclaimed lazily by the B+tree (no compaction).
func (s *Store) Drop(name string) error {
	id, ok, err := s.docID(name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("store: document %q not found", name)
	}
	// Collect keys first: deleting while iterating would invalidate the
	// iterator's view.
	var keys [][]byte
	collect := func(prefix []byte) error {
		return s.db.AscendPrefix(prefix, func(k, v []byte) bool {
			keys = append(keys, append([]byte(nil), k...))
			return true
		})
	}
	nodesPrefix := make([]byte, 5)
	nodesPrefix[0] = 'N'
	binary.BigEndian.PutUint32(nodesPrefix[1:], id)
	for _, p := range [][]byte{blobKey('S', id), blobKey('T', id), blobKey('H', id), nodesPrefix} {
		if err := collect(p); err != nil {
			return err
		}
	}
	keys = append(keys, docKey(name))
	for _, k := range keys {
		if err := s.db.Delete(k); err != nil {
			return err
		}
	}
	return s.db.Sync()
}
