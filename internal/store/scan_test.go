package store

import (
	"strings"
	"testing"
)

// collectScan drains a TypeScan, copying the aliased buffers.
type scanned struct {
	dewey string
	value string
}

func collectScan(t *testing.T, s *TypeScan) []scanned {
	t.Helper()
	var out []scanned
	for s.Next() {
		out = append(out, scanned{s.Dewey().String(), string(s.Value())})
	}
	if err := s.Err(); err != nil {
		t.Fatalf("scan error: %v", err)
	}
	s.Close()
	return out
}

// TestScanTypeMatchesNodesOfType: the pull cursor must yield exactly the
// sequence NodesOfType materializes — same Dewey numbers, same values,
// same order — for every type of the document.
func TestScanTypeMatchesNodesOfType(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("fig1a", strings.NewReader(fig1a), nil); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Doc("fig1a")
	if err != nil {
		t.Fatal(err)
	}
	sh, err := s.Shape("fig1a")
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range sh.Types() {
		nodes := doc.NodesOfType(tp)
		got := collectScan(t, doc.ScanType(tp))
		if len(got) != len(nodes) {
			t.Fatalf("%s: scan yields %d nodes, sequence has %d", tp, len(got), len(nodes))
		}
		for i, n := range nodes {
			if got[i].dewey != n.Dewey.String() || got[i].value != n.Value {
				t.Errorf("%s[%d]: scan (%s, %q) != sequence (%s, %q)",
					tp, i, got[i].dewey, got[i].value, n.Dewey, n.Value)
			}
		}
	}
}

// TestScanTypeChunkedValues: multi-chunk values must reassemble across
// continuation records, through the same reused buffer.
func TestScanTypeChunkedValues(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	big := strings.Repeat("lorem ipsum ", 1000) // ~12 KB: spans several chunks
	src := "<doc><body>" + big + "</body><body>small</body></doc>"
	if _, err := s.Shred("d", strings.NewReader(src), nil); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	got := collectScan(t, doc.ScanType("doc.body"))
	if len(got) != 2 {
		t.Fatalf("bodies = %d, want 2", len(got))
	}
	if got[0].value != big {
		t.Errorf("chunked value corrupted: len=%d want %d", len(got[0].value), len(big))
	}
	if got[1].value != "small" {
		t.Errorf("value after chunked record: %q", got[1].value)
	}
}

// TestScanTypeAttributes: attribute types scan like any other, and the
// cursor reports their attr-ness.
func TestScanTypeAttributes(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("d", strings.NewReader(`<site><item id="i1"/><item id="i2"/></site>`), nil); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	sc := doc.ScanType("site.item.@id")
	if !sc.Attr() {
		t.Error("attribute type not flagged")
	}
	got := collectScan(t, sc)
	if len(got) != 2 || got[0].value != "i1" || got[1].value != "i2" {
		t.Errorf("attr scan = %+v", got)
	}
}

// TestScanTypeUnknownAndClosed: unknown types yield an empty scan, and a
// closed scan stays exhausted.
func TestScanTypeUnknownAndClosed(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("d", strings.NewReader(`<a><b>1</b></a>`), nil); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	sc := doc.ScanType("no.such.type")
	if sc.Next() {
		t.Error("unknown type should scan empty")
	}
	if err := sc.Err(); err != nil {
		t.Errorf("unknown type err: %v", err)
	}
	sc.Close() // double close is fine

	sc = doc.ScanType("a.b")
	if !sc.Next() {
		t.Fatal("expected a node")
	}
	sc.Close()
	if sc.Next() {
		t.Error("closed scan should be exhausted")
	}
	sc.Close()
}

// TestScanTypeViewIsolation: a View-bound scan reads the pinned epoch,
// unaffected by a Drop landing after the view opened.
func TestScanTypeViewIsolation(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("d", strings.NewReader(`<a><b>1</b><b>2</b></a>`), nil); err != nil {
		t.Fatal(err)
	}
	v := s.View()
	defer v.Close()
	doc, err := v.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("d"); err != nil {
		t.Fatal(err)
	}
	got := collectScan(t, doc.ScanType("a.b"))
	if len(got) != 2 {
		t.Errorf("view scan after drop: %d nodes, want 2", len(got))
	}
}
