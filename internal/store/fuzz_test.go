package store_test

import (
	"bytes"
	"testing"

	"xmorph/internal/store"
)

// FuzzShred feeds arbitrary bytes to the shredder: Shred must either
// reject the input with an error or store a document that round-trips —
// every node reachable through NodesOfType, the counts agreeing with
// ShredInfo and the Size scan, and Reconstruct rebuilding a tree —
// without ever panicking.
func FuzzShred(f *testing.F) {
	f.Add([]byte("<catalog><item id=\"a\"><name>x</name></item><item>y</item></catalog>"))
	f.Add([]byte("<a><b/><b attr=\"1\">text</b><c>mixed<d/>tail</c></a>"))
	f.Add([]byte("not xml at all"))
	f.Add([]byte("<unclosed><tag>"))
	f.Add([]byte("<a xmlns:p=\"urn:x\"><p:b>ns</p:b></a>"))
	f.Add([]byte("<a>\xff\xfe bad utf8</a>"))
	f.Add([]byte("<a><!-- comment --><?pi data?><![CDATA[cd]]></a>"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st := store.OpenMemory()
		defer st.Close()
		info, err := st.Shred("doc", bytes.NewReader(data), nil)
		if err != nil {
			return // rejected; that's a valid outcome
		}
		d, err := st.Doc("doc")
		if err != nil {
			t.Fatalf("Shred succeeded but Doc failed: %v", err)
		}
		nodes := 0
		for _, typ := range d.Types() {
			nodes += len(d.NodesOfType(typ))
		}
		if nodes != info.Nodes {
			t.Fatalf("NodesOfType found %d nodes, ShredInfo reported %d", nodes, info.Nodes)
		}
		if sz := d.Size(); sz != info.Nodes {
			t.Fatalf("Size scan counted %d nodes, ShredInfo reported %d", sz, info.Nodes)
		}
		if _, err := d.Reconstruct(); err != nil {
			t.Fatalf("stored document does not reconstruct: %v", err)
		}
	})
}
