package store

import "xmorph/internal/kvstore"

// Replication passthroughs: a cluster shard leader exposes its commit
// feed, and a read replica applies it. The store layer adds nothing on
// top of the kvstore contract — batches are whole-page images of
// committed flush cuts, so replicas reproduce the shredded key layout
// byte-for-byte.

// SubscribeCommits opens a replication feed over the underlying store:
// a bootstrap batch with the full committed page image, then one batch
// per flush. Close the subscription when the follower detaches.
func (s *Store) SubscribeCommits() (*kvstore.CommitSub, error) {
	return s.db.SubscribeCommits()
}

// ApplyCommitBatch installs a replicated batch as this store's next
// committed state (follower role). Batches must apply in feed order.
func (s *Store) ApplyCommitBatch(b kvstore.CommitBatch) error {
	return s.db.ApplyCommitBatch(b)
}

// CommitLSN is the sequence number of the last replicated flush cut
// (leader role): the epoch floor a read-your-writes reader compares
// against a replica's AppliedLSN.
func (s *Store) CommitLSN() uint64 { return s.db.CommitLSN() }

// AppliedLSN is the last batch LSN this store applied as a follower.
func (s *Store) AppliedLSN() uint64 { return s.db.AppliedLSN() }
