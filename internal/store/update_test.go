package store_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xmorph/internal/kvstore"
	"xmorph/internal/store"
	"xmorph/internal/update"
	"xmorph/internal/xmltree"
)

func mustOps(t *testing.T, src string) []update.Op {
	t.Helper()
	ops, err := update.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return ops
}

func shredInto(t *testing.T, st *store.Store, name, xml string) {
	t.Helper()
	if _, err := st.Shred(name, strings.NewReader(xml), nil); err != nil {
		t.Fatalf("Shred(%q): %v", name, err)
	}
}

// reconstructXML reads the whole stored document back as XML bytes.
func reconstructXML(t *testing.T, st *store.Store, name string) string {
	t.Helper()
	d, err := st.Doc(name)
	if err != nil {
		t.Fatalf("Doc(%q): %v", name, err)
	}
	doc, err := d.Reconstruct()
	if err != nil {
		t.Fatalf("Reconstruct(%q): %v", name, err)
	}
	return doc.XML(false)
}

// assertMatchesReshred shreds the updated store's reconstruction into a
// fresh store and requires identical reconstruction bytes and shape —
// the round-trip leg of the differential oracle (store state after
// Update must describe the same document a full re-shred would).
func assertMatchesReshred(t *testing.T, st *store.Store, name string) {
	t.Helper()
	got := reconstructXML(t, st, name)
	ref := store.OpenMemory()
	defer ref.Close()
	shredInto(t, ref, name, got)
	if again := reconstructXML(t, ref, name); again != got {
		t.Fatalf("reconstruction is not shred-stable:\n%s\nvs\n%s", got, again)
	}
	gotShape, err := st.Shape(name)
	if err != nil {
		t.Fatalf("Shape: %v", err)
	}
	refShape, err := ref.Shape(name)
	if err != nil {
		t.Fatalf("ref Shape: %v", err)
	}
	if gotShape.String() != refShape.String() {
		t.Fatalf("updated shape diverges from re-shred shape:\n%s\nvs\n%s",
			gotShape.String(), refShape.String())
	}
}

func TestUpdateBasicOps(t *testing.T) {
	const doc = `<lib><book id="1"><title>A</title><author>X</author></book><book id="2"><title>B</title></book></lib>`
	cases := []struct {
		name   string
		script string
		want   string
	}{
		{
			"insert into",
			`insert <year>2012</year> into lib.book`,
			`<lib><book id="1"><title>A</title><author>X</author><year>2012</year></book><book id="2"><title>B</title><year>2012</year></book></lib>`,
		},
		{
			"insert before",
			`insert <isbn>z</isbn> before lib.book.title`,
			`<lib><book id="1"><isbn>z</isbn><title>A</title><author>X</author></book><book id="2"><isbn>z</isbn><title>B</title></book></lib>`,
		},
		{
			"insert after",
			`insert <isbn>z</isbn> after lib.book.title`,
			`<lib><book id="1"><title>A</title><isbn>z</isbn><author>X</author></book><book id="2"><title>B</title><isbn>z</isbn></book></lib>`,
		},
		{
			"delete element",
			`delete lib.book.author`,
			`<lib><book id="1"><title>A</title></book><book id="2"><title>B</title></book></lib>`,
		},
		{
			"delete attribute",
			`delete lib.book.@id`,
			`<lib><book><title>A</title><author>X</author></book><book><title>B</title></book></lib>`,
		},
		{
			"replace subtree",
			`replace lib.book.title with <name lang="en">T</name>`,
			`<lib><book id="1"><name lang="en">T</name><author>X</author></book><book id="2"><name lang="en">T</name></book></lib>`,
		},
		{
			"replace root",
			`replace lib with <shelf><label>new</label></shelf>`,
			`<shelf><label>new</label></shelf>`,
		},
		{
			"multi-statement script",
			`delete lib.book.author ; insert <ed>3</ed> into lib.book ; replace lib.book.title with <t>n</t>`,
			`<lib><book id="1"><t>n</t><ed>3</ed></book><book id="2"><t>n</t><ed>3</ed></book></lib>`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := store.OpenMemory()
			defer st.Close()
			shredInto(t, st, "d", doc)
			verBefore, _, _ := st.DocVersion("d")
			info, err := st.Update("d", mustOps(t, c.script), nil)
			if err != nil {
				t.Fatalf("Update: %v", err)
			}
			if got := reconstructXML(t, st, "d"); got != c.want {
				t.Fatalf("after %q:\n got %s\nwant %s", c.script, got, c.want)
			}
			verAfter, _, _ := st.DocVersion("d")
			if verBefore != verAfter {
				t.Errorf("Update changed the doc version %d -> %d; caches keyed on it would all miss", verBefore, verAfter)
			}
			if info.NodesInserted == 0 && info.NodesDeleted == 0 {
				t.Errorf("info reports no node changes: %+v", info)
			}
			assertMatchesReshred(t, st, "d")
		})
	}
}

func TestUpdateErrors(t *testing.T) {
	st := store.OpenMemory()
	defer st.Close()
	shredInto(t, st, "d", `<a b="v"><c>t</c></a>`)
	bad := []string{
		"delete a",                            // root delete
		"delete a.zzz",                        // no such path
		"insert <x/> before a",                // no siblings of the root
		"insert <x/> into a.@b",               // attributes have no children
		"insert <x/> after a.@b",              // attribute sibling order is fixed
		"replace a.@b with <x/>",              // attr -> element changes ordering
		"delete a.c ; delete a.c",             // second statement finds nothing
		"replace a.c with <ok/> ; delete a.c", // replaced away, then missing
	}
	for _, script := range bad {
		if _, err := st.Update("d", mustOps(t, script), nil); err == nil {
			t.Errorf("Update(%q): expected error", script)
		}
	}
	// Failed scripts must leave the store untouched (all-or-nothing).
	if got, want := reconstructXML(t, st, "d"), `<a b="v"><c>t</c></a>`; got != want {
		t.Fatalf("failed update mutated the store: %s", got)
	}
	if _, err := st.Update("nosuch", mustOps(t, "delete x.y"), nil); err == nil {
		t.Error("Update on a missing document: expected error")
	}
}

func TestUpdateShapeDeltaAndHash(t *testing.T) {
	st := store.OpenMemory()
	defer st.Close()
	shredInto(t, st, "d", `<r><p><q>1</q></p><p><q>2</q><q>3</q></p></r>`)

	v := st.View()
	h0, ok, err := v.ShapeHash("d")
	v.Close()
	if err != nil || !ok {
		t.Fatalf("ShapeHash after shred: ok=%v err=%v", ok, err)
	}
	sh, _ := st.Shape("d")
	if h0 != store.HashShape(sh) {
		t.Fatal("stored hash does not match the stored shape")
	}

	// Shape-preserving update: replace one q with another q (cards stay
	// min=1 max=2) — the hash must not move.
	info, err := st.Update("d", mustOps(t, `replace r.p.q with <q>9</q>`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Delta.Kind != update.Unchanged {
		t.Errorf("replace q with q: delta %v, want unchanged", info.Delta)
	}
	v = st.View()
	h1, ok, _ := v.ShapeHash("d")
	v.Close()
	if !ok || h1 != h0 {
		t.Errorf("shape-preserving update moved the hash %x -> %x", h0, h1)
	}

	// Widening update: a new type appears.
	info, err = st.Update("d", mustOps(t, `insert <z/> into r.p`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Delta.Kind != update.Widened || len(info.Delta.TypesAdded) != 1 {
		t.Errorf("insert new type: delta %+v, want widened +1 type", info.Delta)
	}
	v = st.View()
	h2, _, _ := v.ShapeHash("d")
	v.Close()
	if h2 == h1 {
		t.Error("widening update left the hash unchanged")
	}

	// Narrowing update: delete the type again.
	info, err = st.Update("d", mustOps(t, `delete r.p.z`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Delta.Kind != update.Narrowed {
		t.Errorf("delete type: delta %+v, want narrowed", info.Delta)
	}
	assertMatchesReshred(t, st, "d")

	// Drop removes the hash record with the document.
	if err := st.Drop("d"); err != nil {
		t.Fatal(err)
	}
	v = st.View()
	if _, ok, _ := v.ShapeHash("d"); ok {
		t.Error("ShapeHash survives Drop")
	}
	v.Close()
}

// --- randomized differential sweep ---------------------------------

// randDoc builds a random small document over a fixed name alphabet.
func randDoc(rng *rand.Rand) *xmltree.Document {
	b := xmltree.NewBuilder()
	var build func(depth int)
	names := []string{"a", "b", "c", "d"}
	build = func(depth int) {
		if rng.Intn(3) == 0 {
			b.Attr(names[rng.Intn(len(names))], fmt.Sprintf("v%d", rng.Intn(10)))
		}
		if rng.Intn(2) == 0 {
			b.Text(fmt.Sprintf("t%d", rng.Intn(100)))
		}
		if depth < 4 {
			for i := rng.Intn(4); i > 0; i-- {
				b.Elem(names[rng.Intn(len(names))])
				build(depth + 1)
				b.End()
			}
		}
	}
	b.Elem("r")
	build(1)
	b.End()
	return b.MustDocument()
}

// randFragment builds a small random fragment.
func randFragment(rng *rand.Rand) string {
	b := xmltree.NewBuilder()
	names := []string{"x", "y", "a"}
	b.Elem(names[rng.Intn(len(names))])
	if rng.Intn(2) == 0 {
		b.Attr("k", fmt.Sprintf("%d", rng.Intn(9)))
	}
	if rng.Intn(2) == 0 {
		b.Text("frag")
	}
	if rng.Intn(2) == 0 {
		b.Leaf("leaf", fmt.Sprintf("%d", rng.Intn(9)))
	}
	b.End()
	return b.MustDocument().XML(false)
}

// domTypes collects the live rooted type paths of a document.
func domTypes(d *xmltree.Document) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range d.Roots {
		r.Walk(func(n *xmltree.Node) bool {
			if !seen[n.Type] {
				seen[n.Type] = true
				out = append(out, n.Type)
			}
			return true
		})
	}
	return out
}

// domApply replays one statement against an in-memory tree by rebuild —
// the independent oracle for what Update must produce.
func domApply(t *testing.T, d *xmltree.Document, op update.Op) *xmltree.Document {
	t.Helper()
	var frag *xmltree.Document
	if op.XML != "" {
		var err error
		frag, err = xmltree.ParseString(op.XML)
		if err != nil {
			t.Fatalf("oracle fragment: %v", err)
		}
	}
	b := xmltree.NewBuilder()
	var emitPlain func(n *xmltree.Node)
	emitPlain = func(n *xmltree.Node) {
		if n.Attr {
			b.Attr(n.LocalName(), n.Value)
			return
		}
		b.Elem(n.Name)
		if n.Value != "" {
			b.Text(n.Value)
		}
		for _, c := range n.Children {
			emitPlain(c)
		}
		b.End()
	}
	emitFrag := func() { emitPlain(frag.Roots[0]) }
	var emit func(n *xmltree.Node)
	emit = func(n *xmltree.Node) {
		hit := n.Type == op.Path
		if hit {
			switch {
			case op.Kind == update.Delete:
				return
			case op.Kind == update.Replace:
				emitFrag()
				return
			case op.Kind == update.Insert && op.Pos == update.Before:
				emitFrag()
			}
		}
		if n.Attr {
			b.Attr(n.LocalName(), n.Value)
		} else {
			b.Elem(n.Name)
			if n.Value != "" {
				b.Text(n.Value)
			}
			for _, c := range n.Children {
				emit(c)
			}
			if hit && op.Kind == update.Insert && op.Pos == update.Into {
				emitFrag()
			}
			b.End()
		}
		if hit && op.Kind == update.Insert && op.Pos == update.After {
			emitFrag()
		}
	}
	for _, r := range d.Roots {
		emit(r)
	}
	out, err := b.Document()
	if err != nil {
		t.Fatalf("oracle rebuild: %v", err)
	}
	return out
}

// randOp draws a statement valid against the current tree.
func randOp(rng *rand.Rand, d *xmltree.Document) (update.Op, bool) {
	types := domTypes(d)
	for tries := 0; tries < 20; tries++ {
		path := types[rng.Intn(len(types))]
		attr := strings.HasPrefix(path[strings.LastIndex(path, xmltree.TypeSep)+1:], "@")
		root := !strings.Contains(path, xmltree.TypeSep)
		switch rng.Intn(4) {
		case 0:
			if root {
				continue
			}
			return update.Op{Kind: update.Delete, Path: path}, true
		case 1:
			if attr {
				continue
			}
			return update.Op{Kind: update.Insert, Pos: update.Into, Path: path, XML: randFragment(rng)}, true
		case 2:
			if attr || root {
				continue
			}
			pos := update.Before
			if rng.Intn(2) == 0 {
				pos = update.After
			}
			return update.Op{Kind: update.Insert, Pos: pos, Path: path, XML: randFragment(rng)}, true
		default:
			if attr {
				continue
			}
			return update.Op{Kind: update.Replace, Path: path, XML: randFragment(rng)}, true
		}
	}
	return update.Op{}, false
}

// TestUpdateDifferentialSweep is the store-level differential oracle:
// random documents, random multi-statement edit scripts, and for each
// the updated store must reconstruct byte-identically to a fresh shred
// of the DOM-edited document, with an identical inferred shape.
func TestUpdateDifferentialSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for iter := 0; iter < iters; iter++ {
		doc := randDoc(rng)
		st := store.OpenMemory()
		shredInto(t, st, "d", doc.XML(false))

		edited := doc
		var script []update.Op
		for n := 1 + rng.Intn(3); n > 0; n-- {
			op, ok := randOp(rng, edited)
			if !ok {
				break
			}
			script = append(script, op)
			edited = domApply(t, edited, op)
		}
		if len(script) == 0 {
			st.Close()
			continue
		}

		if _, err := st.Update("d", script, nil); err != nil {
			t.Fatalf("iter %d: Update(%s): %v\ndoc: %s", iter, update.Format(script), err, doc.XML(false))
		}
		got := reconstructXML(t, st, "d")

		oracle := store.OpenMemory()
		shredInto(t, oracle, "d", edited.XML(false))
		want := reconstructXML(t, oracle, "d")

		if got != want {
			t.Fatalf("iter %d: update diverges from re-shred\nscript: %s\ndoc:  %s\n got: %s\nwant: %s",
				iter, update.Format(script), doc.XML(false), got, want)
		}
		gotShape, err1 := st.Shape("d")
		wantShape, err2 := oracle.Shape("d")
		if err1 != nil || err2 != nil {
			t.Fatalf("iter %d: shapes unavailable: %v %v", iter, err1, err2)
		}
		if gotShape.String() != wantShape.String() {
			t.Fatalf("iter %d: shape diverges\nscript: %s\ndoc: %s\n got:\n%s\nwant:\n%s",
				iter, update.Format(script), doc.XML(false), gotShape.String(), wantShape.String())
		}
		// The stored hash must equal the re-shred store's stored hash.
		v1, v2 := st.View(), oracle.View()
		h1, ok1, _ := v1.ShapeHash("d")
		h2, ok2, _ := v2.ShapeHash("d")
		v1.Close()
		v2.Close()
		if !ok1 || !ok2 || h1 != h2 {
			t.Fatalf("iter %d: shape hash diverges (%x ok=%v vs %x ok=%v)", iter, h1, ok1, h2, ok2)
		}
		st.Close()
		oracle.Close()
	}
}

// --- crash sweep over an update workload ----------------------------

// runUpdateCrashWorkload shreds a document and applies three update
// scripts (insert, delete+replace, sibling insert forcing re-keying),
// each a separate commit.
func runUpdateCrashWorkload(fs *kvstore.FaultFS, commit func()) error {
	st, err := store.Open("crash.db", store.WithKVOptions(&kvstore.Options{CachePages: 16, FS: fs, Durability: true}))
	if err != nil {
		return err
	}
	if _, err := st.Shred("doc", strings.NewReader(crashSweepDoc(30, "uu")), nil); err != nil {
		return err
	}
	commit()
	scripts := []string{
		`insert <stock>7</stock> into catalog.item`,
		`delete catalog.item.desc ; replace catalog.item.price with <price>0.00</price>`,
		`insert <sku>s</sku> before catalog.item.name`,
	}
	for _, src := range scripts {
		ops, err := update.Parse(src)
		if err != nil {
			return err
		}
		if _, err := st.Update("doc", ops, nil); err != nil {
			return err
		}
		commit()
	}
	if err := st.Close(); err != nil {
		return err
	}
	commit()
	return nil
}

// TestCrashSweepUpdateWorkload proves update atomicity under crashes:
// at every write index × {lost, torn, dropped} the reopened store is
// byte-identical to the adjacent pre- or post-commit image — an update
// either happened entirely or not at all, never partially.
func TestCrashSweepUpdateWorkload(t *testing.T) {
	fs := kvstore.NewFaultFS()
	oracle := crashOracle{images: [][]byte{nil}}
	if err := runUpdateCrashWorkload(fs, func() {
		oracle.images = append(oracle.images, fs.FileBytes("crash.db"))
	}); err != nil {
		t.Fatalf("oracle run failed: %v", err)
	}
	oracle.writes = fs.Writes()
	if oracle.writes == 0 {
		t.Fatal("oracle run performed no writes")
	}
	variants := []struct {
		tear int
		drop bool
	}{
		{tear: 0, drop: false},
		{tear: 1234, drop: false},
		{tear: 0, drop: true},
	}
	step := int64(1)
	if testing.Short() {
		step = 7
	}
	for idx := int64(0); idx < oracle.writes; idx += step {
		for _, vr := range variants {
			fs := kvstore.NewFaultFS()
			fs.CrashAfter(idx, vr.tear, vr.drop)
			completed := 0
			err := runUpdateCrashWorkload(fs, func() { completed++ })
			if err == nil || !fs.Crashed() {
				t.Fatalf("idx %d: crash never fired (err=%v)", idx, err)
			}
			st, err := reopenAfterCrash(fs)
			if err != nil {
				t.Fatalf("idx %d (tear %d, drop %v): reopen: %v", idx, vr.tear, vr.drop, err)
			}
			img := fs.FileBytes("crash.db")
			if !bytes.Equal(img, oracle.images[completed]) && !bytes.Equal(img, oracle.images[completed+1]) {
				t.Fatalf("idx %d (tear %d, drop %v): store is neither the pre- nor the post-commit image of update step %d",
					idx, vr.tear, vr.drop, completed+1)
			}
			if err := readEverything(st); err != nil {
				t.Fatalf("idx %d: recovered store unreadable: %v", idx, err)
			}
			st.Close()
		}
	}
}
