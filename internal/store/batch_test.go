package store

import (
	"strings"
	"testing"
)

// TestMultiChunkValueReassembly is the regression test for the chunk
// reassembly rewrite: values spanning three and more chunks (> 2×
// chunkSize) must round-trip exactly, including non-repeating content
// whose misordering or truncation a repeat pattern would hide.
func TestMultiChunkValueReassembly(t *testing.T) {
	// Distinct bytes per position so any chunk mixup is detected.
	var b strings.Builder
	for i := 0; b.Len() < 3*chunkSize+17; i++ { // > 3 chunks, odd tail
		b.WriteString("segment-")
		b.WriteByte(byte('a' + i%26))
		b.WriteString("-")
		b.WriteByte(byte('0' + i%10))
		b.WriteString("|")
	}
	for _, extra := range []int{0, 1, chunkSize - 1, chunkSize} {
		val := b.String() + strings.Repeat("#", extra)
		s := OpenMemory()
		src := "<doc><a>pre</a><body>" + val + "</body><z>post</z></doc>"
		if _, err := s.Shred("d", strings.NewReader(src), nil); err != nil {
			t.Fatal(err)
		}
		doc, err := s.Doc("d")
		if err != nil {
			t.Fatal(err)
		}
		got := doc.NodesOfType("doc.body")
		if len(got) != 1 {
			t.Fatalf("extra %d: %d body nodes", extra, len(got))
		}
		if got[0].Value != val {
			t.Errorf("extra %d: value corrupted: len=%d want %d", extra, len(got[0].Value), len(val))
		}
		// Neighbours must be unaffected by the multi-chunk middle.
		if as := doc.NodesOfType("doc.a"); len(as) != 1 || as[0].Value != "pre" {
			t.Errorf("extra %d: sibling before corrupted", extra)
		}
		if zs := doc.NodesOfType("doc.z"); len(zs) != 1 || zs[0].Value != "post" {
			t.Errorf("extra %d: sibling after corrupted", extra)
		}
		s.Close()
	}
}

// TestMultipleMultiChunkSiblings: consecutive nodes of one type, each
// spanning several chunks, must not bleed into each other.
func TestMultipleMultiChunkSiblings(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	v1 := strings.Repeat("alpha ", 800) // ~4.8 KB, 4 chunks
	v2 := strings.Repeat("beta ", 900)  // ~4.5 KB, 4 chunks
	v3 := "tiny"
	src := "<doc><p>" + v1 + "</p><p>" + v2 + "</p><p>" + v3 + "</p></doc>"
	if _, err := s.Shred("d", strings.NewReader(src), nil); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	ps := doc.NodesOfType("doc.p")
	if len(ps) != 3 {
		t.Fatalf("%d p nodes", len(ps))
	}
	for i, want := range []string{v1, v2, v3} {
		if ps[i].Value != want {
			t.Errorf("p[%d] corrupted: len=%d want %d", i, len(ps[i].Value), len(want))
		}
	}
}

// TestSizeCountsWithoutCaching: Doc.Size must count every vertex by
// scanning header-chunk keys, without materializing or caching any type
// sequence.
func TestSizeCountsWithoutCaching(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	big := strings.Repeat("x", 3*chunkSize) // multi-chunk: extra keys, one node
	src := `<data><book id="1"><title>` + big + `</title></book><book id="2"><title>t</title></book></data>`
	if _, err := s.Shred("d", strings.NewReader(src), nil); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	// data, 2×book, 2×@id, 2×title = 7 vertices.
	if got := doc.Size(); got != 7 {
		t.Errorf("Size = %d, want 7", got)
	}
	doc.mu.Lock()
	cached := len(doc.cache)
	doc.mu.Unlock()
	if cached != 0 {
		t.Errorf("Size materialized %d type sequences", cached)
	}
	// And it must agree with full materialization.
	n := 0
	for _, typ := range doc.Types() {
		n += len(doc.NodesOfType(typ))
	}
	if got := doc.Size(); got != n {
		t.Errorf("Size = %d, materialized count = %d", got, n)
	}
}

// TestBatchedShredEqualsUnbatched: the batched per-type runs must leave
// exactly the same logical store behind as per-chunk Puts — same
// documents, same sequences, same reconstruction.
func TestBatchedShredEqualsUnbatched(t *testing.T) {
	big := strings.Repeat("chunked-value ", 400)
	src := `<site><regions><europe><item id="i1"><name>` + big + `</name></item>` +
		`<item id="i2"><name>n2</name></item></europe></regions>` +
		`<people><person id="p1"><name>ann</name></person></people></site>`

	batched := OpenMemory()
	defer batched.Close()
	unbatched := OpenMemory(WithUnbatchedShred())
	defer unbatched.Close()

	for _, s := range []*Store{batched, unbatched} {
		if _, err := s.Shred("d", strings.NewReader(src), nil); err != nil {
			t.Fatal(err)
		}
	}
	db, err := batched.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	du, err := unbatched.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != du.Size() {
		t.Fatalf("sizes differ: batched %d, unbatched %d", db.Size(), du.Size())
	}
	rb, err := db.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	ru, err := du.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if rb.XML(false) != ru.XML(false) {
		t.Errorf("reconstructions differ:\nbatched:   %s\nunbatched: %s", rb.XML(false), ru.XML(false))
	}
	if batched.Stats().BatchedPuts == 0 {
		t.Error("batched shred issued no batched puts")
	}
	if unbatched.Stats().BatchedPuts != 0 {
		t.Error("unbatched shred issued batched puts")
	}
}

// TestShredFlushThreshold: a document bigger than the flush threshold
// forces mid-parse flushes; later runs of one type must append cleanly
// after earlier flushed runs.
func TestShredFlushThreshold(t *testing.T) {
	var b strings.Builder
	b.WriteString("<doc>")
	const items = 600
	filler := strings.Repeat("y", 2500) // ~1.5 MB total, over shredFlushBytes
	for i := 0; i < items; i++ {
		b.WriteString("<item><name>n</name><desc>")
		b.WriteString(filler)
		b.WriteString("</desc></item>")
	}
	b.WriteString("</doc>")
	s := OpenMemory()
	defer s.Close()
	if _, err := s.Shred("d", strings.NewReader(b.String()), nil); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Doc("d")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc.NodesOfType("doc.item")); got != items {
		t.Errorf("%d items, want %d", got, items)
	}
	descs := doc.NodesOfType("doc.item.desc")
	if len(descs) != items {
		t.Fatalf("%d descs, want %d", len(descs), items)
	}
	for i, d := range descs {
		if d.Value != filler {
			t.Fatalf("desc %d corrupted (len %d)", i, len(d.Value))
		}
	}
}
