package store_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"xmorph/internal/core"
	"xmorph/internal/kvstore"
	"xmorph/internal/store"
)

// The crash sweep runs a recorded workload — shred, a stored morph
// render, a second shred, a drop — on the fault-injecting filesystem,
// simulates a crash at every write index, reopens, and checks the store
// file is byte-identical to a commit-point oracle: the state before or
// after the commit the crash interrupted, never anything in between. A
// control sweep with durability off demonstrates the harness detects
// what the WAL prevents.

const crashSweepGuard = "CAST MUTATE catalog"

// crashSweepDoc builds a small deterministic catalog document (a few
// dozen pages shredded — enough for multi-page commits and buffer-pool
// eviction at the sweep's 16-page cache, small enough to re-run the
// workload hundreds of times).
func crashSweepDoc(items int, tag string) string {
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < items; i++ {
		fmt.Fprintf(&b, "<item id=\"%s-%03d\"><name>widget %s %d</name><price>%d.%02d</price><desc>%s</desc></item>",
			tag, i, tag, i, i*3+1, i%100, strings.Repeat(tag+"-filler ", 6))
	}
	b.WriteString("</catalog>")
	return b.String()
}

var (
	crashDoc1 = crashSweepDoc(60, "aa")
	crashDoc2 = crashSweepDoc(40, "bb")
)

// runCrashWorkload replays the recorded workload on fs. commit fires
// after each step that ends in a completed Sync — the oracle run uses it
// to snapshot commit-point images, crash runs to count completed steps.
// The first error (the injected crash) aborts the run.
func runCrashWorkload(fs *kvstore.FaultFS, durable bool, commit func()) error {
	st, err := store.Open("crash.db", store.WithKVOptions(&kvstore.Options{CachePages: 16, FS: fs, Durability: durable}))
	if err != nil {
		return err
	}
	if _, err := st.Shred("doc1", strings.NewReader(crashDoc1), nil); err != nil {
		return err
	}
	commit()
	// Stored morph render: read-only, but it drives the buffer pool (and
	// in the control run, the eviction order) exactly as production does.
	if _, err := core.TransformStored(crashSweepGuard, st, "doc1", nil); err != nil {
		return err
	}
	if _, err := st.Shred("doc2", strings.NewReader(crashDoc2), nil); err != nil {
		return err
	}
	commit()
	if err := st.Drop("doc1"); err != nil {
		return err
	}
	commit()
	if err := st.Close(); err != nil {
		return err
	}
	commit()
	return nil
}

// crashOracle holds the fault-free run's commit-point images: images[0]
// is the initial empty store, images[k] the store file after the k-th
// completed step.
type crashOracle struct {
	images [][]byte
	writes int64
}

func recordCrashOracle(t *testing.T, durable bool) crashOracle {
	t.Helper()
	fs := kvstore.NewFaultFS()
	o := crashOracle{images: [][]byte{nil}} // nil = empty initial file
	err := runCrashWorkload(fs, durable, func() {
		o.images = append(o.images, fs.FileBytes("crash.db"))
	})
	if err != nil {
		t.Fatalf("oracle run failed: %v", err)
	}
	o.writes = fs.Writes()
	if o.writes == 0 {
		t.Fatal("oracle run performed no writes")
	}
	return o
}

// reopenAfterCrash clears the faults (the reboot) and reopens the store.
func reopenAfterCrash(fs *kvstore.FaultFS) (*store.Store, error) {
	fs.ClearFaults()
	return store.Open("crash.db", store.WithKVOptions(&kvstore.Options{CachePages: 16, FS: fs}))
}

// readEverything walks every stored document's every type sequence,
// returning the first corruption it hits.
func readEverything(st *store.Store) error {
	docs, err := st.Documents()
	if err != nil {
		return err
	}
	for _, name := range docs {
		d, err := st.Doc(name)
		if err != nil {
			return err
		}
		for _, typ := range d.Types() {
			d.NodesOfType(typ)
		}
		if _, err := d.Reconstruct(); err != nil {
			return err
		}
	}
	return nil
}

// TestCrashSweepDurable is the acceptance sweep: with the WAL on, every
// crash point recovers to the adjacent pre- or post-commit image,
// byte-for-byte, and everything on disk is readable.
func TestCrashSweepDurable(t *testing.T) {
	oracle := recordCrashOracle(t, true)
	variants := []struct {
		tear int
		drop bool
	}{
		{tear: 0, drop: false},    // crash write fully lost
		{tear: 1234, drop: false}, // crash write torn mid-page
		{tear: 0, drop: true},     // all unsynced data lost with it
	}
	replays := 0
	for idx := int64(0); idx < oracle.writes; idx++ {
		for _, v := range variants {
			fs := kvstore.NewFaultFS()
			fs.CrashAfter(idx, v.tear, v.drop)
			completed := 0
			err := runCrashWorkload(fs, true, func() { completed++ })
			if err == nil || !fs.Crashed() {
				t.Fatalf("idx %d: crash never fired (err=%v)", idx, err)
			}
			st, err := reopenAfterCrash(fs)
			if err != nil {
				t.Fatalf("idx %d (tear %d, drop %v): reopen: %v", idx, v.tear, v.drop, err)
			}
			img := fs.FileBytes("crash.db")
			pre := oracle.images[completed]
			post := oracle.images[completed+1]
			switch {
			case bytes.Equal(img, post):
				if st.Stats().Recoveries == 1 {
					replays++
				}
			case bytes.Equal(img, pre):
				// Commit never became durable; fine.
			default:
				t.Fatalf("idx %d (tear %d, drop %v): store is neither the pre- nor the post-commit image of step %d (%d bytes)",
					idx, v.tear, v.drop, completed+1, len(img))
			}
			if err := readEverything(st); err != nil {
				t.Fatalf("idx %d (tear %d, drop %v): recovered store unreadable: %v", idx, v.tear, v.drop, err)
			}
			st.Close()
		}
	}
	if replays == 0 {
		t.Error("no crash point exercised WAL replay; the sweep is not covering the in-place phase")
	}
}

// TestCrashSweepControlDetectsCorruption runs the same sweep with the
// WAL disabled and requires that it catches at least one crash point
// where committed data is corrupted or lost — proving the harness can
// detect exactly the failures the WAL exists to prevent. (Without the
// commit protocol, in-place page writes and eviction flushes land
// between fsyncs, so a crash can expose half-written trees.)
func TestCrashSweepControlDetectsCorruption(t *testing.T) {
	oracle := recordCrashOracle(t, false)
	bad := 0
	for idx := int64(0); idx < oracle.writes; idx++ {
		fs := kvstore.NewFaultFS()
		fs.CrashAfter(idx, 2048, false)
		completed := 0
		err := runCrashWorkload(fs, false, func() { completed++ })
		if err == nil || !fs.Crashed() {
			t.Fatalf("idx %d: crash never fired (err=%v)", idx, err)
		}
		st, err := reopenAfterCrash(fs)
		if err != nil {
			bad++ // reopen refused: torn/corrupt store detected
			continue
		}
		img := fs.FileBytes("crash.db")
		matched := false
		for _, o := range oracle.images {
			if bytes.Equal(img, o) {
				matched = true
				break
			}
		}
		if !matched || readEverything(st) != nil {
			bad++
		}
		st.Close()
	}
	if bad == 0 {
		t.Fatal("WAL-disabled sweep found no corrupting crash point; the harness cannot detect what the WAL prevents")
	}
	t.Logf("control sweep: %d/%d crash points corrupted or lost committed state", bad, oracle.writes)
}
