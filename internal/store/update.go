package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"xmorph/internal/obs"
	"xmorph/internal/shape"
	"xmorph/internal/update"
	"xmorph/internal/xmltree"
)

// UpdateInfo summarizes an applied update script.
type UpdateInfo struct {
	Name          string
	Ops           int
	NodesInserted int
	NodesDeleted  int
	PagesWritten  int64
	// Delta reports how the script moved the document's shape —
	// unchanged deltas leave shape-hash-keyed guard caches warm.
	Delta update.Delta
}

// HashShape returns the 64-bit FNV-1a hash of a shape's canonical store
// encoding. Equal hashes ⇒ identical shapes (modulo hash collisions),
// including sibling order, so guard caches can key compilations on
// (docID, shape hash) and survive shape-preserving updates.
func HashShape(sh *shape.Shape) uint64 {
	return hashShapeEnc(encodeShape(sh))
}

func hashShapeEnc(enc string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(enc))
	return h.Sum64()
}

// ShapeHash returns the document's stored shape hash as of the view.
// ok is false for documents shredded before hash records existed (the
// caller falls back to hashing the loaded shape).
func (v *View) ShapeHash(name string) (uint64, bool, error) {
	id, ok, err := docIDIn(v.snap, name)
	if err != nil || !ok {
		return 0, false, err
	}
	b, ok, err := v.snap.Get(blobKey('H', id))
	if err != nil || !ok {
		return 0, false, err
	}
	if len(b) != 8 {
		return 0, false, fmt.Errorf("store: corrupt shape hash for %q", name)
	}
	return binary.BigEndian.Uint64(b), true, nil
}

// DeleteShapeHash removes a document's shape-hash record, reverting it
// to the pre-hash on-disk format. Migration tests use it to exercise
// the legacy-document fallback paths; nothing else should.
func (s *Store) DeleteShapeHash(name string) error {
	id, ok, err := s.docID(name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("store: document %q not found", name)
	}
	if err := s.db.Delete(blobKey('H', id)); err != nil {
		return err
	}
	return s.db.Sync()
}

// Update applies a parsed update script to a shredded document by
// re-shredding only the dirty subtrees: deleted Dewey ranges and
// freshly shredded fragments accumulate in a write overlay (phase 1,
// reads through one pinned snapshot, nothing written on error), then
// the whole overlay commits as one group-committed, WAL-covered batch
// (phase 2) — a crash recovers to either the old or the new document,
// never between. Sibling slots reuse Dewey gaps when one exists and
// fall back to suffix re-keying of the following sibling subtrees;
// component values never matter to joins or rendering, only order.
//
// The touched-subtree shape is re-inferred exactly (per-instance child
// counts and first-instance sibling order, the same rules the shredder
// folds), so the stored shape, its hash record, and the returned Delta
// always match what a full re-shred of the edited document would have
// produced. The document keeps its docID: version-keyed caches stay
// valid, and shape-aware ones invalidate only on a real shape change.
//
// Concurrent writers to the same document are the caller's
// responsibility, as with Shred and Drop.
func (s *Store) Update(name string, ops []update.Op, parent *obs.Span) (*UpdateInfo, error) {
	sp := parent.Child("update")
	defer sp.End()
	before := s.Stats()

	v := s.View()
	defer v.Close()
	id, ok, err := docIDIn(v.snap, name)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("store: document %q not found", name)
	}
	types, err := typesIn(v.snap, id)
	if err != nil {
		return nil, err
	}
	oldShape, err := shapeIn(v.snap, name)
	if err != nil {
		return nil, err
	}

	u := &updater{
		base:     v.snap,
		id:       id,
		types:    append([]string(nil), types...),
		typeID:   make(map[string]uint32, len(types)),
		puts:     map[string][]byte{},
		dels:     map[string]bool{},
		touched:  map[string]bool{},
		oldShape: oldShape,
	}
	for i, t := range u.types {
		u.typeID[t] = uint32(i)
	}

	for i, op := range ops {
		if err := u.apply(op); err != nil {
			return nil, fmt.Errorf("store: update statement %d: %w", i+1, err)
		}
	}

	newShape, err := u.recomputeShape()
	if err != nil {
		return nil, err
	}
	enc := encodeShape(newShape)
	if err := u.rewriteBlob(blobKey('T', id), []byte(strings.Join(u.types, "\n"))); err != nil {
		return nil, err
	}
	if err := u.rewriteBlob(blobKey('S', id), []byte(enc)); err != nil {
		return nil, err
	}
	hb := make([]byte, 8)
	binary.BigEndian.PutUint64(hb, hashShapeEnc(enc))
	u.put(blobKey('H', id), hb)

	// Phase 2: flush the overlay. Everything up to the Sync is visible to
	// new readers as it lands but becomes durable only with the group
	// commit, exactly like a shred.
	delKeys := make([]string, 0, len(u.dels))
	for k := range u.dels {
		delKeys = append(delKeys, k)
	}
	sort.Strings(delKeys)
	for _, k := range delKeys {
		if err := s.db.Delete([]byte(k)); err != nil {
			return nil, err
		}
	}
	putKeys := make([]string, 0, len(u.puts))
	for k := range u.puts {
		putKeys = append(putKeys, k)
	}
	sort.Strings(putKeys)
	keys := make([][]byte, len(putKeys))
	vals := make([][]byte, len(putKeys))
	for i, k := range putKeys {
		keys[i] = []byte(k)
		vals[i] = u.puts[k]
	}
	if err := s.db.PutBatch(keys, vals); err != nil {
		return nil, err
	}
	if err := s.db.Sync(); err != nil {
		return nil, err
	}

	delta := update.Compare(oldShape, newShape)
	info := &UpdateInfo{
		Name:          name,
		Ops:           len(ops),
		NodesInserted: u.inserted,
		NodesDeleted:  u.deleted,
		Delta:         delta,
	}
	after := s.Stats()
	info.PagesWritten = after.BlocksWritten - before.BlocksWritten
	if sp != nil {
		sp.Set("ops", int64(len(ops)))
		sp.Set("nodes-inserted", int64(u.inserted))
		sp.Set("nodes-deleted", int64(u.deleted))
		sp.Set("keys-put", int64(len(putKeys)))
		sp.Set("keys-deleted", int64(len(delKeys)))
		sp.Set("pages-written", info.PagesWritten)
		sp.SetStr("shape-delta", delta.Kind.String())
	}
	return info, nil
}

// updater accumulates an update script's effect as an overlay over one
// pinned snapshot: reads merge the overlay with the base so sequential
// statements observe earlier ones, and nothing reaches the store until
// the overlay commits wholesale.
type updater struct {
	base     reader
	id       uint32
	types    []string
	typeID   map[string]uint32
	puts     map[string][]byte
	dels     map[string]bool
	touched  map[string]bool
	oldShape *shape.Shape
	inserted int
	deleted  int
}

func (u *updater) put(k, v []byte) {
	ks := string(k)
	delete(u.dels, ks)
	u.puts[ks] = v
}

func (u *updater) del(k []byte) {
	ks := string(k)
	delete(u.puts, ks)
	u.dels[ks] = true
}

func (u *updater) touch(t string) {
	if t != "" {
		u.touched[t] = true
	}
}

// scanPrefix iterates base ∪ overlay in key order, skipping overlay
// deletions and preferring overlay values.
func (u *updater) scanPrefix(prefix []byte, fn func(k, v []byte) bool) error {
	var adds []string
	for k := range u.puts {
		if strings.HasPrefix(k, string(prefix)) {
			adds = append(adds, k)
		}
	}
	sort.Strings(adds)
	i := 0
	stopped := false
	err := u.base.AscendPrefix(prefix, func(k, v []byte) bool {
		ks := string(k)
		for i < len(adds) && adds[i] < ks {
			if !fn([]byte(adds[i]), u.puts[adds[i]]) {
				stopped = true
				return false
			}
			i++
		}
		if i < len(adds) && adds[i] == ks {
			ok := fn(k, u.puts[adds[i]])
			i++
			if !ok {
				stopped = true
			}
			return ok
		}
		if u.dels[ks] {
			return true
		}
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	for i < len(adds) {
		if !fn([]byte(adds[i]), u.puts[adds[i]]) {
			break
		}
		i++
	}
	return nil
}

func (u *updater) apply(op update.Op) error {
	switch op.Kind {
	case update.Delete:
		return u.applyDelete(op)
	case update.Insert:
		return u.applyInsert(op)
	default:
		return u.applyReplace(op)
	}
}

func lastSegment(path string) string {
	return path[strings.LastIndex(path, xmltree.TypeSep)+1:]
}

func encodeDewey(d xmltree.Dewey) []byte {
	b := make([]byte, 4*len(d))
	for i, c := range d {
		binary.BigEndian.PutUint32(b[4*i:], uint32(c))
	}
	return b
}

// instances returns a type's live Dewey numbers in document order.
func (u *updater) instances(t string) ([]xmltree.Dewey, error) {
	tid, ok := u.typeID[t]
	if !ok {
		return nil, nil
	}
	depth := xmltree.TypeDepth(t)
	prefix := nodePrefix(u.id, tid)
	var out []xmltree.Dewey
	err := u.scanPrefix(prefix, func(k, v []byte) bool {
		if len(k) != len(prefix)+4*depth+2 {
			return true
		}
		if binary.BigEndian.Uint16(k[len(k)-2:]) != 0 {
			return true
		}
		dw := make(xmltree.Dewey, depth)
		for i := range dw {
			dw[i] = int(binary.BigEndian.Uint32(k[len(prefix)+4*i:]))
		}
		out = append(out, dw)
		return true
	})
	return out, err
}

// targets resolves a statement's path to its node set, requiring it to
// be non-empty.
func (u *updater) targets(path string) ([]xmltree.Dewey, error) {
	ds, err := u.instances(path)
	if err != nil {
		return nil, err
	}
	if len(ds) == 0 {
		return nil, fmt.Errorf("path %q resolves to no nodes", path)
	}
	return ds, nil
}

func (u *updater) hasInstances(t string) (bool, error) {
	tid, ok := u.typeID[t]
	if !ok {
		return false, nil
	}
	found := false
	err := u.scanPrefix(nodePrefix(u.id, tid), func(k, v []byte) bool {
		found = true
		return false
	})
	return found, err
}

func (u *updater) ensureType(t string) uint32 {
	if id, ok := u.typeID[t]; ok {
		return id
	}
	id := uint32(len(u.types))
	u.types = append(u.types, t)
	u.typeID[t] = id
	return id
}

func (u *updater) applyDelete(op update.Op) error {
	if xmltree.TypeParent(op.Path) == "" {
		return fmt.Errorf("cannot delete the document root %q", op.Path)
	}
	ds, err := u.targets(op.Path)
	if err != nil {
		return err
	}
	for _, d := range ds {
		if err := u.deleteSubtree(op.Path, d); err != nil {
			return err
		}
	}
	u.touch(xmltree.TypeParent(op.Path))
	return nil
}

// deleteSubtree removes the node at (rootT, d) and every descendant: in
// each descendant-or-self type sequence, the keys under d's Dewey
// prefix. Sibling ordinals keep their gaps — only order matters.
func (u *updater) deleteSubtree(rootT string, d xmltree.Dewey) error {
	sub := rootT + xmltree.TypeSep
	enc := encodeDewey(d)
	for tid, t := range u.types {
		if t != rootT && !strings.HasPrefix(t, sub) {
			continue
		}
		prefix := append(nodePrefix(u.id, uint32(tid)), enc...)
		var keys [][]byte
		if err := u.scanPrefix(prefix, func(k, v []byte) bool {
			keys = append(keys, append([]byte(nil), k...))
			return true
		}); err != nil {
			return err
		}
		for _, k := range keys {
			if binary.BigEndian.Uint16(k[len(k)-2:]) == 0 {
				u.deleted++
			}
			u.del(k)
		}
		if len(keys) > 0 {
			u.touch(t)
		}
	}
	return nil
}

func (u *updater) applyInsert(op update.Op) error {
	frag, err := xmltree.ParseString(op.XML)
	if err != nil {
		return err
	}
	if strings.HasPrefix(lastSegment(op.Path), "@") {
		return fmt.Errorf("cannot insert %s attribute path %q", map[update.Pos]string{
			update.Into: "into", update.Before: "before", update.After: "after"}[op.Pos], op.Path)
	}
	if op.Pos == update.Into {
		ds, err := u.targets(op.Path)
		if err != nil {
			return err
		}
		for _, d := range ds {
			ord, err := u.maxChildOrd(op.Path, d)
			if err != nil {
				return err
			}
			if err := u.insertFragment(op.Path, d, ord+1, frag); err != nil {
				return err
			}
		}
		u.touch(op.Path)
		return nil
	}

	parent := xmltree.TypeParent(op.Path)
	if parent == "" {
		return fmt.Errorf("cannot insert beside the document root %q", op.Path)
	}
	ds, err := u.targets(op.Path)
	if err != nil {
		return err
	}
	// Descending document order: when a slot needs suffix re-keying, the
	// shift only moves ordinals at or after the slot, so pending targets
	// (all earlier in document order) keep their Dewey numbers.
	for i := len(ds) - 1; i >= 0; i-- {
		d := ds[i]
		pd := d[:len(d)-1]
		k := d[len(d)-1]
		ords, err := u.childOrds(parent, pd)
		if err != nil {
			return err
		}
		var ord int
		if op.Pos == update.Before {
			l := 0
			for _, o := range ords {
				if o < k && o > l {
					l = o
				}
			}
			if k-l >= 2 {
				ord = l + (k-l)/2
			} else {
				if err := u.shiftSiblings(parent, pd, k); err != nil {
					return err
				}
				ord = k
			}
		} else {
			r := 0
			for _, o := range ords {
				if o > k {
					r = o
					break
				}
			}
			switch {
			case r == 0:
				ord = k + 1
			case r-k >= 2:
				ord = k + (r-k)/2
			default:
				if err := u.shiftSiblings(parent, pd, r); err != nil {
					return err
				}
				ord = r
			}
		}
		if err := u.insertFragment(parent, pd, ord, frag); err != nil {
			return err
		}
	}
	u.touch(parent)
	return nil
}

func (u *updater) applyReplace(op update.Op) error {
	if strings.HasPrefix(lastSegment(op.Path), "@") {
		return fmt.Errorf("cannot replace attribute path %q with an element fragment", op.Path)
	}
	frag, err := xmltree.ParseString(op.XML)
	if err != nil {
		return err
	}
	parent := xmltree.TypeParent(op.Path)
	ds, err := u.targets(op.Path)
	if err != nil {
		return err
	}
	for _, d := range ds {
		if err := u.deleteSubtree(op.Path, d); err != nil {
			return err
		}
		// The fragment takes the vacated slot: same parent, same ordinal.
		if err := u.insertFragment(parent, d[:len(d)-1], d[len(d)-1], frag); err != nil {
			return err
		}
	}
	u.touch(parent)
	return nil
}

// maxChildOrd returns the highest child ordinal in use under the parent
// instance at (parentT, d), 0 when it has no children.
func (u *updater) maxChildOrd(parentT string, d xmltree.Dewey) (int, error) {
	max := 0
	enc := encodeDewey(d)
	for tid, t := range u.types {
		if xmltree.TypeParent(t) != parentT {
			continue
		}
		prefix := append(nodePrefix(u.id, uint32(tid)), enc...)
		if err := u.scanPrefix(prefix, func(k, v []byte) bool {
			if len(k) != len(prefix)+4+2 {
				return true
			}
			if c := int(binary.BigEndian.Uint32(k[len(prefix):])); c > max {
				max = c
			}
			return true
		}); err != nil {
			return 0, err
		}
	}
	return max, nil
}

// childOrds returns the sorted distinct child ordinals in use under the
// parent instance at (parentT, d).
func (u *updater) childOrds(parentT string, d xmltree.Dewey) ([]int, error) {
	seen := map[int]bool{}
	enc := encodeDewey(d)
	for tid, t := range u.types {
		if xmltree.TypeParent(t) != parentT {
			continue
		}
		prefix := append(nodePrefix(u.id, uint32(tid)), enc...)
		if err := u.scanPrefix(prefix, func(k, v []byte) bool {
			if len(k) != len(prefix)+4+2 {
				return true
			}
			seen[int(binary.BigEndian.Uint32(k[len(prefix):]))] = true
			return true
		}); err != nil {
			return nil, err
		}
	}
	out := make([]int, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Ints(out)
	return out, nil
}

// shiftSiblings suffix-re-keys every child subtree of the parent
// instance at (parentT, pd) whose child ordinal is >= from, moving each
// ordinal up by one. Values move verbatim; relative order is preserved,
// so the shape is unaffected.
func (u *updater) shiftSiblings(parentT string, pd xmltree.Dewey, from int) error {
	idx := len(pd)
	sub := parentT + xmltree.TypeSep
	enc := encodeDewey(pd)
	type move struct{ key, val []byte }
	var olds [][]byte
	var news []move
	for tid, t := range u.types {
		if !strings.HasPrefix(t, sub) {
			continue
		}
		prefix := append(nodePrefix(u.id, uint32(tid)), enc...)
		if err := u.scanPrefix(prefix, func(k, v []byte) bool {
			off := 9 + 4*idx
			c := int(binary.BigEndian.Uint32(k[off:]))
			if c < from {
				return true
			}
			nk := append([]byte(nil), k...)
			binary.BigEndian.PutUint32(nk[off:], uint32(c+1))
			olds = append(olds, append([]byte(nil), k...))
			news = append(news, move{nk, append([]byte(nil), v...)})
			return true
		}); err != nil {
			return err
		}
	}
	// Delete every old key before writing any new one: the two key sets
	// overlap when consecutive ordinals shift, and the overlay resolves
	// each key to its final state only in this order.
	for _, k := range olds {
		u.del(k)
	}
	for _, m := range news {
		u.put(m.key, m.val)
	}
	return nil
}

// insertFragment shreds a parsed fragment under the parent instance at
// (parentT, pd), rooting the fragment at child ordinal ord. Fragment
// types are re-rooted onto the parent's type path and registered;
// Dewey numbers are pd ++ ord ++ (fragment Dewey below its root).
func (u *updater) insertFragment(parentT string, pd xmltree.Dewey, ord int, frag *xmltree.Document) error {
	if len(frag.Roots) != 1 {
		return fmt.Errorf("fragment must have exactly one root element")
	}
	var keys, vals [][]byte
	var failed error
	frag.Roots[0].Walk(func(n *xmltree.Node) bool {
		nt := n.Type
		if parentT != "" {
			nt = parentT + xmltree.TypeSep + n.Type
		}
		tid := u.ensureType(nt)
		u.touch(nt)
		nd := make(xmltree.Dewey, 0, len(pd)+len(n.Dewey))
		nd = append(append(nd, pd...), ord)
		nd = append(nd, n.Dewey[1:]...)
		full := append(nodePrefix(u.id, tid), encodeDewey(nd)...)
		var err error
		keys, vals, err = appendBlobChunks(keys, vals, full, []byte(n.Value))
		if err != nil {
			failed = err
			return false
		}
		u.inserted++
		return true
	})
	if failed != nil {
		return failed
	}
	for i := range keys {
		u.put(keys[i], vals[i])
	}
	return nil
}

// recomputeShape re-infers the edited document's adorned shape exactly.
// Untouched parents copy their old edges (their instance sets and child
// orders cannot have changed); touched parents recount per-instance
// child cardinalities by merging the Dewey-ordered sequences and order
// their children by first-instance Dewey — the same order the streaming
// shredder's frame folding produces, so the result is byte-identical to
// re-shredding the edited document.
func (u *updater) recomputeShape() (*shape.Shape, error) {
	live := make(map[string]bool, len(u.types))
	for _, t := range u.types {
		if u.touched[t] {
			ok, err := u.hasInstances(t)
			if err != nil {
				return nil, err
			}
			live[t] = ok
		} else {
			live[t] = u.oldShape.HasType(t)
		}
	}
	out := shape.New()
	for _, t := range u.types {
		if live[t] {
			out.AddType(t)
		}
	}
	for _, pt := range u.types {
		if !live[pt] {
			continue
		}
		if !u.touched[pt] {
			for _, ct := range u.oldShape.Children(pt) {
				if !live[ct] {
					continue
				}
				card, _ := u.oldShape.Card(pt, ct)
				if err := out.AddEdge(pt, ct, card); err != nil {
					return nil, err
				}
			}
			continue
		}
		edges, err := u.computeEdges(pt, live)
		if err != nil {
			return nil, err
		}
		for _, e := range edges {
			if err := out.AddEdge(pt, e.child, e.card); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

type childEdge struct {
	child string
	first xmltree.Dewey
	card  shape.Card
}

// computeEdges recounts one parent type's edges from its live node
// sequences, in first-instance sibling order.
func (u *updater) computeEdges(pt string, live map[string]bool) ([]childEdge, error) {
	parents, err := u.instances(pt)
	if err != nil {
		return nil, err
	}
	var out []childEdge
	for _, ct := range u.types {
		if !live[ct] || xmltree.TypeParent(ct) != pt {
			continue
		}
		kids, err := u.instances(ct)
		if err != nil {
			return nil, err
		}
		if len(kids) == 0 {
			continue
		}
		// Both sequences are in document order and children group under
		// their parents, so one merge pass counts per-parent children.
		min, max := -1, 0
		i := 0
		for _, p := range parents {
			cnt := 0
			for i < len(kids) && p.IsPrefixOf(kids[i]) {
				cnt++
				i++
			}
			if min == -1 || cnt < min {
				min = cnt
			}
			if cnt > max {
				max = cnt
			}
		}
		if i != len(kids) {
			return nil, fmt.Errorf("store: update: %d orphaned %s instances", len(kids)-i, ct)
		}
		if min == -1 {
			min = 0
		}
		out = append(out, childEdge{ct, kids[0], shape.Card{Min: min, Max: max}})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].first.Compare(out[j].first) < 0 })
	return out, nil
}

// rewriteBlob replaces a chunked blob wholesale, deleting stale chunks
// beyond the new chunk count.
func (u *updater) rewriteBlob(key, val []byte) error {
	var olds [][]byte
	if err := u.scanPrefix(key, func(k, v []byte) bool {
		olds = append(olds, append([]byte(nil), k...))
		return true
	}); err != nil {
		return err
	}
	for _, k := range olds {
		u.del(k)
	}
	keys, vals, err := appendBlobChunks(nil, nil, key, val)
	if err != nil {
		return err
	}
	for i := range keys {
		u.put(keys[i], vals[i])
	}
	return nil
}
