package guard

import "fmt"

// Parse parses the concrete syntax of an XMorph 2.0 guard into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src, prog: &Program{Source: src}}
	if err := p.parseGuard(true); err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected %s after guard", p.describe(p.cur()))
	}
	if len(p.prog.Stages) == 0 {
		return nil, p.errorf("guard has no stages")
	}
	return p.prog, nil
}

// MustParse parses src and panics on error; for tests and examples.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks    []token
	i       int
	src     string
	prog    *Program
	castSet bool
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errorf(format string, args ...interface{}) error {
	return &SyntaxError{Pos: p.cur().pos, Message: fmt.Sprintf(format, args...), Source: p.src}
}

func (p *parser) describe(t token) string {
	if t.kind == tokIdent || t.kind == tokKeyword {
		return fmt.Sprintf("%q", t.text)
	}
	return t.kind.String()
}

// parseGuard parses modifiers followed by a stage pipeline. At the top
// level (top == true) the pipeline extends to EOF; inside parentheses it
// extends to the closing paren.
func (p *parser) parseGuard(top bool) error {
	// Modifiers: CAST variants and TYPE-FILL, possibly wrapping the rest
	// in parentheses.
	for p.cur().kind == tokKeyword {
		switch p.cur().text {
		case "TYPE-FILL":
			p.next()
			p.prog.TypeFill = true
			continue
		case "CAST", "CAST-NARROWING", "CAST-WIDENING":
			mode := CastWeak
			switch p.cur().text {
			case "CAST-NARROWING":
				mode = CastNarrowing
			case "CAST-WIDENING":
				mode = CastWidening
			}
			if p.castSet && p.prog.Cast != mode {
				return p.errorf("conflicting cast modifiers %s and %s", p.prog.Cast, mode)
			}
			p.next()
			p.prog.Cast = mode
			p.castSet = true
			continue
		}
		break
	}
	// A parenthesized guard after modifiers: CAST-WIDENING (TYPE-FILL ...).
	if p.cur().kind == tokLParen && p.peekIsGuardStart() {
		p.next()
		if err := p.parseGuard(false); err != nil {
			return err
		}
		if p.cur().kind != tokRParen {
			return p.errorf("expected ')' to close guard, got %s", p.describe(p.cur()))
		}
		p.next()
		if top && p.cur().kind == tokPipe {
			p.next()
			return p.parsePipeline()
		}
		return nil
	}
	return p.parsePipeline()
}

// peekIsGuardStart reports whether the token after the current '(' starts a
// guard (a stage or modifier keyword), distinguishing guard grouping from
// term grouping.
func (p *parser) peekIsGuardStart() bool {
	t := p.toks[p.i+1]
	if t.kind != tokKeyword {
		return false
	}
	switch t.text {
	case "MORPH", "MUTATE", "TRANSLATE", "COMPOSE", "CAST", "CAST-NARROWING", "CAST-WIDENING", "TYPE-FILL":
		return true
	}
	return false
}

// parsePipeline parses stage ('|' stage)*.
func (p *parser) parsePipeline() error {
	for {
		if err := p.parseStageUnit(); err != nil {
			return err
		}
		if p.cur().kind == tokPipe {
			p.next()
			continue
		}
		return nil
	}
}

// parseStageUnit parses one stage, a parenthesized guard, or COMPOSE g, g.
func (p *parser) parseStageUnit() error {
	t := p.cur()
	if t.kind == tokLParen && p.peekIsGuardStart() {
		p.next()
		if err := p.parseGuard(false); err != nil {
			return err
		}
		if p.cur().kind != tokRParen {
			return p.errorf("expected ')' to close guard, got %s", p.describe(p.cur()))
		}
		p.next()
		return nil
	}
	if t.kind != tokKeyword {
		return p.errorf("expected MORPH, MUTATE, TRANSLATE, or COMPOSE, got %s", p.describe(t))
	}
	switch t.text {
	case "COMPOSE":
		p.next()
		if err := p.parseStageUnit(); err != nil {
			return err
		}
		for p.cur().kind == tokComma {
			p.next()
			if err := p.parseStageUnit(); err != nil {
				return err
			}
		}
		return nil
	case "MORPH", "MUTATE":
		pos := t.pos
		p.next()
		kind := StageMorph
		if t.text == "MUTATE" {
			kind = StageMutate
		}
		var pats []*Term
		for p.startsTerm() {
			term, err := p.parseTerm()
			if err != nil {
				return err
			}
			pats = append(pats, term)
		}
		if len(pats) == 0 {
			return p.errorf("%s requires a pattern", t.text)
		}
		p.prog.Stages = append(p.prog.Stages, &Stage{Kind: kind, Patterns: pats, Pos: pos})
		return nil
	case "TRANSLATE":
		pos := t.pos
		p.next()
		var renames []Rename
		for {
			from := p.cur()
			if from.kind != tokIdent {
				return p.errorf("TRANSLATE expects a label, got %s", p.describe(from))
			}
			p.next()
			if p.cur().kind != tokArrow {
				return p.errorf("TRANSLATE expects '->' after %q, got %s", from.text, p.describe(p.cur()))
			}
			p.next()
			to := p.cur()
			if to.kind != tokIdent {
				return p.errorf("TRANSLATE expects a new label after '->', got %s", p.describe(to))
			}
			p.next()
			renames = append(renames, Rename{From: from.text, To: to.text})
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		p.prog.Stages = append(p.prog.Stages, &Stage{Kind: StageTranslate, Renames: renames, Pos: pos})
		return nil
	}
	return p.errorf("expected a stage, got %s", p.describe(t))
}

// startsTerm reports whether the current token can begin a pattern term.
func (p *parser) startsTerm() bool {
	switch p.cur().kind {
	case tokIdent, tokStar, tokStarStar:
		return true
	case tokKeyword:
		switch p.cur().text {
		case "DROP", "CLONE", "NEW", "RESTRICT", "CHILDREN", "DESCENDANTS":
			return true
		}
	case tokLParen:
		return !p.peekIsGuardStart()
	}
	return false
}

// parseTerm parses primary followed by an optional bracketed child list.
func (p *parser) parseTerm() (*Term, error) {
	term, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokLBracket {
		p.next()
		for p.cur().kind != tokRBracket {
			if !p.startsTerm() {
				return nil, p.errorf("expected a pattern term or ']', got %s", p.describe(p.cur()))
			}
			kid, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			term.Kids = append(term.Kids, kid)
		}
		p.next() // ']'
	}
	return term, nil
}

func (p *parser) parsePrimary() (*Term, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		p.next()
		return &Term{Kind: TermLabel, Label: t.text, Pos: t.pos}, nil
	case tokStar:
		p.next()
		return &Term{Kind: TermChildren, Pos: t.pos}, nil
	case tokStarStar:
		p.next()
		return &Term{Kind: TermDescendants, Pos: t.pos}, nil
	case tokLParen:
		p.next()
		term, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokRParen {
			return nil, p.errorf("expected ')', got %s", p.describe(p.cur()))
		}
		p.next()
		return term, nil
	case tokKeyword:
		switch t.text {
		case "NEW":
			p.next()
			lbl := p.cur()
			if lbl.kind != tokIdent {
				return nil, p.errorf("NEW expects a label, got %s", p.describe(lbl))
			}
			p.next()
			return &Term{Kind: TermNew, Label: lbl.text, Pos: t.pos}, nil
		case "DROP", "CLONE", "RESTRICT":
			p.next()
			op, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			kind := TermDrop
			switch t.text {
			case "CLONE":
				kind = TermClone
			case "RESTRICT":
				kind = TermRestrict
			}
			return &Term{Kind: kind, Operand: op, Pos: t.pos}, nil
		case "CHILDREN", "DESCENDANTS":
			// CHILDREN label desugars to label [*]; DESCENDANTS label to
			// label [**] (Section III's alternative spellings).
			p.next()
			op, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			mark := TermChildren
			if t.text == "DESCENDANTS" {
				mark = TermDescendants
			}
			op.Kids = append(op.Kids, &Term{Kind: mark, Pos: t.pos})
			return op, nil
		}
	}
	return nil, p.errorf("expected a pattern term, got %s", p.describe(t))
}
